package profess

import (
	"reflect"
	"testing"

	"profess/internal/sim"
	"profess/internal/trace"
)

// runKey hashes Config, ProgramSpec and trace.Params through their %#v
// rendering. That is only a faithful serialisation while every field is a
// plain value: a pointer or func field would print an address (same
// content, different hash — or worse, different content, same hash after
// reuse), and map/chan/interface fields hide identity and state the
// rendering cannot capture. This test walks the types reflectively and
// fails the moment anyone adds such a field, pointing them at the
// allowlist below and the cacheable() guard.
//
// Allowed exceptions carry a justification: the field is excluded from
// caching by cacheable() before runKey is ever computed.
var runKeyAllowedFields = map[string]string{
	"sim.ProgramSpec.Source": "runs with a non-nil Source bypass the cache (cacheable() returns false), so only the nil rendering is ever hashed",
}

func TestRunKeyHashableFields(t *testing.T) {
	for _, root := range []reflect.Type{
		reflect.TypeOf(Config{}),
		reflect.TypeOf(ProgramSpec{}),
		reflect.TypeOf(trace.Params{}),
	} {
		checkHashable(t, root, root.String(), map[reflect.Type]bool{})
	}
}

func checkHashable(t *testing.T, typ reflect.Type, path string, visiting map[reflect.Type]bool) {
	t.Helper()
	switch typ.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128,
		reflect.String:
		return
	case reflect.Array, reflect.Slice:
		checkHashable(t, typ.Elem(), path+"[]", visiting)
		return
	case reflect.Struct:
		if visiting[typ] {
			return
		}
		visiting[typ] = true
		defer delete(visiting, typ)
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			fieldPath := typ.String() + "." + f.Name
			if _, ok := runKeyAllowedFields[fieldPath]; ok {
				continue
			}
			checkHashable(t, f.Type, fieldPath, visiting)
		}
		return
	case reflect.Ptr, reflect.UnsafePointer, reflect.Func, reflect.Map, reflect.Chan, reflect.Interface:
		t.Errorf("%s has kind %s: %%#v would hash an address or hide state, making the run-cache key unsound.\n"+
			"Either keep the run-cache inputs plain values, or exclude such runs in cacheable() and add the field "+
			"to runKeyAllowedFields with a justification.", path, typ.Kind())
		return
	default:
		t.Errorf("%s has unexpected kind %s: extend TestRunKeyHashableFields deliberately before caching it", path, typ.Kind())
	}
}

// TestRunKeySamplingNormalised pins runKey's treatment of the sampling
// fields, in both directions:
//
//   - Off is off: fraction 0 (never set), fraction 1 (explicit "sample
//     everything", served by the classic full run byte-identically) and
//     any fraction above 1 must all share the full run's key, whatever
//     junk the window field carries — otherwise equivalent spellings of
//     the same simulation would fragment the cache.
//   - On is semantic: an active fraction must split from the full key and
//     from other fractions, and the window must participate resolved —
//     SampleWindow 0 and an explicit DefaultSampleWindow are one cell,
//     a genuinely different window is another.
func TestRunKeySamplingNormalised(t *testing.T) {
	specs, err := sim.SpecsForPrograms([]string{"lbm"}, PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	base := MultiCoreConfig(PaperScale)
	key := func(mutate func(*Config)) string {
		cfg := base
		if mutate != nil {
			mutate(&cfg)
		}
		return runKey(cfg, specs, SchemeProFess)
	}

	full := key(nil)
	for _, c := range []struct {
		name     string
		fraction float64
		window   int64
	}{
		{"fraction 1 is the full run", 1, 0},
		{"fraction 1 ignores the window", 1, 999},
		{"fraction above 1 is the full run", 4, 0},
		{"window without a fraction is inert", 0, 60_000},
	} {
		if got := key(func(cfg *Config) { cfg.SampleFraction = c.fraction; cfg.SampleWindow = c.window }); got != full {
			t.Errorf("%s: key split from the full run's", c.name)
		}
	}

	sampled := key(func(cfg *Config) { cfg.SampleFraction = 0.05 })
	if sampled == full {
		t.Error("an active sample fraction must split the key: estimates are not the full run's bytes")
	}
	if got := key(func(cfg *Config) { cfg.SampleFraction = 0.05; cfg.SampleWindow = sim.DefaultSampleWindow }); got != sampled {
		t.Error("SampleWindow 0 and an explicit DefaultSampleWindow are the same cell")
	}
	if got := key(func(cfg *Config) { cfg.SampleFraction = 0.1 }); got == sampled {
		t.Error("different fractions hashed to one key")
	}
	if got := key(func(cfg *Config) { cfg.SampleFraction = 0.05; cfg.SampleWindow = 2 * sim.DefaultSampleWindow }); got == sampled {
		t.Error("different windows hashed to one key")
	}
}
