package profess

import (
	"reflect"
	"testing"

	"profess/internal/trace"
)

// runKey hashes Config, ProgramSpec and trace.Params through their %#v
// rendering. That is only a faithful serialisation while every field is a
// plain value: a pointer or func field would print an address (same
// content, different hash — or worse, different content, same hash after
// reuse), and map/chan/interface fields hide identity and state the
// rendering cannot capture. This test walks the types reflectively and
// fails the moment anyone adds such a field, pointing them at the
// allowlist below and the cacheable() guard.
//
// Allowed exceptions carry a justification: the field is excluded from
// caching by cacheable() before runKey is ever computed.
var runKeyAllowedFields = map[string]string{
	"sim.ProgramSpec.Source": "runs with a non-nil Source bypass the cache (cacheable() returns false), so only the nil rendering is ever hashed",
}

func TestRunKeyHashableFields(t *testing.T) {
	for _, root := range []reflect.Type{
		reflect.TypeOf(Config{}),
		reflect.TypeOf(ProgramSpec{}),
		reflect.TypeOf(trace.Params{}),
	} {
		checkHashable(t, root, root.String(), map[reflect.Type]bool{})
	}
}

func checkHashable(t *testing.T, typ reflect.Type, path string, visiting map[reflect.Type]bool) {
	t.Helper()
	switch typ.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128,
		reflect.String:
		return
	case reflect.Array, reflect.Slice:
		checkHashable(t, typ.Elem(), path+"[]", visiting)
		return
	case reflect.Struct:
		if visiting[typ] {
			return
		}
		visiting[typ] = true
		defer delete(visiting, typ)
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			fieldPath := typ.String() + "." + f.Name
			if _, ok := runKeyAllowedFields[fieldPath]; ok {
				continue
			}
			checkHashable(t, f.Type, fieldPath, visiting)
		}
		return
	case reflect.Ptr, reflect.UnsafePointer, reflect.Func, reflect.Map, reflect.Chan, reflect.Interface:
		t.Errorf("%s has kind %s: %%#v would hash an address or hide state, making the run-cache key unsound.\n"+
			"Either keep the run-cache inputs plain values, or exclude such runs in cacheable() and add the field "+
			"to runKeyAllowedFields with a justification.", path, typ.Kind())
		return
	default:
		t.Errorf("%s has unexpected kind %s: extend TestRunKeyHashableFields deliberately before caching it", path, typ.Kind())
	}
}
