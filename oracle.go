package profess

import (
	"profess/internal/migrate"
)

// RunOracle runs the two-pass profile-guided static-placement upper bound
// on one program: pass 1 profiles per-block access counts without
// migrating; pass 2 replays the identical workload with each swap group's
// most-accessed block placed into M1 on first touch. The result bounds
// what one-shot placement could achieve and calibrates how much of that
// bound the reactive policies capture (see BenchmarkOracle).
func RunOracle(spec ProgramSpec, cfg Config) (*Result, error) {
	profiler := migrate.NewProfiler(8)
	if _, err := RunWithPolicy([]ProgramSpec{spec}, profiler, cfg); err != nil {
		return nil, err
	}
	// One swap costs ~K latency-gap units (§4.1): require the same margin
	// in weighted accesses before a placement pays off.
	oracle := migrate.NewOracle(profiler.Counts, 8)
	return RunWithPolicy([]ProgramSpec{spec}, oracle, cfg)
}
