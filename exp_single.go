package profess

import (
	"fmt"
	"strings"

	"profess/internal/core"
	"profess/internal/sim"
	"profess/internal/stats"
)

// SingleProgramRow is one program's outcome under one scheme in the
// single-core system (§5.1). With ExpOptions.Seeds > 1 the values are
// means across seeds and IPCStdDev reports the spread.
type SingleProgramRow struct {
	Program    string
	Scheme     Scheme
	IPC        float64
	IPCStdDev  float64
	M1Fraction float64
	STCHitRate float64
	AvgReadLat float64
	Swaps      int64
	// LifetimeSeconds projects M2 device lifetime from the run's write
	// wear, bounded by its hottest row (see sim.NVMWear).
	LifetimeSeconds float64
}

// SingleProgramReport regenerates Figs. 5-7: per-program IPC, M1-served
// fraction and STC hit rate for PoM and MDM in the single-core system.
type SingleProgramReport struct {
	Rows []SingleProgramRow
}

// RunSinglePrograms runs every program of the options under the given
// schemes in the single-core system.
func RunSinglePrograms(schemes []Scheme, opts ExpOptions) (*SingleProgramReport, error) {
	cfg := opts.singleConfig()
	progs := opts.programs()

	type job struct {
		prog   string
		scheme Scheme
	}
	var jobs []job
	for _, p := range progs {
		for _, s := range schemes {
			jobs = append(jobs, job{p, s})
		}
	}
	rows := make([]SingleProgramRow, len(jobs))
	err := parallelFor(opts.ctx(), len(jobs), opts.Parallelism, func(i int) error {
		var ipcs []float64
		row := SingleProgramRow{Program: jobs[i].prog, Scheme: jobs[i].scheme}
		base, err := sim.SpecForProgram(jobs[i].prog, cfg.Scale)
		if err != nil {
			return err
		}
		for s := 0; s < opts.seeds(); s++ {
			spec := base
			if s > 0 {
				spec.Params.Seed = workloadSeed(jobs[i].prog, 1000+s)
			}
			res, err := RunSpecsContext(opts.ctx(), []ProgramSpec{spec}, jobs[i].scheme, cfg)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", jobs[i].prog, jobs[i].scheme, err)
			}
			c := res.PerCore[0]
			ipcs = append(ipcs, c.IPC)
			row.M1Fraction += c.M1Fraction
			row.STCHitRate += c.STCHitRate
			row.AvgReadLat += c.AvgReadLat
			row.Swaps += c.Swaps
			row.LifetimeSeconds += res.NVM.LifetimeSeconds
		}
		n := float64(len(ipcs))
		row.IPC = stats.Mean(ipcs)
		row.IPCStdDev = stats.StdDev(ipcs)
		row.M1Fraction /= n
		row.STCHitRate /= n
		row.AvgReadLat /= n
		row.LifetimeSeconds /= n
		row.Swaps = int64(float64(row.Swaps) / n)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SingleProgramReport{Rows: rows}, nil
}

// row looks up the report entry for (program, scheme).
func (r *SingleProgramReport) row(prog string, s Scheme) (SingleProgramRow, bool) {
	for _, row := range r.Rows {
		if row.Program == prog && row.Scheme == s {
			return row, true
		}
	}
	return SingleProgramRow{}, false
}

// Ratios returns the per-program metric ratios of num over den (the
// "normalised to PoM" presentation of Figs. 5 and 6). metric selects the
// value: "ipc", "m1frac", "readlat".
func (r *SingleProgramReport) Ratios(num, den Scheme, metric string) map[string]float64 {
	out := map[string]float64{}
	for _, row := range r.Rows {
		if row.Scheme != num {
			continue
		}
		d, ok := r.row(row.Program, den)
		if !ok {
			continue
		}
		var v float64
		switch metric {
		case "ipc":
			v = Ratio(row.IPC, d.IPC)
		case "m1frac":
			v = Ratio(row.M1Fraction, d.M1Fraction)
		case "readlat":
			v = Ratio(row.AvgReadLat, d.AvgReadLat)
		}
		out[row.Program] = v
	}
	return out
}

// String renders the Fig. 5/6/7 tables.
func (r *SingleProgramReport) String() string {
	var b strings.Builder
	t := stats.NewTable("program", "scheme", "IPC", "M1 frac", "STC hit", "read lat", "swaps", "M2 life")
	for _, row := range r.Rows {
		t.AddRowf(row.Program, string(row.Scheme), row.IPC, row.M1Fraction, row.STCHitRate, row.AvgReadLat, row.Swaps, secsShort(row.LifetimeSeconds))
	}
	b.WriteString(t.String())

	ipcs := r.Ratios(SchemeMDM, SchemePoM, "ipc")
	if len(ipcs) > 0 {
		var xs []float64
		b.WriteString("\nFig. 5 — MDM IPC normalised to PoM:\n")
		for _, row := range r.Rows {
			if row.Scheme != SchemeMDM {
				continue
			}
			if v, ok := ipcs[row.Program]; ok {
				fmt.Fprintf(&b, "  %-12s %.3f\n", row.Program, v)
				xs = append(xs, v)
			}
		}
		b.WriteString("  " + summarise("summary", xs) + "\n")
	}
	return b.String()
}

// STCSensitivityRow is one (program, STC entries) measurement for
// Figs. 8/9.
type STCSensitivityRow struct {
	Program    string
	STCEntries int
	IPC        float64
	STCHitRate float64
}

// STCSensitivityReport regenerates Figs. 8 and 9: MDM's sensitivity to the
// STC size (half / default / double).
type STCSensitivityReport struct {
	Default int
	Rows    []STCSensitivityRow
}

// RunSTCSensitivity measures MDM at the three STC sizes of Fig. 8.
func RunSTCSensitivity(opts ExpOptions) (*STCSensitivityReport, error) {
	cfg := opts.singleConfig()
	progs := opts.programs()
	sizes := []int{cfg.STCEntries / 2, cfg.STCEntries, cfg.STCEntries * 2}

	type job struct {
		prog string
		size int
	}
	var jobs []job
	for _, p := range progs {
		for _, s := range sizes {
			jobs = append(jobs, job{p, s})
		}
	}
	rows := make([]STCSensitivityRow, len(jobs))
	err := parallelFor(opts.ctx(), len(jobs), opts.Parallelism, func(i int) error {
		c := cfg
		c.STCEntries = jobs[i].size
		res, err := RunProgramContext(opts.ctx(), jobs[i].prog, SchemeMDM, c)
		if err != nil {
			return fmt.Errorf("%s/stc=%d: %w", jobs[i].prog, jobs[i].size, err)
		}
		rows[i] = STCSensitivityRow{
			Program:    jobs[i].prog,
			STCEntries: jobs[i].size,
			IPC:        res.PerCore[0].IPC,
			STCHitRate: res.PerCore[0].STCHitRate,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &STCSensitivityReport{Default: cfg.STCEntries, Rows: rows}, nil
}

// String renders IPC normalised to the default STC size plus hit rates.
func (r *STCSensitivityReport) String() string {
	base := map[string]float64{}
	for _, row := range r.Rows {
		if row.STCEntries == r.Default {
			base[row.Program] = row.IPC
		}
	}
	t := stats.NewTable("program", "STC entries", "IPC", "IPC vs default", "STC hit")
	for _, row := range r.Rows {
		t.AddRowf(row.Program, row.STCEntries, row.IPC, Ratio(row.IPC, base[row.Program]), row.STCHitRate)
	}
	return t.String()
}

// SamplingAccuracyCell is one Table 4 cell triple for a (program, M_samp).
type SamplingAccuracyCell struct {
	Program      string
	MSamp        int64
	MeanSigmaReq float64 // mean per-period region spread, %
	SigmaRawSFA  float64 // std dev of raw SF_A estimates, %
	SigmaAvgSFA  float64 // std dev of smoothed SF_A estimates, %
	MeanRawSFA   float64
	Periods      int
}

// SamplingAccuracyReport regenerates Table 4.
type SamplingAccuracyReport struct {
	Cells []SamplingAccuracyCell
}

// RunSamplingAccuracy runs the Table 4 study: selected programs alone with
// RSM probing at three sampling-period durations (the paper's 64K/128K/
// 256K requests, scaled with the system). It drives probe-instrumented
// ProFess policies through the System directly, so its runs bypass the
// run cache and the experiment is not plannable.
func RunSamplingAccuracy(opts ExpOptions) (*SamplingAccuracyReport, error) {
	if planning() {
		return nil, ErrNotPlannable
	}
	cfg := opts.singleConfig()
	progs := opts.Programs
	if len(progs) == 0 {
		progs = []string{"bwaves", "milc", "omnetpp"}
	}
	base := int64(float64(128_000) * cfg.Scale)
	if base < 2048 {
		base = 2048
	}
	msamps := []int64{base / 2, base, base * 2}

	type job struct {
		prog  string
		msamp int64
	}
	var jobs []job
	for _, p := range progs {
		for _, m := range msamps {
			jobs = append(jobs, job{p, m})
		}
	}
	cells := make([]SamplingAccuracyCell, len(jobs))
	err := parallelFor(opts.ctx(), len(jobs), opts.Parallelism, func(i int) error {
		spec, err := sim.SpecForProgram(jobs[i].prog, cfg.Scale)
		if err != nil {
			return err
		}
		pcfg := core.DefaultProFessConfig(1, cfg.Scale)
		pcfg.RSM.SamplingRequests = jobs[i].msamp
		pcfg.RSM.Probe = true
		pcfg.RSM.Regions = cfg.Regions
		policy, err := core.NewProFess(pcfg)
		if err != nil {
			return err
		}
		sys, err := sim.NewSystem(cfg, []ProgramSpec{spec}, policy)
		if err != nil {
			return err
		}
		if _, err := sys.RunContext(opts.ctx()); err != nil {
			return err
		}
		sigmaReq, raw, avg := policy.RSM().ProbeSeries(0)
		cells[i] = SamplingAccuracyCell{
			Program:      jobs[i].prog,
			MSamp:        jobs[i].msamp,
			MeanSigmaReq: stats.Mean(sigmaReq),
			SigmaRawSFA:  stats.StdDev(raw) * 100,
			SigmaAvgSFA:  stats.StdDev(avg) * 100,
			MeanRawSFA:   stats.Mean(raw),
			Periods:      len(raw),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SamplingAccuracyReport{Cells: cells}, nil
}

// String renders the Table 4 layout.
func (r *SamplingAccuracyReport) String() string {
	t := stats.NewTable("program", "M_samp", "mean sigma_req %", "sigma raw SF_A %", "sigma avg SF_A %", "mean raw SF_A", "periods")
	for _, c := range r.Cells {
		t.AddRowf(c.Program, c.MSamp, c.MeanSigmaReq, c.SigmaRawSFA, c.SigmaAvgSFA, c.MeanRawSFA, c.Periods)
	}
	return t.String()
}

// SensitivityReport holds a one-dimensional MDM-vs-PoM sweep (the §5.2
// t_WR_M2 and M1:M2-ratio studies).
type SensitivityReport struct {
	Axis   string
	Points []SensitivityPoint
}

// SensitivityPoint is the geometric-mean MDM/PoM IPC ratio at one setting.
type SensitivityPoint struct {
	Setting      string
	GeoMeanRatio float64
	PerProgram   map[string]float64
}

// RunTWRSensitivity sweeps M2's write-recovery latency (x0.5, x1, x2) and
// reports MDM's IPC improvement over PoM at each point (§5.2).
func RunTWRSensitivity(opts ExpOptions) (*SensitivityReport, error) {
	rep := &SensitivityReport{Axis: "t_WR_M2 factor"}
	for _, f := range []float64{0.5, 1, 2} {
		o := opts
		cfgMod := func(c Config) Config { c.M2TWRFactor = f; return c }
		pt, err := mdmVsPoMPoint(fmt.Sprintf("x%.1f", f), o, cfgMod)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// RunRatioSensitivity sweeps the M1:M2 capacity ratio (1:4, 1:8, 1:16)
// with M2 capacity fixed, reporting MDM over PoM (§5.2). Programs whose
// footprints fit entirely in the enlarged M1 are excluded from the 1:4
// geometric mean, as the paper excludes leslie3d, libquantum and zeusmp.
func RunRatioSensitivity(opts ExpOptions) (*SensitivityReport, error) {
	rep := &SensitivityReport{Axis: "M1:M2 ratio"}
	for _, n := range []int{4, 8, 16} {
		o := opts
		cfgMod := func(c Config) Config { return c.WithM1Ratio(n) }
		pt, err := mdmVsPoMPoint(fmt.Sprintf("1:%d", n), o, cfgMod)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// mdmVsPoMPoint measures the per-program MDM/PoM IPC ratios for one
// modified configuration.
func mdmVsPoMPoint(name string, opts ExpOptions, mod func(Config) Config) (SensitivityPoint, error) {
	cfg := mod(opts.singleConfig())
	progs := opts.programs()
	per := make(map[string]float64, len(progs))
	pomIPC := map[string]float64{}
	mdmIPC := map[string]float64{}

	type job struct {
		prog   string
		scheme Scheme
	}
	// Skip programs whose footprint does not fit the (possibly shrunken)
	// visible capacity — the 1:16 point drops the total capacity below the
	// largest Table 9 footprints, and the OS also reserves private-region
	// frames it cannot hand to this program.
	visible := cfg.M1Capacity * int64(1+cfg.M2Slots)
	var jobs []job
	for _, p := range progs {
		spec, err := sim.SpecForProgram(p, cfg.Scale)
		if err != nil {
			return SensitivityPoint{}, err
		}
		if spec.Params.Footprint > visible*9/10 {
			continue
		}
		jobs = append(jobs, job{p, SchemePoM}, job{p, SchemeMDM})
	}
	ipcs := make([]float64, len(jobs))
	err := parallelFor(opts.ctx(), len(jobs), opts.Parallelism, func(i int) error {
		res, err := RunProgramContext(opts.ctx(), jobs[i].prog, jobs[i].scheme, cfg)
		if err != nil {
			return err
		}
		ipcs[i] = res.PerCore[0].IPC
		return nil
	})
	if err != nil {
		return SensitivityPoint{}, err
	}
	for i, j := range jobs {
		if j.scheme == SchemePoM {
			pomIPC[j.prog] = ipcs[i]
		} else {
			mdmIPC[j.prog] = ipcs[i]
		}
	}
	var ratios []float64
	for _, p := range progs {
		r := Ratio(mdmIPC[p], pomIPC[p])
		per[p] = r
		if r > 0 {
			ratios = append(ratios, r)
		}
	}
	return SensitivityPoint{Setting: name, GeoMeanRatio: stats.GeoMean(ratios), PerProgram: per}, nil
}

// String renders the sweep.
func (r *SensitivityReport) String() string {
	t := stats.NewTable(r.Axis, "gmean MDM/PoM IPC")
	for _, p := range r.Points {
		t.AddRowf(p.Setting, p.GeoMeanRatio)
	}
	return t.String()
}
