package profess

import (
	"math"
	"testing"
)

// TestFairnessShape verifies the paper's headline claim at test scale:
// across contended workloads, ProFess improves fairness (reduces the max
// slowdown) relative to PoM without losing weighted speedup, and it cuts
// the swap fraction (§5.4 reports -24% swaps on average).
func TestFairnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := MultiCoreConfig(PaperScale)
	cfg.Instructions = 400_000
	cache := NewBaselineCache()

	wls := []string{"w09", "w19"}
	var sdnRatios, wsRatios, swapRatios []float64
	for _, wl := range wls {
		pom, err := RunWorkload(wl, SchemePoM, cfg, cache)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := RunWorkload(wl, SchemeProFess, cfg, cache)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: maxSdn pom=%.3f profess=%.3f | WS pom=%.3f profess=%.3f | swapFrac pom=%.4f profess=%.4f",
			wl, pom.MaxSlowdown, pf.MaxSlowdown, pom.WeightedSpeedup, pf.WeightedSpeedup,
			pom.Result.SwapFraction, pf.Result.SwapFraction)
		sdnRatios = append(sdnRatios, pf.MaxSlowdown/pom.MaxSlowdown)
		wsRatios = append(wsRatios, pf.WeightedSpeedup/pom.WeightedSpeedup)
		if pom.Result.SwapFraction > 0 {
			swapRatios = append(swapRatios, pf.Result.SwapFraction/pom.Result.SwapFraction)
		}
	}
	gmean := func(xs []float64) float64 {
		p := 1.0
		for _, x := range xs {
			p *= x
		}
		return math.Pow(p, 1/float64(len(xs)))
	}
	if g := gmean(sdnRatios); g > 1.02 {
		t.Errorf("ProFess max-slowdown ratio vs PoM = %.3f, want <= ~1 (paper: 0.85)", g)
	}
	if g := gmean(wsRatios); g < 0.98 {
		t.Errorf("ProFess weighted-speedup ratio vs PoM = %.3f, want >= ~1 (paper: 1.12)", g)
	}
}

// TestMDMvsProFessFairness verifies the RSM contribution specifically:
// guided MDM (ProFess) should not be less fair than raw MDM overall.
func TestMDMvsProFessFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := MultiCoreConfig(PaperScale)
	cfg.Instructions = 400_000
	cache := NewBaselineCache()
	var ratios []float64
	for _, wl := range []string{"w09", "w15"} {
		mdm, err := RunWorkload(wl, SchemeMDM, cfg, cache)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := RunWorkload(wl, SchemeProFess, cfg, cache)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: maxSdn mdm=%.3f profess=%.3f", wl, mdm.MaxSlowdown, pf.MaxSlowdown)
		ratios = append(ratios, pf.MaxSlowdown/mdm.MaxSlowdown)
	}
	p := 1.0
	for _, r := range ratios {
		p *= r
	}
	if g := math.Pow(p, 1/float64(len(ratios))); g > 1.05 {
		t.Errorf("ProFess should not be meaningfully less fair than MDM: ratio %.3f", g)
	}
}
