package profess

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleEnvelope is the committed contract of the sampled-simulation tier
// (interval sampling with functional fast-forward): per-workload bounds on
// how far a sampled run's per-program IPC may drift from the full-fidelity
// run's, matrix-wide summary bounds, and a wall-clock speedup floor.
// Regenerate with
//
//	go test -run TestSampleEnvelope -update .
//
// after a deliberate change to the sampling machinery, and review the diff
// — a loosening envelope means the sampled tier is drifting away from the
// ground truth it exists to approximate.
//
// The matrix deliberately includes the hardest Table 10 mixes (the
// swap-heavy w03/w06/w13/w14, whose window IPC is violently bimodal)
// alongside well-behaved ones, so the summary bounds are not flattered by
// easy workloads; -exp sample sweeps all nineteen.
type sampleEnvelope struct {
	// Fraction and Window pin the operating point the envelope was
	// measured at (Window 0 = DefaultSampleWindow).
	Fraction float64 `json:"fraction"`
	Window   int64   `json:"window"`
	// Instructions pins the run length (0 = the standard-scale default;
	// sampling error is noise-dominated far below it).
	Instructions int64    `json:"instructions"`
	Workloads    []string `json:"workloads"`
	// MeanAbsIPCErrorLimit / MaxAbsIPCErrorLimit bound the summary stats
	// over every (workload, program) point.
	MeanAbsIPCErrorLimit float64 `json:"mean_abs_ipc_error_limit"`
	MaxAbsIPCErrorLimit  float64 `json:"max_abs_ipc_error_limit"`
	// SpeedupFloor is the whole-matrix wall-clock ratio the sampled tier
	// must at least deliver. It is set well under the measured speedup —
	// wall time on shared CI is noisy — but still high enough to catch
	// the fast-forward path regressing toward the cycle model's cost.
	SpeedupFloor float64              `json:"speedup_floor"`
	Cells        []sampleEnvelopeCell `json:"cells"`
}

type sampleEnvelopeCell struct {
	Workload string `json:"workload"`
	// MeanAbsIPCErrorLimit / MaxAbsIPCErrorLimit bound the cell's mean
	// and worst per-program |sampled-full|/full.
	MeanAbsIPCErrorLimit float64 `json:"mean_abs_ipc_error_limit"`
	MaxAbsIPCErrorLimit  float64 `json:"max_abs_ipc_error_limit"`
}

const sampleEnvelopePath = "testdata/sample_envelope.json"

// TestSampleEnvelope runs the envelope's workload matrix both ways — full
// fidelity and sampled at the committed operating point — and enforces the
// committed accuracy envelope cell by cell, plus the speedup floor.
// Shares xval_test.go's -update flag.
func TestSampleEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	env := sampleEnvelope{
		Fraction:  0.05,
		Window:    0,
		Workloads: []string{"w01", "w03", "w06", "w08", "w13", "w14", "w16", "w19"},
	}
	if !*updateEnvelope {
		raw, err := os.ReadFile(sampleEnvelopePath)
		if err != nil {
			t.Fatalf("read envelope (run with -update to create): %v", err)
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("parse envelope: %v", err)
		}
	}

	rep, err := RunSampleValidation(env.Fraction, env.Window, []Scheme{SchemeProFess},
		ExpOptions{Instructions: env.Instructions, Workloads: env.Workloads})
	if err != nil {
		t.Fatal(err)
	}

	if *updateEnvelope {
		env.MeanAbsIPCErrorLimit = round4(rep.MeanAbsIPCError*1.25 + 0.02)
		env.MaxAbsIPCErrorLimit = round4(rep.MaxAbsIPCError*1.25 + 0.05)
		env.SpeedupFloor = round4(rep.Speedup / 1.5)
		env.Cells = env.Cells[:0]
		for _, row := range rep.Rows {
			env.Cells = append(env.Cells, sampleEnvelopeCell{
				Workload:             row.Workload,
				MeanAbsIPCErrorLimit: round4(row.MeanAbsIPCError*1.3 + 0.03),
				MaxAbsIPCErrorLimit:  round4(row.MaxAbsIPCError*1.3 + 0.05),
			})
		}
		raw, err := json.MarshalIndent(env, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(sampleEnvelopePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sampleEnvelopePath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: mean |e|=%.2f%% max |e|=%.2f%% speedup %.2fx",
			sampleEnvelopePath, 100*rep.MeanAbsIPCError, 100*rep.MaxAbsIPCError, rep.Speedup)
		return
	}

	limits := make(map[string]sampleEnvelopeCell, len(env.Cells))
	for _, c := range env.Cells {
		limits[c.Workload] = c
	}
	for _, row := range rep.Rows {
		lim, ok := limits[row.Workload]
		if !ok {
			t.Errorf("%s: no committed envelope cell (regenerate with -update)", row.Workload)
			continue
		}
		if row.MeanAbsIPCError > lim.MeanAbsIPCErrorLimit {
			t.Errorf("%s: mean |IPC error| %.2f%% exceeds committed %.2f%%",
				row.Workload, 100*row.MeanAbsIPCError, 100*lim.MeanAbsIPCErrorLimit)
		}
		if row.MaxAbsIPCError > lim.MaxAbsIPCErrorLimit {
			t.Errorf("%s: max |IPC error| %.2f%% exceeds committed %.2f%%",
				row.Workload, 100*row.MaxAbsIPCError, 100*lim.MaxAbsIPCErrorLimit)
		}
	}
	if len(rep.Rows) != len(env.Cells) {
		t.Errorf("matrix has %d cells, envelope commits %d (regenerate with -update)", len(rep.Rows), len(env.Cells))
	}
	if rep.MeanAbsIPCError > env.MeanAbsIPCErrorLimit {
		t.Errorf("mean |IPC error| %.2f%% exceeds committed %.2f%%",
			100*rep.MeanAbsIPCError, 100*env.MeanAbsIPCErrorLimit)
	}
	if rep.MaxAbsIPCError > env.MaxAbsIPCErrorLimit {
		t.Errorf("max |IPC error| %.2f%% exceeds committed %.2f%%",
			100*rep.MaxAbsIPCError, 100*env.MaxAbsIPCErrorLimit)
	}
	if rep.Speedup < env.SpeedupFloor {
		t.Errorf("speedup %.2fx below committed floor %.2fx (full %.1fs, sampled %.1fs)",
			rep.Speedup, env.SpeedupFloor, rep.FullSec, rep.SampledSec)
	}
	t.Logf("mean |e|=%.2f%% max |e|=%.2f%% speedup %.2fx",
		100*rep.MeanAbsIPCError, 100*rep.MaxAbsIPCError, rep.Speedup)
}

// TestSampleValReportRendering exercises the table and scatter CSV on a
// tiny matrix so the -exp sample driver's outputs stay well-formed.
func TestSampleValReportRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := RunSampleValidation(0.2, 30_000, []Scheme{SchemeProFess},
		ExpOptions{Instructions: 300_000, Workloads: []string{"w09", "w19"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	s := rep.String()
	for _, want := range []string{"w09", "w19", "speedup", "IPC error"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "mean_abs_ipc_error") {
		t.Errorf("CSV() missing headers:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("CSV() has %d lines, want 3 (header + 2 rows)", lines)
	}
}
