// Package analytic is the closed-form fast tier of the simulator: it
// predicts per-scheme IPC, per-program slowdown, M1/M2 traffic mix and
// NVM lifetime directly from the workload statistics the trace
// generators expose (footprint, write fraction, gap, locality knobs) —
// no event loop, microseconds per estimate.
//
// The shape of the model follows Salkhordeh, Mutlu & Asadi, "An
// Analytical Model for Performance and Lifetime Estimation of Hybrid
// DRAM-NVM Main Memories" (TPDS 2019, arXiv:1903.10067): a memory
// request stream is characterised by its hit distribution across the
// hierarchy levels, each level by a service latency, and the processor
// by the overlap (MLP) it can extract; lifetime follows from the NVM
// write rate and the evenness of its spread. The calibration constants
// in Model are fitted against this repository's cycle model (see the
// cross-validation suite in exp_xval.go and xval_test.go at the repo
// root), not taken from the paper.
//
// Fidelity contract: the estimator is a screen, not a simulator. It is
// calibrated to rank schemes and to flag cells where schemes cannot
// differ (footprint resident in M1, MPKI too low for the memory system
// to matter); absolute IPC carries the committed cross-validation
// envelope's error. Anything that depends on fine-grained event
// interleaving — fault injection, telemetry traces, queue transients,
// the deterministic bank-collision patterns of the page allocator — is
// out of scope and is exactly what the cycle model remains for.
package analytic

import (
	"fmt"
	"math"

	"profess/internal/mem"
	"profess/internal/sim"
	"profess/internal/trace"
)

// Model holds the calibration constants of the analytic estimator.
// Default() returns the set fitted against the cycle model; tests
// perturb individual fields to probe structural properties.
type Model struct {
	// Schemes holds the per-scheme migration calibration.
	Schemes map[sim.Scheme]SchemeCal

	// QueueWeight scales the shared-bus queueing delay term S·u/(1-u).
	QueueWeight float64
	// BankPressure scales the bank-conflict queueing a row-missing
	// access suffers (misses keep their bank busy for the activate
	// cycle, so colliding traffic serialises behind them).
	BankPressure float64
	// WriteRecoveryWeight scales the write-recovery (tWR) blocking a
	// row-missing access suffers behind an earlier write to its bank.
	WriteRecoveryWeight float64
	// OverlapSlack blends the compute and memory phases: per-reference
	// time is max(front, mem) + OverlapSlack·min(front, mem), modelling
	// imperfect overlap of the two.
	OverlapSlack float64
	// RowHitDiscount derates the geometric row-hit estimate for
	// scheduling noise (refresh, swap row closures, bank collisions).
	RowHitDiscount float64
	// L3StreamResidual is the L3 hit rate of a cyclic stream whose
	// footprint exceeds the cache (LRU's pathological case).
	L3StreamResidual float64
	// L3FitHit is the steady-state hit rate once a working set is
	// fully L3-resident (compulsory misses and conflicts keep it < 1).
	L3FitHit float64
	// L3IrrDiscount derates the irregular-pattern L3 residency estimate
	// for the pollution the cold stream inflicts on the hot lines.
	L3IrrDiscount float64

	// M2ExtraLatency adds cycles to every M2 access; zero in Default().
	// The monotonicity property tests sweep it as "M2 latency".
	M2ExtraLatency float64
}

// SchemeCal captures how one migration scheme converts the workload's
// locality into M1 service, and what it pays for it.
type SchemeCal struct {
	// Hot is the fraction of the ideal hot-set-resident-in-M1 placement
	// the scheme achieves for the *first* line of a block visit.
	Hot float64
	// Spatial is the probability the scheme has the rest of a block
	// visit's lines M1-resident (on-access migration captures the burst
	// that follows the first touch; interval-based schemes mostly miss it).
	Spatial float64
	// SwapsPerMiss is the block swaps triggered per demand miss served
	// by M2.
	SwapsPerMiss float64
	// SwapStall is the exposed cost of one swap in units of the swap's
	// channel-blocking latency, before MLP amortisation: synchronous
	// swaps stall the requester and pile up the queue behind the
	// blocked channel; interval/deferred schemes overlap most of it.
	SwapStall float64
	// Conflict inflates the swap rate per concurrent stream beyond the
	// first: direct-mapped remapping (CAMEO, SILC-FM) thrashes when
	// several streams' blocks contend for the same M1 frame.
	Conflict float64
}

// Default returns the calibration fitted against the cycle model on the
// ten Table 9 generators (see xval_test.go for the enforced envelope).
//
// Behaviourally equivalent scheme families are deliberately fitted with
// one shared (tied) calibration vector: mdm is profess minus the fairness
// weighting, and cameo differs from silc-fm only in remap granularity,
// which the scaled capacities erase. Tying keeps fit noise from inventing
// analytic distinctions the cycle model does not have — tied schemes
// produce bitwise-identical estimates, which is what lets the sweep
// pruner (SweepPlan.Prune) collapse their cells with confidence.
func Default() Model {
	return Model{
		Schemes: map[sim.Scheme]SchemeCal{
			sim.SchemeStatic:  {},
			sim.SchemeCAMEO:   {Hot: 0.353, Spatial: 0.900, SwapsPerMiss: 0.327, SwapStall: 0.389, Conflict: 0.050},
			sim.SchemeSILCFM:  {Hot: 0.353, Spatial: 0.900, SwapsPerMiss: 0.327, SwapStall: 0.389, Conflict: 0.050},
			sim.SchemeMemPod:  {Hot: 0.590, Spatial: 0.772, SwapsPerMiss: 0.097, SwapStall: 2.086, Conflict: 0.105},
			sim.SchemePoM:     {Hot: 0.494, Spatial: 0.720, SwapsPerMiss: 0.061, SwapStall: 0.725, Conflict: 0.248},
			sim.SchemeMDM:     {Hot: 0.900, Spatial: 0.900, SwapsPerMiss: 0.092, SwapStall: 3.088, Conflict: 0.201},
			sim.SchemeProFess: {Hot: 0.900, Spatial: 0.900, SwapsPerMiss: 0.092, SwapStall: 3.088, Conflict: 0.201},
		},
		QueueWeight:         0.521,
		BankPressure:        1.778,
		WriteRecoveryWeight: 0.000,
		OverlapSlack:        0.000,
		RowHitDiscount:      1.000,
		L3StreamResidual:    0.02,
		L3FitHit:            0.97,
		L3IrrDiscount:       0.416,
	}
}

// ProgramEstimate is the model's prediction for one program of a cell.
type ProgramEstimate struct {
	Name string
	// IPC is the predicted steady-state IPC in the cell's mix; IPCAlone
	// the predicted stand-alone IPC in the same configuration.
	IPC      float64
	IPCAlone float64
	// Slowdown is IPCAlone/IPC, ≥ 1 by construction.
	Slowdown float64
	// M1Fraction is the fraction of memory demand accesses served by M1.
	M1Fraction float64
	L3HitRate  float64
	// RowHitRate and AvgMemLat expose the latency pipeline's inner
	// predictions (cycles) for cross-validation and debugging.
	RowHitRate float64
	AvgMemLat  float64
}

// TrafficMix splits demand memory traffic by partition and direction.
// The four fractions sum to 1 whenever the cell generates any traffic.
type TrafficMix struct {
	M1Reads, M1Writes, M2Reads, M2Writes float64
}

// Sum returns the total of the four fractions (1 or 0).
func (t TrafficMix) Sum() float64 { return t.M1Reads + t.M1Writes + t.M2Reads + t.M2Writes }

// Lifetime is the model's NVM endurance projection.
type Lifetime struct {
	// M2WriteBurstsPerSecond is the predicted 64-B write-burst rate into
	// M2 (demand writes plus swap write phases).
	M2WriteBurstsPerSecond float64
	// LevelingEfficiency estimates mean/max per-line write density in
	// (0, 1]; 0 when no M2 writes are predicted.
	LevelingEfficiency float64
	// LifetimeSeconds is the projected time until the hottest line
	// exhausts mem.EnduranceWrites; LifetimeIdealSeconds the same under
	// perfect wear leveling. 0 when no M2 writes are predicted.
	LifetimeSeconds      float64
	LifetimeIdealSeconds float64
}

// Estimate is the analytic prediction for one simulation cell.
type Estimate struct {
	Scheme   sim.Scheme
	Programs []ProgramEstimate
	Traffic  TrafficMix
	NVM      Lifetime
	// SwapFraction is predicted block swaps per demand memory access.
	SwapFraction    float64
	WeightedSpeedup float64
	MaxSlowdown     float64
}

// IPCOf returns the predicted IPC of the named program (first match).
func (e Estimate) IPCOf(name string) (float64, bool) {
	for _, p := range e.Programs {
		if p.Name == name {
			return p.IPC, true
		}
	}
	return 0, false
}

// unit is one program of the cell with its derived, latency-independent
// characteristics; the contention loop iterates only the timing state.
type unit struct {
	name    string
	p       trace.Params
	threads float64

	frontend float64 // compute cycles per reference (gap/width)
	maxOut   float64 // MLP window, as the core derives it
	pL3      float64
	m1f      float64
	rowHit   float64
	placeM1  float64 // fraction of the footprint resident in M1
	effBanks float64 // banks the unit's own traffic spreads over

	tRef   float64 // current per-reference cycles
	lamMem float64 // memory demand refs per cycle (all threads)
	lmem   float64 // current average demand memory latency (cycles)
}

// Estimate predicts the cell (cfg, specs, scheme). It returns an error
// for unknown schemes and empty or zero-footprint specs; the cycle model
// remains the source of truth for anything it cannot express.
func (m Model) Estimate(cfg sim.Config, specs []sim.ProgramSpec, scheme sim.Scheme) (Estimate, error) {
	cal, ok := m.Schemes[scheme]
	if !ok {
		return Estimate{}, fmt.Errorf("analytic: no calibration for scheme %q", scheme)
	}
	if len(specs) == 0 {
		return Estimate{}, fmt.Errorf("analytic: no program specs")
	}
	for _, s := range specs {
		if s.Params.Footprint <= 0 {
			return Estimate{}, fmt.Errorf("analytic: program %q has no footprint", s.Params.Name)
		}
	}

	t1 := mem.DefaultM1Timing()
	t2 := mem.DefaultM2Timing()
	if cfg.M2TWRFactor > 0 && cfg.M2TWRFactor != 1 {
		t2.TWR = int64(float64(t2.TWR) * cfg.M2TWRFactor)
	}
	c1 := float64(cfg.M1Capacity)
	c2 := c1 * float64(cfg.M2Slots)
	c3 := float64(cfg.L3Capacity)
	staticFrac := 1 / (1 + float64(cfg.M2Slots))

	var totalF float64
	for _, s := range specs {
		totalF += float64(s.Params.Footprint)
	}

	// Shared-run units: capacity shares are footprint-proportional.
	units := make([]*unit, len(specs))
	for i, s := range specs {
		share := float64(s.Params.Footprint) / totalF
		units[i] = m.newUnit(cfg, s, c3*share, c1*share, staticFrac, cal)
	}
	m.contend(units, cfg, t1, t2, cal)

	// Stand-alone runs: the program owns the full caches and channels.
	alone := make([]*unit, len(specs))
	for i, s := range specs {
		alone[i] = m.newUnit(cfg, s, c3, c1, staticFrac, cal)
		m.contend(alone[i:i+1], cfg, t1, t2, cal)
	}

	est := Estimate{Scheme: scheme, Programs: make([]ProgramEstimate, len(specs))}
	for i, u := range units {
		ipcShared := (float64(u.p.GapMean) + 1) / u.tRef * u.threads
		ipcAlone := (float64(alone[i].p.GapMean) + 1) / alone[i].tRef * alone[i].threads
		// A shared run cannot beat the stand-alone run it is a subset of;
		// clamp so slowdown ≥ 1 holds by construction.
		if ipcShared > ipcAlone {
			ipcShared = ipcAlone
		}
		sd := ipcAlone / ipcShared
		est.Programs[i] = ProgramEstimate{
			Name:       u.name,
			IPC:        ipcShared,
			IPCAlone:   ipcAlone,
			Slowdown:   sd,
			M1Fraction: u.m1f,
			L3HitRate:  u.pL3,
			RowHitRate: u.rowHit,
			AvgMemLat:  u.lmem,
		}
		est.WeightedSpeedup += 1 / sd
		if sd > est.MaxSlowdown {
			est.MaxSlowdown = sd
		}
	}

	est.Traffic = trafficMix(units)
	var demandPerCycle, swapsPerCycle float64
	for _, u := range units {
		demandPerCycle += u.lamMem
		swapsPerCycle += u.lamMem * (1 - u.m1f) * effSwapsPerMiss(cal, u.p)
	}
	if demandPerCycle > 0 {
		est.SwapFraction = swapsPerCycle / demandPerCycle
	}
	est.NVM = m.lifetime(units, cfg, c2, cal)
	return est, nil
}

// newUnit derives the latency-independent characteristics of one program
// given its cache and M1 capacity shares.
func (m Model) newUnit(cfg sim.Config, s sim.ProgramSpec, c3Share, c1Share, staticFrac float64, cal SchemeCal) *unit {
	p := s.Params
	core := cfg.CoreCfg
	if core.Width <= 0 {
		core.Width = 4
	}
	if core.ROB <= 0 {
		core.ROB = 256
	}
	maxOut := float64(core.MaxOutstanding)
	if maxOut <= 0 {
		// Mirror cpu.New's derivation: ROB/gap, clamped to [1, 16].
		g := math.Trunc(float64(p.GapMean))
		if g < 1 {
			g = 1
		}
		maxOut = math.Trunc(float64(core.ROB) / g)
		if maxOut < 1 {
			maxOut = 1
		}
		if maxOut > 16 {
			maxOut = 16
		}
	}
	threads := float64(s.Threads)
	if threads < 1 {
		threads = 1
	}
	u := &unit{
		name:     p.Name,
		p:        p,
		threads:  threads,
		frontend: float64(p.GapMean) / float64(core.Width),
		maxOut:   maxOut,
	}
	// The Mixed pattern alternates stream and irregular phases; weight
	// the two behaviours by the share of the run each phase occupies.
	wIrr := irregularShare(cfg, p)
	l3s, l3i := m.l3Stream(p, c3Share), m.l3Irregular(p, c3Share)
	u.pL3 = (1-wIrr)*l3s + wIrr*l3i
	// Row locality of the post-L3 stream: blend the phase row-hit rates
	// by each phase's *miss* traffic, not its reference count.
	ws, wi := (1-wIrr)*(1-l3s), wIrr*(1-l3i)
	if ws+wi > 0 {
		u.rowHit = (ws*m.rowHitStream(p) + wi*m.rowHitIrregular(p)) / (ws + wi)
	}
	// Bank spread of the unit's own post-L3 traffic: each stream sweeps
	// one bank at a time (rows stripe over banks, a 4-KB page spans half
	// a row), so streaming traffic serialises on ~Streams banks while
	// irregular traffic scatters over the whole array.
	streams := float64(p.Streams)
	if streams < 1 {
		streams = 1
	}
	bankSpread := math.Min(16, streams)
	u.effBanks = (1-wIrr)*bankSpread + wIrr*16
	// M1 service decomposes per block visit. The first line of a visit
	// hits M1 only if the block is already resident — static placement
	// scatters pages so that is staticFrac; hot-set-tracking migration
	// closes cal.Hot of the gap to the ideal residency. The remaining
	// lines of the visit hit M1 if the scheme migrated the block on the
	// first touch (cal.Spatial — on-access schemes capture this burst,
	// interval-based ones mostly do not).
	resident := residency(p, c1Share)
	first := staticFrac + cal.Hot*(resident-staticFrac)
	spatial := m.spatialFraction(p)
	u.m1f = first + (1-first)*cal.Spatial*spatial
	// Placement (capacity residency, for wear): the migrated share of
	// the footprint sits in M1.
	idealPlace := math.Min(1, c1Share/float64(p.Footprint))
	u.placeM1 = staticFrac + cal.Hot*(idealPlace-staticFrac)
	return u
}

// irregularShare is the fraction of the run's references the generator
// spends in irregular behaviour: 1 for the pointer-chasing patterns, 0
// for pure streams, and the phase-alternation share for Mixed — which
// depends on the run length, because a run shorter than one phase never
// leaves the opening stream phase.
func irregularShare(cfg sim.Config, p trace.Params) float64 {
	switch p.Pattern {
	case trace.PointerChase, trace.StridedRandom:
		return 1
	case trace.Mixed:
	default:
		return 0
	}
	per := float64(p.PhaseRefs)
	if per <= 0 {
		per = float64(p.Footprint) / 64 / 8
		if per < 1024 {
			per = 1024
		}
	}
	gap := float64(p.GapMean) + 1
	refs := float64(cfg.Instructions) / gap
	if refs <= 0 {
		return 0.5 // unknown run length: steady-state alternation
	}
	// Odd-indexed phases are irregular.
	pairs := math.Floor(refs / (2 * per))
	rem := refs - pairs*2*per
	irr := pairs*per + math.Max(0, rem-per)
	return irr / refs
}

// spatialFraction is the fraction of a block visit's post-L3 lines that
// follow the first touch: a stream sweeps all 32 lines of a 2-KB block
// consecutively, an irregular touch bursts LinesPerTouch lines.
func (m Model) spatialFraction(p trace.Params) float64 {
	const blockLines = 2048.0 / 64
	frac := func(k float64) float64 {
		if k < 1 {
			k = 1
		}
		if k > blockLines {
			k = blockLines
		}
		return (k - 1) / k
	}
	switch p.Pattern {
	case trace.Stream:
		return frac(blockLines)
	case trace.Mixed:
		return (frac(blockLines) + frac(float64(p.LinesPerTouch))) / 2
	default:
		return frac(float64(p.LinesPerTouch))
	}
}

// l3Stream predicts the L3 hit rate of the streaming behaviour. The
// stream pointer advances one line per visit while a visit touches
// LinesPerTouch consecutive lines, so successive visits overlap in all
// but one line: (k-1)/k of touches re-hit lines of the previous visit
// regardless of footprint. A footprint that fits is simply resident.
func (m Model) l3Stream(p trace.Params, c3Share float64) float64 {
	if float64(p.Footprint) <= c3Share {
		return m.L3FitHit
	}
	k := float64(p.LinesPerTouch)
	if k < 1 {
		k = 1
	}
	h := (k - 1) / k
	if h < m.L3StreamResidual {
		h = m.L3StreamResidual
	}
	if h > m.L3FitHit {
		h = m.L3FitHit
	}
	return h
}

// l3Irregular predicts the L3 hit rate of the irregular behaviour:
// recent-window revisits hit an LRU cache almost surely; the rest hit
// with the residency of their density class, derated for the pollution
// the cold stream inflicts.
func (m Model) l3Irregular(p trace.Params, c3Share float64) float64 {
	h := p.RecentProb + (1-p.RecentProb)*residency(p, c3Share)
	h *= m.L3IrrDiscount
	if h > m.L3FitHit {
		h = m.L3FitHit
	}
	return h
}

// residency greedily fills capacity with the program's densest address
// classes (hot region first) and returns the covered access fraction.
func residency(p trace.Params, capacity float64) float64 {
	f := float64(p.Footprint)
	if capacity >= f {
		return 1
	}
	hotBytes := p.HotFrac * f
	hotProb := p.HotProb
	if hotBytes <= 0 || hotProb <= 0 {
		hotBytes, hotProb = 0, 0
	}
	var hit float64
	if hotBytes > 0 {
		cover := math.Min(1, capacity/hotBytes)
		hit += hotProb * cover
		capacity = math.Max(0, capacity-hotBytes)
	}
	if cold := f - hotBytes; cold > 0 {
		hit += (1 - hotProb) * math.Min(1, capacity/cold)
	}
	return hit
}

// rowHitStream predicts the row-buffer locality of interleaved streams:
// each stream sweeps linearly within a 4-KB page (the translation
// granularity) and loses the row at every page crossing; concurrent
// streams parked on the same bank evict each other's rows. The collision
// term is the birthday bound over the 16 banks — the real allocator's
// deterministic placement can be much better or much worse, which the
// RowHitDiscount absorbs on average.
func (m Model) rowHitStream(p trace.Params) float64 {
	const pageLines = 4096.0 / 64.0
	const banks = 16.0
	run := (pageLines - 1) / pageLines
	s := float64(p.Streams)
	if s < 1 {
		s = 1
	}
	collide := 1 - math.Pow(1-1/banks, s-1)
	return run * (1 - collide) * m.RowHitDiscount
}

// rowHitIrregular predicts the row locality of irregular bursts: the
// LinesPerTouch consecutive lines of one visit share a row, the first
// line of each visit opens a new one.
func (m Model) rowHitIrregular(p trace.Params) float64 {
	k := float64(p.LinesPerTouch)
	if k < 1 {
		k = 1
	}
	return (k - 1) / k
}

// contend resolves the mutual dependence between per-reference time and
// channel contention for a set of co-running units by fixed-point
// iteration: latencies inflate with bus and bank utilisation, which
// derives from the reference rates those latencies allow.
func (m Model) contend(units []*unit, cfg sim.Config, t1, t2 mem.Timing, cal SchemeCal) {
	channels := float64(cfg.Channels)
	if channels < 1 {
		channels = 1
	}
	const banks = 16.0
	burst := float64(t1.Burst)
	swapLat := swapLatency(cfg)

	for _, u := range units {
		u.tRef = math.Max(u.frontend, 1)
		u.lamMem = 0
	}
	for iter := 0; iter < 2000; iter++ {
		var maxDelta float64
		// Shared-channel load from the current rates: demand bursts plus
		// the swaps they trigger, which block the whole channel for the
		// full swap latency — the bandwidth drain that makes swap-thrash
		// collapse throughput.
		var busCycles, events float64
		var lam1, lam2, occ1, occ2 float64
		for _, u := range units {
			trig := u.lamMem * (1 - u.m1f) * effSwapsPerMiss(cal, u.p)
			busCycles += u.lamMem*burst + trig*swapLat
			events += u.lamMem + trig
			l1 := u.lamMem * u.m1f
			l2 := u.lamMem * (1 - u.m1f)
			lam1 += l1
			lam2 += l2
			occ1 += l1 * m.bankOccupancy(t1, u)
			occ2 += l2 * m.bankOccupancy(t2, u)
		}
		util := math.Min(0.97, busCycles/channels)
		var meanService float64
		if events > 0 {
			meanService = busCycles / events / channels
		}
		queueWait := m.QueueWeight * meanService * util / (1 - util)
		// Shared bank pressure from the other units' traffic, spread over
		// the whole bank array (independent footprints rarely collide on
		// the same bank deterministically; the birthday term in rowHit
		// covers what they do to each other's rows).
		u1 := math.Min(0.95, occ1/(channels*banks))
		u2 := math.Min(0.95, occ2/(channels*banks))
		var s1, s2 float64
		if lam1 > 0 {
			s1 = occ1 / lam1
		}
		if lam2 > 0 {
			s2 = occ2 / lam2
		}
		bankWait1 := m.BankPressure * s1 * u1 / (1 - u1)
		bankWait2 := m.BankPressure * s2 * u2 / (1 - u2)

		for _, u := range units {
			// Own-traffic bank serialisation: a unit's references land on
			// only effBanks banks (one stream sweeps a single bank at a
			// time), so its own rate alone can saturate them no matter how
			// idle the rest of the array is.
			o1 := m.bankOccupancy(t1, u)
			o2 := m.bankOccupancy(t2, u)
			r1 := math.Min(0.95, u.lamMem*u.m1f*o1/(channels*u.effBanks))
			r2 := math.Min(0.95, u.lamMem*(1-u.m1f)*o2/(channels*u.effBanks))
			own1 := m.BankPressure * o1 * r1 / (1 - r1)
			own2 := m.BankPressure * o2 * r2 / (1 - r2)
			l1 := m.moduleLatency(t1, u) + bankWait1 + own1
			l2 := m.moduleLatency(t2, u) + bankWait2 + own2 + m.M2ExtraLatency
			u.lmem = float64(cfg.L3HitLatency) + u.m1f*l1 + (1-u.m1f)*l2 + queueWait
			avg := u.pL3*float64(cfg.L3HitLatency) + (1-u.pL3)*u.lmem
			memTime := avg * (u.p.DepFrac + (1-u.p.DepFrac)/u.maxOut)
			// The exposed swap cost: a swap blocks the whole channel, but
			// the MLP window amortises the block across the references in
			// flight, so the per-reference exposure shrinks with the
			// program's effective parallelism (the same dep+1/maxOut
			// factor that converts latency to throughput time).
			mlp := u.p.DepFrac + (1-u.p.DepFrac)/u.maxOut
			swapSerial := (1 - u.pL3) * (1 - u.m1f) * effSwapsPerMiss(cal, u.p) * cal.SwapStall * swapLat * mlp
			hi, lo := u.frontend, memTime
			if lo > hi {
				hi, lo = lo, hi
			}
			u.tRef = hi + m.OverlapSlack*lo + swapSerial
			if u.tRef < 1 {
				u.tRef = 1
			}
			// Relaxation: the rate map is decreasing in the load (more load,
			// more waiting, lower rate), so its fixed point is unique — but
			// near the utilisation cap the map is steep and the undamped
			// iteration orbits a 2-cycle instead of converging. The heavy
			// damping keeps the damped map a contraction there.
			next := (1 - u.pL3) / u.tRef * u.threads
			lam := 0.9*u.lamMem + 0.1*next
			if d := math.Abs(lam-u.lamMem) / math.Max(lam, 1e-12); d > maxDelta {
				maxDelta = d
			}
			u.lamMem = lam
		}
		if iter > 10 && maxDelta < 1e-10 {
			break
		}
	}
}

// effSwapsPerMiss is the scheme's swap rate per M2 demand miss with the
// stream-conflict inflation applied.
func effSwapsPerMiss(cal SchemeCal, p trace.Params) float64 {
	s := float64(p.Streams)
	if s < 1 {
		s = 1
	}
	return cal.SwapsPerMiss * (1 + cal.Conflict*(s-1))
}

// bankOccupancy is the average time one demand access keeps its bank
// busy in the given module.
func (m Model) bankOccupancy(t mem.Timing, u *unit) float64 {
	occ := float64(t.CL + t.Burst)
	occ += (1 - u.rowHit) * float64(t.TRP+t.TRCD)
	occ += u.p.WriteFrac * (1 - u.rowHit) * float64(t.TWR) * m.WriteRecoveryWeight
	return occ
}

// moduleLatency is the average demand latency of one module for the
// unit's row-locality and write mix.
func (m Model) moduleLatency(t mem.Timing, u *unit) float64 {
	hit := float64(t.CL + t.Burst)
	miss := float64(t.TRP + t.TRCD + t.CL + t.Burst)
	l := u.rowHit*hit + (1-u.rowHit)*miss
	// Row misses behind a write wait out the bank's write recovery.
	l += u.p.WriteFrac * (1 - u.rowHit) * float64(t.TWR) * m.WriteRecoveryWeight
	return l
}

// swapLatency mirrors mem.ChannelConfig.SwapLatency for the cell's
// configuration without building channels.
func swapLatency(cfg sim.Config) float64 {
	ch := mem.DefaultChannelConfig(1<<20, 1<<20)
	if cfg.M2TWRFactor > 0 && cfg.M2TWRFactor != 1 {
		ch.M2Timing.TWR = int64(float64(ch.M2Timing.TWR) * cfg.M2TWRFactor)
	}
	return float64(ch.SwapLatency())
}

// trafficMix aggregates the units' demand traffic into fractions.
func trafficMix(units []*unit) TrafficMix {
	var t TrafficMix
	var total float64
	for _, u := range units {
		wf := u.p.WriteFrac
		t.M1Reads += u.lamMem * u.m1f * (1 - wf)
		t.M1Writes += u.lamMem * u.m1f * wf
		t.M2Reads += u.lamMem * (1 - u.m1f) * (1 - wf)
		t.M2Writes += u.lamMem * (1 - u.m1f) * wf
		total += u.lamMem
	}
	if total <= 0 {
		return TrafficMix{}
	}
	t.M1Reads /= total
	t.M1Writes /= total
	t.M2Reads /= total
	t.M2Writes /= total
	return t
}

// lifetime projects NVM endurance from the predicted M2 write stream.
func (m Model) lifetime(units []*unit, cfg sim.Config, c2 float64, cal SchemeCal) Lifetime {
	blockBursts := float64((2 << 10) / 64) // swap block write bursts
	var bursts float64                     // M2 write bursts per cycle
	var writtenBytes, skewNum, skewDen float64
	for _, u := range units {
		demand := u.lamMem * (1 - u.m1f) * u.p.WriteFrac
		swaps := u.lamMem * (1 - u.m1f) * effSwapsPerMiss(cal, u.p)
		w := demand + swaps*blockBursts
		bursts += w
		// The program's M2-resident bytes absorb its share of the wear;
		// skew concentrates writes on the hot region left in M2.
		resident := float64(u.p.Footprint) * (1 - u.placeM1)
		writtenBytes += resident
		skew := 1.0
		if u.p.HotFrac > 0 && u.p.HotProb > u.p.HotFrac {
			// Migration drains the hot set out of M2; the residue keeps
			// (1-eff) of the static placement's concentration.
			skew = 1 + (1-cal.Hot)*(u.p.HotProb/u.p.HotFrac-1)
		}
		skewNum += w * skew
		skewDen += w
	}
	var lt Lifetime
	if bursts <= 0 || c2 <= 0 {
		return lt
	}
	perSec := bursts * mem.CyclesPerNs * 1e9
	lines := c2 / 64
	lt.M2WriteBurstsPerSecond = perSec
	lt.LifetimeIdealSeconds = mem.EnduranceWrites * lines / perSec

	skew := skewNum / skewDen
	writtenFrac := math.Min(1, writtenBytes/c2)
	if writtenFrac <= 0 {
		writtenFrac = 1 / lines // at least one line wears
	}
	lt.LevelingEfficiency = writtenFrac / skew
	lt.LifetimeSeconds = lt.LifetimeIdealSeconds * lt.LevelingEfficiency
	return lt
}
