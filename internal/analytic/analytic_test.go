package analytic

import (
	"math"
	"math/rand"
	"testing"

	"profess/internal/sim"
	"profess/internal/trace"
)

// randSpec draws one random-but-plausible program parameterisation. The
// ranges bracket the Table 9 catalogue generously so the properties are
// probed well outside the calibration set.
func randSpec(r *rand.Rand, name string) sim.ProgramSpec {
	patterns := []trace.Pattern{trace.Stream, trace.PointerChase, trace.Mixed, trace.StridedRandom}
	p := trace.Params{
		Name:          name,
		Footprint:     int64(1+r.Intn(64)) << 20, // 1..64 MB
		Pattern:       patterns[r.Intn(len(patterns))],
		WriteFrac:     0.5 * r.Float64(),
		GapMean:       int32(5 + r.Intn(200)),
		Streams:       1 + r.Intn(16),
		HotFrac:       0.01 + 0.2*r.Float64(),
		HotProb:       r.Float64(),
		DepFrac:       0.9 * r.Float64(),
		LinesPerTouch: 1 + r.Intn(8),
		RecentProb:    0.6 * r.Float64(),
		RecentWindow:  32,
		Seed:          r.Uint64(),
	}
	if r.Intn(2) == 0 {
		p.PhaseRefs = int64(100_000 + r.Intn(500_000))
	}
	return sim.ProgramSpec{Name: name, Params: p}
}

func testConfig() sim.Config {
	cfg := sim.SingleCoreConfig(1.0 / 32)
	cfg.Instructions = 2_000_000
	return cfg
}

func schemes() []sim.Scheme { return sim.AllSchemes() }

// TestEstimateInvariants quick-checks the structural guarantees of the
// estimator over random workloads and every scheme: IPC is positive and
// finite, slowdown ≥ 1, fractions live in [0, 1], and the traffic mix
// sums to one whenever the cell generates traffic.
func TestEstimateInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := Default()
	cfg := testConfig()
	for trial := 0; trial < 60; trial++ {
		specs := []sim.ProgramSpec{randSpec(r, "a")}
		if trial%3 == 0 { // every third trial runs a four-program mix
			specs = append(specs, randSpec(r, "b"), randSpec(r, "c"), randSpec(r, "d"))
		}
		for _, s := range schemes() {
			est, err := m.Estimate(cfg, specs, s)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s, err)
			}
			if len(est.Programs) != len(specs) {
				t.Fatalf("trial %d %s: %d programs, want %d", trial, s, len(est.Programs), len(specs))
			}
			for _, pe := range est.Programs {
				if !(pe.IPC > 0) || math.IsInf(pe.IPC, 0) || math.IsNaN(pe.IPC) {
					t.Errorf("trial %d %s %s: IPC = %v", trial, s, pe.Name, pe.IPC)
				}
				if pe.Slowdown < 1 {
					t.Errorf("trial %d %s %s: slowdown %v < 1", trial, s, pe.Name, pe.Slowdown)
				}
				for what, v := range map[string]float64{
					"M1Fraction": pe.M1Fraction, "L3HitRate": pe.L3HitRate, "RowHitRate": pe.RowHitRate,
				} {
					if v < 0 || v > 1 || math.IsNaN(v) {
						t.Errorf("trial %d %s %s: %s = %v outside [0,1]", trial, s, pe.Name, what, v)
					}
				}
				if pe.AvgMemLat < 0 || math.IsNaN(pe.AvgMemLat) || math.IsInf(pe.AvgMemLat, 0) {
					t.Errorf("trial %d %s %s: AvgMemLat = %v", trial, s, pe.Name, pe.AvgMemLat)
				}
			}
			if sum := est.Traffic.Sum(); sum != 0 && math.Abs(sum-1) > 1e-9 {
				t.Errorf("trial %d %s: traffic fractions sum to %v, want 1 (or 0)", trial, s, sum)
			}
			if est.SwapFraction < 0 || math.IsNaN(est.SwapFraction) {
				t.Errorf("trial %d %s: SwapFraction = %v", trial, s, est.SwapFraction)
			}
			if est.NVM.LifetimeSeconds < 0 || est.NVM.LifetimeIdealSeconds < est.NVM.LifetimeSeconds-1e-9 {
				t.Errorf("trial %d %s: lifetime %v exceeds ideal %v", trial, s,
					est.NVM.LifetimeSeconds, est.NVM.LifetimeIdealSeconds)
			}
			if le := est.NVM.LevelingEfficiency; le < 0 || le > 1+1e-9 {
				t.Errorf("trial %d %s: leveling efficiency %v outside [0,1]", trial, s, le)
			}
		}
	}
}

// TestIPCMonotoneInM2Latency checks that making M2 slower never makes
// any scheme's predicted IPC better, both through the additive
// M2ExtraLatency knob and through the configuration's write-recovery
// factor (which also lengthens swaps).
func TestIPCMonotoneInM2Latency(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := testConfig()
	for trial := 0; trial < 40; trial++ {
		specs := []sim.ProgramSpec{randSpec(r, "a")}
		for _, s := range schemes() {
			prev := math.Inf(1)
			for _, extra := range []float64{0, 100, 400, 1600, 6400} {
				m := Default()
				m.M2ExtraLatency = extra
				est, err := m.Estimate(cfg, specs, s)
				if err != nil {
					t.Fatal(err)
				}
				ipc := est.Programs[0].IPC
				if ipc > prev*(1+1e-9) {
					t.Errorf("trial %d %s: IPC rose %.6f -> %.6f when M2ExtraLatency reached %v",
						trial, s, prev, ipc, extra)
				}
				prev = ipc
			}
			prev = math.Inf(1)
			for _, twr := range []float64{1, 2, 4, 8} {
				c := cfg
				c.M2TWRFactor = twr
				est, err := Default().Estimate(c, specs, s)
				if err != nil {
					t.Fatal(err)
				}
				ipc := est.Programs[0].IPC
				if ipc > prev*(1+1e-9) {
					t.Errorf("trial %d %s: IPC rose %.6f -> %.6f when M2TWRFactor reached %v",
						trial, s, prev, ipc, twr)
				}
				prev = ipc
			}
		}
	}
}

// TestLifetimeMonotoneInWriteIntensity checks that a more write-intensive
// workload never gets more *work* out of the device before wear-out, all
// else equal. The invariant is deliberately work-normalised (lifetime ×
// predicted IPC — instructions executed before the hottest line dies)
// rather than wall-clock: a higher write fraction also throttles
// throughput through write recovery, so wall-clock lifetime can
// legitimately rise while the device still retires fewer instructions.
func TestLifetimeMonotoneInWriteIntensity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := Default()
	cfg := testConfig()
	for trial := 0; trial < 40; trial++ {
		base := randSpec(r, "a")
		for _, s := range schemes() {
			prevLife := math.Inf(1)
			prevIdeal := math.Inf(1)
			for _, wf := range []float64{0.05, 0.15, 0.30, 0.45} {
				spec := base
				spec.Params.WriteFrac = wf
				est, err := m.Estimate(cfg, []sim.ProgramSpec{spec}, s)
				if err != nil {
					t.Fatal(err)
				}
				ipc := est.Programs[0].IPC
				if l := est.NVM.LifetimeSeconds * ipc; l > 0 && l > prevLife*(1+1e-9) {
					t.Errorf("trial %d %s: work-normalised lifetime rose %.4g -> %.4g at WriteFrac %v",
						trial, s, prevLife, l, wf)
				} else if l > 0 {
					prevLife = l
				}
				if l := est.NVM.LifetimeIdealSeconds * ipc; l > 0 && l > prevIdeal*(1+1e-9) {
					t.Errorf("trial %d %s: work-normalised ideal lifetime rose %.4g -> %.4g at WriteFrac %v",
						trial, s, prevIdeal, l, wf)
				} else if l > 0 {
					prevIdeal = l
				}
			}
		}
	}
}

// TestEstimateErrors pins the contract on inputs the model refuses.
func TestEstimateErrors(t *testing.T) {
	m := Default()
	cfg := testConfig()
	r := rand.New(rand.NewSource(4))
	good := randSpec(r, "ok")

	if _, err := m.Estimate(cfg, nil, sim.SchemeProFess); err == nil {
		t.Error("empty specs: want error")
	}
	if _, err := m.Estimate(cfg, []sim.ProgramSpec{good}, sim.Scheme("nope")); err == nil {
		t.Error("unknown scheme: want error")
	}
	bad := good
	bad.Params.Footprint = 0
	if _, err := m.Estimate(cfg, []sim.ProgramSpec{bad}, sim.SchemeProFess); err == nil {
		t.Error("zero footprint: want error")
	}
}

// TestEstimateDegenerateCell pins the screen's key discrimination: a
// footprint resident in M1 is served almost entirely by M1 under every
// migrating scheme, and the migrating schemes' predictions collapse
// together (this is what sweep pruning exploits).
func TestEstimateDegenerateCell(t *testing.T) {
	m := Default()
	cfg := testConfig()
	spec := sim.ProgramSpec{Name: "tiny", Params: trace.Params{
		Name: "tiny", Footprint: 1 << 20, Pattern: trace.Stream,
		WriteFrac: 0.25, GapMean: 25, Streams: 1, LinesPerTouch: 1,
	}}
	// 1 MB footprint < 2 MB M1 at PaperScale: residency is 1.
	var ipcs []float64
	for _, s := range []sim.Scheme{sim.SchemeCAMEO, sim.SchemeMDM, sim.SchemeProFess} {
		est, err := m.Estimate(cfg, []sim.ProgramSpec{spec}, s)
		if err != nil {
			t.Fatal(err)
		}
		if f := est.Programs[0].M1Fraction; f < 0.75 {
			t.Errorf("%s: M1 fraction %v for an M1-resident footprint", s, f)
		}
		ipcs = append(ipcs, est.Programs[0].IPC)
	}
	for i := 1; i < len(ipcs); i++ {
		if d := math.Abs(ipcs[i]-ipcs[0]) / ipcs[0]; d > 0.25 {
			t.Errorf("migrating schemes diverge %.0f%% on a resident footprint", 100*d)
		}
	}
}

// TestIPCOf covers the estimate accessor.
func TestIPCOf(t *testing.T) {
	e := Estimate{Programs: []ProgramEstimate{{Name: "x", IPC: 1.5}}}
	if v, ok := e.IPCOf("x"); !ok || v != 1.5 {
		t.Errorf("IPCOf(x) = %v, %v", v, ok)
	}
	if _, ok := e.IPCOf("y"); ok {
		t.Error("IPCOf(y) = ok, want miss")
	}
}

// TestTrafficMixWriteFrac checks the mix respects the workload's write
// fraction: with WriteFrac w, writes are w of each partition's traffic.
func TestTrafficMixWriteFrac(t *testing.T) {
	m := Default()
	cfg := testConfig()
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		spec := randSpec(r, "a")
		w := spec.Params.WriteFrac
		est, err := m.Estimate(cfg, []sim.ProgramSpec{spec}, sim.SchemeProFess)
		if err != nil {
			t.Fatal(err)
		}
		tm := est.Traffic
		if tot := tm.M1Writes + tm.M2Writes; math.Abs(tot-w) > 1e-9 {
			t.Errorf("trial %d: write share %v, want WriteFrac %v", trial, tot, w)
		}
	}
}
