// Package workload holds the experiment inputs of the ProFess paper: the
// ten SPEC CPU2006 programs of Table 9 (as parameterisations of the
// synthetic generators in internal/trace) and the nineteen four-program
// mixes of Table 10.
package workload

import (
	"fmt"

	"profess/internal/trace"
)

// MB is one binary megabyte.
const MB = 1 << 20

// Program is one Table 9 entry plus the behavioural parameters that drive
// its synthetic generator.
type Program struct {
	Name string
	// PaperMPKI and PaperFootprintMB are the values reported in Table 9
	// (L3 misses per kilo-instruction; footprint in MB).
	PaperMPKI        float64
	PaperFootprintMB float64

	Pattern       trace.Pattern
	WriteFrac     float64
	Streams       int
	HotFrac       float64
	HotProb       float64
	DepFrac       float64
	LinesPerTouch int
	RecentProb    float64
	RecentWindow  int
	// PhaseFrac expresses the phase length as a fraction of the program's
	// reference count per million references (0 = static).
	PhaseRefs int64
}

// catalog mirrors Table 9. The pattern classes follow the paper's own
// description (§4.2: mcf, omnetpp, libquantum irregular pointer-based;
// soplex mixed regular/irregular) and the well-known behaviour of the
// remaining programs (lbm is a write-heavy stencil stream, milc strided
// irregular, bwaves/GemsFDTD/leslie3d/zeusmp multi-stream stencils).
var catalog = []Program{
	{Name: "bwaves", PaperMPKI: 11, PaperFootprintMB: 265, Pattern: trace.Stream,
		WriteFrac: 0.25, Streams: 8, LinesPerTouch: 1},
	{Name: "GemsFDTD", PaperMPKI: 16, PaperFootprintMB: 499, Pattern: trace.Stream,
		WriteFrac: 0.30, Streams: 12, LinesPerTouch: 1},
	{Name: "lbm", PaperMPKI: 32, PaperFootprintMB: 402, Pattern: trace.Stream,
		WriteFrac: 0.45, Streams: 16, LinesPerTouch: 1},
	{Name: "leslie3d", PaperMPKI: 15, PaperFootprintMB: 76, Pattern: trace.Stream,
		WriteFrac: 0.30, Streams: 6, LinesPerTouch: 1},
	{Name: "libquantum", PaperMPKI: 30, PaperFootprintMB: 32, Pattern: trace.Stream,
		WriteFrac: 0.25, Streams: 1, LinesPerTouch: 1},
	{Name: "mcf", PaperMPKI: 60, PaperFootprintMB: 525, Pattern: trace.PointerChase,
		WriteFrac: 0.20, HotFrac: 0.02, HotProb: 0.70, DepFrac: 0.80,
		LinesPerTouch: 4, RecentProb: 0.5, RecentWindow: 16, PhaseRefs: 600_000},
	{Name: "milc", PaperMPKI: 18, PaperFootprintMB: 547, Pattern: trace.Mixed,
		WriteFrac: 0.30, Streams: 16, HotFrac: 0.05, HotProb: 0.35, DepFrac: 0.05,
		LinesPerTouch: 4, PhaseRefs: 500_000},
	{Name: "omnetpp", PaperMPKI: 19, PaperFootprintMB: 138, Pattern: trace.PointerChase,
		WriteFrac: 0.30, HotFrac: 0.06, HotProb: 0.60, DepFrac: 0.70,
		LinesPerTouch: 2, RecentProb: 0.45, RecentWindow: 64, PhaseRefs: 300_000},
	{Name: "soplex", PaperMPKI: 29, PaperFootprintMB: 241, Pattern: trace.Mixed,
		WriteFrac: 0.25, Streams: 4, HotFrac: 0.08, HotProb: 0.50, DepFrac: 0.30,
		LinesPerTouch: 2, PhaseRefs: 400_000},
	{Name: "zeusmp", PaperMPKI: 5, PaperFootprintMB: 112, Pattern: trace.Stream,
		WriteFrac: 0.30, Streams: 8, LinesPerTouch: 1},
}

// Programs returns the Table 9 catalogue (copy).
func Programs() []Program {
	out := make([]Program, len(catalog))
	copy(out, catalog)
	return out
}

// ProgramByName looks up a Table 9 program.
func ProgramByName(name string) (Program, error) {
	for _, p := range catalog {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("workload: unknown program %q", name)
}

// gapFromMPKI converts a Table 9 L3 MPKI into the generator's mean
// instruction gap between L2-miss references. The generator operates one
// level above the simulated L3, which filters roughly a quarter of the
// stream, so the gap is tightened accordingly.
func gapFromMPKI(mpki float64) int32 {
	g := 1000.0 / mpki * 0.75
	if g < 2 {
		g = 2
	}
	return int32(g + 0.5)
}

// Params builds the trace generator parameters for the program at the
// given capacity scale (the paper runs 1:1; this reproduction defaults to
// 1/32 of the paper's capacities everywhere). Seed disambiguates repeated
// instances of the same program inside one workload.
func (p Program) Params(scale float64, seed uint64) trace.Params {
	fp := int64(p.PaperFootprintMB * MB * scale)
	fp = (fp + 4095) &^ 4095 // page align
	if fp < 64<<10 {
		fp = 64 << 10
	}
	return trace.Params{
		Name:          p.Name,
		Footprint:     fp,
		Pattern:       p.Pattern,
		WriteFrac:     p.WriteFrac,
		GapMean:       gapFromMPKI(p.PaperMPKI),
		Streams:       p.Streams,
		HotFrac:       p.HotFrac,
		HotProb:       p.HotProb,
		DepFrac:       p.DepFrac,
		LinesPerTouch: p.LinesPerTouch,
		RecentProb:    p.RecentProb,
		RecentWindow:  p.RecentWindow,
		PhaseRefs:     p.PhaseRefs,
		Seed:          seed,
	}
}

// Workload is one Table 10 mix: four (not necessarily distinct) programs.
type Workload struct {
	Name     string
	Programs [4]string
}

// workloads mirrors Table 10 exactly.
var workloads = []Workload{
	{"w01", [4]string{"mcf", "libquantum", "leslie3d", "lbm"}},
	{"w02", [4]string{"soplex", "GemsFDTD", "omnetpp", "zeusmp"}},
	{"w03", [4]string{"milc", "bwaves", "lbm", "lbm"}},
	{"w04", [4]string{"libquantum", "bwaves", "leslie3d", "omnetpp"}},
	{"w05", [4]string{"mcf", "bwaves", "zeusmp", "GemsFDTD"}},
	{"w06", [4]string{"soplex", "libquantum", "lbm", "omnetpp"}},
	{"w07", [4]string{"milc", "GemsFDTD", "bwaves", "leslie3d"}},
	{"w08", [4]string{"soplex", "leslie3d", "lbm", "zeusmp"}},
	{"w09", [4]string{"mcf", "soplex", "lbm", "GemsFDTD"}},
	{"w10", [4]string{"libquantum", "leslie3d", "omnetpp", "zeusmp"}},
	{"w11", [4]string{"soplex", "bwaves", "lbm", "libquantum"}},
	{"w12", [4]string{"milc", "GemsFDTD", "soplex", "lbm"}},
	{"w13", [4]string{"mcf", "soplex", "bwaves", "zeusmp"}},
	{"w14", [4]string{"GemsFDTD", "soplex", "omnetpp", "libquantum"}},
	{"w15", [4]string{"leslie3d", "omnetpp", "lbm", "zeusmp"}},
	{"w16", [4]string{"libquantum", "libquantum", "bwaves", "zeusmp"}},
	{"w17", [4]string{"mcf", "mcf", "omnetpp", "leslie3d"}},
	{"w18", [4]string{"mcf", "milc", "milc", "GemsFDTD"}},
	{"w19", [4]string{"milc", "libquantum", "omnetpp", "leslie3d"}},
}

// Workloads returns the Table 10 mixes (copy).
func Workloads() []Workload {
	out := make([]Workload, len(workloads))
	copy(out, workloads)
	return out
}

// WorkloadByName looks up a Table 10 workload.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range workloads {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Fleet16 is the sixteen-program "datacenter node" mix that rides the
// Scale16 configuration: eight pairs, one per cluster, each pair chosen so
// its combined Table 9 footprint fits one cluster's slice of M1+M2, and
// together covering every Table 9 program (six of them twice). The order
// is load-bearing — specs are split into clusters contiguously, two per
// cluster, so swapping entries changes which programs share a cluster.
func Fleet16() []string {
	return []string{
		"mcf", "libquantum", // cluster 0: 525 + 32 MB
		"milc", "zeusmp", // cluster 1: 547 + 112 MB
		"GemsFDTD", "leslie3d", // cluster 2: 499 + 76 MB
		"lbm", "omnetpp", // cluster 3: 402 + 138 MB
		"soplex", "bwaves", // cluster 4: 241 + 265 MB
		"mcf", "leslie3d", // cluster 5: 525 + 76 MB
		"lbm", "libquantum", // cluster 6: 402 + 32 MB
		"GemsFDTD", "omnetpp", // cluster 7: 499 + 138 MB
	}
}

// Seed derives a deterministic generator seed for program instance i of a
// named run, so repeated program names inside one workload differ while
// runs remain reproducible.
func Seed(program string, instance int) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, b := range []byte(program) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h ^ (uint64(instance+1) * 0x9E3779B97F4A7C15)
}
