package workload

import (
	"testing"

	"profess/internal/trace"
)

// MustProgram / MustWorkload are test-only conveniences for the
// known-good catalogue; library code returns errors instead of panicking.
func MustProgram(name string) Program {
	p, err := ProgramByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

func MustWorkload(name string) Workload {
	w, err := WorkloadByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// table9 is the ground truth from the paper.
var table9 = map[string]struct {
	mpki float64
	mb   float64
}{
	"bwaves": {11, 265}, "GemsFDTD": {16, 499}, "lbm": {32, 402},
	"leslie3d": {15, 76}, "libquantum": {30, 32}, "mcf": {60, 525},
	"milc": {18, 547}, "omnetpp": {19, 138}, "soplex": {29, 241},
	"zeusmp": {5, 112},
}

func TestCatalogMatchesTable9(t *testing.T) {
	progs := Programs()
	if len(progs) != len(table9) {
		t.Fatalf("%d programs, want %d", len(progs), len(table9))
	}
	for _, p := range progs {
		want, ok := table9[p.Name]
		if !ok {
			t.Errorf("unexpected program %q", p.Name)
			continue
		}
		if p.PaperMPKI != want.mpki || p.PaperFootprintMB != want.mb {
			t.Errorf("%s: MPKI/MB = %v/%v, want %v/%v",
				p.Name, p.PaperMPKI, p.PaperFootprintMB, want.mpki, want.mb)
		}
	}
}

func TestIrregularProgramsClassified(t *testing.T) {
	// §4.2: mcf, omnetpp and libquantum use irregular pointer-based
	// structures; soplex is mixed. (libquantum's sweep is sequential in
	// address terms, so it is modelled as a stream.)
	if MustProgram("mcf").Pattern != trace.PointerChase {
		t.Error("mcf should pointer-chase")
	}
	if MustProgram("omnetpp").Pattern != trace.PointerChase {
		t.Error("omnetpp should pointer-chase")
	}
	if MustProgram("soplex").Pattern != trace.Mixed {
		t.Error("soplex should be mixed")
	}
	if MustProgram("lbm").WriteFrac < 0.4 {
		t.Error("lbm should be write-heavy")
	}
}

func TestWorkloadsMatchTable10(t *testing.T) {
	wls := Workloads()
	if len(wls) != 19 {
		t.Fatalf("%d workloads, want 19", len(wls))
	}
	// Spot-check the mixes quoted in the paper's discussion.
	spot := map[string][4]string{
		"w09": {"mcf", "soplex", "lbm", "GemsFDTD"},
		"w16": {"libquantum", "libquantum", "bwaves", "zeusmp"},
		"w19": {"milc", "libquantum", "omnetpp", "leslie3d"},
		"w03": {"milc", "bwaves", "lbm", "lbm"},
	}
	for name, want := range spot {
		w := MustWorkload(name)
		if w.Programs != want {
			t.Errorf("%s = %v, want %v", name, w.Programs, want)
		}
	}
	// Every program named in a workload exists in Table 9.
	for _, w := range wls {
		for _, p := range w.Programs {
			if _, err := ProgramByName(p); err != nil {
				t.Errorf("%s references unknown program %s", w.Name, p)
			}
		}
	}
}

func TestUnknownLookupsError(t *testing.T) {
	if _, err := ProgramByName("nosuch"); err == nil {
		t.Error("expected error for unknown program")
	}
	if _, err := WorkloadByName("w99"); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestParamsScaling(t *testing.T) {
	p := MustProgram("mcf")
	full := p.Params(1, 1)
	scaled := p.Params(1.0/32, 1)
	if full.Footprint != int64(525)<<20 {
		t.Errorf("full footprint = %d", full.Footprint)
	}
	ratio := float64(full.Footprint) / float64(scaled.Footprint)
	if ratio < 31 || ratio > 33 {
		t.Errorf("scaling ratio %v, want ~32", ratio)
	}
	if scaled.Footprint%4096 != 0 {
		t.Error("footprint must be page aligned")
	}
	// Behavioural parameters survive scaling.
	if scaled.Pattern != full.Pattern || scaled.WriteFrac != full.WriteFrac || scaled.GapMean != full.GapMean {
		t.Error("scaling must not change behaviour parameters")
	}
}

func TestGapFromMPKI(t *testing.T) {
	// Higher MPKI means denser misses (smaller gap).
	mcf := MustProgram("mcf").Params(1, 1).GapMean
	zeusmp := MustProgram("zeusmp").Params(1, 1).GapMean
	if mcf >= zeusmp {
		t.Errorf("mcf gap %d should be smaller than zeusmp gap %d", mcf, zeusmp)
	}
	if mcf < 2 {
		t.Errorf("gap floor violated: %d", mcf)
	}
}

func TestSeedsDistinguishInstances(t *testing.T) {
	if Seed("mcf", 0) == Seed("mcf", 1) {
		t.Error("instances of the same program must differ")
	}
	if Seed("mcf", 0) == Seed("milc", 0) {
		t.Error("different programs must differ")
	}
	if Seed("mcf", 0) != Seed("mcf", 0) {
		t.Error("seeds must be deterministic")
	}
}

func TestFootprintFloor(t *testing.T) {
	p := MustProgram("libquantum")
	tiny := p.Params(1e-6, 1)
	if tiny.Footprint < 64<<10 {
		t.Errorf("footprint floor violated: %d", tiny.Footprint)
	}
}

func TestProgramsReturnsCopy(t *testing.T) {
	a := Programs()
	a[0].Name = "mutated"
	if Programs()[0].Name == "mutated" {
		t.Error("Programs must return a copy")
	}
	w := Workloads()
	w[0].Name = "mutated"
	if Workloads()[0].Name == "mutated" {
		t.Error("Workloads must return a copy")
	}
}

// TestFleet16 pins the Scale16 mix: sixteen valid programs in eight
// cluster pairs, covering the whole Table 9 catalogue, with every pair's
// combined footprint within one cluster's memory slice (1/8 of the
// Scale16 machine's 1 GB M1 + 8 GB M2 = 1152 MB at scale 1).
func TestFleet16(t *testing.T) {
	fleet := Fleet16()
	if len(fleet) != 16 {
		t.Fatalf("Fleet16 has %d programs, want 16", len(fleet))
	}
	covered := map[string]bool{}
	for i := 0; i < len(fleet); i += 2 {
		var pairMB float64
		for _, name := range fleet[i : i+2] {
			p, err := ProgramByName(name)
			if err != nil {
				t.Fatal(err)
			}
			covered[name] = true
			pairMB += p.PaperFootprintMB
		}
		if pairMB > 1152 {
			t.Errorf("cluster %d pair %v footprint %.0f MB exceeds the 1152 MB cluster slice", i/2, fleet[i:i+2], pairMB)
		}
	}
	if len(covered) != len(catalog) {
		t.Errorf("fleet covers %d distinct programs, want all %d of Table 9", len(covered), len(catalog))
	}
}
