package fault

import (
	"math"
	"strings"
	"testing"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("rate=1e-3,sf=0.2,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 {
		t.Errorf("seed = %d", p.Seed)
	}
	if p.NVMReadRate != 1e-3 || p.NVMWriteRate != 1e-3 {
		t.Errorf("rate shorthand: nvm %v/%v", p.NVMReadRate, p.NVMWriteRate)
	}
	if p.QACCorruptRate != 1e-3/4 {
		t.Errorf("rate shorthand: qac %v", p.QACCorruptRate)
	}
	if p.StallRate != 1e-3/10 {
		t.Errorf("rate shorthand: stall %v", p.StallRate)
	}
	if p.SFCorruptRate != 0.2 {
		t.Errorf("sf = %v", p.SFCorruptRate)
	}

	for _, empty := range []string{"", "  ", "none"} {
		p, err := ParsePlan(empty)
		if err != nil || p.Enabled() {
			t.Errorf("ParsePlan(%q) = %+v, %v; want zero plan", empty, p, err)
		}
	}

	for _, bad := range []string{"nvmread", "bogus=1", "nvmread=x", "nvmread=2", "sf=-0.1", "stallcycles=-5", "seed=zz"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
}

func TestPlanStringRoundTrips(t *testing.T) {
	p, err := ParsePlan("nvmread=0.001,stall=0.01,stallcycles=500,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if back != p {
		t.Errorf("round trip: %+v != %+v", back, p)
	}
	if s := (Plan{}).String(); s != "none" {
		t.Errorf("zero plan renders %q", s)
	}
}

func TestValidate(t *testing.T) {
	if err := (Plan{NVMReadRate: 0.5, StallCycles: 100}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	for _, bad := range []Plan{
		{NVMReadRate: -0.1},
		{QACCorruptRate: 1.5},
		{SFCorruptRate: math.NaN()},
		{StallCycles: -1},
	} {
		if bad.Validate() == nil {
			t.Errorf("%+v should be invalid", bad)
		}
	}
}

func TestEnabledAndStallDefault(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan must be disabled")
	}
	if !(Plan{SFCorruptRate: 1e-6}).Enabled() {
		t.Error("any positive rate enables the plan")
	}
	if (Plan{Seed: 9, StallCycles: 100}).Enabled() {
		t.Error("seed and durations alone must not enable injection")
	}
	if c := (Plan{}).EffectiveStallCycles(); c != DefaultStallCycles {
		t.Errorf("default stall cycles = %d", c)
	}
	if c := (Plan{StallCycles: 321}).EffectiveStallCycles(); c != 321 {
		t.Errorf("explicit stall cycles = %d", c)
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if inj.Fire(NVMReadTransient) {
		t.Error("nil injector fired")
	}
	if inj.Fork(7) != nil {
		t.Error("nil fork should stay nil")
	}
	if inj.Counts() != ([NumKinds]int64{}) {
		t.Error("nil counts should be zero")
	}
	if inj.Plan().Enabled() {
		t.Error("nil plan should be zero")
	}
}

func TestDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, NVMReadRate: 0.05, QACCorruptRate: 0.02}
	schedule := func() []bool {
		inj := NewInjector(plan)
		var out []bool
		for i := 0; i < 10000; i++ {
			out = append(out, inj.Fire(NVMReadTransient), inj.Fire(QACCorruption))
		}
		return out
	}
	a, b := schedule(), schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverged at draw %d", i)
		}
	}
}

func TestZeroRateNeverDrawsFromStream(t *testing.T) {
	// Enabling a second class must not perturb the first class's schedule:
	// Fire must not consume stream state for zero-rate classes.
	run := func(p Plan) []bool {
		inj := NewInjector(p)
		var out []bool
		for i := 0; i < 5000; i++ {
			inj.Fire(QACCorruption) // zero-rate in the first plan
			out = append(out, inj.Fire(NVMReadTransient))
		}
		return out
	}
	a := run(Plan{Seed: 1, NVMReadRate: 0.1})
	b := run(Plan{Seed: 1, NVMReadRate: 0.1, QACCorruptRate: 0}) // identical
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero-rate Fire perturbed the stream at draw %d", i)
		}
	}
}

func TestForksIndependentButShareTally(t *testing.T) {
	plan := Plan{Seed: 5, NVMReadRate: 0.5}
	root := NewInjector(plan)
	f1, f2 := root.Fork(1), root.Fork(2)

	// Different salts give different schedules.
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if f1.Fire(NVMReadTransient) == f2.Fire(NVMReadTransient) {
			same++
		}
	}
	if same == n {
		t.Error("forks with different salts produced identical schedules")
	}

	// All fired faults land in one shared tally.
	total := root.Counts()[NVMReadTransient]
	if total == 0 {
		t.Fatal("no faults fired at rate 0.5")
	}
	if f1.Counts() != root.Counts() || f2.Counts() != root.Counts() {
		t.Error("forks must share the parent's tally")
	}

	// A fork's schedule does not depend on how much the sibling drew.
	g1 := NewInjector(plan).Fork(1)
	h1 := NewInjector(plan).Fork(1)
	NewInjector(plan).Fork(2) // unused sibling
	for i := 0; i < 1000; i++ {
		if g1.Fire(NVMReadTransient) != h1.Fire(NVMReadTransient) {
			t.Fatalf("fork schedule not reproducible at draw %d", i)
		}
	}
}

func TestCorruptions(t *testing.T) {
	inj := NewInjector(Plan{Seed: 11, QACCorruptRate: 1})
	for i := 0; i < 1000; i++ {
		v := uint8(i)
		if inj.CorruptByte(v) == v {
			t.Fatalf("CorruptByte returned %d unchanged", v)
		}
	}
	sawBad := 0
	for i := 0; i < 1000; i++ {
		sf := inj.CorruptSF()
		if math.IsNaN(sf) || math.IsInf(sf, 0) || sf < 0 || sf >= 1e9 {
			sawBad++
		}
	}
	if sawBad != 1000 {
		t.Errorf("only %d/1000 corrupted SFs were implausible", sawBad)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}
