package fault

import (
	"testing"
)

// FuzzParsePlan feeds arbitrary strings to the -faults flag parser. It
// must never panic, anything it accepts must validate (the simulator
// trusts accepted plans without re-checking), and the canonical String
// rendering must be stable under a re-parse — otherwise a plan logged in
// one run could not reproduce the next.
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"none",
		"rate=1e-4",
		"rate=1e-4,seed=7",
		"seed=0xdead,nvmread=0.001,nvmwrite=0.002",
		"stall=0.01,stallcycles=500",
		"qac=0.25,sf=0.125",
		"rate=2",          // out of range
		"rate=nan",        // NaN must be rejected by Validate
		"stallcycles=-1",  // negative duration
		"bogus=1",         // unknown key
		"seed",            // not key=value
		"=,=,=",           // degenerate separators
		"rate=1e999",      // float overflow
		" rate = 1e-4 , ", // whitespace and trailing comma
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return // rejected: the only requirement is not panicking
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePlan(%q) accepted an invalid plan: %v", s, verr)
		}
		// Canonical-form stability: String() must re-parse, and the
		// re-parsed plan must render identically.
		c := p.String()
		p2, err := ParsePlan(c)
		if err != nil {
			t.Fatalf("ParsePlan(%q).String() = %q does not re-parse: %v", s, c, err)
		}
		if c2 := p2.String(); c2 != c {
			t.Fatalf("canonical form unstable: %q -> %q -> %q", s, c, c2)
		}
	})
}
