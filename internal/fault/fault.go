// Package fault provides deterministic fault injection for the simulated
// memory system. A Plan names per-event fault rates; an Injector draws
// from a seeded xrand stream, so a fixed (Plan, workload) pair reproduces
// the exact same fault schedule on every run. The zero Plan injects
// nothing and a nil *Injector is a valid no-op, so fault-free simulations
// pay no cost and stay bit-identical to a build without this package.
//
// The injectable fault classes model the failure behaviour production
// hybrid memories exhibit (NVM transient read/write failures, wedged
// channels, corrupted Swap-group Table metadata); the consumers —
// internal/mem, internal/hybrid and internal/core — carry the matching
// defenses (bounded retry with backoff, stall tolerance, sanity checks
// with a degraded-mode fallback).
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"profess/internal/xrand"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// NVMReadTransient fails one M2 (NVM) demand read burst; the data
	// returned is unusable and the controller must retry.
	NVMReadTransient Kind = iota
	// NVMWriteTransient fails one M2 demand write burst.
	NVMWriteTransient
	// ChannelStall wedges a channel's scheduler for a stall episode.
	ChannelStall
	// QACCorruption corrupts one Quantized Access-Counter value on its
	// way through the Swap-group Table (fill or writeback).
	QACCorruption
	// SFCorruption corrupts one slowdown-factor register at an RSM
	// sampling-period boundary.
	SFCorruption

	// NumKinds is the number of fault classes.
	NumKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NVMReadTransient:
		return "nvm-read"
	case NVMWriteTransient:
		return "nvm-write"
	case ChannelStall:
		return "channel-stall"
	case QACCorruption:
		return "qac-corruption"
	case SFCorruption:
		return "sf-corruption"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DefaultStallCycles is the stall-episode duration used when a Plan
// enables stalls without naming one.
const DefaultStallCycles = 2000

// Plan configures an injector: one probability per fault class plus the
// seed of the deterministic draw stream. The zero value injects nothing.
type Plan struct {
	// Seed selects the deterministic fault schedule (0 is a valid seed).
	Seed uint64
	// NVMReadRate / NVMWriteRate are per-M2-burst transient-failure
	// probabilities.
	NVMReadRate  float64
	NVMWriteRate float64
	// StallRate is the per-enqueue probability of a channel stall episode
	// of StallCycles cycles (DefaultStallCycles when 0).
	StallRate   float64
	StallCycles int64
	// QACCorruptRate is the per-ST-transfer probability of corrupting one
	// QAC value.
	QACCorruptRate float64
	// SFCorruptRate is the per-sampling-period probability of corrupting
	// a slowdown-factor register.
	SFCorruptRate float64
}

// Rate returns the plan's probability for one fault class.
func (p Plan) Rate(k Kind) float64 {
	switch k {
	case NVMReadTransient:
		return p.NVMReadRate
	case NVMWriteTransient:
		return p.NVMWriteRate
	case ChannelStall:
		return p.StallRate
	case QACCorruption:
		return p.QACCorruptRate
	case SFCorruption:
		return p.SFCorruptRate
	}
	return 0
}

// Enabled reports whether any fault class has a positive rate.
func (p Plan) Enabled() bool {
	for k := Kind(0); k < NumKinds; k++ {
		if p.Rate(k) > 0 {
			return true
		}
	}
	return false
}

// EffectiveStallCycles returns the stall-episode duration with the
// default applied.
func (p Plan) EffectiveStallCycles() int64 {
	if p.StallCycles > 0 {
		return p.StallCycles
	}
	return DefaultStallCycles
}

// Validate rejects rates outside [0, 1] and negative durations.
func (p Plan) Validate() error {
	for k := Kind(0); k < NumKinds; k++ {
		if r := p.Rate(k); r < 0 || r > 1 || math.IsNaN(r) {
			return fmt.Errorf("fault: %s rate %v out of [0,1]", k, r)
		}
	}
	if p.StallCycles < 0 {
		return fmt.Errorf("fault: negative stall duration %d", p.StallCycles)
	}
	return nil
}

// String renders the plan in the -faults flag syntax.
func (p Plan) String() string {
	if !p.Enabled() {
		return "none"
	}
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatUint(p.Seed, 10))
	if p.NVMReadRate > 0 {
		add("nvmread", strconv.FormatFloat(p.NVMReadRate, 'g', -1, 64))
	}
	if p.NVMWriteRate > 0 {
		add("nvmwrite", strconv.FormatFloat(p.NVMWriteRate, 'g', -1, 64))
	}
	if p.StallRate > 0 {
		add("stall", strconv.FormatFloat(p.StallRate, 'g', -1, 64))
		add("stallcycles", strconv.FormatInt(p.EffectiveStallCycles(), 10))
	}
	if p.QACCorruptRate > 0 {
		add("qac", strconv.FormatFloat(p.QACCorruptRate, 'g', -1, 64))
	}
	if p.SFCorruptRate > 0 {
		add("sf", strconv.FormatFloat(p.SFCorruptRate, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the "key=value,key=value" plan syntax of the -faults
// flag. Keys: seed, nvmread, nvmwrite, stall, stallcycles, qac, sf. The
// shorthand "rate=<p>" sets nvmread+nvmwrite to p, qac to p/4 and stall
// to p/10 — one knob for the common sweep. Empty input returns the zero
// plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: %q is not key=value", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "seed":
			u, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: seed %q: %w", val, err)
			}
			p.Seed = u
		case "stallcycles":
			n, err := strconv.ParseInt(val, 0, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: stallcycles %q: %w", val, err)
			}
			p.StallCycles = n
		default:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: %s %q: %w", key, val, err)
			}
			switch key {
			case "nvmread":
				p.NVMReadRate = f
			case "nvmwrite":
				p.NVMWriteRate = f
			case "stall":
				p.StallRate = f
			case "qac":
				p.QACCorruptRate = f
			case "sf":
				p.SFCorruptRate = f
			case "rate":
				p.NVMReadRate = f
				p.NVMWriteRate = f
				p.QACCorruptRate = f / 4
				p.StallRate = f / 10
			default:
				return Plan{}, fmt.Errorf("fault: unknown key %q (known: %s)", key, knownKeys())
			}
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// knownKeys lists the ParsePlan vocabulary for error messages.
func knownKeys() string {
	keys := []string{"seed", "nvmread", "nvmwrite", "stall", "stallcycles", "qac", "sf", "rate"}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// Injector draws the fault schedule of one simulation. Each consumer
// (channel, controller, monitor) holds its own Fork so the schedule of
// one component does not depend on how events of another interleave;
// all forks share one tally of injected faults. Methods are nil-safe:
// a nil *Injector never fires. Not safe for concurrent use — each
// simulation builds its own injector and runs single-threaded.
type Injector struct {
	plan   Plan
	rng    *xrand.RNG
	counts *[NumKinds]int64
}

// NewInjector builds the root injector of a simulation.
func NewInjector(p Plan) *Injector {
	return &Injector{plan: p, rng: xrand.New(mix(p.Seed, 0x5EEDFA17)), counts: new([NumKinds]int64)}
}

// Fork derives a child injector with an independent draw stream (salted
// by the caller's identity) sharing the parent's injection tally.
func (i *Injector) Fork(salt uint64) *Injector {
	if i == nil {
		return nil
	}
	return &Injector{plan: i.plan, rng: xrand.New(mix(i.plan.Seed, salt)), counts: i.counts}
}

// mix folds a salt into a seed (splitmix-style odd multiplier).
func mix(seed, salt uint64) uint64 {
	return (seed ^ (salt * 0x9E3779B97F4A7C15)) | 1
}

// Plan returns the injector's plan (zero for a nil injector).
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// Fire draws one injection decision for the fault class, tallying fired
// faults. It never draws from the stream when the class rate is zero, so
// enabling one class does not perturb another's schedule.
func (i *Injector) Fire(k Kind) bool {
	if i == nil {
		return false
	}
	r := i.plan.Rate(k)
	if r <= 0 {
		return false
	}
	if !i.rng.Bool(r) {
		return false
	}
	i.counts[k]++
	return true
}

// Counts returns the shared injection tally (zero for a nil injector).
func (i *Injector) Counts() [NumKinds]int64 {
	if i == nil {
		return [NumKinds]int64{}
	}
	return *i.counts
}

// CorruptByte flips at least one bit of v (never returns v unchanged),
// modelling metadata corruption.
func (i *Injector) CorruptByte(v uint8) uint8 {
	return v ^ uint8(1+i.rng.Intn(255))
}

// CorruptSF returns an implausible slowdown-factor value: NaN, an
// infinity, a huge magnitude or a negative, drawn deterministically.
func (i *Injector) CorruptSF() float64 {
	switch i.rng.Intn(4) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1)
	case 2:
		return 1e12
	default:
		return -4
	}
}

// Intn draws a uniform int in [0, n) from the injector's stream, for
// consumers that must pick a deterministic corruption target.
func (i *Injector) Intn(n int) int {
	return i.rng.Intn(n)
}
