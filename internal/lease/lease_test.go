package lease

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newTestManager(t *testing.T, dir string, ttl time.Duration) *Manager {
	t.Helper()
	m, err := NewManager(Options{Dir: dir, TTL: ttl, Heartbeat: ttl / 4, Plan: "testplan"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestAcquireExcludes(t *testing.T) {
	dir := t.TempDir()
	a := newTestManager(t, dir, time.Hour)
	b := newTestManager(t, dir, time.Hour)

	l, err := a.Acquire("cell1")
	if err != nil {
		t.Fatal(err)
	}
	if l.Stolen() {
		t.Error("fresh acquire reported stolen")
	}
	if _, err := b.Acquire("cell1"); !errors.Is(err, ErrHeld) {
		t.Fatalf("second owner acquired a live lease: %v", err)
	}
	if got := b.Holder("cell1"); got != a.Owner() {
		t.Errorf("Holder = %q, want %q", got, a.Owner())
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Acquire("cell1"); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestExpiredTakeover(t *testing.T) {
	dir := t.TempDir()
	// A SIGKILLed owner leaves its lease file behind with no heartbeat;
	// write that state directly (Close would release the lease).
	path := filepath.Join(dir, "cell.lease")
	if err := os.WriteFile(path, []byte(`{"owner":"dead"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Second)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	b := newTestManager(t, dir, 50*time.Millisecond)
	lb, err := b.Acquire("cell")
	if err != nil {
		t.Fatalf("takeover of an expired lease failed: %v", err)
	}
	if !lb.Stolen() {
		t.Error("takeover not reported as stolen")
	}
	if err := lb.Release(); err != nil {
		t.Fatal(err)
	}
	// No reap temporaries may linger.
	matches, _ := filepath.Glob(filepath.Join(dir, "*reap*"))
	if len(matches) != 0 {
		t.Errorf("leaked reap files: %v", matches)
	}
}

// Close on a's manager releases held leases, so a crashed-owner
// simulation must bypass Close. This test reaches into the file to mimic
// a SIGKILLed owner precisely: the lease file exists, nobody heartbeats.
func TestExpiredTakeoverRace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.lease")
	if err := os.WriteFile(path, []byte(`{"owner":"dead"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}

	const claimants = 8
	managers := make([]*Manager, claimants)
	for i := range managers {
		managers[i] = newTestManager(t, dir, time.Minute)
	}
	winners := make([]bool, claimants)
	var wg sync.WaitGroup
	for i, m := range managers {
		wg.Add(1)
		go func(i int, m *Manager) {
			defer wg.Done()
			if _, err := m.Acquire("cell"); err == nil {
				winners[i] = true
			} else if !errors.Is(err, ErrHeld) {
				t.Errorf("claimant %d: %v", i, err)
			}
		}(i, m)
	}
	wg.Wait()
	won := 0
	for _, w := range winners {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d claimants won the expired lease, want exactly 1", won)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	dir := t.TempDir()
	a := newTestManager(t, dir, 80*time.Millisecond)
	l, err := a.Acquire("cell")
	if err != nil {
		t.Fatal(err)
	}
	b := newTestManager(t, dir, 80*time.Millisecond)
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := b.Acquire("cell"); !errors.Is(err, ErrHeld) {
			t.Fatalf("heartbeated lease was lost or stolen: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if l.Lost() {
		t.Error("live lease marked lost")
	}
}

func TestLostLeaseDetected(t *testing.T) {
	dir := t.TempDir()
	a := newTestManager(t, dir, 40*time.Millisecond)
	l, err := a.Acquire("cell")
	if err != nil {
		t.Fatal(err)
	}
	// An operator (or a takeover) removes the file under the owner.
	if err := os.Remove(filepath.Join(dir, "cell.lease")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !l.Lost() {
		if time.Now().After(deadline) {
			t.Fatal("lost lease never detected by heartbeat")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := l.Release(); err != nil {
		t.Errorf("releasing a lost lease: %v", err)
	}
}

func TestSweepExpired(t *testing.T) {
	dir := t.TempDir()
	a := newTestManager(t, dir, time.Hour)
	if _, err := a.Acquire("live"); err != nil {
		t.Fatal(err)
	}
	// A dead owner's lease and an orphaned reap temp.
	for _, name := range []string{"dead.lease", "dead2.lease.reap-abc"} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-time.Hour)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if n := SweepExpired(dir, time.Minute); n != 2 {
		t.Errorf("SweepExpired removed %d, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "live.lease")); err != nil {
		t.Errorf("live lease swept: %v", err)
	}
}

func TestRemoveKeys(t *testing.T) {
	dir := t.TempDir()
	a := newTestManager(t, dir, time.Hour)
	if _, err := a.Acquire("k1"); err != nil {
		t.Fatal(err)
	}
	if n := RemoveKeys(dir, []string{"k1", "missing"}); n != 1 {
		t.Errorf("RemoveKeys removed %d, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "k1.lease")); !os.IsNotExist(err) {
		t.Error("k1 lease survived RemoveKeys")
	}
}
