package lease

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestJournalAppendTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	recs := []Record{
		{Key: "a", Status: StatusClaimed, Owner: "o1", Attempt: 0},
		{Key: "a", Status: StatusDone, Owner: "o1"},
		{Key: "b", Status: StatusFailed, Owner: "o1", Attempt: 1, Err: "boom"},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := j.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("Tail returned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Key != recs[i].Key || got[i].Status != recs[i].Status || got[i].Err != recs[i].Err {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
		if got[i].Nanos == 0 {
			t.Errorf("record %d missing timestamp", i)
		}
	}

	// Tail is incremental: nothing new, nothing returned.
	if got, err := j.Tail(); err != nil || len(got) != 0 {
		t.Fatalf("second Tail = %d records, %v; want 0, nil", len(got), err)
	}
	if err := j.Append(Record{Key: "c", Status: StatusDone, Owner: "o2"}); err != nil {
		t.Fatal(err)
	}
	if got, err := j.Tail(); err != nil || len(got) != 1 || got[0].Key != "c" {
		t.Fatalf("incremental Tail = %+v, %v; want just c", got, err)
	}
}

// TestJournalTornTail pins the crash contract: a record whose write was
// cut mid-line is invisible — skipped, not an error — and does not block
// later records from other processes.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Key: "a", Status: StatusDone, Owner: "o1"}); err != nil {
		t.Fatal(err)
	}
	// A torn write: half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"b","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := j.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "a" {
		t.Fatalf("Tail over torn file = %+v, want just a", got)
	}
	// ReadJournal tolerates the same torn tail.
	all, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Key != "a" {
		t.Fatalf("ReadJournal over torn file = %+v, want just a", all)
	}
}

// TestJournalConcurrentAppend exercises many goroutines appending
// through one handle plus a second process-like handle on the same path;
// every record must come back line-whole.
func TestJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()

	const perWriter = 200
	var wg sync.WaitGroup
	for w, j := range []*Journal{j1, j2} {
		wg.Add(1)
		go func(w int, j *Journal) {
			defer wg.Done()
			owner := []string{"o1", "o2"}[w]
			for i := 0; i < perWriter; i++ {
				if err := j.Append(Record{Key: "k", Status: StatusClaimed, Owner: owner, Attempt: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w, j)
	}
	wg.Wait()
	recs, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*perWriter {
		t.Fatalf("read %d records, want %d (torn or interleaved writes)", len(recs), 2*perWriter)
	}
	seen := map[string]map[int]bool{"o1": {}, "o2": {}}
	for _, r := range recs {
		seen[r.Owner][r.Attempt] = true
	}
	for owner, m := range seen {
		if len(m) != perWriter {
			t.Errorf("%s: %d distinct records, want %d", owner, len(m), perWriter)
		}
	}
}
