// Package lease coordinates crash-safe, multi-process sweep execution
// through two durable primitives kept under a shared directory (in
// practice the persistent run-cache directory):
//
//   - Leases: per-cell claim files created with O_CREATE|O_EXCL, so
//     exactly one process owns a cell at a time across every process —
//     and every host, when the directory is shared — pointed at the same
//     sweep. A lease carries its owner id and plan hash; the owner's
//     manager refreshes the file's mtime on a heartbeat, and a lease
//     whose mtime is older than the TTL belongs to a presumed-dead owner
//     and may be taken over. Takeover goes through rename (only one
//     claimant's rename of the stale file can succeed), so two processes
//     can never both "clean up" a stale lease and both claim the cell.
//
//   - A journal: an append-only JSONL file per sweep recording
//     claimed/done/failed cell transitions keyed by run key. Every
//     worker process appends to the same journal (O_APPEND, one write
//     per record) and tail-reads it to learn what other workers have
//     completed, so any process can join a sweep in flight or resume one
//     whose workers were killed, skipping completed cells.
//
// Both primitives are advisory and self-healing: the simulation results
// themselves live in the content-addressed run cache whose writes are
// idempotent (two owners racing the same cell at worst write the same
// bytes), so lease loss or journal corruption costs duplicated work,
// never wrong results.
package lease

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ErrHeld reports that a lease is currently held by another live owner
// (its file exists and its heartbeat is within the TTL).
var ErrHeld = errors.New("lease: held by a live owner")

// DefaultTTL is how stale a lease's heartbeat may grow before other
// processes may presume its owner dead and take the cell over.
const DefaultTTL = 10 * time.Second

// Options configures a Manager.
type Options struct {
	// Dir is the lease directory, created if missing.
	Dir string
	// Owner uniquely identifies this process ("host:pid:nonce" when
	// empty). It is written into every lease file for the operational
	// post-mortem: `cat` a stuck lease to see who held it.
	Owner string
	// Plan tags every lease this manager creates with the sweep (plan
	// hash) it belongs to.
	Plan string
	// TTL is the takeover threshold (DefaultTTL when zero).
	TTL time.Duration
	// Heartbeat is the refresh period (TTL/4 when zero). It must stay
	// well under TTL or live owners will be presumed dead.
	Heartbeat time.Duration
}

// info is the lease file's JSON payload. Liveness is carried by the
// file's mtime, not the payload; the payload exists for humans and for
// the chaos harness's audits.
type info struct {
	Owner string    `json:"owner"`
	Plan  string    `json:"plan,omitempty"`
	Start time.Time `json:"start"`
}

// Manager acquires and heartbeats leases for one owner process.
type Manager struct {
	dir   string
	owner string
	plan  string
	ttl   time.Duration
	beat  time.Duration

	mu   sync.Mutex
	held map[string]*Lease

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Lease is one held cell claim.
type Lease struct {
	m    *Manager
	key  string
	path string
	// stolen reports the lease was acquired by expiring a dead owner's
	// claim rather than by fresh creation.
	stolen bool

	mu   sync.Mutex
	lost bool // the file vanished under us: we were presumed dead
	rel  bool
}

// defaultOwner builds a unique owner id.
func defaultOwner() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	var nonce [4]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		// Fall back to the start time; uniqueness only needs to hold
		// across concurrently-live processes on one directory.
		return fmt.Sprintf("%s:%d:t%d", host, os.Getpid(), time.Now().UnixNano())
	}
	return fmt.Sprintf("%s:%d:%s", host, os.Getpid(), hex.EncodeToString(nonce[:]))
}

// NewManager creates the lease directory if needed and starts the
// heartbeat loop.
func NewManager(o Options) (*Manager, error) {
	if o.Dir == "" {
		return nil, errors.New("lease: empty directory")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lease: dir: %w", err)
	}
	if o.Owner == "" {
		o.Owner = defaultOwner()
	}
	if o.TTL <= 0 {
		o.TTL = DefaultTTL
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.TTL / 4
	}
	m := &Manager{
		dir:   o.Dir,
		owner: o.Owner,
		plan:  o.Plan,
		ttl:   o.TTL,
		beat:  o.Heartbeat,
		held:  map[string]*Lease{},
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go m.heartbeat()
	return m, nil
}

// Owner returns the manager's owner id.
func (m *Manager) Owner() string { return m.owner }

// TTL returns the takeover threshold.
func (m *Manager) TTL() time.Duration { return m.ttl }

// path maps a cell key to its lease file. Keys are run-cache content
// hashes (hex), but stay defensive about separators anyway.
func (m *Manager) path(key string) string {
	key = strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':':
			return '_'
		}
		return r
	}, key)
	return filepath.Join(m.dir, key+".lease")
}

// Acquire claims the cell, returning ErrHeld while another live owner
// holds it. A claim whose heartbeat has expired is taken over: the stale
// file is renamed aside (at most one claimant's rename succeeds) and the
// winner re-creates the lease; the returned lease then reports Stolen.
func (m *Manager) Acquire(key string) (*Lease, error) {
	path := m.path(key)
	stolen := false
	// Two creation attempts: the first against the existing state, the
	// second after this process reaped an expired claim. Losing both
	// means a live competitor; report ErrHeld and let the caller defer
	// the cell.
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			payload, merr := json.Marshal(info{Owner: m.owner, Plan: m.plan, Start: time.Now().UTC()})
			if merr == nil {
				_, merr = f.Write(append(payload, '\n'))
			}
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
			if merr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("lease: write %s: %w", path, merr)
			}
			l := &Lease{m: m, key: key, path: path, stolen: stolen}
			m.mu.Lock()
			m.held[key] = l
			m.mu.Unlock()
			return l, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("lease: create %s: %w", path, err)
		}
		st, serr := os.Stat(path)
		if serr != nil {
			// Vanished between create and stat: the holder released.
			// Retry the create.
			continue
		}
		if time.Since(st.ModTime()) <= m.ttl {
			return nil, ErrHeld
		}
		// Expired: reap through rename so only one claimant wins the
		// takeover even if several observe the expiry simultaneously.
		reap := path + ".reap-" + hex.EncodeToString([]byte(m.owner))[:12]
		if rerr := os.Rename(path, reap); rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // someone else reaped or released; retry create
			}
			return nil, fmt.Errorf("lease: takeover %s: %w", path, rerr)
		}
		os.Remove(reap)
		stolen = true
	}
	return nil, ErrHeld
}

// heartbeat refreshes the mtime of every held lease until Close.
func (m *Manager) heartbeat() {
	defer close(m.done)
	t := time.NewTicker(m.beat)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		m.mu.Lock()
		leases := make([]*Lease, 0, len(m.held))
		for _, l := range m.held {
			leases = append(leases, l)
		}
		m.mu.Unlock()
		for _, l := range leases {
			if err := os.Chtimes(l.path, now, now); err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					// The file vanished: another process presumed this
					// one dead and took the cell over. Stop claiming it.
					l.mu.Lock()
					l.lost = true
					l.mu.Unlock()
					m.mu.Lock()
					if m.held[l.key] == l {
						delete(m.held, l.key)
					}
					m.mu.Unlock()
				}
				// Other refresh errors are transient; the TTL gives the
				// next beat headroom to catch up.
			}
		}
	}
}

// Close stops the heartbeat and releases every lease still held. It is
// idempotent.
func (m *Manager) Close() error {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	m.mu.Lock()
	leases := make([]*Lease, 0, len(m.held))
	for _, l := range m.held {
		leases = append(leases, l)
	}
	m.mu.Unlock()
	var err error
	for _, l := range leases {
		if rerr := l.Release(); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// Key returns the leased cell key.
func (l *Lease) Key() string { return l.key }

// Stolen reports whether this claim took over an expired lease.
func (l *Lease) Stolen() bool { return l.stolen }

// Lost reports whether the lease file vanished under us (this owner was
// presumed dead and the cell taken over). Work already done is still
// valid — run-cache writes are idempotent — but the cell may have been
// duplicated.
func (l *Lease) Lost() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lost
}

// Release removes the lease file. Releasing a lost or already-released
// lease is a no-op.
func (l *Lease) Release() error {
	l.mu.Lock()
	if l.rel || l.lost {
		l.mu.Unlock()
		return nil
	}
	l.rel = true
	l.mu.Unlock()
	l.m.mu.Lock()
	if l.m.held[l.key] == l {
		delete(l.m.held, l.key)
	}
	l.m.mu.Unlock()
	if err := os.Remove(l.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("lease: release %s: %w", l.path, err)
	}
	return nil
}

// Holder returns the owner recorded in a cell's lease file, or "" when
// the cell is unclaimed (or the file is unreadable/corrupt).
func (m *Manager) Holder(key string) string {
	data, err := os.ReadFile(m.path(key))
	if err != nil {
		return ""
	}
	var in info
	if json.Unmarshal(data, &in) != nil {
		return ""
	}
	return in.Owner
}

// SweepExpired removes lease files whose heartbeat is older than ttl and
// orphaned takeover (".reap-") temporaries, returning how many files it
// removed. It is safe to run concurrently with live workers: a live
// owner's heartbeat keeps its leases younger than any sane ttl, and a
// removed-but-live lease only costs a duplicated (idempotent) cell.
func SweepExpired(dir string, ttl time.Duration) int {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		isReap := strings.Contains(name, ".lease.reap-")
		if !isReap && !strings.HasSuffix(name, ".lease") {
			continue
		}
		in, err := e.Info()
		if err != nil {
			continue
		}
		if !isReap && time.Since(in.ModTime()) <= ttl {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}

// RemoveKeys removes the lease files of the given keys regardless of
// age. Callers use it when the sweep-level journal proves the cells are
// complete: any file still present belongs to an owner that died between
// finishing the cell and releasing, or to a straggler redundantly
// re-verifying a finished cell — in both cases removal is safe because
// the cell's result is durable and idempotent.
func RemoveKeys(dir string, keys []string) int {
	m := Manager{dir: dir}
	removed := 0
	for _, k := range keys {
		if err := os.Remove(m.path(k)); err == nil {
			removed++
		}
	}
	return removed
}
