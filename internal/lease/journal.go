package lease

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Status is a journal record's cell transition.
type Status string

const (
	// StatusClaimed marks a worker starting (an attempt at) a cell. A
	// claimed record with no matching done/failed means the worker died
	// mid-cell; resume re-runs the cell.
	StatusClaimed Status = "claimed"
	// StatusDone marks a cell completed, its result durable in the run
	// cache.
	StatusDone Status = "done"
	// StatusFailed marks one failed attempt at a cell.
	StatusFailed Status = "failed"
)

// Record is one journal line.
type Record struct {
	Key     string `json:"key"`
	Status  Status `json:"status"`
	Owner   string `json:"owner"`
	Attempt int    `json:"attempt,omitempty"`
	Err     string `json:"err,omitempty"`
	// Nanos is the wall-clock timestamp (UnixNano). The chaos harness
	// audits that completed claim/done intervals of different owners
	// never overlap on one cell.
	Nanos int64 `json:"t"`
}

// Journal is one sweep's shared append-only JSONL file. Every worker
// process of a sweep appends to the same file: each record is a single
// O_APPEND write well under the atomicity bound of local filesystems, so
// records from concurrent processes interleave line-whole. Reads are
// incremental: Tail returns the records appended (by anyone) since the
// previous Tail, never advancing past a torn final line, so a record
// whose write was cut by a crash is simply invisible until (if ever)
// completed.
type Journal struct {
	mu   sync.Mutex
	path string
	w    *os.File
	off  int64 // next unread byte for Tail
}

// OpenJournal opens (creating if needed) a journal for appending. The
// read cursor starts at byte 0, so the first Tail replays the sweep's
// whole history — resume is a replay plus a subscription.
func OpenJournal(path string) (*Journal, error) {
	w, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lease: journal: %w", err)
	}
	return &Journal{path: path, w: w}, nil
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Append writes one record (stamping its time when unset).
func (j *Journal) Append(r Record) error {
	if r.Nanos == 0 {
		r.Nanos = time.Now().UnixNano()
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("lease: journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("lease: journal append: %w", err)
	}
	return nil
}

// Tail returns every complete record appended since the previous Tail
// (or since open), in file order. Unparseable complete lines are skipped
// — a corrupt journal degrades to duplicated work, not failure — and a
// torn final line is left for the next call.
func (j *Journal) Tail() ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, fmt.Errorf("lease: journal read: %w", err)
	}
	if j.off > int64(len(data)) {
		// Truncated or replaced under us (operator intervention): start
		// over rather than reading garbage offsets.
		j.off = 0
	}
	data = data[j.off:]
	end := bytes.LastIndexByte(data, '\n')
	if end < 0 {
		return nil, nil // nothing complete yet
	}
	recs := parseRecords(data[:end+1])
	j.off += int64(end + 1)
	return recs, nil
}

// Close closes the append handle. The read cursor dies with the Journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Close()
}

// ReadJournal reads a journal's complete records without opening it for
// append — the read-only view for audits and tooling.
func ReadJournal(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if end := bytes.LastIndexByte(data, '\n'); end < 0 {
		return nil, nil
	} else {
		data = data[:end+1]
	}
	return parseRecords(data), nil
}

// parseRecords decodes newline-complete JSONL bytes, skipping corrupt
// lines.
func parseRecords(data []byte) []Record {
	var recs []Record
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r Record
		if json.Unmarshal(line, &r) != nil {
			continue
		}
		recs = append(recs, r)
	}
	return recs
}
