package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Sets: 4, Ways: 2, LineBytes: 64})
}

func TestHitMiss(t *testing.T) {
	c := small()
	if hit, _, _ := c.Access(0, false); hit {
		t.Error("first access should miss")
	}
	if hit, _, _ := c.Access(0, false); !hit {
		t.Error("second access should hit")
	}
	if hit, _, _ := c.Access(63, false); !hit {
		t.Error("same line should hit")
	}
	if hit, _, _ := c.Access(64, false); hit {
		t.Error("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate %v", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()                             // 4 sets: lines 64 bytes; same set every 4*64=256 bytes
	c.Access(0, false)                       // set 0, tag 0
	c.Access(256, false)                     // set 0, tag 1 — set full
	c.Access(0, false)                       // touch tag 0 (now MRU)
	hit, ev, evicted := c.Access(512, false) // set 0, tag 2 — evicts LRU (tag 1)
	if hit || !evicted {
		t.Fatal("expected evicting miss")
	}
	if ev.Addr != 256 {
		t.Errorf("evicted %d, want 256 (LRU)", ev.Addr)
	}
	if !c.Probe(0) || c.Probe(256) || !c.Probe(512) {
		t.Error("post-eviction contents wrong")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := small()
	c.Access(0, true) // dirty line
	c.Access(256, false)
	_, ev, evicted := c.Access(512, false) // evicts addr 0, dirty
	if !evicted || !ev.Dirty || ev.Addr != 0 {
		t.Errorf("eviction = %+v %v", ev, evicted)
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Writebacks)
	}
	// Clean eviction must not count.
	c2 := small()
	c2.Access(0, false)
	c2.Access(256, false)
	c2.Access(512, false)
	if c2.Writebacks != 0 {
		t.Error("clean eviction should not write back")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(0, true) // write hit dirties the line
	c.Access(256, false)
	_, ev, _ := c.Access(512, false)
	if !ev.Dirty {
		t.Error("write-hit line should be dirty on eviction")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("Invalidate = %v %v", present, dirty)
	}
	if c.Probe(0) {
		t.Error("line should be gone")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Error("double invalidate should report absent")
	}
}

func TestConfigForCapacity(t *testing.T) {
	cfg := ConfigForCapacity(256<<10, 16)
	c := New(cfg)
	if c.Capacity() != 256<<10 {
		t.Errorf("capacity = %d", c.Capacity())
	}
	if cfg.Ways != 16 || cfg.LineBytes != 64 {
		t.Errorf("cfg = %+v", cfg)
	}
	// Tiny capacity still yields at least one set.
	if ConfigForCapacity(1, 16).Sets != 1 {
		t.Error("minimum one set")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{})
}

func TestResidencyBoundProperty(t *testing.T) {
	// However many addresses are accessed, at most Sets*Ways stay resident.
	f := func(addrs []uint16) bool {
		c := small()
		for _, a := range addrs {
			c.Access(int64(a), a%3 == 0)
		}
		resident := 0
		seen := map[int64]bool{}
		for _, a := range addrs {
			line := (int64(a) / 64) * 64
			if seen[line] {
				continue
			}
			seen[line] = true
			if c.Probe(int64(a)) {
				resident++
			}
		}
		return resident <= 4*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbeDoesNotTouchLRU(t *testing.T) {
	c := small()
	c.Access(0, false)
	c.Access(256, false)
	// Probing tag 0 must NOT refresh it; the next allocation still evicts it.
	c.Probe(0)
	_, ev, _ := c.Access(512, false)
	if ev.Addr != 0 {
		t.Errorf("Probe disturbed LRU: evicted %d, want 0", ev.Addr)
	}
}
