package cache

import "testing"

func BenchmarkAccessMissHeavy(b *testing.B) {
	c := New(ConfigForCapacity(1<<20, 16))
	s := uint64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		addr := int64(s>>20) % (64 << 20)
		c.Access(addr, s&7 == 0)
	}
}

func BenchmarkAccessHitHeavy(b *testing.B) {
	c := New(ConfigForCapacity(1<<20, 16))
	s := uint64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		addr := int64(s>>20) % (1 << 19)
		c.Access(addr, s&7 == 0)
	}
}
