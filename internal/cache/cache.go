// Package cache implements the set-associative, write-back, write-allocate
// LRU cache used for the shared L3 in the simulated system (Table 8) and
// reused by tests as a reference model for cache-like structures.
package cache

// Eviction describes a victim line pushed out by an allocation.
type Eviction struct {
	Addr  int64 // byte address of the first byte of the victim line
	Dirty bool  // true if the victim must be written back
}

// Config sizes a cache. Sets*Ways*LineBytes is the capacity.
type Config struct {
	Sets      int
	Ways      int
	LineBytes int64
}

// ConfigForCapacity builds a Config with the given capacity, associativity
// and 64-B lines, mirroring how the paper resizes caches by changing only
// the number of sets (§4.1).
func ConfigForCapacity(capacity int64, ways int) Config {
	c := Config{Ways: ways, LineBytes: 64}
	sets := capacity / (int64(ways) * c.LineBytes)
	if sets < 1 {
		sets = 1
	}
	c.Sets = int(sets)
	return c
}

// invalidTag marks an empty way. Byte addresses are non-negative, so real
// tags are too and can never match it.
const invalidTag int64 = -1

// mru is the per-set most-recently-used memo: the way index the set's last
// hit landed in, plus the tag it held. Re-referencing the same line — the
// overwhelmingly common pattern under spatial locality — then skips the
// associative way scan entirely. Purely an accelerator: it caches a (tag,
// way) pair the line state also holds, so behaviour is identical with or
// without it.
type mru struct {
	tag int64
	way int32
	ok  bool
}

// way is one line's scan state: its tag and LRU stamp, kept adjacent so
// the associative scan walks one contiguous 16-byte-per-way stream.
type way struct {
	tag int64 // invalidTag = empty way
	lru int64 // larger = more recent
}

// Cache is a single-level cache model. Not safe for concurrent use.
//
// Line state is stored as a set-major (tag, lru) array plus a per-set
// dirty bitmask — half the bytes per way of a naive line struct — because
// the simulator's L3 lookup is hot enough on both the event-driven and the
// fast-forward path for the scan footprint to matter.
type Cache struct {
	cfg   Config
	ways  []way    // Sets*Ways entries, set-major
	dirty []uint64 // one mask per set, bit i = way i is dirty
	mrus  []mru    // Sets entries, the per-set hit memo
	clock int64

	// Fast-path indexing: line and set arithmetic reduce to shifts and
	// masks when the respective dimension is a power of two (the common
	// case — lines are 64 B and capacities are powers of two). A shift of
	// -1 marks the divide/modulo fallback.
	lineShift int
	setShift  int
	setMask   int64

	Hits       int64
	Misses     int64
	Writebacks int64
}

// log2 returns the exponent when v is a positive power of two, else -1.
func log2(v int64) int {
	if v <= 0 || v&(v-1) != 0 {
		return -1
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		panic("cache: invalid config")
	}
	if cfg.Ways > 64 {
		panic("cache: more than 64 ways is unsupported (dirtiness is a per-set bitmask)")
	}
	c := &Cache{
		cfg:       cfg,
		ways:      make([]way, cfg.Sets*cfg.Ways),
		dirty:     make([]uint64, cfg.Sets),
		mrus:      make([]mru, cfg.Sets),
		lineShift: log2(cfg.LineBytes),
		setShift:  log2(int64(cfg.Sets)),
		setMask:   int64(cfg.Sets) - 1,
	}
	for i := range c.ways {
		c.ways[i].tag = invalidTag
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reset invalidates every line and zeroes the LRU clock and hit/miss/
// writeback counters, returning the cache to its just-built state without
// reallocating the line arrays.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{tag: invalidTag}
	}
	clear(c.dirty)
	clear(c.mrus)
	c.clock = 0
	c.Hits, c.Misses, c.Writebacks = 0, 0, 0
}

// Capacity returns the cache capacity in bytes.
func (c *Cache) Capacity() int64 {
	return int64(c.cfg.Sets) * int64(c.cfg.Ways) * c.cfg.LineBytes
}

// index splits a byte address into (set, tag).
func (c *Cache) index(addr int64) (int, int64) {
	var lineAddr int64
	if c.lineShift >= 0 {
		lineAddr = addr >> uint(c.lineShift)
	} else {
		lineAddr = addr / c.cfg.LineBytes
	}
	if c.setShift >= 0 {
		return int(lineAddr & c.setMask), lineAddr >> uint(c.setShift)
	}
	return int(lineAddr % int64(c.cfg.Sets)), lineAddr / int64(c.cfg.Sets)
}

// Access looks up addr, allocating on miss. It returns whether the access
// hit and, on miss, whether a dirty victim was evicted (ev.Addr is the
// victim's address). Write hits and write allocations mark the line dirty.
func (c *Cache) Access(addr int64, write bool) (hit bool, ev Eviction, evicted bool) {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	c.clock++
	if m := &c.mrus[set]; m.ok && m.tag == tag {
		c.ways[base+int(m.way)].lru = c.clock
		if write {
			c.dirty[set] |= 1 << uint(m.way)
		}
		c.Hits++
		return true, Eviction{}, false
	}
	ways := c.ways[base : base+c.cfg.Ways : base+c.cfg.Ways]
	// One pass finds the matching way and, in case of a miss, the victim:
	// the first invalid way if any, else the least-recently-used way
	// (first occurrence on ties).
	firstInvalid, minIdx := -1, -1
	for i := range ways {
		t := ways[i].tag
		if t == tag {
			ways[i].lru = c.clock
			if write {
				c.dirty[set] |= 1 << uint(i)
			}
			c.mrus[set] = mru{tag: tag, way: int32(i), ok: true}
			c.Hits++
			return true, Eviction{}, false
		}
		if t == invalidTag {
			if firstInvalid < 0 {
				firstInvalid = i
			}
			continue
		}
		if minIdx < 0 || ways[i].lru < ways[minIdx].lru {
			minIdx = i
		}
	}
	c.Misses++
	victim := firstInvalid
	if victim < 0 {
		victim = minIdx
		evicted = true
		ev = Eviction{Addr: c.lineAddrToByte(set, ways[victim].tag), Dirty: c.dirty[set]&(1<<uint(victim)) != 0}
		if ev.Dirty {
			c.Writebacks++
		}
	}
	vbit := uint64(1) << uint(victim)
	ways[victim] = way{tag: tag, lru: c.clock}
	if write {
		c.dirty[set] |= vbit
	} else {
		c.dirty[set] &^= vbit
	}
	// Point the memo at the fill: it is the set's MRU line, and this also
	// retires any memo entry whose tag was just evicted from the set.
	c.mrus[set] = mru{tag: tag, way: int32(victim), ok: true}
	return false, ev, evicted
}

// Probe reports whether addr is resident without touching LRU state.
func (c *Cache) Probe(addr int64) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for _, w := range c.ways[base : base+c.cfg.Ways] {
		if w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr's line if resident, returning whether it was dirty.
func (c *Cache) Invalidate(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	ways := c.ways[base : base+c.cfg.Ways]
	for i := range ways {
		if ways[i].tag == tag {
			bit := uint64(1) << uint(i)
			d := c.dirty[set]&bit != 0
			ways[i].tag = invalidTag
			c.dirty[set] &^= bit
			if c.mrus[set].tag == tag {
				c.mrus[set].ok = false
			}
			return true, d
		}
	}
	return false, false
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

func (c *Cache) lineAddrToByte(set int, tag int64) int64 {
	return (tag*int64(c.cfg.Sets) + int64(set)) * c.cfg.LineBytes
}
