// Package cache implements the set-associative, write-back, write-allocate
// LRU cache used for the shared L3 in the simulated system (Table 8) and
// reused by tests as a reference model for cache-like structures.
package cache

// Eviction describes a victim line pushed out by an allocation.
type Eviction struct {
	Addr  int64 // byte address of the first byte of the victim line
	Dirty bool  // true if the victim must be written back
}

// Config sizes a cache. Sets*Ways*LineBytes is the capacity.
type Config struct {
	Sets      int
	Ways      int
	LineBytes int64
}

// ConfigForCapacity builds a Config with the given capacity, associativity
// and 64-B lines, mirroring how the paper resizes caches by changing only
// the number of sets (§4.1).
func ConfigForCapacity(capacity int64, ways int) Config {
	c := Config{Ways: ways, LineBytes: 64}
	sets := capacity / (int64(ways) * c.LineBytes)
	if sets < 1 {
		sets = 1
	}
	c.Sets = int(sets)
	return c
}

type line struct {
	tag   int64
	valid bool
	dirty bool
	lru   int64 // larger = more recently used
}

// Cache is a single-level cache model. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	lines []line // Sets*Ways entries, set-major
	clock int64

	// Fast-path indexing: line and set arithmetic reduce to shifts and
	// masks when the respective dimension is a power of two (the common
	// case — lines are 64 B and capacities are powers of two). A shift of
	// -1 marks the divide/modulo fallback.
	lineShift int
	setShift  int
	setMask   int64

	Hits       int64
	Misses     int64
	Writebacks int64
}

// log2 returns the exponent when v is a positive power of two, else -1.
func log2(v int64) int {
	if v <= 0 || v&(v-1) != 0 {
		return -1
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// New builds an empty cache.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		panic("cache: invalid config")
	}
	c := &Cache{
		cfg:       cfg,
		lines:     make([]line, cfg.Sets*cfg.Ways),
		lineShift: log2(cfg.LineBytes),
		setShift:  log2(int64(cfg.Sets)),
		setMask:   int64(cfg.Sets) - 1,
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Reset invalidates every line and zeroes the LRU clock and hit/miss/
// writeback counters, returning the cache to its just-built state without
// reallocating the line array.
func (c *Cache) Reset() {
	clear(c.lines)
	c.clock = 0
	c.Hits, c.Misses, c.Writebacks = 0, 0, 0
}

// Capacity returns the cache capacity in bytes.
func (c *Cache) Capacity() int64 {
	return int64(c.cfg.Sets) * int64(c.cfg.Ways) * c.cfg.LineBytes
}

// index splits a byte address into (set, tag).
func (c *Cache) index(addr int64) (int, int64) {
	var lineAddr int64
	if c.lineShift >= 0 {
		lineAddr = addr >> uint(c.lineShift)
	} else {
		lineAddr = addr / c.cfg.LineBytes
	}
	if c.setShift >= 0 {
		return int(lineAddr & c.setMask), lineAddr >> uint(c.setShift)
	}
	return int(lineAddr % int64(c.cfg.Sets)), lineAddr / int64(c.cfg.Sets)
}

// Access looks up addr, allocating on miss. It returns whether the access
// hit and, on miss, whether a dirty victim was evicted (ev.Addr is the
// victim's address). Write hits and write allocations mark the line dirty.
func (c *Cache) Access(addr int64, write bool) (hit bool, ev Eviction, evicted bool) {
	set, tag := c.index(addr)
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	c.clock++
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.clock
			if write {
				ways[i].dirty = true
			}
			c.Hits++
			return true, Eviction{}, false
		}
	}
	c.Misses++
	// Choose victim: an invalid way if any, else the LRU way.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	v := ways[victim]
	if v.valid {
		evicted = true
		ev = Eviction{Addr: c.lineAddrToByte(set, v.tag), Dirty: v.dirty}
		if v.dirty {
			c.Writebacks++
		}
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return false, ev, evicted
}

// Probe reports whether addr is resident without touching LRU state.
func (c *Cache) Probe(addr int64) bool {
	set, tag := c.index(addr)
	for _, w := range c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr's line if resident, returning whether it was dirty.
func (c *Cache) Invalidate(addr int64) (present, dirty bool) {
	set, tag := c.index(addr)
	ways := c.lines[set*c.cfg.Ways : (set+1)*c.cfg.Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			d := ways[i].dirty
			ways[i] = line{}
			return true, d
		}
	}
	return false, false
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

func (c *Cache) lineAddrToByte(set int, tag int64) int64 {
	return (tag*int64(c.cfg.Sets) + int64(set)) * c.cfg.LineBytes
}
