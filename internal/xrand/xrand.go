// Package xrand provides a tiny, fast, deterministic pseudo-random number
// generator (xorshift64*). The simulator must be bit-for-bit reproducible
// across runs and platforms, so all stochastic components (reference
// generators, allocators) draw from per-component xrand instances with fixed
// seeds rather than from math/rand's global state.
package xrand

// RNG is a xorshift64* generator. The zero value is invalid; use New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is replaced with a
// fixed non-zero constant, since xorshift has an all-zero fixed point.
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &RNG{state: seed}
	// Warm up so that small seeds do not produce correlated first outputs.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf draws from a bounded discrete Zipf-like distribution over [0, n) with
// exponent s, using inverse-CDF on a precomputed table is avoided for memory;
// instead it uses rejection-free two-level sampling: with probability hot it
// returns a value in the first hotN items, uniformly; otherwise uniform over
// the rest. This is a cheap skew approximation adequate for synthetic
// workloads. See HotCold for the direct form.
func (r *RNG) HotCold(n, hotN int, hotP float64) int {
	if hotN <= 0 || hotN >= n {
		return r.Intn(n)
	}
	if r.Bool(hotP) {
		return r.Intn(hotN)
	}
	return hotN + r.Intn(n-hotN)
}
