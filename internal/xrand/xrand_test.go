package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; m < 0.49 || m > 0.51 {
		t.Errorf("Float64 mean %v far from 0.5", m)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) rate %v", frac)
	}
	if New(1).Bool(0) {
		t.Error("Bool(0) must be false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHotColdBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.HotCold(100, 10, 0.9); v < 0 || v >= 100 {
			t.Fatalf("HotCold out of range: %d", v)
		}
	}
	// Degenerate hot sizes fall back to uniform.
	if v := r.HotCold(10, 0, 0.9); v < 0 || v >= 10 {
		t.Errorf("HotCold degenerate out of range: %d", v)
	}
	if v := r.HotCold(10, 10, 0.9); v < 0 || v >= 10 {
		t.Errorf("HotCold full-hot out of range: %d", v)
	}
}

func TestHotColdSkew(t *testing.T) {
	r := New(23)
	const n = 100000
	hot := 0
	for i := 0; i < n; i++ {
		if r.HotCold(1000, 100, 0.8) < 100 {
			hot++
		}
	}
	frac := float64(hot) / n
	// 0.8 hot probability plus 10% of the cold mass... cold draws land in
	// [100,1000) only, so hot hits = 0.8 exactly in expectation.
	if frac < 0.78 || frac > 0.82 {
		t.Errorf("hot fraction %v, want ~0.8", frac)
	}
}
