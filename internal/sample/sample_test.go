package sample

import (
	"math"
	"testing"
)

func TestSchedulePinsCalibrationWindow(t *testing.T) {
	s := NewSchedule(0.1, 30_000, 42)
	start, end := s.WindowAt(0)
	if start != 0 || end != 30_000 {
		t.Fatalf("window 0 = [%d, %d), want [0, 30000): calibration must precede any fast-forward", start, end)
	}
}

func TestScheduleWindowsStayInPeriod(t *testing.T) {
	for _, fr := range []float64{0.01, 0.05, 0.25, 0.5, 0.99} {
		s := NewSchedule(fr, 10_000, 7)
		wantPeriod := int64(math.Round(10_000 / fr))
		if s.Period != wantPeriod {
			t.Errorf("fraction %g: period %d, want %d", fr, s.Period, wantPeriod)
		}
		for i := int64(1); i < 200; i++ {
			start, end := s.WindowAt(i)
			if start < i*s.Period || end > (i+1)*s.Period {
				t.Fatalf("fraction %g window %d = [%d, %d) escapes period [%d, %d)",
					fr, i, start, end, i*s.Period, (i+1)*s.Period)
			}
			if end-start != s.Window {
				t.Fatalf("fraction %g window %d has length %d, want %d", fr, i, end-start, s.Window)
			}
		}
	}
}

func TestScheduleDeterministicAndSeedSensitive(t *testing.T) {
	a := NewSchedule(0.1, 30_000, 42)
	b := NewSchedule(0.1, 30_000, 42)
	c := NewSchedule(0.1, 30_000, 43)
	var differs bool
	for i := int64(0); i < 100; i++ {
		as, ae := a.WindowAt(i)
		bs, be := b.WindowAt(i)
		if as != bs || ae != be {
			t.Fatalf("window %d differs across identical schedules: [%d,%d) vs [%d,%d)", i, as, ae, bs, be)
		}
		if cs, _ := c.WindowAt(i); cs != as {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 42 and 43 place all 100 windows identically; offsets are not seed-driven")
	}
}

func TestScheduleOffsetsSpreadAcrossPeriod(t *testing.T) {
	// With period 10x window the free span is 9 windows wide; 500 draws
	// must land in both the low and high thirds or the stream is biased.
	s := NewSchedule(0.1, 1_000, 1)
	span := s.Period - s.Window
	var low, high int
	for i := int64(1); i <= 500; i++ {
		start, _ := s.WindowAt(i)
		off := start - i*s.Period
		if off < span/3 {
			low++
		}
		if off > 2*span/3 {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("offsets never reached a third of the span (low %d, high %d of 500)", low, high)
	}
}

func TestScheduleDegenerateWindow(t *testing.T) {
	s := NewSchedule(0.5, 0, 9)
	if s.Window != 1 || s.Period < s.Window {
		t.Errorf("degenerate window: got window %d period %d", s.Window, s.Period)
	}
}

func TestEstimatorMeanAndCI(t *testing.T) {
	e := NewEstimator(2)
	samples := [][]float64{{1, 10}, {2, 10}, {3, 10}, {4, 10}}
	for _, s := range samples {
		e.Add(s)
	}
	if e.Windows() != 4 {
		t.Fatalf("windows = %d, want 4", e.Windows())
	}
	if got := e.Mean(0); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("mean(0) = %g, want 2.5", got)
	}
	if got := e.Mean(1); math.Abs(got-10) > 1e-12 {
		t.Errorf("mean(1) = %g, want 10", got)
	}
	// Program 0: sample sd = sqrt(5/3); CI = 1.96*sd/2.
	want := 1.96 * math.Sqrt(5.0/3.0) / 2
	if got := e.CI95(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI95(0) = %g, want %g", got, want)
	}
	if got := e.CI95(1); got != 0 {
		t.Errorf("CI95(1) = %g, want 0 for constant samples", got)
	}
}

func TestEstimatorCIZeroBelowTwoWindows(t *testing.T) {
	e := NewEstimator(1)
	if e.CI95(0) != 0 {
		t.Error("CI95 nonzero with no windows")
	}
	e.Add([]float64{1})
	if e.CI95(0) != 0 {
		t.Error("CI95 nonzero with one window")
	}
}

func TestEstimatorPaceTracksRecentWindows(t *testing.T) {
	// A program that ramps from IPC 0.1 to 1.0: the pace must follow the
	// recent speed, not the lifetime mean (which the cold windows drag to
	// ~0.55, a 1.8x slower pace).
	e := NewEstimator(1)
	e.Add([]float64{0.1})
	for i := 0; i < 10; i++ {
		e.Add([]float64{1.0})
	}
	pace := e.Pace(0, 1)
	if pace > 1.1 {
		t.Errorf("pace %g tracks the lifetime mean, not the recent windows (want ~1.0)", pace)
	}
	// Two threads share the program's IPC: per-thread pace doubles.
	if got := e.Pace(0, 2); math.Abs(got-2*pace) > 1e-9 {
		t.Errorf("pace at 2 threads = %g, want %g", got, 2*pace)
	}
}

func TestEstimatorPaceFloorsStarvedPrograms(t *testing.T) {
	e := NewEstimator(1)
	e.Add([]float64{0})
	if pace := e.Pace(0, 1); pace > 1/minPaceIPC+1 || math.IsInf(pace, 1) {
		t.Errorf("starved program's pace = %g; must be floored, not infinite", pace)
	}
	if pace := e.Pace(0, 0); math.IsInf(pace, 1) || math.IsNaN(pace) {
		t.Errorf("pace with 0 threads = %g", pace)
	}
}
