// Package sample provides the statistical machinery of the simulator's
// interval-sampling execution mode (SMARTS-style): a seeded deterministic
// schedule of short detailed measurement windows inside long fast-forward
// spans, and a per-program IPC estimator over the window samples that
// yields both the confidence interval reported on results and the pace
// (cycles per instruction) the fast-forward spans advance cores at.
//
// The package is pure arithmetic — no dependency on the event engine or
// the machine — so the execution layers (internal/cpu, internal/sim) can
// all build on it without import cycles.
package sample

import (
	"math"
)

// Schedule places one detailed window inside each sampling period. The
// period length is Window/fraction, so the detailed windows cover the
// requested fraction of simulated time; the window's offset within each
// period is drawn from a seeded splitmix64 stream, which decorrelates the
// measurement phase from any periodic behaviour of the workload while
// keeping the whole schedule a pure function of (fraction, window, seed).
type Schedule struct {
	// Period is the length of one sampling period in cycles.
	Period int64
	// Window is the detailed-window length in cycles.
	Window int64
	seed   uint64
}

// NewSchedule builds the window schedule for the given sampling fraction
// (must be in (0, 1)), detailed-window length and seed.
func NewSchedule(fraction float64, window int64, seed uint64) Schedule {
	if window < 1 {
		window = 1
	}
	period := int64(math.Round(float64(window) / fraction))
	if period < window {
		period = window
	}
	return Schedule{Period: period, Window: window, seed: seed}
}

// splitmix64 is the standard 64-bit mixing function; one evaluation per
// period index gives an independent, reproducible offset stream.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// WindowAt returns the detailed window [start, end) of sampling period i.
// Period 0's window is pinned to cycle 0: the first detailed window
// doubles as the calibration measurement that seeds the fast-forward pace,
// so it must precede any fast-forward span — and it observes the same
// cold-start phase the full-fidelity run begins with.
func (s Schedule) WindowAt(i int64) (start, end int64) {
	if i == 0 {
		return 0, s.Window
	}
	base := i * s.Period
	span := s.Period - s.Window
	var off int64
	if span > 0 {
		off = int64(splitmix64(s.seed^uint64(i)) % uint64(span+1))
	}
	return base + off, base + off + s.Window
}

// Estimator accumulates per-program per-window IPC samples (Welford's
// online algorithm) and reports the mean and a 95% confidence interval.
// The detailed windows of a sampled run are the samples; the CI half-width
// is what Result reports alongside the point estimate.
type Estimator struct {
	n    int64
	mean []float64
	m2   []float64
	// ewma tracks a recency-weighted window IPC per program. Pacing must
	// follow the program's CURRENT speed, not its lifetime average: early
	// windows run against a cold hierarchy (hot pages still in M2, cold
	// caches) and would otherwise drag the fast-forward pace down for the
	// whole run, systematically stretching programs whose IPC ramps as
	// the management scheme warms up.
	ewma []float64
}

// ewmaAlpha is the weight of the newest window in the pacing estimate.
const ewmaAlpha = 0.5

// NewEstimator builds an estimator for the given number of programs.
func NewEstimator(programs int) *Estimator {
	return &Estimator{
		mean: make([]float64, programs),
		m2:   make([]float64, programs),
		ewma: make([]float64, programs),
	}
}

// Add records one detailed window's per-program IPC vector.
func (e *Estimator) Add(ipc []float64) {
	e.n++
	for i, v := range ipc {
		d := v - e.mean[i]
		e.mean[i] += d / float64(e.n)
		e.m2[i] += d * (v - e.mean[i])
		if e.n == 1 {
			e.ewma[i] = v
		} else {
			e.ewma[i] = ewmaAlpha*v + (1-ewmaAlpha)*e.ewma[i]
		}
	}
}

// Windows returns the number of windows recorded.
func (e *Estimator) Windows() int64 { return e.n }

// Mean returns program i's mean window IPC.
func (e *Estimator) Mean(i int) float64 { return e.mean[i] }

// CI95 returns the half-width of the 95% confidence interval on program
// i's mean window IPC (1.96·s/√n, the large-sample normal interval); 0
// with fewer than two windows.
func (e *Estimator) CI95(i int) float64 {
	if e.n < 2 {
		return 0
	}
	sd := math.Sqrt(e.m2[i] / float64(e.n-1))
	return 1.96 * sd / math.Sqrt(float64(e.n))
}

// minPaceIPC floors the per-thread IPC a pace is derived from, so a
// program that happened to be starved for a whole window cannot stall the
// functional clock (and with it the entire sampled run) indefinitely.
const minPaceIPC = 1e-4

// Pace returns the fast-forward pace for one thread of program i — cycles
// per instruction, the reciprocal of the recency-weighted per-thread
// window IPC. Fast-forward spans advance each core's clock at this rate,
// so functional time flows at the speed the recent detailed windows
// actually measured and the whole-run cycle count stays consistent with
// the estimated IPC.
func (e *Estimator) Pace(i int, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	ipc := e.ewma[i] / float64(threads)
	if ipc < minPaceIPC {
		ipc = minPaceIPC
	}
	return 1 / ipc
}
