// Package energy models the off-chip memory system's power, supporting the
// paper's energy-efficiency figure of merit: requests served per second
// per watt (§4.3). Absolute numbers depend on device datasheets the paper
// does not disclose (it reads power from DRAMSim2); this model uses
// representative per-event energies for DDR4 DRAM and a 3D-XPoint-class
// NVM with strongly asymmetric write cost, which is what shapes the
// relative efficiency across migration schemes (swap traffic and M1/M2
// mix).
package energy

import (
	"profess/internal/mem"
)

// Model holds per-event energies in nanojoules and background power in
// watts, per partition kind.
type Model struct {
	// ActivateNJ is the energy of one activate+precharge pair.
	ActivateNJ [2]float64
	// ReadNJ / WriteNJ are per-64-B-burst energies.
	ReadNJ  [2]float64
	WriteNJ [2]float64
	// RefreshNJ is the energy of one rank refresh window (M2: none).
	RefreshNJ [2]float64
	// BackgroundW is standby power per channel per partition.
	BackgroundW [2]float64
}

// Default returns the representative model: DRAM with symmetric burst
// energy; NVM with pricier array reads and ~4x write energy, but lower
// standby power (non-volatile arrays need no refresh, §4.1).
func Default() Model {
	m := Model{}
	m.ActivateNJ[mem.M1] = 2.0
	m.ReadNJ[mem.M1] = 1.6
	m.WriteNJ[mem.M1] = 1.6
	m.RefreshNJ[mem.M1] = 15
	m.BackgroundW[mem.M1] = 0.25

	m.ActivateNJ[mem.M2] = 4.0
	m.ReadNJ[mem.M2] = 2.0
	m.WriteNJ[mem.M2] = 8.0
	m.BackgroundW[mem.M2] = 0.10
	return m
}

// Report is the energy accounting of one simulation.
type Report struct {
	DynamicJ    float64 // dynamic energy, joules
	BackgroundJ float64 // standby energy, joules
	Seconds     float64 // simulated wall time
	Requests    int64   // demand accesses served
}

// TotalJ returns total energy in joules.
func (r Report) TotalJ() float64 { return r.DynamicJ + r.BackgroundJ }

// Watts returns average power.
func (r Report) Watts() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.TotalJ() / r.Seconds
}

// Efficiency returns the paper's figure of merit: requests per second per
// watt, which reduces to requests per joule.
func (r Report) Efficiency() float64 {
	if r.TotalJ() <= 0 {
		return 0
	}
	return float64(r.Requests) / r.TotalJ()
}

// Evaluate folds channel event counts and elapsed cycles into a Report.
// channels is the number of channels contributing background power.
func (m Model) Evaluate(counts mem.EventCounts, cycles int64, channels int) Report {
	var dyn float64 // nanojoules
	for k := 0; k < 2; k++ {
		dyn += float64(counts.Activates[k]) * m.ActivateNJ[k]
		dyn += float64(counts.Reads[k]+counts.SwapReads[k]) * m.ReadNJ[k]
		dyn += float64(counts.Writes[k]+counts.SwapWrites[k]) * m.WriteNJ[k]
		dyn += float64(counts.Refreshes[k]) * m.RefreshNJ[k]
	}
	secs := float64(cycles) / (mem.CyclesPerNs * 1e9)
	bgW := (m.BackgroundW[mem.M1] + m.BackgroundW[mem.M2]) * float64(channels)
	return Report{
		DynamicJ:    dyn * 1e-9,
		BackgroundJ: bgW * secs,
		Seconds:     secs,
		Requests:    counts.DemandAccesses(),
	}
}
