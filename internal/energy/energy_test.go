package energy

import (
	"math"
	"testing"

	"profess/internal/mem"
)

func TestDefaultModelShape(t *testing.T) {
	m := Default()
	if m.WriteNJ[mem.M2] <= m.ReadNJ[mem.M2] {
		t.Error("NVM writes must cost more than reads (asymmetry)")
	}
	if m.BackgroundW[mem.M2] >= m.BackgroundW[mem.M1] {
		t.Error("NVM standby power should undercut DRAM (no refresh)")
	}
}

func TestEvaluateArithmetic(t *testing.T) {
	m := Model{}
	m.ReadNJ[mem.M1] = 2
	m.WriteNJ[mem.M2] = 10
	m.ActivateNJ[mem.M1] = 1
	m.BackgroundW[mem.M1] = 0.5
	m.BackgroundW[mem.M2] = 0.5

	var c mem.EventCounts
	c.Reads[mem.M1] = 100     // 200 nJ
	c.Writes[mem.M2] = 10     // 100 nJ
	c.Activates[mem.M1] = 50  // 50 nJ
	c.SwapReads[mem.M1] = 100 // 200 nJ
	c.SwapWrites[mem.M2] = 10 // 100 nJ

	cycles := int64(3.2e9) // exactly one second at 3.2 GHz
	rep := m.Evaluate(c, cycles, 1)
	if math.Abs(rep.Seconds-1) > 1e-9 {
		t.Errorf("seconds = %v", rep.Seconds)
	}
	if want := 650e-9; math.Abs(rep.DynamicJ-want) > 1e-15 {
		t.Errorf("dynamic = %v J, want %v", rep.DynamicJ, want)
	}
	if math.Abs(rep.BackgroundJ-1.0) > 1e-9 {
		t.Errorf("background = %v J, want 1", rep.BackgroundJ)
	}
	if rep.Requests != 110 {
		t.Errorf("requests = %d", rep.Requests)
	}
	// Efficiency = requests / total joules.
	if want := 110 / rep.TotalJ(); math.Abs(rep.Efficiency()-want) > 1e-6 {
		t.Errorf("efficiency = %v, want %v", rep.Efficiency(), want)
	}
	if rep.Watts() <= 1 {
		t.Errorf("watts = %v, want > background 1 W", rep.Watts())
	}
}

func TestReportEdgeCases(t *testing.T) {
	var r Report
	if r.Watts() != 0 || r.Efficiency() != 0 {
		t.Error("zero report should yield zeros")
	}
}

func TestMoreTrafficMoreEnergy(t *testing.T) {
	m := Default()
	var a, b mem.EventCounts
	a.Reads[mem.M1] = 1000
	b.Reads[mem.M1] = 1000
	b.Swaps = 100
	b.SwapReads[mem.M1] = 3200
	b.SwapReads[mem.M2] = 3200
	b.SwapWrites[mem.M1] = 3200
	b.SwapWrites[mem.M2] = 3200
	ra := m.Evaluate(a, 1e9, 2)
	rb := m.Evaluate(b, 1e9, 2)
	if rb.TotalJ() <= ra.TotalJ() {
		t.Error("swap traffic must increase energy")
	}
	if rb.Efficiency() >= ra.Efficiency() {
		t.Error("swap traffic must reduce requests/s/W at equal demand")
	}
}
