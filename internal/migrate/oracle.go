package migrate

import "profess/internal/hybrid"

// Profiler is a non-migrating policy that records per-block access counts
// (writes weighted like PoM/ProFess count them). It is the first pass of
// the two-pass oracle: run once to learn which block of each swap group
// deserves the group's single M1 location.
type Profiler struct {
	hybrid.BasePolicy
	// Counts maps group*9+slot to the weighted access count.
	Counts      map[int64]uint64
	writeWeight int
}

// NewProfiler builds a profiler with the given write weight (§4.1 uses 8).
func NewProfiler(writeWeight int) *Profiler {
	if writeWeight <= 0 {
		writeWeight = 1
	}
	return &Profiler{Counts: make(map[int64]uint64), writeWeight: writeWeight}
}

// Name implements hybrid.Policy.
func (*Profiler) Name() string { return "profiler" }

// WriteWeight implements hybrid.Policy.
func (p *Profiler) WriteWeight() int { return p.writeWeight }

// OnAccess implements hybrid.Policy: count, never migrate.
func (p *Profiler) OnAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	w := uint64(1)
	if info.Write {
		w = uint64(p.writeWeight)
	}
	p.Counts[key(info.Group, info.Slot)] += w
}

// Oracle is the profile-guided static-placement upper bound: with perfect
// knowledge of each block's total access count, the best *static* resident
// of each group's M1 location is the most-accessed block. The oracle swaps
// that block in on its first touch (at most one swap per group) and then
// leaves the mapping alone. It bounds what any reactive policy with
// one-shot placement could achieve; comparing MDM against it quantifies
// how much of the statically-reachable benefit MDM's predictions capture.
// (Not part of the paper; used by the ablation/extension benches.)
type Oracle struct {
	hybrid.BasePolicy
	best map[int64]int // group -> best slot
	done map[int64]bool
	// Swaps counts the one-time placements performed.
	Swaps int64
}

// NewOracle derives the per-group best slots from a Profiler's counts.
// Groups whose best block already sits in slot 0 (initially M1-resident)
// need no swap and are skipped; so are groups where the margin over the
// slot-0 block would not repay one swap (minBenefit in weighted accesses).
func NewOracle(counts map[int64]uint64, minBenefit uint64) *Oracle {
	type bestEntry struct {
		slot  int
		count uint64
		slot0 uint64
	}
	agg := make(map[int64]*bestEntry)
	for k, c := range counts {
		group, slot := k/hybrid.MaxSlots, int(k%hybrid.MaxSlots)
		e := agg[group]
		if e == nil {
			e = &bestEntry{slot: -1}
			agg[group] = e
		}
		if slot == 0 {
			e.slot0 = c
		}
		if c > e.count || (c == e.count && e.slot < 0) {
			e.count, e.slot = c, slot
		}
	}
	o := &Oracle{best: make(map[int64]int), done: make(map[int64]bool)}
	for group, e := range agg {
		if e.slot <= 0 {
			continue // already resident, or nothing profiled
		}
		if e.count < e.slot0+minBenefit {
			continue // the swap would not repay itself
		}
		o.best[group] = e.slot
	}
	return o
}

// Name implements hybrid.Policy.
func (*Oracle) Name() string { return "oracle" }

// WriteWeight implements hybrid.Policy (match the profiling weight's
// effect on counters; the oracle itself ignores counters).
func (*Oracle) WriteWeight() int { return 8 }

// Placements returns how many groups have a pending or applied placement.
func (o *Oracle) Placements() int { return len(o.best) }

// OnAccess implements hybrid.Policy: perform the group's one placement on
// first touch of the chosen block.
func (o *Oracle) OnAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	if info.Loc == 0 || o.done[info.Group] {
		return
	}
	best, ok := o.best[info.Group]
	if !ok || best != info.Slot {
		return
	}
	if ctl.ScheduleSwap(info.Group, info.Slot) {
		o.done[info.Group] = true
		o.Swaps++
	}
}

var (
	_ hybrid.Policy = (*Profiler)(nil)
	_ hybrid.Policy = (*Oracle)(nil)
)
