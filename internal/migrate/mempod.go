package migrate

import (
	"profess/internal/hybrid"
	"profess/internal/mem"
)

// MemPodConfig parameterises the MemPod policy with the §4.1 settings the
// paper found best in its system.
type MemPodConfig struct {
	// IntervalCycles is the MEA interval (50 us = 160K cycles at 3.2 GHz).
	IntervalCycles int64
	// Counters is the MEA table size (128).
	Counters int
	// MaxMigrations bounds migrations per interval (64).
	MaxMigrations int
}

// DefaultMemPodConfig returns the paper's best-found configuration.
func DefaultMemPodConfig() MemPodConfig {
	return MemPodConfig{
		IntervalCycles: int64(50_000 * mem.CyclesPerNs), // 50 us
		Counters:       128,
		MaxMigrations:  64,
	}
}

// MemPod implements Prodromou et al.'s MemPod (HPCA 2017) migration
// algorithm as summarised in Table 2: the Majority Element Algorithm
// (Karp et al.) tracks the most frequently accessed M2 blocks with a
// bounded counter table; at the end of every interval the tracked blocks
// are migrated into M1 (up to the per-interval bound) and the table is
// cleared. Writes count as one access (§4.1). MemPod's clustered ("pod")
// fully-associative remapping is an organization feature; per §2.3 the
// algorithm runs here on the same PoM organization as all other policies.
// Per §4.1 the paper evaluates MemPod optimistically by ignoring its ST
// update overhead upon swaps; the swap itself is modelled identically for
// every policy.
type MemPod struct {
	hybrid.BasePolicy
	cfg MemPodConfig

	mea          map[int64]uint32 // MEA counters keyed by (group, slot)
	intervalEnds int64
	// Migrations counts migrations performed at interval boundaries.
	Migrations int64
}

// NewMemPod builds the policy.
func NewMemPod(cfg MemPodConfig) *MemPod {
	if cfg.IntervalCycles <= 0 {
		cfg.IntervalCycles = DefaultMemPodConfig().IntervalCycles
	}
	if cfg.Counters <= 0 {
		cfg.Counters = 128
	}
	if cfg.MaxMigrations <= 0 {
		cfg.MaxMigrations = 64
	}
	return &MemPod{cfg: cfg, mea: make(map[int64]uint32)}
}

// Name implements hybrid.Policy.
func (*MemPod) Name() string { return "mempod" }

// OnAccess implements hybrid.Policy.
func (m *MemPod) OnAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	if m.intervalEnds == 0 {
		m.intervalEnds = info.Now + m.cfg.IntervalCycles
	}
	if info.Now >= m.intervalEnds {
		m.endInterval(ctl)
		m.intervalEnds = info.Now + m.cfg.IntervalCycles
	}
	if info.Loc == 0 {
		return // MEA tracks M2 accesses only
	}
	k := key(info.Group, info.Slot)
	if c, ok := m.mea[k]; ok {
		m.mea[k] = c + 1
		return
	}
	if len(m.mea) < m.cfg.Counters {
		m.mea[k] = 1
		return
	}
	// MEA: no free counter — decrement all, evicting zeros.
	for kk, c := range m.mea {
		if c <= 1 {
			delete(m.mea, kk)
		} else {
			m.mea[kk] = c - 1
		}
	}
}

// endInterval migrates the MEA-tracked blocks (hottest first) and clears
// the table.
func (m *MemPod) endInterval(ctl hybrid.PolicyContext) {
	type entry struct {
		k int64
		c uint32
	}
	entries := make([]entry, 0, len(m.mea))
	for k, c := range m.mea {
		entries = append(entries, entry{k, c})
	}
	// Deterministic hottest-first order (count desc, key asc).
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0; j-- {
			a, b := entries[j-1], entries[j]
			if b.c > a.c || (b.c == a.c && b.k < a.k) {
				entries[j-1], entries[j] = b, a
			} else {
				break
			}
		}
	}
	migrated := 0
	for _, e := range entries {
		if migrated >= m.cfg.MaxMigrations {
			break
		}
		group := e.k / hybrid.MaxSlots
		slot := int(e.k % hybrid.MaxSlots)
		if ctl.ScheduleSwap(group, slot) {
			migrated++
			m.Migrations++
		}
	}
	m.mea = make(map[int64]uint32)
}

var _ hybrid.Policy = (*MemPod)(nil)
