// Package migrate implements the published migration algorithms that the
// paper compares against (Table 2): PoM — the paper's baseline and the
// state of the art it beats — plus CAMEO, SILC-FM and MemPod. All plug
// into the hybrid.Policy interface, so any of them can drive the same
// flat migrating organization, exactly as §2.3 argues migration algorithms
// and address-mapping organizations are orthogonal.
package migrate

import (
	"fmt"
	"sort"

	"profess/internal/hybrid"
)

// PoMThresholds are PoM's candidate global thresholds (Table 2).
var PoMThresholds = []uint32{1, 6, 18, 48}

// PoMConfig parameterises the PoM algorithm.
type PoMConfig struct {
	// K is the cost ratio: a swap costs as much as K M2-M1 read-latency
	// gaps (§4.1 derives K = ceil(796.25/123.75) = 7 and, like the PoM
	// authors, uses the slightly larger 8).
	K uint32
	// EpochAccesses is the epoch length in demand accesses after which the
	// global threshold is re-chosen from PoMThresholds (or swaps are
	// prohibited when no threshold shows positive estimated benefit).
	EpochAccesses int64
	// WriteWeight counts each write as this many accesses (§4.1: 8 in this
	// system, because of M2's asymmetric write latency).
	WriteWeight int
}

// DefaultPoMConfig returns the configuration used throughout the paper.
func DefaultPoMConfig() PoMConfig {
	return PoMConfig{K: 8, EpochAccesses: 100_000, WriteWeight: 8}
}

// PoM implements Sim et al.'s "Transparent Hardware Management of Stacked
// DRAM as Part of Memory" (MICRO 2014) migration algorithm as the paper
// configures it: per-group competing counters with a single global
// adaptive threshold.
//
// Per swap group, a counter tracks the currently "winning" M2 candidate
// (majority-element style): an access to the candidate increments it, an
// access to a different M2 block decrements it (replacing the candidate on
// zero), and an access to the group's M1 block decays it. When the counter
// reaches the global threshold the candidate is promoted.
//
// The global threshold adapts per epoch: the algorithm tallies per-block
// M2 access counts during the epoch and estimates, for each candidate
// threshold T, the benefit
//
//	benefit(T) = sum over blocks with count c >= T of (c-T) - K * swaps(T)
//
// measured in read-latency-gap units; the best-positive threshold wins and
// swaps are prohibited for an epoch when none is positive (Table 2).
type PoM struct {
	hybrid.BasePolicy
	cfg PoMConfig

	threshold  uint32
	prohibited bool

	// groups holds the per-swap-group competing counter, indexed by group
	// number and grown on demand (the policy does not know the layout's
	// group count up front). Dense storage keeps the per-access path free
	// of map probes.
	groups []pomGroup
	// epoch statistics: M2 accesses per (group, slot), dense at
	// group*MaxSlots+slot with the touched keys listed aside so an epoch
	// roll-over only visits counters that are actually non-zero.
	epochCounts   []uint32
	touched       []int64
	epochAccesses int64
	histBuf       []uint32 // reusable endEpoch scratch

	// ThresholdHistory records the threshold chosen at each epoch
	// boundary (0 = prohibited), for tests and reporting.
	ThresholdHistory []uint32
}

// pomGroup is one group's competing counter. The candidate slot is stored
// +1 so the zero value means "no candidate" and freshly-grown slice tails
// need no initialisation.
type pomGroup struct {
	candP1  int8 // current M2 candidate slot + 1, 0 none
	counter uint32
}

// NewPoM builds the policy.
func NewPoM(cfg PoMConfig) *PoM {
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.EpochAccesses <= 0 {
		cfg.EpochAccesses = 100_000
	}
	if cfg.WriteWeight <= 0 {
		cfg.WriteWeight = 1
	}
	return &PoM{
		cfg:       cfg,
		threshold: cfg.K, // start near the cost-balanced point
	}
}

// group returns the competing counter of g, growing the dense table as
// larger group numbers appear.
func (p *PoM) group(g int64) *pomGroup {
	if n := int64(len(p.groups)); n <= g {
		grown := make([]pomGroup, growSize(g, n))
		copy(grown, p.groups)
		p.groups = grown
	}
	return &p.groups[g]
}

// count returns the epoch counter cell for key k, growing on demand.
func (p *PoM) count(k int64) *uint32 {
	if n := int64(len(p.epochCounts)); n <= k {
		grown := make([]uint32, growSize(k, n))
		copy(grown, p.epochCounts)
		p.epochCounts = grown
	}
	return &p.epochCounts[k]
}

// growSize doubles from the current size until index fits (min 1024).
func growSize(index, cur int64) int64 {
	n := cur
	if n < 1024 {
		n = 1024
	}
	for n <= index {
		n *= 2
	}
	return n
}

// Name implements hybrid.Policy.
func (p *PoM) Name() string { return "pom" }

// WriteWeight implements hybrid.Policy.
func (p *PoM) WriteWeight() int { return p.cfg.WriteWeight }

// Threshold returns the currently active global threshold (0 when swaps
// are prohibited).
func (p *PoM) Threshold() uint32 {
	if p.prohibited {
		return 0
	}
	return p.threshold
}

func key(group int64, slot int) int64 { return group*hybrid.MaxSlots + int64(slot) }

// OnAccess implements hybrid.Policy.
func (p *PoM) OnAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	weight := uint32(1)
	if info.Write {
		weight = uint32(p.cfg.WriteWeight)
	}
	p.epochAccesses += int64(weight)

	g := p.group(info.Group)
	if info.Loc == 0 {
		// Access to the M1 resident decays the challenger.
		if g.counter > 0 {
			g.counter--
		}
	} else {
		slotP1 := int8(info.Slot) + 1
		cell := p.count(key(info.Group, info.Slot))
		if *cell == 0 {
			p.touched = append(p.touched, key(info.Group, info.Slot))
		}
		*cell += weight
		if g.candP1 == slotP1 {
			g.counter += weight
		} else if g.counter <= weight {
			g.candP1 = slotP1
			g.counter = weight
		} else {
			g.counter -= weight
		}
		if !p.prohibited && g.candP1 == slotP1 && g.counter >= p.threshold {
			if ctl.ScheduleSwap(info.Group, info.Slot) {
				g.candP1 = 0
				g.counter = 0
			}
		}
	}
	if p.epochAccesses >= p.cfg.EpochAccesses {
		p.endEpoch()
	}
}

// endEpoch re-chooses the global threshold from the epoch's M2 access
// histogram.
func (p *PoM) endEpoch() {
	counts := p.histBuf[:0]
	for _, k := range p.touched {
		counts = append(counts, p.epochCounts[k])
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })

	bestT := uint32(0)
	bestBenefit := int64(0)
	for _, t := range PoMThresholds {
		var benefit int64
		// Blocks with c >= t would have been promoted after t accesses,
		// saving (c - t) M2 accesses at one latency-gap each, costing K
		// gap-units per swap.
		i := sort.Search(len(counts), func(i int) bool { return counts[i] >= t })
		for _, c := range counts[i:] {
			benefit += int64(c - t)
		}
		benefit -= int64(len(counts)-i) * int64(p.cfg.K)
		if benefit > bestBenefit {
			bestBenefit = benefit
			bestT = t
		}
	}
	if bestT == 0 {
		p.prohibited = true
	} else {
		p.prohibited = false
		p.threshold = bestT
	}
	p.ThresholdHistory = append(p.ThresholdHistory, p.Threshold())
	for _, k := range p.touched {
		p.epochCounts[k] = 0
	}
	p.touched = p.touched[:0]
	p.histBuf = counts[:0] // bank the sorted scratch for the next epoch
	p.epochAccesses = 0
}

// String describes the policy configuration.
func (p *PoM) String() string {
	return fmt.Sprintf("PoM{K=%d epoch=%d writeWeight=%d}", p.cfg.K, p.cfg.EpochAccesses, p.cfg.WriteWeight)
}

var _ hybrid.Policy = (*PoM)(nil)
