package migrate

import "profess/internal/hybrid"

// CAMEO implements Chou et al.'s CAMEO migration rule (MICRO 2014) as
// summarised in Table 2: a global threshold of one access — every access
// to an M2 block immediately promotes it. CAMEO was designed for 64-B
// blocks and a 1:3 capacity ratio; running it on the paper's PoM-style
// organization demonstrates exactly the §2.5 pathology: two blocks
// accessed alternately swap on every access.
type CAMEO struct {
	hybrid.BasePolicy
}

// NewCAMEO builds the policy.
func NewCAMEO() *CAMEO { return &CAMEO{} }

// Name implements hybrid.Policy.
func (*CAMEO) Name() string { return "cameo" }

// OnAccess implements hybrid.Policy: promote on any access to M2.
func (*CAMEO) OnAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	if info.Loc != 0 {
		ctl.ScheduleSwap(info.Group, info.Slot)
	}
}

var _ hybrid.Policy = (*CAMEO)(nil)
