package migrate

import (
	"testing"
)

func TestProfilerCountsWeighted(t *testing.T) {
	p := NewProfiler(8)
	ctx := newFakeCtx()
	p.OnAccess(access(3, 4, 4, false), ctx)
	p.OnAccess(access(3, 4, 4, true), ctx)
	if got := p.Counts[key(3, 4)]; got != 9 {
		t.Errorf("count = %d, want 1 + 8", got)
	}
	if len(ctx.swaps) != 0 {
		t.Error("profiler must never migrate")
	}
	if p.WriteWeight() != 8 || p.Name() != "profiler" {
		t.Error("metadata")
	}
}

func TestOracleDerivation(t *testing.T) {
	counts := map[int64]uint64{
		// Group 0: slot 4 dominates slot 0 -> placement.
		key(0, 0): 10, key(0, 4): 100,
		// Group 1: slot 0 already best -> no placement.
		key(1, 0): 50, key(1, 3): 20,
		// Group 2: slot 2 barely above slot 0 -> below min benefit.
		key(2, 0): 10, key(2, 2): 12,
	}
	o := NewOracle(counts, 8)
	if o.Placements() != 1 {
		t.Fatalf("placements = %d, want 1", o.Placements())
	}
	ctx := newFakeCtx()
	// Touching the wrong slot does nothing.
	o.OnAccess(access(0, 3, 3, false), ctx)
	if len(ctx.swaps) != 0 {
		t.Error("oracle swapped a non-chosen block")
	}
	// Touching the chosen block performs the one placement.
	o.OnAccess(access(0, 4, 4, false), ctx)
	if len(ctx.swaps) != 1 || ctx.swaps[0] != key(0, 4) {
		t.Fatalf("swaps = %v", ctx.swaps)
	}
	// Never again for this group.
	o.OnAccess(access(0, 4, 4, false), ctx)
	if len(ctx.swaps) != 1 || o.Swaps != 1 {
		t.Error("oracle must place at most once per group")
	}
}

func TestOracleIgnoresM1Accesses(t *testing.T) {
	o := NewOracle(map[int64]uint64{key(0, 4): 100}, 0)
	ctx := newFakeCtx()
	o.OnAccess(access(0, 4, 0, false), ctx) // block already in M1
	if len(ctx.swaps) != 0 {
		t.Error("M1 access must not trigger placement")
	}
}

func TestOracleEmptyProfile(t *testing.T) {
	o := NewOracle(nil, 8)
	if o.Placements() != 0 {
		t.Error("empty profile should plan nothing")
	}
}
