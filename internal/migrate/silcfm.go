package migrate

import "profess/internal/hybrid"

// SILCFMConfig parameterises the SILC-FM-style policy.
type SILCFMConfig struct {
	// LockThreshold locks a block into M1 once its aging access counter
	// exceeds this value (Table 2: 50).
	LockThreshold uint32
	// AgeAccesses halves every aging counter after this many demand
	// accesses, implementing the "aging" of the lock counters.
	AgeAccesses int64
}

// DefaultSILCFMConfig returns Table 2's parameters.
func DefaultSILCFMConfig() SILCFMConfig {
	return SILCFMConfig{LockThreshold: 50, AgeAccesses: 200_000}
}

// SILCFM implements the migration rule of Ryoo et al.'s SILC-FM (HPCA
// 2017) as summarised in Table 2: promote after a single access (global
// threshold of 1), but protect hot M1 residents with an aging access
// counter — a block whose counter exceeds the lock threshold is locked in
// M1 and cannot be demoted. SILC-FM's set-associative mapping and
// sub-block interleaving are organization features orthogonal to the
// migration rule (§2.3) and are not modelled; the rule runs on the same
// PoM organization as every other policy so the comparison isolates
// decision quality.
type SILCFM struct {
	hybrid.BasePolicy
	cfg SILCFMConfig

	// aging counters for current M1 residents, keyed by group
	m1Counts map[int64]uint32
	accesses int64
}

// NewSILCFM builds the policy.
func NewSILCFM(cfg SILCFMConfig) *SILCFM {
	if cfg.LockThreshold == 0 {
		cfg.LockThreshold = 50
	}
	if cfg.AgeAccesses <= 0 {
		cfg.AgeAccesses = 200_000
	}
	return &SILCFM{cfg: cfg, m1Counts: make(map[int64]uint32)}
}

// Name implements hybrid.Policy.
func (*SILCFM) Name() string { return "silc-fm" }

// OnAccess implements hybrid.Policy.
func (s *SILCFM) OnAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	s.accesses++
	if s.accesses%s.cfg.AgeAccesses == 0 {
		for g, c := range s.m1Counts {
			if c >>= 1; c == 0 {
				delete(s.m1Counts, g)
			} else {
				s.m1Counts[g] = c
			}
		}
	}
	if info.Loc == 0 {
		s.m1Counts[info.Group]++
		return
	}
	if s.m1Counts[info.Group] > s.cfg.LockThreshold {
		return // M1 resident is locked
	}
	if ctl.ScheduleSwap(info.Group, info.Slot) {
		// The newcomer starts with a fresh aging counter.
		s.m1Counts[info.Group] = 1
	}
}

var _ hybrid.Policy = (*SILCFM)(nil)
