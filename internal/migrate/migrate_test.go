package migrate

import (
	"testing"

	"profess/internal/hybrid"
)

// fakeCtx is a scriptable PolicyContext.
type fakeCtx struct {
	m1slot map[int64]int
	owners map[int64]int
	swaps  []int64 // key(group, slot) per accepted swap
	accept bool
}

func newFakeCtx() *fakeCtx {
	return &fakeCtx{m1slot: map[int64]int{}, owners: map[int64]int{}, accept: true}
}

func (f *fakeCtx) M1Slot(group int64) int { return f.m1slot[group] }
func (f *fakeCtx) Owner(group int64, slot int) int {
	if o, ok := f.owners[key(group, slot)]; ok {
		return o
	}
	return 0
}
func (f *fakeCtx) ScheduleSwap(group int64, slot int) bool {
	if !f.accept {
		return false
	}
	f.swaps = append(f.swaps, key(group, slot))
	// Mimic the controller: promoted slot becomes the M1 resident.
	f.m1slot[group] = slot
	return true
}
func (f *fakeCtx) SwapLatency() int64    { return 2548 }
func (f *fakeCtx) ReadLatencyGap() int64 { return 396 }

func access(group int64, slot, loc int, write bool) hybrid.AccessInfo {
	return hybrid.AccessInfo{
		Now: 0, Core: 0, Group: group, Slot: slot, Loc: loc, Write: write,
		Entry: &hybrid.STCEntry{},
	}
}

func TestCAMEOPromotesOnFirstM2Access(t *testing.T) {
	p := NewCAMEO()
	ctx := newFakeCtx()
	p.OnAccess(access(3, 5, 5, false), ctx)
	if len(ctx.swaps) != 1 || ctx.swaps[0] != key(3, 5) {
		t.Errorf("swaps = %v", ctx.swaps)
	}
	// M1 accesses never swap.
	p.OnAccess(access(3, 5, 0, false), ctx)
	if len(ctx.swaps) != 1 {
		t.Error("M1 access must not trigger a swap")
	}
	if p.Name() != "cameo" || p.WriteWeight() != 1 {
		t.Error("metadata wrong")
	}
}

func TestPoMCompetingCounterPromotion(t *testing.T) {
	cfg := DefaultPoMConfig()
	cfg.EpochAccesses = 1 << 60 // no epoch boundary in this test
	p := NewPoM(cfg)
	p.threshold = 6
	ctx := newFakeCtx()
	// Five accesses to the same M2 block: no promotion yet (threshold 6).
	for i := 0; i < 5; i++ {
		p.OnAccess(access(1, 4, 4, false), ctx)
	}
	if len(ctx.swaps) != 0 {
		t.Fatalf("premature promotion after 5 accesses (threshold 6)")
	}
	p.OnAccess(access(1, 4, 4, false), ctx)
	if len(ctx.swaps) != 1 {
		t.Fatalf("no promotion at threshold: %v", ctx.swaps)
	}
}

func TestPoMCandidateCompetition(t *testing.T) {
	cfg := DefaultPoMConfig()
	cfg.EpochAccesses = 1 << 60
	p := NewPoM(cfg)
	p.threshold = 48
	ctx := newFakeCtx()
	// Alternating blocks keep displacing each other: counter never grows.
	for i := 0; i < 100; i++ {
		p.OnAccess(access(1, 3, 3, false), ctx)
		p.OnAccess(access(1, 4, 4, false), ctx)
	}
	if len(ctx.swaps) != 0 {
		t.Errorf("alternating pattern should not promote (MEA-style): %v", ctx.swaps)
	}
}

func TestPoMM1AccessDecays(t *testing.T) {
	cfg := DefaultPoMConfig()
	cfg.EpochAccesses = 1 << 60
	p := NewPoM(cfg)
	p.threshold = 6
	ctx := newFakeCtx()
	// Interleave M1 hits with M2 accesses: decay postpones promotion.
	for i := 0; i < 5; i++ {
		p.OnAccess(access(1, 4, 4, false), ctx)
		p.OnAccess(access(1, 0, 0, false), ctx) // M1 resident access
	}
	if len(ctx.swaps) != 0 {
		t.Error("decayed counter should not have promoted")
	}
}

func TestPoMWriteWeight(t *testing.T) {
	cfg := DefaultPoMConfig()
	cfg.EpochAccesses = 1 << 60
	p := NewPoM(cfg)
	p.threshold = 6
	ctx := newFakeCtx()
	// One write counts as 8 accesses: immediate promotion at threshold 6.
	p.OnAccess(access(1, 4, 4, true), ctx)
	if len(ctx.swaps) != 1 {
		t.Error("write weighted x8 should promote at threshold 6")
	}
	if p.WriteWeight() != 8 {
		t.Errorf("WriteWeight = %d", p.WriteWeight())
	}
}

func TestPoMEpochChoosesLowThresholdForHotBlocks(t *testing.T) {
	cfg := DefaultPoMConfig()
	cfg.EpochAccesses = 1000
	p := NewPoM(cfg)
	ctx := newFakeCtx()
	ctx.accept = false // observe threshold choice without remapping
	// Hot M2 blocks with ~50 accesses each: benefit is maximised by T=1.
	for i := 0; i < 1000; i++ {
		p.OnAccess(access(int64(i%20), 4, 4, false), ctx)
	}
	if got := p.Threshold(); got != 1 {
		t.Errorf("threshold = %d, want 1 for hot blocks", got)
	}
	if len(p.ThresholdHistory) == 0 {
		t.Error("epoch should be recorded")
	}
}

func TestPoMEpochProhibitsWhenColdBlocks(t *testing.T) {
	cfg := DefaultPoMConfig()
	cfg.EpochAccesses = 1000
	p := NewPoM(cfg)
	ctx := newFakeCtx()
	ctx.accept = false
	// Every M2 block touched at most twice: no threshold is profitable
	// with K=8, so swaps must be prohibited.
	for i := 0; i < 1000; i++ {
		p.OnAccess(access(int64(i/2), 4, 4, false), ctx)
	}
	if got := p.Threshold(); got != 0 {
		t.Errorf("threshold = %d, want 0 (prohibited)", got)
	}
	// While prohibited, even hot blocks must not swap.
	ctx.accept = true
	for i := 0; i < 100; i++ {
		p.OnAccess(access(1, 4, 4, false), ctx)
	}
	if len(ctx.swaps) != 0 {
		t.Error("prohibited epoch still swapped")
	}
}

func TestPoMString(t *testing.T) {
	if NewPoM(DefaultPoMConfig()).String() == "" {
		t.Error("empty String")
	}
}

func TestSILCFMPromotesAndLocks(t *testing.T) {
	cfg := DefaultSILCFMConfig()
	cfg.AgeAccesses = 1 << 60
	p := NewSILCFM(cfg)
	ctx := newFakeCtx()
	// First M2 access promotes (threshold 1).
	p.OnAccess(access(1, 4, 4, false), ctx)
	if len(ctx.swaps) != 1 {
		t.Fatal("SILC-FM should promote on first access")
	}
	// Make the M1 resident hot beyond the lock threshold.
	for i := 0; i < 60; i++ {
		p.OnAccess(access(1, 4, 0, false), ctx)
	}
	// A challenger cannot displace the locked block.
	p.OnAccess(access(1, 5, 5, false), ctx)
	if len(ctx.swaps) != 1 {
		t.Error("locked M1 block was displaced")
	}
}

func TestSILCFMAgingUnlocks(t *testing.T) {
	cfg := DefaultSILCFMConfig()
	cfg.AgeAccesses = 100
	p := NewSILCFM(cfg)
	ctx := newFakeCtx()
	p.OnAccess(access(1, 4, 4, false), ctx)
	for i := 0; i < 60; i++ {
		p.OnAccess(access(1, 4, 0, false), ctx)
	}
	// Let aging halve the counter repeatedly via unrelated accesses.
	for i := 0; i < 400; i++ {
		p.OnAccess(access(2, 3, 0, false), ctx)
	}
	p.OnAccess(access(1, 5, 5, false), ctx)
	if len(ctx.swaps) != 2 {
		t.Errorf("aged-out lock should allow displacement: %v", ctx.swaps)
	}
}

func TestMemPodMEATracksMajority(t *testing.T) {
	cfg := DefaultMemPodConfig()
	cfg.Counters = 4
	p := NewMemPod(cfg)
	ctx := newFakeCtx()
	// Fill the MEA table.
	for g := int64(0); g < 4; g++ {
		p.OnAccess(access(g, 4, 4, false), ctx)
	}
	if len(p.mea) != 4 {
		t.Fatalf("MEA size = %d", len(p.mea))
	}
	// A fifth block decrements all; singletons vanish.
	p.OnAccess(access(9, 4, 4, false), ctx)
	if len(p.mea) != 0 {
		t.Errorf("MEA after decrement = %d entries", len(p.mea))
	}
	// Majority element survives repeated challenges.
	for i := 0; i < 12; i++ {
		p.OnAccess(access(1, 4, 4, false), ctx)
	}
	for g := int64(20); g < 24; g++ {
		p.OnAccess(access(g, 4, 4, false), ctx)
	}
	if _, ok := p.mea[key(1, 4)]; !ok {
		t.Error("majority element evicted from MEA")
	}
}

func TestMemPodIntervalMigrations(t *testing.T) {
	cfg := DefaultMemPodConfig()
	cfg.IntervalCycles = 1000
	cfg.MaxMigrations = 2
	p := NewMemPod(cfg)
	ctx := newFakeCtx()
	// Track three blocks with distinct heats inside the first interval.
	in := func(now int64, g int64, n int) {
		for i := 0; i < n; i++ {
			info := access(g, 4, 4, false)
			info.Now = now
			p.OnAccess(info, ctx)
		}
	}
	in(1, 1, 5)
	in(2, 2, 3)
	in(3, 3, 1)
	// Cross the interval boundary: top-2 hottest migrate.
	info := access(7, 4, 4, false)
	info.Now = 5000
	p.OnAccess(info, ctx)
	if len(ctx.swaps) != 2 {
		t.Fatalf("migrations = %d, want cap 2", len(ctx.swaps))
	}
	if ctx.swaps[0] != key(1, 4) || ctx.swaps[1] != key(2, 4) {
		t.Errorf("hottest-first order violated: %v", ctx.swaps)
	}
	if p.Migrations != 2 {
		t.Errorf("Migrations = %d", p.Migrations)
	}
}

func TestMemPodIgnoresM1Accesses(t *testing.T) {
	p := NewMemPod(DefaultMemPodConfig())
	ctx := newFakeCtx()
	for i := 0; i < 10; i++ {
		p.OnAccess(access(1, 0, 0, false), ctx)
	}
	if len(p.mea) != 0 {
		t.Error("M1 accesses must not enter the MEA table")
	}
	if p.WriteWeight() != 1 {
		t.Error("MemPod counts writes as one access")
	}
}

func TestNoMigrationNeverSwaps(t *testing.T) {
	p := hybrid.NoMigration{}
	ctx := newFakeCtx()
	for i := 0; i < 100; i++ {
		p.OnAccess(access(int64(i), 4, 4, i%2 == 0), ctx)
	}
	if len(ctx.swaps) != 0 {
		t.Error("static policy swapped")
	}
}
