package event

import (
	"testing"
)

// countingHandler is a minimal pre-bound component for alloc tests.
type countingHandler struct {
	n   int64
	sum int64
}

func (h *countingHandler) HandleEvent(now int64, i int64, p any) {
	h.n++
	h.sum += i
}

// TestZeroAllocSteadyState pins the engine's core guarantee: once the wheel
// and bucket arrays are warm, scheduling and dispatching a typed event
// allocates nothing. A regression here silently reintroduces per-event GC
// pressure across every simulation, so it fails the build.
func TestZeroAllocSteadyState(t *testing.T) {
	q := &Queue{}
	h := &countingHandler{}
	// Warm up: allocate the wheel, grow the buckets, exercise the overflow
	// heap so its backing array has capacity.
	for i := 0; i < 4*wheelSize; i++ {
		q.Schedule(q.Now()+int64(i%257), h, int64(i), nil)
		q.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		q.Schedule(q.Now()+64, h, 1, nil)
		q.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state typed event: %v allocs per schedule+dispatch, want 0", allocs)
	}
}

// TestZeroAllocOverflow checks the overflow heap path too: beyond-horizon
// events (telemetry epochs, refresh windows) migrate through the heap
// without boxing once its backing array is warm.
func TestZeroAllocOverflow(t *testing.T) {
	q := &Queue{}
	h := &countingHandler{}
	for i := 0; i < 1024; i++ {
		q.Schedule(q.Now()+2*wheelSize, h, int64(i), nil)
		q.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		q.Schedule(q.Now()+2*wheelSize, h, 1, nil)
		q.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state overflow event: %v allocs per schedule+dispatch, want 0", allocs)
	}
}

// TestSchedulePastClamps documents the monotonic-clamp contract for the
// typed path, mirroring At: a typed event armed in the past fires at Now,
// after events already pending for Now.
func TestSchedulePastClamps(t *testing.T) {
	q := &Queue{}
	var order []int64
	rec := HandlerFunc(func(now int64, i int64, _ any) { order = append(order, i) })
	q.At(10, func(now int64) {
		q.Schedule(3, rec, 1, nil) // past: clamps to cycle 10
		q.Schedule(10, rec, 2, nil)
	})
	q.Schedule(10, rec, 0, nil)
	q.Drain()
	if q.Now() != 10 {
		t.Fatalf("clock = %d, want 10 (past scheduling must not rewind)", q.Now())
	}
	// The clamped event keeps its insertion order: it was armed before the
	// second cycle-10 event, so it fires between the two.
	want := []int64{0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// BenchmarkQueue_SteadyState measures one typed schedule+dispatch through
// the wheel — the cost the whole simulator pays per event.
func BenchmarkQueue_SteadyState(b *testing.B) {
	q := &Queue{}
	h := &countingHandler{}
	for i := 0; i < wheelSize; i++ { // warm the buckets
		q.Schedule(q.Now()+int64(i%97), h, 0, nil)
		q.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Schedule(q.Now()+int64(i%97)+1, h, int64(i), nil)
		q.Step()
	}
}

// BenchmarkQueue_Closure measures the compatibility closure path (At) for
// comparison; the closure allocation is charged to the caller here.
func BenchmarkQueue_Closure(b *testing.B) {
	q := &Queue{}
	var n int64
	fn := func(now int64) { n++ }
	for i := 0; i < wheelSize; i++ {
		q.At(q.Now()+int64(i%97), fn)
		q.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.At(q.Now()+int64(i%97)+1, fn)
		q.Step()
	}
}

// TestZeroAllocMigrationDrain guards the batched overflow→wheel migration
// against the alloc churn it replaced: when a batch of far-future events
// (refresh windows, telemetry epochs of a large config) comes due on the
// same cycle, the drain must reuse the staging slice and the destination
// bucket's backing array instead of growing the bucket append by append.
func TestZeroAllocMigrationDrain(t *testing.T) {
	q := &Queue{}
	h := &countingHandler{}
	const batch = 512
	drain := func() {
		// Align the batch to a wheel-size boundary so every iteration
		// lands on the same destination bucket and its warmed capacity.
		base := (q.Now()/wheelSize + 2) * wheelSize
		for i := 0; i < batch; i++ {
			q.Schedule(base, h, int64(i), nil)
		}
		for i := 0; i < batch; i++ {
			if !q.Step() {
				t.Fatal("queue drained early")
			}
		}
	}
	drain() // warm: grow the heap, the staging slice, and the bucket
	allocs := testing.AllocsPerRun(100, drain)
	if allocs != 0 {
		t.Fatalf("migration drain of %d far-future events: %v allocs per drain, want 0", batch, allocs)
	}
}
