package event

import (
	"fmt"
	"testing"
)

const testQuantum = 64

// shardActor is a self-perpetuating deterministic workload bound to one
// shard: every dispatch folds (now, i, id) into a running hash, advances a
// per-shard xorshift stream, reschedules itself locally, and occasionally
// sends a cross-shard message one quantum ahead (the minimum conservative
// lookahead).
type shardActor struct {
	g      *ShardGroup
	q      *Queue
	peers  []*shardActor
	id     int
	rng    uint64
	hash   uint64
	count  int64
	sendEr error
}

// crossMark tags cross-shard messages so the receiving actor can tell
// them from its own self-chain events.
var crossMark = new(int)

func (a *shardActor) HandleEvent(now int64, i int64, p any) {
	a.count++
	a.hash = a.hash*1315423911 + uint64(now)*31 + uint64(i)*7 + uint64(a.id) + 1
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	if p == crossMark {
		// A delivered cross-shard message perturbs this actor's hash and
		// rng stream — remote traffic observably changes local execution —
		// but must not spawn another self-perpetuating chain, or the event
		// population grows geometrically and the run never gets cheap.
		return
	}
	a.q.Schedule(now+1+int64(a.rng%13), a, i+1, nil)
	if a.rng%5 == 0 {
		dst := int(a.rng>>8) % len(a.peers)
		err := a.g.Send(a.id, dst, now+testQuantum, a.peers[dst], now<<8|int64(a.id), crossMark)
		if err != nil && a.sendEr == nil {
			a.sendEr = err
		}
	}
}

// buildActorGroup wires n shards with one actor each, seeded identically
// for every invocation, and returns the group plus its members.
func buildActorGroup(t *testing.T, n int) (*ShardGroup, []*Queue, []*shardActor) {
	t.Helper()
	queues := make([]*Queue, n)
	actors := make([]*shardActor, n)
	for k := range queues {
		queues[k] = &Queue{}
		actors[k] = &shardActor{q: queues[k], id: k, rng: uint64(k)*2654435761 + 1}
	}
	g, err := NewShardGroup(queues, testQuantum)
	if err != nil {
		t.Fatal(err)
	}
	for k := range actors {
		actors[k].g = g
		actors[k].peers = actors
		queues[k].Schedule(0, actors[k], 0, nil)
	}
	return g, queues, actors
}

// runActorEpochs drives the group for a fixed number of epochs and
// returns a per-shard signature covering every observable the simulator
// relies on being scheduling-independent.
func runActorEpochs(t *testing.T, workers, shards, epochs int) string {
	t.Helper()
	g, queues, actors := buildActorGroup(t, shards)
	step := func(k int, horizon int64) error {
		queues[k].RunBefore(horizon)
		return nil
	}
	barrier := func(horizon int64) (bool, error) {
		return horizon >= int64(epochs)*testQuantum, nil
	}
	if err := g.Run(workers, step, barrier); err != nil {
		t.Fatal(err)
	}
	sig := ""
	for k, a := range actors {
		if a.sendEr != nil {
			t.Fatalf("shard %d send: %v", k, a.sendEr)
		}
		st := g.Stats()[k]
		sig += fmt.Sprintf("shard%d hash=%x count=%d now=%d sent=%d delivered=%d\n",
			k, a.hash, a.count, queues[k].Now(), st.Sent, st.Delivered)
	}
	if g.Epochs() != int64(epochs) {
		t.Fatalf("ran %d epochs, want %d", g.Epochs(), epochs)
	}
	return sig
}

// TestShardGroupDeterministicAcrossWorkers is the engine-level determinism
// contract behind -shards: the same 8-shard workload, with cross-shard
// traffic every few events, must produce identical per-shard hashes,
// counts, clocks, and mailbox statistics whether it runs on 1, 2, 4, or 7
// workers. Run under -race this also exercises the Send/deliver
// synchronization.
func TestShardGroupDeterministicAcrossWorkers(t *testing.T) {
	const shards, epochs = 8, 30
	want := runActorEpochs(t, 1, shards, epochs)
	for _, workers := range []int{2, 4, 7, 16} {
		got := runActorEpochs(t, workers, shards, epochs)
		if got != want {
			t.Errorf("workers=%d diverged from single-threaded run:\n got:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestShardGroupCanonicalMailboxOrder pins the drain order: messages for
// the same cycle arrive in (source shard, source sequence) order no matter
// which worker ran the sender first.
func TestShardGroupCanonicalMailboxOrder(t *testing.T) {
	const n = 4
	queues := make([]*Queue, n)
	for k := range queues {
		queues[k] = &Queue{}
	}
	g, err := NewShardGroup(queues, testQuantum)
	if err != nil {
		t.Fatal(err)
	}
	var order []int64
	sink := HandlerFunc(func(now int64, i int64, p any) { order = append(order, i) })
	// Shards 0..2 each send two same-cycle messages to shard 3 during the
	// first epoch; a dummy event on each makes the step non-trivial.
	for k := 0; k < 3; k++ {
		k := k
		queues[k].At(0, func(now int64) {
			for m := int64(0); m < 2; m++ {
				if err := g.Send(k, 3, testQuantum, sink, int64(k)*10+m, nil); err != nil {
					t.Errorf("send from %d: %v", k, err)
				}
			}
		})
	}
	step := func(k int, horizon int64) error {
		queues[k].RunBefore(horizon)
		return nil
	}
	barrier := func(horizon int64) (bool, error) {
		return horizon >= 2*testQuantum, nil
	}
	if err := g.Run(n, step, barrier); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 10, 11, 20, 21}
	if len(order) != len(want) {
		t.Fatalf("delivered %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivered %v, want canonical order %v", order, want)
		}
	}
}

// TestShardGroupLookaheadViolation: a message targeting a cycle before the
// epoch horizon would arrive in the destination's past; Send must refuse.
func TestShardGroupLookaheadViolation(t *testing.T) {
	queues := []*Queue{{}, {}}
	g, err := NewShardGroup(queues, testQuantum)
	if err != nil {
		t.Fatal(err)
	}
	sink := HandlerFunc(func(now int64, i int64, p any) {})
	var sendErr error
	queues[0].At(0, func(now int64) {
		sendErr = g.Send(0, 1, testQuantum-1, sink, 0, nil)
	})
	step := func(k int, horizon int64) error {
		queues[k].RunBefore(horizon)
		return nil
	}
	if err := g.Run(1, step, func(int64) (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	if sendErr == nil {
		t.Fatal("sub-lookahead send succeeded, want causality error")
	}
	if _, err := NewShardGroup(nil, testQuantum); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := NewShardGroup(queues, 0); err == nil {
		t.Fatal("zero quantum accepted")
	}
	if err := g.Send(0, 9, testQuantum, sink, 0, nil); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

// TestShardGroupStepError: a failing shard aborts the run with the
// lowest-indexed error regardless of worker count.
func TestShardGroupStepError(t *testing.T) {
	queues := []*Queue{{}, {}, {}}
	g, err := NewShardGroup(queues, testQuantum)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		step := func(k int, horizon int64) error {
			if k >= 1 {
				return fmt.Errorf("shard %d failed", k)
			}
			return nil
		}
		err := g.Run(workers, step, func(int64) (bool, error) { return false, nil })
		if err == nil || err.Error() != "shard 1 failed" {
			t.Fatalf("workers=%d: got %v, want deterministic lowest-shard error", workers, err)
		}
	}
}
