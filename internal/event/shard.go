// Shard engine: conservatively-synchronized parallel execution of several
// independent timing wheels.
//
// A ShardGroup owns N member queues (shards) and advances them in lockstep
// epochs of a fixed quantum. Within an epoch every shard runs its own
// events strictly below the epoch horizon — in parallel, each wheel
// touched by exactly one worker goroutine — and then all shards meet at a
// barrier. Cross-shard interactions travel as messages: a sender posts
// into the destination shard's mailbox during the epoch, and at the
// barrier each mailbox is drained single-threaded in the canonical
// (time, source shard, source sequence) order before any shard resumes.
//
// # Determinism
//
// The construction is conservative (Chandy–Misra–Bryant style): a message
// may only target a cycle at or beyond the current horizon, so no shard
// ever receives an event in its past, and the epoch quantum must not
// exceed the minimum cross-shard latency (the lookahead). Because each
// shard's intra-epoch execution depends only on its own queue, and
// mailboxes are drained in canonical order at a single-threaded barrier,
// the event sequence each shard executes is a pure function of the inputs
// — independent of the number of worker goroutines and of OS scheduling.
// -shards N is therefore purely a speed knob: byte-identical results at
// any worker count, including 1 (the single-threaded verification mode).
package event

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// StepFunc runs one shard's events strictly below the epoch horizon. It
// is called with the shard index; implementations typically wrap
// Queue.NextAt/Step to interleave bookkeeping (watchdogs, cancellation
// polls) with the drain. Returning an error aborts the run.
type StepFunc func(shard int, horizon int64) error

// BarrierFunc runs single-threaded after every shard has quiesced at the
// epoch horizon and all mailboxes have been drained. Returning stop=true
// ends the run after this epoch; an error aborts it.
type BarrierFunc func(horizon int64) (stop bool, err error)

// ShardStats describes one shard's activity over a run. BusyNS is
// wall-clock and therefore machine-dependent; everything else is a pure
// function of the simulation inputs.
type ShardStats struct {
	Delivered int64 // cross-shard messages delivered into this shard
	Sent      int64 // cross-shard messages sent by this shard
	BusyNS    int64 // wall-clock nanoseconds spent running this shard's events
}

// msg is one cross-shard message in flight: an event for the destination
// queue plus the (src, seq) stamp that fixes its canonical drain position.
type msg struct {
	at  int64
	src int
	seq int64
	h   Handler
	i   int64
	p   any
}

// shard is the group's per-member state. The queue is touched only by the
// shard's worker during the parallel phase and only by the barrier thread
// between phases; the inbox is the one concurrently-written structure.
type shard struct {
	queue   *Queue
	stats   ShardStats
	sendSeq int64

	mu    sync.Mutex
	inbox []msg
}

// ShardGroup coordinates parallel epochs over a set of member queues.
type ShardGroup struct {
	quantum int64
	horizon atomic.Int64 // exclusive bound of the epoch in flight
	shards  []*shard
	epochs  int64
}

// NewShardGroup wraps the given queues as one barrier-synchronized group.
// The quantum is the epoch length in cycles; it must be positive and must
// not exceed the minimum cross-shard message latency, or Send will reject
// messages as causality violations.
func NewShardGroup(queues []*Queue, quantum int64) (*ShardGroup, error) {
	if len(queues) == 0 {
		return nil, fmt.Errorf("event: shard group needs at least one queue")
	}
	if quantum <= 0 {
		return nil, fmt.Errorf("event: shard quantum must be positive, got %d", quantum)
	}
	g := &ShardGroup{quantum: quantum}
	for _, q := range queues {
		if q == nil {
			return nil, fmt.Errorf("event: nil queue in shard group")
		}
		g.shards = append(g.shards, &shard{queue: q})
	}
	return g, nil
}

// Send posts a typed event from shard src to shard dst's queue at cycle
// at. The message lands in dst's mailbox and is scheduled at the next
// barrier, in (at, src, seq) order. at must be at or beyond the current
// epoch horizon — the conservative lookahead condition; violating it
// would deliver an event into the destination's past, so Send rejects it.
// Safe to call concurrently from worker goroutines and from the barrier.
func (g *ShardGroup) Send(src, dst int, at int64, h Handler, i int64, p any) error {
	if dst < 0 || dst >= len(g.shards) || src < 0 || src >= len(g.shards) {
		return fmt.Errorf("event: shard send %d→%d out of range [0,%d)", src, dst, len(g.shards))
	}
	if hz := g.horizon.Load(); at < hz {
		return fmt.Errorf("event: shard %d→%d message at cycle %d violates lookahead (epoch horizon %d, quantum %d)",
			src, dst, at, hz, g.quantum)
	}
	s := g.shards[src]
	seq := atomic.AddInt64(&s.sendSeq, 1)
	atomic.AddInt64(&s.stats.Sent, 1)
	d := g.shards[dst]
	d.mu.Lock()
	d.inbox = append(d.inbox, msg{at: at, src: src, seq: seq, h: h, i: i, p: p})
	d.mu.Unlock()
	return nil
}

// deliver drains every mailbox into its queue in canonical order. Runs
// single-threaded between the parallel phase and the barrier callback.
func (g *ShardGroup) deliver() {
	for _, s := range g.shards {
		s.mu.Lock()
		box := s.inbox
		s.inbox = nil
		s.mu.Unlock()
		if len(box) == 0 {
			continue
		}
		// Canonical (at, src, seq) order: ties in time break by source
		// shard, then by that source's send order — the order a single
		// global calendar would have assigned.
		for i := 1; i < len(box); i++ {
			for j := i; j > 0 && msgLess(&box[j], &box[j-1]); j-- {
				box[j], box[j-1] = box[j-1], box[j]
			}
		}
		for _, m := range box {
			s.queue.Schedule(m.at, m.h, m.i, m.p)
			s.stats.Delivered++
		}
	}
}

func msgLess(a, b *msg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// Run drives the group: repeated epochs of parallel shard execution
// followed by mailbox delivery and the barrier callback, until the
// barrier stops the run or a step errors. workers caps the goroutines
// used for the parallel phase (clamped to [1, len(shards)]); shards are
// assigned statically (shard k → worker k mod W) so the partition — and
// with it every queue's execution — is identical for every worker count.
func (g *ShardGroup) Run(workers int, step StepFunc, barrier BarrierFunc) error {
	w := workers
	if w < 1 {
		w = 1
	}
	if w > len(g.shards) {
		w = len(g.shards)
	}
	g.horizon.Store(g.quantum)
	errs := make([]error, len(g.shards))
	for {
		g.epochs++
		horizon := g.horizon.Load()
		if w == 1 {
			for k := range g.shards {
				g.runShard(k, horizon, step, errs)
			}
		} else {
			var wg sync.WaitGroup
			for worker := 0; worker < w; worker++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					for k := worker; k < len(g.shards); k += w {
						g.runShard(k, horizon, step, errs)
					}
				}(worker)
			}
			wg.Wait()
		}
		// Surface the lowest-indexed error so the failure, like
		// everything else, does not depend on goroutine scheduling.
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		g.deliver()
		stop, err := barrier(horizon)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
		g.horizon.Store(horizon + g.quantum)
	}
}

// runShard executes one shard's slice of the epoch, timing the busy span.
func (g *ShardGroup) runShard(k int, horizon int64, step StepFunc, errs []error) {
	start := time.Now()
	errs[k] = step(k, horizon)
	g.shards[k].stats.BusyNS += time.Since(start).Nanoseconds()
}

// Horizon returns the exclusive cycle bound of the epoch in flight — the
// earliest cycle a cross-shard message may target. Safe to call from
// worker goroutines.
func (g *ShardGroup) Horizon() int64 { return g.horizon.Load() }

// Epochs returns how many epochs the group has run.
func (g *ShardGroup) Epochs() int64 { return g.epochs }

// Quantum returns the epoch length in cycles.
func (g *ShardGroup) Quantum() int64 { return g.quantum }

// Stats returns a snapshot of per-shard activity. Call after Run returns.
func (g *ShardGroup) Stats() []ShardStats {
	out := make([]ShardStats, len(g.shards))
	for k, s := range g.shards {
		out[k] = s.stats
	}
	return out
}
