// Package event implements the discrete-event engine at the heart of the
// simulator: a monotonic clock plus a binary-heap calendar of callbacks.
// Components (cores, memory channels, the migration machinery) schedule
// future work with At and the driver pumps events with Step/RunUntil.
package event

import "container/heap"

// Queue is a discrete-event calendar. The zero value is ready to use.
type Queue struct {
	now   int64
	items eventHeap
	seq   int64
}

type item struct {
	at  int64
	seq int64 // insertion order breaks ties for determinism
	fn  func(now int64)
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Now returns the current simulation time in cycles.
func (q *Queue) Now() int64 { return q.now }

// At schedules fn to run at cycle t. Scheduling in the past (t < Now) runs
// the callback at the current time instead, preserving monotonicity.
func (q *Queue) At(t int64, fn func(now int64)) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	heap.Push(&q.items, item{at: t, seq: q.seq, fn: fn})
}

// After schedules fn delay cycles from now.
func (q *Queue) After(delay int64, fn func(now int64)) {
	q.At(q.now+delay, fn)
}

// Empty reports whether no events are pending.
func (q *Queue) Empty() bool { return len(q.items) == 0 }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.items) }

// Step pops and runs the earliest event, advancing the clock. It reports
// false when the calendar is empty.
func (q *Queue) Step() bool {
	if len(q.items) == 0 {
		return false
	}
	it := heap.Pop(&q.items).(item)
	q.now = it.at
	it.fn(q.now)
	return true
}

// RunUntil pumps events until the calendar empties or the given predicate
// returns true (checked after every event). It returns the final time.
func (q *Queue) RunUntil(stop func() bool) int64 {
	for !stop() {
		if !q.Step() {
			break
		}
	}
	return q.now
}

// Drain pumps all remaining events.
func (q *Queue) Drain() int64 {
	for q.Step() {
	}
	return q.now
}

// Scheduler is the interface components use to talk to the calendar; both
// *Queue and test fakes satisfy it.
type Scheduler interface {
	Now() int64
	At(t int64, fn func(now int64))
	After(delay int64, fn func(now int64))
}

var _ Scheduler = (*Queue)(nil)
