// Package event implements the discrete-event engine at the heart of the
// simulator: a monotonic clock plus a calendar of pending work. Components
// (cores, memory channels, the migration machinery) schedule future work
// with At/Schedule and the driver pumps events with Step/RunUntil.
//
// # Engine
//
// The calendar is a hierarchical timing wheel: events within the near
// horizon (wheelSize cycles) land in per-cycle buckets addressed by
// t mod wheelSize, and events beyond it wait in a typed overflow min-heap
// that is migrated into the wheel as the clock advances. Both tiers store
// events by value in reusable backing arrays, so pushing and popping an
// event performs no heap allocation in steady state — unlike the previous
// container/heap calendar, which boxed every item through interface{}.
//
// # Dispatch
//
// Events come in two flavours:
//
//   - Closure events (At/After): fn(now) — the compatibility surface; the
//     closure itself is allocated at the caller.
//   - Typed events (Schedule): h.HandleEvent(now, i, p) on a pre-bound
//     long-lived Handler with a small tagged payload. Scheduling one
//     allocates nothing, which is what the simulator's hot paths use.
//
// # Determinism
//
// Events fire in (time, insertion order) — the seq tiebreak. Within a
// wheel bucket insertion order is append order; the overflow heap orders
// by (at, seq); and migration drains the heap in that order before any
// same-cycle event can be inserted directly, so the global dispatch order
// is exactly the order a single sorted calendar would produce.
package event

import (
	"math/bits"
	"slices"
)

const (
	// wheelBits sizes the near-future horizon: events scheduled fewer
	// than wheelSize cycles ahead go straight to a bucket. 8192 cycles
	// covers every memory-system latency in the simulator (the longest,
	// a blocked-channel swap, is ~2.5K cycles); telemetry epochs and
	// refresh windows overflow to the heap, which is fine — they are
	// rare.
	wheelBits = 13
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
	occWords  = wheelSize / 64
)

// Handler receives typed event dispatches. Implementations are long-lived
// simulation components (a memory channel, a core, a sampler) that bind
// themselves once; i and p are per-event payload (an event-kind tag, a
// token, a request pointer). Scheduling a Handler allocates nothing.
type Handler interface {
	HandleEvent(now int64, i int64, p any)
}

// HandlerFunc adapts a plain function to the Handler interface — glue for
// tests and call sites where a pre-bound component would be overkill. Note
// that a HandlerFunc value is itself a closure, so this is not the
// zero-allocation path.
type HandlerFunc func(now int64, i int64, p any)

// HandleEvent implements Handler.
func (f HandlerFunc) HandleEvent(now int64, i int64, p any) { f(now, i, p) }

// timed is one scheduled event: a closure (fn non-nil) or a typed
// dispatch (h non-nil). Stored by value in wheel buckets and the
// overflow heap.
type timed struct {
	at  int64
	seq int64 // insertion order breaks ties for determinism
	fn  func(now int64)
	h   Handler
	i   int64
	p   any
}

// bucket holds the events of one cycle within the wheel horizon. head
// indexes the next event to fire; the backing array is reset (not freed)
// when drained, so capacity is reused across wheel rotations.
type bucket struct {
	head  int
	items []timed
}

// Queue is a discrete-event calendar. The zero value is ready to use.
type Queue struct {
	now int64
	seq int64
	n   int // total pending events (wheel + overflow)

	wheel    []bucket // wheelSize buckets, allocated on first insert
	occ      []uint64 // occupancy bitmap over buckets
	wheelN   int      // events currently in the wheel
	overflow []timed  // min-heap on (at, seq) for beyond-horizon events
	scratch  []timed  // reusable staging area for overflow→wheel migration
}

// Now returns the current simulation time in cycles.
func (q *Queue) Now() int64 { return q.now }

// At schedules fn to run at cycle t. Scheduling in the past (t < Now)
// clamps to the current time: the callback runs at Now, after every
// event already scheduled for Now (insertion order still breaks the
// tie), preserving the clock's monotonicity.
func (q *Queue) At(t int64, fn func(now int64)) {
	q.add(t, timed{fn: fn})
}

// After schedules fn delay cycles from now. A non-positive delay behaves
// like At(Now()): the callback runs at the current cycle.
func (q *Queue) After(delay int64, fn func(now int64)) {
	q.add(q.now+delay, timed{fn: fn})
}

// Schedule arms a typed event: at cycle t (clamped to Now like At), h
// receives HandleEvent(now, i, p). This is the zero-allocation scheduling
// path: the event is stored by value and h is a pre-bound component.
func (q *Queue) Schedule(t int64, h Handler, i int64, p any) {
	q.add(t, timed{h: h, i: i, p: p})
}

// add stamps and files one event.
func (q *Queue) add(t int64, ev timed) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	ev.at = t
	ev.seq = q.seq
	q.n++
	if t < q.now+wheelSize {
		q.pushWheel(ev)
	} else {
		q.pushOverflow(ev)
	}
}

// pushWheel files an in-horizon event into its bucket.
func (q *Queue) pushWheel(ev timed) {
	if q.wheel == nil {
		q.wheel = make([]bucket, wheelSize)
		q.occ = make([]uint64, occWords)
	}
	idx := int(ev.at & wheelMask)
	b := &q.wheel[idx]
	b.items = append(b.items, ev)
	q.occ[idx>>6] |= 1 << uint(idx&63)
	q.wheelN++
}

// pushOverflow sift-up inserts into the typed min-heap.
func (q *Queue) pushOverflow(ev timed) {
	h := append(q.overflow, ev)
	j := len(h) - 1
	for j > 0 {
		parent := (j - 1) / 2
		if !less(&h[j], &h[parent]) {
			break
		}
		h[j], h[parent] = h[parent], h[j]
		j = parent
	}
	q.overflow = h
}

// less orders events by (time, insertion order).
func less(a, b *timed) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftDown restores the heap property below j. n is the heap length.
func siftDown(h []timed, j, n int) {
	for {
		l := 2*j + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && less(&h[r], &h[l]) {
			m = r
		}
		if !less(&h[m], &h[j]) {
			return
		}
		h[j], h[m] = h[m], h[j]
		j = m
	}
}

// migrate pulls every overflow event that the advancing clock brought
// inside the wheel horizon into its bucket, in (at, seq) order.
//
// Migration is batched: due events are partitioned out of the heap into a
// reusable staging slice, sorted once, and copied into their buckets with
// the capacity for each bucket reserved exactly, in one grow. The naive
// pop-and-push loop reallocated the destination bucket's backing array up
// to log2(k) times when k far-future events (refresh windows, telemetry
// epochs of a large config) came due on the same cycle; this path performs
// at most one allocation per destination bucket, and none once the bucket
// has seen a batch of that size before.
func (q *Queue) migrate() {
	horizon := q.now + wheelSize
	if len(q.overflow) == 0 || q.overflow[0].at >= horizon {
		return
	}
	// Partition in place: due events stage in scratch, the rest compact to
	// the front of the heap array (reads stay ahead of writes).
	keep := q.overflow[:0]
	sc := q.scratch[:0]
	for i := range q.overflow {
		if q.overflow[i].at < horizon {
			sc = append(sc, q.overflow[i])
		} else {
			keep = append(keep, q.overflow[i])
		}
	}
	// Release the tail slots the compaction vacated, then re-heapify.
	for i := len(keep); i < len(q.overflow); i++ {
		q.overflow[i] = timed{}
	}
	q.overflow = keep
	for j := len(keep)/2 - 1; j >= 0; j-- {
		siftDown(keep, j, len(keep))
	}
	slices.SortFunc(sc, func(a, b timed) int {
		if less(&a, &b) {
			return -1
		}
		return 1
	})
	// Bulk-insert runs of same-cycle events, reserving each destination
	// bucket once. Within the horizon each cycle maps to a unique bucket,
	// so a run shares its destination.
	for i := 0; i < len(sc); {
		j := i + 1
		for j < len(sc) && sc[j].at == sc[i].at {
			j++
		}
		q.reserveWheel(sc[i].at, j-i)
		for ; i < j; i++ {
			q.pushWheel(sc[i])
		}
	}
	// Zero the staging slots so retained capacity holds no payloads.
	for i := range sc {
		sc[i] = timed{}
	}
	q.scratch = sc[:0]
}

// reserveWheel ensures the bucket for cycle t can take n more events
// without growing during the subsequent appends.
func (q *Queue) reserveWheel(t int64, n int) {
	if q.wheel == nil {
		q.wheel = make([]bucket, wheelSize)
		q.occ = make([]uint64, occWords)
	}
	b := &q.wheel[int(t&wheelMask)]
	if cap(b.items)-len(b.items) >= n {
		return
	}
	grown := make([]timed, len(b.items), len(b.items)+n)
	copy(grown, b.items)
	b.items = grown
}

// nextWheelBucket scans the occupancy bitmap circularly from the current
// cycle's slot and returns the index of the first occupied bucket — the
// bucket holding the earliest pending wheel event. Callers must ensure
// wheelN > 0.
func (q *Queue) nextWheelBucket() int {
	start := int(q.now & wheelMask)
	w := start >> 6
	word := q.occ[w] &^ ((1 << uint(start&63)) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w == occWords {
			w = 0
		}
		word = q.occ[w]
	}
}

// Reset rewinds the calendar to its zero state — clock at cycle 0, no
// pending events, insertion counter restarted — while keeping the wheel,
// bucket backing arrays, overflow heap and staging slice allocated for
// reuse. Pending events are dropped, with their closure/payload
// references zeroed so retained capacity pins nothing. A reset queue is
// indistinguishable from a fresh one to every scheduler client; the
// simulation-state arena relies on this to re-run a machine in place.
func (q *Queue) Reset() {
	if q.wheel != nil && q.wheelN > 0 {
		for w := range q.occ {
			word := q.occ[w]
			for word != 0 {
				idx := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				b := &q.wheel[idx]
				// Slots before head were already zeroed as they fired.
				for i := b.head; i < len(b.items); i++ {
					b.items[i] = timed{}
				}
				b.items = b.items[:0]
				b.head = 0
			}
			q.occ[w] = 0
		}
	}
	for i := range q.overflow {
		q.overflow[i] = timed{}
	}
	q.overflow = q.overflow[:0]
	for i := range q.scratch {
		q.scratch[i] = timed{}
	}
	q.scratch = q.scratch[:0]
	q.now, q.seq, q.n, q.wheelN = 0, 0, 0, 0
}

// AdvanceTo jumps the clock forward to cycle t without running anything —
// the fast-forward spans of the sampled execution mode use it to charge a
// functionally-simulated span in one step. The jump never passes a pending
// event: with events scheduled before t the clock stops at the earliest
// one (the caller quiesces the calendar first, so this is the exceptional
// path), and a jump into the past is ignored. Returns the resulting time.
func (q *Queue) AdvanceTo(t int64) int64 {
	if next, ok := q.NextAt(); ok && next < t {
		t = next
	}
	if t > q.now {
		q.now = t
		q.migrate()
	}
	return q.now
}

// Empty reports whether no events are pending.
func (q *Queue) Empty() bool { return q.n == 0 }

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.n }

// Step pops and runs the earliest event, advancing the clock. It reports
// false when the calendar is empty.
func (q *Queue) Step() bool {
	if q.n == 0 {
		return false
	}
	var t int64
	if q.wheelN > 0 {
		idx := q.nextWheelBucket()
		b := &q.wheel[idx]
		t = b.items[b.head].at
	} else {
		t = q.overflow[0].at
	}
	if t > q.now {
		q.now = t
		q.migrate()
	}
	idx := int(t & wheelMask)
	b := &q.wheel[idx]
	ev := b.items[b.head]
	b.items[b.head] = timed{} // release closure/payload references
	b.head++
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
		q.occ[idx>>6] &^= 1 << uint(idx&63)
	}
	q.wheelN--
	q.n--
	if ev.fn != nil {
		ev.fn(q.now)
	} else {
		ev.h.HandleEvent(q.now, ev.i, ev.p)
	}
	return true
}

// NextAt returns the cycle of the earliest pending event without running
// it, and false when the calendar is empty. The wheel, when populated,
// always holds the global minimum: overflow events live at or beyond the
// wheel horizon and are migrated in as the clock approaches them.
func (q *Queue) NextAt() (int64, bool) {
	if q.n == 0 {
		return 0, false
	}
	if q.wheelN > 0 {
		b := &q.wheel[q.nextWheelBucket()]
		return b.items[b.head].at, true
	}
	return q.overflow[0].at, true
}

// RunBefore pumps every event strictly before the horizon cycle and
// returns the final time. Events at or after the horizon stay pending, so
// a caller advancing the horizon in fixed quanta replays exactly the
// sequence a single Drain would: this is the per-shard inner loop of the
// epoch-barrier runner.
func (q *Queue) RunBefore(horizon int64) int64 {
	for {
		t, ok := q.NextAt()
		if !ok || t >= horizon {
			return q.now
		}
		q.Step()
	}
}

// RunUntil pumps events until the calendar empties or the given predicate
// returns true (checked after every event). It returns the final time.
func (q *Queue) RunUntil(stop func() bool) int64 {
	for !stop() {
		if !q.Step() {
			break
		}
	}
	return q.now
}

// Drain pumps all remaining events.
func (q *Queue) Drain() int64 {
	for q.Step() {
	}
	return q.now
}

// Scheduler is the interface components use to talk to the calendar; both
// *Queue and test fakes satisfy it. At/After are the closure-based
// compatibility surface; Schedule is the zero-allocation typed path the
// hot loops use.
type Scheduler interface {
	Now() int64
	At(t int64, fn func(now int64))
	After(delay int64, fn func(now int64))
	Schedule(t int64, h Handler, i int64, p any)
}

var _ Scheduler = (*Queue)(nil)
