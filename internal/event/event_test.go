package event

import (
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func(int64) { got = append(got, 3) })
	q.At(10, func(int64) { got = append(got, 1) })
	q.At(20, func(int64) { got = append(got, 2) })
	q.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if q.Now() != 30 {
		t.Errorf("final time = %d", q.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func(int64) { got = append(got, i) })
	}
	q.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var q Queue
	q.At(100, func(now int64) {
		q.At(50, func(now2 int64) {
			if now2 != 100 {
				t.Errorf("past event ran at %d, want clamp to 100", now2)
			}
		})
	})
	q.Drain()
	if q.Now() != 100 {
		t.Errorf("now = %d", q.Now())
	}
}

func TestAfter(t *testing.T) {
	var q Queue
	var ran int64 = -1
	q.At(40, func(now int64) {
		q.After(5, func(now2 int64) { ran = now2 })
	})
	q.Drain()
	if ran != 45 {
		t.Errorf("After fired at %d, want 45", ran)
	}
}

func TestStepAndEmpty(t *testing.T) {
	var q Queue
	if !q.Empty() || q.Len() != 0 {
		t.Error("new queue should be empty")
	}
	q.At(1, func(int64) {})
	if q.Empty() || q.Len() != 1 {
		t.Error("queue should have one event")
	}
	if !q.Step() {
		t.Error("Step should succeed")
	}
	if q.Step() {
		t.Error("Step on empty should report false")
	}
}

func TestRunUntilStops(t *testing.T) {
	var q Queue
	count := 0
	for i := 1; i <= 100; i++ {
		q.At(int64(i), func(int64) { count++ })
	}
	q.RunUntil(func() bool { return count >= 10 })
	if count != 10 {
		t.Errorf("processed %d events, want 10", count)
	}
	if q.Len() != 90 {
		t.Errorf("remaining = %d, want 90", q.Len())
	}
}

func TestCascadingEvents(t *testing.T) {
	var q Queue
	depth := 0
	var recurse func(now int64)
	recurse = func(now int64) {
		if depth < 50 {
			depth++
			q.After(1, recurse)
		}
	}
	q.At(0, recurse)
	q.Drain()
	if depth != 50 {
		t.Errorf("depth = %d", depth)
	}
	if q.Now() != 50 {
		t.Errorf("now = %d", q.Now())
	}
}

func TestMonotonicClockProperty(t *testing.T) {
	f := func(times []int64) bool {
		var q Queue
		var seen []int64
		for _, at := range times {
			if at < 0 {
				at = -at
			}
			q.At(at%100000, func(now int64) { seen = append(seen, now) })
		}
		q.Drain()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
