package event

import "testing"

func TestQueueResetRetainsCapacity(t *testing.T) {
	q := &Queue{}
	h := HandlerFunc(func(now int64, i int64, p any) {})
	pattern := func() {
		for i := int64(0); i < 3000; i++ {
			q.Schedule(i*7, h, 0, nil)
		}
		for q.Step() {
		}
	}
	pattern()
	q.Reset()
	n := testing.AllocsPerRun(5, func() {
		pattern()
		q.Reset()
	})
	if n > 10 {
		t.Fatalf("reused queue allocated %v times per pattern", n)
	}
}
