package sim

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"profess/internal/fault"
	"profess/internal/trace"
)

// sampleCfg returns a multi-core test config running on the sampled tier.
// The window is explicit and short: these runs are a few hundred kilocycles,
// far below what the standard-scale DefaultSampleWindow assumes, and the
// tests want many windows, not long ones.
func sampleCfg(fraction float64) Config {
	cfg := MultiCoreConfig(PaperScale)
	cfg.Instructions = 300_000
	cfg.MaxCycles = 2_000_000_000
	cfg.SampleFraction = fraction
	cfg.SampleWindow = 30_000
	return cfg
}

// meanAbsIPCError compares per-program IPC between a sampled and a full
// run of the same cell.
func meanAbsIPCError(sampled, full *Result) float64 {
	var sum float64
	for i := range full.PerCore {
		f := full.PerCore[i].IPC
		sum += math.Abs(sampled.PerCore[i].IPC-f) / f
	}
	return sum / float64(len(full.PerCore))
}

// TestSampledSmoke runs a Table 10 mix on the sampled tier and checks the
// run completes, reports its sampling parameters, and lands near the
// full-fidelity IPC.
func TestSampledSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	specs, err := SpecsForWorkload(mustWorkload(t, "w09"), PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	fullCfg := sampleCfg(0)
	t0 := time.Now()
	full, err := Run(fullCfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	tFull := time.Since(t0)

	cfg := sampleCfg(0.1)
	t0 = time.Now()
	res, err := Run(cfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	tSampled := time.Since(t0)

	if res.TimedOut {
		t.Fatalf("sampled run timed out at %d cycles", res.Cycles)
	}
	if res.Sampling.Fraction != 0.1 || res.Sampling.Window != cfg.EffectiveSampleWindow() {
		t.Errorf("Sampling = %+v, want fraction 0.1 window %d", res.Sampling, cfg.EffectiveSampleWindow())
	}
	if res.Sampling.Windows < 2 {
		t.Errorf("only %d detailed windows measured", res.Sampling.Windows)
	}
	for i, c := range res.PerCore {
		if c.IPCCI95 < 0 {
			t.Errorf("core %d: negative CI %f", i, c.IPCCI95)
		}
		t.Logf("%-10s sampled ipc=%.4f ±%.4f  full ipc=%.4f  err=%+.2f%%",
			c.Program, c.IPC, c.IPCCI95, full.PerCore[i].IPC,
			100*(c.IPC-full.PerCore[i].IPC)/full.PerCore[i].IPC)
	}
	for i, c := range full.PerCore {
		if c.IPCCI95 != 0 {
			t.Errorf("full run core %d: IPCCI95 = %f, want 0", i, c.IPCCI95)
		}
	}
	err2 := meanAbsIPCError(res, full)
	t.Logf("mean abs IPC error %.2f%%; wall %v sampled vs %v full (%.1fx)",
		100*err2, tSampled, tFull, float64(tFull)/float64(tSampled))
	if err2 > 0.15 {
		t.Errorf("mean abs IPC error %.1f%% too large for fraction 0.1", 100*err2)
	}
}

// TestSampledFractionOneIsFullRun pins the exactness contract: fraction 1
// (and anything >= 1) is not an approximation of the full run, it IS the
// full run — byte-identical Result JSON across schemes, seeds and fault
// plans. Run under -race in CI (make sample-smoke).
func TestSampledFractionOneIsFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	base := SingleCoreConfig(PaperScale)
	base.Instructions = 60_000
	seeded := base
	seeded.Seed = 42
	faulty := base
	faulty.Faults = fault.Plan{
		Seed:           7,
		NVMReadRate:    1e-3,
		NVMWriteRate:   1e-3,
		StallRate:      1e-4,
		QACCorruptRate: 1e-3,
		SFCorruptRate:  1e-2,
	}
	cells := []struct {
		name   string
		cfg    Config
		scheme Scheme
	}{
		{"profess", base, SchemeProFess},
		{"mdm", base, SchemeMDM},
		{"pom", base, SchemePoM},
		{"seed42", seeded, SchemeProFess},
		{"faults", faulty, SchemeProFess},
	}
	spec, err := SpecForProgram("lbm", PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		full, err := Run(cell.cfg, []ProgramSpec{spec}, cell.scheme)
		if err != nil {
			t.Fatalf("%s: full: %v", cell.name, err)
		}
		wantJS, _ := renderRun(t, full)
		for _, fr := range []float64{1, 1.5} {
			cfg := cell.cfg
			cfg.SampleFraction = fr
			cfg.SampleWindow = 10_000 // must be ignored when sampling is off
			res, err := Run(cfg, []ProgramSpec{spec}, cell.scheme)
			if err != nil {
				t.Fatalf("%s: fraction %g: %v", cell.name, fr, err)
			}
			gotJS, _ := renderRun(t, res)
			if !bytes.Equal(gotJS, wantJS) {
				t.Errorf("%s: fraction %g diverged from full run\n got: %s\nwant: %s",
					cell.name, fr, gotJS, wantJS)
			}
		}
	}
}

// TestSampledDeterministic: a sampled run is a pure function of
// (cfg, specs, scheme) — repeat runs, fresh or through a shared arena,
// produce byte-identical Result JSON.
func TestSampledDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	specs, err := SpecsForPrograms([]string{"mcf", "soplex"}, PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampleCfg(0.2)
	cfg.Instructions = 150_000
	first, err := Run(cfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	wantJS, _ := renderRun(t, first)

	again, err := Run(cfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	gotJS, _ := renderRun(t, again)
	if !bytes.Equal(gotJS, wantJS) {
		t.Errorf("repeat sampled run diverged\n got: %s\nwant: %s", gotJS, wantJS)
	}

	arena := &SystemArena{}
	// Dirty the arena with a full run of a different shape first, so the
	// sampled run exercises the in-place reset path.
	warm := cfg
	warm.SampleFraction = 0
	warm.Instructions = 60_000
	if _, err := arena.RunContext(context.Background(), warm, specs, SchemeMDM); err != nil {
		t.Fatal(err)
	}
	pooled, err := arena.RunContext(context.Background(), cfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	gotJS, _ = renderRun(t, pooled)
	if arena.Reuses == 0 {
		t.Fatal("arena never reused the machine")
	}
	if !bytes.Equal(gotJS, wantJS) {
		t.Errorf("arena sampled run diverged from fresh\n got: %s\nwant: %s", gotJS, wantJS)
	}
}

// TestSampledErrorShrinksWithFraction is the fidelity-dial property: on a
// fixed seed, raising the detailed fraction must not make the IPC estimate
// worse (within a small tolerance for sampling noise), and at fraction 1
// the error is exactly zero.
func TestSampledErrorShrinksWithFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	specs, err := SpecsForPrograms([]string{"mcf", "lbm"}, PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampleCfg(0)
	cfg.Instructions = 200_000
	full, err := Run(cfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	fractions := []float64{0.05, 0.2, 0.5, 1}
	errs := make([]float64, len(fractions))
	for i, fr := range fractions {
		c := cfg
		c.SampleFraction = fr
		res, err := Run(c, specs, SchemeProFess)
		if err != nil {
			t.Fatalf("fraction %g: %v", fr, err)
		}
		errs[i] = meanAbsIPCError(res, full)
		t.Logf("fraction %.2f: mean abs IPC error %.3f%%", fr, 100*errs[i])
	}
	if errs[len(errs)-1] != 0 {
		t.Errorf("fraction 1 must be exact, got error %g", errs[len(errs)-1])
	}
	const slack = 0.02 // two points of sampling noise never count as regression
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]+slack {
			t.Errorf("error grew with fraction: %.3f at %g -> %.3f at %g",
				errs[i-1], fractions[i-1], errs[i], fractions[i])
		}
	}
}

// TestSamplingValidation pins the rejection of unsupported combinations.
func TestSamplingValidation(t *testing.T) {
	bad := func(mutate func(*Config)) error {
		cfg := MultiCoreConfig(PaperScale)
		cfg.Instructions = 10_000
		mutate(&cfg)
		return cfg.Validate()
	}
	if err := bad(func(c *Config) { c.SampleFraction = -0.1 }); err == nil {
		t.Error("negative fraction should fail validation")
	}
	if err := bad(func(c *Config) { c.SampleFraction = math.NaN() }); err == nil {
		t.Error("NaN fraction should fail validation")
	}
	if err := bad(func(c *Config) { c.SampleFraction = 0.1; c.SampleWindow = -1 }); err == nil {
		t.Error("negative window should fail validation")
	}
	if err := bad(func(c *Config) { c.SampleFraction = 0.1; c.Clusters = 2 }); err == nil {
		t.Error("sampling + clustered shards should fail validation")
	}
	if err := bad(func(c *Config) { c.SampleFraction = 0.1; c.TelemetryEvery = 1000 }); err == nil {
		t.Error("sampling + telemetry epochs should fail validation")
	}
	// Fraction >= 1 is full fidelity, not an error, and composes with
	// everything a full run composes with.
	if err := bad(func(c *Config) { c.SampleFraction = 1; c.Clusters = 2; c.Shards = 2 }); err != nil {
		t.Errorf("fraction 1 with clusters should validate: %v", err)
	}

	// Trace replay cannot fast-forward: rejected at system build.
	spec, err := SpecForProgram("lbm", PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	spec.Source = gen
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 10_000
	cfg.SampleFraction = 0.1
	if _, err := Run(cfg, []ProgramSpec{spec}, SchemeProFess); err == nil {
		t.Error("sampling + trace Source should fail")
	}
}
