package sim

import (
	"testing"

	"profess/internal/workload"
)

// mustWorkload resolves a Table 10 mix or fails the test.
func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// tinyConfig returns a fast configuration for unit tests: the 1/32-scale
// system with a much smaller instruction budget.
func tinyConfig(cores int) Config {
	var cfg Config
	if cores == 1 {
		cfg = SingleCoreConfig(PaperScale)
	} else {
		cfg = MultiCoreConfig(PaperScale)
	}
	cfg.Instructions = 300_000
	cfg.MaxCycles = 2_000_000_000
	return cfg
}

func TestSmokeSingleProgram(t *testing.T) {
	cfg := tinyConfig(1)
	spec, err := SpecForProgram("lbm", PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemeStatic, SchemePoM, SchemeMDM} {
		res, err := Run(cfg, []ProgramSpec{spec}, scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.TimedOut {
			t.Fatalf("%s: timed out at %d cycles", scheme, res.Cycles)
		}
		c := res.PerCore[0]
		t.Logf("%s: cycles=%d ipc=%.3f m1frac=%.3f stcHit=%.3f swaps=%d mpki=%.1f readLat=%.0f l3hit=%.3f",
			scheme, res.Cycles, c.IPC, c.M1Fraction, c.STCHitRate, c.Swaps, c.L3MPKI, c.AvgReadLat, res.L3HitRate)
		if c.IPC <= 0 || c.IPC > 4 {
			t.Errorf("%s: implausible IPC %f", scheme, c.IPC)
		}
	}
}

func TestSmokeWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-program smoke is not short")
	}
	cfg := tinyConfig(4)
	specs, err := SpecsForWorkload(mustWorkload(t, "w09"), PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{SchemePoM, SchemeProFess} {
		res, err := Run(cfg, specs, scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.TimedOut {
			t.Fatalf("%s: timed out", scheme)
		}
		for _, c := range res.PerCore {
			t.Logf("%s: %-10s ipc=%.3f m1frac=%.3f repeats=%d", scheme, c.Program, c.IPC, c.M1Fraction, c.Repeats)
		}
		t.Logf("%s: cycles=%d swapFrac=%.4f stcHit=%.3f energyEff=%.3g", scheme, res.Cycles, res.SwapFraction, res.STCHitRate, res.EnergyEff)
	}
}
