package sim

import (
	"context"
	"fmt"
	"math"

	"profess/internal/sample"
)

// SampleInfo describes the interval-sampling execution that produced a
// Result; the zero value means a full-fidelity run. Plain values only, per
// Result's serialisation contract.
type SampleInfo struct {
	// Fraction is the configured fraction of simulated time that ran
	// under the full cycle model.
	Fraction float64
	// Window is the detailed-window length in cycles.
	Window int64
	// Windows is the number of complete detailed windows measured — the
	// sample count behind the per-program IPC confidence intervals.
	Windows int64
}

// ffCtxCheckSteps is how often (in functional references) a fast-forward
// span polls the context.
const ffCtxCheckSteps = 1 << 16

// warmupCycles is the detailed warm-up run before the measured span of
// each window; see runSampled.
const warmupCycles = 26_000

// ffBatchSlack is how far (in cycles) a fast-forwarding core may run past
// the next core's issue time before the driver re-picks; see fastForward.
// Chosen with the default window on the standard sweep: small enough that
// the functional access interleaving tracks the detailed one (large slack
// measurably degrades swap-heavy mixes), large enough to amortise the
// core-selection scan.
const ffBatchSlack = 64

// runSampled executes the machine in the interval-sampling mode: detailed
// windows on the seeded schedule run under the unmodified event-driven
// cycle model; the spans between them fast-forward functionally. Between
// the two regimes the machine quiesces — cores park, the calendar drains —
// so no event-driven state is ever half in flight when the clock jumps.
//
// What stays exact: the reference streams (every instruction of every
// program is replayed, in both regimes), and with them the access-driven
// state — L3 tags, STC contents, QACs, policy counters (RSM/MDM/ProFess
// see every access), swap-group residency, wear tallies, demand counts.
// What is estimated: time. Each fast-forward span advances every core at
// the pace (cycles per instruction) its program measured in the detailed
// windows so far — window 0 is pinned to cycle 0 so a calibration sample
// always exists — so cycles, IPC and the latency statistics are estimates
// whose error shrinks as the fraction grows; the per-window IPC spread
// yields the confidence interval reported on each CoreResult.
func (s *System) runSampled(ctx context.Context) (*Result, error) {
	window := s.Cfg.EffectiveSampleWindow()
	sched := sample.NewSchedule(s.Cfg.SampleFraction, window, s.Cfg.Seed)
	est := sample.NewEstimator(len(s.specs))
	remaining := s.startCores(nil)

	progThreads := make([]int, len(s.specs))
	for _, p := range s.coreProg {
		progThreads[p]++
	}
	paces := make([]float64, len(s.specs))

	// Establish the loop invariant — cores parked, calendar drained —
	// before the first period. The initial step events fire as no-ops;
	// window 0 then unparks at cycle 0.
	for _, c := range s.Cores {
		c.Park()
	}
	s.Queue.Drain()

	var (
		timedOut bool
		runErr   error
		events   int64
		lastNow  int64 = -1
		stale    int
	)
	instrAt := func(out []int64) {
		for i := range out {
			out[i] = 0
		}
		for ci, c := range s.Cores {
			out[s.coreProg[ci]] += c.Instructions()
		}
	}
	instrBase := make([]int64, len(s.specs))
	instrEnd := make([]int64, len(s.specs))
	winIPC := make([]float64, len(s.specs))

	clock := s.Queue.Now()
	for i := int64(0); *remaining > 0 && runErr == nil && !timedOut; i++ {
		dStart, dEnd := sched.WindowAt(i)
		if dStart < clock {
			dStart = clock
		}
		if dEnd <= dStart {
			// The previous window's quiesce overran this whole window
			// (possible only at extreme fractions); skip the period.
			continue
		}

		if dStart > clock {
			t, done, err := s.fastForward(ctx, clock, dStart, paces, remaining)
			if err != nil {
				runErr = err
				break
			}
			clock = t
			if done || *remaining <= 0 {
				break
			}
			if s.Cfg.MaxCycles > 0 && clock >= s.Cfg.MaxCycles {
				timedOut = true
				break
			}
		}
		s.Queue.AdvanceTo(clock)

		// Detailed window: unpark and pump the cycle model until the
		// window ends (or the run does). pump advances the calendar up to
		// (not including) `until` and reports whether it got there.
		pump := func(until int64) bool {
			for *remaining > 0 {
				t, ok := s.Queue.NextAt()
				if !ok || t >= until {
					return true
				}
				if s.Cfg.MaxCycles > 0 && t >= s.Cfg.MaxCycles {
					timedOut = true
					return false
				}
				s.Queue.Step()
				events++
				if events%watchdogCheckEvents == 0 {
					if err := ctx.Err(); err != nil {
						runErr = fmt.Errorf("sim: aborted at cycle %d: %w", s.Queue.Now(), err)
						return false
					}
					if now := s.Queue.Now(); now == lastNow {
						stale++
						if stale >= watchdogStaleChecks {
							runErr = fmt.Errorf("sim: no progress: %d events without advancing past cycle %d",
								int64(stale)*watchdogCheckEvents, now)
							return false
						}
					} else {
						lastNow = now
						stale = 0
					}
				}
			}
			return false
		}
		for _, c := range s.Cores {
			c.Unpark()
		}
		// The leading span of the window is detailed warm-up: the
		// pipeline restarts from the quiesced (drained) state, and the
		// synchronized unpark bursts the request queues and the swap
		// policy, so early window cycles are not steady-state. The
		// transient decays in absolute time (~tens of kilocycles, set by
		// the swap latency), so the warm span is absolute too, capped so
		// at least an eighth of every window is measured.
		warm := dEnd - dStart - (dEnd-dStart)/8
		if warm > warmupCycles {
			warm = warmupCycles
		}
		warmAt := dStart + warm
		complete := pump(warmAt)
		instrAt(instrBase)
		if complete {
			complete = pump(dEnd)
		}
		if *remaining <= 0 || timedOut || runErr != nil {
			complete = false
		}
		if complete {
			// One IPC sample per program over the measured window span.
			instrAt(instrEnd)
			span := dEnd - warmAt
			for pi := range winIPC {
				winIPC[pi] = float64(instrEnd[pi]-instrBase[pi]) / float64(span)
			}
			est.Add(winIPC)
			for pi := range paces {
				paces[pi] = est.Pace(pi, progThreads[pi])
			}
		} else {
			break
		}

		// Quiesce for the next fast-forward span.
		for _, c := range s.Cores {
			c.Park()
		}
		s.Queue.Drain()
		clock = s.Queue.Now()
		if clock < dEnd {
			clock = dEnd
		}
	}
	for _, c := range s.Cores {
		c.Stop()
	}
	if runErr != nil {
		return nil, runErr
	}
	// A run that ended inside a fast-forward span finished on a drained
	// calendar; surface the functional end time on the clock for gather.
	s.Queue.AdvanceTo(clock)

	res, err := s.gather(timedOut)
	if err != nil {
		return nil, err
	}
	res.Sampling = SampleInfo{Fraction: s.Cfg.SampleFraction, Window: window, Windows: est.Windows()}
	// Report IPC from the window samples, not the paced clock. The windows
	// are a systematic time sample of the run, so their mean estimates the
	// time-average throughput instr/cycles directly and without the pacing
	// estimator's lag; the clock's job is only to place windows, warm state
	// and carry the cycle-denominated metrics (energy, wear rates, FirstIPC).
	if est.Windows() > 0 {
		for pi := range res.PerCore {
			res.PerCore[pi].IPC = est.Mean(pi)
			res.PerCore[pi].IPCCI95 = est.CI95(pi)
		}
	}
	return res, nil
}

// fastForward advances every core functionally from `from` until the next
// reference would issue at or beyond `until` (or the run completes, or
// MaxCycles strikes), each core paced at its program's measured cycles per
// instruction. Cores advance in global issue-time order — always the core
// whose next reference is earliest — so the memory system sees the
// interleaved access stream in time order, the closest event-free analogue
// of the detailed interleaving. Returns the span's end time and whether
// the run completed inside the span.
func (s *System) fastForward(ctx context.Context, from, until int64, paces []float64, remaining *int) (int64, bool, error) {
	for ci, c := range s.Cores {
		c.BeginFastForward(from, paces[s.coreProg[ci]])
	}
	mem := func(core int, addr int64, write bool, now int64) int64 {
		hit, ev, evicted := s.L3.Access(addr, write)
		if evicted && ev.Dirty {
			// Posted writeback, exactly as the event-driven frontend: the
			// core does not wait, the controller still accounts it.
			s.Ctl.FunctionalAccess(core, ev.Addr, true, now)
		}
		if hit {
			s.Front.perCoreHits[core]++
			return s.Front.hitLat
		}
		s.Front.perCoreMisses[core]++
		return s.Ctl.FunctionalAccess(core, addr, false, now)
	}
	limit := until
	if s.Cfg.MaxCycles > 0 && s.Cfg.MaxCycles < limit {
		limit = s.Cfg.MaxCycles
	}
	// Cache each core's next issue time: an FFRun can only change the run
	// core's own clock (and possibly stop it), so the two-smallest scan
	// works on a flat int64 array instead of re-deriving every core's time.
	times := make([]int64, len(s.Cores))
	for ci, c := range s.Cores {
		if c.Stopped() {
			times[ci] = math.MaxInt64
		} else {
			times[ci] = c.FFTime()
		}
	}
	var steps, nextCheck int64 = 0, ffCtxCheckSteps
	for *remaining > 0 {
		// Pick the earliest core and let it run a batch of references up
		// to just past the second-earliest core's next issue: within
		// ffBatchSlack cycles the global arrival order may locally
		// deviate from strict time order, which is comparable to the
		// reordering the detailed scheduler itself introduces, and it
		// amortises this scan over the whole batch.
		best, bt := 0, times[0]
		st := int64(math.MaxInt64)
		for ci := 1; ci < len(times); ci++ {
			if times[ci] < bt {
				best, bt, st = ci, times[ci], bt
			} else if times[ci] < st {
				st = times[ci]
			}
		}
		if bt >= limit {
			break
		}
		horizon := limit
		if st < math.MaxInt64-ffBatchSlack && st+ffBatchSlack < limit {
			horizon = st + ffBatchSlack
		}
		t, n := s.Cores[best].FFRun(mem, horizon, remaining)
		times[best] = t
		steps += int64(n)
		if steps >= nextCheck {
			nextCheck = steps + ffCtxCheckSteps
			if err := ctx.Err(); err != nil {
				return bt, false, fmt.Errorf("sim: aborted at cycle %d: %w", bt, err)
			}
		}
		if *remaining <= 0 {
			// The run completed inside the batch; t is the completing
			// core's next issue time, one compute gap past completion.
			if t > limit {
				t = limit
			}
			for _, c := range s.Cores {
				c.EndFastForward()
			}
			return t, true, nil
		}
	}
	for _, c := range s.Cores {
		c.EndFastForward()
	}
	return limit, false, nil
}
