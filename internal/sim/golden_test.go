package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the committed golden telemetry traces from the current
// build:
//
//	go test ./internal/sim -run TestGoldenTelemetry -update
//
// Inspect the diff before committing — a golden change means the
// simulation's observable behaviour changed.
var update = flag.Bool("update", false, "rewrite testdata/golden telemetry traces")

// goldenConfig is the fixed scenario behind the golden traces: a
// fixed-seed two-program mix (mcf's irregular pointer chasing competing
// with lbm's streaming) on the quad-core system, small enough to run in
// about a second but long enough to cross several MDM phases.
func goldenConfig(t *testing.T) (Config, []ProgramSpec) {
	t.Helper()
	cfg := MultiCoreConfig(PaperScale)
	cfg.Instructions = 120_000
	cfg.TelemetryEvery = 25_000
	specs := make([]ProgramSpec, 0, 2)
	for _, name := range []string{"mcf", "lbm"} {
		s, err := SpecForProgram(name, cfg.Scale)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return cfg, specs
}

// goldenRun executes the scenario under one scheme and returns the
// exported per-epoch JSONL.
func goldenRun(t *testing.T, scheme Scheme) []byte {
	t.Helper()
	cfg, specs := goldenConfig(t)
	res, err := Run(cfg, specs, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("telemetry enabled but Result.Telemetry is nil")
	}
	if res.Telemetry.Len() == 0 {
		t.Fatal("telemetry recorded no epochs")
	}
	var buf bytes.Buffer
	if err := res.Telemetry.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTelemetry regression-tests the whole simulated machine: the
// per-epoch telemetry of a fixed-seed run under pom and mdm must match the
// committed traces byte for byte. Any drift in event ordering, RNG
// consumption, policy arithmetic, or export formatting shows up here as a
// readable JSONL diff rather than a silent behaviour change.
func TestGoldenTelemetry(t *testing.T) {
	for _, scheme := range []Scheme{SchemePoM, SchemeMDM} {
		t.Run(string(scheme), func(t *testing.T) {
			got := goldenRun(t, scheme)

			// Determinism first: a second in-process run must reproduce the
			// export byte for byte, otherwise the golden comparison would
			// chase ghosts.
			again := goldenRun(t, scheme)
			if !bytes.Equal(got, again) {
				t.Fatal("two in-process runs produced different telemetry exports")
			}

			path := filepath.Join("testdata", "golden", string(scheme)+".jsonl")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the golden trace)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("telemetry diverged from %s\n got %d bytes, want %d bytes\nfirst differing line: %s\nrerun with -update and inspect the diff if the change is intended",
					path, len(got), len(want), firstDiffLine(got, want))
			}
		})
	}
}

// firstDiffLine locates the first line where two JSONL exports diverge.
func firstDiffLine(got, want []byte) string {
	g := bytes.Split(got, []byte("\n"))
	w := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return string(g[i])
		}
	}
	if len(g) > len(w) {
		return "(extra trailing lines in got)"
	}
	return "(extra trailing lines in want)"
}
