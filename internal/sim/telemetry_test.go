package sim

import (
	"reflect"
	"testing"
)

// TestTelemetryDoesNotPerturbSimulation is the zero-cost contract of the
// telemetry subsystem, checked from both sides: a run with the sampler
// enabled must produce exactly the Result of a run with it disabled —
// same cycles, same counters, same energy — because sampling only reads
// state from the event calendar, never mutates it.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	for _, scheme := range []Scheme{SchemePoM, SchemeProFess} {
		t.Run(string(scheme), func(t *testing.T) {
			cfg, specs := goldenConfig(t)

			cfg.TelemetryEvery = 0
			off, err := Run(cfg, specs, scheme)
			if err != nil {
				t.Fatal(err)
			}
			if off.Telemetry != nil {
				t.Fatal("telemetry disabled but Result.Telemetry is set")
			}

			cfg.TelemetryEvery = 25_000
			on, err := Run(cfg, specs, scheme)
			if err != nil {
				t.Fatal(err)
			}
			if on.Telemetry == nil || on.Telemetry.Len() == 0 {
				t.Fatal("telemetry enabled but recorded nothing")
			}

			// Compare everything except the sampler itself.
			on.Telemetry = nil
			if !reflect.DeepEqual(on, off) {
				t.Errorf("telemetry perturbed the simulation:\n on: %+v\noff: %+v", on, off)
			}
		})
	}
}

// TestTelemetryEpochSpacing checks the sampler's cycle-domain contract on
// a real run: consecutive epochs are exactly TelemetryEvery cycles apart,
// except the final partial epoch flushed at the end of the run.
func TestTelemetryEpochSpacing(t *testing.T) {
	cfg, specs := goldenConfig(t)
	res, err := Run(cfg, specs, SchemeMDM)
	if err != nil {
		t.Fatal(err)
	}
	recs := res.Telemetry.Records()
	if len(recs) < 2 {
		t.Fatalf("want at least 2 epochs, got %d", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		gap := recs[i].Cycle - recs[i-1].Cycle
		if i < len(recs)-1 && gap != cfg.TelemetryEvery {
			t.Errorf("epoch %d at cycle %d: gap %d, want %d", i, recs[i].Cycle, gap, cfg.TelemetryEvery)
		}
		if gap <= 0 || gap > cfg.TelemetryEvery {
			t.Errorf("epoch %d: gap %d outside (0, %d]", i, gap, cfg.TelemetryEvery)
		}
		if recs[i].Epoch != recs[i-1].Epoch+1 {
			t.Errorf("epoch numbering not consecutive at %d", i)
		}
	}
	if last := recs[len(recs)-1].Cycle; last != res.Cycles {
		t.Errorf("final partial epoch at cycle %d, want run end %d", last, res.Cycles)
	}
}

// benchRun is the shared scenario of the overhead benchmarks; b.N runs of
// the golden two-program mix under MDM.
func benchRun(b *testing.B, every int64) {
	cfg := MultiCoreConfig(PaperScale)
	cfg.Instructions = 60_000
	cfg.TelemetryEvery = every
	var specs []ProgramSpec
	for _, name := range []string{"mcf", "lbm"} {
		s, err := SpecForProgram(name, cfg.Scale)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, specs, SchemeMDM); err != nil {
			b.Fatal(err)
		}
	}
}

// The acceptance bar is <2% overhead with telemetry disabled; compare:
//
//	go test ./internal/sim -bench 'SimLoop' -count 10 | benchstat
func BenchmarkSimLoopTelemetryOff(b *testing.B) { benchRun(b, 0) }
func BenchmarkSimLoopTelemetryOn(b *testing.B)  { benchRun(b, 25_000) }
