package sim

import (
	"math"
	"testing"
)

// TestWritebacksReachMemory verifies the write-path plumbing: stores dirty
// L3 lines, whose eviction writebacks arrive at the memory controller as
// write requests (the paper's MC-level writes, weighted x8 by PoM and
// ProFess).
func TestWritebacksReachMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 150_000
	spec, err := SpecForProgram("lbm", PaperScale) // write-heavy
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, []ProgramSpec{spec}, SchemeStatic)
	if err != nil {
		t.Fatal(err)
	}
	writes := res.Counts.Writes[0] + res.Counts.Writes[1]
	reads := res.Counts.Reads[0] + res.Counts.Reads[1]
	if writes == 0 {
		t.Fatal("no writebacks reached memory")
	}
	// lbm dirties ~45% of its lines; essentially every line is evicted
	// dirty eventually, so writes should be a large fraction of reads.
	frac := float64(writes) / float64(reads)
	if frac < 0.2 || frac > 0.8 {
		t.Errorf("writeback/read ratio %v implausible for lbm", frac)
	}
}

// TestLibquantumFitsInM1 pins the §5.1 footnote: libquantum's footprint
// fits entirely in M1 at the default scale, so once migrated its accesses
// are served from M1 and MDM and PoM perform identically (within noise).
func TestLibquantumFitsInM1(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 400_000
	spec, err := SpecForProgram("libquantum", PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Params.Footprint > cfg.M1Capacity {
		t.Fatalf("premise broken: footprint %d > M1 %d", spec.Params.Footprint, cfg.M1Capacity)
	}
	pom, err := Run(cfg, []ProgramSpec{spec}, SchemePoM)
	if err != nil {
		t.Fatal(err)
	}
	mdm, err := Run(cfg, []ProgramSpec{spec}, SchemeMDM)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mdm.PerCore[0].IPC / pom.PerCore[0].IPC
	if math.Abs(ratio-1) > 0.10 {
		t.Errorf("libquantum MDM/PoM = %.3f, want ~1 (fits in M1)", ratio)
	}
	// After warm-up, most accesses come from M1 under either scheme.
	if mdm.PerCore[0].M1Fraction < 0.6 {
		t.Errorf("libquantum M1 fraction %v too low for an M1-resident footprint", mdm.PerCore[0].M1Fraction)
	}
}

// TestRefreshVisibleAtSystemLevel checks that M1 refreshes accumulate
// during a run and M2 never refreshes.
func TestRefreshVisibleAtSystemLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 100_000
	spec, _ := SpecForProgram("soplex", PaperScale)
	res, err := Run(cfg, []ProgramSpec{spec}, SchemePoM)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Refreshes[0] == 0 {
		t.Error("M1 should have refreshed during the run")
	}
	if res.Counts.Refreshes[1] != 0 {
		t.Error("M2 must not refresh")
	}
}

// TestLatencyQuantilesOrdered checks P50 <= P95 <= P99 system-wide.
func TestLatencyQuantilesOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 100_000
	spec, _ := SpecForProgram("milc", PaperScale)
	res, err := Run(cfg, []ProgramSpec{spec}, SchemeMDM)
	if err != nil {
		t.Fatal(err)
	}
	c := res.PerCore[0]
	if !(c.ReadLatP50 > 0 && c.ReadLatP50 <= c.ReadLatP95 && c.ReadLatP95 <= c.ReadLatP99) {
		t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v", c.ReadLatP50, c.ReadLatP95, c.ReadLatP99)
	}
	if c.AvgReadLat <= 0 {
		t.Error("average read latency missing")
	}
}

// TestSwapFractionConsistency: swap fraction equals swaps over demand.
func TestSwapFractionConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 100_000
	spec, _ := SpecForProgram("lbm", PaperScale)
	res, err := Run(cfg, []ProgramSpec{spec}, SchemeMDM)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res.Counts.Swaps) / float64(res.Counts.DemandAccesses())
	if math.Abs(res.SwapFraction-want) > 1e-12 {
		t.Errorf("swap fraction %v, want %v", res.SwapFraction, want)
	}
}
