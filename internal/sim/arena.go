package sim

import (
	"context"
	"fmt"

	"profess/internal/fault"
	"profess/internal/hybrid"
)

// SystemArena caches one constructed System and reuses it across runs of
// the same structural shape, resetting the machine in place instead of
// rebuilding it. Construction is the dominant per-cell cost of a planned
// sweep once the hot paths are allocation-free: every cell reallocates
// the channels, the flattened ST/STC/cache arrays, the freelists and the
// timing wheel just to tear them down again. The arena turns that into a
// handful of clear()s and free-list rewinds.
//
// An arena is single-goroutine state: each sweep worker owns one (see
// SweepPlan.ExecuteOpts in the root package), so there is no locking on
// the hot path. It holds a handful of machines, one per recently-used
// shape: experiment drivers routinely interleave shapes (a multi-program
// cell, then its single-core alone-IPC baselines, then the next cell),
// and a single-machine cache would rebuild on every alternation. Beyond
// arenaMaxMachines shapes the least-recently-used machine is dropped.
// Clustered configurations (Clusters > 1) bypass the arena entirely and
// run on the sharded engine as before.
//
// Correctness contract: a reused machine must be byte-identical to a
// fresh one — same Result JSON, same telemetry stream. Every component
// Reset (event wheel, channels, controller, STCs, allocator, L3,
// histograms) restores exactly the state its constructor builds, and the
// differential arena-vs-fresh test pins the end-to-end guarantee the
// same way the shard-count sweep pins the sharded engine's.
type SystemArena struct {
	machines []arenaMachine
	tick     int64

	// The cluster fleet: one machine per cluster index of the last
	// clustered configuration this arena served (all clusters of an even
	// split share one shape). Kept separately from machines because a
	// fleet's machines are alive concurrently.
	clusterShape arenaShape
	clusterSys   []*System

	// Builds counts fresh constructions (shape misses), Reuses in-place
	// resets (shape hits). Exposed for tests and diagnostics.
	Builds int64
	Reuses int64
}

// arenaMachine is one cached (shape, machine) pair with its recency
// stamp.
type arenaMachine struct {
	shape   arenaShape
	sys     *System
	lastUse int64
}

// arenaMaxMachines bounds how many shapes one arena keeps live. The
// standard sweeps alternate between at most a few shapes at a time (cell
// + baselines, or one sensitivity variant and its neighbours); beyond
// that, keeping old machines only pins memory.
const arenaMaxMachines = 4

// arenaShape is the comparable structure key of a System: every Config
// field that is baked into component geometry at construction time.
// Everything else — seed, instruction budget, latencies read from s.Cfg,
// fault plan, telemetry epoch, the specs' generator parameters — is
// rewound or rebuilt per reset and deliberately excluded, as is the
// scheme: policies are cheap and constructed fresh for every cell.
type arenaShape struct {
	cores      int
	channels   int
	m1Capacity int64
	m2Slots    int
	regions    int
	l3Capacity int64
	l3Ways     int
	stcEntries int
	stcWays    int
	modelST    bool
	m2TWR      float64
	numSpecs   int
}

// shapeFor derives the structure key for a configuration and spec count.
func shapeFor(cfg Config, numSpecs int) arenaShape {
	return arenaShape{
		cores:      cfg.Cores,
		channels:   cfg.Channels,
		m1Capacity: cfg.M1Capacity,
		m2Slots:    cfg.M2Slots,
		regions:    cfg.Regions,
		l3Capacity: cfg.L3Capacity,
		l3Ways:     cfg.L3Ways,
		stcEntries: cfg.STCEntries,
		stcWays:    cfg.STCWays,
		modelST:    cfg.ModelSTTraffic,
		m2TWR:      cfg.M2TWRFactor,
		numSpecs:   numSpecs,
	}
}

// RunContext runs one simulation through the arena: a shape hit resets
// the cached machine in place, a miss (or a nil arena) builds fresh.
// Clustered configurations run on the sharded engine with the arena
// supplying (and keeping) the per-cluster machines.
func (a *SystemArena) RunContext(ctx context.Context, cfg Config, specs []ProgramSpec, scheme Scheme) (*Result, error) {
	if a == nil {
		return RunContext(ctx, cfg, specs, scheme)
	}
	if cfg.Clusters > 1 {
		return runClustered(ctx, cfg, specs, scheme, a)
	}
	policy, err := NewPolicy(scheme, len(specs), cfg.Scale)
	if err != nil {
		return nil, err
	}
	shape := shapeFor(cfg, len(specs))
	a.tick++
	for i := range a.machines {
		m := &a.machines[i]
		if m.shape != shape {
			continue
		}
		if err := m.sys.reset(cfg, specs, policy); err != nil {
			// A failed reset leaves the machine half-rewound: drop it so
			// the next cell rebuilds. The error is the same one NewSystem
			// would return for these inputs (validation, page-frame
			// exhaustion).
			a.machines[i] = a.machines[len(a.machines)-1]
			a.machines = a.machines[:len(a.machines)-1]
			return nil, err
		}
		m.lastUse = a.tick
		a.Reuses++
		return m.sys.RunContext(ctx)
	}
	sys, err := NewSystem(cfg, specs, policy)
	if err != nil {
		return nil, err
	}
	if len(a.machines) < arenaMaxMachines {
		a.machines = append(a.machines, arenaMachine{shape, sys, a.tick})
	} else {
		lru := 0
		for i := 1; i < len(a.machines); i++ {
			if a.machines[i].lastUse < a.machines[lru].lastUse {
				lru = i
			}
		}
		a.machines[lru] = arenaMachine{shape, sys, a.tick}
	}
	a.Builds++
	return sys.RunContext(ctx)
}

// clusterMachine returns the machine for cluster k of an n-cluster fleet:
// a reset of the cached one when the fleet shape matches, a fresh build
// otherwise. A nil arena always builds fresh. runClustered calls it for
// k = 0..n-1 in order on one goroutine, before any shard worker starts.
func (a *SystemArena) clusterMachine(k, n int, cfg Config, specs []ProgramSpec, policy hybrid.Policy) (*System, error) {
	if a == nil {
		return NewSystem(cfg, specs, policy)
	}
	shape := shapeFor(cfg, len(specs))
	if k == 0 && (len(a.clusterSys) != n || a.clusterShape != shape) {
		a.clusterSys = make([]*System, n)
		a.clusterShape = shape
	}
	if shape != a.clusterShape {
		// An uneven fleet (cluster shapes differ): serve this cluster
		// uncached rather than corrupting the fleet cache.
		return NewSystem(cfg, specs, policy)
	}
	if sys := a.clusterSys[k]; sys != nil {
		if err := sys.reset(cfg, specs, policy); err != nil {
			a.clusterSys[k] = nil
			return nil, err
		}
		a.Reuses++
		return sys, nil
	}
	sys, err := NewSystem(cfg, specs, policy)
	if err != nil {
		return nil, err
	}
	a.clusterSys[k] = sys
	a.Builds++
	return sys, nil
}

// reset rewinds a finished (or aborted) machine to the state NewSystem
// builds for (cfg, specs, policy), reusing every allocation whose size is
// fixed by the arena shape. The caller guarantees the shape matches.
func (s *System) reset(cfg Config, specs []ProgramSpec, policy hybrid.Policy) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	totalThreads := 0
	for _, sp := range specs {
		totalThreads += sp.threads()
	}
	if len(specs) == 0 || totalThreads > cfg.Cores {
		return fmt.Errorf("sim: %d threads do not fit %d cores", totalThreads, cfg.Cores)
	}
	// Order matters only at the edges: the event wheel first (dropping
	// every pending event, so stale ops cannot fire into reset state) and
	// core construction last (it allocates frames from the reset
	// allocator and telemetry schedules its first tick on the reset
	// wheel).
	s.Queue.Reset()
	s.Alloc.Reset(cfg.Seed)
	for _, ch := range s.Ctl.Channels() {
		ch.Reset()
	}
	s.Ctl.Reset(policy)
	s.L3.Reset()
	clear(s.Front.perCoreHits)
	clear(s.Front.perCoreMisses)
	s.Front.hitLat = cfg.L3HitLatency
	s.Cfg = cfg
	s.Policy = policy
	s.specs = specs
	// Fault wiring mirrors NewSystem: same fork salts, same order, and no
	// injector at all for a fault-free plan.
	s.Inj = nil
	if cfg.Faults.Enabled() {
		inj := fault.NewInjector(cfg.Faults)
		for i, ch := range s.Ctl.Channels() {
			ch.SetFaultInjector(inj.Fork(uint64(i + 1)))
		}
		s.Ctl.SetFaultInjector(inj.Fork(0x100))
		if fp, ok := policy.(interface{ SetFaultInjector(*fault.Injector) }); ok {
			fp.SetFaultInjector(inj.Fork(0x200))
		}
		s.Inj = inj
	}
	if err := s.buildCores(); err != nil {
		return err
	}
	return s.wireTelemetry()
}
