package sim

import "testing"

// TestMultiThreadedProgram exercises §3.1.1's multi-threaded case: all
// threads of a program share one address space and appear to RSM/MDM as a
// single program.
func TestMultiThreadedProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(4)
	cfg.Instructions = 100_000
	spec, err := SpecForProgram("soplex", PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	spec.Threads = 2
	other, err := SpecForProgram("lbm", PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, []ProgramSpec{spec, other}, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("results per program = %d, want 2", len(res.PerCore))
	}
	mt := res.PerCore[0]
	if mt.Program != "soplex" {
		t.Fatalf("program order wrong: %+v", mt)
	}
	// Both threads retire the budget, so the program retires >= 2x.
	if mt.Instructions < 2*cfg.Instructions {
		t.Errorf("multi-threaded program retired %d, want >= %d", mt.Instructions, 2*cfg.Instructions)
	}
	if mt.Served == 0 {
		t.Error("no memory traffic attributed to the multi-threaded program")
	}
}

func TestThreadsOverflowRejected(t *testing.T) {
	cfg := tinyConfig(4)
	spec, _ := SpecForProgram("lbm", PaperScale)
	spec.Threads = 5
	if _, err := Run(cfg, []ProgramSpec{spec}, SchemePoM); err == nil {
		t.Error("five threads on four cores should fail")
	}
}

func TestThreadSeedsDiffer(t *testing.T) {
	cfg := tinyConfig(4)
	spec, _ := SpecForProgram("soplex", PaperScale)
	spec.Threads = 3
	policy, err := NewPolicy(SchemeStatic, 1, cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, []ProgramSpec{spec}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Cores) != 3 {
		t.Fatalf("cores = %d, want 3 threads", len(sys.Cores))
	}
	for _, p := range sys.coreProg {
		if p != 0 {
			t.Error("all threads must map to program 0")
		}
	}
}
