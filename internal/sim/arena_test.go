package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"profess/internal/fault"
)

// arenaCell is one differential test case: a (cfg, specs, scheme) cell
// executed both through a shared arena and through fresh construction.
type arenaCell struct {
	name   string
	cfg    Config
	specs  []ProgramSpec
	scheme Scheme
}

// arenaMatrix is the standard experiment matrix of the differential
// test: single- and multi-program cells across schemes, seeds,
// instruction budgets, fault plans, telemetry, threaded specs and a
// timed-out run, ordered so the shared arena sees both shape hits
// (consecutive same-shape cells) and shape flips (rebuilds).
func arenaMatrix(t *testing.T) []arenaCell {
	t.Helper()
	single := func(instr int64) Config {
		cfg := SingleCoreConfig(PaperScale)
		cfg.Instructions = instr
		return cfg
	}
	multi := func(instr int64) Config {
		cfg := MultiCoreConfig(PaperScale)
		cfg.Instructions = instr
		return cfg
	}
	spec1 := func(name string) []ProgramSpec {
		s, err := SpecForProgram(name, PaperScale)
		if err != nil {
			t.Fatal(err)
		}
		return []ProgramSpec{s}
	}
	w09 := []string{"mcf", "soplex", "lbm", "GemsFDTD"}
	mix, err := SpecsForPrograms(w09, PaperScale)
	if err != nil {
		t.Fatal(err)
	}

	seeded := single(60_000)
	seeded.Seed = 42

	faulty := single(60_000)
	faulty.Faults = fault.Plan{
		Seed:           7,
		NVMReadRate:    1e-3,
		NVMWriteRate:   1e-3,
		StallRate:      1e-4,
		QACCorruptRate: 1e-3,
		SFCorruptRate:  1e-2,
	}

	traced := single(60_000)
	traced.TelemetryEvery = 10_000

	timed := multi(5_000_000)
	timed.MaxCycles = 30_000

	threadedCfg := multi(40_000)
	threaded, err := SpecsForPrograms([]string{"mcf", "omnetpp"}, PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	threaded[0].Threads = 2

	return []arenaCell{
		{"single/lbm/profess", single(60_000), spec1("lbm"), SchemeProFess},
		{"single/mcf/profess", single(60_000), spec1("mcf"), SchemeProFess},
		{"single/lbm/mdm", single(60_000), spec1("lbm"), SchemeMDM},
		{"single/lbm/pom", single(60_000), spec1("lbm"), SchemePoM},
		{"single/lbm/seed42", seeded, spec1("lbm"), SchemeProFess},
		{"single/lbm/faults", faulty, spec1("lbm"), SchemeProFess},
		{"single/lbm/telemetry", traced, spec1("lbm"), SchemeProFess},
		{"multi/w09/profess", multi(60_000), mix, SchemeProFess},
		{"multi/w09/mdm", multi(60_000), mix, SchemeMDM},
		{"multi/w09/cameo", multi(60_000), mix, SchemeCAMEO},
		{"multi/w09/timedout", timed, mix, SchemeProFess},
		{"multi/threads/profess", threadedCfg, threaded, SchemeProFess},
		// Shape flip back to single-core: the arena must rebuild, and the
		// rebuilt machine must again be exact.
		{"single/milc/profess", single(60_000), spec1("milc"), SchemeProFess},
	}
}

// renderRun serialises a run for byte comparison: canonical Result JSON
// plus the telemetry JSONL stream (empty when telemetry is off).
func renderRun(t *testing.T, res *Result) ([]byte, []byte) {
	t.Helper()
	js, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var tele bytes.Buffer
	if res.Telemetry != nil {
		if err := res.Telemetry.WriteJSONL(&tele); err != nil {
			t.Fatal(err)
		}
	}
	return js, tele.Bytes()
}

// TestArenaVsFreshByteIdentical is the acceptance contract of arena
// reuse: every cell of the standard experiment matrix, executed through
// one shared SystemArena in sequence, produces byte-identical Result
// JSON and telemetry to a freshly constructed machine. Run under -race
// in CI (make arena-smoke). Mid-sequence the arena also absorbs an
// aborted (cancelled) run, so reset-after-abort is covered too.
func TestArenaVsFreshByteIdentical(t *testing.T) {
	cells := arenaMatrix(t)
	arena := &SystemArena{}
	sawTelemetry := false
	for i, cell := range cells {
		fresh, err := Run(cell.cfg, cell.specs, cell.scheme)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", cell.name, err)
		}
		wantJS, wantTele := renderRun(t, fresh)

		reused, err := arena.RunContext(context.Background(), cell.cfg, cell.specs, cell.scheme)
		if err != nil {
			t.Fatalf("%s: arena run: %v", cell.name, err)
		}
		gotJS, gotTele := renderRun(t, reused)

		if !bytes.Equal(gotJS, wantJS) {
			t.Errorf("%s: arena Result JSON diverged from fresh\n got: %s\nwant: %s", cell.name, gotJS, wantJS)
		}
		if !bytes.Equal(gotTele, wantTele) {
			t.Errorf("%s: arena telemetry diverged from fresh", cell.name)
		}
		if cell.cfg.TelemetryEvery > 0 {
			sawTelemetry = true
			if len(gotTele) == 0 {
				t.Errorf("%s: telemetry enabled but no epochs exported", cell.name)
			}
		}

		// Halfway through, abort a run mid-flight: the next cells then
		// reuse a machine whose previous run never quiesced.
		if i == len(cells)/2 {
			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			abortCfg := cell.cfg
			abortCfg.Instructions = 5_000_000
			abortCfg.MaxCycles = 0
			if _, err := arena.RunContext(cancelled, abortCfg, cell.specs, cell.scheme); err == nil {
				t.Fatal("cancelled arena run returned no error")
			}
		}
	}
	if !sawTelemetry {
		t.Fatal("matrix exercised no telemetry cell")
	}
	if arena.Reuses == 0 {
		t.Fatal("matrix never reused the arena machine")
	}
	if arena.Builds < 3 {
		t.Fatalf("matrix shape flips built only %d machines, want >= 3", arena.Builds)
	}
	if int(arena.Builds+arena.Reuses) < len(cells) {
		t.Fatalf("builds(%d)+reuses(%d) < %d cells", arena.Builds, arena.Reuses, len(cells))
	}
}

// TestArenaClusteredReuse: clustered configurations run on the sharded
// engine with the arena supplying the per-cluster fleet. Repeat runs —
// including at a different worker count — must reuse every cluster
// machine and stay byte-identical to fresh construction.
func TestArenaClusteredReuse(t *testing.T) {
	cfg, specs := scale16TestConfig(t, 20_000)
	fresh, err := Run(cfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	wantJS, _ := renderRun(t, fresh)

	arena := &SystemArena{}
	for round := 0; round < 3; round++ {
		c := cfg
		if round == 2 {
			c.Shards = 2 // worker count is a pure speed knob, even on reused machines
		}
		res, err := arena.RunContext(context.Background(), c, specs, SchemeProFess)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ClusterDone) != cfg.Clusters {
			t.Fatalf("round %d lost ClusterDone: %d entries, want %d", round, len(res.ClusterDone), cfg.Clusters)
		}
		gotJS, _ := renderRun(t, res)
		if !bytes.Equal(gotJS, wantJS) {
			t.Errorf("round %d: arena clustered Result diverged from fresh\n got: %s\nwant: %s", round, gotJS, wantJS)
		}
	}
	if arena.Builds != int64(cfg.Clusters) {
		t.Errorf("built %d cluster machines, want %d", arena.Builds, cfg.Clusters)
	}
	if arena.Reuses != int64(2*cfg.Clusters) {
		t.Errorf("reused %d cluster machines, want %d", arena.Reuses, 2*cfg.Clusters)
	}
}

// TestArenaErrorDropsMachine: a reset that fails (here: footprints that
// exhaust physical pages) surfaces its error and evicts the cached
// machine instead of leaving a half-rewound one for the next cell.
func TestArenaErrorDropsMachine(t *testing.T) {
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 30_000
	spec, err := SpecForProgram("lbm", PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	arena := &SystemArena{}
	if _, err := arena.RunContext(context.Background(), cfg, []ProgramSpec{spec}, SchemeProFess); err != nil {
		t.Fatal(err)
	}

	huge := spec
	huge.Params.Footprint = cfg.M1Capacity * int64(cfg.M2Slots) * 4
	if _, err := arena.RunContext(context.Background(), cfg, []ProgramSpec{huge}, SchemeProFess); err == nil {
		t.Fatal("oversized footprint ran")
	}

	// The arena recovers: the next well-formed cell rebuilds and matches
	// a fresh machine.
	fresh, err := Run(cfg, []ProgramSpec{spec}, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	wantJS, _ := renderRun(t, fresh)
	res, err := arena.RunContext(context.Background(), cfg, []ProgramSpec{spec}, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	gotJS, _ := renderRun(t, res)
	if !bytes.Equal(gotJS, wantJS) {
		t.Errorf("post-error arena run diverged from fresh\n got: %s\nwant: %s", gotJS, wantJS)
	}
}
