package sim

import (
	"context"
	"fmt"

	"profess/internal/cache"
	"profess/internal/cpu"
	"profess/internal/event"
	"profess/internal/fault"
	"profess/internal/hybrid"
	"profess/internal/mem"
	"profess/internal/stats"
	"profess/internal/telemetry"
	"profess/internal/trace"
	"profess/internal/workload"
)

// ProgramSpec names one program instance to run. Threads > 1 runs a
// multi-threaded program: the threads share one OS address space (one
// page table, one footprint) and appear to the management hardware — RSM
// counters, MDM statistics, private region — as a single program, exactly
// as §3.1.1 prescribes. Each thread drives its own reference stream
// (seeded per thread); data sharing between threads is not modelled, which
// the paper also leaves to future work.
type ProgramSpec struct {
	Name    string
	Params  trace.Params
	Threads int // 0 or 1 = single-threaded
	// Source, when non-nil, replaces the synthetic generator — e.g. a
	// trace.Replayer loaded from a capture (see cmd/professtrace). Only
	// single-threaded specs may carry a Source, since threads need
	// independent streams.
	Source trace.Source
}

// threads returns the effective thread count.
func (s ProgramSpec) threads() int {
	if s.Threads <= 1 {
		return 1
	}
	return s.Threads
}

// SpecsForWorkload builds the four program specs of a Table 10 mix at the
// given capacity scale.
func SpecsForWorkload(w workload.Workload, scale float64) ([]ProgramSpec, error) {
	specs := make([]ProgramSpec, len(w.Programs))
	seen := map[string]int{}
	for i, name := range w.Programs {
		prog, err := workload.ProgramByName(name)
		if err != nil {
			return nil, err
		}
		inst := seen[name]
		seen[name] = inst + 1
		specs[i] = ProgramSpec{Name: name, Params: prog.Params(scale, workload.Seed(name, inst))}
	}
	return specs, nil
}

// SpecsForPrograms builds specs for an arbitrary program-name list at the
// given scale, instancing repeated names like SpecsForWorkload does. This
// is how the Fleet16 mix of the Scale16 configuration is materialised.
func SpecsForPrograms(names []string, scale float64) ([]ProgramSpec, error) {
	specs := make([]ProgramSpec, len(names))
	seen := map[string]int{}
	for i, name := range names {
		prog, err := workload.ProgramByName(name)
		if err != nil {
			return nil, err
		}
		inst := seen[name]
		seen[name] = inst + 1
		specs[i] = ProgramSpec{Name: name, Params: prog.Params(scale, workload.Seed(name, inst))}
	}
	return specs, nil
}

// SpecForProgram builds a single program spec at the given scale.
func SpecForProgram(name string, scale float64) (ProgramSpec, error) {
	prog, err := workload.ProgramByName(name)
	if err != nil {
		return ProgramSpec{}, err
	}
	return ProgramSpec{Name: name, Params: prog.Params(scale, workload.Seed(name, 0))}, nil
}

// CoreResult is the per-program outcome of a run.
type CoreResult struct {
	Program      string
	Instructions int64
	// IPC is throughput over the whole run, including the repeats that
	// keep competition alive after the program's first completion.
	IPC float64
	// FirstIPC is the instruction budget over the first-completion time —
	// the quantity slowdowns are computed from: with the same budget in
	// the stand-alone run, cold-start effects cancel in the ratio.
	FirstIPC float64
	// IPCCI95 is the 95% confidence half-width on IPC estimated from the
	// per-window samples of an interval-sampled run (Config.SampleFraction
	// in (0,1)); 0 for full-fidelity runs, where IPC is exact.
	IPCCI95    float64
	Served     int64
	M1Fraction float64
	AvgReadLat float64
	// ReadLatP50/P95/P99 are approximate read-latency quantiles (cycles).
	ReadLatP50     float64
	ReadLatP95     float64
	ReadLatP99     float64
	STCHitRate     float64
	Swaps          int64
	L3MPKI         float64
	Repeats        int64
	FirstRunCycles int64
}

// Result is the outcome of one simulation.
//
// Serialisation contract: every field that carries simulation output is
// an exported plain value (ints, floats, strings, value structs), so a
// Result round-trips through encoding/json exactly — int64 counters are
// decoded digit-for-digit and float64 metrics use Go's shortest
// round-trip encoding. The profess run cache's persistent tier depends on
// this to serve byte-identical figures from disk; TestResultRoundTrips
// pins it. Telemetry is the one deliberate exception: a stateful sampler
// excluded from JSON (and such runs are never cached).
type Result struct {
	Scheme     string
	Cycles     int64
	PerCore    []CoreResult
	Counts     mem.EventCounts
	EnergyEff  float64 // requests per second per watt
	Watts      float64
	STCHitRate float64
	STReads    int64
	STWrites   int64
	// SwapFraction is swaps among all served demand requests.
	SwapFraction float64
	L3HitRate    float64
	TimedOut     bool
	// Sampling records the interval-sampling parameters and window count
	// when the run executed on the sampled tier; zero for full runs.
	Sampling SampleInfo
	// Resilience tallies fault injection and graceful degradation; zero
	// for a fault-free run.
	Resilience stats.Resilience
	// NVM reports M2 write wear and the lifetime projected from it.
	NVM NVMWear
	// ClusterDone, for clustered runs (Config.Clusters > 1), holds the
	// cycle at which each cluster's programs first completed, as recorded
	// by the cross-shard completion broadcast (0 = timed out first).
	// Empty for classic single-machine runs.
	ClusterDone []int64 `json:",omitempty"`
	// Telemetry holds the per-epoch sampler when Config.TelemetryEvery > 0;
	// nil otherwise. Excluded from the JSON summary — export it separately
	// via WriteJSONL/WriteCSV.
	Telemetry *telemetry.Sampler `json:"-"`
}

// IPCs returns the per-core IPC vector.
func (r *Result) IPCs() []float64 {
	out := make([]float64, len(r.PerCore))
	for i, c := range r.PerCore {
		out[i] = c.IPC
	}
	return out
}

// l3Frontend adapts the shared L3 + memory controller to the cpu.Memory
// interface. L3 hits complete after the L3 latency; misses allocate
// (write-allocate) and fetch the line from the hybrid memory; dirty
// victims are written back asynchronously.
type l3Frontend struct {
	l3     *cache.Cache
	hitLat int64
	ctl    *hybrid.Controller
	sched  event.Scheduler

	perCoreHits   []int64
	perCoreMisses []int64
}

// Access implements cpu.Memory. The (done, token) pair is threaded through
// unchanged — to the event calendar on a hit, to the controller's
// handler-based submit path on a miss — so no closure is allocated on
// either path.
func (f *l3Frontend) Access(coreID int, addr int64, write bool, done event.Handler, token int64) {
	hit, ev, evicted := f.l3.Access(addr, write)
	if evicted && ev.Dirty {
		// Posted writeback: the core does not wait for it.
		f.ctl.Submit(coreID, ev.Addr, true, nil)
	}
	if hit {
		f.perCoreHits[coreID]++
		f.sched.Schedule(f.sched.Now()+f.hitLat, done, token, nil)
		return
	}
	f.perCoreMisses[coreID]++
	f.ctl.SubmitHandler(coreID, addr, false, done, token)
}

// System is a fully-wired simulated machine, exposed so examples and tests
// can drive it directly; Run wraps the common whole-workload flow.
type System struct {
	Cfg    Config
	Queue  *event.Queue
	Ctl    *hybrid.Controller
	Alloc  *hybrid.Allocator
	L3     *cache.Cache
	Cores  []*cpu.Core
	Front  *l3Frontend
	Policy hybrid.Policy
	// Inj is the root fault injector; nil unless Cfg.Faults is enabled.
	Inj *fault.Injector
	// Telemetry is the per-epoch sampler; nil unless Cfg.TelemetryEvery > 0.
	Telemetry *telemetry.Sampler
	specs     []ProgramSpec
	// coreProg maps a hardware core (thread) to its program index; all
	// threads of one program share counters, regions and statistics.
	coreProg []int
}

// NewSystem builds the machine for the given programs and policy.
func NewSystem(cfg Config, specs []ProgramSpec, policy hybrid.Policy) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	totalThreads := 0
	for _, s := range specs {
		totalThreads += s.threads()
	}
	if len(specs) == 0 || totalThreads > cfg.Cores {
		return nil, fmt.Errorf("sim: %d threads do not fit %d cores", totalThreads, cfg.Cores)
	}
	q := &event.Queue{}

	layout, err := hybrid.NewLayout(cfg.M1Capacity, cfg.Channels, cfg.Regions, cfg.M2Slots)
	if err != nil {
		return nil, err
	}
	alloc, err := hybrid.NewAllocator(layout, len(specs), cfg.Seed)
	if err != nil {
		return nil, err
	}

	chans := make([]*mem.Channel, cfg.Channels)
	m1Per := cfg.M1Capacity / int64(cfg.Channels)
	for i := range chans {
		chCfg := mem.DefaultChannelConfig(m1Per+layout.STBytesPerChannel(), m1Per*int64(cfg.M2Slots))
		chCfg.BlockBytes = layout.BlockBytes
		if cfg.M2TWRFactor > 0 && cfg.M2TWRFactor != 1 {
			chCfg.M2Timing.TWR = int64(float64(chCfg.M2Timing.TWR) * cfg.M2TWRFactor)
		}
		chans[i] = mem.NewChannel(chCfg, q)
	}

	ctl, err := hybrid.NewController(hybrid.ControllerConfig{
		Layout:         layout,
		STCEntries:     cfg.STCEntries,
		STCWays:        cfg.STCWays,
		NumCores:       len(specs),
		ModelSTTraffic: cfg.ModelSTTraffic,
	}, chans, alloc, policy, q)
	if err != nil {
		return nil, err
	}

	// Fault injection: only an enabled plan wires an injector, so the zero
	// plan stays bit-identical to a fault-free build. Each consumer gets
	// its own salted fork: per-component schedules then do not depend on
	// how the events of other components interleave.
	var inj *fault.Injector
	if cfg.Faults.Enabled() {
		inj = fault.NewInjector(cfg.Faults)
		for i, ch := range chans {
			ch.SetFaultInjector(inj.Fork(uint64(i + 1)))
		}
		ctl.SetFaultInjector(inj.Fork(0x100))
		if fp, ok := policy.(interface{ SetFaultInjector(*fault.Injector) }); ok {
			fp.SetFaultInjector(inj.Fork(0x200))
		}
	}

	l3 := cache.New(cache.ConfigForCapacity(cfg.L3Capacity, cfg.L3Ways))
	front := &l3Frontend{
		l3: l3, hitLat: cfg.L3HitLatency, ctl: ctl, sched: q,
		perCoreHits:   make([]int64, len(specs)),
		perCoreMisses: make([]int64, len(specs)),
	}

	sys := &System{Cfg: cfg, Queue: q, Ctl: ctl, Alloc: alloc, L3: l3, Front: front, Policy: policy, Inj: inj, specs: specs}
	if err := sys.buildCores(); err != nil {
		return nil, err
	}
	if err := sys.wireTelemetry(); err != nil {
		return nil, err
	}
	return sys, nil
}

// buildCores materialises the per-program cores: one address space per
// program (allocated from s.Alloc), one trace generator per thread, one
// cpu core per thread. It assumes s.Alloc holds every frame free — a
// freshly built or freshly Reset allocator — and is shared by NewSystem
// and the arena's in-place reset, so both construct the exact same cores
// for the same (cfg, specs, seed).
func (s *System) buildCores() error {
	layout := s.Ctl.Layout()
	for i := range s.Cores {
		s.Cores[i] = nil
	}
	s.Cores = s.Cores[:0]
	s.coreProg = s.coreProg[:0]
	for i, spec := range s.specs {
		if spec.Source != nil {
			if spec.threads() > 1 {
				return fmt.Errorf("sim: %s: a replay Source cannot drive multiple threads", spec.Name)
			}
			if s.Cfg.SamplingOn() {
				return fmt.Errorf("sim: %s: interval sampling does not support trace replay Sources; run the capture at full fidelity (SampleFraction 0 or 1)", spec.Name)
			}
			spec.Params.Footprint = spec.Source.Footprint()
		}
		// One address space per program, shared by its threads.
		vpages := spec.Params.Footprint / layout.PageBytes
		vmap, err := s.Alloc.Alloc(i, vpages)
		if err != nil {
			return err
		}
		for th := 0; th < spec.threads(); th++ {
			var gen trace.Source
			if spec.Source != nil {
				gen = spec.Source
			} else {
				params := spec.Params
				if th > 0 {
					params.Seed = spec.Params.Seed ^ (uint64(th) * 0xA24BAED4963EE407)
				}
				g, err := trace.NewGenerator(params)
				if err != nil {
					return err
				}
				gen = g
			}
			// The cpu core carries the PROGRAM index: every downstream
			// counter (controller stats, RSM, MDM, L3 attribution) sees
			// the threads as one program (§3.1.1).
			c, err := cpu.New(i, s.Cfg.CoreCfg, gen, vmap, layout.PageBytes, s.Cfg.Instructions, s.Front, s.Queue)
			if err != nil {
				return err
			}
			s.Cores = append(s.Cores, c)
			s.coreProg = append(s.coreProg, i)
		}
	}
	return nil
}

// wireTelemetry builds and starts the per-epoch sampler when
// Cfg.TelemetryEvery > 0. Only a positive epoch builds a sampler, so the
// default configuration schedules no events and stays bit- and
// cycle-identical to a build without the subsystem. Sampling itself never
// mutates simulated state, so even a telemetry-on run produces the same
// Result. The sampler is always freshly built — it escapes through
// Result.Telemetry, so it can never be pooled with the machine.
func (s *System) wireTelemetry() error {
	s.Telemetry = nil
	if s.Cfg.TelemetryEvery <= 0 {
		return nil
	}
	tel, err := telemetry.New(telemetry.Config{Every: s.Cfg.TelemetryEvery, Capacity: s.Cfg.TelemetryCapacity})
	if err != nil {
		return err
	}
	for i, spec := range s.specs {
		i, name := i, spec.Name
		var prevInstr, prevCycle int64
		tel.Gauge(fmt.Sprintf("p%d.%s.ipc", i, name), func(now int64) float64 {
			var instr int64
			for ci, c := range s.Cores {
				if s.coreProg[ci] == i {
					instr += c.Instructions()
				}
			}
			dI, dC := instr-prevInstr, now-prevCycle
			prevInstr, prevCycle = instr, now
			if dC <= 0 {
				return 0
			}
			return float64(dI) / float64(dC)
		})
	}
	s.Ctl.RegisterTelemetry(tel)
	for ci, ch := range s.Ctl.Channels() {
		ch.RegisterTelemetry(tel, fmt.Sprintf("chan%d", ci))
	}
	if tp, ok := s.Policy.(interface{ RegisterTelemetry(*telemetry.Sampler) }); ok {
		tp.RegisterTelemetry(tel)
	}
	tel.Start(s.Queue)
	s.Telemetry = tel
	return nil
}

// watchdogCheckEvents is how often (in processed events) RunContext polls
// the context and the no-progress watchdog; watchdogStaleChecks is how
// many consecutive checks may observe a frozen clock before the run is
// declared wedged (~1M events at the same cycle).
const (
	watchdogCheckEvents = 16384
	watchdogStaleChecks = 64
)

// Run executes until every program completed its first run (repeating
// faster programs to keep competition alive, per §4.2), then gathers the
// results.
func (s *System) Run() (*Result, error) { return s.RunContext(context.Background()) }

// RunContext is Run honouring the context's deadline/cancellation, both
// checked periodically inside the event loop, plus a no-progress watchdog:
// a simulation that burns events without ever advancing the clock (a bug
// or a pathological fault plan) is aborted with an error instead of
// spinning forever.
func (s *System) RunContext(ctx context.Context) (*Result, error) {
	if s.Cfg.SamplingOn() {
		return s.runSampled(ctx)
	}
	remaining := s.startCores(nil)
	timedOut := false
	var (
		events  int64
		lastNow int64 = -1
		stale   int
		runErr  error
	)
	s.Queue.RunUntil(func() bool {
		if *remaining <= 0 {
			return true
		}
		if s.Cfg.MaxCycles > 0 && s.Queue.Now() >= s.Cfg.MaxCycles {
			timedOut = true
			return true
		}
		events++
		if events%watchdogCheckEvents == 0 {
			if err := ctx.Err(); err != nil {
				runErr = fmt.Errorf("sim: aborted at cycle %d: %w", s.Queue.Now(), err)
				return true
			}
			if now := s.Queue.Now(); now == lastNow {
				stale++
				if stale >= watchdogStaleChecks {
					runErr = fmt.Errorf("sim: no progress: %d events without advancing past cycle %d",
						int64(stale)*watchdogCheckEvents, now)
					return true
				}
			} else {
				lastNow = now
				stale = 0
			}
		}
		return false
	})
	for _, c := range s.Cores {
		c.Stop()
	}
	if runErr != nil {
		return nil, runErr
	}
	return s.gather(timedOut)
}

// startCores arms every core with the first-completion bookkeeping and
// returns a counter that reaches zero once every program has completed its
// first run. onAllDone, when non-nil, fires at that moment with the
// completing cycle — the hook the clustered runner uses to publish a
// cluster's completion across shards.
func (s *System) startCores(onAllDone func(now int64)) *int {
	threadsLeft := make([]int, len(s.specs))
	for _, p := range s.coreProg {
		threadsLeft[p]++
	}
	remaining := new(int)
	*remaining = len(s.specs)
	for ci, c := range s.Cores {
		p := s.coreProg[ci]
		c.Start(func(now int64) {
			threadsLeft[p]--
			if threadsLeft[p] == 0 {
				*remaining--
				if *remaining == 0 && onAllDone != nil {
					onAllDone(now)
				}
			}
		})
	}
	return remaining
}

// gather stops nothing and assumes the event loop has quiesced: it flushes
// the STCs and folds the machine's counters into a Result. Shared by the
// single-machine run loop and the per-cluster collection of a clustered
// run.
func (s *System) gather(timedOut bool) (*Result, error) {
	s.Ctl.FlushSTCs()

	cycles := s.Queue.Now()
	if cycles == 0 {
		return nil, fmt.Errorf("sim: simulation made no progress")
	}
	s.Telemetry.Finish(cycles)
	res := &Result{
		Scheme:   s.Policy.Name(),
		Cycles:   cycles,
		TimedOut: timedOut,
		Counts:   s.Ctl.Counts(),
		STReads:  s.Ctl.STReads,
		STWrites: s.Ctl.STWrites,
	}
	res.STCHitRate = s.Ctl.STCHitRate()
	res.L3HitRate = s.L3.HitRate()
	if demand := res.Counts.DemandAccesses(); demand > 0 {
		res.SwapFraction = float64(res.Counts.Swaps) / float64(demand)
	}
	rep := s.Cfg.Energy.Evaluate(res.Counts, cycles, s.Cfg.Channels)
	res.EnergyEff = rep.Efficiency()
	res.Watts = rep.Watts()
	res.NVM = nvmWear(s.Ctl.Channels(), cycles)

	res.Telemetry = s.Telemetry
	res.Resilience = s.Ctl.Resilience
	if s.Inj != nil {
		counts := s.Inj.Counts()
		res.Resilience.InjectedNVMReadFaults = counts[fault.NVMReadTransient]
		res.Resilience.InjectedNVMWriteFaults = counts[fault.NVMWriteTransient]
		res.Resilience.InjectedStalls = counts[fault.ChannelStall]
		res.Resilience.InjectedStallCycles = counts[fault.ChannelStall] * s.Inj.Plan().EffectiveStallCycles()
		res.Resilience.InjectedQACCorruptions = counts[fault.QACCorruption]
		res.Resilience.InjectedSFCorruptions = counts[fault.SFCorruption]
	}
	if rp, ok := s.Policy.(interface{ ResilienceStats() stats.Resilience }); ok {
		res.Resilience.Add(rp.ResilienceStats())
	}

	for i, spec := range s.specs {
		// Aggregate the program's threads (§3.1.1: they are one program).
		var instr, firstMax, repeats int64
		repeats = -1
		for ci, c := range s.Cores {
			if s.coreProg[ci] != i {
				continue
			}
			instr += c.Instructions()
			if c.FirstRunCycles > firstMax {
				firstMax = c.FirstRunCycles
			}
			if repeats < 0 || c.Repeats < repeats {
				repeats = c.Repeats
			}
		}
		cs := s.Ctl.Cores[i]
		cr := CoreResult{
			Program:        spec.Name,
			Instructions:   instr,
			IPC:            float64(instr) / float64(cycles),
			Served:         cs.Served,
			M1Fraction:     cs.M1Fraction(),
			AvgReadLat:     cs.AvgReadLatency(),
			ReadLatP50:     s.Ctl.ReadLatencyQuantile(i, 0.50),
			ReadLatP95:     s.Ctl.ReadLatencyQuantile(i, 0.95),
			ReadLatP99:     s.Ctl.ReadLatencyQuantile(i, 0.99),
			STCHitRate:     cs.STCHitRate(),
			Swaps:          cs.Swaps,
			Repeats:        repeats,
			FirstRunCycles: firstMax,
		}
		if firstMax > 0 {
			cr.FirstIPC = float64(s.Cfg.Instructions*int64(spec.threads())) / float64(firstMax)
		} else {
			cr.FirstIPC = cr.IPC // timed out before the first completion
		}
		if instr > 0 {
			cr.L3MPKI = float64(s.Front.perCoreMisses[i]) / float64(instr) * 1000
		}
		res.PerCore = append(res.PerCore, cr)
	}
	return res, nil
}

// Run builds and runs a system in one call.
func Run(cfg Config, specs []ProgramSpec, scheme Scheme) (*Result, error) {
	return RunContext(context.Background(), cfg, specs, scheme)
}

// RunContext builds and runs a system in one call, honouring the context.
// A configuration with Clusters > 1 runs on the sharded engine — one
// timing wheel per cluster, Config.Shards worker goroutines — and is
// byte-identical for every shard count.
func RunContext(ctx context.Context, cfg Config, specs []ProgramSpec, scheme Scheme) (*Result, error) {
	if cfg.Clusters > 1 {
		return runClustered(ctx, cfg, specs, scheme, nil)
	}
	policy, err := NewPolicy(scheme, len(specs), cfg.Scale)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg, specs, policy)
	if err != nil {
		return nil, err
	}
	return sys.RunContext(ctx)
}
