package sim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestResultRoundTrips pins the Result serialisation contract the
// persistent run cache depends on: a simulated Result encoded to JSON and
// decoded back must be deeply identical, so figures rendered from a disk
// cache entry are byte-for-byte the figures of the original run.
func TestResultRoundTrips(t *testing.T) {
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 50_000
	spec, err := SpecForProgram("mcf", cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, []ProgramSpec{spec}, SchemePoM)
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("Result must serialise: %v", err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Result must deserialise: %v", err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Errorf("Result did not round-trip through JSON:\n got %+v\nwant %+v", back, *res)
	}

	// A second encode must reproduce the same bytes — the property the
	// disk tier's checksum (and byte-identical figure rendering) rests on.
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("re-encoding a decoded Result changed its bytes")
	}
}
