// Package sim assembles the full simulated system of Table 8 — cores,
// shared L3, hybrid memory controller, channels — and runs single- and
// multi-program experiments, producing the paper's figures of merit.
package sim

import (
	"fmt"

	"profess/internal/cpu"
	"profess/internal/energy"
	"profess/internal/fault"
)

// Config describes one simulated system. All capacities are bytes.
type Config struct {
	Cores    int
	Channels int
	// M1Capacity is the total M1 block area across channels; M2 capacity
	// follows from M2Slots (the 1:8 ratio of §2.2 by default).
	M1Capacity int64
	M2Slots    int
	Regions    int

	L3Capacity   int64
	L3Ways       int
	L3HitLatency int64

	// STCEntries is the total Swap-group Table Cache capacity in entries
	// (8 B each); STCWays its associativity (Table 8: 8).
	STCEntries int
	STCWays    int

	// Clusters partitions the machine into that many independent
	// sub-machines ("sockets"): each cluster owns Cores/Clusters cores, its
	// own L3 slice, controller, Channels/Clusters channels, policy instance
	// and timing wheel, and the clusters advance in lockstep epochs (see
	// internal/event's shard engine). 0 or 1 is the classic single machine.
	// Clusters is a semantic knob — it changes the simulated topology and
	// therefore the results — so it participates in run-cache keys.
	Clusters int
	// Shards caps the worker goroutines driving the cluster wheels of a
	// clustered run. It is a pure speed knob: results are byte-identical
	// for every value, including 1 (the single-threaded verification mode,
	// also the default). Ignored when Clusters <= 1; excluded from
	// run-cache keys.
	Shards int

	CoreCfg cpu.Config
	// Instructions is the per-run instruction budget per program.
	Instructions int64
	// MaxCycles is a safety stop (0 = no limit).
	MaxCycles int64

	// SampleFraction, when in (0, 1), enables the interval-sampling
	// execution mode: only that fraction of simulated time runs under the
	// full cycle model (short detailed windows on a seeded deterministic
	// schedule), and the spans between windows fast-forward functionally —
	// cores replay their generators against closed-form channel latencies
	// while all history-carrying state keeps warming. 0 (the default) and
	// any value >= 1 run the classic full-fidelity simulation; a fraction
	// of exactly 1.0 is therefore byte-identical to a full run by
	// construction. Sampling is a semantic knob (results are estimates),
	// so it participates in run-cache keys — but only when active.
	SampleFraction float64
	// SampleWindow is the detailed-window length in cycles for the
	// sampled mode (DefaultSampleWindow when 0).
	SampleWindow int64

	ModelSTTraffic bool
	Seed           uint64
	// Scale records the capacity scale relative to the paper's system
	// (1.0 = Table 8); policy defaults (e.g. RSM's M_samp) derive from it.
	Scale float64

	// M2TWRFactor scales M2's write-recovery latency for the §5.2
	// sensitivity study (1.0 = Table 8's t_WR_M2 = 275 ns).
	M2TWRFactor float64

	// Faults is the fault-injection plan. The zero plan wires no injector
	// and the simulation stays bit-identical to a fault-free build.
	Faults fault.Plan

	// TelemetryEvery enables the per-epoch telemetry sampler: every N CPU
	// cycles the registered gauges and counters are snapshotted into
	// Result.Telemetry. 0 disables telemetry entirely — no sampler is
	// built, no events are scheduled, and the run stays bit-identical and
	// cycle-identical to a build without the subsystem.
	TelemetryEvery int64
	// TelemetryCapacity bounds the in-memory epoch ring
	// (telemetry.DefaultCapacity when 0); the oldest epochs are evicted
	// once it fills.
	TelemetryCapacity int

	Energy energy.Model
}

// WithM1Ratio derives a configuration with a different M1:M2 capacity
// ratio (1:n) while keeping the M2 capacity fixed, matching the §5.2/§5.4
// sensitivity methodology: at 1:4 M1 doubles, at 1:16 it halves.
func (c Config) WithM1Ratio(n int) Config {
	if n <= 0 {
		return c
	}
	m2 := c.M1Capacity * int64(c.M2Slots)
	c.M2Slots = n
	c.M1Capacity = scaleBytes(m2/int64(n), 1, int64(c.Channels)*2048)
	return c
}

// PaperScale is the default capacity scale of this reproduction: 1/32 of
// Table 8, preserving every ratio that drives the results (see DESIGN.md).
const PaperScale = 1.0 / 32

// MultiCoreConfig returns the quad-core evaluation system of Table 8 at
// the given scale: 4 cores, 2 channels, 256 MB M1 / 2 GB M2, 8 MB L3,
// 64-KB STC (8K entries), 500M instructions per program.
func MultiCoreConfig(scale float64) Config {
	return Config{
		Cores:          4,
		Channels:       2,
		M1Capacity:     scaleBytes(256<<20, scale, 2*2048),
		M2Slots:        8,
		Regions:        128,
		L3Capacity:     scaleBytes(8<<20, scale, 16*64),
		L3Ways:         16,
		L3HitLatency:   20,
		STCEntries:     scaleCount(8192, scale, 2*8),
		STCWays:        8,
		CoreCfg:        cpu.DefaultConfig(),
		Instructions:   int64(500e6 * scale),
		ModelSTTraffic: true,
		Seed:           1,
		Scale:          scale,
		Energy:         energy.Default(),
	}
}

// SingleCoreConfig returns the single-core system of §4.1 at the given
// scale: one channel and capacities of L3, STC, M1 and M2 scaled to a
// quarter of the quad-core system (64 MB M1, 2 MB L3, 32-KB STC).
func SingleCoreConfig(scale float64) Config {
	c := MultiCoreConfig(scale)
	c.Cores = 1
	c.Channels = 1
	c.M1Capacity = scaleBytes(64<<20, scale, 2048)
	c.L3Capacity = scaleBytes(2<<20, scale, 16*64)
	c.STCEntries = scaleCount(4096, scale, 8)
	return c
}

// Scale16Config returns the sixteen-program "datacenter node" scaling
// showcase at the given scale: 8 clusters of 2 cores + 1 channel each,
// 1 GB M1 / 8 GB M2 (GB-class at scale 1), 32 MB L3 and a 128-KB STC,
// all sliced evenly across the clusters. Pair it with workload.Fleet16;
// drive the worker count with Config.Shards.
func Scale16Config(scale float64) Config {
	return Config{
		Cores:    16,
		Channels: 8,
		Clusters: 8,
		// Quanta carry an extra ×8 so every capacity stays divisible by
		// the cluster count after scaling.
		M1Capacity:     scaleBytes(1<<30, scale, 8*2048*8),
		M2Slots:        8,
		Regions:        256,
		L3Capacity:     scaleBytes(32<<20, scale, 16*64*8),
		L3Ways:         16,
		L3HitLatency:   20,
		STCEntries:     scaleCount(16384, scale, 8*8*8),
		STCWays:        8,
		CoreCfg:        cpu.DefaultConfig(),
		Instructions:   int64(500e6 * scale),
		ModelSTTraffic: true,
		Seed:           1,
		Scale:          scale,
		Energy:         energy.Default(),
	}
}

// scaleBytes scales a capacity, rounding up to a multiple of quantum.
func scaleBytes(base int64, scale float64, quantum int64) int64 {
	v := int64(float64(base) * scale)
	if v < quantum {
		v = quantum
	}
	if r := v % quantum; r != 0 {
		v += quantum - r
	}
	return v
}

// scaleCount scales an entry count, rounding up to a multiple of quantum.
func scaleCount(base int, scale float64, quantum int) int {
	v := int(float64(base) * scale)
	if v < quantum {
		v = quantum
	}
	if r := v % quantum; r != 0 {
		v += quantum - r
	}
	return v
}

// DefaultSampleWindow is the detailed-window length of the sampled
// execution mode when Config.SampleWindow is 0. The restart transient
// after each fast-forward span decays in absolute time (~26 kilocycles,
// set by the swap latency; see warmupCycles), so windows must be long
// enough that the measured span dominates the warm-up; 240k was the
// accuracy/speedup sweet spot in the window sweep behind
// testdata/sample_envelope.json. Short diagnostic runs that need many
// windows should set Config.SampleWindow explicitly.
const DefaultSampleWindow int64 = 240_000

// SamplingOn reports whether the interval-sampling execution mode is
// active: a fraction strictly between 0 and 1. Zero disables it; 1 (or
// more) means "sample everything", which is served by the classic full
// run and is byte-identical to it.
func (c Config) SamplingOn() bool {
	return c.SampleFraction > 0 && c.SampleFraction < 1
}

// EffectiveSampleWindow resolves the detailed-window length, applying the
// default.
func (c Config) EffectiveSampleWindow() int64 {
	if c.SampleWindow > 0 {
		return c.SampleWindow
	}
	return DefaultSampleWindow
}

// Validate sanity-checks a configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sim: need at least one core")
	}
	if c.Channels <= 0 {
		return fmt.Errorf("sim: need at least one channel")
	}
	if c.Instructions <= 0 {
		return fmt.Errorf("sim: need a positive instruction budget")
	}
	if c.M2Slots <= 0 {
		return fmt.Errorf("sim: need at least one M2 slot per group")
	}
	if c.Regions <= c.Cores {
		return fmt.Errorf("sim: %d regions cannot host %d private regions plus shared ones", c.Regions, c.Cores)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.TelemetryEvery < 0 {
		return fmt.Errorf("sim: negative telemetry epoch %d", c.TelemetryEvery)
	}
	if c.TelemetryCapacity < 0 {
		return fmt.Errorf("sim: negative telemetry capacity %d", c.TelemetryCapacity)
	}
	if c.Shards < 0 {
		return fmt.Errorf("sim: negative shard count %d", c.Shards)
	}
	if c.SampleFraction < 0 || c.SampleFraction != c.SampleFraction {
		return fmt.Errorf("sim: sample fraction %v must be non-negative (0 disables sampling, >= 1 runs full fidelity)", c.SampleFraction)
	}
	if c.SampleWindow < 0 {
		return fmt.Errorf("sim: negative sample window %d", c.SampleWindow)
	}
	if c.SamplingOn() {
		if c.Clusters > 1 {
			return fmt.Errorf("sim: interval sampling (fraction %v) cannot run on a clustered machine (%d clusters): the epoch-barrier engine has no fast-forward mode — drop Clusters or SampleFraction", c.SampleFraction, c.Clusters)
		}
		if c.TelemetryEvery > 0 {
			return fmt.Errorf("sim: interval sampling (fraction %v) cannot run with telemetry (epoch %d): epochs inside fast-forward spans would sample half-advanced state — drop TelemetryEvery or SampleFraction", c.SampleFraction, c.TelemetryEvery)
		}
	}
	if c.Clusters > 1 {
		n := c.Clusters
		if c.Cores%n != 0 || c.Channels%n != 0 {
			return fmt.Errorf("sim: %d clusters must divide cores (%d) and channels (%d) evenly",
				n, c.Cores, c.Channels)
		}
		if c.M1Capacity%int64(n) != 0 || c.L3Capacity%int64(n) != 0 {
			return fmt.Errorf("sim: %d clusters must divide M1 (%d B) and L3 (%d B) evenly",
				n, c.M1Capacity, c.L3Capacity)
		}
		if c.STCEntries%n != 0 || c.Regions%n != 0 {
			return fmt.Errorf("sim: %d clusters must divide STC entries (%d) and regions (%d) evenly",
				n, c.STCEntries, c.Regions)
		}
		if c.Regions/n <= c.Cores/n {
			return fmt.Errorf("sim: %d regions per cluster cannot host %d cores' private regions plus shared ones",
				c.Regions/n, c.Cores/n)
		}
	}
	return nil
}

// clusterSlice derives cluster k's share of a clustered configuration: a
// single-machine config with 1/Clusters of every partitioned resource and
// a cluster-salted seed, validated by the caller's Validate on the parent.
func (c Config) clusterSlice(k int) Config {
	n := c.Clusters
	sub := c
	sub.Clusters = 1
	sub.Shards = 0
	sub.Cores = c.Cores / n
	sub.Channels = c.Channels / n
	sub.M1Capacity = c.M1Capacity / int64(n)
	sub.L3Capacity = c.L3Capacity / int64(n)
	sub.STCEntries = c.STCEntries / n
	sub.Regions = c.Regions / n
	// Distinct allocator/generator salt per cluster, derived so the whole
	// fleet stays a pure function of the parent seed.
	sub.Seed = c.Seed ^ (uint64(k+1) * 0x9E3779B97F4A7C15)
	return sub
}
