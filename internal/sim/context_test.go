package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRunContextCancellation(t *testing.T) {
	cfg := tinyConfig(4)
	cfg.Instructions = 50_000_000 // far more than the deadline allows
	specs, err := SpecsForWorkload(mustWorkload(t, "w02"), PaperScale)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must abort at the first check
	if _, err := RunContext(ctx, cfg, specs, SchemeMDM); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer dcancel()
	start := time.Now()
	if _, err := RunContext(dctx, cfg, specs, SchemeMDM); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadlined run returned %v, want context.DeadlineExceeded", err)
	}
	// The deadline must cut the run short well before the huge instruction
	// budget completes (allow generous slack for slow machines).
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("deadlined run took %v", elapsed)
	}
}

func TestRunContextBackgroundCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(4)
	specs, err := SpecsForWorkload(mustWorkload(t, "w02"), PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunContext(context.Background(), cfg, specs, SchemeMDM)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles simulated")
	}
}
