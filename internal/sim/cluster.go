package sim

import (
	"context"
	"fmt"

	"profess/internal/event"
	"profess/internal/mem"
	"profess/internal/telemetry"
)

// Clustered execution: a Config with Clusters > 1 describes a fleet of
// independent sub-machines ("sockets"), each a full System — cores, L3
// slice, controller, channels, policy — on its own timing wheel. The
// wheels advance in lockstep epochs on the event package's shard engine,
// with cross-cluster traffic (the completion broadcast below) travelling
// through epoch mailboxes in canonical order.
//
// Why clusters and not per-channel shards of one machine: inside a
// machine the front-end and its channels are coupled at zero latency —
// Controller.serve enqueues into a channel at the current cycle, and a
// completing request resumes its core synchronously — so the conservative
// lookahead between them is zero and any split would either deadlock or
// change results. A cluster is the unit that owns all of its zero-latency
// couplings, so shard = cluster is the finest decomposition for which
// parallel execution is byte-identical to the single-threaded order. On
// the Scale16 configuration each cluster owns exactly one channel, which
// makes the shards per-channel wheels with their slice of the front end.

// clusterEpochCycles is the epoch quantum: clusters synchronize every
// this many cycles. Cross-cluster messages target at least the current
// epoch horizon, so the effective lookahead is unbounded and the quantum
// trades barrier frequency against stop-detection granularity only — one
// wheel rotation keeps both negligible.
const clusterEpochCycles = 8192

// clusterDone is the payload of the completion broadcast: cluster's
// programs all finished their first run at the given cycle.
type clusterDone struct {
	cluster int
	cycle   int64
}

// fleetMonitor lives on cluster 0's wheel and records completion
// broadcasts in their canonical delivery order.
type fleetMonitor struct {
	order []*clusterDone
}

func (m *fleetMonitor) HandleEvent(now int64, _ int64, p any) {
	m.order = append(m.order, p.(*clusterDone))
}

// clusterState is the runner's per-cluster bookkeeping.
type clusterState struct {
	sys       *System
	remaining *int
	shardTel  *telemetry.Sampler

	doneAt   int64 // cycle every program first completed (0 = not yet)
	frozen   bool  // stopped stepping (MaxCycles reached)
	timedOut bool
	sendErr  error

	events  int64 // events dispatched, also the telemetry counter source
	lastNow int64
	stale   int
}

// runClustered executes a Clusters > 1 configuration on the shard engine.
// Results are a deterministic merge of the per-cluster results and are
// byte-identical for every Shards value. A non-nil arena supplies (and
// keeps) the per-cluster machines: cluster construction happens on this
// goroutine before the shard workers start and the workers all join
// before this function returns, so arena custody never overlaps a
// running fleet.
func runClustered(ctx context.Context, cfg Config, specs []ProgramSpec, scheme Scheme, arena *SystemArena) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Clusters
	if len(specs) == 0 || len(specs)%n != 0 {
		return nil, fmt.Errorf("sim: %d programs cannot split evenly across %d clusters", len(specs), n)
	}
	per := len(specs) / n

	states := make([]*clusterState, n)
	queues := make([]*event.Queue, n)
	for k := 0; k < n; k++ {
		sub := cfg.clusterSlice(k)
		policy, err := NewPolicy(scheme, per, cfg.Scale)
		if err != nil {
			return nil, err
		}
		sys, err := arena.clusterMachine(k, n, sub, specs[k*per:(k+1)*per], policy)
		if err != nil {
			return nil, fmt.Errorf("sim: cluster %d: %w", k, err)
		}
		st := &clusterState{sys: sys, lastNow: -1}
		if sub.TelemetryEvery > 0 {
			// A second, cluster-local sampler carries the shard engine's
			// occupancy series. Its values are pure simulation state
			// (events dispatched, queue depth), so clustered telemetry
			// stays byte-identical across worker counts; wall-clock stall
			// time lives in ShardGroup.Stats, outside the Result.
			tel, err := telemetry.New(telemetry.Config{Every: sub.TelemetryEvery, Capacity: sub.TelemetryCapacity})
			if err != nil {
				return nil, err
			}
			tel.Counter("shard.events", func() int64 { return st.events })
			tel.Gauge("shard.pending", func(int64) float64 { return float64(sys.Queue.Len()) })
			tel.Start(sys.Queue)
			st.shardTel = tel
		}
		states[k] = st
		queues[k] = sys.Queue
	}

	group, err := event.NewShardGroup(queues, clusterEpochCycles)
	if err != nil {
		return nil, err
	}
	monitor := &fleetMonitor{}
	for k, st := range states {
		k, st := k, st
		st.remaining = st.sys.startCores(func(now int64) {
			st.doneAt = now
			// Broadcast the completion to the fleet monitor on cluster 0:
			// the one cross-cluster message class of this topology. It
			// targets the current epoch horizon — the minimum cycle the
			// conservative protocol admits.
			if err := group.Send(k, 0, group.Horizon(), monitor, 0, &clusterDone{cluster: k, cycle: now}); err != nil && st.sendErr == nil {
				st.sendErr = err
			}
		})
	}

	step := func(k int, horizon int64) error {
		st := states[k]
		if st.frozen {
			return nil
		}
		q := st.sys.Queue
		for {
			t, ok := q.NextAt()
			if !ok || t >= horizon {
				return nil
			}
			q.Step()
			st.events++
			if st.sendErr != nil {
				return st.sendErr
			}
			if cfg.MaxCycles > 0 && q.Now() >= cfg.MaxCycles {
				st.frozen = true
				st.timedOut = *st.remaining > 0
				return nil
			}
			if st.events%watchdogCheckEvents == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("sim: cluster %d aborted at cycle %d: %w", k, q.Now(), err)
				}
				if now := q.Now(); now == st.lastNow {
					st.stale++
					if st.stale >= watchdogStaleChecks {
						return fmt.Errorf("sim: cluster %d: no progress: %d events without advancing past cycle %d",
							k, int64(st.stale)*watchdogCheckEvents, now)
					}
				} else {
					st.lastNow = now
					st.stale = 0
				}
			}
		}
	}

	// The barrier stops one epoch after every cluster has either completed
	// its first runs or frozen at MaxCycles: completion broadcasts sent in
	// the deciding epoch are delivered at its barrier and execute in the
	// grace epoch, so the monitor's record is complete before the stop.
	stopArmed := false
	barrier := func(horizon int64) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("sim: aborted at cycle %d: %w", horizon, err)
		}
		if stopArmed {
			return true, nil
		}
		for _, st := range states {
			if st.doneAt == 0 && !st.frozen {
				return false, nil
			}
		}
		stopArmed = true
		return false, nil
	}

	runErr := group.Run(cfg.Shards, step, barrier)
	for _, st := range states {
		for _, c := range st.sys.Cores {
			c.Stop()
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	return mergeClustered(cfg, states, monitor)
}

// mergeClustered folds the per-cluster results into one Result in cluster
// order — a pure function of deterministic inputs.
func mergeClustered(cfg Config, states []*clusterState, monitor *fleetMonitor) (*Result, error) {
	merged := &Result{ClusterDone: make([]int64, len(states))}
	var (
		stcHits, stcMisses int64
		l3Hits, l3Misses   int64
		chans              []*mem.Channel
		telParts           []telemetry.MergePart
	)
	for k, st := range states {
		res, err := st.sys.gather(st.timedOut)
		if err != nil {
			return nil, fmt.Errorf("sim: cluster %d: %w", k, err)
		}
		merged.Scheme = res.Scheme
		if res.Cycles > merged.Cycles {
			merged.Cycles = res.Cycles
		}
		merged.TimedOut = merged.TimedOut || res.TimedOut
		merged.PerCore = append(merged.PerCore, res.PerCore...)
		merged.Counts.Add(res.Counts)
		merged.STReads += res.STReads
		merged.STWrites += res.STWrites
		merged.Resilience.Add(res.Resilience)
		merged.ClusterDone[k] = st.doneAt
		for _, stc := range st.sys.Ctl.STCs() {
			stcHits += stc.Hits
			stcMisses += stc.Misses
		}
		l3Hits += st.sys.L3.Hits
		l3Misses += st.sys.L3.Misses
		chans = append(chans, st.sys.Ctl.Channels()...)
		if res.Telemetry != nil {
			st.shardTel.Finish(res.Cycles)
			telParts = append(telParts,
				telemetry.MergePart{Prefix: fmt.Sprintf("c%d.", k), S: res.Telemetry},
				telemetry.MergePart{Prefix: fmt.Sprintf("c%d.", k), S: st.shardTel})
		}
	}
	// Completion broadcasts carry the authoritative completion cycles;
	// they can only be missing when the monitor's own cluster froze at
	// MaxCycles before the grace epoch, where the state-side fallback
	// above already holds the same value.
	for _, d := range monitor.order {
		merged.ClusterDone[d.cluster] = d.cycle
	}
	if t := stcHits + stcMisses; t > 0 {
		merged.STCHitRate = float64(stcHits) / float64(t)
	}
	if t := l3Hits + l3Misses; t > 0 {
		merged.L3HitRate = float64(l3Hits) / float64(t)
	}
	if demand := merged.Counts.DemandAccesses(); demand > 0 {
		merged.SwapFraction = float64(merged.Counts.Swaps) / float64(demand)
	}
	rep := cfg.Energy.Evaluate(merged.Counts, merged.Cycles, cfg.Channels)
	merged.EnergyEff = rep.Efficiency()
	merged.Watts = rep.Watts()
	merged.NVM = nvmWear(chans, merged.Cycles)
	merged.Telemetry = telemetry.Merge(telParts)
	return merged, nil
}
