package sim

import (
	"fmt"

	"profess/internal/core"
	"profess/internal/hybrid"
	"profess/internal/migrate"
)

// Scheme names a migration policy.
type Scheme string

// The available schemes: the paper's baseline (PoM), its contribution in
// both forms (MDM standalone, full ProFess), the remaining Table 2
// algorithms, and the static no-migration reference.
const (
	SchemeStatic  Scheme = "static"
	SchemePoM     Scheme = "pom"
	SchemeCAMEO   Scheme = "cameo"
	SchemeSILCFM  Scheme = "silc-fm"
	SchemeMemPod  Scheme = "mempod"
	SchemeMDM     Scheme = "mdm"
	SchemeProFess Scheme = "profess"
)

// AllSchemes lists every scheme in presentation order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeStatic, SchemeCAMEO, SchemeSILCFM, SchemeMemPod, SchemePoM, SchemeMDM, SchemeProFess}
}

// NewPolicy builds the policy for a scheme, sized for numPrograms programs
// at the given capacity scale (which drives epoch/sampling durations).
func NewPolicy(s Scheme, numPrograms int, scale float64) (hybrid.Policy, error) {
	switch s {
	case SchemeStatic:
		return hybrid.NoMigration{}, nil
	case SchemePoM:
		cfg := migrate.DefaultPoMConfig()
		cfg.EpochAccesses = scaleEpoch(cfg.EpochAccesses, scale)
		return migrate.NewPoM(cfg), nil
	case SchemeCAMEO:
		return migrate.NewCAMEO(), nil
	case SchemeSILCFM:
		cfg := migrate.DefaultSILCFMConfig()
		cfg.AgeAccesses = scaleEpoch(cfg.AgeAccesses, scale)
		return migrate.NewSILCFM(cfg), nil
	case SchemeMemPod:
		return migrate.NewMemPod(migrate.DefaultMemPodConfig()), nil
	case SchemeMDM:
		return core.NewMDM(core.DefaultMDMConfig(numPrograms))
	case SchemeProFess:
		return core.NewProFess(core.DefaultProFessConfig(numPrograms, scale))
	}
	return nil, fmt.Errorf("sim: unknown scheme %q", s)
}

// scaleEpoch shrinks an access-count epoch with the capacity scale, with a
// floor that keeps estimates meaningful.
func scaleEpoch(base int64, scale float64) int64 {
	v := int64(float64(base) * scale)
	if v < 2048 {
		v = 2048
	}
	return v
}
