package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"profess/internal/workload"
)

// scale16TestConfig is the Scale16 system shrunk to test size.
func scale16TestConfig(t *testing.T, instructions int64) (Config, []ProgramSpec) {
	t.Helper()
	cfg := Scale16Config(PaperScale)
	cfg.Instructions = instructions
	specs, err := SpecsForPrograms(workload.Fleet16(), cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, specs
}

// runShards runs the fleet at the given worker count and returns the
// Result, its canonical JSON, and the telemetry JSONL (empty when
// telemetry is off).
func runShards(t *testing.T, cfg Config, specs []ProgramSpec, shards int) (*Result, []byte, []byte) {
	t.Helper()
	c := cfg
	c.Shards = shards
	res, err := Run(c, specs, SchemeProFess)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	js, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var tele bytes.Buffer
	if res.Telemetry != nil {
		if err := res.Telemetry.WriteJSONL(&tele); err != nil {
			t.Fatal(err)
		}
	}
	return res, js, tele.Bytes()
}

// TestShardCountSweepByteIdentical is the acceptance contract of the shard
// knob: a fixed-seed Scale16 run produces byte-identical Result JSON and
// byte-identical telemetry for -shards 1, 2, 4 and 8. Run under -race in
// CI (make shard-smoke), it also proves the worker fan-out is data-race
// free.
func TestShardCountSweepByteIdentical(t *testing.T) {
	cfg, specs := scale16TestConfig(t, 30_000)
	cfg.TelemetryEvery = 25_000
	res1, wantJS, wantTele := runShards(t, cfg, specs, 1)
	if len(wantTele) == 0 {
		t.Fatal("telemetry enabled but no epochs exported")
	}
	if len(res1.PerCore) != 16 {
		t.Fatalf("got %d per-core results, want 16", len(res1.PerCore))
	}
	for _, shards := range []int{2, 4, 8} {
		_, js, tele := runShards(t, cfg, specs, shards)
		if !bytes.Equal(js, wantJS) {
			t.Errorf("shards=%d: Result JSON diverged from shards=1\n got: %s\nwant: %s", shards, js, wantJS)
		}
		if !bytes.Equal(tele, wantTele) {
			t.Errorf("shards=%d: telemetry diverged from shards=1", shards)
		}
	}
}

// TestClusteredResultShape pins the clustered-only surfaces: per-cluster
// completion broadcasts land in ClusterDone, every cluster contributes its
// programs in spec order, and the merged telemetry carries the per-cluster
// prefixes including the shard occupancy series.
func TestClusteredResultShape(t *testing.T) {
	cfg, specs := scale16TestConfig(t, 20_000)
	cfg.TelemetryEvery = 20_000
	res, _, _ := runShards(t, cfg, specs, 4)
	if len(res.ClusterDone) != cfg.Clusters {
		t.Fatalf("ClusterDone has %d entries, want %d", len(res.ClusterDone), cfg.Clusters)
	}
	for k, c := range res.ClusterDone {
		if c <= 0 {
			t.Errorf("cluster %d never completed (ClusterDone=%d)", k, c)
		}
		if c > res.Cycles {
			t.Errorf("cluster %d completed at %d, after the merged run end %d", k, c, res.Cycles)
		}
	}
	for i, cr := range res.PerCore {
		if cr.Program != specs[i].Name {
			t.Errorf("PerCore[%d] is %s, want %s (cluster-order merge must preserve spec order)", i, cr.Program, specs[i].Name)
		}
		if cr.Instructions == 0 {
			t.Errorf("PerCore[%d] (%s) retired no instructions", i, cr.Program)
		}
	}
	names := strings.Join(res.Telemetry.Names(), ",")
	for _, want := range []string{"c0.p0.mcf.ipc", "c0.shard.events", "c7.shard.pending", "c7.chan0.m2_demand"} {
		if !strings.Contains(names, want) {
			t.Errorf("merged telemetry lacks %q (have %s)", want, names)
		}
	}
}

// TestClusteredHonoursContext: cancellation aborts a clustered run from
// whatever epoch it is in.
func TestClusteredHonoursContext(t *testing.T) {
	cfg, specs := scale16TestConfig(t, 5_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg, specs, SchemeProFess); err == nil {
		t.Fatal("cancelled clustered run returned no error")
	}
}

// TestClusteredMaxCycles: a cluster that cannot finish freezes at
// MaxCycles and flags the merged result, while the validation layer
// rejects non-divisible topologies outright.
func TestClusteredMaxCycles(t *testing.T) {
	cfg, specs := scale16TestConfig(t, 5_000_000)
	cfg.MaxCycles = 40_000
	res, err := Run(cfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("5M-instruction fleet finished within 40K cycles?")
	}
	if res.Cycles > cfg.MaxCycles+clusterEpochCycles {
		t.Errorf("frozen run reports %d cycles, beyond MaxCycles %d + one epoch", res.Cycles, cfg.MaxCycles)
	}

	bad := Scale16Config(PaperScale)
	bad.Cores = 15 // not divisible by 8 clusters
	if err := bad.Validate(); err == nil {
		t.Error("15 cores across 8 clusters validated")
	}
	bad = Scale16Config(PaperScale)
	bad.Shards = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative shard count validated")
	}
	if _, err := Run(Scale16Config(PaperScale), specs[:3], SchemeProFess); err == nil {
		t.Error("3 programs across 8 clusters ran")
	}
}

// TestClusterSliceDerivation pins the resource split: every partitioned
// capacity divides evenly and seeds differ per cluster.
func TestClusterSliceDerivation(t *testing.T) {
	cfg := Scale16Config(1)
	seeds := map[uint64]bool{}
	for k := 0; k < cfg.Clusters; k++ {
		sub := cfg.clusterSlice(k)
		if sub.Clusters != 1 || sub.Shards != 0 {
			t.Fatalf("cluster %d slice is itself clustered: %+v", k, sub)
		}
		if sub.Cores*cfg.Clusters != cfg.Cores || sub.Channels*cfg.Clusters != cfg.Channels {
			t.Fatalf("cluster %d core/channel split uneven", k)
		}
		if sub.M1Capacity*int64(cfg.Clusters) != cfg.M1Capacity || sub.L3Capacity*int64(cfg.Clusters) != cfg.L3Capacity {
			t.Fatalf("cluster %d capacity split uneven", k)
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("cluster %d slice invalid: %v", k, err)
		}
		if seeds[sub.Seed] {
			t.Fatalf("cluster %d reuses another cluster's seed", k)
		}
		seeds[sub.Seed] = true
	}
}
