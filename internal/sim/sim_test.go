package sim

import (
	"testing"
)

func TestConfigValidation(t *testing.T) {
	good := MultiCoreConfig(PaperScale)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := good
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores should fail")
	}
	bad = good
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Error("zero channels should fail")
	}
	bad = good
	bad.Instructions = 0
	if bad.Validate() == nil {
		t.Error("zero instructions should fail")
	}
	bad = good
	bad.Regions = 4
	if bad.Validate() == nil {
		t.Error("regions <= cores should fail")
	}
}

func TestConfigScaling(t *testing.T) {
	full := MultiCoreConfig(1)
	scaled := MultiCoreConfig(PaperScale)
	if full.M1Capacity != 256<<20 {
		t.Errorf("full M1 = %d", full.M1Capacity)
	}
	if scaled.M1Capacity != 8<<20 {
		t.Errorf("scaled M1 = %d", scaled.M1Capacity)
	}
	if full.STCEntries != 8192 || scaled.STCEntries != 256 {
		t.Errorf("STC entries = %d / %d", full.STCEntries, scaled.STCEntries)
	}
	// The STC:groups coverage ratio is scale-invariant: 8K entries for
	// 128K groups = 6.25% at both scales.
	fullCov := float64(full.STCEntries) / float64(full.M1Capacity/2048)
	scaledCov := float64(scaled.STCEntries) / float64(scaled.M1Capacity/2048)
	if fullCov != scaledCov {
		t.Errorf("coverage changed with scale: %v vs %v", fullCov, scaledCov)
	}

	single := SingleCoreConfig(PaperScale)
	if single.Cores != 1 || single.Channels != 1 {
		t.Error("single-core shape wrong")
	}
	if single.M1Capacity != 2<<20 {
		t.Errorf("single-core M1 = %d", single.M1Capacity)
	}
}

func TestWithM1Ratio(t *testing.T) {
	cfg := MultiCoreConfig(PaperScale) // M1 8 MB, M2 64 MB
	quarter := cfg.WithM1Ratio(4)
	if quarter.M2Slots != 4 {
		t.Errorf("slots = %d", quarter.M2Slots)
	}
	if quarter.M1Capacity != 16<<20 {
		t.Errorf("1:4 M1 = %d, want 16 MB (M2 fixed at 64 MB)", quarter.M1Capacity)
	}
	sixteenth := cfg.WithM1Ratio(16)
	if sixteenth.M1Capacity != 4<<20 {
		t.Errorf("1:16 M1 = %d, want 4 MB", sixteenth.M1Capacity)
	}
	if cfg.WithM1Ratio(0).M1Capacity != cfg.M1Capacity {
		t.Error("ratio 0 should be a no-op")
	}
}

func TestSchemeFactory(t *testing.T) {
	for _, s := range AllSchemes() {
		p, err := NewPolicy(s, 4, PaperScale)
		if err != nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%s: empty name", s)
		}
	}
	if _, err := NewPolicy("bogus", 4, PaperScale); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestSpecsForWorkload(t *testing.T) {
	specs, err := SpecsForWorkload(mustWorkload(t, "w16"), PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	// w16 repeats libquantum: the two instances must differ in seed.
	if specs[0].Name != "libquantum" || specs[1].Name != "libquantum" {
		t.Fatal("w16 should start with two libquantum instances")
	}
	if specs[0].Params.Seed == specs[1].Params.Seed {
		t.Error("repeated program instances must have distinct seeds")
	}
	if _, err := SpecForProgram("nosuch", PaperScale); err == nil {
		t.Error("unknown program should fail")
	}
}

func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 150_000
	spec, err := SpecForProgram("soplex", PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Run(cfg, []ProgramSpec{spec}, SchemeProFess)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Counts.Swaps != b.Counts.Swaps {
		t.Errorf("swaps differ: %d vs %d", a.Counts.Swaps, b.Counts.Swaps)
	}
	if a.PerCore[0].Instructions != b.PerCore[0].Instructions {
		t.Error("instruction counts differ")
	}
}

func TestRunRejectsBadShapes(t *testing.T) {
	cfg := tinyConfig(1)
	spec, _ := SpecForProgram("lbm", PaperScale)
	// Two programs on a single-core system.
	if _, err := Run(cfg, []ProgramSpec{spec, spec}, SchemePoM); err == nil {
		t.Error("more programs than cores should fail")
	}
	if _, err := Run(cfg, nil, SchemePoM); err == nil {
		t.Error("no programs should fail")
	}
}

func TestStaticPolicyServesMostFromM2(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 150_000
	spec, _ := SpecForProgram("milc", PaperScale)
	res, err := Run(cfg, []ProgramSpec{spec}, SchemeStatic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Swaps != 0 {
		t.Errorf("static policy swapped %d times", res.Counts.Swaps)
	}
	// milc's footprint dwarfs M1: without migration only ~1/9 of blocks
	// (the slot-0 residents) are served from M1.
	if f := res.PerCore[0].M1Fraction; f > 0.3 {
		t.Errorf("M1 fraction %v too high for static management", f)
	}
}

func TestMigrationRaisesM1Fraction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 150_000
	spec, _ := SpecForProgram("lbm", PaperScale)
	static, err := Run(cfg, []ProgramSpec{spec}, SchemeStatic)
	if err != nil {
		t.Fatal(err)
	}
	mdm, err := Run(cfg, []ProgramSpec{spec}, SchemeMDM)
	if err != nil {
		t.Fatal(err)
	}
	if mdm.PerCore[0].M1Fraction <= static.PerCore[0].M1Fraction {
		t.Errorf("MDM M1 fraction %v should exceed static %v",
			mdm.PerCore[0].M1Fraction, static.PerCore[0].M1Fraction)
	}
	if mdm.Counts.Swaps == 0 {
		t.Error("MDM should have migrated something")
	}
	if mdm.SwapFraction <= 0 {
		t.Error("swap fraction should be positive")
	}
}

func TestSTTrafficModelled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(1)
	cfg.Instructions = 100_000
	spec, _ := SpecForProgram("milc", PaperScale)
	res, err := Run(cfg, []ProgramSpec{spec}, SchemePoM)
	if err != nil {
		t.Fatal(err)
	}
	if res.STReads == 0 {
		t.Error("STC misses should have generated ST reads")
	}
	if res.STCHitRate <= 0 || res.STCHitRate >= 1 {
		t.Errorf("implausible STC hit rate %v", res.STCHitRate)
	}
	// Disabling the model removes the traffic.
	cfg.ModelSTTraffic = false
	res2, err := Run(cfg, []ProgramSpec{spec}, SchemePoM)
	if err != nil {
		t.Fatal(err)
	}
	if res2.STReads != 0 || res2.STWrites != 0 {
		t.Error("ST traffic should be disabled")
	}
}

func TestTimedOutFlag(t *testing.T) {
	cfg := tinyConfig(1)
	cfg.Instructions = 1 << 40 // cannot finish
	cfg.MaxCycles = 100_000
	spec, _ := SpecForProgram("lbm", PaperScale)
	res, err := Run(cfg, []ProgramSpec{spec}, SchemeStatic)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("expected TimedOut")
	}
	if res.Cycles < 100_000 {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestMultiProgramAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tinyConfig(4)
	cfg.Instructions = 100_000
	specs, err := SpecsForWorkload(mustWorkload(t, "w02"), PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, specs, SchemeProFess)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("per-core results = %d", len(res.PerCore))
	}
	for i, c := range res.PerCore {
		if c.Program != specs[i].Name {
			t.Errorf("core %d program %s, want %s", i, c.Program, specs[i].Name)
		}
		if c.Instructions < cfg.Instructions {
			t.Errorf("%s retired %d instructions, want >= %d", c.Program, c.Instructions, cfg.Instructions)
		}
		if c.IPC <= 0 || c.IPC > 4 {
			t.Errorf("%s IPC %v implausible", c.Program, c.IPC)
		}
		if c.Served == 0 {
			t.Errorf("%s served no memory requests", c.Program)
		}
	}
	if res.EnergyEff <= 0 || res.Watts <= 0 {
		t.Error("energy figures missing")
	}
	if ipcs := res.IPCs(); len(ipcs) != 4 {
		t.Error("IPCs helper wrong")
	}
}
