package sim

import "profess/internal/mem"

// NVMWear summarises M2 write wear for one run and projects device
// lifetime from it. The channel tallies every M2 write burst per row
// (demand writes and swap write phases); this aggregates those tallies
// across channels and converts them to time-to-first-worn-out-line under
// the simulated write intensity.
//
// Two lifetimes are reported. LifetimeIdealSeconds assumes perfect wear
// leveling: every line in the module absorbs an equal share of the write
// stream, so the device lives Endurance / (writes-per-line-per-second).
// LifetimeSeconds is bounded by the hottest row actually observed — no
// leveling beyond what the migration scheme's own block movement
// provides. The ratio of the two (LevelingEfficiency) is the figure of
// merit: 1.0 means the scheme spread writes perfectly, small values mean
// a few rows are soaking up the write stream and would die early.
type NVMWear struct {
	// WriteBursts is the total M2 write bursts (64 B each) across all
	// channels: demand writes plus swap write phases.
	WriteBursts int64
	// Rows and WrittenRows count M2 rows addressable / actually written.
	Rows        int64
	WrittenRows int64
	// MaxRowWrites is the burst count of the most-written row anywhere.
	MaxRowWrites int64
	// LevelingEfficiency is mean writes-per-written-row over max
	// writes-per-row, in (0, 1]; 0 when the run wrote nothing to M2.
	LevelingEfficiency float64
	// LifetimeSeconds projects seconds of operation at the simulated
	// write intensity until the hottest row's lines exhaust their
	// endurance; 0 when the run wrote nothing to M2 (no wear, so no
	// meaningful projection — "infinite" is not representable in JSON).
	LifetimeSeconds float64
	// LifetimeIdealSeconds is the same projection under perfect wear
	// leveling across the whole module.
	LifetimeIdealSeconds float64
}

// nvmWear aggregates the per-channel wear tallies and projects lifetime.
// cycles is the run length in CPU cycles.
func nvmWear(chans []*mem.Channel, cycles int64) NVMWear {
	var agg mem.WearStats
	var linesPerRow int64 = 1
	for _, ch := range chans {
		agg.Add(ch.WearStats())
		if lpr := ch.Config().M2Geom.RowBytes / 64; lpr > 0 {
			linesPerRow = lpr
		}
	}
	w := NVMWear{
		WriteBursts:  agg.WriteBursts,
		Rows:         agg.Rows,
		WrittenRows:  agg.WrittenRows,
		MaxRowWrites: agg.MaxRowWrites,
	}
	if agg.WriteBursts == 0 || agg.MaxRowWrites == 0 || cycles == 0 {
		return w
	}
	w.LevelingEfficiency = float64(agg.WriteBursts) / float64(agg.WrittenRows) / float64(agg.MaxRowWrites)

	// Seconds of simulated time, and the per-line write rates. Within a
	// row the bursts stripe across its lines evenly (see mem/wear.go), so
	// the hottest row's per-line rate is MaxRowWrites / linesPerRow.
	seconds := float64(cycles) / (mem.CyclesPerNs * 1e9)
	hotLineRate := float64(agg.MaxRowWrites) / float64(linesPerRow) / seconds
	w.LifetimeSeconds = mem.EnduranceWrites / hotLineRate
	totalLines := float64(agg.Rows) * float64(linesPerRow)
	evenLineRate := float64(agg.WriteBursts) / totalLines / seconds
	w.LifetimeIdealSeconds = mem.EnduranceWrites / evenLineRate
	return w
}
