package cpu

import (
	"testing"

	"profess/internal/event"
	"profess/internal/trace"
)

// fakeMemory serves every access after a fixed latency and records issue
// times.
type fakeMemory struct {
	sched    *event.Queue
	latency  int64
	issues   []int64
	inflight int
	maxSeen  int
}

func (f *fakeMemory) Access(core int, addr int64, write bool, done event.Handler, token int64) {
	f.issues = append(f.issues, f.sched.Now())
	f.inflight++
	if f.inflight > f.maxSeen {
		f.maxSeen = f.inflight
	}
	f.sched.After(f.latency, func(now int64) {
		f.inflight--
		done.HandleEvent(now, token, nil)
	})
}

func genParams(pattern trace.Pattern, gap int32, dep float64) trace.Params {
	return trace.Params{
		Name: "t", Footprint: 1 << 20, Pattern: pattern,
		GapMean: gap, Streams: 4, DepFrac: dep, HotProb: 0.5, HotFrac: 0.2,
		Seed: 5,
	}
}

// identity vmap covering the footprint.
func vmapFor(fp, page int64) []int64 {
	m := make([]int64, fp/page)
	for i := range m {
		m[i] = int64(i)
	}
	return m
}

func buildCore(t *testing.T, p trace.Params, budget int64, mem Memory, q *event.Queue, cfg Config) *Core {
	t.Helper()
	g, err := trace.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(0, cfg, g, vmapFor(p.Footprint, 4096), 4096, budget, mem, q)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoreValidation(t *testing.T) {
	q := &event.Queue{}
	fm := &fakeMemory{sched: q, latency: 10}
	g, err := trace.NewGenerator(genParams(trace.Stream, 20, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(0, DefaultConfig(), g, vmapFor(1<<20, 4096), 4096, 0, fm, q); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := New(0, DefaultConfig(), g, []int64{0}, 4096, 1000, fm, q); err == nil {
		t.Error("undersized vmap should fail")
	}
}

func TestCoreRunsToCompletion(t *testing.T) {
	q := &event.Queue{}
	fm := &fakeMemory{sched: q, latency: 100}
	c := buildCore(t, genParams(trace.Stream, 20, 0), 10_000, fm, q, DefaultConfig())
	done := int64(-1)
	c.Start(func(now int64) { done = now })
	q.RunUntil(func() bool { return done >= 0 })
	c.Stop()
	if done <= 0 {
		t.Fatal("core never finished")
	}
	if c.Instructions() < 10_000 {
		t.Errorf("instructions = %d, want >= budget", c.Instructions())
	}
	if c.FirstRunCycles != done {
		t.Errorf("FirstRunCycles = %d, want %d", c.FirstRunCycles, done)
	}
}

func TestDependentStreamSerialises(t *testing.T) {
	run := func(dep float64) int64 {
		q := &event.Queue{}
		fm := &fakeMemory{sched: q, latency: 500}
		p := genParams(trace.PointerChase, 10, dep)
		p.LinesPerTouch = 1
		c := buildCore(t, p, 5_000, fm, q, DefaultConfig())
		var done int64 = -1
		c.Start(func(now int64) { done = now })
		q.RunUntil(func() bool { return done >= 0 })
		c.Stop()
		return done
	}
	independent := run(0)
	dependent := run(1)
	// Fully dependent chains cannot overlap the 500-cycle latencies; they
	// must be dramatically slower than the independent version.
	if dependent < independent*2 {
		t.Errorf("dependent run (%d) should be much slower than independent (%d)", dependent, independent)
	}
}

func TestMLPWindowBounded(t *testing.T) {
	q := &event.Queue{}
	fm := &fakeMemory{sched: q, latency: 10_000} // force queueing
	cfg := DefaultConfig()
	cfg.MaxOutstanding = 4
	c := buildCore(t, genParams(trace.Stream, 20, 0), 20_000, fm, q, cfg)
	var done int64 = -1
	c.Start(func(now int64) { done = now })
	q.RunUntil(func() bool { return done >= 0 })
	c.Stop()
	if fm.maxSeen > 4 {
		t.Errorf("outstanding reached %d, cap 4", fm.maxSeen)
	}
	if fm.maxSeen < 4 {
		t.Errorf("window underused: max outstanding %d", fm.maxSeen)
	}
}

func TestDerivedMLP(t *testing.T) {
	q := &event.Queue{}
	fm := &fakeMemory{sched: q, latency: 10}
	// ROB 256, gap 20 -> 256/20 = 12 outstanding.
	c := buildCore(t, genParams(trace.Stream, 20, 0), 1000, fm, q, DefaultConfig())
	if c.MaxOutstanding() != 12 {
		t.Errorf("derived MLP = %d, want 12", c.MaxOutstanding())
	}
	// Tiny gaps clamp at 16.
	c2 := buildCore(t, genParams(trace.Stream, 2, 0), 1000, fm, q, DefaultConfig())
	if c2.MaxOutstanding() != 16 {
		t.Errorf("clamped MLP = %d, want 16", c2.MaxOutstanding())
	}
}

func TestRepeatsAfterBudget(t *testing.T) {
	q := &event.Queue{}
	fm := &fakeMemory{sched: q, latency: 50}
	c := buildCore(t, genParams(trace.Stream, 20, 0), 2_000, fm, q, DefaultConfig())
	var first int64 = -1
	c.Start(func(now int64) { first = now })
	// Run well past the first completion: the core must keep repeating.
	q.RunUntil(func() bool { return c.Repeats >= 3 })
	c.Stop()
	if first < 0 || c.Repeats < 3 {
		t.Fatalf("first=%d repeats=%d", first, c.Repeats)
	}
	if c.Instructions() < 3*2000 {
		t.Errorf("instructions = %d across repeats", c.Instructions())
	}
}

func TestStopFreezesCore(t *testing.T) {
	q := &event.Queue{}
	fm := &fakeMemory{sched: q, latency: 50}
	c := buildCore(t, genParams(trace.Stream, 20, 0), 1<<40, fm, q, DefaultConfig())
	c.Start(nil)
	for i := 0; i < 100; i++ {
		q.Step()
	}
	c.Stop()
	issued := len(fm.issues)
	q.Drain()
	if len(fm.issues) > issued {
		t.Errorf("core kept issuing after Stop: %d -> %d", issued, len(fm.issues))
	}
	if !c.Stopped() {
		t.Error("Stopped() should report true")
	}
}

func TestComputeGapPacesIssue(t *testing.T) {
	// With huge gaps and instant memory, issue times are spaced by
	// gap/width cycles.
	q := &event.Queue{}
	fm := &fakeMemory{sched: q, latency: 1}
	p := genParams(trace.Stream, 400, 0)
	c := buildCore(t, p, 4_000, fm, q, DefaultConfig())
	var done int64 = -1
	c.Start(func(now int64) { done = now })
	q.RunUntil(func() bool { return done >= 0 })
	c.Stop()
	if len(fm.issues) < 3 {
		t.Fatal("too few issues")
	}
	gap := fm.issues[2] - fm.issues[1]
	// ~400 instructions at width 4 = ~100 cycles between issues.
	if gap < 50 || gap > 160 {
		t.Errorf("issue spacing = %d cycles, want ~100", gap)
	}
}
