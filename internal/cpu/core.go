// Package cpu models the processor cores that drive the memory system.
//
// The paper uses a Pin-based cycle-accurate x86 simulator (width 4,
// ROB 256). For a memory-system study, what the core model must get right
// is the rate and overlap of memory requests: independent misses overlap
// up to the reorder window's capacity, dependent (pointer-chasing) misses
// serialise, and compute instructions advance at the core width. This
// package implements exactly that: an MLP-limited, dependence-aware core
// that replays a synthetic reference stream and accounts instructions and
// cycles.
package cpu

import (
	"fmt"
	"math"

	"profess/internal/event"
	"profess/internal/trace"
)

// Memory is the interface to the memory hierarchy below the core (the
// shared L3 in this simulator). Access must eventually deliver completion
// as done.HandleEvent(now, token, nil): the pre-bound handler plus opaque
// token replace a per-access closure so that issuing a reference allocates
// nothing.
type Memory interface {
	Access(core int, addr int64, write bool, done event.Handler, token int64)
}

// Config sizes a core (Table 8: width 4, ROB 256).
type Config struct {
	Width int
	ROB   int
	// MaxOutstanding caps concurrent memory references (MSHR-like). When
	// zero it is derived from ROB and the program's reference density.
	MaxOutstanding int
}

// DefaultConfig returns the Table 8 core.
func DefaultConfig() Config { return Config{Width: 4, ROB: 256} }

// Core replays one program's reference stream against the memory system.
// It restarts its generator when the instruction budget is reached (the
// Table 10 methodology repeats programs that complete faster than the
// slowest one), recording the first completion separately.
type Core struct {
	id    int
	cfg   Config
	gen   trace.Source
	vmap  []int64 // virtual page -> physical page
	pgBy  int64   // page bytes
	memhw Memory
	sched event.Scheduler

	budget int64 // instructions per program run

	// progress
	frontier    int64 // frontend virtual time
	instrAcc    int64 // sub-width instruction residue
	instr       int64 // total instructions executed (across repeats)
	runInstr    int64 // instructions executed within the current run
	outstanding int
	maxOut      int

	issuedSeq      int64
	lastIssuedDone bool
	waitDep        bool
	waitWindow     bool

	pending        trace.Ref
	hasPending     bool
	stopped        bool
	parked         bool
	firstDone      bool
	FirstRunCycles int64 // cycle the first run completed (0 until then)
	Repeats        int64 // completed runs

	onFirstDone func(now int64)

	// ff is the functional fast-forward state of the sampled execution
	// mode: a fractional clock advanced at the calibrated pace (cycles
	// per instruction measured in the preceding detailed windows).
	// Untouched outside fast-forward spans.
	ff struct {
		clock float64
		pace  float64
	}
}

// New builds a core. vmap maps the program's virtual pages to original
// physical pages (from the hybrid allocator); pageBytes is the OS page
// size; budget is the per-run instruction count.
func New(id int, cfg Config, gen trace.Source, vmap []int64, pageBytes int64, budget int64, memhw Memory, sched event.Scheduler) (*Core, error) {
	if cfg.Width <= 0 {
		cfg.Width = 4
	}
	if cfg.ROB <= 0 {
		cfg.ROB = 256
	}
	if budget <= 0 {
		return nil, fmt.Errorf("cpu: instruction budget must be positive")
	}
	need := gen.Footprint() / pageBytes
	if int64(len(vmap)) < need {
		return nil, fmt.Errorf("cpu: vmap covers %d pages, footprint needs %d", len(vmap), need)
	}
	c := &Core{
		id: id, cfg: cfg, gen: gen, vmap: vmap, pgBy: pageBytes,
		memhw: memhw, sched: sched, budget: budget,
		lastIssuedDone: true,
	}
	c.maxOut = cfg.MaxOutstanding
	if c.maxOut <= 0 {
		// The ROB holds cfg.ROB instructions; with GapMean instructions
		// between references it covers about ROB/Gap concurrent misses.
		g := int(gen.Params().GapMean)
		if g < 1 {
			g = 1
		}
		c.maxOut = cfg.ROB / g
		if c.maxOut < 1 {
			c.maxOut = 1
		}
		if c.maxOut > 16 {
			c.maxOut = 16
		}
	}
	return c, nil
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// MaxOutstanding returns the derived MLP limit (for tests).
func (c *Core) MaxOutstanding() int { return c.maxOut }

// Instructions returns total instructions executed across all repeats.
func (c *Core) Instructions() int64 { return c.instr }

// coreEvStep is the token of the core's self-scheduled step events; memory
// completions carry the (non-negative) issue sequence number instead.
const coreEvStep int64 = -1

// HandleEvent implements event.Handler: the core receives its own step
// wake-ups and the memory system's completions as typed events.
func (c *Core) HandleEvent(now int64, i int64, _ any) {
	if i < 0 {
		c.step(now)
		return
	}
	c.memDone(now, i)
}

// Start begins execution; onFirstDone fires when the first run's
// instruction budget is reached.
func (c *Core) Start(onFirstDone func(now int64)) {
	c.onFirstDone = onFirstDone
	c.sched.Schedule(c.sched.Now(), c, coreEvStep, nil)
}

// Stop freezes the core: no further references are issued.
func (c *Core) Stop() { c.stopped = true }

// Stopped reports whether the core has been stopped.
func (c *Core) Stopped() bool { return c.stopped }

// translate maps a virtual address to its original physical address.
func (c *Core) translate(vaddr int64) int64 {
	vp := vaddr / c.pgBy
	return c.vmap[vp]*c.pgBy + vaddr%c.pgBy
}

// step issues references until blocked on time, dependence or the window.
func (c *Core) step(now int64) {
	for !c.stopped && !c.parked {
		if !c.hasPending {
			if c.runInstr >= c.budget {
				c.completeRun(now)
				if c.stopped {
					return
				}
			}
			c.pending = c.gen.Next()
			c.hasPending = true
			// Advance the frontend by the compute gap at core width.
			c.instrAcc += int64(c.pending.Gap)
			c.frontier += c.instrAcc / int64(c.cfg.Width)
			c.instrAcc %= int64(c.cfg.Width)
			if c.frontier < now {
				c.frontier = now
			}
		}
		ref := &c.pending
		if now < c.frontier {
			c.sched.Schedule(c.frontier, c, coreEvStep, nil)
			return
		}
		if ref.Dep && !c.lastIssuedDone {
			c.waitDep = true
			return // resumed by the previous reference's completion
		}
		if c.outstanding >= c.maxOut {
			c.waitWindow = true
			return // resumed by any completion
		}
		c.issue(now, ref)
	}
}

// issue submits the pending reference to memory; the issue sequence number
// rides along as the completion token.
func (c *Core) issue(now int64, ref *trace.Ref) {
	c.hasPending = false
	c.instr += int64(ref.Gap) + 1 // the gap plus the memory instruction
	c.runInstr += int64(ref.Gap) + 1
	c.outstanding++
	c.issuedSeq++
	c.lastIssuedDone = false
	addr := c.translate(ref.VAddr)
	c.memhw.Access(c.id, addr, ref.Write, c, c.issuedSeq)
}

// memDone handles one memory completion: the token is the completed
// reference's issue sequence number, so dependence tracking survives the
// reference itself having been recycled.
func (c *Core) memDone(done int64, seq int64) {
	c.outstanding--
	if seq == c.issuedSeq {
		c.lastIssuedDone = true
	}
	if c.stopped {
		return
	}
	if c.waitDep && c.lastIssuedDone {
		c.waitDep = false
		c.step(done)
		return
	}
	if c.waitWindow {
		c.waitWindow = false
		c.step(done)
	}
}

// FunctionalMemory charges one memory access without events, returning its
// latency in cycles — the memory interface of the fast-forward spans.
type FunctionalMemory func(core int, addr int64, write bool, now int64) int64

// Park freezes the core for a fast-forward span: the event-driven step
// loop stops issuing (pending step events fire as no-ops) while in-flight
// memory completions still account normally, so the machine can drain to a
// quiescent point.
func (c *Core) Park() { c.parked = true }

// Unpark resumes event-driven execution at the calendar's current time.
// Stale wait flags from the parked window are cleared — after a drained
// calendar nothing is outstanding — and a fresh step event re-arms the
// issue loop.
func (c *Core) Unpark() {
	c.parked = false
	if c.stopped {
		return
	}
	c.waitDep, c.waitWindow = false, false
	c.lastIssuedDone = true
	c.sched.Schedule(c.sched.Now(), c, coreEvStep, nil)
}

// BeginFastForward arms functional execution at time t with the given
// pace (cycles per instruction, from the detailed windows' measured IPC).
// The caller must have parked the core and drained the calendar
// (outstanding == 0).
func (c *Core) BeginFastForward(t int64, pace float64) {
	c.ff.clock = float64(t)
	c.ff.pace = pace
	if !c.hasPending && !c.stopped {
		c.ffFetch(t)
	}
}

// EndFastForward folds the functional state back for event-driven resume:
// the frontend frontier catches up to functional time, and every
// functional reference is treated as complete, so the next detailed
// window starts from a briefly-drained pipeline (the standard sampling
// warm-up artifact, absorbed by the window's leading cycles).
func (c *Core) EndFastForward() {
	if t := int64(c.ff.clock); c.frontier < t {
		c.frontier = t
	}
	c.lastIssuedDone = true
}

// FFTime returns the time the core's next functional reference issues:
// the paced clock after the reference's compute gap. The sampled run loop
// advances cores in global FFTime order, so the memory system sees the
// interleaved access stream in time order and channel state (occupancy,
// open rows, wear) warms from a realistic arrival pattern.
func (c *Core) FFTime() int64 {
	return int64(c.ff.clock + c.ff.pace*float64(c.pending.Gap))
}

// FFStep functionally issues the pending reference through mem and fetches
// the next one. The instruction/budget accounting is identical to the
// event-driven issue path; time advances at the calibrated pace — the
// memory latency returned by mem warms downstream state but does not feed
// back into the clock, which is what keeps functional time flowing at the
// rate the detailed windows measured.
func (c *Core) FFStep(mem FunctionalMemory) {
	if c.stopped || !c.hasPending {
		return
	}
	issue := c.FFTime()
	ref := &c.pending
	c.instr += int64(ref.Gap) + 1
	c.runInstr += int64(ref.Gap) + 1
	mem(c.id, c.translate(ref.VAddr), ref.Write, issue)
	c.ff.clock += c.ff.pace * float64(ref.Gap+1)
	c.hasPending = false
	c.ffFetch(issue)
}

// FFRun issues functional references until the next would issue at or
// beyond `until`, the run budget completes (*remaining reaches zero), or
// the core stops. Batching the per-reference loop inside the core lets
// the span driver pay its core-selection scan once per run instead of
// once per reference. Returns the issue time of the core's next pending
// reference (MaxInt64 when the core has stopped) and the number of
// references issued.
func (c *Core) FFRun(mem FunctionalMemory, until int64, remaining *int) (int64, int) {
	n := 0
	for !c.stopped && c.hasPending {
		issue := c.FFTime()
		if issue >= until {
			return issue, n
		}
		ref := &c.pending
		c.instr += int64(ref.Gap) + 1
		c.runInstr += int64(ref.Gap) + 1
		mem(c.id, c.translate(ref.VAddr), ref.Write, issue)
		c.ff.clock += c.ff.pace * float64(ref.Gap+1)
		c.hasPending = false
		c.ffFetch(issue)
		n++
		if *remaining <= 0 {
			return c.FFTime(), n
		}
	}
	return math.MaxInt64, n
}

// ffFetch pulls the next reference from the generator and handles budget
// completion — the functional twin of the fetch block in step(). The
// event-driven frontier arithmetic is deliberately not replayed here;
// EndFastForward folds time back into the frontier once per span.
func (c *Core) ffFetch(at int64) {
	if c.runInstr >= c.budget {
		c.completeRun(at)
		if c.stopped {
			return
		}
	}
	c.pending = c.gen.Next()
	c.hasPending = true
}

// completeRun handles reaching the instruction budget: record the first
// completion and restart the generator to keep the memory pressure up
// until the workload's slowest program completes.
func (c *Core) completeRun(now int64) {
	c.Repeats++
	c.runInstr = 0
	c.gen.Reset()
	if !c.firstDone {
		c.firstDone = true
		c.FirstRunCycles = now
		if c.onFirstDone != nil {
			c.onFirstDone(now)
		}
	}
}
