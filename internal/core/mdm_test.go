package core

import (
	"math"
	"testing"
	"testing/quick"

	"profess/internal/hybrid"
)

// mdmCtx is a scriptable PolicyContext for MDM decisions.
type mdmCtx struct {
	m1slot int
	owners map[int]int // slot -> owner
	swaps  int
}

func (c *mdmCtx) M1Slot(group int64) int { return c.m1slot }
func (c *mdmCtx) Owner(group int64, slot int) int {
	if o, ok := c.owners[slot]; ok {
		return o
	}
	return 0
}
func (c *mdmCtx) ScheduleSwap(group int64, slot int) bool { c.swaps++; return true }
func (c *mdmCtx) SwapLatency() int64                      { return 2548 }
func (c *mdmCtx) ReadLatencyGap() int64                   { return 396 }

func newTestMDM(t *testing.T, cfg MDMConfig) *MDM {
	t.Helper()
	m, err := NewMDM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMDMValidation(t *testing.T) {
	if _, err := NewMDM(MDMConfig{NumPrograms: 0, PhaseUpdates: 1, RecomputeEvery: 1}); err == nil {
		t.Error("zero programs should fail")
	}
	if _, err := NewMDM(MDMConfig{NumPrograms: 1, PhaseUpdates: 0, RecomputeEvery: 1}); err == nil {
		t.Error("zero phase should fail")
	}
}

func TestMDMExpectedCountHandComputed(t *testing.T) {
	// Ten updates, all (q_I = 0 -> q_E = 1, count 4):
	//   avg_cnt(1) = 40/10 = 4                                (eq. 6)
	//   P(1|0) = (10+1)/(10+3) = 11/13; P(2|0) = P(3|0) = 1/13 (eq. 7)
	//   exp_cnt(0) = 4 * 11/13 = 44/13                        (eq. 5)
	cfg := DefaultMDMConfig(1)
	cfg.PhaseUpdates = 10
	m := newTestMDM(t, cfg)
	for i := 0; i < 10; i++ {
		m.OnSTCEvict(0, 0, 1, 4)
	}
	want := 44.0 / 13.0
	if got := m.ExpCnt(0, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("exp_cnt(0) = %v, want %v", got, want)
	}
	// q_I values never observed keep the Laplace-uniform mix over the
	// same avg counts: exp_cnt(2) = 4 * 1/3.
	if got, want := m.ExpCnt(0, 2), 4.0/3.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("exp_cnt(2) = %v, want %v", got, want)
	}
}

func TestMDMTransitionProbabilitiesSumToOne(t *testing.T) {
	// Internal consistency of eq. 7: for any observation mix, the three
	// smoothed probabilities out of a q_I sum to 1.
	f := func(counts [3]uint8) bool {
		var p mdmProgram
		total := 0.0
		for qE := 1; qE <= hybrid.NumQE; qE++ {
			p.numQ[0][qE] = float64(counts[qE-1])
			p.numQSumE[0] += float64(counts[qE-1])
		}
		for qE := 1; qE <= hybrid.NumQE; qE++ {
			total += (p.numQ[0][qE] + 1) / (p.numQSumE[0] + float64(hybrid.NumQE))
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMDMPhaseMachinery(t *testing.T) {
	cfg := DefaultMDMConfig(1)
	cfg.PhaseUpdates = 5
	cfg.RecomputeEvery = 2
	m := newTestMDM(t, cfg)
	p := &m.progs[0]
	if !p.observing {
		t.Fatal("must start observing")
	}
	for i := 0; i < 5; i++ {
		m.OnSTCEvict(0, 1, 1, 3)
	}
	if p.observing {
		t.Fatal("observation phase should have ended")
	}
	recomps := p.Recomputations
	if recomps == 0 {
		t.Fatal("phase transition must recompute")
	}
	// During estimation, recompute every 2 updates.
	m.OnSTCEvict(0, 1, 1, 3)
	m.OnSTCEvict(0, 1, 1, 3)
	if p.Recomputations != recomps+1 {
		t.Errorf("recomputations = %d, want %d", p.Recomputations, recomps+1)
	}
	// Finish estimation: counters reset, back to observing.
	for i := 0; i < 3; i++ {
		m.OnSTCEvict(0, 1, 1, 3)
	}
	p = &m.progs[0]
	if !p.observing {
		t.Error("should be observing again")
	}
	if p.numQSumE[1] != 0 {
		t.Error("counters must reset at observation start")
	}
	if p.expCnt[1] == 0 {
		t.Error("registered exp_cnt must survive the reset")
	}
}

func TestMDMIgnoresInvalidUpdates(t *testing.T) {
	m := newTestMDM(t, DefaultMDMConfig(1))
	m.OnSTCEvict(0, 1, 0, 5)  // q_E = 0 invalid
	m.OnSTCEvict(-1, 1, 1, 5) // core out of range
	m.OnSTCEvict(7, 1, 1, 5)  // core out of range
	if m.progs[0].updates != 0 {
		t.Error("invalid updates must be ignored")
	}
}

// decideEntry builds an STC entry with the given counters for slot 4 (the
// accessed M2 block) and slot 0 (the M1 resident).
func decideEntry(cnt2, cnt1 uint16, qI2, qI1 uint8) *hybrid.STCEntry {
	e := &hybrid.STCEntry{}
	e.Counters[4] = cnt2
	e.Counters[0] = cnt1
	e.QInsert[4] = qI2
	e.QInsert[0] = qI1
	return e
}

// fixedMDM returns an MDM whose exp_cnt is pinned at `exp` for every q_I
// (via InitialExpCnt before any statistics arrive).
func fixedMDM(t *testing.T, exp float64) *MDM {
	t.Helper()
	cfg := DefaultMDMConfig(2)
	cfg.InitialExpCnt = exp
	return newTestMDM(t, cfg)
}

func info(e *hybrid.STCEntry) hybrid.AccessInfo {
	return hybrid.AccessInfo{Core: 0, Group: 7, Slot: 4, Loc: 4, Entry: e}
}

func TestDecideNoBenefit(t *testing.T) {
	m := fixedMDM(t, 20)
	ctx := &mdmCtx{owners: map[int]int{0: 1}}
	// rem2 = 20 - 15 = 5 < min_benefit 8: refuse even with M1 idle.
	if m.Decide(info(decideEntry(15, 0, 0, 0)), ctx, false) {
		t.Error("should refuse: predicted remaining accesses below min_benefit")
	}
	// Case 1 help cannot override a lack of benefit either.
	if m.Decide(info(decideEntry(15, 0, 0, 0)), ctx, true) {
		t.Error("treatM1Vacant must still respect min_benefit")
	}
}

func TestDecideVacantM1(t *testing.T) {
	m := fixedMDM(t, 20)
	ctx := &mdmCtx{owners: map[int]int{0: 1}}
	// rem2 = 18 >= 8 and M1 treated vacant: swap.
	if !m.Decide(info(decideEntry(2, 50, 0, 0)), ctx, true) {
		t.Error("vacant-M1 decision should promote regardless of the M1 block")
	}
}

func TestDecideIdleM1(t *testing.T) {
	m := fixedMDM(t, 20)
	ctx := &mdmCtx{owners: map[int]int{0: 1}}
	// Condition (b): M1 counter zero, another block (the accessed one)
	// active -> swap.
	if !m.Decide(info(decideEntry(2, 0, 0, 0)), ctx, false) {
		t.Error("idle M1 resident should be displaced")
	}
}

func TestDecideCaseCi(t *testing.T) {
	m := fixedMDM(t, 20)
	ctx := &mdmCtx{owners: map[int]int{0: 1}}
	// M1 resident consumed its prediction: rem1 = 20 - 25 <= 0 -> swap.
	if !m.Decide(info(decideEntry(2, 25, 0, 0)), ctx, false) {
		t.Error("exhausted M1 resident should be displaced (c.i)")
	}
}

func TestDecideCaseCii(t *testing.T) {
	m := fixedMDM(t, 20)
	ctx := &mdmCtx{owners: map[int]int{0: 1}}
	// rem2 = 18, rem1 = 20-12 = 8: difference 10 >= 8 -> swap.
	if !m.Decide(info(decideEntry(2, 12, 0, 0)), ctx, false) {
		t.Error("c.ii should promote when the difference clears min_benefit")
	}
	// rem1 = 20-6 = 14: difference 4 < 8 -> keep.
	if m.Decide(info(decideEntry(2, 6, 0, 0)), ctx, false) {
		t.Error("c.ii should refuse when the difference is below min_benefit")
	}
}

func TestDecideUnownedM1(t *testing.T) {
	m := fixedMDM(t, 20)
	ctx := &mdmCtx{owners: map[int]int{0: -1}}
	// An unallocated M1 block is never worth protecting.
	if !m.Decide(info(decideEntry(2, 3, 0, 0)), ctx, false) {
		t.Error("unowned M1 resident should be displaced")
	}
}

func TestMDMOnAccessSchedulesSwaps(t *testing.T) {
	m := fixedMDM(t, 20)
	ctx := &mdmCtx{owners: map[int]int{0: 1}}
	m.OnAccess(info(decideEntry(2, 0, 0, 0)), ctx)
	if ctx.swaps != 1 || m.Approved != 1 || m.Considered != 1 {
		t.Errorf("swaps=%d approved=%d considered=%d", ctx.swaps, m.Approved, m.Considered)
	}
	// M1 accesses are not considered.
	ai := info(decideEntry(2, 0, 0, 0))
	ai.Loc = 0
	m.OnAccess(ai, ctx)
	if m.Considered != 1 {
		t.Error("M1 access must not be considered for promotion")
	}
}

func TestMDMWriteWeightConfig(t *testing.T) {
	m := newTestMDM(t, DefaultMDMConfig(1))
	if m.WriteWeight() != 8 {
		t.Errorf("write weight = %d, want 8 (§4.1)", m.WriteWeight())
	}
	if m.MinBenefit() != 8 {
		t.Errorf("min benefit = %v, want 8", m.MinBenefit())
	}
	if m.Name() != "mdm" {
		t.Error("name")
	}
}

func TestMDMLearnsFromStatistics(t *testing.T) {
	// Blocks with q_I = 3 that historically see many more accesses should
	// get a larger exp_cnt than q_I = 1 blocks that see few.
	cfg := DefaultMDMConfig(1)
	cfg.PhaseUpdates = 100
	m := newTestMDM(t, cfg)
	for i := 0; i < 50; i++ {
		m.OnSTCEvict(0, 3, 3, 60) // hot stays hot
		m.OnSTCEvict(0, 1, 1, 2)  // cold stays cold
	}
	if m.ExpCnt(0, 3) <= m.ExpCnt(0, 1) {
		t.Errorf("exp_cnt(3)=%v should exceed exp_cnt(1)=%v",
			m.ExpCnt(0, 3), m.ExpCnt(0, 1))
	}
}
