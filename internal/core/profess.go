package core

import (
	"fmt"

	"profess/internal/fault"
	"profess/internal/hybrid"
	"profess/internal/stats"
	"profess/internal/telemetry"
)

// ProFessConfig parameterises the integrated framework.
type ProFessConfig struct {
	MDM MDMConfig
	RSM RSMConfig
	// Threshold excludes too-similar slowdown factors from the Table 7
	// comparisons (§3.3: ~3% = 1/32, chosen to simplify hardware).
	Threshold float64
	// ProductThreshold is the Case 3 product-comparison threshold
	// (§3.3: twice the base threshold, 1/16 ~ 6%).
	ProductThreshold float64
	// DisableSFB ablates SF_B: Table 7 degenerates to comparing SF_A
	// only (Cases 1 and 2; Case 3 can never fire). Not part of the paper;
	// used by the ablation benches.
	DisableSFB bool
	// DisableCase3 ablates the special Case 3 (§3.3). Not part of the
	// paper; used by the ablation benches.
	DisableCase3 bool
}

// DefaultProFessConfig returns the §4.1 configuration for n programs at
// the given capacity scale.
func DefaultProFessConfig(n int, scale float64) ProFessConfig {
	return ProFessConfig{
		MDM:              DefaultMDMConfig(n),
		RSM:              DefaultRSMConfig(n, scale),
		Threshold:        1.0 / 32,
		ProductThreshold: 1.0 / 16,
	}
}

// Decision classifies the outcome of the Table 7 guidance, for reporting.
type Decision uint8

const (
	// DecisionMDM: no case fired (or same program on both sides); plain MDM.
	DecisionMDM Decision = iota
	// DecisionHelp: Case 1 — consider M1 vacant and use MDM.
	DecisionHelp
	// DecisionProtect: Case 2 — do not swap.
	DecisionProtect
	// DecisionProtectCase3: Case 3 — do not swap.
	DecisionProtectCase3
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case DecisionMDM:
		return "mdm"
	case DecisionHelp:
		return "help(case1)"
	case DecisionProtect:
		return "protect(case2)"
	case DecisionProtectCase3:
		return "protect(case3)"
	}
	return fmt.Sprintf("decision(%d)", d)
}

// ProFess is the integrated framework (§3.3): MDM makes individual
// cost-benefit migration decisions while RSM steers them toward the
// program suffering the most from the competition for M1, per Table 7.
type ProFess struct {
	hybrid.BasePolicy
	cfg ProFessConfig
	mdm *MDM
	rsm *RSM

	// CaseCounts tallies Table 7 outcomes by Decision.
	CaseCounts [4]int64

	// GuidanceSuspended counts M2 accesses where the Table 7 guidance was
	// skipped because an involved program's slowdown factors were degraded.
	GuidanceSuspended int64
	// DegradedCycles accrues simulated time during which at least one
	// program's monitor was degraded (measured between consecutive access
	// stamps — the policy has no clock of its own).
	DegradedCycles int64
	lastNow        int64
}

// NewProFess builds the framework.
func NewProFess(cfg ProFessConfig) (*ProFess, error) {
	if cfg.Threshold < 0 || cfg.ProductThreshold < 0 {
		return nil, fmt.Errorf("core: ProFess thresholds must be non-negative")
	}
	mdm, err := NewMDM(cfg.MDM)
	if err != nil {
		return nil, err
	}
	rsm, err := NewRSM(cfg.RSM)
	if err != nil {
		return nil, err
	}
	return &ProFess{cfg: cfg, mdm: mdm, rsm: rsm}, nil
}

// Name implements hybrid.Policy.
func (p *ProFess) Name() string { return "profess" }

// WriteWeight implements hybrid.Policy.
func (p *ProFess) WriteWeight() int { return p.mdm.WriteWeight() }

// MDM exposes the wrapped mechanism (read-only use).
func (p *ProFess) MDM() *MDM { return p.mdm }

// RSM exposes the wrapped monitor (read-only use).
func (p *ProFess) RSM() *RSM { return p.rsm }

// OnServed implements hybrid.Policy: feed the RSM request counters.
func (p *ProFess) OnServed(core, region int, private, fromM1 bool) {
	p.rsm.OnServed(core, region, private, fromM1)
}

// OnSTCEvict implements hybrid.Policy: feed the MDM statistics.
func (p *ProFess) OnSTCEvict(core int, qI, qE uint8, count uint32) {
	p.mdm.OnSTCEvict(core, qI, qE, count)
}

// OnSwapDone implements hybrid.Policy: feed the RSM swap counters.
func (p *ProFess) OnSwapDone(region int, private bool, ownerM1, ownerM2 int) {
	p.rsm.OnSwapDone(private, ownerM1, ownerM2)
}

// Classify runs the Table 7 comparison for the two programs of a
// prospective swap (cM1 owns the group's M1 resident, cM2 the accessed M2
// block).
func (p *ProFess) Classify(cM1, cM2 int) Decision {
	thr := 1 + p.cfg.Threshold
	sfA1, sfA2 := p.rsm.SFA(cM1), p.rsm.SFA(cM2)
	sfB1, sfB2 := p.rsm.SFB(cM1), p.rsm.SFB(cM2)
	if p.cfg.DisableSFB {
		sfB1, sfB2 = sfA1, sfA2
	}
	switch {
	case sfA1*thr < sfA2 && sfB1*thr < sfB2:
		return DecisionHelp // Case 1: cM2 suffers more on both factors
	case sfA1 > sfA2*thr && sfB1 > sfB2*thr:
		return DecisionProtect // Case 2: cM1 suffers more on both factors
	case !p.cfg.DisableCase3 &&
		sfA1*thr < sfA2 && sfB1 > sfB2*thr &&
		sfA1*sfB1 > sfA2*sfB2*(1+p.cfg.ProductThreshold):
		// Case 3: mixed signals; protect cM1 while the SF_A*SF_B products
		// say it suffers more overall.
		return DecisionProtectCase3
	}
	return DecisionMDM
}

// OnAccess implements hybrid.Policy: Table 7 guidance around MDM.
func (p *ProFess) OnAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	if p.rsm.AnyDegraded() {
		if p.lastNow > 0 && info.Now > p.lastNow {
			p.DegradedCycles += info.Now - p.lastNow
		}
	}
	p.lastNow = info.Now
	if info.Loc == 0 {
		return
	}
	cM2 := info.Core
	cM1 := ctl.Owner(info.Group, ctl.M1Slot(info.Group))
	if cM1 == cM2 || cM1 < 0 {
		// Same program on both sides (or unallocated M1): plain MDM.
		p.mdm.OnAccess(info, ctl)
		return
	}
	if p.rsm.DegradedAny(cM1, cM2) {
		// An involved program's slowdown factors are untrusted: suspend
		// the fairness guidance (which would steer on corrupt SF values)
		// and fall back to plain MDM until the monitor re-converges.
		p.GuidanceSuspended++
		p.mdm.OnAccess(info, ctl)
		return
	}
	d := p.Classify(cM1, cM2)
	p.CaseCounts[d]++
	switch d {
	case DecisionHelp:
		if p.mdm.Decide(info, ctl, true) {
			ctl.ScheduleSwap(info.Group, info.Slot)
		}
	case DecisionProtect, DecisionProtectCase3:
		// Do not swap: protect cM1's block.
	default:
		p.mdm.OnAccess(info, ctl)
	}
}

// RegisterTelemetry registers the framework's signals with a per-epoch
// sampler: everything the wrapped RSM and MDM expose, plus the Table 7
// case tallies.
func (p *ProFess) RegisterTelemetry(s *telemetry.Sampler) {
	p.rsm.RegisterTelemetry(s)
	p.mdm.RegisterTelemetry(s)
	for d := DecisionMDM; d <= DecisionProtectCase3; d++ {
		d := d
		s.Counter("profess.case."+d.String(), func() int64 { return p.CaseCounts[d] })
	}
	s.Counter("profess.guidance_suspended", func() int64 { return p.GuidanceSuspended })
}

// SetFaultInjector arms the wrapped RSM with a fault injector (the MDM's
// corruption arrives through the controller's ST metadata path, so only
// the monitor draws faults directly).
func (p *ProFess) SetFaultInjector(inj *fault.Injector) { p.rsm.SetFaultInjector(inj) }

// ResilienceStats aggregates the degradation counters of the wrapped
// mechanism and monitor.
func (p *ProFess) ResilienceStats() stats.Resilience {
	r := p.mdm.ResilienceStats()
	r.ImplausibleSFs += p.rsm.ImplausibleSFs
	r.DegradedEntries += p.rsm.DegradedEntries
	r.DegradedDecisions += p.GuidanceSuspended
	r.DegradedCycles += p.DegradedCycles
	return r
}

var _ hybrid.Policy = (*ProFess)(nil)
