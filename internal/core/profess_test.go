package core

import (
	"testing"

	"profess/internal/hybrid"
)

func newTestProFess(t *testing.T) *ProFess {
	t.Helper()
	cfg := DefaultProFessConfig(2, 1)
	cfg.MDM.InitialExpCnt = 20
	p, err := NewProFess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// setSF pins a program's slowdown factors for classification tests.
func setSF(p *ProFess, core int, sfA, sfB float64) {
	p.rsm.progs[core].sfA = sfA
	p.rsm.progs[core].sfB = sfB
}

func TestProFessValidation(t *testing.T) {
	cfg := DefaultProFessConfig(1, 1)
	cfg.Threshold = -1
	if _, err := NewProFess(cfg); err == nil {
		t.Error("negative threshold should fail")
	}
	cfg = DefaultProFessConfig(0, 1)
	if _, err := NewProFess(cfg); err == nil {
		t.Error("zero programs should fail")
	}
}

func TestClassifyCase1Help(t *testing.T) {
	p := newTestProFess(t)
	// cM2 (program 1) suffers more on both factors.
	setSF(p, 0, 1.0, 1.0)
	setSF(p, 1, 1.2, 1.2)
	if got := p.Classify(0, 1); got != DecisionHelp {
		t.Errorf("Classify = %v, want help", got)
	}
}

func TestClassifyCase2Protect(t *testing.T) {
	p := newTestProFess(t)
	// cM1 (program 0) suffers more on both factors.
	setSF(p, 0, 1.5, 2.0)
	setSF(p, 1, 1.0, 1.0)
	if got := p.Classify(0, 1); got != DecisionProtect {
		t.Errorf("Classify = %v, want protect", got)
	}
}

func TestClassifyCase3MixedSignals(t *testing.T) {
	p := newTestProFess(t)
	// SF_A says cM2 suffers, SF_B says cM1 does, and the SF_A*SF_B
	// product favours cM1: 1*2 = 2 > 1.2*1*1.0625 = 1.275 -> protect.
	setSF(p, 0, 1.0, 2.0)
	setSF(p, 1, 1.2, 1.0)
	if got := p.Classify(0, 1); got != DecisionProtectCase3 {
		t.Errorf("Classify = %v, want case-3 protect", got)
	}
}

func TestClassifyCase3ProductFails(t *testing.T) {
	p := newTestProFess(t)
	// Mixed signals but the product favours cM2: fall through to MDM.
	setSF(p, 0, 1.0, 1.1)
	setSF(p, 1, 1.2, 1.0)
	if got := p.Classify(0, 1); got != DecisionMDM {
		t.Errorf("Classify = %v, want default MDM", got)
	}
}

func TestClassifyTooSimilarIsDefault(t *testing.T) {
	p := newTestProFess(t)
	// Within the 1/32 threshold: no case fires (the §3.3 exclusion).
	setSF(p, 0, 1.0, 1.0)
	setSF(p, 1, 1.02, 1.02)
	if got := p.Classify(0, 1); got != DecisionMDM {
		t.Errorf("Classify = %v, want default for near-equal factors", got)
	}
}

func TestClassifyThresholdBoundary(t *testing.T) {
	p := newTestProFess(t)
	// Just above the 3.125% threshold fires Case 1.
	setSF(p, 0, 1.0, 1.0)
	setSF(p, 1, 1.0322, 1.0322)
	if got := p.Classify(0, 1); got != DecisionHelp {
		t.Errorf("Classify = %v, want help just above threshold", got)
	}
	// Exactly at the threshold: strict inequality keeps the default.
	setSF(p, 1, 1.03125, 1.03125)
	if got := p.Classify(0, 1); got != DecisionMDM {
		t.Errorf("Classify = %v, want default at exact threshold", got)
	}
}

func TestClassifyAblations(t *testing.T) {
	cfg := DefaultProFessConfig(2, 1)
	cfg.DisableCase3 = true
	p, err := NewProFess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setSF(p, 0, 1.0, 2.0)
	setSF(p, 1, 1.2, 1.0)
	if got := p.Classify(0, 1); got != DecisionMDM {
		t.Errorf("Case 3 disabled: Classify = %v, want default", got)
	}

	cfg = DefaultProFessConfig(2, 1)
	cfg.DisableSFB = true
	p, err = NewProFess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With SF_B ablated, SF_A alone decides: help.
	setSF(p, 0, 1.0, 99)
	setSF(p, 1, 1.2, 0.1)
	if got := p.Classify(0, 1); got != DecisionHelp {
		t.Errorf("SF_B disabled: Classify = %v, want help on SF_A alone", got)
	}
}

// pfCtx is a scriptable PolicyContext for the integration paths.
type pfCtx struct {
	m1slot  int
	ownerM1 int
	swaps   int
}

func (c *pfCtx) M1Slot(group int64) int { return c.m1slot }
func (c *pfCtx) Owner(group int64, slot int) int {
	if slot == c.m1slot {
		return c.ownerM1
	}
	return 1 // M2 blocks in these tests belong to program 1... unused otherwise
}
func (c *pfCtx) ScheduleSwap(group int64, slot int) bool { c.swaps++; return true }
func (c *pfCtx) SwapLatency() int64                      { return 2548 }
func (c *pfCtx) ReadLatencyGap() int64                   { return 396 }

func pfInfo(core int, cnt2, cnt1 uint16) hybrid.AccessInfo {
	e := &hybrid.STCEntry{}
	e.Counters[4] = cnt2
	e.Counters[0] = cnt1
	return hybrid.AccessInfo{Core: core, Group: 7, Slot: 4, Loc: 4, Entry: e}
}

func TestProFessCase1ForcesSwapDespiteHotM1(t *testing.T) {
	p := newTestProFess(t)
	setSF(p, 0, 1.0, 1.0) // cM1 = program 0
	setSF(p, 1, 1.5, 1.5) // cM2 = program 1 suffers
	ctx := &pfCtx{m1slot: 0, ownerM1: 0}
	// The M1 resident is hot (rem1 = 20-12 = 8 > 0; diff 10-8 < 8 would
	// normally refuse via c.ii... cnt2=2 -> rem2=18, diff = 10 >= 8 would
	// actually promote; use cnt1=4 so diff = 2 < 8: plain MDM refuses).
	plain := pfInfo(1, 2, 4)
	if p.mdm.Decide(plain, ctx, false) {
		t.Fatal("precondition: plain MDM should refuse this swap")
	}
	p.OnAccess(plain, ctx)
	if ctx.swaps != 1 {
		t.Errorf("Case 1 should force the swap (M1 considered vacant), swaps=%d", ctx.swaps)
	}
	if p.CaseCounts[DecisionHelp] != 1 {
		t.Errorf("case counts = %v", p.CaseCounts)
	}
}

func TestProFessCase2BlocksSwapDespiteBenefit(t *testing.T) {
	p := newTestProFess(t)
	setSF(p, 0, 1.5, 1.5) // cM1 suffers
	setSF(p, 1, 1.0, 1.0)
	ctx := &pfCtx{m1slot: 0, ownerM1: 0}
	// Plain MDM would promote (idle M1 resident), but Case 2 protects it.
	benefit := pfInfo(1, 2, 0)
	if !p.mdm.Decide(benefit, ctx, false) {
		t.Fatal("precondition: plain MDM should approve this swap")
	}
	p.OnAccess(benefit, ctx)
	if ctx.swaps != 0 {
		t.Error("Case 2 must protect the M1 block")
	}
	if p.CaseCounts[DecisionProtect] != 1 {
		t.Errorf("case counts = %v", p.CaseCounts)
	}
}

func TestProFessSameProgramUsesPlainMDM(t *testing.T) {
	p := newTestProFess(t)
	setSF(p, 0, 9.9, 9.9) // factors must not matter for same-program swaps
	setSF(p, 1, 1.0, 1.0)
	ctx := &pfCtx{m1slot: 0, ownerM1: 1}
	p.OnAccess(pfInfo(1, 2, 0), ctx) // idle M1, same owner: MDM promotes
	if ctx.swaps != 1 {
		t.Error("same-program access should fall through to plain MDM")
	}
	if p.CaseCounts[DecisionHelp]+p.CaseCounts[DecisionProtect]+p.CaseCounts[DecisionProtectCase3] != 0 {
		t.Error("no Table 7 case should be counted for same-program swaps")
	}
}

func TestProFessM1AccessIgnored(t *testing.T) {
	p := newTestProFess(t)
	ctx := &pfCtx{}
	ai := pfInfo(1, 2, 0)
	ai.Loc = 0
	p.OnAccess(ai, ctx)
	if ctx.swaps != 0 {
		t.Error("M1 accesses are never promotion candidates")
	}
}

func TestProFessHooksForward(t *testing.T) {
	p := newTestProFess(t)
	// OnServed forwards to RSM.
	for i := 0; i < int(p.cfg.RSM.SamplingRequests); i++ {
		p.OnServed(0, 5, false, true)
	}
	if p.RSM().Periods[0] != 1 {
		t.Error("OnServed did not reach the RSM")
	}
	// OnSTCEvict forwards to MDM.
	p.OnSTCEvict(0, 1, 1, 3)
	if p.MDM().progs[0].updates != 1 {
		t.Error("OnSTCEvict did not reach the MDM")
	}
	// OnSwapDone forwards to RSM (shared-region swap).
	p.OnSwapDone(5, false, 0, 1)
	if p.RSM().progs[0].cur.swapTotal != 1 {
		t.Error("OnSwapDone did not reach the RSM")
	}
	if p.Name() != "profess" || p.WriteWeight() != 8 {
		t.Error("metadata wrong")
	}
}

func TestDecisionString(t *testing.T) {
	for _, d := range []Decision{DecisionMDM, DecisionHelp, DecisionProtect, DecisionProtectCase3} {
		if d.String() == "" {
			t.Errorf("empty string for %d", d)
		}
	}
}
