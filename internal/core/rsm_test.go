package core

import (
	"math"
	"testing"
)

func newTestRSM(t *testing.T, n int, msamp int64) *RSM {
	t.Helper()
	r, err := NewRSM(RSMConfig{NumPrograms: n, SamplingRequests: msamp, Alpha: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRSMValidation(t *testing.T) {
	if _, err := NewRSM(RSMConfig{NumPrograms: 0, SamplingRequests: 10, Alpha: 0.125}); err == nil {
		t.Error("zero programs should fail")
	}
	if _, err := NewRSM(RSMConfig{NumPrograms: 1, SamplingRequests: 0, Alpha: 0.125}); err == nil {
		t.Error("zero sampling period should fail")
	}
	if _, err := NewRSM(RSMConfig{NumPrograms: 1, SamplingRequests: 10, Alpha: 0}); err == nil {
		t.Error("zero alpha should fail")
	}
	if _, err := NewRSM(RSMConfig{NumPrograms: 1, SamplingRequests: 10, Alpha: 0.125, Probe: true}); err == nil {
		t.Error("probe without regions should fail")
	}
}

func TestRSMDefaultsToOne(t *testing.T) {
	r := newTestRSM(t, 2, 1000)
	if r.SFA(0) != 1 || r.SFB(1) != 1 {
		t.Error("slowdown factors should default to 1")
	}
}

func TestSFAHandComputed(t *testing.T) {
	// Eq. 2 on the first completed period, with the +1 anti-zero bias:
	// private 80/100 from M1, shared 120/300 from M1.
	r := newTestRSM(t, 1, 400)
	for i := 0; i < 100; i++ {
		r.OnServed(0, 0, true, i < 80)
	}
	for i := 0; i < 300; i++ {
		r.OnServed(0, 5, false, i < 120)
	}
	if r.Periods[0] != 1 {
		t.Fatalf("periods = %d, want 1", r.Periods[0])
	}
	want := (81.0 / 101.0) / (121.0 / 301.0)
	if got := r.SFA(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("SF_A = %v, want %v", got, want)
	}
}

func TestSFBHandComputed(t *testing.T) {
	// Eq. 3: 4 self swaps of 9 total -> smoothed (4+1)/(9+1) -> SF_B = 2.
	r := newTestRSM(t, 2, 100)
	for i := 0; i < 9; i++ {
		if i < 4 {
			r.OnSwapDone(false, 0, 0) // both blocks belong to program 0
		} else {
			r.OnSwapDone(false, 1, 0) // cross-program swap
		}
	}
	for i := 0; i < 100; i++ {
		r.OnServed(0, 5, false, true)
	}
	if got, want := r.SFB(0), 10.0/5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("SF_B = %v, want %v", got, want)
	}
}

func TestRSMPrivateSwapsNotCounted(t *testing.T) {
	r := newTestRSM(t, 1, 10)
	r.OnSwapDone(true, 0, 0) // private-region swap: ignored
	for i := 0; i < 10; i++ {
		r.OnServed(0, 3, false, true)
	}
	// Both swap counters were zero; with the +1 bias SF_B = 1.
	if got := r.SFB(0); got != 1 {
		t.Errorf("SF_B = %v, want 1 (private swaps ignored)", got)
	}
}

func TestRSMSwapAttribution(t *testing.T) {
	r := newTestRSM(t, 2, 50)
	// Cross swap: both programs count it in swapTotal, neither in self.
	r.OnSwapDone(false, 0, 1)
	for c := 0; c < 2; c++ {
		for i := 0; i < 50; i++ {
			r.OnServed(c, 5, false, true)
		}
	}
	// Program 0: self 0 -> (0+1)=1; total 1 -> (1+1)=2; SF_B = 2.
	if got := r.SFB(0); math.Abs(got-2) > 1e-9 {
		t.Errorf("SF_B(0) = %v, want 2", got)
	}
	if got := r.SFB(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("SF_B(1) = %v, want 2", got)
	}
}

func TestRSMUncontendedSFAIsOne(t *testing.T) {
	// A program alone with the same M1-hit ratio everywhere: SF_A ~ 1.
	// The M1-hit pattern (every 3rd) is chosen coprime to the
	// private-region pattern (every 8th) so the ratios match.
	r := newTestRSM(t, 1, 1000)
	for p := 0; p < 20; p++ {
		for i := 0; i < 1000; i++ {
			r.OnServed(0, i%128, i%8 == 0, i%3 == 0)
		}
	}
	if got := r.SFA(0); math.Abs(got-1) > 0.1 {
		t.Errorf("uncontended SF_A = %v, want ~1", got)
	}
}

func TestRSMSmoothingDampsChange(t *testing.T) {
	r := newTestRSM(t, 1, 100)
	// First period: balanced -> SF_A ~ 1.
	for i := 0; i < 50; i++ {
		r.OnServed(0, 0, true, i%2 == 0)
	}
	for i := 0; i < 50; i++ {
		r.OnServed(0, 5, false, i%2 == 0)
	}
	first := r.SFA(0)
	// Second period: shared starved of M1 (raw SF_A would jump).
	for i := 0; i < 50; i++ {
		r.OnServed(0, 0, true, true)
	}
	for i := 0; i < 50; i++ {
		r.OnServed(0, 5, false, false)
	}
	second := r.SFA(0)
	if second <= first {
		t.Errorf("SF_A should rise under shared-region starvation: %v -> %v", first, second)
	}
	// With alpha = 0.125 the jump is damped well below the raw value
	// ((51/101)/(1/51) ~ 25x).
	if second > first*5 {
		t.Errorf("smoothing too weak: %v -> %v", first, second)
	}
}

func TestRSMDegenerateRatioFallsBackToOne(t *testing.T) {
	r := newTestRSM(t, 1, 10)
	// All requests private: shared counters zero -> SF_A must fall back 1.
	for i := 0; i < 10; i++ {
		r.OnServed(0, 0, true, true)
	}
	if got := r.SFA(0); got != 1 {
		t.Errorf("degenerate SF_A = %v, want 1", got)
	}
}

func TestRSMProbeSeries(t *testing.T) {
	r, err := NewRSM(RSMConfig{NumPrograms: 1, SamplingRequests: 96, Alpha: 0.125, Probe: true, Regions: 8})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		for i := 0; i < 96; i++ {
			r.OnServed(0, i%8, i%8 == 0, i%2 == 0)
		}
	}
	sig, raw, avg := r.ProbeSeries(0)
	if len(sig) != 3 || len(raw) != 3 || len(avg) != 3 {
		t.Errorf("probe lengths = %d/%d/%d, want 3 each", len(sig), len(raw), len(avg))
	}
	// Perfectly uniform regions: sigma ~ 0.
	if sig[0] > 1e-9 {
		t.Errorf("uniform traffic should have ~0 region spread, got %v", sig[0])
	}
}
