// Package core implements the ProFess framework — the paper's primary
// contribution: the Relative-Slowdown Monitor (RSM, §3.1), the
// probabilistic Migration-Decision Mechanism (MDM, §3.2), and their
// integration (§3.3, Table 7). MDM is also usable as a standalone policy,
// matching the paper's MDM-only evaluations (§5.1-5.3).
package core

import (
	"fmt"
	"math"

	"profess/internal/fault"
	"profess/internal/stats"
	"profess/internal/telemetry"
)

// RSMConfig parameterises the Relative-Slowdown Monitor.
type RSMConfig struct {
	NumPrograms int
	// SamplingRequests is M_samp: the sampling-period duration in served
	// requests per program (§4.1: 128K at full scale; scaled runs shrink
	// it with the rest of the system).
	SamplingRequests int64
	// Alpha is the exponential-smoothing parameter (§3.1.3: 0.125).
	Alpha float64
	// Probe enables the Table 4 instrumentation (per-region request
	// spread and raw/averaged SF_A series).
	Probe bool
	// Regions is required when Probe is set.
	Regions int
	// ReconvergePeriods is how many consecutive clean sampling periods a
	// program's monitor must complete after an implausible slowdown
	// factor before its SF values are trusted again (0 = 2).
	ReconvergePeriods int
}

// DefaultRSMConfig returns the §4.1 configuration for n programs, with
// M_samp scaled by the given capacity scale.
func DefaultRSMConfig(n int, scale float64) RSMConfig {
	m := int64(128_000 * scale)
	if m < 1024 {
		m = 1024
	}
	return RSMConfig{NumPrograms: n, SamplingRequests: m, Alpha: 0.125}
}

// rsmCounters is one program's Table 3 counter set.
type rsmCounters struct {
	reqM1P    int64 // requests served from M1 of the private region
	reqTotalP int64 // requests served from M1+M2 of the private region
	reqM1S    int64 // requests served from M1 of the shared regions
	reqTotalS int64 // requests served from M1+M2 of the shared regions
	swapSelf  int64 // swaps where both blocks belong to the program
	swapTotal int64 // swaps where at least one block belongs to it
}

// rsmProgram is the per-program monitor state.
type rsmProgram struct {
	cur rsmCounters
	// Smoothed Table 3 counters (§3.1.3: each counter is incremented by
	// one before being added to its average, avoiding zeros).
	avg [6]stats.Smoother
	sfA float64
	sfB float64

	// degraded marks the program's SF values as untrusted after a sanity
	// check rejected them; cleanLeft counts the clean periods still
	// needed before re-trusting.
	degraded  bool
	cleanLeft int

	// Probe series (Table 4).
	regionCounts []int64
	sigmaReqPct  []float64
	rawSFA       []float64
	avgSFA       []float64
}

// RSM is the Relative-Slowdown Monitor: per-program counter sets updated
// on every served request and swap, recomputed into the slowdown factors
// SF_A (eq. 2) and SF_B (eq. 3) at the end of every sampling period.
type RSM struct {
	cfg   RSMConfig
	progs []rsmProgram
	// Periods counts completed sampling periods per program.
	Periods []int64

	// inj, when armed, corrupts SF registers at period boundaries.
	inj *fault.Injector
	// ImplausibleSFs counts slowdown factors rejected by the sanity
	// checks; DegradedEntries counts transitions into degraded mode;
	// DegradedPeriods counts sampling periods completed while degraded.
	ImplausibleSFs  int64
	DegradedEntries int64
	DegradedPeriods int64
}

// NewRSM builds the monitor.
func NewRSM(cfg RSMConfig) (*RSM, error) {
	if cfg.NumPrograms <= 0 {
		return nil, fmt.Errorf("core: RSM needs at least one program")
	}
	if cfg.SamplingRequests <= 0 {
		return nil, fmt.Errorf("core: RSM sampling period must be positive")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("core: RSM alpha %v out of (0,1]", cfg.Alpha)
	}
	if cfg.Probe && cfg.Regions <= 0 {
		return nil, fmt.Errorf("core: RSM probe requires Regions")
	}
	if cfg.ReconvergePeriods <= 0 {
		cfg.ReconvergePeriods = 2
	}
	r := &RSM{cfg: cfg, progs: make([]rsmProgram, cfg.NumPrograms), Periods: make([]int64, cfg.NumPrograms)}
	for i := range r.progs {
		p := &r.progs[i]
		p.sfA, p.sfB = 1, 1
		for j := range p.avg {
			p.avg[j].Alpha = cfg.Alpha
		}
		if cfg.Probe {
			p.regionCounts = make([]int64, cfg.Regions)
		}
	}
	return r, nil
}

// OnServed records one served request for the program: region attribution
// (private vs shared) and which partition served it.
func (r *RSM) OnServed(core, region int, private, fromM1 bool) {
	p := &r.progs[core]
	if private {
		p.cur.reqTotalP++
		if fromM1 {
			p.cur.reqM1P++
		}
	} else {
		p.cur.reqTotalS++
		if fromM1 {
			p.cur.reqM1S++
		}
	}
	if p.regionCounts != nil {
		p.regionCounts[region]++
	}
	if p.cur.reqTotalP+p.cur.reqTotalS >= r.cfg.SamplingRequests {
		r.endPeriod(core)
	}
}

// OnSwapDone records a completed swap for RSM accounting. Swaps inside
// private regions are not counted (§3.1.2: in the private region all
// blocks belong to the same program, so that fraction is 1 by definition).
func (r *RSM) OnSwapDone(private bool, ownerM1, ownerM2 int) {
	if private {
		return
	}
	count := func(c int) {
		if c >= 0 && c < len(r.progs) {
			r.progs[c].cur.swapTotal++
			if ownerM1 == ownerM2 {
				r.progs[c].cur.swapSelf++
			}
		}
	}
	count(ownerM2)
	if ownerM1 != ownerM2 {
		count(ownerM1)
	}
}

// endPeriod recomputes SF_A and SF_B from the smoothed counters and resets
// the period counters (§3.1.3).
func (r *RSM) endPeriod(core int) {
	p := &r.progs[core]
	c := p.cur

	if p.regionCounts != nil {
		vals := make([]float64, len(p.regionCounts))
		for i, v := range p.regionCounts {
			vals[i] = float64(v)
			p.regionCounts[i] = 0
		}
		if m := stats.Mean(vals); m > 0 {
			p.sigmaReqPct = append(p.sigmaReqPct, stats.StdDev(vals)/m*100)
		}
		p.rawSFA = append(p.rawSFA, sfA(
			float64(c.reqM1P), float64(c.reqTotalP),
			float64(c.reqM1S), float64(c.reqTotalS)))
	}

	// Smooth the six counters, each incremented by one to avoid zeros.
	sm := func(i int, v int64) float64 { return p.avg[i].Add(float64(v) + 1) }
	m1P := sm(0, c.reqM1P)
	totP := sm(1, c.reqTotalP)
	m1S := sm(2, c.reqM1S)
	totS := sm(3, c.reqTotalS)
	self := sm(4, c.swapSelf)
	total := sm(5, c.swapTotal)

	p.sfA = sfA(m1P, totP, m1S, totS)
	p.sfB = total / self
	if r.inj.Fire(fault.SFCorruption) {
		// Injected register corruption: one SF arrives scrambled. The
		// sanity check below is the defense.
		if r.inj.Intn(2) == 0 {
			p.sfA = r.inj.CorruptSF()
		} else {
			p.sfB = r.inj.CorruptSF()
		}
	}
	// Sanity check: a slowdown factor must be a positive, finite value of
	// plausible magnitude. An implausible one means the monitoring state
	// is corrupt, so the whole smoothed history is discarded and the
	// program's guidance degrades to neutral until the monitor completes
	// ReconvergePeriods clean periods on fresh state.
	if !plausibleSF(p.sfA) || !plausibleSF(p.sfB) {
		r.ImplausibleSFs++
		if !p.degraded {
			r.DegradedEntries++
		}
		p.degraded = true
		p.cleanLeft = r.cfg.ReconvergePeriods
		p.sfA, p.sfB = 1, 1
		for j := range p.avg {
			p.avg[j].Reset()
		}
	} else if p.degraded {
		r.DegradedPeriods++
		p.cleanLeft--
		if p.cleanLeft <= 0 {
			p.degraded = false
		}
	}
	if p.regionCounts != nil {
		p.avgSFA = append(p.avgSFA, p.sfA)
	}

	p.cur = rsmCounters{}
	r.Periods[core]++
}

// plausibleSF accepts positive, finite slowdown factors below 1e9. The
// legitimate computation (smoothed counters incremented by one) can never
// produce NaN, an infinity, a non-positive value or that magnitude, so
// the check only fires on corrupted state and is a no-op in clean runs.
func plausibleSF(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0 && v < 1e9
}

// SetFaultInjector arms the monitor with a fault injector (nil disarms).
func (r *RSM) SetFaultInjector(inj *fault.Injector) { r.inj = inj }

// Degraded reports whether the program's slowdown factors are currently
// untrusted.
func (r *RSM) Degraded(core int) bool { return r.progs[core].degraded }

// DegradedAny reports whether any of the given programs is degraded.
func (r *RSM) DegradedAny(cores ...int) bool {
	for _, c := range cores {
		if c >= 0 && c < len(r.progs) && r.progs[c].degraded {
			return true
		}
	}
	return false
}

// AnyDegraded reports whether any program at all is degraded.
func (r *RSM) AnyDegraded() bool {
	for i := range r.progs {
		if r.progs[i].degraded {
			return true
		}
	}
	return false
}

// sfA evaluates eq. 2 defensively: an undefined ratio degrades to 1
// ("no observed competition") rather than to an extreme value.
func sfA(m1P, totP, m1S, totS float64) float64 {
	if totP <= 0 || totS <= 0 || m1S <= 0 {
		return 1
	}
	v := (m1P / totP) / (m1S / totS)
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return 1
	}
	return v
}

// SFA returns program core's current slowdown factor SF_A (eq. 2).
func (r *RSM) SFA(core int) float64 { return r.progs[core].sfA }

// SFB returns program core's current slowdown factor SF_B (eq. 3).
func (r *RSM) SFB(core int) float64 { return r.progs[core].sfB }

// RegisterTelemetry registers the monitor's per-program signals — the
// SF_A/SF_B trajectories the paper's time-series figures are built from,
// completed sampling periods, and the degraded-mode flag — with a
// per-epoch sampler.
func (r *RSM) RegisterTelemetry(s *telemetry.Sampler) {
	for i := range r.progs {
		i := i
		s.Gauge(fmt.Sprintf("p%d.sfa", i), func(int64) float64 { return r.progs[i].sfA })
		s.Gauge(fmt.Sprintf("p%d.sfb", i), func(int64) float64 { return r.progs[i].sfB })
		s.Counter(fmt.Sprintf("p%d.rsm_periods", i), func() int64 { return r.Periods[i] })
		s.Gauge(fmt.Sprintf("p%d.rsm_degraded", i), func(int64) float64 {
			if r.progs[i].degraded {
				return 1
			}
			return 0
		})
	}
	s.Counter("rsm.implausible_sfs", func() int64 { return r.ImplausibleSFs })
}

// ProbeSeries returns the Table 4 instrumentation for a program: the
// per-period region-spread percentages and the raw and averaged SF_A
// series. It returns nils unless the RSM was built with Probe.
func (r *RSM) ProbeSeries(core int) (sigmaReqPct, rawSFA, avgSFA []float64) {
	p := &r.progs[core]
	return p.sigmaReqPct, p.rawSFA, p.avgSFA
}
