// Package core implements the ProFess framework — the paper's primary
// contribution: the Relative-Slowdown Monitor (RSM, §3.1), the
// probabilistic Migration-Decision Mechanism (MDM, §3.2), and their
// integration (§3.3, Table 7). MDM is also usable as a standalone policy,
// matching the paper's MDM-only evaluations (§5.1-5.3).
package core

import (
	"fmt"
	"math"

	"profess/internal/stats"
)

// RSMConfig parameterises the Relative-Slowdown Monitor.
type RSMConfig struct {
	NumPrograms int
	// SamplingRequests is M_samp: the sampling-period duration in served
	// requests per program (§4.1: 128K at full scale; scaled runs shrink
	// it with the rest of the system).
	SamplingRequests int64
	// Alpha is the exponential-smoothing parameter (§3.1.3: 0.125).
	Alpha float64
	// Probe enables the Table 4 instrumentation (per-region request
	// spread and raw/averaged SF_A series).
	Probe bool
	// Regions is required when Probe is set.
	Regions int
}

// DefaultRSMConfig returns the §4.1 configuration for n programs, with
// M_samp scaled by the given capacity scale.
func DefaultRSMConfig(n int, scale float64) RSMConfig {
	m := int64(128_000 * scale)
	if m < 1024 {
		m = 1024
	}
	return RSMConfig{NumPrograms: n, SamplingRequests: m, Alpha: 0.125}
}

// rsmCounters is one program's Table 3 counter set.
type rsmCounters struct {
	reqM1P    int64 // requests served from M1 of the private region
	reqTotalP int64 // requests served from M1+M2 of the private region
	reqM1S    int64 // requests served from M1 of the shared regions
	reqTotalS int64 // requests served from M1+M2 of the shared regions
	swapSelf  int64 // swaps where both blocks belong to the program
	swapTotal int64 // swaps where at least one block belongs to it
}

// rsmProgram is the per-program monitor state.
type rsmProgram struct {
	cur rsmCounters
	// Smoothed Table 3 counters (§3.1.3: each counter is incremented by
	// one before being added to its average, avoiding zeros).
	avg [6]stats.Smoother
	sfA float64
	sfB float64

	// Probe series (Table 4).
	regionCounts []int64
	sigmaReqPct  []float64
	rawSFA       []float64
	avgSFA       []float64
}

// RSM is the Relative-Slowdown Monitor: per-program counter sets updated
// on every served request and swap, recomputed into the slowdown factors
// SF_A (eq. 2) and SF_B (eq. 3) at the end of every sampling period.
type RSM struct {
	cfg   RSMConfig
	progs []rsmProgram
	// Periods counts completed sampling periods per program.
	Periods []int64
}

// NewRSM builds the monitor.
func NewRSM(cfg RSMConfig) (*RSM, error) {
	if cfg.NumPrograms <= 0 {
		return nil, fmt.Errorf("core: RSM needs at least one program")
	}
	if cfg.SamplingRequests <= 0 {
		return nil, fmt.Errorf("core: RSM sampling period must be positive")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("core: RSM alpha %v out of (0,1]", cfg.Alpha)
	}
	if cfg.Probe && cfg.Regions <= 0 {
		return nil, fmt.Errorf("core: RSM probe requires Regions")
	}
	r := &RSM{cfg: cfg, progs: make([]rsmProgram, cfg.NumPrograms), Periods: make([]int64, cfg.NumPrograms)}
	for i := range r.progs {
		p := &r.progs[i]
		p.sfA, p.sfB = 1, 1
		for j := range p.avg {
			p.avg[j].Alpha = cfg.Alpha
		}
		if cfg.Probe {
			p.regionCounts = make([]int64, cfg.Regions)
		}
	}
	return r, nil
}

// OnServed records one served request for the program: region attribution
// (private vs shared) and which partition served it.
func (r *RSM) OnServed(core, region int, private, fromM1 bool) {
	p := &r.progs[core]
	if private {
		p.cur.reqTotalP++
		if fromM1 {
			p.cur.reqM1P++
		}
	} else {
		p.cur.reqTotalS++
		if fromM1 {
			p.cur.reqM1S++
		}
	}
	if p.regionCounts != nil {
		p.regionCounts[region]++
	}
	if p.cur.reqTotalP+p.cur.reqTotalS >= r.cfg.SamplingRequests {
		r.endPeriod(core)
	}
}

// OnSwapDone records a completed swap for RSM accounting. Swaps inside
// private regions are not counted (§3.1.2: in the private region all
// blocks belong to the same program, so that fraction is 1 by definition).
func (r *RSM) OnSwapDone(private bool, ownerM1, ownerM2 int) {
	if private {
		return
	}
	count := func(c int) {
		if c >= 0 && c < len(r.progs) {
			r.progs[c].cur.swapTotal++
			if ownerM1 == ownerM2 {
				r.progs[c].cur.swapSelf++
			}
		}
	}
	count(ownerM2)
	if ownerM1 != ownerM2 {
		count(ownerM1)
	}
}

// endPeriod recomputes SF_A and SF_B from the smoothed counters and resets
// the period counters (§3.1.3).
func (r *RSM) endPeriod(core int) {
	p := &r.progs[core]
	c := p.cur

	if p.regionCounts != nil {
		vals := make([]float64, len(p.regionCounts))
		for i, v := range p.regionCounts {
			vals[i] = float64(v)
			p.regionCounts[i] = 0
		}
		if m := stats.Mean(vals); m > 0 {
			p.sigmaReqPct = append(p.sigmaReqPct, stats.StdDev(vals)/m*100)
		}
		p.rawSFA = append(p.rawSFA, sfA(
			float64(c.reqM1P), float64(c.reqTotalP),
			float64(c.reqM1S), float64(c.reqTotalS)))
	}

	// Smooth the six counters, each incremented by one to avoid zeros.
	sm := func(i int, v int64) float64 { return p.avg[i].Add(float64(v) + 1) }
	m1P := sm(0, c.reqM1P)
	totP := sm(1, c.reqTotalP)
	m1S := sm(2, c.reqM1S)
	totS := sm(3, c.reqTotalS)
	self := sm(4, c.swapSelf)
	total := sm(5, c.swapTotal)

	p.sfA = sfA(m1P, totP, m1S, totS)
	p.sfB = total / self
	if p.regionCounts != nil {
		p.avgSFA = append(p.avgSFA, p.sfA)
	}

	p.cur = rsmCounters{}
	r.Periods[core]++
}

// sfA evaluates eq. 2 defensively: an undefined ratio degrades to 1
// ("no observed competition") rather than to an extreme value.
func sfA(m1P, totP, m1S, totS float64) float64 {
	if totP <= 0 || totS <= 0 || m1S <= 0 {
		return 1
	}
	v := (m1P / totP) / (m1S / totS)
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return 1
	}
	return v
}

// SFA returns program core's current slowdown factor SF_A (eq. 2).
func (r *RSM) SFA(core int) float64 { return r.progs[core].sfA }

// SFB returns program core's current slowdown factor SF_B (eq. 3).
func (r *RSM) SFB(core int) float64 { return r.progs[core].sfB }

// ProbeSeries returns the Table 4 instrumentation for a program: the
// per-period region-spread percentages and the raw and averaged SF_A
// series. It returns nils unless the RSM was built with Probe.
func (r *RSM) ProbeSeries(core int) (sigmaReqPct, rawSFA, avgSFA []float64) {
	p := &r.progs[core]
	return p.sigmaReqPct, p.rawSFA, p.avgSFA
}
