package core

import (
	"fmt"

	"profess/internal/hybrid"
	"profess/internal/stats"
	"profess/internal/telemetry"
)

// MDMConfig parameterises the Migration-Decision Mechanism.
type MDMConfig struct {
	NumPrograms int
	// MinBenefit is the least predicted number of remaining accesses that
	// justifies a promotion (§3.2.3); it equals PoM's K (§4.1: 8).
	MinBenefit float64
	// PhaseUpdates is the duration of each observation and estimation
	// phase, in MDM counter updates per program (§4.1: 1K).
	PhaseUpdates int64
	// RecomputeEvery is the estimation-phase recomputation interval in
	// updates per program (§4.1: 100).
	RecomputeEvery int64
	// WriteWeight counts each write as this many accesses (§4.1: 8).
	WriteWeight int
	// InitialExpCnt seeds exp_cnt before the first estimation phase
	// completes. The paper does not specify a cold-start value; seeding
	// optimistically (2 x MinBenefit) lets early promotions happen so the
	// statistics machinery has behaviour to learn from.
	InitialExpCnt float64
}

// DefaultMDMConfig returns the §4.1 configuration.
func DefaultMDMConfig(n int) MDMConfig {
	return MDMConfig{
		NumPrograms:    n,
		MinBenefit:     8,
		PhaseUpdates:   1000,
		RecomputeEvery: 100,
		WriteWeight:    8,
		InitialExpCnt:  16,
	}
}

// mdmProgram holds one program's Table 6 counters and registered values.
type mdmProgram struct {
	// Table 6 counters, indexed by QAC values (q_E in 1..3, q_I in 0..3).
	accumCnt [hybrid.NumQI]float64               // accumulated counts per q_E
	numQSumI [hybrid.NumQI]float64               // transitions to q_E
	numQ     [hybrid.NumQI][hybrid.NumQI]float64 // transitions q_I -> q_E
	numQSumE [hybrid.NumQI]float64               // transitions from q_I

	// Registered exp_cnt(q_I) values (eq. 5), updated during estimation
	// phases and held between updates ("the values are registered").
	expCnt [hybrid.NumQI]float64

	updates   int64 // updates within the current phase
	observing bool  // observation phase (no recomputation) vs estimation
	// Recomputations counts exp_cnt refreshes, for tests/reporting.
	Recomputations int64

	// degraded marks the program's learned statistics as untrusted after a
	// corrupt counter update was detected; while set, migration decisions
	// fall back to competing counters. lastNow supports the degraded-cycle
	// accounting (the MDM has no clock of its own, only access stamps).
	degraded bool
	lastNow  int64
}

// MDM is the probabilistic Migration-Decision Mechanism: it learns, per
// program and per QAC value, the expected number of accesses a block will
// receive during an STC residency (eq. 5-7 with Laplace smoothing) and
// approves a swap only when the predicted remaining accesses of the M2
// block exceed those of the M1 block by at least MinBenefit (§3.2.3).
//
// MDM implements hybrid.Policy, so it runs standalone exactly as in the
// paper's §5.1-5.3 evaluations; ProFess wraps it with RSM guidance.
type MDM struct {
	hybrid.BasePolicy
	cfg   MDMConfig
	progs []mdmProgram

	// fallback holds the competing counters (PoM-style, one per swap
	// group) that decide promotions for degraded programs; lazily built on
	// the first degradation and dropped once every program re-converges.
	fallback map[int64]*ccGroup

	// Decision tallies for reporting.
	Considered int64 // M2 accesses evaluated
	Approved   int64 // swaps scheduled

	// CorruptUpdates counts Table 6 updates rejected as corrupt;
	// DegradedEntries counts transitions into degraded mode;
	// DegradedCycles accrues cycles spent degraded; DegradedDecisions
	// counts accesses decided by the fallback competing counters.
	CorruptUpdates    int64
	DegradedEntries   int64
	DegradedCycles    int64
	DegradedDecisions int64
}

// ccGroup is one swap group's competing counter for the degraded-mode
// fallback: majority-element tracking of the hottest M2 candidate.
type ccGroup struct {
	candidate int8 // slot of the current M2 candidate, -1 none
	counter   uint32
}

// NewMDM builds the mechanism.
func NewMDM(cfg MDMConfig) (*MDM, error) {
	if cfg.NumPrograms <= 0 {
		return nil, fmt.Errorf("core: MDM needs at least one program")
	}
	if cfg.PhaseUpdates <= 0 || cfg.RecomputeEvery <= 0 {
		return nil, fmt.Errorf("core: MDM phase durations must be positive")
	}
	if cfg.WriteWeight <= 0 {
		cfg.WriteWeight = 1
	}
	if cfg.InitialExpCnt <= 0 {
		// An unseeded exp_cnt would predict zero remaining accesses for
		// every block until the first estimation phase completes, freezing
		// all promotions; default to the optimistic 2 x MinBenefit so the
		// cold-start prediction is always strictly positive.
		cfg.InitialExpCnt = 2 * cfg.MinBenefit
		if cfg.InitialExpCnt <= 0 {
			cfg.InitialExpCnt = 1
		}
	}
	m := &MDM{cfg: cfg, progs: make([]mdmProgram, cfg.NumPrograms)}
	for i := range m.progs {
		p := &m.progs[i]
		p.observing = true
		for q := 0; q < hybrid.NumQI; q++ {
			p.expCnt[q] = cfg.InitialExpCnt
		}
	}
	return m, nil
}

// Name implements hybrid.Policy.
func (m *MDM) Name() string { return "mdm" }

// WriteWeight implements hybrid.Policy.
func (m *MDM) WriteWeight() int { return m.cfg.WriteWeight }

// MinBenefit returns the configured promotion threshold.
func (m *MDM) MinBenefit() float64 { return m.cfg.MinBenefit }

// OnSTCEvict implements hybrid.Policy: one Table 6 counter update for a
// block whose ST entry left the STC with a non-zero access count.
func (m *MDM) OnSTCEvict(core int, qI, qE uint8, count uint32) {
	if core < 0 || core >= len(m.progs) || qE == 0 {
		return
	}
	p := &m.progs[core]
	if qI >= hybrid.NumQI || qE > hybrid.NumQE || count == 0 || count > hybrid.CounterMax {
		// Sanity check: legitimate hardware can only deliver q_I in
		// [0, NumQI), q_E in [1, NumQE] and counts in [1, CounterMax] —
		// a zero count quantizes to q_E = 0, which never reaches this
		// point, so (q_E >= 1, count = 0) is inconsistent metadata; it
		// would also pollute eq. 6 with zero-count residencies and drag
		// exp_cnt toward zero. Anything else is corrupt ST metadata — reject
		// the update, discard the phase it may have polluted, and degrade
		// the program to competing-counter decisions until a full
		// observation phase completes on clean updates.
		m.CorruptUpdates++
		if !p.degraded {
			m.DegradedEntries++
		}
		*p = mdmProgram{observing: true, Recomputations: p.Recomputations, degraded: true, lastNow: p.lastNow}
		for q := 0; q < hybrid.NumQI; q++ {
			p.expCnt[q] = m.cfg.InitialExpCnt
		}
		if m.fallback == nil {
			m.fallback = make(map[int64]*ccGroup)
		}
		return
	}
	p.accumCnt[qE] += float64(count)
	p.numQSumI[qE]++
	p.numQ[qI][qE]++
	p.numQSumE[qI]++

	p.updates++
	if p.observing {
		if p.updates >= m.cfg.PhaseUpdates {
			// Observation done: enter the estimation phase.
			p.observing = false
			p.updates = 0
			p.recompute()
			if p.degraded {
				// A full observation phase of clean updates re-converged
				// the statistics: trust the recomputed estimates again.
				p.degraded = false
				m.dropFallbackIfIdle()
			}
		}
		return
	}
	if p.updates%m.cfg.RecomputeEvery == 0 {
		p.recompute()
	}
	if p.updates >= m.cfg.PhaseUpdates {
		// Estimation done: reset counters, enter observation (§3.2.2:
		// counters are reset at the beginning of each observation phase).
		*p = mdmProgram{observing: true, expCnt: p.expCnt, Recomputations: p.Recomputations}
	}
}

// recompute refreshes the registered exp_cnt values per eq. 5-7.
func (p *mdmProgram) recompute() {
	p.Recomputations++
	var avgCnt [hybrid.NumQI]float64
	for qE := 1; qE <= hybrid.NumQE; qE++ {
		if p.numQSumI[qE] > 0 {
			avgCnt[qE] = p.accumCnt[qE] / p.numQSumI[qE] // eq. 6
		}
	}
	for qI := 0; qI < hybrid.NumQI; qI++ {
		var e float64
		for qE := 1; qE <= hybrid.NumQE; qE++ {
			// eq. 7 with Laplace smoothing: (n+1)/(N+num_qE).
			pTrans := (p.numQ[qI][qE] + 1) / (p.numQSumE[qI] + float64(hybrid.NumQE))
			e += avgCnt[qE] * pTrans // eq. 5
		}
		p.expCnt[qI] = e
	}
}

// dropFallbackIfIdle frees the competing counters once no program is
// degraded any more.
func (m *MDM) dropFallbackIfIdle() {
	for i := range m.progs {
		if m.progs[i].degraded {
			return
		}
	}
	m.fallback = nil
}

// Degraded reports whether the program's learned statistics are currently
// untrusted.
func (m *MDM) Degraded(core int) bool {
	return core >= 0 && core < len(m.progs) && m.progs[core].degraded
}

// ExpCnt returns the registered expected access count for (program, q_I).
// A q_I outside the quantizer's range can only come from corrupt ST
// metadata; it predicts zero remaining accesses rather than indexing out
// of bounds.
func (m *MDM) ExpCnt(core int, qI uint8) float64 {
	if core < 0 || core >= len(m.progs) || qI >= hybrid.NumQI {
		return 0
	}
	return m.progs[core].expCnt[qI]
}

// RemainingM2 evaluates eq. 8 for the accessed M2 block.
func (m *MDM) RemainingM2(info hybrid.AccessInfo) float64 {
	e := info.Entry
	return m.ExpCnt(info.Core, e.QInsert[info.Slot]) - float64(e.Count(info.Slot))
}

// Decide runs the §3.2.3 migration decision for an access to an M2 block.
// treatM1Vacant implements ProFess's Case 1 aggressive help: the M1
// resident's remaining accesses are ignored, as if M1 were vacant.
func (m *MDM) Decide(info hybrid.AccessInfo, ctl hybrid.PolicyContext, treatM1Vacant bool) bool {
	remM2 := m.RemainingM2(info)
	if remM2 < m.cfg.MinBenefit {
		return false // no benefit to promote at all
	}
	if treatM1Vacant {
		return true // condition (a): M1 considered vacant
	}
	e := info.Entry
	m1Slot := ctl.M1Slot(info.Group)
	cnt1 := e.Count(m1Slot)
	if cnt1 == 0 {
		// Condition (b): M1 occupied but not accessed while some other
		// block of the group has been, hinting the M1 block is unlikely
		// to be accessed soon. We read "some other block" as a block
		// besides both the M1 resident and the candidate itself — i.e.
		// the group shows activity while M1 stays idle — or repeated
		// activity on the candidate beyond the current touch. The looser
		// reading (candidate counts as evidence) fires on every first
		// touch of a quiet group and over-promotes under STC thrash.
		for s := 0; s < hybrid.MaxSlots; s++ {
			if s != m1Slot && s != info.Slot && e.Count(s) > 0 {
				return true
			}
		}
		weight := uint32(1)
		if info.Write {
			weight = uint32(m.cfg.WriteWeight)
		}
		return e.Count(info.Slot) > weight // candidate was active before this touch
	}
	// Condition (c): predict the M1 resident's remaining accesses.
	ownerM1 := ctl.Owner(info.Group, m1Slot)
	if ownerM1 < 0 {
		return true // unallocated M1 block cannot be worth protecting
	}
	remM1 := m.ExpCnt(ownerM1, e.QInsert[m1Slot]) - float64(cnt1)
	if remM1 <= 0 {
		return true // (c.i)
	}
	return remM2-remM1 >= m.cfg.MinBenefit // (c.ii)
}

// OnAccess implements hybrid.Policy: standalone MDM, no fairness guidance.
// Degraded programs are decided by the competing-counter fallback instead
// of the (untrusted) learned estimates.
func (m *MDM) OnAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	degraded := false
	if info.Core >= 0 && info.Core < len(m.progs) {
		p := &m.progs[info.Core]
		if p.degraded {
			degraded = true
			if p.lastNow > 0 && info.Now > p.lastNow {
				m.DegradedCycles += info.Now - p.lastNow
			}
		}
		p.lastNow = info.Now
	}
	if degraded {
		m.fallbackAccess(info, ctl)
		return
	}
	if info.Loc == 0 {
		return
	}
	m.Considered++
	if m.Decide(info, ctl, false) && ctl.ScheduleSwap(info.Group, info.Slot) {
		m.Approved++
	}
}

// fallbackAccess is the degraded-mode policy: PoM-style per-group
// competing counters (an M1 access decays the challenger, an M2 access
// competes for candidacy) with the promotion threshold playing
// MinBenefit's role. It needs no learned state, so it stays sound while
// the Table 6 statistics re-converge.
func (m *MDM) fallbackAccess(info hybrid.AccessInfo, ctl hybrid.PolicyContext) {
	m.DegradedDecisions++
	g := m.fallback[info.Group]
	if g == nil {
		g = &ccGroup{candidate: -1}
		m.fallback[info.Group] = g
	}
	if info.Loc == 0 {
		if g.counter > 0 {
			g.counter--
		}
		return
	}
	m.Considered++
	weight := uint32(1)
	if info.Write {
		weight = uint32(m.cfg.WriteWeight)
	}
	switch {
	case g.candidate == int8(info.Slot):
		g.counter += weight
	case g.counter <= weight:
		g.candidate = int8(info.Slot)
		g.counter = weight
	default:
		g.counter -= weight
	}
	if g.candidate == int8(info.Slot) && float64(g.counter) >= m.cfg.MinBenefit {
		if ctl.ScheduleSwap(info.Group, info.Slot) {
			m.Approved++
			g.candidate = -1
			g.counter = 0
		}
	}
}

// RegisterTelemetry registers the mechanism's signals with a per-epoch
// sampler: the swap accept/reject tallies, the registered exp_cnt tables
// (one gauge per program and q_I), and the degradation counters.
func (m *MDM) RegisterTelemetry(s *telemetry.Sampler) {
	s.Counter("mdm.considered", func() int64 { return m.Considered })
	s.Counter("mdm.approved", func() int64 { return m.Approved })
	s.Counter("mdm.rejected", func() int64 { return m.Considered - m.Approved })
	s.Counter("mdm.corrupt_updates", func() int64 { return m.CorruptUpdates })
	s.Counter("mdm.fallback_decisions", func() int64 { return m.DegradedDecisions })
	for i := range m.progs {
		i := i
		for q := 0; q < hybrid.NumQI; q++ {
			q := q
			s.Gauge(fmt.Sprintf("p%d.expcnt.q%d", i, q), func(int64) float64 {
				return m.progs[i].expCnt[q]
			})
		}
		s.Counter(fmt.Sprintf("p%d.mdm_recomputes", i), func() int64 {
			return m.progs[i].Recomputations
		})
	}
}

// ResilienceStats reports the mechanism's degradation counters.
func (m *MDM) ResilienceStats() stats.Resilience {
	return stats.Resilience{
		CorruptQACUpdates: m.CorruptUpdates,
		DegradedEntries:   m.DegradedEntries,
		DegradedCycles:    m.DegradedCycles,
		DegradedDecisions: m.DegradedDecisions,
	}
}

var _ hybrid.Policy = (*MDM)(nil)
