package core

import (
	"math"
	"math/rand"
	"testing"

	"profess/internal/hybrid"
)

// checkExpCntPositive asserts the eq. 5-7 invariant the migration decision
// relies on: every registered exp_cnt is strictly positive and finite. A
// zero or negative estimate would freeze promotions for that q_I class; an
// infinite or NaN one would approve every swap.
func checkExpCntPositive(t *testing.T, m *MDM, core int, context string) {
	t.Helper()
	for q := uint8(0); q < hybrid.NumQI; q++ {
		e := m.ExpCnt(core, q)
		if !(e > 0) || math.IsInf(e, 0) || math.IsNaN(e) {
			t.Fatalf("%s: ExpCnt(%d, q%d) = %v, want strictly positive finite", context, core, q, e)
		}
	}
}

// TestMDMExpCntColdStart: before any statistics exist — including a config
// that leaves both InitialExpCnt and MinBenefit unset — the cold-start
// estimates must already be strictly positive and finite.
func TestMDMExpCntColdStart(t *testing.T) {
	cases := []struct {
		name string
		cfg  MDMConfig
	}{
		{"default", DefaultMDMConfig(2)},
		{"unset-initial", MDMConfig{NumPrograms: 2, MinBenefit: 8, PhaseUpdates: 10, RecomputeEvery: 5, WriteWeight: 8}},
		{"all-zero-knobs", MDMConfig{NumPrograms: 1, PhaseUpdates: 10, RecomputeEvery: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := NewMDM(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for core := 0; core < c.cfg.NumPrograms; core++ {
				checkExpCntPositive(t, m, core, "cold start")
			}
		})
	}
}

// TestMDMExpCntAlwaysPositive drives random but valid Table 6 update
// sequences — spanning many observation/estimation phase transitions and
// recomputations — and checks the positivity invariant after every single
// update. Short phases make the recompute paths (including Laplace
// smoothing over transitions that were never observed) fire thousands of
// times.
func TestMDMExpCntAlwaysPositive(t *testing.T) {
	for _, seed := range []int64{1, 2, 42} {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultMDMConfig(2)
		cfg.PhaseUpdates = 16
		cfg.RecomputeEvery = 4
		m, err := NewMDM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			core := rng.Intn(cfg.NumPrograms)
			// Valid hardware-deliverable update: q_I in [0, NumQI),
			// q_E in [1, NumQE], count in [1, CounterMax]. Skew toward a
			// single q_E class sometimes, so whole phases complete having
			// never observed the other classes (the smoothing-only rows).
			qE := uint8(1 + rng.Intn(hybrid.NumQE))
			if rng.Intn(4) == 0 {
				qE = 1
			}
			qI := uint8(rng.Intn(hybrid.NumQI))
			count := uint32(1 + rng.Intn(hybrid.CounterMax))
			m.OnSTCEvict(core, qI, qE, count)
			checkExpCntPositive(t, m, core, "after valid update")
		}
	}
}

// TestMDMExpCntSurvivesCorruption: corrupt updates (out-of-range QACs, the
// inconsistent count=0 with q_E>=1, and counts past saturation) must reset
// the program to positive cold-start estimates, never poison them — and the
// recovery observation phase must land on positive learned values again.
func TestMDMExpCntSurvivesCorruption(t *testing.T) {
	cfg := DefaultMDMConfig(1)
	cfg.PhaseUpdates = 8
	cfg.RecomputeEvery = 2
	m, err := NewMDM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := []struct {
		qI, qE uint8
		count  uint32
	}{
		{hybrid.NumQI, 1, 5},          // q_I out of range
		{0, hybrid.NumQE + 1, 5},      // q_E out of range
		{0, 1, 0},                     // inconsistent: counted eviction with zero count
		{0, 1, hybrid.CounterMax + 1}, // count past saturation
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		// Some clean updates, then a corruption, then the clean updates
		// that re-converge the program.
		for i := 0; i < rng.Intn(20); i++ {
			m.OnSTCEvict(0, uint8(rng.Intn(hybrid.NumQI)), 1+uint8(rng.Intn(hybrid.NumQE)), 1+uint32(rng.Intn(hybrid.CounterMax)))
			checkExpCntPositive(t, m, 0, "clean update")
		}
		c := corrupt[round%len(corrupt)]
		m.OnSTCEvict(0, c.qI, c.qE, c.count)
		checkExpCntPositive(t, m, 0, "after corrupt update")
		if !m.Degraded(0) {
			t.Fatalf("round %d: corrupt update %+v did not degrade the program", round, c)
		}
		// A full observation phase of clean updates must re-converge.
		for i := int64(0); i < cfg.PhaseUpdates; i++ {
			m.OnSTCEvict(0, 0, 1, 4)
			checkExpCntPositive(t, m, 0, "recovery update")
		}
		if m.Degraded(0) {
			t.Fatalf("round %d: program still degraded after a clean observation phase", round)
		}
	}
	if m.CorruptUpdates != 50 {
		t.Errorf("CorruptUpdates = %d, want 50", m.CorruptUpdates)
	}
}
