package core

import (
	"testing"

	"profess/internal/fault"
	"profess/internal/hybrid"
)

// feedPeriod drives one full RSM sampling period of mixed traffic.
func feedPeriod(r *RSM, msamp int64) {
	for i := int64(0); i < msamp; i++ {
		r.OnServed(0, 0, i%2 == 0, i%3 == 0)
	}
}

func TestRSMDegradedEntryAndExit(t *testing.T) {
	r := newTestRSM(t, 1, 100)
	// Every period boundary corrupts one SF register.
	r.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 1, SFCorruptRate: 1}))
	feedPeriod(r, 100)
	if !r.Degraded(0) || !r.AnyDegraded() || !r.DegradedAny(0) {
		t.Fatal("corrupted SF must enter degraded mode")
	}
	if r.ImplausibleSFs != 1 || r.DegradedEntries != 1 {
		t.Errorf("implausible=%d entries=%d, want 1/1", r.ImplausibleSFs, r.DegradedEntries)
	}
	// Degraded SFs are neutralised, never served corrupt.
	if r.SFA(0) != 1 || r.SFB(0) != 1 {
		t.Errorf("degraded SFs = %v/%v, want 1/1", r.SFA(0), r.SFB(0))
	}

	// Disarm and run clean periods: the monitor must re-trust its state
	// only after ReconvergePeriods (default 2) clean periods.
	r.SetFaultInjector(nil)
	feedPeriod(r, 100)
	if !r.Degraded(0) {
		t.Fatal("one clean period must not yet re-trust the monitor")
	}
	feedPeriod(r, 100)
	if r.Degraded(0) {
		t.Fatal("two clean periods must exit degraded mode")
	}
	if r.DegradedPeriods != 2 {
		t.Errorf("degraded periods = %d, want 2", r.DegradedPeriods)
	}
}

func TestRSMDegradationDeterministicUnderSeed(t *testing.T) {
	run := func() (int64, int64, float64, float64) {
		r := newTestRSM(t, 1, 50)
		r.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 42, SFCorruptRate: 0.3}))
		for p := 0; p < 40; p++ {
			feedPeriod(r, 50)
		}
		return r.ImplausibleSFs, r.DegradedEntries, r.SFA(0), r.SFB(0)
	}
	i1, e1, a1, b1 := run()
	i2, e2, a2, b2 := run()
	if i1 != i2 || e1 != e2 || a1 != a2 || b1 != b2 {
		t.Errorf("fixed fault seed must reproduce exactly: (%d %d %v %v) vs (%d %d %v %v)",
			i1, e1, a1, b1, i2, e2, a2, b2)
	}
	if i1 == 0 {
		t.Error("rate 0.3 over 40 periods fired no corruption")
	}
}

func TestMDMCorruptUpdateEntersAndExitsDegraded(t *testing.T) {
	cfg := DefaultMDMConfig(1)
	cfg.PhaseUpdates = 10
	m := newTestMDM(t, cfg)

	// Out-of-range q_I can only come from corrupt ST metadata.
	m.OnSTCEvict(0, hybrid.NumQI+3, 1, 5)
	if !m.Degraded(0) {
		t.Fatal("corrupt update must enter degraded mode")
	}
	if m.CorruptUpdates != 1 || m.DegradedEntries != 1 {
		t.Errorf("corrupt=%d entries=%d, want 1/1", m.CorruptUpdates, m.DegradedEntries)
	}
	// The polluted statistics were discarded: estimates are back at the
	// optimistic seed.
	if got := m.ExpCnt(0, 0); got != cfg.InitialExpCnt {
		t.Errorf("exp_cnt after reset = %v, want %v", got, cfg.InitialExpCnt)
	}

	// A full observation phase of clean updates re-converges the monitor.
	for i := 0; i < 9; i++ {
		m.OnSTCEvict(0, 1, 1, 3)
		if !m.Degraded(0) {
			t.Fatalf("degraded mode left after only %d clean updates", i+1)
		}
	}
	m.OnSTCEvict(0, 1, 1, 3)
	if m.Degraded(0) {
		t.Fatal("full clean observation phase must exit degraded mode")
	}
}

func TestMDMFallbackCompetingCounter(t *testing.T) {
	cfg := DefaultMDMConfig(1)
	m := newTestMDM(t, cfg)
	m.OnSTCEvict(0, hybrid.NumQI, 1, 5) // degrade
	if !m.Degraded(0) {
		t.Fatal("not degraded")
	}
	ctx := &mdmCtx{m1slot: 0, owners: map[int]int{}}
	// Repeated M2 accesses to one block build its challenger counter until
	// it crosses MinBenefit and the fallback promotes it.
	now := int64(0)
	for i := 0; ctx.swaps == 0 && i < 100; i++ {
		now += 10
		m.OnAccess(hybrid.AccessInfo{Now: now, Core: 0, Group: 7, Slot: 2, Loc: 3}, ctx)
	}
	if ctx.swaps != 1 {
		t.Fatalf("fallback never promoted the hot block (swaps=%d)", ctx.swaps)
	}
	if m.DegradedDecisions == 0 {
		t.Error("fallback decisions not tallied")
	}
	if m.DegradedCycles == 0 {
		t.Error("degraded cycles not accrued")
	}
	rs := m.ResilienceStats()
	if rs.CorruptQACUpdates != 1 || rs.DegradedEntries != 1 || rs.DegradedDecisions == 0 {
		t.Errorf("resilience stats = %+v", rs)
	}

	// M1 accesses decay the challenger: a fresh candidate needs more M2
	// traffic than MinBenefit when M1 is also hot.
	m2 := newTestMDM(t, cfg)
	m2.OnSTCEvict(0, hybrid.NumQI, 1, 5)
	ctx2 := &mdmCtx{m1slot: 0, owners: map[int]int{}}
	for i := 0; i < int(cfg.MinBenefit); i++ {
		m2.OnAccess(hybrid.AccessInfo{Now: int64(i + 1), Core: 0, Group: 7, Slot: 2, Loc: 3}, ctx2)
		m2.OnAccess(hybrid.AccessInfo{Now: int64(i + 1), Core: 0, Group: 7, Slot: 0, Loc: 0}, ctx2)
	}
	if ctx2.swaps != 0 {
		t.Error("decayed challenger must not yet promote")
	}
}

func TestProFessSuspendsGuidanceWhileRSMDegraded(t *testing.T) {
	p := newTestProFess(t)
	p.SetFaultInjector(fault.NewInjector(fault.Plan{Seed: 2, SFCorruptRate: 1}))
	// Complete one sampling period for program 0 so its SF corrupts.
	for i := int64(0); i < p.rsm.cfg.SamplingRequests; i++ {
		p.OnServed(0, 0, false, i%2 == 0)
	}
	if !p.RSM().Degraded(0) {
		t.Fatal("RSM should be degraded")
	}
	// M1 is owned by program 1, the access comes from degraded program 0.
	ctx := &mdmCtx{m1slot: 0, owners: map[int]int{0: 1}}
	before := p.GuidanceSuspended
	ai := info(decideEntry(2, 0, 0, 0))
	ai.Now = 100
	p.OnAccess(ai, ctx)
	if p.GuidanceSuspended != before+1 {
		t.Errorf("guidance suspensions = %d, want %d", p.GuidanceSuspended, before+1)
	}
}
