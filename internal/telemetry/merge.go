package telemetry

import "math"

// MergePart names one source sampler inside a merged view: every probe of
// S appears in the merged schema as Prefix + name.
type MergePart struct {
	Prefix string
	S      *Sampler
}

// Merge combines several finished samplers into one read-only sampler —
// the view a clustered run exports, with each cluster's probes prefixed
// (c0., c1., …). The merged schema is the concatenation of the parts'
// schemas in part order; records join by epoch index. A part that
// recorded fewer epochs (its cluster idled or finished early) contributes
// NaN for the missing tail, which WriteJSONL renders as null. The merged
// record's cycle is the largest cycle any part sampled for that epoch.
//
// Everything here is a pure function of the parts' retained records, so
// merging deterministic samplers yields byte-identical exports regardless
// of worker count. Nil or empty parts are skipped; merging nothing
// returns nil (the universal no-op sampler).
func Merge(parts []MergePart) *Sampler {
	type src struct {
		prefix string
		s      *Sampler
		recs   []Record
	}
	var srcs []src
	rows, every := 0, int64(0)
	var dropped int64
	for _, p := range parts {
		if p.S == nil || len(p.S.probes) == 0 {
			continue
		}
		srcs = append(srcs, src{prefix: p.Prefix, s: p.S, recs: p.S.Records()})
		if n := p.S.Len(); n > rows {
			rows = n
		}
		if e := p.S.Every(); e > every {
			every = e
		}
		dropped += p.S.Dropped
	}
	if len(srcs) == 0 {
		return nil
	}
	out := &Sampler{every: every, capacity: max(rows, 1), started: true, Dropped: dropped}
	for _, sc := range srcs {
		for i := range sc.s.probes {
			// Name-only probes with a NaN gauge: the merged sampler is a
			// read-only view, never sampled again; the gauge only guards
			// against a stray Finish call.
			out.probes = append(out.probes, probe{
				name:  sc.prefix + sc.s.probes[i].name,
				gauge: func(int64) float64 { return math.NaN() },
			})
		}
	}
	for epoch := 0; epoch < rows; epoch++ {
		vals := make([]float64, 0, len(out.probes))
		var cycle int64
		for _, sc := range srcs {
			if epoch < len(sc.recs) {
				r := sc.recs[epoch]
				vals = append(vals, r.Values...)
				if r.Cycle > cycle {
					cycle = r.Cycle
				}
			} else {
				for range sc.s.probes {
					vals = append(vals, math.NaN())
				}
			}
		}
		out.push(Record{Epoch: int64(epoch), Cycle: cycle, Values: vals})
		out.epoch++
		out.lastCycle = cycle
	}
	return out
}
