package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"profess/internal/event"
)

// buildSampler records the given per-epoch values for one gauge.
func buildSampler(t *testing.T, name string, every int64, values []float64) *Sampler {
	t.Helper()
	s, err := New(Config{Every: every})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	s.Gauge(name, func(now int64) float64 { v := values[i]; i++; return v })
	q := &event.Queue{}
	s.Start(q)
	for range values {
		q.Step()
	}
	return s
}

func TestMergePrefixesAndJoins(t *testing.T) {
	a := buildSampler(t, "ipc", 10, []float64{1, 2, 3})
	b := buildSampler(t, "ipc", 10, []float64{4, 5}) // one epoch short
	m := Merge([]MergePart{{Prefix: "c0.", S: a}, {Prefix: "c1.", S: b}})
	if got := m.Names(); len(got) != 2 || got[0] != "c0.ipc" || got[1] != "c1.ipc" {
		t.Fatalf("merged names = %v", got)
	}
	if m.Len() != 3 {
		t.Fatalf("merged %d epochs, want 3 (longest part)", m.Len())
	}
	var buf bytes.Buffer
	if err := m.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := `{"epoch":0,"cycle":10,"c0.ipc":1,"c1.ipc":4}`; lines[0] != want {
		t.Errorf("line 0 = %s, want %s", lines[0], want)
	}
	// The short part's missing tail renders as null, not a fabricated value.
	if want := `{"epoch":2,"cycle":30,"c0.ipc":3,"c1.ipc":null}`; lines[2] != want {
		t.Errorf("line 2 = %s, want %s", lines[2], want)
	}
}

func TestMergeEmpty(t *testing.T) {
	if m := Merge(nil); m != nil {
		t.Errorf("merging nothing should return the nil no-op sampler, got %v", m)
	}
	if m := Merge([]MergePart{{Prefix: "x.", S: nil}}); m != nil {
		t.Errorf("nil parts should be skipped, got %v", m)
	}
	// A merged view is read-only: Start must not re-arm it.
	a := buildSampler(t, "g", 10, []float64{1})
	m := Merge([]MergePart{{S: a}})
	q := &event.Queue{}
	m.Start(q)
	if q.Len() != 0 {
		t.Error("Start on a merged sampler scheduled a tick")
	}
}
