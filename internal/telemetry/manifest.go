package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"runtime"
	"strings"
)

// Manifest records how one telemetry capture was produced, so an exported
// trace stays interpretable (and reproducible) on its own: the simulated
// configuration, the scheme, the seeds, the epoch length, and the source
// revision. It is written alongside the JSONL/CSV export.
type Manifest struct {
	Scheme       string   `json:"scheme"`
	Seed         uint64   `json:"seed"`
	Scale        float64  `json:"scale"`
	Instructions int64    `json:"instructions"`
	EpochCycles  int64    `json:"epoch_cycles"`
	Programs     []string `json:"programs,omitempty"`
	Faults       string   `json:"faults,omitempty"`
	GitDescribe  string   `json:"git_describe,omitempty"`
	GoVersion    string   `json:"go_version,omitempty"`
	// Extra carries tool-specific annotations (e.g. the replayed trace
	// file); map encoding sorts keys, keeping the output deterministic.
	Extra map[string]string `json:"extra,omitempty"`
}

// NewManifest pre-fills the environment fields (Go version, git describe);
// the caller fills in the run parameters.
func NewManifest() Manifest {
	return Manifest{GoVersion: runtime.Version(), GitDescribe: GitDescribe()}
}

// WriteJSON renders the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding manifest: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// GitDescribe returns `git describe --always --dirty` for the working
// directory, or "" when git or a repository is unavailable — the manifest
// then simply omits the field.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
