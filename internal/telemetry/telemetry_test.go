package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"profess/internal/event"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Every: 0}); err == nil {
		t.Error("zero epoch length must be rejected")
	}
	if _, err := New(Config{Every: 10, Capacity: -1}); err == nil {
		t.Error("negative capacity must be rejected")
	}
	s, err := New(Config{Every: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Every() != 10 {
		t.Errorf("Every() = %d, want 10", s.Every())
	}
}

func TestNilSamplerIsNoOp(t *testing.T) {
	var s *Sampler
	s.Gauge("g", func(int64) float64 { return 1 })
	s.Counter("c", func() int64 { return 1 })
	s.Start(&event.Queue{})
	s.Finish(100)
	if s.Len() != 0 || s.Records() != nil || s.Names() != nil || s.Every() != 0 {
		t.Error("nil sampler must report empty state")
	}
	if _, ok := s.Last(); ok {
		t.Error("nil sampler has no last record")
	}
	if err := s.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if err := s.WriteCSV(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

// TestSamplingOnCalendar drives a sampler from a real event queue and
// checks epochs, counter deltas and gauge stamps.
func TestSamplingOnCalendar(t *testing.T) {
	q := &event.Queue{}
	s, err := New(Config{Every: 100})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	s.Counter("served", func() int64 { return total })
	s.Gauge("now", func(now int64) float64 { return float64(now) })

	// Simulated work: 1 unit served every 10 cycles for 450 cycles.
	var work func(now int64)
	work = func(now int64) {
		total++
		if now < 450 {
			q.After(10, work)
		}
	}
	q.After(10, work)
	s.Start(q)
	// The tick re-arms itself forever (the sim loop stops by predicate,
	// not queue exhaustion), so stop once the workload is done.
	q.RunUntil(func() bool { return q.Now() >= 450 })
	s.Finish(q.Now())

	recs := s.Records()
	if len(recs) != 5 { // epochs at 100..400 plus the Finish tail at 450
		t.Fatalf("got %d records, want 5", len(recs))
	}
	// The tick's insertion order gives it the lower sequence number, so at
	// a shared cycle the sample runs before the work event: the first
	// epoch sees 9 completed units, later full epochs 10.
	wantDeltas := []float64{9, 10, 10, 10, 6}
	for i, r := range recs[:4] {
		if r.Cycle != int64(100*(i+1)) {
			t.Errorf("record %d at cycle %d, want %d", i, r.Cycle, 100*(i+1))
		}
		if r.Values[0] != wantDeltas[i] {
			t.Errorf("epoch %d served delta %v, want %v", i, r.Values[0], wantDeltas[i])
		}
		if r.Values[1] != float64(r.Cycle) {
			t.Errorf("epoch %d gauge %v, want %v", i, r.Values[1], r.Cycle)
		}
	}
	if tail := recs[4]; tail.Cycle != 450 || tail.Values[0] != 6 {
		t.Errorf("tail record %+v, want cycle 450 with delta 6", tail)
	}
	if last, ok := s.Last(); !ok || last.Epoch != 4 {
		t.Errorf("Last() = %+v, %v", last, ok)
	}
	// Finish at an already-sampled cycle must not duplicate.
	s.Finish(450)
	if s.Len() != 5 {
		t.Errorf("duplicate Finish grew the ring to %d", s.Len())
	}
	if got := s.Value("served"); len(got) != 5 || got[0] != 9 {
		t.Errorf("Value(served) = %v", got)
	}
	if s.Value("missing") != nil {
		t.Error("unknown probe must yield nil")
	}
}

func TestRingEviction(t *testing.T) {
	s, err := New(Config{Every: 10, Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Gauge("x", func(now int64) float64 { return float64(now) })
	for c := int64(10); c <= 50; c += 10 {
		s.sample(c)
	}
	if s.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", s.Dropped)
	}
	recs := s.Records()
	if len(recs) != 3 || recs[0].Cycle != 30 || recs[2].Cycle != 50 {
		t.Errorf("ring holds %+v, want cycles 30..50", recs)
	}
	if recs[0].Epoch != 2 {
		t.Errorf("oldest epoch %d, want 2", recs[0].Epoch)
	}
}

func TestExportFormats(t *testing.T) {
	s, err := New(Config{Every: 10})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1.5, 2.5}
	i := 0
	s.Gauge("a.b", func(int64) float64 { x := v[i]; return x })
	s.Counter("c", func() int64 { return int64(10 * (i + 1)) })
	s.sample(10)
	i = 1
	s.sample(20)

	var jl bytes.Buffer
	if err := s.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	wantJL := `{"epoch":0,"cycle":10,"a.b":1.5,"c":10}` + "\n" +
		`{"epoch":1,"cycle":20,"a.b":2.5,"c":10}` + "\n"
	if jl.String() != wantJL {
		t.Errorf("JSONL:\n%s\nwant:\n%s", jl.String(), wantJL)
	}

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != 3 || lines[0] != "epoch,cycle,a.b,c" || lines[1] != "0,10,1.5,10" {
		t.Errorf("CSV:\n%s", csv.String())
	}
}

func TestRegisterAfterStartPanics(t *testing.T) {
	s, err := New(Config{Every: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(&event.Queue{})
	defer func() {
		if recover() == nil {
			t.Error("registration after Start must panic")
		}
	}()
	s.Gauge("late", func(int64) float64 { return 0 })
}

func TestManifestJSON(t *testing.T) {
	m := NewManifest()
	m.Scheme = "mdm"
	m.Seed = 7
	m.EpochCycles = 100
	m.Extra = map[string]string{"trace": "x.pftr"}
	var b bytes.Buffer
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"scheme": "mdm"`, `"seed": 7`, `"epoch_cycles": 100`, `"trace": "x.pftr"`} {
		if !strings.Contains(out, want) {
			t.Errorf("manifest missing %s:\n%s", want, out)
		}
	}
}
