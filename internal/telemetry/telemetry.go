// Package telemetry is the per-epoch sampling subsystem of the simulator:
// a cycle-domain Sampler that, every N CPU cycles, snapshots a registered
// set of gauges and counters — slowdown factors, swap accept/reject
// counts, exp_cnt tables, STC hit rates, channel queue occupancy,
// resilience state — into an in-memory ring of epoch records, exportable
// as JSONL and CSV with a run manifest written alongside.
//
// The sampler piggybacks on the discrete-event calendar: it schedules one
// tick per epoch and never mutates simulated state, so an enabled sampler
// leaves the simulation's Result bit-identical to a telemetry-off run,
// and a disabled (nil) sampler costs nothing at all — the hot path of the
// simulator contains no telemetry code, only the end-of-run flush is
// guarded by a single pointer check. Every method is nil-safe.
//
// Probe registration must complete before Start; the probe set then fixes
// the record schema (names in registration order).
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"

	"profess/internal/event"
)

// GaugeFunc reports an instantaneous value at the sampled cycle.
type GaugeFunc func(now int64) float64

// CounterFunc reports a cumulative, monotonically non-decreasing count;
// the sampler records the per-epoch delta.
type CounterFunc func() int64

// Config sizes a Sampler.
type Config struct {
	// Every is the epoch length in CPU cycles (must be positive).
	Every int64
	// Capacity bounds the in-memory epoch ring (DefaultCapacity when 0).
	// When the ring is full the oldest epoch is evicted and counted in
	// Dropped.
	Capacity int
}

// DefaultCapacity is the epoch-ring bound applied when Config.Capacity is
// zero: at the default professim epoch of 10K cycles this holds the last
// ~160M cycles of history in a few MB.
const DefaultCapacity = 16384

// probe is one registered signal.
type probe struct {
	name    string
	gauge   GaugeFunc
	counter CounterFunc
	prev    int64 // last cumulative value (counters only)
}

// Record is one epoch's snapshot. Values align with the sampler's Names.
type Record struct {
	Epoch int64
	Cycle int64
	// Values holds gauges as sampled and counters as per-epoch deltas.
	Values []float64
}

// Sampler collects epoch records. The zero value is not usable; build one
// with New. A nil *Sampler is a valid no-op on every method.
type Sampler struct {
	every    int64
	capacity int
	probes   []probe
	started  bool
	sched    event.Scheduler // set at Start; re-arms the epoch tick

	epoch     int64
	lastCycle int64

	ring  []Record
	head  int // index of the oldest record
	count int

	// Dropped counts epochs evicted from the full ring.
	Dropped int64
}

// New builds a sampler with the given epoch length and ring capacity.
func New(cfg Config) (*Sampler, error) {
	if cfg.Every <= 0 {
		return nil, fmt.Errorf("telemetry: epoch length %d must be positive", cfg.Every)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("telemetry: negative ring capacity %d", cfg.Capacity)
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	return &Sampler{every: cfg.Every, capacity: cfg.Capacity}, nil
}

// Every returns the epoch length in cycles (0 for a nil sampler).
func (s *Sampler) Every() int64 {
	if s == nil {
		return 0
	}
	return s.every
}

// Gauge registers an instantaneous probe under the given name.
func (s *Sampler) Gauge(name string, fn GaugeFunc) {
	if s == nil || fn == nil {
		return
	}
	s.register(probe{name: name, gauge: fn})
}

// Counter registers a cumulative probe; records carry its per-epoch delta.
func (s *Sampler) Counter(name string, fn CounterFunc) {
	if s == nil || fn == nil {
		return
	}
	s.register(probe{name: name, counter: fn})
}

// register appends a probe, enforcing the schema freeze at Start.
func (s *Sampler) register(p probe) {
	if s.started {
		panic("telemetry: probe registered after Start froze the schema")
	}
	s.probes = append(s.probes, p)
}

// Names returns the probe names in registration order (the record schema).
func (s *Sampler) Names() []string {
	if s == nil {
		return nil
	}
	out := make([]string, len(s.probes))
	for i := range s.probes {
		out[i] = s.probes[i].name
	}
	return out
}

// Reset rewinds the sampler for a fresh run: the epoch ring is emptied
// (backing array kept), counter baselines rewound to zero, the epoch and
// drop counters cleared, and the schema un-frozen so Start can schedule
// ticks on a (possibly reset) calendar again. Probe registrations are
// kept — the probes must still point at live components, which is the
// caller's contract. Samplers handed out through Result.Telemetry must
// NOT be reset: the caller owns those records.
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	for i := range s.probes {
		s.probes[i].prev = 0
	}
	for i := range s.ring {
		s.ring[i] = Record{}
	}
	s.ring = s.ring[:0]
	s.head, s.count = 0, 0
	s.epoch, s.lastCycle = 0, 0
	s.Dropped = 0
	s.started = false
	s.sched = nil
}

// Start schedules the epoch ticks on the event calendar. The tick callback
// only reads probes and re-arms itself, so simulated behaviour is
// unaffected; once the run's stop condition is reached, pending ticks are
// simply abandoned with the rest of the calendar.
func (s *Sampler) Start(sched event.Scheduler) {
	if s == nil || s.started {
		return
	}
	s.started = true
	s.sched = sched
	sched.Schedule(sched.Now()+s.every, s, 0, nil)
}

// HandleEvent implements event.Handler: one epoch tick — sample and re-arm.
func (s *Sampler) HandleEvent(now int64, _ int64, _ any) {
	s.sample(now)
	s.sched.Schedule(now+s.every, s, 0, nil)
}

// Finish takes a final partial-epoch snapshot at the given cycle, so runs
// shorter than one epoch still record one sample and the tail of a run is
// never lost. It is a no-op when the last tick already sampled this cycle.
func (s *Sampler) Finish(now int64) {
	if s == nil || now <= s.lastCycle {
		return
	}
	s.sample(now)
}

// sample snapshots every probe into one epoch record.
func (s *Sampler) sample(now int64) {
	vals := make([]float64, len(s.probes))
	for i := range s.probes {
		p := &s.probes[i]
		if p.counter != nil {
			v := p.counter()
			vals[i] = float64(v - p.prev)
			p.prev = v
		} else {
			vals[i] = p.gauge(now)
		}
	}
	s.push(Record{Epoch: s.epoch, Cycle: now, Values: vals})
	s.epoch++
	s.lastCycle = now
}

// push appends to the ring, evicting the oldest record when full.
func (s *Sampler) push(r Record) {
	if s.count < s.capacity {
		s.ring = append(s.ring, r)
		s.count++
		return
	}
	s.ring[s.head] = r
	s.head = (s.head + 1) % s.capacity
	s.Dropped++
}

// Len returns the number of retained epoch records.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return s.count
}

// Records returns the retained epochs, oldest first.
func (s *Sampler) Records() []Record {
	if s == nil || s.count == 0 {
		return nil
	}
	out := make([]Record, 0, s.count)
	for i := 0; i < s.count; i++ {
		out = append(out, s.ring[(s.head+i)%s.count])
	}
	return out
}

// Last returns the most recent record (false when none was taken).
func (s *Sampler) Last() (Record, bool) {
	if s == nil || s.count == 0 {
		return Record{}, false
	}
	return s.ring[(s.head+s.count-1)%s.count], true
}

// Value extracts a named probe's series across the retained epochs.
func (s *Sampler) Value(name string) []float64 {
	if s == nil {
		return nil
	}
	idx := -1
	for i := range s.probes {
		if s.probes[i].name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	recs := s.Records()
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.Values[idx]
	}
	return out
}

// formatValue renders a float for JSONL: shortest exact decimal, with the
// non-JSON specials mapped to null.
func formatValue(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSONL writes one JSON object per retained epoch: epoch, cycle, and
// every probe keyed by its registered name, in registration order. The
// encoding is deterministic, so two identical runs produce byte-identical
// output — the property the golden-trace regression tests pin down.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, r := range s.Records() {
		bw.WriteString(`{"epoch":`)
		bw.WriteString(strconv.FormatInt(r.Epoch, 10))
		bw.WriteString(`,"cycle":`)
		bw.WriteString(strconv.FormatInt(r.Cycle, 10))
		for i, v := range r.Values {
			bw.WriteByte(',')
			bw.WriteString(strconv.Quote(s.probes[i].name))
			bw.WriteByte(':')
			bw.WriteString(formatValue(v))
		}
		if _, err := bw.WriteString("}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV writes a header (epoch, cycle, probe names) and one row per
// retained epoch. Specials render as NaN/±Inf, which most tooling accepts.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("epoch,cycle")
	for i := range s.probes {
		bw.WriteByte(',')
		bw.WriteString(s.probes[i].name)
	}
	bw.WriteByte('\n')
	for _, r := range s.Records() {
		bw.WriteString(strconv.FormatInt(r.Epoch, 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(r.Cycle, 10))
		for _, v := range r.Values {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
