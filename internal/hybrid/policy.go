package hybrid

// AccessInfo is what a migration policy sees on every demand access, after
// the STC access counter has been bumped (§3.2.3: "Upon an access to a
// block, the MC increments its access counter in the STC", then decides).
type AccessInfo struct {
	Now   int64
	Core  int   // requesting program
	Group int64 // swap group of the accessed block
	Slot  int   // accessed block's slot (identity within the group)
	Loc   int   // accessed block's current location (0 = M1)
	Write bool
	Entry *STCEntry // resident ST entry with live counters
}

// PolicyContext is the controller surface a policy may consult and act on.
type PolicyContext interface {
	// M1Slot returns the slot whose block currently occupies the group's
	// M1 location.
	M1Slot(group int64) int
	// Owner returns the program owning the original block (group, slot),
	// or -1 if the block is unallocated.
	Owner(group int64, slot int) int
	// ScheduleSwap requests promotion of block (group, slot) into M1,
	// swapping it with the group's current M1 resident. It returns false
	// if the swap cannot be scheduled (block already in M1, or a swap for
	// the group is already in flight).
	ScheduleSwap(group int64, slot int) bool
	// SwapLatency returns the channel-blocking cost of one swap in cycles,
	// for policies that estimate benefit dynamically.
	SwapLatency() int64
	// ReadLatencyGap returns the unloaded 64-B read latency difference
	// between M2 and M1 (the per-access benefit of having a block in M1).
	ReadLatencyGap() int64
}

// Policy is a migration algorithm plugged into the controller. Table 2's
// baselines (CAMEO, PoM, SILC-FM, MemPod) and the paper's MDM/ProFess all
// implement it.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// WriteWeight is how many accesses one write counts as when bumping
	// block access counters (§4.1: 8 for PoM and ProFess in this system,
	// 1 for MemPod).
	WriteWeight() int
	// OnAccess is invoked for every demand access.
	OnAccess(info AccessInfo, ctl PolicyContext)
	// OnServed is invoked for every demand access with the RSM-relevant
	// attribution: the request's region, whether that region is the
	// requesting program's private region, and whether the block was
	// served from M1.
	OnServed(core, region int, private, fromM1 bool)
	// OnSTCEvict is invoked at ST-entry eviction for every block with a
	// non-zero access count: owner program, QAC at insertion (q_I), the
	// quantized count at eviction (q_E) and the raw count.
	OnSTCEvict(core int, qI, qE uint8, count uint32)
	// OnSwapDone is invoked when a swap completes. ownerM1 is the program
	// whose block was demoted (previous M1 resident), ownerM2 the program
	// whose block was promoted; private reports whether the group lies in
	// a private region (RSM does not count swaps there, §3.1.2).
	OnSwapDone(region int, private bool, ownerM1, ownerM2 int)
}

// BasePolicy provides no-op implementations of the optional hooks so
// simple policies only implement what they need.
type BasePolicy struct{}

// WriteWeight returns 1.
func (BasePolicy) WriteWeight() int { return 1 }

// OnServed does nothing.
func (BasePolicy) OnServed(core, region int, private, fromM1 bool) {}

// OnSTCEvict does nothing.
func (BasePolicy) OnSTCEvict(core int, qI, qE uint8, count uint32) {}

// OnSwapDone does nothing.
func (BasePolicy) OnSwapDone(region int, private bool, ownerM1, ownerM2 int) {}

// NoMigration is the static policy: blocks never move. It is the
// degenerate baseline used by tests and the capacity-sweep example.
type NoMigration struct{ BasePolicy }

// Name implements Policy.
func (NoMigration) Name() string { return "static" }

// OnAccess does nothing: no swaps ever.
func (NoMigration) OnAccess(info AccessInfo, ctl PolicyContext) {}
