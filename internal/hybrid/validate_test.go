package hybrid

import (
	"strings"
	"testing"
)

func TestCheckInvariantsClean(t *testing.T) {
	p := &recPolicy{swapOnM2: true}
	h := newHarness(t, 64, p)
	// Stress: many accesses with aggressive swapping.
	for pg := 0; pg < 200; pg++ {
		h.submit(h.addrOf(pg%len(h.vmap), int64(pg%64)*64), pg%3 == 0)
	}
	if err := h.ctl.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after stress: %v", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	// Corrupt the permutation: duplicate a location.
	h.ctl.perm[0], h.ctl.perm[1] = 3, 3
	err := h.ctl.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "claimed twice") {
		t.Errorf("corruption not detected: %v", err)
	}
	// Repair and corrupt QAC instead.
	h.ctl.perm[0], h.ctl.perm[1] = 0, 1
	h.ctl.qac[5] = 9
	err = h.ctl.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "QAC") {
		t.Errorf("QAC corruption not detected: %v", err)
	}
}

func TestCheckedPolicyCleanRun(t *testing.T) {
	inner := &recPolicy{swapOnM2: true}
	p := &recPolicy{} // placeholder to build the harness layout
	h := newHarness(t, 64, p)
	checked := NewCheckedPolicy(inner, h.layout)
	// Drive the checked policy through a real controller.
	h2 := &ctlHarness{}
	*h2 = *h
	// Rebuild a controller around the checked policy.
	// (Simpler: exercise the hooks directly with valid arguments.)
	checked.OnServed(0, 5, false, true)
	checked.OnSTCEvict(0, 1, 2, 10)
	checked.OnSwapDone(5, false, 0, 0)
	if checked.WriteWeight() != 1 {
		t.Error("write weight passthrough")
	}
	if checked.Name() != "rec" {
		t.Error("name passthrough")
	}
	if len(checked.Violations()) != 0 {
		t.Fatalf("clean usage produced violations: %v", checked.Violations())
	}
	if len(inner.served) != 1 || len(inner.evicts) != 1 || len(inner.swaps) != 1 {
		t.Error("hooks did not pass through")
	}
}

func TestCheckedPolicyDetectsViolations(t *testing.T) {
	inner := &recPolicy{}
	l := testLayout(t)
	checked := NewCheckedPolicy(inner, l)
	checked.OnServed(0, l.Regions+5, false, true) // bad region
	checked.OnSTCEvict(0, 1, 0, 10)               // q_E = 0 invalid
	checked.OnSTCEvict(0, 9, 2, 10)               // q_I out of range
	checked.OnSTCEvict(0, 1, 1, 10)               // count 10 quantizes to 2, not 1
	checked.OnSwapDone(-1, false, 0, 0)           // bad region
	checked.OnAccess(AccessInfo{Group: -1, Slot: 99, Loc: 99}, &fakePolicyCtx{})
	v := checked.Violations()
	if len(v) < 6 {
		t.Fatalf("violations = %d: %v", len(v), v)
	}
}

// fakePolicyCtx satisfies PolicyContext minimally for hook-level tests.
type fakePolicyCtx struct{}

func (*fakePolicyCtx) M1Slot(int64) int             { return 0 }
func (*fakePolicyCtx) Owner(int64, int) int         { return 0 }
func (*fakePolicyCtx) ScheduleSwap(int64, int) bool { return false }
func (*fakePolicyCtx) SwapLatency() int64           { return 1 }
func (*fakePolicyCtx) ReadLatencyGap() int64        { return 1 }

func TestCheckedPolicyBoundsViolationLog(t *testing.T) {
	inner := &recPolicy{}
	checked := NewCheckedPolicy(inner, testLayout(t))
	for i := 0; i < 500; i++ {
		checked.OnSTCEvict(0, 1, 0, 1)
	}
	if len(checked.Violations()) > 100 {
		t.Errorf("violation log unbounded: %d", len(checked.Violations()))
	}
}
