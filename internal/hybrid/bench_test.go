package hybrid

import (
	"testing"

	"profess/internal/event"
	"profess/internal/mem"
)

// benchSink is a pre-bound completion handler, matching how the cpu core
// consumes the controller in production.
type benchSink struct{ n int64 }

func (s *benchSink) HandleEvent(int64, int64, any) { s.n++ }

func newBenchHarness(b *testing.B) (*Controller, *event.Queue, []int64, Layout) {
	b.Helper()
	l, err := NewLayout(1<<20, 1, 128, 8)
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := NewAllocator(l, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	q := &event.Queue{}
	chCfg := mem.DefaultChannelConfig(l.M1Capacity()+l.STBytesPerChannel(), l.M2Capacity())
	ch := mem.NewChannel(chCfg, q)
	ctl, err := NewController(ControllerConfig{
		Layout: l, STCEntries: 64, STCWays: 4, NumCores: 1, ModelSTTraffic: true,
	}, []*mem.Channel{ch}, alloc, NoMigration{}, q)
	if err != nil {
		b.Fatal(err)
	}
	vmap, err := alloc.Alloc(0, 512)
	if err != nil {
		b.Fatal(err)
	}
	return ctl, q, vmap, l
}

// BenchmarkController_Submit measures the full demand-access path — STC
// lookup/miss, ST traffic, translation, channel round trip, completion —
// over a working set that mixes STC hits and misses.
func BenchmarkController_Submit(b *testing.B) {
	ctl, q, vmap, l := newBenchHarness(b)
	sink := &benchSink{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := vmap[i%len(vmap)]*l.PageBytes + int64(i%32)*64
		ctl.SubmitHandler(0, addr, i%4 == 0, sink, int64(i))
		q.Drain()
	}
	if sink.n != int64(b.N) {
		b.Fatalf("completed %d of %d submits", sink.n, b.N)
	}
}

// TestSubmitSteadyStateAllocs pins the controller's STC-hit fast path at
// zero steady-state allocations per access: the pooled access records and
// the typed event engine together leave nothing for the GC.
func TestSubmitSteadyStateAllocs(t *testing.T) {
	l, err := NewLayout(1<<20, 1, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := NewAllocator(l, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := &event.Queue{}
	chCfg := mem.DefaultChannelConfig(l.M1Capacity()+l.STBytesPerChannel(), l.M2Capacity())
	ch := mem.NewChannel(chCfg, q)
	ctl, err := NewController(ControllerConfig{
		Layout: l, STCEntries: 64, STCWays: 4, NumCores: 1, ModelSTTraffic: true,
	}, []*mem.Channel{ch}, alloc, NoMigration{}, q)
	if err != nil {
		t.Fatal(err)
	}
	vmap, err := alloc.Alloc(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	sink := &benchSink{}
	addr := vmap[0] * l.PageBytes
	run := func() {
		ctl.SubmitHandler(0, addr, false, sink, 0)
		q.Drain()
	}
	for i := 0; i < 4096; i++ {
		run()
	}
	if allocs := testing.AllocsPerRun(1000, run); allocs != 0 {
		t.Fatalf("STC-hit access: %v allocs, want 0", allocs)
	}
}
