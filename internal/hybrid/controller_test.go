package hybrid

import (
	"testing"
	"testing/quick"

	"profess/internal/event"
	"profess/internal/mem"
)

// recPolicy records every hook invocation and optionally requests a swap
// on each M2 access.
type recPolicy struct {
	BasePolicy
	swapOnM2 bool

	served   []string
	accesses []AccessInfo
	evicts   []uint32
	swaps    [][2]int
}

func (p *recPolicy) Name() string { return "rec" }
func (p *recPolicy) OnAccess(info AccessInfo, ctl PolicyContext) {
	p.accesses = append(p.accesses, info)
	if p.swapOnM2 && info.Loc != 0 {
		ctl.ScheduleSwap(info.Group, info.Slot)
	}
}
func (p *recPolicy) OnServed(core, region int, private, fromM1 bool) {
	s := "shared"
	if private {
		s = "private"
	}
	if fromM1 {
		s += "/M1"
	} else {
		s += "/M2"
	}
	p.served = append(p.served, s)
}
func (p *recPolicy) OnSTCEvict(core int, qI, qE uint8, count uint32) {
	p.evicts = append(p.evicts, count)
}
func (p *recPolicy) OnSwapDone(region int, private bool, ownerM1, ownerM2 int) {
	p.swaps = append(p.swaps, [2]int{ownerM1, ownerM2})
}

type ctlHarness struct {
	q      *event.Queue
	ctl    *Controller
	alloc  *Allocator
	layout Layout
	policy *recPolicy
	vmap   []int64 // core 0's pages
}

// newHarness wires a single-channel controller with a tiny STC.
func newHarness(t *testing.T, stcEntries int, policy *recPolicy) *ctlHarness {
	t.Helper()
	l, err := NewLayout(1<<20, 1, 128, 8) // 512 groups
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := NewAllocator(l, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := &event.Queue{}
	chCfg := mem.DefaultChannelConfig(l.M1Capacity()+l.STBytesPerChannel(), l.M2Capacity())
	ch := mem.NewChannel(chCfg, q)
	ctl, err := NewController(ControllerConfig{
		Layout:         l,
		STCEntries:     stcEntries,
		STCWays:        4,
		NumCores:       1,
		ModelSTTraffic: true,
	}, []*mem.Channel{ch}, alloc, policy, q)
	if err != nil {
		t.Fatal(err)
	}
	vmap, err := alloc.Alloc(0, 512)
	if err != nil {
		t.Fatal(err)
	}
	return &ctlHarness{q: q, ctl: ctl, alloc: alloc, layout: l, policy: policy, vmap: vmap}
}

// addrOf returns the original byte address of the i-th allocated page.
func (h *ctlHarness) addrOf(page int, offset int64) int64 {
	return h.vmap[page]*h.layout.PageBytes + offset
}

func (h *ctlHarness) submit(addr int64, write bool) int64 {
	var lat int64 = -1
	h.ctl.Submit(0, addr, write, func(now, l int64) { lat = l })
	h.q.Drain()
	return lat
}

func TestControllerServesAndCounts(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	lat := h.submit(h.addrOf(0, 0), false)
	if lat <= 0 {
		t.Fatal("no latency recorded")
	}
	cs := h.ctl.Cores[0]
	if cs.Served != 1 || cs.Reads != 1 || cs.Writes != 0 {
		t.Errorf("stats = %+v", cs)
	}
	if cs.STCMisses != 1 || cs.STCHits != 0 {
		t.Errorf("STC stats = %+v", cs)
	}
	if h.ctl.STReads != 1 {
		t.Errorf("ST reads = %d (miss must fetch the ST entry)", h.ctl.STReads)
	}
	if len(p.served) != 1 || len(p.accesses) != 1 {
		t.Errorf("hooks: served=%v accesses=%d", p.served, len(p.accesses))
	}
	// Second access to the same group hits the STC: no new ST read.
	h.submit(h.addrOf(0, 64), false)
	if h.ctl.STReads != 1 {
		t.Errorf("ST reads = %d after STC hit", h.ctl.STReads)
	}
	if h.ctl.Cores[0].STCHits != 1 {
		t.Errorf("expected one STC hit: %+v", h.ctl.Cores[0])
	}
}

func TestControllerSTCMissLatencyAdds(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	missLat := h.submit(h.addrOf(0, 0), false)
	hitLat := h.submit(h.addrOf(0, 64), false)
	if missLat <= hitLat {
		t.Errorf("STC-miss access (%d) should be slower than STC-hit (%d)", missLat, hitLat)
	}
}

func TestCounterBumpAndWriteWeight(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	addr := h.addrOf(0, 0)
	h.submit(addr, false)
	info := p.accesses[0]
	if got := info.Entry.Count(info.Slot); got != 1 {
		t.Errorf("counter after read = %d", got)
	}
	h.submit(addr, true) // recPolicy's WriteWeight is BasePolicy's 1
	if got := p.accesses[1].Entry.Count(info.Slot); got != 2 {
		t.Errorf("counter after write = %d", got)
	}
}

func TestSwapRemapsAndNotifies(t *testing.T) {
	p := &recPolicy{swapOnM2: true}
	h := newHarness(t, 64, p)
	// Find an allocated page whose blocks sit in M2 (slot != 0).
	for pg := 0; pg < len(h.vmap); pg++ {
		addr := h.addrOf(pg, 0)
		block := addr / h.layout.BlockBytes
		if h.layout.Slot(block) == 0 {
			continue
		}
		group, slot := h.layout.Group(block), h.layout.Slot(block)
		if h.ctl.LocationIndex(group, slot) != slot {
			t.Fatal("initial mapping should be identity")
		}
		h.submit(addr, false) // triggers the swap via the policy
		if got := h.ctl.LocationIndex(group, slot); got != 0 {
			t.Fatalf("block not promoted: loc=%d", got)
		}
		if h.ctl.M1Slot(group) != slot {
			t.Fatalf("M1Slot = %d, want %d", h.ctl.M1Slot(group), slot)
		}
		// The old M1 resident (slot 0) moved to the promoted block's slot.
		if got := h.ctl.LocationIndex(group, 0); got != slot {
			t.Fatalf("demoted block at loc %d, want %d", got, slot)
		}
		if h.ctl.SwapsDone != 1 {
			t.Fatalf("SwapsDone = %d", h.ctl.SwapsDone)
		}
		if len(p.swaps) != 1 {
			t.Fatalf("OnSwapDone calls = %d", len(p.swaps))
		}
		if h.ctl.Cores[0].Swaps != 1 {
			t.Fatalf("core swap count = %d", h.ctl.Cores[0].Swaps)
		}
		return
	}
	t.Fatal("no M2-resident page found")
}

func TestScheduleSwapRejections(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	// Swapping the block already in M1 is refused.
	if h.ctl.ScheduleSwap(5, 0) {
		t.Error("swap of M1-resident block should be refused")
	}
	// A second swap for the same group while one is in flight is refused.
	if !h.ctl.ScheduleSwap(5, 3) {
		t.Fatal("first swap should be accepted")
	}
	if h.ctl.ScheduleSwap(5, 4) {
		t.Error("concurrent swap on the same group should be refused")
	}
	h.q.Drain()
	// After completion, a new swap is possible again.
	if !h.ctl.ScheduleSwap(5, 4) {
		t.Error("swap after completion should be accepted")
	}
}

func TestPermutationInvariantProperty(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	f := func(groupRaw int64, slots []uint8) bool {
		group := groupRaw
		if group < 0 {
			group = -group
		}
		group %= h.layout.Groups
		for _, sRaw := range slots {
			s := int(sRaw) % SlotsPerGroup
			h.ctl.ScheduleSwap(group, s)
			h.q.Drain()
			// Invariant: the slot->location map stays a permutation and
			// m1[group] names the slot mapped to location 0.
			seen := [SlotsPerGroup]bool{}
			for slot := 0; slot < SlotsPerGroup; slot++ {
				loc := h.ctl.LocationIndex(group, slot)
				if loc < 0 || loc >= SlotsPerGroup || seen[loc] {
					return false
				}
				seen[loc] = true
			}
			if h.ctl.LocationIndex(group, h.ctl.M1Slot(group)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSTCEvictionFeedsMDMHooks(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 8, p) // tiny STC: 2 sets x 4 ways
	// Touch many distinct groups to force evictions.
	for pg := 0; pg < 60; pg++ {
		h.submit(h.addrOf(pg, 0), false)
	}
	if len(p.evicts) == 0 {
		t.Fatal("expected OnSTCEvict calls from STC pressure")
	}
	for _, c := range p.evicts {
		if c == 0 {
			t.Fatal("evict hook must only fire for non-zero counts")
		}
	}
	if h.ctl.STWrites == 0 {
		t.Error("dirty evictions should write the ST back")
	}
}

func TestFlushSTCsDrains(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	h.submit(h.addrOf(0, 0), false)
	before := len(p.evicts)
	h.ctl.FlushSTCs()
	if len(p.evicts) <= before {
		t.Error("flush should deliver final eviction statistics")
	}
}

func TestMSHRCoalescing(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	addr := h.addrOf(0, 0)
	done := 0
	// Two concurrent submits to the same group: one ST read only.
	h.ctl.Submit(0, addr, false, func(int64, int64) { done++ })
	h.ctl.Submit(0, addr+64, false, func(int64, int64) { done++ })
	h.q.Drain()
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	if h.ctl.STReads != 1 {
		t.Errorf("ST reads = %d, want 1 (coalesced)", h.ctl.STReads)
	}
}

func TestControllerValidation(t *testing.T) {
	l := testLayout(t)
	alloc, _ := NewAllocator(l, 1, 1)
	q := &event.Queue{}
	ch := mem.NewChannel(mem.DefaultChannelConfig(1<<20, 8<<20), q)
	// Wrong channel count.
	if _, err := NewController(ControllerConfig{Layout: l, STCEntries: 64, STCWays: 8, NumCores: 1},
		[]*mem.Channel{ch}, alloc, &recPolicy{}, q); err == nil {
		t.Error("channel-count mismatch should fail")
	}
	// Indivisible STC entries.
	chans := []*mem.Channel{ch, mem.NewChannel(mem.DefaultChannelConfig(1<<20, 8<<20), q)}
	if _, err := NewController(ControllerConfig{Layout: l, STCEntries: 7, STCWays: 8, NumCores: 1},
		chans, alloc, &recPolicy{}, q); err == nil {
		t.Error("indivisible STC entries should fail")
	}
}

func TestRegionAttribution(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	// Find a page in the private region (region 0 for core 0) and one in
	// a shared region; verify the OnServed attribution.
	var privAddr, sharedAddr int64 = -1, -1
	for pg := 0; pg < len(h.vmap); pg++ {
		r := h.layout.PageRegion(h.vmap[pg])
		if r == 0 && privAddr < 0 {
			privAddr = h.addrOf(pg, 0)
		}
		if r != 0 && sharedAddr < 0 {
			sharedAddr = h.addrOf(pg, 0)
		}
	}
	if privAddr < 0 || sharedAddr < 0 {
		t.Fatal("missing private or shared page")
	}
	h.submit(privAddr, false)
	h.submit(sharedAddr, false)
	if p.served[0][:7] != "private" {
		t.Errorf("first access attribution = %s", p.served[0])
	}
	if p.served[1][:6] != "shared" {
		t.Errorf("second access attribution = %s", p.served[1])
	}
}
