package hybrid

import (
	"testing"
)

func testAllocator(t *testing.T, programs int) (*Allocator, Layout) {
	t.Helper()
	l := testLayout(t)
	a, err := NewAllocator(l, programs, 7)
	if err != nil {
		t.Fatal(err)
	}
	return a, l
}

func TestAllocatorValidation(t *testing.T) {
	l := testLayout(t)
	if _, err := NewAllocator(l, 0, 1); err == nil {
		t.Error("zero programs should fail")
	}
	if _, err := NewAllocator(l, 128, 1); err == nil {
		t.Error("programs consuming every region should fail")
	}
}

func TestPrivateRegionIsolation(t *testing.T) {
	a, l := testAllocator(t, 4)
	for core := 0; core < 4; core++ {
		pages, err := a.Alloc(core, 500)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pages {
			r := l.PageRegion(p)
			// A program may receive frames from its own private region or
			// from shared regions — never from another private region.
			if r < 4 && r != core {
				t.Fatalf("core %d received a page in core %d's private region", core, r)
			}
		}
	}
}

func TestPrivateRegionReceivesSmallShare(t *testing.T) {
	a, l := testAllocator(t, 4)
	pages, err := a.Alloc(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	private := 0
	for _, p := range pages {
		if l.PageRegion(p) == 0 {
			private++
		}
	}
	// Allowed regions: 1 private + 124 shared = 125; round-robin gives
	// 2000/125 = 16 private pages.
	if private < 8 || private > 32 {
		t.Errorf("private pages = %d, want ~16", private)
	}
}

func TestOwnershipTracking(t *testing.T) {
	a, l := testAllocator(t, 2)
	pages, err := a.Alloc(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		first := p * l.PageBytes / l.BlockBytes
		for i := 0; i < l.BlocksPerPage(); i++ {
			b := first + int64(i)
			if got := a.OwnerBlock(b); got != 1 {
				t.Fatalf("block %d owner = %d, want 1", b, got)
			}
			if got := a.Owner(l.Group(b), l.Slot(b)); got != 1 {
				t.Fatalf("Owner(group,slot) = %d, want 1", got)
			}
		}
	}
	// Untouched blocks stay unowned. Find one.
	found := false
	for b := int64(0); b < l.TotalBlocks(); b++ {
		if a.OwnerBlock(b) == -1 {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected unallocated blocks")
	}
}

func TestNoDoubleAllocation(t *testing.T) {
	a, _ := testAllocator(t, 2)
	seen := map[int64]bool{}
	for core := 0; core < 2; core++ {
		pages, err := a.Alloc(core, 3000)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pages {
			if seen[p] {
				t.Fatalf("page %d allocated twice", p)
			}
			seen[p] = true
		}
	}
}

func TestAllocExhaustion(t *testing.T) {
	a, l := testAllocator(t, 1)
	total := l.TotalPages()
	if _, err := a.Alloc(0, total+1); err == nil {
		t.Error("over-allocation should fail")
	}
}

func TestAllocAccounting(t *testing.T) {
	a, l := testAllocator(t, 2)
	before := a.FreePages()
	if before != l.TotalPages() {
		t.Errorf("free pages = %d, want all %d", before, l.TotalPages())
	}
	if _, err := a.Alloc(0, 100); err != nil {
		t.Fatal(err)
	}
	if a.Allocated(0) != 100 {
		t.Errorf("Allocated(0) = %d", a.Allocated(0))
	}
	if a.FreePages() != before-100 {
		t.Errorf("free pages = %d, want %d", a.FreePages(), before-100)
	}
}

func TestAllocDeterminism(t *testing.T) {
	run := func() []int64 {
		a, _ := testAllocator(t, 4)
		pages, err := a.Alloc(2, 300)
		if err != nil {
			t.Fatal(err)
		}
		return pages
	}
	p1, p2 := run(), run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("allocation not deterministic at page %d", i)
		}
	}
}

func TestRegionHelpers(t *testing.T) {
	a, _ := testAllocator(t, 3)
	if a.PrivateRegion(2) != 2 {
		t.Error("private region of core 2 should be region 2")
	}
	if !a.IsPrivate(1, 1) || a.IsPrivate(1, 0) {
		t.Error("IsPrivate wrong")
	}
	if !a.IsAnyPrivate(2) || a.IsAnyPrivate(3) {
		t.Error("IsAnyPrivate wrong")
	}
	if a.Owner(0, 0) != -1 {
		t.Error("unallocated block should have owner -1")
	}
	if _, err := a.Alloc(7, 1); err == nil {
		t.Error("out-of-range core should fail")
	}
}

func TestAllocSpreadsAcrossSlots(t *testing.T) {
	// With shuffled free lists, a program's pages should span multiple
	// slots — i.e. it starts with some data in M1 (slot 0) and most in M2.
	a, l := testAllocator(t, 4)
	pages, err := a.Alloc(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	slotSeen := map[int]int{}
	for _, p := range pages {
		b := p * l.PageBytes / l.BlockBytes
		slotSeen[l.Slot(b)]++
	}
	if len(slotSeen) < 5 {
		t.Errorf("pages concentrated in %d slots: %v", len(slotSeen), slotSeen)
	}
	if slotSeen[0] == 0 {
		t.Error("expected some pages initially in M1 (slot 0)")
	}
}
