package hybrid

import (
	"testing"

	"profess/internal/fault"
)

// m2Addr finds an allocated byte address whose block currently resides in
// M2 (location != 0), so demand bursts to it are eligible for NVM
// transient injection.
func (h *ctlHarness) m2Addr(t *testing.T) int64 {
	t.Helper()
	for pg := range h.vmap {
		a := h.addrOf(pg, 0)
		block := a / h.layout.BlockBytes
		g, s := h.layout.Group(block), h.layout.Slot(block)
		if h.ctl.LocationIndex(g, s) != 0 {
			return a
		}
	}
	t.Fatal("no M2-resident page in the allocation")
	return 0
}

func TestTransientRetryBoundsAndBackoff(t *testing.T) {
	h := newHarness(t, 64, &recPolicy{})
	addr := h.m2Addr(t)

	// Fault-free reference latency for the same access (second submit hits
	// the STC, so both runs pay identical ST traffic: none).
	h.submit(addr, false)
	base := h.submit(addr, false)

	// Every M2 read burst fails: the controller must retry RetryMax times
	// with doubling backoff, then drop exactly once — never loop forever.
	inj := fault.NewInjector(fault.Plan{Seed: 1, NVMReadRate: 1})
	h.ctl.Channels()[0].SetFaultInjector(inj.Fork(1))
	lat := h.submit(addr, false)

	if h.ctl.Resilience.Retries != int64(DefaultRetryMax) {
		t.Errorf("retries = %d, want %d", h.ctl.Resilience.Retries, DefaultRetryMax)
	}
	if h.ctl.Resilience.Drops != 1 {
		t.Errorf("drops = %d, want 1", h.ctl.Resilience.Drops)
	}
	// The observed latency includes every failed attempt plus the
	// exponential backoff schedule (64 + 128 + 256 cycles).
	minExtra := int64(DefaultRetryBackoff) * (1 + 2 + 4)
	if lat < base+minExtra {
		t.Errorf("faulted latency %d should exceed clean %d by at least %d", lat, base, minExtra)
	}
}

func TestTransientRetrySucceedsWithinBudget(t *testing.T) {
	h := newHarness(t, 64, &recPolicy{})
	addr := h.m2Addr(t)
	h.submit(addr, false) // fill the STC

	// At rate 0.5 most bursts eventually succeed within the retry budget:
	// across many accesses we must see retries but almost no drops.
	inj := fault.NewInjector(fault.Plan{Seed: 7, NVMReadRate: 0.5})
	h.ctl.Channels()[0].SetFaultInjector(inj.Fork(1))
	const n = 200
	for i := 0; i < n; i++ {
		h.submit(addr, false)
	}
	res := h.ctl.Resilience
	if res.Retries == 0 {
		t.Fatal("no retries at 50% fault rate")
	}
	// P(drop) = 0.5^4 per access ≈ 6%; seeing more than a third dropped
	// would mean the budget is not being honoured.
	if res.Drops > n/3 {
		t.Errorf("drops = %d of %d, retry budget not effective", res.Drops, n)
	}
	if res.Drops+int64(n) < res.Retries/int64(DefaultRetryMax) {
		t.Errorf("implausible tally: %+v", res)
	}
}

func TestQACCorruptionTallied(t *testing.T) {
	h := newHarness(t, 4, &recPolicy{}) // tiny STC forces evictions
	inj := fault.NewInjector(fault.Plan{Seed: 3, QACCorruptRate: 1})
	h.ctl.SetFaultInjector(inj.Fork(0x100))
	for pg := 0; pg < 32; pg++ {
		h.submit(h.addrOf(pg, 0), true)
	}
	h.ctl.FlushSTCs()
	if inj.Counts()[fault.QACCorruption] == 0 {
		t.Error("no QAC corruption fired at rate 1 with forced evictions")
	}
}
