package hybrid

import (
	"testing"

	"profess/internal/event"
	"profess/internal/mem"
)

// evictGroup forces group's ST entry out of the STC by touching enough
// conflicting groups (same set) through the controller.
func (h *ctlHarness) evictGroup(t *testing.T, group int64) {
	t.Helper()
	stc := h.ctl.STCs()[0]
	for g := group + 1; g < h.layout.Groups; g++ {
		if stc.Peek(group) == nil {
			return
		}
		// Touch a block in group g via its original slot-0 address if g
		// maps to the same STC set.
		if g%int64(stcSets(stc)) == group%int64(stcSets(stc)) {
			addr := h.layout.Block(g, 0) * h.layout.BlockBytes
			h.submit(addr, false)
		}
	}
	if stc.Peek(group) != nil {
		t.Fatal("could not evict group")
	}
}

func stcSets(s *STC) int { return s.sets }

// TestQACPersistenceRoundTrip is the §3.2.1 contract: access counts
// quantize into the ST entry at eviction and come back as q_I at the next
// insertion — the attribute MDM predicts from.
func TestQACPersistenceRoundTrip(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 8, p) // tiny STC so evictions are easy
	// Pick an M2-resident block (slot 4 of group 0) and touch it 10 times
	// (quantizes to QAC 2 per Table 5).
	addr := h.layout.Block(0, 4) * h.layout.BlockBytes
	for i := 0; i < 10; i++ {
		h.submit(addr+int64(i*64), false)
	}
	h.evictGroup(t, 0)
	// Re-touch the block: its ST entry reloads with QInsert = 2.
	h.submit(addr, false)
	e := h.ctl.STCs()[0].Peek(0)
	if e == nil {
		t.Fatal("entry not resident after re-touch")
	}
	if got := e.QInsert[4]; got != 2 {
		t.Errorf("persisted QAC = %d, want 2 (10 accesses)", got)
	}
	// Untouched slots keep QAC 0 (previously unseen).
	if got := e.QInsert[7]; got != 0 {
		t.Errorf("untouched slot QAC = %d, want 0", got)
	}
}

// TestQACZeroCountDoesNotOverwrite checks §3.2.1: "If a block's access
// count is 0 at ST-entry eviction, the MC does not update the block's QAC
// value" — a hot block's QAC survives residencies where it is untouched.
func TestQACZeroCountDoesNotOverwrite(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 8, p)
	addr := h.layout.Block(0, 4) * h.layout.BlockBytes
	for i := 0; i < 40; i++ { // quantizes to 3
		h.submit(addr+int64((i%32)*64), false)
	}
	h.evictGroup(t, 0)
	// A residency that touches only a different block of group 0.
	other := h.layout.Block(0, 2) * h.layout.BlockBytes
	h.submit(other, false)
	h.evictGroup(t, 0)
	// Reload: slot 4 still carries QAC 3.
	h.submit(addr, false)
	e := h.ctl.STCs()[0].Peek(0)
	if got := e.QInsert[4]; got != 3 {
		t.Errorf("QAC = %d, want 3 preserved across an idle residency", got)
	}
}

// TestMultiChannelController verifies group striping across two channels:
// traffic to even groups hits channel 0, odd groups channel 1, and swaps
// stay channel-local.
func TestMultiChannelController(t *testing.T) {
	l, err := NewLayout(1<<20, 2, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := NewAllocator(l, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := &event.Queue{}
	mkChan := func() *mem.Channel {
		return mem.NewChannel(mem.DefaultChannelConfig(
			l.M1Capacity()/2+l.STBytesPerChannel(), l.M2Capacity()/2), q)
	}
	chans := []*mem.Channel{mkChan(), mkChan()}
	pol := &recPolicy{}
	ctl, err := NewController(ControllerConfig{
		Layout: l, STCEntries: 64, STCWays: 4, NumCores: 1, ModelSTTraffic: false,
	}, chans, alloc, pol, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alloc.Alloc(0, 128); err != nil {
		t.Fatal(err)
	}
	// Even group -> channel 0, odd group -> channel 1.
	ctl.Submit(0, l.Block(2, 0)*l.BlockBytes, false, nil)
	ctl.Submit(0, l.Block(3, 0)*l.BlockBytes, false, nil)
	q.Drain()
	if chans[0].Counts.Reads[mem.M1] != 1 || chans[1].Counts.Reads[mem.M1] != 1 {
		t.Errorf("channel traffic: ch0=%d ch1=%d", chans[0].Counts.Reads[mem.M1], chans[1].Counts.Reads[mem.M1])
	}
	// A swap in an odd group blocks only channel 1.
	if !ctl.ScheduleSwap(3, 5) {
		t.Fatal("swap refused")
	}
	if chans[1].Counts.Swaps != 1 || chans[0].Counts.Swaps != 0 {
		t.Errorf("swap channel-locality violated: ch0=%d ch1=%d", chans[0].Counts.Swaps, chans[1].Counts.Swaps)
	}
	q.Drain()
}

// TestSTCHitServesWithoutSTRead pins the STC's purpose: resident entries
// translate without any ST traffic, so a burst to one group costs one ST
// read total.
func TestSTCHitServesWithoutSTRead(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	addr := h.addrOf(0, 0)
	for i := 0; i < 32; i++ {
		h.submit(addr+int64(i*64), false)
	}
	if h.ctl.STReads != 1 {
		t.Errorf("ST reads = %d for a single-group burst, want 1", h.ctl.STReads)
	}
}

// TestReadLatencyQuantiles checks the controller's tail-latency surface.
func TestReadLatencyQuantiles(t *testing.T) {
	p := &recPolicy{}
	h := newHarness(t, 64, p)
	for pg := 0; pg < 32; pg++ {
		h.submit(h.addrOf(pg, 0), false)
	}
	p50 := h.ctl.ReadLatencyQuantile(0, 0.5)
	p99 := h.ctl.ReadLatencyQuantile(0, 0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("quantiles p50=%v p99=%v", p50, p99)
	}
}
