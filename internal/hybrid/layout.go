// Package hybrid implements the flat migrating hybrid-memory organization
// the paper builds on (the PoM organization of §2.3): swap groups of nine
// 2-KB locations (one in M1, eight in M2), a Swap-group Table (ST) resident
// in M1, an on-chip Swap-group Table Cache (STC) with the per-block access
// counters and QAC persistence that MDM needs, the interleaved region map
// of Fig. 3, an OS page allocator honouring private/shared regions, and the
// memory controller that ties translation, demand service, and swaps
// together.
package hybrid

import (
	"fmt"

	"profess/internal/mem"
)

// SlotsPerGroup is the number of locations in a swap group: one M1 block
// plus eight M2 blocks (M1:M2 capacity ratio 1:8, Table 1/§2.2).
const SlotsPerGroup = 9

// MaxSlots bounds the locations per group the hardware structures are
// sized for; it admits the 1:16 capacity-ratio sensitivity study (§5.2).
const MaxSlots = 17

// Layout describes the address-space organization of the hybrid memory.
type Layout struct {
	BlockBytes int64 // swap-block size (Table 8: 2 KB)
	PageBytes  int64 // OS page size (Table 8: 4 KB)
	Groups     int64 // number of swap groups == number of M1 blocks
	Channels   int   // memory channels; groups stripe across channels
	Regions    int   // RSM regions (Fig. 3: 128)
	M2Slots    int   // M2 locations per group (8 for the 1:8 ratio)
}

// NewLayout builds a layout from the M1 capacity (across all channels).
// m1Capacity must be a multiple of Channels*BlockBytes.
func NewLayout(m1Capacity int64, channels, regions, m2Slots int) (Layout, error) {
	l := Layout{
		BlockBytes: 2 << 10,
		PageBytes:  4 << 10,
		Channels:   channels,
		Regions:    regions,
		M2Slots:    m2Slots,
	}
	if channels <= 0 || regions <= 0 {
		return Layout{}, fmt.Errorf("hybrid: channels and regions must be positive")
	}
	if m2Slots <= 0 {
		return Layout{}, fmt.Errorf("hybrid: m2Slots must be positive")
	}
	l.Groups = m1Capacity / l.BlockBytes
	if l.Groups < int64(channels) || l.Groups%int64(channels) != 0 {
		return Layout{}, fmt.Errorf("hybrid: M1 capacity %d not divisible into %d channels of 2-KB blocks", m1Capacity, channels)
	}
	if l.Groups < int64(2*regions) {
		return Layout{}, fmt.Errorf("hybrid: %d groups too few for %d regions", l.Groups, regions)
	}
	return l, nil
}

// Slots returns the number of locations per group (1 + M2Slots).
func (l Layout) Slots() int { return 1 + l.M2Slots }

// TotalBlocks returns the number of original (OS-visible) 2-KB blocks.
func (l Layout) TotalBlocks() int64 { return l.Groups * int64(l.Slots()) }

// TotalPages returns the number of OS-visible 4-KB page frames.
func (l Layout) TotalPages() int64 { return l.TotalBlocks() * l.BlockBytes / l.PageBytes }

// M1Capacity returns the M1 byte capacity (block area, ST excluded).
func (l Layout) M1Capacity() int64 { return l.Groups * l.BlockBytes }

// M2Capacity returns the M2 byte capacity.
func (l Layout) M2Capacity() int64 { return l.Groups * int64(l.M2Slots) * l.BlockBytes }

// BlocksPerPage is how many swap blocks one OS page spans (2 with Table 8
// sizes). Consecutive blocks of a page land in consecutive swap groups,
// which the region interleaving maps to the same region (Fig. 3).
func (l Layout) BlocksPerPage() int { return int(l.PageBytes / l.BlockBytes) }

// Group returns the swap group of an original block index. PoM's
// direct-mapped organization assigns block B to group B mod Groups, so the
// blocks of one group are B, B+G, B+2G, ..., one per slot.
func (l Layout) Group(block int64) int64 { return block % l.Groups }

// Slot returns the slot (0..8) of an original block index within its group.
// Slot s of group g holds original block g + s*Groups. Slot number is the
// block's identity inside the group; the ST permutation maps it to an
// actual location.
func (l Layout) Slot(block int64) int { return int(block / l.Groups) }

// Block reconstructs the original block index from (group, slot).
func (l Layout) Block(group int64, slot int) int64 {
	return group + int64(slot)*l.Groups
}

// Region returns the RSM region of a swap group, following Fig. 3's
// interleaving: groups (0,1) -> region 0, (2,3) -> region 1, ...,
// (254,255) -> region 127, (256,257) -> region 0, and so on.
func (l Layout) Region(group int64) int {
	return int((group / int64(l.BlocksPerPage())) % int64(l.Regions))
}

// PageRegion returns the region of an OS page frame. All blocks of a page
// share a region by construction.
func (l Layout) PageRegion(page int64) int {
	firstBlock := page * l.PageBytes / l.BlockBytes
	return l.Region(l.Group(firstBlock))
}

// Channel returns the memory channel serving a group. Groups stripe across
// channels so both partitions of one group live on the same channel and a
// swap stays channel-local.
func (l Layout) Channel(group int64) int { return int(group % int64(l.Channels)) }

// localGroup is the group's index within its channel.
func (l Layout) localGroup(group int64) int64 { return group / int64(l.Channels) }

// GroupsPerChannel returns how many groups each channel serves.
func (l Layout) GroupsPerChannel() int64 { return l.Groups / int64(l.Channels) }

// Location identifies an actual physical 2-KB block placement.
type Location struct {
	Module mem.Kind
	// ByteAddr is the block's byte offset within its module (per channel).
	ByteAddr int64
}

// LocationOf maps (group, location index) to the physical placement on the
// group's channel. Location 0 is the group's M1 block; locations 1..8 are
// its M2 blocks, striped so that consecutive groups' same-numbered M2
// locations are adjacent (preserving row-buffer locality for streams).
func (l Layout) LocationOf(group int64, loc int) Location {
	lg := l.localGroup(group)
	if loc == 0 {
		return Location{Module: mem.M1, ByteAddr: lg * l.BlockBytes}
	}
	idx := int64(loc-1)*l.GroupsPerChannel() + lg
	return Location{Module: mem.M2, ByteAddr: idx * l.BlockBytes}
}

// STBytesPerChannel returns the Swap-group Table size on each channel
// (8 bytes per entry, Table 8).
func (l Layout) STBytesPerChannel() int64 { return l.GroupsPerChannel() * STEntryBytes }

// STEntryBytes is the ST entry size (Table 8: 8 B; §4.1 details ProFess's
// 36 ATB + 18 QAC + 2 program-ID bits = 7 B with one byte reserved).
const STEntryBytes = 8

// STLineAddr returns the M1 byte address (within the group's channel,
// beyond the block area) of the 64-B line holding the group's ST entry.
func (l Layout) STLineAddr(group int64) int64 {
	lg := l.localGroup(group)
	base := l.GroupsPerChannel() * l.BlockBytes // ST area sits after the block area
	return base + (lg*STEntryBytes)&^63
}
