package hybrid

import (
	"testing"
	"testing/quick"

	"profess/internal/mem"
)

func testLayout(t *testing.T) Layout {
	t.Helper()
	l, err := NewLayout(8<<20, 2, 128, 8) // 4096 groups across 2 channels
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(8<<20, 0, 128, 8); err == nil {
		t.Error("zero channels should fail")
	}
	if _, err := NewLayout(8<<20, 2, 0, 8); err == nil {
		t.Error("zero regions should fail")
	}
	if _, err := NewLayout(8<<20, 2, 128, 0); err == nil {
		t.Error("zero M2 slots should fail")
	}
	if _, err := NewLayout(3<<11, 2, 128, 8); err == nil {
		t.Error("too few groups for regions should fail")
	}
}

func TestLayoutSizes(t *testing.T) {
	l := testLayout(t)
	if l.Groups != 4096 {
		t.Errorf("groups = %d", l.Groups)
	}
	if l.Slots() != 9 {
		t.Errorf("slots = %d", l.Slots())
	}
	if l.TotalBlocks() != 4096*9 {
		t.Errorf("total blocks = %d", l.TotalBlocks())
	}
	if l.M1Capacity() != 8<<20 {
		t.Errorf("M1 = %d", l.M1Capacity())
	}
	if l.M2Capacity() != 64<<20 {
		t.Errorf("M2 = %d", l.M2Capacity())
	}
	if l.BlocksPerPage() != 2 {
		t.Errorf("blocks per page = %d", l.BlocksPerPage())
	}
	if l.TotalPages() != 4096*9/2 {
		t.Errorf("pages = %d", l.TotalPages())
	}
}

func TestGroupSlotBlockRoundTrip(t *testing.T) {
	l := testLayout(t)
	f := func(raw int64) bool {
		b := raw
		if b < 0 {
			b = -b
		}
		b %= l.TotalBlocks()
		g, s := l.Group(b), l.Slot(b)
		if s < 0 || s >= l.Slots() || g < 0 || g >= l.Groups {
			return false
		}
		return l.Block(g, s) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFig3RegionInterleaving(t *testing.T) {
	l := testLayout(t)
	// Fig. 3: S0,S1 -> R0; S2,S3 -> R1; ...; S254,S255 -> R127;
	// S256,S257 -> R0 again.
	cases := []struct {
		group  int64
		region int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {254, 127}, {255, 127}, {256, 0}, {257, 0}, {258, 1},
	}
	for _, c := range cases {
		if got := l.Region(c.group); got != c.region {
			t.Errorf("Region(S%d) = %d, want %d", c.group, got, c.region)
		}
	}
}

func TestPageSpansOneRegion(t *testing.T) {
	l := testLayout(t)
	for p := int64(0); p < l.TotalPages(); p += 97 {
		first := p * l.PageBytes / l.BlockBytes
		r0 := l.Region(l.Group(first))
		r1 := l.Region(l.Group(first + 1))
		if r0 != r1 {
			t.Fatalf("page %d straddles regions %d and %d", p, r0, r1)
		}
		if l.PageRegion(p) != r0 {
			t.Fatalf("PageRegion(%d) = %d, want %d", p, l.PageRegion(p), r0)
		}
	}
}

func TestChannelStriping(t *testing.T) {
	l := testLayout(t)
	if l.Channel(0) != 0 || l.Channel(1) != 1 || l.Channel(2) != 0 {
		t.Error("groups should stripe across channels")
	}
	if l.GroupsPerChannel() != 2048 {
		t.Errorf("groups per channel = %d", l.GroupsPerChannel())
	}
}

func TestLocationOfDisjoint(t *testing.T) {
	l := testLayout(t)
	// Within one channel, every (group, loc) pair must map to a distinct
	// physical block address per module kind.
	seen := map[mem.Kind]map[int64]bool{mem.M1: {}, mem.M2: {}}
	for g := int64(0); g < l.Groups; g += 2 { // channel 0 groups
		for loc := 0; loc < l.Slots(); loc++ {
			lo := l.LocationOf(g, loc)
			if lo.ByteAddr%l.BlockBytes != 0 {
				t.Fatalf("location not block aligned: %+v", lo)
			}
			if seen[lo.Module][lo.ByteAddr] {
				t.Fatalf("collision at %v:%d (group %d loc %d)", lo.Module, lo.ByteAddr, g, loc)
			}
			seen[lo.Module][lo.ByteAddr] = true
		}
	}
	// Exactly the right number of distinct blocks on channel 0.
	if len(seen[mem.M1]) != int(l.GroupsPerChannel()) {
		t.Errorf("M1 blocks = %d", len(seen[mem.M1]))
	}
	if len(seen[mem.M2]) != int(l.GroupsPerChannel())*l.M2Slots {
		t.Errorf("M2 blocks = %d", len(seen[mem.M2]))
	}
}

func TestLocationZeroIsM1(t *testing.T) {
	l := testLayout(t)
	for g := int64(0); g < 100; g++ {
		if l.LocationOf(g, 0).Module != mem.M1 {
			t.Fatal("location 0 must be in M1")
		}
		for loc := 1; loc < l.Slots(); loc++ {
			if l.LocationOf(g, loc).Module != mem.M2 {
				t.Fatal("locations 1..8 must be in M2")
			}
		}
	}
}

func TestSTAddresses(t *testing.T) {
	l := testLayout(t)
	if l.STBytesPerChannel() != 2048*8 {
		t.Errorf("ST bytes per channel = %d", l.STBytesPerChannel())
	}
	// ST lines sit beyond the M1 block area and are 64-B aligned.
	blockArea := l.GroupsPerChannel() * l.BlockBytes
	for g := int64(0); g < l.Groups; g += 33 {
		a := l.STLineAddr(g)
		if a < blockArea {
			t.Fatalf("ST line %d overlaps block area", a)
		}
		if a%64 != 0 {
			t.Fatalf("ST line %d not 64-B aligned", a)
		}
	}
	// Eight consecutive same-channel groups share one ST line.
	if l.STLineAddr(0) != l.STLineAddr(14) {
		t.Error("groups 0 and 14 (channel 0, entries 0 and 7) should share an ST line")
	}
	if l.STLineAddr(0) == l.STLineAddr(16) {
		t.Error("entry 8 should be on the next ST line")
	}
}

func TestConsecutivePageGroupsSameChannelStriping(t *testing.T) {
	l := testLayout(t)
	// A page's two blocks land in consecutive groups, hence different
	// channels with 2-channel striping — bandwidth spreading for pages.
	if l.Channel(l.Group(0)) == l.Channel(l.Group(1)) {
		t.Error("consecutive blocks should stripe across channels")
	}
}
