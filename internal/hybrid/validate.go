package hybrid

import "fmt"

// CheckInvariants walks the controller's authoritative state and verifies
// the structural invariants every migration algorithm must preserve:
//
//  1. each group's slot->location map is a permutation (no two blocks
//     share a physical location, no block is lost);
//  2. m1[group] names exactly the slot mapped to location 0;
//  3. persisted QAC values are valid 2-bit codes;
//  4. no group is marked swapping outside an in-flight swap window.
//
// It returns the first violation found. Tests call it after stress runs;
// downstream policy authors can call it while debugging a custom policy.
func (c *Controller) CheckInvariants() error {
	slots := int(c.slots)
	seen := make([]bool, slots)
	for g := int64(0); g < c.layout.Groups; g++ {
		for i := range seen {
			seen[i] = false
		}
		for s := 0; s < slots; s++ {
			loc := c.permAt(g, s)
			if loc < 0 || loc >= slots {
				return fmt.Errorf("hybrid: group %d slot %d maps to invalid location %d", g, s, loc)
			}
			if seen[loc] {
				return fmt.Errorf("hybrid: group %d location %d claimed twice", g, loc)
			}
			seen[loc] = true
		}
		if got := c.permAt(g, int(c.m1[g])); got != 0 {
			return fmt.Errorf("hybrid: group %d m1 slot %d maps to location %d, want 0", g, c.m1[g], got)
		}
		for s := 0; s < slots; s++ {
			if q := c.qac[g*c.slots+int64(s)]; q > 3 {
				return fmt.Errorf("hybrid: group %d slot %d has invalid QAC %d", g, s, q)
			}
		}
	}
	return nil
}

// CheckedPolicy wraps a Policy and validates every hook invocation's
// arguments against the organization's contracts, collecting violations
// instead of panicking. Wrap a custom policy with it while developing:
//
//	policy := hybrid.NewCheckedPolicy(myPolicy, layout)
//	... run ...
//	for _, v := range policy.Violations() { ... }
type CheckedPolicy struct {
	inner  Policy
	layout Layout
	viols  []string
}

// NewCheckedPolicy wraps inner.
func NewCheckedPolicy(inner Policy, layout Layout) *CheckedPolicy {
	return &CheckedPolicy{inner: inner, layout: layout}
}

// Violations returns the recorded contract violations.
func (p *CheckedPolicy) Violations() []string { return p.viols }

func (p *CheckedPolicy) violate(format string, args ...interface{}) {
	if len(p.viols) < 100 { // bound memory under pathological input
		p.viols = append(p.viols, fmt.Sprintf(format, args...))
	}
}

// Name implements Policy.
func (p *CheckedPolicy) Name() string { return p.inner.Name() }

// WriteWeight implements Policy.
func (p *CheckedPolicy) WriteWeight() int {
	if w := p.inner.WriteWeight(); w > 0 {
		return w
	}
	p.violate("WriteWeight must be positive")
	return 1
}

// OnAccess implements Policy.
func (p *CheckedPolicy) OnAccess(info AccessInfo, ctl PolicyContext) {
	if info.Group < 0 || info.Group >= p.layout.Groups {
		p.violate("OnAccess: group %d out of range", info.Group)
	}
	if info.Slot < 0 || info.Slot >= p.layout.Slots() {
		p.violate("OnAccess: slot %d out of range", info.Slot)
	}
	if info.Loc < 0 || info.Loc >= p.layout.Slots() {
		p.violate("OnAccess: location %d out of range", info.Loc)
	}
	if info.Entry == nil {
		p.violate("OnAccess: nil STC entry")
		return
	}
	if info.Loc == 0 && ctl.M1Slot(info.Group) != info.Slot {
		p.violate("OnAccess: block at location 0 but M1Slot says %d != %d",
			ctl.M1Slot(info.Group), info.Slot)
	}
	p.inner.OnAccess(info, ctl)
}

// OnServed implements Policy.
func (p *CheckedPolicy) OnServed(core, region int, private, fromM1 bool) {
	if region < 0 || region >= p.layout.Regions {
		p.violate("OnServed: region %d out of range", region)
	}
	p.inner.OnServed(core, region, private, fromM1)
}

// OnSTCEvict implements Policy.
func (p *CheckedPolicy) OnSTCEvict(core int, qI, qE uint8, count uint32) {
	if qE == 0 || qE > 3 {
		p.violate("OnSTCEvict: invalid q_E %d (blocks with zero counts must not be reported)", qE)
	}
	if qI > 3 {
		p.violate("OnSTCEvict: invalid q_I %d", qI)
	}
	if count == 0 {
		p.violate("OnSTCEvict: zero count reported")
	}
	if QuantizeCount(count) != qE {
		p.violate("OnSTCEvict: count %d quantizes to %d, reported %d", count, QuantizeCount(count), qE)
	}
	p.inner.OnSTCEvict(core, qI, qE, count)
}

// OnSwapDone implements Policy.
func (p *CheckedPolicy) OnSwapDone(region int, private bool, ownerM1, ownerM2 int) {
	if region < 0 || region >= p.layout.Regions {
		p.violate("OnSwapDone: region %d out of range", region)
	}
	p.inner.OnSwapDone(region, private, ownerM1, ownerM2)
}

var _ Policy = (*CheckedPolicy)(nil)
