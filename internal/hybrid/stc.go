package hybrid

import "fmt"

// CounterMax is the saturation value of the 6-bit STC access counters
// (§4.1: MDM uses 6-bit saturating counters, one per swap-group location).
const CounterMax = 63

// QuantizeCount maps an access count to the 2-bit Quantized Access-Counter
// value of Table 5: 0 = previously unseen (never produced by this function
// for non-zero counts), 1 = 1-7 accesses, 2 = 8-31, 3 = 32 or more.
func QuantizeCount(c uint32) uint8 {
	switch {
	case c == 0:
		return 0
	case c < 8:
		return 1
	case c < 32:
		return 2
	default:
		return 3
	}
}

// NumQI is the number of QAC values a block can have at ST-entry insertion.
const NumQI = 4

// NumQE is the number of valid QAC values at eviction (q_E = 0 is invalid:
// blocks with zero access count do not update their QAC, §3.2.2).
const NumQE = 3

// STCEntry is one cached ST entry plus the accurate per-block state the STC
// maintains while the entry is resident (§3.2.1): a 6-bit access counter
// and the QAC value each block had when the entry was inserted.
type STCEntry struct {
	Group int64
	valid bool
	dirty bool
	lru   int64

	Counters [MaxSlots]uint16
	QInsert  [MaxSlots]uint8
}

// Count returns slot's current access count.
func (e *STCEntry) Count(slot int) uint32 { return uint32(e.Counters[slot]) }

// Bump adds weight accesses to slot's counter, saturating at CounterMax.
func (e *STCEntry) Bump(slot, weight int) {
	c := int(e.Counters[slot]) + weight
	if c > CounterMax {
		c = CounterMax
	}
	e.Counters[slot] = uint16(c)
}

// OtherAccessed reports whether any block other than slot has a non-zero
// counter (the §3.2.3 condition (b) hint that the idle M1 block is
// unlikely to be accessed soon).
func (e *STCEntry) OtherAccessed(slot int) bool {
	for s := 0; s < MaxSlots; s++ {
		if s != slot && e.Counters[s] > 0 {
			return true
		}
	}
	return false
}

// EvictedBlock reports one block's statistics at ST-entry eviction, for
// the MDM counter updates of Table 6.
type EvictedBlock struct {
	Slot    int
	QInsert uint8
	Count   uint32
}

// STCEviction describes an evicted entry.
type STCEviction struct {
	Group int64
	Dirty bool
	// Blocks lists the slots with non-zero access counts; the controller
	// turns them into QAC updates and MDM statistics.
	Blocks []EvictedBlock
}

// STC is the Swap-group Table Cache: a set-associative cache of ST entries
// (Table 8: 64 KB, 8-way, 8-B entries => 8K entries for the full-scale
// system). One STC instance serves one channel.
type STC struct {
	sets     int
	ways     int
	indexDiv int64      // global-group stride between entries of one channel
	lines    []STCEntry // sets*ways entries, set-major
	tags     []int64    // parallel residency tags: group number, or -1
	clock    int64

	// set-index fast path: shift/mask forms of indexDiv and sets when
	// they are powers of two (-1 selects the divide fallback).
	divShift int
	setShift int
	setMask  int64

	Hits   int64
	Misses int64
}

// NewSTC builds an STC with the given entry count and associativity.
// indexDiv is the divisor applied to global group numbers before set
// indexing (the channel count, since groups stripe across channels).
func NewSTC(entries, ways int, indexDiv int64) (*STC, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("hybrid: STC entries %d not divisible by ways %d", entries, ways)
	}
	if indexDiv <= 0 {
		indexDiv = 1
	}
	s := &STC{sets: entries / ways, ways: ways, indexDiv: indexDiv}
	s.lines = make([]STCEntry, entries)
	s.tags = make([]int64, entries)
	for i := range s.tags {
		s.tags[i] = -1
	}
	s.divShift = shiftOf(indexDiv)
	s.setShift = shiftOf(int64(s.sets))
	s.setMask = int64(s.sets) - 1
	return s, nil
}

// Entries returns the STC capacity in entries.
func (s *STC) Entries() int { return s.sets * s.ways }

// Reset empties the cache and zeroes the LRU clock and hit/miss counters,
// returning the STC to its just-built state without reallocating the
// entry or tag arrays.
func (s *STC) Reset() {
	clear(s.lines)
	for i := range s.tags {
		s.tags[i] = -1
	}
	s.clock = 0
	s.Hits, s.Misses = 0, 0
}

// set returns the set index for a global group number.
func (s *STC) set(group int64) int {
	local := group
	if s.divShift >= 0 {
		local >>= uint(s.divShift)
	} else {
		local /= s.indexDiv
	}
	if s.setShift >= 0 {
		return int(local & s.setMask)
	}
	return int(local % int64(s.sets))
}

// Lookup returns the resident entry for group, counting a hit or miss.
// The residency scan runs over the compact tag array; the wide entries are
// only touched on a hit.
func (s *STC) Lookup(group int64) *STCEntry {
	base := s.set(group) * s.ways
	s.clock++
	for i, t := range s.tags[base : base+s.ways] {
		if t == group {
			e := &s.lines[base+i]
			e.lru = s.clock
			s.Hits++
			return e
		}
	}
	s.Misses++
	return nil
}

// Peek returns the resident entry without LRU/stat updates, or nil.
func (s *STC) Peek(group int64) *STCEntry {
	base := s.set(group) * s.ways
	for i, t := range s.tags[base : base+s.ways] {
		if t == group {
			return &s.lines[base+i]
		}
	}
	return nil
}

// Insert caches group's ST entry with the given persisted QAC values,
// resetting all access counters to zero (§3.2.1). It returns the displaced
// entry's eviction record, or nil if an invalid way was used. The caller
// must have established the entry is absent (Lookup returned nil).
func (s *STC) Insert(group int64, qac [MaxSlots]uint8) *STCEviction {
	base := s.set(group) * s.ways
	ways := s.lines[base : base+s.ways]
	s.clock++
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	var ev *STCEviction
	if ways[victim].valid {
		ev = s.evictionRecord(&ways[victim])
	}
	ways[victim] = STCEntry{Group: group, valid: true, lru: s.clock, QInsert: qac}
	s.tags[base+victim] = group
	return ev
}

// evictionRecord captures the MDM-relevant state of an evicted entry.
func (s *STC) evictionRecord(e *STCEntry) *STCEviction {
	ev := &STCEviction{Group: e.Group, Dirty: e.dirty}
	for slot := 0; slot < MaxSlots; slot++ {
		if c := e.Counters[slot]; c > 0 {
			ev.Dirty = true // QAC update requires an ST writeback
			ev.Blocks = append(ev.Blocks, EvictedBlock{
				Slot:    slot,
				QInsert: e.QInsert[slot],
				Count:   uint32(c),
			})
		}
	}
	return ev
}

// MarkDirty flags group's entry (if resident) as needing writeback, e.g.
// because a swap changed its address-translation bits.
func (s *STC) MarkDirty(group int64) {
	if e := s.Peek(group); e != nil {
		e.dirty = true
	}
}

// FlushAll evicts every valid entry, returning their eviction records in
// deterministic (set, way) order. Used at simulation end so final-interval
// statistics are not lost, and by tests.
func (s *STC) FlushAll() []*STCEviction {
	var out []*STCEviction
	for i := range s.lines {
		e := &s.lines[i]
		if e.valid {
			out = append(out, s.evictionRecord(e))
			*e = STCEntry{}
			s.tags[i] = -1
		}
	}
	return out
}

// HitRate returns the STC hit rate observed so far.
func (s *STC) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}
