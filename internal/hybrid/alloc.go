package hybrid

import (
	"fmt"

	"profess/internal/xrand"
)

// Allocator is the OS-support piece RSM requires (§3.1.1): it tracks free
// physical page frames per region, dedicates one private region to each
// program, and hands out frames so that a program receives pages from its
// own private region and from the shared regions only — never from another
// program's private region. Swaps remain transparent to this layer.
type Allocator struct {
	layout      Layout
	numPrograms int

	freeByRegion [][]int64 // shuffled free page-frame lists, per region
	allowed      [][]int   // per program: regions it may receive frames from
	rr           []int     // per program: round-robin cursor into allowed
	owner        []int8    // per original block: owning core, -1 if free

	allocated []int64 // pages allocated per program

	// Snapshot of the just-shuffled free lists and the seed that produced
	// them: Reset with the same seed restores the lists with one copy per
	// region instead of re-deriving the shuffle (page fill + Fisher-Yates
	// + RNG stream), the dominant reset cost of an arena-reused machine.
	shuffleSeed uint64
	shuffled    [][]int64
}

// NewAllocator builds the OS view for numPrograms co-running programs.
// Region i is private to program i; the remaining Regions-numPrograms
// regions are shared. The free lists are deterministically shuffled with
// seed to model arbitrary OS frame placement.
func NewAllocator(l Layout, numPrograms int, seed uint64) (*Allocator, error) {
	if numPrograms <= 0 || numPrograms >= l.Regions {
		return nil, fmt.Errorf("hybrid: %d programs does not leave shared regions among %d", numPrograms, l.Regions)
	}
	a := &Allocator{
		layout:      l,
		numPrograms: numPrograms,
		owner:       make([]int8, l.TotalBlocks()),
		allocated:   make([]int64, numPrograms),
	}
	for i := range a.owner {
		a.owner[i] = -1
	}
	a.freeByRegion = make([][]int64, l.Regions)
	for p := int64(0); p < l.TotalPages(); p++ {
		r := l.PageRegion(p)
		a.freeByRegion[r] = append(a.freeByRegion[r], p)
	}
	rng := xrand.New(seed)
	for r := range a.freeByRegion {
		pages := a.freeByRegion[r]
		for i := len(pages) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			pages[i], pages[j] = pages[j], pages[i]
		}
	}
	a.allowed = make([][]int, numPrograms)
	a.rr = make([]int, numPrograms)
	for c := 0; c < numPrograms; c++ {
		regions := []int{c} // own private region
		for r := numPrograms; r < l.Regions; r++ {
			regions = append(regions, r) // all shared regions
		}
		a.allowed[c] = regions
	}
	return a, nil
}

// Reset returns the allocator to its just-built state for a (possibly
// different) shuffle seed: every frame free, every block unowned, the
// round-robin cursors rewound. The free lists are refilled in page order
// and reshuffled exactly as NewAllocator does — one rng shared across
// regions, regions visited in index order — so Reset(seed) is
// indistinguishable from NewAllocator(l, n, seed) to every caller.
func (a *Allocator) Reset(seed uint64) {
	for i := range a.owner {
		a.owner[i] = -1
	}
	clear(a.allocated)
	clear(a.rr)
	if seed == a.shuffleSeed && a.shuffled != nil {
		for r := range a.freeByRegion {
			a.freeByRegion[r] = append(a.freeByRegion[r][:0], a.shuffled[r]...)
		}
		return
	}
	for r := range a.freeByRegion {
		a.freeByRegion[r] = a.freeByRegion[r][:0]
	}
	l := a.layout
	for p := int64(0); p < l.TotalPages(); p++ {
		r := l.PageRegion(p)
		a.freeByRegion[r] = append(a.freeByRegion[r], p)
	}
	rng := xrand.New(seed)
	for r := range a.freeByRegion {
		pages := a.freeByRegion[r]
		for i := len(pages) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			pages[i], pages[j] = pages[j], pages[i]
		}
	}
	a.snapshotShuffle(seed)
}

// snapshotShuffle records the freshly shuffled free lists for seed so a
// later same-seed Reset restores them by copy.
func (a *Allocator) snapshotShuffle(seed uint64) {
	if a.shuffled == nil {
		a.shuffled = make([][]int64, len(a.freeByRegion))
	}
	for r, pages := range a.freeByRegion {
		a.shuffled[r] = append(a.shuffled[r][:0], pages...)
	}
	a.shuffleSeed = seed
}

// Alloc assigns vpages physical page frames to program core and returns
// the virtual-page -> physical-page table. Frames rotate round-robin over
// the program's allowed regions so its private region receives
// 1/len(allowed) of its footprint — small, as §3.1.1 requires.
func (a *Allocator) Alloc(core int, vpages int64) ([]int64, error) {
	if core < 0 || core >= a.numPrograms {
		return nil, fmt.Errorf("hybrid: core %d out of range", core)
	}
	table := make([]int64, vpages)
	for v := int64(0); v < vpages; v++ {
		p, ok := a.takeFrame(core)
		if !ok {
			return nil, fmt.Errorf("hybrid: out of physical pages after %d of %d for core %d", v, vpages, core)
		}
		table[v] = p
		a.claim(core, p)
	}
	a.allocated[core] += vpages
	return table, nil
}

// takeFrame pops the next free frame for core, skipping exhausted regions.
func (a *Allocator) takeFrame(core int) (int64, bool) {
	allowed := a.allowed[core]
	for tries := 0; tries < len(allowed); tries++ {
		r := allowed[a.rr[core]%len(allowed)]
		a.rr[core]++
		free := a.freeByRegion[r]
		if len(free) == 0 {
			continue
		}
		p := free[len(free)-1]
		a.freeByRegion[r] = free[:len(free)-1]
		return p, true
	}
	return 0, false
}

// claim records ownership of every block of page p.
func (a *Allocator) claim(core int, page int64) {
	first := page * a.layout.PageBytes / a.layout.BlockBytes
	for i := 0; i < a.layout.BlocksPerPage(); i++ {
		a.owner[first+int64(i)] = int8(core)
	}
}

// OwnerBlock returns the program owning the original block, or -1.
func (a *Allocator) OwnerBlock(block int64) int { return int(a.owner[block]) }

// Owner returns the program owning the block at (group, slot), or -1.
func (a *Allocator) Owner(group int64, slot int) int {
	return int(a.owner[a.layout.Block(group, slot)])
}

// PrivateRegion returns the region private to core.
func (a *Allocator) PrivateRegion(core int) int { return core }

// IsPrivate reports whether region is core's own private region.
func (a *Allocator) IsPrivate(core, region int) bool { return region == core }

// IsAnyPrivate reports whether region is private to some program.
func (a *Allocator) IsAnyPrivate(region int) bool { return region < a.numPrograms }

// Allocated returns the number of pages allocated to core.
func (a *Allocator) Allocated(core int) int64 { return a.allocated[core] }

// FreePages returns the total number of free page frames remaining.
func (a *Allocator) FreePages() int64 {
	var n int64
	for _, f := range a.freeByRegion {
		n += int64(len(f))
	}
	return n
}
