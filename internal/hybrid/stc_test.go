package hybrid

import (
	"testing"
	"testing/quick"
)

func TestQuantizeCountTable5(t *testing.T) {
	cases := []struct {
		count uint32
		want  uint8
	}{
		{0, 0}, {1, 1}, {7, 1}, {8, 2}, {31, 2}, {32, 3}, {63, 3}, {1000, 3},
	}
	for _, c := range cases {
		if got := QuantizeCount(c.count); got != c.want {
			t.Errorf("QuantizeCount(%d) = %d, want %d", c.count, got, c.want)
		}
	}
}

func TestQuantizeBounds(t *testing.T) {
	f := func(c uint32) bool {
		q := QuantizeCount(c)
		return q < NumQI && (c == 0) == (q == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuantizeMonotoneTotal exhaustively checks the Table 5 mapping over
// the whole 6-bit counter domain: it must be total (every count in
// 0..CounterMax lands in a valid bucket), monotone non-decreasing, and
// onto (every bucket reachable) — the properties the MDM's expected-count
// tables assume without checking.
func TestQuantizeMonotoneTotal(t *testing.T) {
	seen := make([]bool, NumQI)
	var prev uint8
	for c := uint32(0); c <= CounterMax; c++ {
		q := QuantizeCount(c)
		if q >= NumQI {
			t.Fatalf("QuantizeCount(%d) = %d outside [0,%d)", c, q, NumQI)
		}
		if q < prev {
			t.Fatalf("not monotone at %d: %d after %d", c, q, prev)
		}
		seen[q] = true
		prev = q
	}
	for b, ok := range seen {
		if !ok {
			t.Errorf("bucket %d unreachable within 0..%d", b, CounterMax)
		}
	}
	// The exact Table 5 boundaries, including saturation and beyond (a
	// corrupt count above CounterMax must still quantize, not wrap).
	boundaries := []struct {
		c    uint32
		want uint8
	}{
		{0, 0}, {1, 1}, {7, 1}, {8, 2}, {31, 2}, {32, 3},
		{CounterMax, 3}, {CounterMax + 1, 3}, {1 << 31, 3}, {^uint32(0), 3},
	}
	for _, b := range boundaries {
		if got := QuantizeCount(b.c); got != b.want {
			t.Errorf("QuantizeCount(%d) = %d, want %d", b.c, got, b.want)
		}
	}
}

func newTestSTC(t *testing.T) *STC {
	t.Helper()
	s, err := NewSTC(16, 4, 1) // 4 sets x 4 ways
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSTCValidation(t *testing.T) {
	if _, err := NewSTC(0, 4, 1); err == nil {
		t.Error("zero entries should fail")
	}
	if _, err := NewSTC(10, 4, 1); err == nil {
		t.Error("non-divisible entries should fail")
	}
}

func TestSTCHitMiss(t *testing.T) {
	s := newTestSTC(t)
	if s.Lookup(5) != nil {
		t.Error("empty STC should miss")
	}
	s.Insert(5, [MaxSlots]uint8{})
	e := s.Lookup(5)
	if e == nil || e.Group != 5 {
		t.Fatal("should hit after insert")
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("hits=%d misses=%d", s.Hits, s.Misses)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate %v", s.HitRate())
	}
}

func TestSTCCountersResetAtInsert(t *testing.T) {
	s := newTestSTC(t)
	s.Insert(1, [MaxSlots]uint8{})
	e := s.Lookup(1)
	e.Bump(3, 5)
	if e.Count(3) != 5 {
		t.Errorf("count = %d", e.Count(3))
	}
	// Evict (fill the set with conflicting groups) and re-insert: counter
	// must restart at zero.
	for g := int64(1 + 4); g <= 1+4*4; g += 4 {
		s.Insert(g, [MaxSlots]uint8{})
	}
	if s.Peek(1) != nil {
		t.Fatal("group 1 should have been evicted")
	}
	s.Insert(1, [MaxSlots]uint8{})
	if got := s.Lookup(1).Count(3); got != 0 {
		t.Errorf("counter after re-insert = %d, want 0", got)
	}
}

func TestSTCBumpSaturates(t *testing.T) {
	var e STCEntry
	for i := 0; i < 100; i++ {
		e.Bump(0, 8)
	}
	if e.Count(0) != CounterMax {
		t.Errorf("counter = %d, want saturation at %d", e.Count(0), CounterMax)
	}
}

func TestOtherAccessed(t *testing.T) {
	var e STCEntry
	if e.OtherAccessed(0) {
		t.Error("no counters set")
	}
	e.Bump(0, 1)
	if e.OtherAccessed(0) {
		t.Error("only slot 0 accessed; OtherAccessed(0) must be false")
	}
	if !e.OtherAccessed(1) {
		t.Error("slot 0 accessed; OtherAccessed(1) must be true")
	}
}

func TestSTCEvictionRecord(t *testing.T) {
	s := newTestSTC(t)
	qac := [MaxSlots]uint8{0, 1, 2, 0, 0, 0, 0, 0, 3}
	s.Insert(0, qac)
	e := s.Lookup(0)
	e.Bump(1, 10) // slot 1: qInsert 1, count 10
	e.Bump(8, 2)  // slot 8: qInsert 3, count 2
	// Force eviction of group 0 by filling set 0 (groups ≡ 0 mod 4).
	var ev *STCEviction
	for g := int64(4); ; g += 4 {
		if ev = s.Insert(g, [MaxSlots]uint8{}); ev != nil && ev.Group == 0 {
			break
		}
		if g > 64 {
			t.Fatal("group 0 never evicted")
		}
	}
	if !ev.Dirty {
		t.Error("entry with non-zero counters must evict dirty")
	}
	if len(ev.Blocks) != 2 {
		t.Fatalf("eviction blocks = %+v", ev.Blocks)
	}
	check := map[int]EvictedBlock{}
	for _, b := range ev.Blocks {
		check[b.Slot] = b
	}
	if b := check[1]; b.QInsert != 1 || b.Count != 10 {
		t.Errorf("slot 1 record = %+v", b)
	}
	if b := check[8]; b.QInsert != 3 || b.Count != 2 {
		t.Errorf("slot 8 record = %+v", b)
	}
}

func TestSTCCleanEviction(t *testing.T) {
	s := newTestSTC(t)
	s.Insert(0, [MaxSlots]uint8{})
	var ev *STCEviction
	for g := int64(4); ev == nil || ev.Group != 0; g += 4 {
		ev = s.Insert(g, [MaxSlots]uint8{})
		if g > 64 {
			t.Fatal("never evicted")
		}
	}
	if ev.Dirty || len(ev.Blocks) != 0 {
		t.Errorf("untouched entry should evict clean: %+v", ev)
	}
}

func TestSTCMarkDirty(t *testing.T) {
	s := newTestSTC(t)
	s.Insert(0, [MaxSlots]uint8{})
	s.MarkDirty(0)
	evs := s.FlushAll()
	if len(evs) != 1 || !evs[0].Dirty {
		t.Errorf("flush = %+v", evs)
	}
	s.MarkDirty(12345) // absent group: no-op
}

func TestSTCLRUWithinSet(t *testing.T) {
	s := newTestSTC(t)
	// Fill set 0 with groups 0,4,8,12, touch 0, then insert 16: LRU is 4.
	for _, g := range []int64{0, 4, 8, 12} {
		s.Insert(g, [MaxSlots]uint8{})
	}
	s.Lookup(0)
	ev := s.Insert(16, [MaxSlots]uint8{})
	if ev == nil || ev.Group != 4 {
		t.Errorf("evicted %+v, want group 4", ev)
	}
}

func TestSTCIndexDiv(t *testing.T) {
	// With indexDiv 2 (two channels), groups 0 and 2 share a set on the
	// same channel-local index progression.
	s, err := NewSTC(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(0, [MaxSlots]uint8{})
	s.Insert(2, [MaxSlots]uint8{}) // local index 1 -> different set
	if s.Peek(0) == nil || s.Peek(2) == nil {
		t.Error("both groups should be resident in different sets")
	}
}

func TestSTCFlushAllClears(t *testing.T) {
	s := newTestSTC(t)
	for g := int64(0); g < 8; g++ {
		s.Insert(g, [MaxSlots]uint8{})
	}
	evs := s.FlushAll()
	if len(evs) != 8 {
		t.Errorf("flushed %d entries, want 8", len(evs))
	}
	if s.Peek(0) != nil {
		t.Error("flush should clear entries")
	}
	if len(s.FlushAll()) != 0 {
		t.Error("second flush should be empty")
	}
}

func TestSTCEntriesAccessor(t *testing.T) {
	s := newTestSTC(t)
	if s.Entries() != 16 {
		t.Errorf("entries = %d", s.Entries())
	}
}
