package hybrid

import (
	"fmt"

	"profess/internal/event"
	"profess/internal/fault"
	"profess/internal/mem"
	"profess/internal/stats"
	"profess/internal/telemetry"
)

// CoreStats aggregates per-program controller-level statistics.
type CoreStats struct {
	Served    int64 // demand accesses served
	ServedM1  int64 // demand accesses served from M1
	Reads     int64
	Writes    int64
	ReadLat   int64 // sum of read latencies (submit -> data)
	ReadCount int64
	STCHits   int64
	STCMisses int64
	Swaps     int64 // swaps triggered by this program's accesses
}

// AvgReadLatency returns the mean read latency in cycles.
func (s CoreStats) AvgReadLatency() float64 {
	if s.ReadCount == 0 {
		return 0
	}
	return float64(s.ReadLat) / float64(s.ReadCount)
}

// M1Fraction returns the fraction of demand accesses served from M1.
func (s CoreStats) M1Fraction() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.ServedM1) / float64(s.Served)
}

// STCHitRate returns the program's STC hit rate.
func (s CoreStats) STCHitRate() float64 {
	t := s.STCHits + s.STCMisses
	if t == 0 {
		return 0
	}
	return float64(s.STCHits) / float64(t)
}

// ControllerConfig sizes the hybrid memory controller.
type ControllerConfig struct {
	Layout Layout
	// STCEntries is the total STC capacity in entries across all channels
	// (Table 8: 64 KB / 8 B = 8K entries at full scale).
	STCEntries int
	STCWays    int
	NumCores   int
	// ModelSTTraffic, when true, issues the M1 reads/writebacks for
	// Swap-group Table misses and dirty evictions (§2.2/§3.2.1). Disabled
	// only by ablation studies.
	ModelSTTraffic bool

	// RetryMax bounds how many times a transiently-failed NVM burst is
	// re-issued before the controller gives up (0 = DefaultRetryMax).
	RetryMax int
	// RetryBackoff is the delay before the first re-issue, in cycles;
	// each further retry doubles it (0 = DefaultRetryBackoff).
	RetryBackoff int64
}

// DefaultRetryMax and DefaultRetryBackoff are the §-free engineering
// defaults of the transient-fault tolerance: up to 3 re-issues, starting
// 64 cycles after the failed burst and doubling (64, 128, 256).
const (
	DefaultRetryMax     = 3
	DefaultRetryBackoff = 64
)

// Controller is the hardware memory-side of the simulated system: it owns
// the channels, the authoritative Swap-group Table, the STCs, and runs the
// plugged migration policy. All methods must be called from the
// discrete-event loop (single goroutine).
type Controller struct {
	cfg    ControllerConfig
	layout Layout
	sched  event.Scheduler
	chans  []*mem.Channel
	stcs   []*STC
	alloc  *Allocator
	policy Policy

	// Authoritative ST state, indexed [group*slots+slot].
	slots int64   // locations per group (layout.Slots())
	perm  []uint8 // slot -> location
	qac   []uint8 // persisted QAC per slot
	m1    []uint8 // per group: slot currently resident in M1

	swapping  []bool // per group: a swap is in flight
	pendingST map[int64][]func(now int64)

	Cores     []CoreStats
	STReads   int64
	STWrites  int64
	SwapsDone int64

	// inj, when armed, corrupts QAC values moving through the ST.
	inj *fault.Injector
	// Resilience tallies the controller's fault tolerance (retries of
	// transiently-failed NVM bursts, drops past the retry budget).
	Resilience stats.Resilience

	// readHist tracks per-core read-latency distributions (64-cycle
	// buckets up to 16K cycles), for tail-latency reporting.
	readHist []*stats.Histogram
}

// NewController wires the controller to its channels and event scheduler.
func NewController(cfg ControllerConfig, chans []*mem.Channel, alloc *Allocator, policy Policy, sched event.Scheduler) (*Controller, error) {
	l := cfg.Layout
	if len(chans) != l.Channels {
		return nil, fmt.Errorf("hybrid: %d channels configured, %d provided", l.Channels, len(chans))
	}
	if cfg.STCEntries <= 0 || cfg.STCEntries%l.Channels != 0 {
		return nil, fmt.Errorf("hybrid: STC entries %d not divisible across %d channels", cfg.STCEntries, l.Channels)
	}
	if l.Slots() > MaxSlots {
		return nil, fmt.Errorf("hybrid: %d locations per group exceed the hardware bound %d", l.Slots(), MaxSlots)
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	c := &Controller{
		cfg:       cfg,
		layout:    l,
		sched:     sched,
		chans:     chans,
		alloc:     alloc,
		policy:    policy,
		slots:     int64(l.Slots()),
		perm:      make([]uint8, l.Groups*int64(l.Slots())),
		qac:       make([]uint8, l.Groups*int64(l.Slots())),
		m1:        make([]uint8, l.Groups),
		swapping:  make([]bool, l.Groups),
		pendingST: make(map[int64][]func(now int64)),
		Cores:     make([]CoreStats, cfg.NumCores),
	}
	for i := 0; i < cfg.NumCores; i++ {
		c.readHist = append(c.readHist, stats.NewHistogram(256, 0, 64))
	}
	// Identity initial mapping: slot s sits at location s, so slot 0 (the
	// first ninth of the OS address space per group) starts in M1.
	for g := int64(0); g < l.Groups; g++ {
		for s := int64(0); s < c.slots; s++ {
			c.perm[g*c.slots+s] = uint8(s)
		}
	}
	for ch := 0; ch < l.Channels; ch++ {
		stc, err := NewSTC(cfg.STCEntries/l.Channels, cfg.STCWays, int64(l.Channels))
		if err != nil {
			return nil, err
		}
		c.stcs = append(c.stcs, stc)
	}
	return c, nil
}

// Layout returns the controller's layout.
func (c *Controller) Layout() Layout { return c.layout }

// SetFaultInjector arms the controller with a fault injector (nil
// disarms): QAC values moving through the Swap-group Table may corrupt.
func (c *Controller) SetFaultInjector(inj *fault.Injector) { c.inj = inj }

// Policy returns the plugged migration policy.
func (c *Controller) Policy() Policy { return c.policy }

// Channels returns the controller's channels.
func (c *Controller) Channels() []*mem.Channel { return c.chans }

// STCs returns the per-channel Swap-group Table Caches.
func (c *Controller) STCs() []*STC { return c.stcs }

// STCHitRate returns the aggregate STC hit rate.
func (c *Controller) STCHitRate() float64 {
	var h, m int64
	for _, s := range c.stcs {
		h += s.Hits
		m += s.Misses
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// permAt returns the location of (group, slot).
func (c *Controller) permAt(group int64, slot int) int {
	return int(c.perm[group*c.slots+int64(slot)])
}

// qacAt returns the persisted QAC array of a group.
func (c *Controller) qacAt(group int64) [MaxSlots]uint8 {
	var out [MaxSlots]uint8
	copy(out[:], c.qac[group*c.slots:group*c.slots+c.slots])
	return out
}

// M1Slot implements PolicyContext.
func (c *Controller) M1Slot(group int64) int { return int(c.m1[group]) }

// LocationIndex returns the current location index of block (group, slot):
// 0 means the block resides in M1. Exposed for tests and instrumentation.
func (c *Controller) LocationIndex(group int64, slot int) int { return c.permAt(group, slot) }

// ReadLatencyQuantile returns the approximate q-quantile of a core's read
// latency distribution, in cycles.
func (c *Controller) ReadLatencyQuantile(core int, q float64) float64 {
	return c.readHist[core].Quantile(q)
}

// Owner implements PolicyContext.
func (c *Controller) Owner(group int64, slot int) int { return c.alloc.Owner(group, slot) }

// SwapLatency implements PolicyContext.
func (c *Controller) SwapLatency() int64 { return c.chans[0].Config().SwapLatency() }

// ReadLatencyGap implements PolicyContext: the M2-M1 unloaded 64-B read
// latency difference (123.75 ns with Table 8 timings).
func (c *Controller) ReadLatencyGap() int64 {
	cfg := c.chans[0].Config()
	return cfg.M2Timing.ReadMissLatency() - cfg.M1Timing.ReadMissLatency()
}

// Submit admits one 64-B demand access at the original physical address.
// onDone (optional) fires when the data burst completes, with the total
// latency from submission.
func (c *Controller) Submit(core int, origAddr int64, write bool, onDone func(now, latency int64)) {
	submitAt := c.sched.Now()
	block := origAddr / c.layout.BlockBytes
	group := c.layout.Group(block)
	slot := c.layout.Slot(block)
	chIdx := c.layout.Channel(group)
	stc := c.stcs[chIdx]

	if e := stc.Lookup(group); e != nil {
		c.Cores[core].STCHits++
		c.serve(core, group, slot, origAddr, write, e, submitAt, onDone)
		return
	}
	c.Cores[core].STCMisses++
	// Coalesce concurrent misses to the same group (MSHR-style).
	if cbs, busy := c.pendingST[group]; busy {
		c.pendingST[group] = append(cbs, func(now int64) {
			e := stc.Peek(group)
			c.serve(core, group, slot, origAddr, write, e, submitAt, onDone)
		})
		return
	}
	c.pendingST[group] = nil
	fill := func(now int64) {
		qac := c.qacAt(group)
		if c.inj.Fire(fault.QACCorruption) {
			// ST metadata corrupted on the fill path: one QAC value of
			// this entry arrives scrambled (possibly out of range — the
			// monitoring layer's sanity checks are the defense).
			s := c.inj.Intn(int(c.slots))
			qac[s] = c.inj.CorruptByte(qac[s])
		}
		if ev := stc.Insert(group, qac); ev != nil {
			c.handleEviction(chIdx, ev)
		}
		e := stc.Peek(group)
		c.serve(core, group, slot, origAddr, write, e, submitAt, onDone)
		cbs := c.pendingST[group]
		delete(c.pendingST, group)
		for _, cb := range cbs {
			cb(now)
		}
	}
	if !c.cfg.ModelSTTraffic {
		fill(c.sched.Now())
		return
	}
	c.STReads++
	bank, row := c.chans[chIdx].Config().M1Geom.Decompose(c.layout.STLineAddr(group))
	c.chans[chIdx].Enqueue(&mem.Request{
		Module: mem.M1, Bank: bank, Row: row, Core: -1,
		OnDone: fill,
	})
}

// serve translates and issues the demand access, updates counters, and
// consults the migration policy.
func (c *Controller) serve(core int, group int64, slot int, origAddr int64, write bool, e *STCEntry, submitAt int64, onDone func(now, latency int64)) {
	loc := c.permAt(group, slot)
	weight := 1
	if write {
		weight = c.policy.WriteWeight()
	}
	e.Bump(slot, weight)

	region := c.layout.Region(group)
	private := c.alloc.IsPrivate(core, region)
	fromM1 := loc == 0
	cs := &c.Cores[core]
	cs.Served++
	if fromM1 {
		cs.ServedM1++
	}
	if write {
		cs.Writes++
	} else {
		cs.Reads++
	}
	c.policy.OnServed(core, region, private, fromM1)
	c.policy.OnAccess(AccessInfo{
		Now:   c.sched.Now(),
		Core:  core,
		Group: group,
		Slot:  slot,
		Loc:   loc,
		Write: write,
		Entry: e,
	}, c)

	chIdx := c.layout.Channel(group)
	location := c.layout.LocationOf(group, loc)
	offset := origAddr % c.layout.BlockBytes
	geom := c.chans[chIdx].Config().Geom(location.Module)
	bank, row := geom.Decompose(location.ByteAddr + offset)
	complete := func(now int64) {
		if !write {
			cs.ReadLat += now - submitAt
			cs.ReadCount++
			c.readHist[core].Add(float64(now - submitAt))
		}
		if onDone != nil {
			onDone(now, now-submitAt)
		}
	}
	// Transient NVM failures are retried with bounded exponential backoff;
	// the observed latency then includes every failed attempt. Past the
	// retry budget the burst is dropped — counted, and completed so the
	// pipeline does not wedge (the simulated data is synthetic anyway).
	attempt := 0
	var issue func()
	issue = func() {
		req := &mem.Request{Module: location.Module, Bank: bank, Row: row, IsWrite: write, Core: core}
		req.OnDone = func(now int64) {
			if req.Faulted && attempt < c.cfg.RetryMax {
				attempt++
				c.Resilience.Retries++
				c.sched.After(c.cfg.RetryBackoff<<(attempt-1), func(int64) { issue() })
				return
			}
			if req.Faulted {
				c.Resilience.Drops++
			}
			complete(now)
		}
		c.chans[chIdx].Enqueue(req)
	}
	issue()
}

// handleEviction persists QAC updates, feeds MDM statistics, and issues
// the dirty ST writeback.
func (c *Controller) handleEviction(chIdx int, ev *STCEviction) {
	for _, b := range ev.Blocks {
		qE := QuantizeCount(b.Count)
		if c.inj.Fire(fault.QACCorruption) {
			// ST metadata corrupted on the writeback path: the persisted
			// QAC and the statistics update both see the scrambled value.
			qE = c.inj.CorruptByte(qE)
		}
		c.qac[ev.Group*c.slots+int64(b.Slot)] = qE
		owner := c.alloc.Owner(ev.Group, b.Slot)
		if owner >= 0 {
			c.policy.OnSTCEvict(owner, b.QInsert, qE, b.Count)
		}
	}
	if ev.Dirty && c.cfg.ModelSTTraffic {
		c.STWrites++
		bank, row := c.chans[chIdx].Config().M1Geom.Decompose(c.layout.STLineAddr(ev.Group))
		c.chans[chIdx].Enqueue(&mem.Request{
			Module: mem.M1, Bank: bank, Row: row, IsWrite: true, Core: -1,
		})
	}
}

// ScheduleSwap implements PolicyContext: swap block (group, slot) with the
// group's M1 resident. The channel is blocked for the swap duration; the
// mapping is updated when the swap completes.
func (c *Controller) ScheduleSwap(group int64, slot int) bool {
	if c.swapping[group] {
		return false
	}
	loc := c.permAt(group, slot)
	if loc == 0 {
		return false
	}
	c.swapping[group] = true
	chIdx := c.layout.Channel(group)
	m1Slot := int(c.m1[group])
	m1Location := c.layout.LocationOf(group, 0)
	m2Location := c.layout.LocationOf(group, loc)
	ch := c.chans[chIdx]

	toSwapLoc := func(l Location) mem.SwapLocation {
		geom := ch.Config().Geom(l.Module)
		bank, row := geom.Decompose(l.ByteAddr)
		return mem.SwapLocation{Module: l.Module, Bank: bank, Row: row}
	}
	ch.Swap(toSwapLoc(m1Location), toSwapLoc(m2Location), func(now int64) {
		// Commit the remap: promoted block to location 0, demoted block
		// to the promoted block's old location.
		c.perm[group*c.slots+int64(slot)] = 0
		c.perm[group*c.slots+int64(m1Slot)] = uint8(loc)
		c.m1[group] = uint8(slot)
		c.swapping[group] = false
		c.SwapsDone++
		c.stcs[chIdx].MarkDirty(group)

		region := c.layout.Region(group)
		private := c.alloc.IsAnyPrivate(region)
		ownerM1 := c.alloc.Owner(group, m1Slot)
		ownerM2 := c.alloc.Owner(group, slot)
		if ownerM2 >= 0 && ownerM2 < len(c.Cores) {
			c.Cores[ownerM2].Swaps++
		}
		c.policy.OnSwapDone(region, private, ownerM1, ownerM2)
	})
	return true
}

// RegisterTelemetry registers the controller's signals with a per-epoch
// sampler: per-program served/M1-served/swap counts, STC hit behaviour,
// Swap-group Table traffic, and the NVM retry/drop resilience state.
func (c *Controller) RegisterTelemetry(s *telemetry.Sampler) {
	for i := range c.Cores {
		i := i
		s.Counter(fmt.Sprintf("p%d.served", i), func() int64 { return c.Cores[i].Served })
		s.Counter(fmt.Sprintf("p%d.served_m1", i), func() int64 { return c.Cores[i].ServedM1 })
		s.Counter(fmt.Sprintf("p%d.swaps", i), func() int64 { return c.Cores[i].Swaps })
	}
	s.Counter("stc.hits", func() int64 {
		var h int64
		for _, stc := range c.stcs {
			h += stc.Hits
		}
		return h
	})
	s.Counter("stc.misses", func() int64 {
		var m int64
		for _, stc := range c.stcs {
			m += stc.Misses
		}
		return m
	})
	s.Gauge("stc.hit_rate", func(int64) float64 { return c.STCHitRate() })
	s.Counter("st.reads", func() int64 { return c.STReads })
	s.Counter("st.writes", func() int64 { return c.STWrites })
	s.Counter("swaps.done", func() int64 { return c.SwapsDone })
	s.Counter("resil.retries", func() int64 { return c.Resilience.Retries })
	s.Counter("resil.drops", func() int64 { return c.Resilience.Drops })
}

// FlushSTCs drains all STC entries (end of simulation) so the final QAC
// updates and MDM statistics are accounted for.
func (c *Controller) FlushSTCs() {
	for chIdx, stc := range c.stcs {
		for _, ev := range stc.FlushAll() {
			c.handleEviction(chIdx, ev)
		}
	}
}

// Counts sums the channel event counters.
func (c *Controller) Counts() mem.EventCounts {
	var total mem.EventCounts
	for _, ch := range c.chans {
		total.Add(ch.Counts)
	}
	return total
}

var _ PolicyContext = (*Controller)(nil)
