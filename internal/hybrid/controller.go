package hybrid

import (
	"fmt"
	"math/bits"

	"profess/internal/event"
	"profess/internal/fault"
	"profess/internal/mem"
	"profess/internal/stats"
	"profess/internal/telemetry"
)

// CoreStats aggregates per-program controller-level statistics.
type CoreStats struct {
	Served    int64 // demand accesses served
	ServedM1  int64 // demand accesses served from M1
	Reads     int64
	Writes    int64
	ReadLat   int64 // sum of read latencies (submit -> data)
	ReadCount int64
	STCHits   int64
	STCMisses int64
	Swaps     int64 // swaps triggered by this program's accesses
}

// AvgReadLatency returns the mean read latency in cycles.
func (s CoreStats) AvgReadLatency() float64 {
	if s.ReadCount == 0 {
		return 0
	}
	return float64(s.ReadLat) / float64(s.ReadCount)
}

// M1Fraction returns the fraction of demand accesses served from M1.
func (s CoreStats) M1Fraction() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.ServedM1) / float64(s.Served)
}

// STCHitRate returns the program's STC hit rate.
func (s CoreStats) STCHitRate() float64 {
	t := s.STCHits + s.STCMisses
	if t == 0 {
		return 0
	}
	return float64(s.STCHits) / float64(t)
}

// ControllerConfig sizes the hybrid memory controller.
type ControllerConfig struct {
	Layout Layout
	// STCEntries is the total STC capacity in entries across all channels
	// (Table 8: 64 KB / 8 B = 8K entries at full scale).
	STCEntries int
	STCWays    int
	NumCores   int
	// ModelSTTraffic, when true, issues the M1 reads/writebacks for
	// Swap-group Table misses and dirty evictions (§2.2/§3.2.1). Disabled
	// only by ablation studies.
	ModelSTTraffic bool

	// RetryMax bounds how many times a transiently-failed NVM burst is
	// re-issued before the controller gives up (0 = DefaultRetryMax).
	RetryMax int
	// RetryBackoff is the delay before the first re-issue, in cycles;
	// each further retry doubles it (0 = DefaultRetryBackoff).
	RetryBackoff int64
}

// DefaultRetryMax and DefaultRetryBackoff are the §-free engineering
// defaults of the transient-fault tolerance: up to 3 re-issues, starting
// 64 cycles after the failed burst and doubling (64, 128, 256).
const (
	DefaultRetryMax     = 3
	DefaultRetryBackoff = 64
)

// Controller is the hardware memory-side of the simulated system: it owns
// the channels, the authoritative Swap-group Table, the STCs, and runs the
// plugged migration policy. All methods must be called from the
// discrete-event loop (single goroutine).
type Controller struct {
	cfg    ControllerConfig
	layout Layout
	sched  event.Scheduler
	chans  []*mem.Channel
	stcs   []*STC
	alloc  *Allocator
	policy Policy

	// Authoritative ST state, indexed [group*slots+slot].
	slots int64   // locations per group (layout.Slots())
	perm  []uint8 // slot -> location
	qac   []uint8 // persisted QAC per slot
	m1    []uint8 // per group: slot currently resident in M1

	swapping  []bool                // per group: a swap is in flight
	pendingST map[int64][]*accessOp // STC-miss coalescing (MSHR-style)

	// Freelists keep the steady-state hot path allocation-free: access
	// records, ST fill/writeback records and pendingST waiter slices are
	// recycled instead of garbage-collected. Single-threaded by the same
	// rule as the rest of the controller.
	opFree  []*accessOp
	stFree  []*stFillOp
	stwFree []*stWriteOp
	cbFree  [][]*accessOp

	Cores     []CoreStats
	STReads   int64
	STWrites  int64
	SwapsDone int64

	// inj, when armed, corrupts QAC values moving through the ST.
	inj *fault.Injector
	// Resilience tallies the controller's fault tolerance (retries of
	// transiently-failed NVM bursts, drops past the retry budget).
	Resilience stats.Resilience

	// readHist tracks per-core read-latency distributions (64-cycle
	// buckets up to 16K cycles), for tail-latency reporting.
	readHist []*stats.Histogram

	// xl holds the precomputed shift/mask forms of the layout's divisors
	// and geo the per-channel bank/row decompositions: address translation
	// runs on every demand access, and int64 divides dominate it otherwise.
	xl  xlat
	geo [][2]geoX

	// ffNow is the functional clock while a FunctionalAccess is in
	// progress (-1 otherwise). It routes the shared eviction and swap
	// paths onto their event-free variants during fast-forward spans of
	// the sampled execution mode.
	ffNow int64
	// ffSwaps queues swaps the policy requested during a FunctionalAccess;
	// they commit after the access, mirroring the event path where the
	// swap trails the access that triggered it.
	ffSwaps []ffSwap
}

// ffSwap is one deferred functional swap request.
type ffSwap struct {
	group int64
	slot  int
}

// shiftOf returns log2(v) when v is a positive power of two, else -1
// (selecting the divide fallback in the translation fast path).
func shiftOf(v int64) int {
	if v <= 0 || v&(v-1) != 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(v))
}

// xlat is the precomputed translation arithmetic of a Layout. Every
// divisor the per-access path needs is expressed as a shift/mask when it
// is a power of two (the configurations in use all are); the -1 sentinel
// falls back to the general divide so exotic layouts stay correct.
type xlat struct {
	blockShift int
	blockMask  int64
	blockBytes int64
	groupShift int
	groupMask  int64
	groups     int64
	chanShift  int
	chanMask   int64
	channels   int64
	regShift   int // blocksPerPage shift (group -> page index)
	regPow2    bool
	regMask    int64
	regions    int64
	bpp        int64
	gpc        int64 // groups per channel
}

func newXlat(l Layout) xlat {
	bpp := int64(l.BlocksPerPage())
	return xlat{
		blockShift: shiftOf(l.BlockBytes),
		blockMask:  l.BlockBytes - 1,
		blockBytes: l.BlockBytes,
		groupShift: shiftOf(l.Groups),
		groupMask:  l.Groups - 1,
		groups:     l.Groups,
		chanShift:  shiftOf(int64(l.Channels)),
		chanMask:   int64(l.Channels) - 1,
		channels:   int64(l.Channels),
		regShift:   shiftOf(bpp),
		regPow2:    shiftOf(int64(l.Regions)) >= 0,
		regMask:    int64(l.Regions) - 1,
		regions:    int64(l.Regions),
		bpp:        bpp,
		gpc:        l.GroupsPerChannel(),
	}
}

func (x *xlat) block(addr int64) int64 {
	if x.blockShift >= 0 {
		return addr >> uint(x.blockShift)
	}
	return addr / x.blockBytes
}

func (x *xlat) blockOffset(addr int64) int64 {
	if x.blockShift >= 0 {
		return addr & x.blockMask
	}
	return addr % x.blockBytes
}

func (x *xlat) group(block int64) int64 {
	if x.groupShift >= 0 {
		return block & x.groupMask
	}
	return block % x.groups
}

func (x *xlat) slot(block int64) int {
	if x.groupShift >= 0 {
		return int(block >> uint(x.groupShift))
	}
	return int(block / x.groups)
}

func (x *xlat) channel(group int64) int {
	if x.chanShift >= 0 {
		return int(group & x.chanMask)
	}
	return int(group % x.channels)
}

func (x *xlat) localGroup(group int64) int64 {
	if x.chanShift >= 0 {
		return group >> uint(x.chanShift)
	}
	return group / x.channels
}

func (x *xlat) region(group int64) int {
	page := group
	if x.regShift >= 0 {
		page >>= uint(x.regShift)
	} else {
		page /= x.bpp
	}
	if x.regPow2 {
		return int(page & x.regMask)
	}
	return int(page % x.regions)
}

// locationOf mirrors Layout.LocationOf on the precomputed constants.
func (x *xlat) locationOf(group int64, loc int) Location {
	lg := x.localGroup(group)
	if loc == 0 {
		return Location{Module: mem.M1, ByteAddr: lg * x.blockBytes}
	}
	idx := int64(loc-1)*x.gpc + lg
	return Location{Module: mem.M2, ByteAddr: idx * x.blockBytes}
}

// geoX is a Geometry with its decomposition divisors pre-resolved.
type geoX struct {
	rowShift  int
	rowBytes  int64
	bankShift int
	bankMask  int64
	banks     int64
}

func newGeoX(g mem.Geometry) geoX {
	return geoX{
		rowShift:  shiftOf(g.RowBytes),
		rowBytes:  g.RowBytes,
		bankShift: shiftOf(int64(g.Banks)),
		bankMask:  int64(g.Banks) - 1,
		banks:     int64(g.Banks),
	}
}

func (x *geoX) decompose(addr int64) (bank int, row int64) {
	var rowIdx int64
	if x.rowShift >= 0 {
		rowIdx = addr >> uint(x.rowShift)
	} else {
		rowIdx = addr / x.rowBytes
	}
	if x.bankShift >= 0 {
		return int(rowIdx & x.bankMask), rowIdx >> uint(x.bankShift)
	}
	return int(rowIdx % x.banks), rowIdx / x.banks
}

// NewController wires the controller to its channels and event scheduler.
func NewController(cfg ControllerConfig, chans []*mem.Channel, alloc *Allocator, policy Policy, sched event.Scheduler) (*Controller, error) {
	l := cfg.Layout
	if len(chans) != l.Channels {
		return nil, fmt.Errorf("hybrid: %d channels configured, %d provided", l.Channels, len(chans))
	}
	if cfg.STCEntries <= 0 || cfg.STCEntries%l.Channels != 0 {
		return nil, fmt.Errorf("hybrid: STC entries %d not divisible across %d channels", cfg.STCEntries, l.Channels)
	}
	if l.Slots() > MaxSlots {
		return nil, fmt.Errorf("hybrid: %d locations per group exceed the hardware bound %d", l.Slots(), MaxSlots)
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	c := &Controller{
		cfg:       cfg,
		layout:    l,
		sched:     sched,
		chans:     chans,
		alloc:     alloc,
		policy:    policy,
		slots:     int64(l.Slots()),
		perm:      make([]uint8, l.Groups*int64(l.Slots())),
		qac:       make([]uint8, l.Groups*int64(l.Slots())),
		m1:        make([]uint8, l.Groups),
		swapping:  make([]bool, l.Groups),
		pendingST: make(map[int64][]*accessOp),
		Cores:     make([]CoreStats, cfg.NumCores),
		ffNow:     -1,
	}
	for i := 0; i < cfg.NumCores; i++ {
		c.readHist = append(c.readHist, stats.NewHistogram(256, 0, 64))
	}
	// Identity initial mapping: slot s sits at location s, so slot 0 (the
	// first ninth of the OS address space per group) starts in M1.
	for g := int64(0); g < l.Groups; g++ {
		for s := int64(0); s < c.slots; s++ {
			c.perm[g*c.slots+s] = uint8(s)
		}
	}
	for ch := 0; ch < l.Channels; ch++ {
		stc, err := NewSTC(cfg.STCEntries/l.Channels, cfg.STCWays, int64(l.Channels))
		if err != nil {
			return nil, err
		}
		c.stcs = append(c.stcs, stc)
	}
	c.xl = newXlat(l)
	for _, ch := range chans {
		chCfg := ch.Config()
		c.geo = append(c.geo, [2]geoX{
			mem.M1: newGeoX(chCfg.M1Geom),
			mem.M2: newGeoX(chCfg.M2Geom),
		})
	}
	return c, nil
}

// Layout returns the controller's layout.
func (c *Controller) Layout() Layout { return c.layout }

// SetFaultInjector arms the controller with a fault injector (nil
// disarms): QAC values moving through the Swap-group Table may corrupt.
func (c *Controller) SetFaultInjector(inj *fault.Injector) { c.inj = inj }

// Policy returns the plugged migration policy.
func (c *Controller) Policy() Policy { return c.policy }

// Reset returns the controller to its just-built state for a new run of
// the same shape under a fresh policy: identity block mapping, cleared
// QACs and M1 residency, empty STCs, zeroed per-core statistics and
// latency histograms, fault injector disarmed. The freelists and the
// precomputed translation tables are kept — that reuse is the point.
// Waiter slices still parked in pendingST (possible after an aborted run)
// are banked back into the recycling pool; the access records they held
// are dropped along with the event calendar that owned them.
func (c *Controller) Reset(policy Policy) {
	for g := int64(0); g < c.layout.Groups; g++ {
		for s := int64(0); s < c.slots; s++ {
			c.perm[g*c.slots+s] = uint8(s)
		}
	}
	clear(c.qac)
	clear(c.m1)
	clear(c.swapping)
	for g, waiters := range c.pendingST {
		c.putWaiters(waiters)
		delete(c.pendingST, g)
	}
	clear(c.Cores)
	c.STReads, c.STWrites, c.SwapsDone = 0, 0, 0
	c.Resilience = stats.Resilience{}
	for _, h := range c.readHist {
		h.Reset()
	}
	for _, s := range c.stcs {
		s.Reset()
	}
	c.policy = policy
	c.inj = nil
	c.ffNow = -1
	c.ffSwaps = c.ffSwaps[:0]
}

// Channels returns the controller's channels.
func (c *Controller) Channels() []*mem.Channel { return c.chans }

// STCs returns the per-channel Swap-group Table Caches.
func (c *Controller) STCs() []*STC { return c.stcs }

// STCHitRate returns the aggregate STC hit rate.
func (c *Controller) STCHitRate() float64 {
	var h, m int64
	for _, s := range c.stcs {
		h += s.Hits
		m += s.Misses
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// permAt returns the location of (group, slot).
func (c *Controller) permAt(group int64, slot int) int {
	return int(c.perm[group*c.slots+int64(slot)])
}

// qacAt returns the persisted QAC array of a group.
func (c *Controller) qacAt(group int64) [MaxSlots]uint8 {
	var out [MaxSlots]uint8
	copy(out[:], c.qac[group*c.slots:group*c.slots+c.slots])
	return out
}

// M1Slot implements PolicyContext.
func (c *Controller) M1Slot(group int64) int { return int(c.m1[group]) }

// LocationIndex returns the current location index of block (group, slot):
// 0 means the block resides in M1. Exposed for tests and instrumentation.
func (c *Controller) LocationIndex(group int64, slot int) int { return c.permAt(group, slot) }

// ReadLatencyQuantile returns the approximate q-quantile of a core's read
// latency distribution, in cycles.
func (c *Controller) ReadLatencyQuantile(core int, q float64) float64 {
	return c.readHist[core].Quantile(q)
}

// Owner implements PolicyContext.
func (c *Controller) Owner(group int64, slot int) int { return c.alloc.Owner(group, slot) }

// SwapLatency implements PolicyContext.
func (c *Controller) SwapLatency() int64 { return c.chans[0].Config().SwapLatency() }

// ReadLatencyGap implements PolicyContext: the M2-M1 unloaded 64-B read
// latency difference (123.75 ns with Table 8 timings).
func (c *Controller) ReadLatencyGap() int64 {
	cfg := c.chans[0].Config()
	return cfg.M2Timing.ReadMissLatency() - cfg.M1Timing.ReadMissLatency()
}

// accessOp is the pooled per-access record of one demand access moving
// through the controller. It replaces the chain of closures the previous
// Submit/serve allocated per access: the embedded Request is what the
// channel queues, the record is the request's completion sink (mem.Doner)
// and its own retry timer (event.Handler), so a steady-state access
// allocates nothing.
type accessOp struct {
	c        *Controller
	core     int
	group    int64
	slot     int
	chIdx    int
	origAddr int64
	write    bool
	submitAt int64
	attempt  int
	done     event.Handler // handler-based completion (zero-alloc path)
	token    int64
	onDone   func(now, latency int64) // closure-based completion (compat)
	req      mem.Request
}

// newOp checks an access record out of the freelist.
func (c *Controller) newOp(core int, origAddr int64, write bool) *accessOp {
	var op *accessOp
	if n := len(c.opFree); n > 0 {
		op = c.opFree[n-1]
		c.opFree = c.opFree[:n-1]
	} else {
		op = new(accessOp)
	}
	block := c.xl.block(origAddr)
	op.c = c
	op.core = core
	op.group = c.xl.group(block)
	op.slot = c.xl.slot(block)
	op.chIdx = c.xl.channel(op.group)
	op.origAddr = origAddr
	op.write = write
	op.submitAt = c.sched.Now()
	op.attempt = 0
	return op
}

// releaseOp returns a completed record to the freelist, dropping payload
// references so they do not outlive the access.
func (c *Controller) releaseOp(op *accessOp) {
	*op = accessOp{}
	c.opFree = append(c.opFree, op)
}

// RequestDone implements mem.Doner: the access's data burst completed.
// Transient NVM failures are retried with bounded exponential backoff; the
// observed latency then includes every failed attempt. Past the retry
// budget the burst is dropped — counted, and completed so the pipeline
// does not wedge (the simulated data is synthetic anyway).
func (op *accessOp) RequestDone(now int64, r *mem.Request) {
	c := op.c
	if r.Faulted && op.attempt < c.cfg.RetryMax {
		op.attempt++
		c.Resilience.Retries++
		c.sched.Schedule(now+c.cfg.RetryBackoff<<(op.attempt-1), op, 0, nil)
		return
	}
	if r.Faulted {
		c.Resilience.Drops++
	}
	if !op.write {
		cs := &c.Cores[op.core]
		cs.ReadLat += now - op.submitAt
		cs.ReadCount++
		c.readHist[op.core].Add(float64(now - op.submitAt))
	}
	latency := now - op.submitAt
	done, token, onDone := op.done, op.token, op.onDone
	c.releaseOp(op)
	if done != nil {
		done.HandleEvent(now, token, nil)
	} else if onDone != nil {
		onDone(now, latency)
	}
}

// HandleEvent implements event.Handler for the retry backoff timer: the
// transiently-failed burst is re-issued to the channel.
func (op *accessOp) HandleEvent(int64, int64, any) {
	op.req.Faulted = false
	op.c.chans[op.chIdx].Enqueue(&op.req)
}

// stFillOp is the pooled record of one Swap-group Table line fill (the M1
// read an STC miss issues). first is the access that triggered the miss;
// coalesced followers wait in pendingST.
type stFillOp struct {
	c     *Controller
	first *accessOp
	req   mem.Request
}

// RequestDone implements mem.Doner: the ST line arrived, fill the STC and
// drain the waiters.
func (f *stFillOp) RequestDone(int64, *mem.Request) {
	c, first := f.c, f.first
	*f = stFillOp{}
	c.stFree = append(c.stFree, f)
	c.fillGroup(first)
}

// stWriteOp is the pooled record of one dirty Swap-group Table writeback;
// its only completion duty is returning itself to the freelist.
type stWriteOp struct {
	c   *Controller
	req mem.Request
}

// RequestDone implements mem.Doner.
func (w *stWriteOp) RequestDone(int64, *mem.Request) {
	*w = stWriteOp{c: w.c}
	w.c.stwFree = append(w.c.stwFree, w)
}

// takeWaiters checks a pendingST waiter slice out of the recycling pool
// (nil when none is banked — map presence is what marks the group busy).
func (c *Controller) takeWaiters() []*accessOp {
	if n := len(c.cbFree); n > 0 {
		s := c.cbFree[n-1]
		c.cbFree = c.cbFree[:n-1]
		return s
	}
	return nil
}

// putWaiters banks a drained waiter slice's capacity for reuse.
func (c *Controller) putWaiters(s []*accessOp) {
	if cap(s) == 0 {
		return
	}
	for i := range s {
		s[i] = nil
	}
	c.cbFree = append(c.cbFree, s[:0])
}

// Submit admits one 64-B demand access at the original physical address.
// onDone (optional) fires when the data burst completes, with the total
// latency from submission. This is the closure-based compatibility
// surface; hot paths use SubmitHandler.
func (c *Controller) Submit(core int, origAddr int64, write bool, onDone func(now, latency int64)) {
	op := c.newOp(core, origAddr, write)
	op.onDone = onDone
	c.submit(op)
}

// SubmitHandler is the zero-allocation variant of Submit: completion is
// delivered as done.HandleEvent(now, token, nil) on a pre-bound handler
// instead of a freshly-allocated closure.
func (c *Controller) SubmitHandler(core int, origAddr int64, write bool, done event.Handler, token int64) {
	op := c.newOp(core, origAddr, write)
	op.done = done
	op.token = token
	c.submit(op)
}

func (c *Controller) submit(op *accessOp) {
	stc := c.stcs[op.chIdx]
	if e := stc.Lookup(op.group); e != nil {
		c.Cores[op.core].STCHits++
		c.serve(op, e)
		return
	}
	c.Cores[op.core].STCMisses++
	// Coalesce concurrent misses to the same group (MSHR-style).
	if waiters, busy := c.pendingST[op.group]; busy {
		c.pendingST[op.group] = append(waiters, op)
		return
	}
	c.pendingST[op.group] = c.takeWaiters()
	if !c.cfg.ModelSTTraffic {
		c.fillGroup(op)
		return
	}
	c.STReads++
	var f *stFillOp
	if n := len(c.stFree); n > 0 {
		f = c.stFree[n-1]
		c.stFree = c.stFree[:n-1]
	} else {
		f = new(stFillOp)
	}
	f.c = c
	f.first = op
	bank, row := c.geo[op.chIdx][mem.M1].decompose(c.layout.STLineAddr(op.group))
	f.req = mem.Request{Module: mem.M1, Bank: bank, Row: row, Core: -1, Done: f}
	c.chans[op.chIdx].Enqueue(&f.req)
}

// fillGroup installs a group's ST line into the STC and serves the access
// that missed plus every coalesced waiter.
func (c *Controller) fillGroup(first *accessOp) {
	group, chIdx := first.group, first.chIdx
	stc := c.stcs[chIdx]
	qac := c.qacAt(group)
	if c.inj.Fire(fault.QACCorruption) {
		// ST metadata corrupted on the fill path: one QAC value of this
		// entry arrives scrambled (possibly out of range — the monitoring
		// layer's sanity checks are the defense).
		s := c.inj.Intn(int(c.slots))
		qac[s] = c.inj.CorruptByte(qac[s])
	}
	if ev := stc.Insert(group, qac); ev != nil {
		c.handleEviction(chIdx, ev)
	}
	c.serve(first, stc.Peek(group))
	waiters := c.pendingST[group]
	delete(c.pendingST, group)
	for _, w := range waiters {
		c.serve(w, stc.Peek(group))
	}
	c.putWaiters(waiters)
}

// serve translates and issues the demand access, updates counters, and
// consults the migration policy.
func (c *Controller) serve(op *accessOp, e *STCEntry) {
	loc := c.permAt(op.group, op.slot)
	weight := 1
	if op.write {
		weight = c.policy.WriteWeight()
	}
	e.Bump(op.slot, weight)

	region := c.xl.region(op.group)
	private := c.alloc.IsPrivate(op.core, region)
	fromM1 := loc == 0
	cs := &c.Cores[op.core]
	cs.Served++
	if fromM1 {
		cs.ServedM1++
	}
	if op.write {
		cs.Writes++
	} else {
		cs.Reads++
	}
	c.policy.OnServed(op.core, region, private, fromM1)
	c.policy.OnAccess(AccessInfo{
		Now:   c.sched.Now(),
		Core:  op.core,
		Group: op.group,
		Slot:  op.slot,
		Loc:   loc,
		Write: op.write,
		Entry: e,
	}, c)

	location := c.xl.locationOf(op.group, loc)
	offset := c.xl.blockOffset(op.origAddr)
	bank, row := c.geo[op.chIdx][location.Module].decompose(location.ByteAddr + offset)
	op.req = mem.Request{Module: location.Module, Bank: bank, Row: row, IsWrite: op.write, Core: op.core, Done: op}
	c.chans[op.chIdx].Enqueue(&op.req)
}

// handleEviction persists QAC updates, feeds MDM statistics, and issues
// the dirty ST writeback. During a fast-forward span (ffNow >= 0) the
// writeback is charged functionally instead of enqueued.
func (c *Controller) handleEviction(chIdx int, ev *STCEviction) {
	for _, b := range ev.Blocks {
		qE := QuantizeCount(b.Count)
		if c.inj.Fire(fault.QACCorruption) {
			// ST metadata corrupted on the writeback path: the persisted
			// QAC and the statistics update both see the scrambled value.
			qE = c.inj.CorruptByte(qE)
		}
		c.qac[ev.Group*c.slots+int64(b.Slot)] = qE
		owner := c.alloc.Owner(ev.Group, b.Slot)
		if owner >= 0 {
			c.policy.OnSTCEvict(owner, b.QInsert, qE, b.Count)
		}
	}
	if ev.Dirty && c.cfg.ModelSTTraffic {
		c.STWrites++
		bank, row := c.geo[chIdx][mem.M1].decompose(c.layout.STLineAddr(ev.Group))
		if c.ffNow >= 0 {
			c.chans[chIdx].FunctionalAccess(mem.M1, bank, row, true, c.ffNow)
			return
		}
		var w *stWriteOp
		if n := len(c.stwFree); n > 0 {
			w = c.stwFree[n-1]
			c.stwFree = c.stwFree[:n-1]
		} else {
			w = &stWriteOp{c: c}
		}
		w.req = mem.Request{Module: mem.M1, Bank: bank, Row: row, IsWrite: true, Core: -1, Done: w}
		c.chans[chIdx].Enqueue(&w.req)
	}
}

// FunctionalAccess serves one demand access entirely without events — the
// fast-forward path of the sampled execution mode. The access runs the
// same semantic pipeline as Submit: STC lookup (miss → ST line fill charge
// + install + eviction), QAC bump, per-core counters, policy OnServed /
// OnAccess, translation through the live permutation, and a channel charge
// at the translated location — so every piece of state that carries
// history (STC contents, QACs, policy counters, swap-group residency,
// wear) keeps warming exactly as it would under the cycle model. Only the
// timing is approximate: the returned latency is the channel's closed-form
// occupancy estimate, and swaps requested by the policy commit
// synchronously after the access. Fault injection for NVM transients and
// stalls does not run here (those faults fire only inside detailed
// windows); ST-metadata faults still fire whenever ST lines move.
func (c *Controller) FunctionalAccess(core int, origAddr int64, write bool, now int64) int64 {
	c.ffNow = now
	block := c.xl.block(origAddr)
	group := c.xl.group(block)
	slot := c.xl.slot(block)
	chIdx := c.xl.channel(group)
	stc := c.stcs[chIdx]

	var fillLat int64
	e := stc.Lookup(group)
	if e != nil {
		c.Cores[core].STCHits++
	} else {
		c.Cores[core].STCMisses++
		if c.cfg.ModelSTTraffic {
			c.STReads++
			bank, row := c.geo[chIdx][mem.M1].decompose(c.layout.STLineAddr(group))
			fillLat = c.chans[chIdx].FunctionalAccess(mem.M1, bank, row, false, now)
		}
		qac := c.qacAt(group)
		if ev := stc.Insert(group, qac); ev != nil {
			c.handleEviction(chIdx, ev)
		}
		e = stc.Peek(group)
	}

	loc := c.permAt(group, slot)
	weight := 1
	if write {
		weight = c.policy.WriteWeight()
	}
	e.Bump(slot, weight)

	region := c.xl.region(group)
	private := c.alloc.IsPrivate(core, region)
	fromM1 := loc == 0
	cs := &c.Cores[core]
	cs.Served++
	if fromM1 {
		cs.ServedM1++
	}
	if write {
		cs.Writes++
	} else {
		cs.Reads++
	}
	c.policy.OnServed(core, region, private, fromM1)
	c.policy.OnAccess(AccessInfo{
		Now:   now,
		Core:  core,
		Group: group,
		Slot:  slot,
		Loc:   loc,
		Write: write,
		Entry: e,
	}, c)

	location := c.xl.locationOf(group, loc)
	offset := c.xl.blockOffset(origAddr)
	bank, row := c.geo[chIdx][location.Module].decompose(location.ByteAddr + offset)
	// The channel charge warms occupancy, wear and event counts; its
	// latency estimate is returned to the caller but deliberately kept out
	// of the per-core read-latency statistics, which report only
	// cycle-accurate samples from detailed windows.
	lat := fillLat + c.chans[chIdx].FunctionalAccess(location.Module, bank, row, write, now+fillLat)
	if len(c.ffSwaps) > 0 {
		c.drainFFSwaps(now)
	}
	c.ffNow = -1
	return lat
}

// drainFFSwaps commits every swap the policy requested during the current
// FunctionalAccess: the same remap, counters, STC dirtying and OnSwapDone
// notification the event path performs on swap completion, with the
// channel charged functionally.
func (c *Controller) drainFFSwaps(now int64) {
	for i := 0; i < len(c.ffSwaps); i++ {
		s := c.ffSwaps[i]
		loc := c.permAt(s.group, s.slot)
		chIdx := c.layout.Channel(s.group)
		m1Slot := int(c.m1[s.group])
		ch := c.chans[chIdx]
		toSwapLoc := func(l Location) mem.SwapLocation {
			geom := ch.Config().Geom(l.Module)
			bank, row := geom.Decompose(l.ByteAddr)
			return mem.SwapLocation{Module: l.Module, Bank: bank, Row: row}
		}
		ch.FunctionalSwap(toSwapLoc(c.layout.LocationOf(s.group, 0)),
			toSwapLoc(c.layout.LocationOf(s.group, loc)), now)

		c.perm[s.group*c.slots+int64(s.slot)] = 0
		c.perm[s.group*c.slots+int64(m1Slot)] = uint8(loc)
		c.m1[s.group] = uint8(s.slot)
		c.swapping[s.group] = false
		c.SwapsDone++
		c.stcs[chIdx].MarkDirty(s.group)

		region := c.layout.Region(s.group)
		private := c.alloc.IsAnyPrivate(region)
		ownerM1 := c.alloc.Owner(s.group, m1Slot)
		ownerM2 := c.alloc.Owner(s.group, s.slot)
		if ownerM2 >= 0 && ownerM2 < len(c.Cores) {
			c.Cores[ownerM2].Swaps++
		}
		c.policy.OnSwapDone(region, private, ownerM1, ownerM2)
	}
	c.ffSwaps = c.ffSwaps[:0]
}

// Quiesced reports whether the controller holds no in-flight state — no
// coalesced ST misses waiting on fills and no queued or in-flight channel
// requests. After the event calendar drains this always holds; exposed so
// the sampled run loop can assert the fast-forward precondition.
func (c *Controller) Quiesced() bool {
	if len(c.pendingST) != 0 {
		return false
	}
	for _, ch := range c.chans {
		if !ch.Quiesced() {
			return false
		}
	}
	return true
}

// ScheduleSwap implements PolicyContext: swap block (group, slot) with the
// group's M1 resident. The channel is blocked for the swap duration; the
// mapping is updated when the swap completes.
func (c *Controller) ScheduleSwap(group int64, slot int) bool {
	if c.swapping[group] {
		return false
	}
	loc := c.permAt(group, slot)
	if loc == 0 {
		return false
	}
	c.swapping[group] = true
	if c.ffNow >= 0 {
		// Fast-forward span: defer to drainFFSwaps, which commits the swap
		// functionally right after the access that requested it.
		c.ffSwaps = append(c.ffSwaps, ffSwap{group: group, slot: slot})
		return true
	}
	chIdx := c.layout.Channel(group)
	m1Slot := int(c.m1[group])
	m1Location := c.layout.LocationOf(group, 0)
	m2Location := c.layout.LocationOf(group, loc)
	ch := c.chans[chIdx]

	toSwapLoc := func(l Location) mem.SwapLocation {
		geom := ch.Config().Geom(l.Module)
		bank, row := geom.Decompose(l.ByteAddr)
		return mem.SwapLocation{Module: l.Module, Bank: bank, Row: row}
	}
	ch.Swap(toSwapLoc(m1Location), toSwapLoc(m2Location), func(now int64) {
		// Commit the remap: promoted block to location 0, demoted block
		// to the promoted block's old location.
		c.perm[group*c.slots+int64(slot)] = 0
		c.perm[group*c.slots+int64(m1Slot)] = uint8(loc)
		c.m1[group] = uint8(slot)
		c.swapping[group] = false
		c.SwapsDone++
		c.stcs[chIdx].MarkDirty(group)

		region := c.layout.Region(group)
		private := c.alloc.IsAnyPrivate(region)
		ownerM1 := c.alloc.Owner(group, m1Slot)
		ownerM2 := c.alloc.Owner(group, slot)
		if ownerM2 >= 0 && ownerM2 < len(c.Cores) {
			c.Cores[ownerM2].Swaps++
		}
		c.policy.OnSwapDone(region, private, ownerM1, ownerM2)
	})
	return true
}

// RegisterTelemetry registers the controller's signals with a per-epoch
// sampler: per-program served/M1-served/swap counts, STC hit behaviour,
// Swap-group Table traffic, and the NVM retry/drop resilience state.
func (c *Controller) RegisterTelemetry(s *telemetry.Sampler) {
	for i := range c.Cores {
		i := i
		s.Counter(fmt.Sprintf("p%d.served", i), func() int64 { return c.Cores[i].Served })
		s.Counter(fmt.Sprintf("p%d.served_m1", i), func() int64 { return c.Cores[i].ServedM1 })
		s.Counter(fmt.Sprintf("p%d.swaps", i), func() int64 { return c.Cores[i].Swaps })
	}
	s.Counter("stc.hits", func() int64 {
		var h int64
		for _, stc := range c.stcs {
			h += stc.Hits
		}
		return h
	})
	s.Counter("stc.misses", func() int64 {
		var m int64
		for _, stc := range c.stcs {
			m += stc.Misses
		}
		return m
	})
	s.Gauge("stc.hit_rate", func(int64) float64 { return c.STCHitRate() })
	s.Counter("st.reads", func() int64 { return c.STReads })
	s.Counter("st.writes", func() int64 { return c.STWrites })
	s.Counter("swaps.done", func() int64 { return c.SwapsDone })
	s.Counter("resil.retries", func() int64 { return c.Resilience.Retries })
	s.Counter("resil.drops", func() int64 { return c.Resilience.Drops })
}

// FlushSTCs drains all STC entries (end of simulation) so the final QAC
// updates and MDM statistics are accounted for.
func (c *Controller) FlushSTCs() {
	for chIdx, stc := range c.stcs {
		for _, ev := range stc.FlushAll() {
			c.handleEviction(chIdx, ev)
		}
	}
}

// Counts sums the channel event counters.
func (c *Controller) Counts() mem.EventCounts {
	var total mem.EventCounts
	for _, ch := range c.chans {
		total.Add(ch.Counts)
	}
	return total
}

var _ PolicyContext = (*Controller)(nil)
