package mem

import (
	"fmt"

	"profess/internal/event"
	"profess/internal/fault"
	"profess/internal/telemetry"
)

// ChannelConfig describes one memory channel: an M1 module and an M2 module
// sharing a 64-bit data bus (the Intel Purley-style arrangement of §2.2).
type ChannelConfig struct {
	M1Timing Timing
	M2Timing Timing
	M1Geom   Geometry
	M2Geom   Geometry
	// RowHitCap is FR-FCFS-Cap's limit on consecutive row-buffer hits a
	// bank may enjoy before losing scheduling priority (Table 8: 4).
	RowHitCap int
	// BlockBytes is the migration block size (Table 8: 2 KB); it sets the
	// number of 64-B bursts a swap moves per block.
	BlockBytes int64
}

// DefaultChannelConfig returns a channel with Table 8 timings and the given
// per-channel module capacities.
func DefaultChannelConfig(m1Capacity, m2Capacity int64) ChannelConfig {
	return ChannelConfig{
		M1Timing:   DefaultM1Timing(),
		M2Timing:   DefaultM2Timing(),
		M1Geom:     GeometryForCapacity(m1Capacity),
		M2Geom:     GeometryForCapacity(m2Capacity),
		RowHitCap:  4,
		BlockBytes: 2 << 10,
	}
}

// Timing returns the timing parameters for the given partition.
func (c ChannelConfig) Timing(k Kind) Timing {
	if k == M1 {
		return c.M1Timing
	}
	return c.M2Timing
}

// Geom returns the geometry for the given partition.
func (c ChannelConfig) Geom(k Kind) Geometry {
	if k == M1 {
		return c.M1Geom
	}
	return c.M2Geom
}

// SwapLatency returns the analytic latency of one fast swap (§4.1): read
// both 2-KB blocks into the swap buffers, then write them back to the
// opposite modules. Read latencies partially overlap; the shared data bus
// serialises the bursts; the M1 write overlaps M2's long write recovery.
// With Table 8 values this is 796.25 ns (2548 CPU cycles), matching the
// paper's analytic number.
func (c ChannelConfig) SwapLatency() int64 {
	n := c.BlockBytes / 64 // bursts per block
	t1, t2 := c.M1Timing, c.M2Timing
	m1ReadDone := t1.TRP + t1.TRCD + t1.CL + n*t1.Burst
	m2DataStart := t2.TRP + t2.TRCD + t2.CL
	if m1ReadDone > m2DataStart {
		m2DataStart = m1ReadDone
	}
	m2ReadDone := m2DataStart + n*t2.Burst
	// Write phase: the 32 bursts to M2 go first, then M2's write recovery,
	// which hides both the M1 write bursts and M1's recovery.
	return m2ReadDone + n*t2.Burst + t2.TWR
}

// qent is one queue slot: the request plus the scan keys the FR-FCFS-Cap
// loop needs, kept inline so pick walks contiguous memory instead of
// chasing a *Request per element.
type qent struct {
	r   *Request
	b   *bank
	row int64
}

type bank struct {
	openRow            int64 // -1 when closed
	busyUntil          int64 // earliest next column/activate command
	writeRecoveryUntil int64 // earliest precharge after the last write
	hitStreak          int
	inflight           bool
	refreshSeen        int64 // last refresh window applied to this bank
	// [refClearAt, refNextAt) spans the part of the bank's current refresh
	// window where an access needs no refresh bookkeeping at all — the
	// common case, reduced to two compares instead of a 64-bit division.
	refClearAt int64
	refNextAt  int64
}

// Channel models one memory channel: two module bank arrays, a shared data
// bus, an FR-FCFS-Cap scheduler and swap blocking. It is not safe for
// concurrent use; the discrete-event engine serialises all calls.
type Channel struct {
	cfg   ChannelConfig
	sched event.Scheduler
	inj   *fault.Injector

	banks        [2][]bank
	timing       [2]Timing // per-kind timings, resolved once at build
	busFreeAt    int64
	blockedUntil int64  // swaps block the whole channel
	queue        []qent // pending requests in age order
	nextSeq      int64
	refCounted   [2]int64 // refresh windows accounted per partition

	// Counts tallies served events for energy and figure-of-merit use.
	Counts EventCounts
	// BusBusyCycles accumulates data-bus occupancy (demand bursts only).
	BusBusyCycles int64
	// m2RowWrites tallies write bursts per M2 row (bank-major) for wear
	// and lifetime reporting; see wear.go.
	m2RowWrites []int64
	// QueueDepthSamples support average-queue-depth reporting.
	queueDepthSum int64
	queueSamples  int64
}

// NewChannel builds a channel bound to the given event scheduler.
func NewChannel(cfg ChannelConfig, sched event.Scheduler) *Channel {
	if cfg.RowHitCap <= 0 {
		cfg.RowHitCap = 4
	}
	ch := &Channel{cfg: cfg, sched: sched}
	ch.timing = [2]Timing{cfg.Timing(Kind(0)), cfg.Timing(Kind(1))}
	for k := 0; k < 2; k++ {
		g := ch.cfg.Geom(Kind(k))
		ch.banks[k] = make([]bank, g.Banks)
		for i := range ch.banks[k] {
			ch.banks[k][i].openRow = -1
		}
	}
	g2 := ch.cfg.M2Geom
	ch.m2RowWrites = make([]int64, int64(g2.Banks)*g2.RowsPerBank)
	return ch
}

// Config returns the channel's configuration.
func (ch *Channel) Config() ChannelConfig { return ch.cfg }

// Reset returns the channel to its just-built state: banks closed and
// idle, bus free, queue empty, every counter zeroed, fault injector
// disarmed. Queued *Request references are dropped (the owning scheduler
// is reset alongside), and backing arrays are kept for reuse.
func (ch *Channel) Reset() {
	for k := 0; k < 2; k++ {
		for i := range ch.banks[k] {
			ch.banks[k][i] = bank{openRow: -1}
		}
	}
	ch.busFreeAt = 0
	ch.blockedUntil = 0
	for i := range ch.queue {
		ch.queue[i] = qent{}
	}
	ch.queue = ch.queue[:0]
	ch.nextSeq = 0
	ch.refCounted = [2]int64{}
	ch.Counts = EventCounts{}
	ch.BusBusyCycles = 0
	clear(ch.m2RowWrites)
	ch.queueDepthSum, ch.queueSamples = 0, 0
	ch.inj = nil
}

// SetFaultInjector arms the channel with a fault injector (nil disarms).
// The channel draws NVM transient failures per M2 demand burst and stall
// episodes per enqueue.
func (ch *Channel) SetFaultInjector(inj *fault.Injector) { ch.inj = inj }

// QueueLen returns the number of requests waiting (not yet issued to banks).
func (ch *Channel) QueueLen() int { return len(ch.queue) }

// AvgQueueDepth returns the mean queue depth sampled at every enqueue.
func (ch *Channel) AvgQueueDepth() float64 {
	if ch.queueSamples == 0 {
		return 0
	}
	return float64(ch.queueDepthSum) / float64(ch.queueSamples)
}

// RegisterTelemetry registers the channel's signals under the given name
// prefix with a per-epoch sampler: instantaneous queue occupancy,
// data-bus busy cycles and per-partition demand traffic.
func (ch *Channel) RegisterTelemetry(s *telemetry.Sampler, prefix string) {
	s.Gauge(prefix+".queue", func(int64) float64 { return float64(len(ch.queue)) })
	s.Counter(prefix+".bus_busy", func() int64 { return ch.BusBusyCycles })
	s.Counter(prefix+".m1_demand", func() int64 {
		return ch.Counts.Reads[M1] + ch.Counts.Writes[M1]
	})
	s.Counter(prefix+".m2_demand", func() int64 {
		return ch.Counts.Reads[M2] + ch.Counts.Writes[M2]
	})
	s.Counter(prefix+".swaps", func() int64 { return ch.Counts.Swaps })
	s.Counter(prefix+".m2_wear_writes", func() int64 {
		return ch.Counts.Writes[M2] + ch.Counts.SwapWrites[M2]
	})
}

// Channel event kinds for the typed scheduling path.
const (
	chEvComplete int64 = iota // p = *Request whose data burst completed
	chEvDispatch              // retry dispatch after a swap block clears
)

// HandleEvent implements event.Handler: the channel receives its own burst
// completions and deferred dispatch retries as typed events, so the hot
// path schedules no closures.
func (ch *Channel) HandleEvent(now int64, i int64, p any) {
	switch i {
	case chEvComplete:
		r := p.(*Request)
		ch.banks[r.Module][r.Bank].inflight = false
		if r.Done != nil {
			r.Done.RequestDone(now, r)
		} else if r.OnDone != nil {
			r.OnDone(now)
		}
		ch.tryDispatch(now)
	case chEvDispatch:
		ch.tryDispatch(now)
	}
}

// Enqueue admits a request to the channel at the current time and attempts
// to dispatch. The request's Done (or OnDone) fires when its data burst
// completes.
func (ch *Channel) Enqueue(r *Request) {
	now := ch.sched.Now()
	r.Arrival = now
	ch.nextSeq++
	r.seq = ch.nextSeq
	ch.queue = append(ch.queue, qent{r: r, b: &ch.banks[r.Module][r.Bank], row: r.Row})
	ch.queueDepthSum += int64(len(ch.queue))
	ch.queueSamples++
	if ch.inj.Fire(fault.ChannelStall) {
		// A stall episode wedges the scheduler: nothing dispatches until
		// it clears. In-flight bursts complete normally.
		end := now + ch.inj.Plan().EffectiveStallCycles()
		if end > ch.blockedUntil {
			ch.blockedUntil = end
		}
	}
	ch.tryDispatch(now)
}

// tryDispatch issues every schedulable request per FR-FCFS-Cap: prefer the
// oldest row-buffer-hitting request whose bank streak is under the cap;
// otherwise the oldest request overall. A bank holds at most one in-flight
// request so bank-level parallelism is preserved while the shared bus
// serialises data bursts.
func (ch *Channel) tryDispatch(now int64) {
	if now < ch.blockedUntil {
		// The channel is blocked by a swap; retry when it unblocks.
		ch.sched.Schedule(ch.blockedUntil, ch, chEvDispatch, nil)
		return
	}
	for {
		idx := ch.pick()
		if idx < 0 {
			return
		}
		r := ch.queue[idx].r
		n := len(ch.queue) - 1
		copy(ch.queue[idx:], ch.queue[idx+1:])
		ch.queue[n] = qent{} // drop the stale *Request reference
		ch.queue = ch.queue[:n]
		ch.issue(now, r)
	}
}

// pick returns the queue index to issue next, or -1 if nothing can issue.
func (ch *Channel) pick() int {
	firstReady := -1
	cap := ch.cfg.RowHitCap
	for i := range ch.queue {
		e := &ch.queue[i]
		b := e.b
		if b.inflight {
			continue
		}
		if firstReady < 0 {
			firstReady = i
		}
		if b.openRow == e.row && b.hitStreak < cap {
			return i // oldest capped row hit wins
		}
	}
	return firstReady
}

// refresh applies the refresh-window bookkeeping shared by the event-driven
// and functional paths: a command starting inside a window's TRFC stall is
// pushed past it, and any refresh since the bank's last use closes its rows
// and is counted (once per channel, via refCounted). The per-bank
// [refClearAt, refNextAt) memo marks the span of the bank's current window
// where none of that can apply, so the common repeat access costs two
// compares instead of a division; whenever refreshSeen was set to win the
// refCounted update ran in the same block, so the fast path can never skip
// a counter increment.
func (ch *Channel) refresh(k Kind, t *Timing, b *bank, start int64) int64 {
	if t.TREFI <= 0 {
		return start
	}
	if start >= b.refClearAt && start < b.refNextAt {
		return start
	}
	win := start / t.TREFI
	if rEnd := win*t.TREFI + t.TRFC; start < rEnd && win > 0 {
		start = rEnd
	}
	if win > b.refreshSeen {
		b.refreshSeen = win
		b.openRow = -1
		b.hitStreak = 0
	}
	if win > ch.refCounted[k] {
		ch.Counts.Refreshes[k] += win - ch.refCounted[k]
		ch.refCounted[k] = win
	}
	b.refNextAt = (win + 1) * t.TREFI
	if win > 0 {
		b.refClearAt = win*t.TREFI + t.TRFC
	} else {
		b.refClearAt = 0
	}
	return start
}

// issue performs the timing computation for one request and schedules its
// completion.
func (ch *Channel) issue(now int64, r *Request) {
	k := r.Module
	t := &ch.timing[k]
	b := &ch.banks[k][r.Bank]

	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	// Refresh: landing inside a refresh window stalls past it; any
	// refresh since the bank's last use closed its rows.
	start = ch.refresh(k, t, b, start)
	if b.openRow == r.Row {
		ch.Counts.RowHits[k]++
		b.hitStreak++
	} else {
		ch.Counts.RowMisses[k]++
		if b.openRow >= 0 {
			// Precharge the open row; respect write recovery.
			if b.writeRecoveryUntil > start {
				start = b.writeRecoveryUntil
			}
			start += t.TRP
			ch.Counts.Precharges[k]++
		}
		start += t.TRCD
		ch.Counts.Activates[k]++
		b.openRow = r.Row
		b.hitStreak = 0
	}
	// Column command -> data on the bus. Writes use CL as CWL.
	dataAt := start + t.CL
	if dataAt < ch.busFreeAt {
		dataAt = ch.busFreeAt
	}
	done := dataAt + t.Burst
	ch.busFreeAt = done
	ch.BusBusyCycles += t.Burst
	b.busyUntil = done
	if r.IsWrite {
		b.writeRecoveryUntil = done + t.TWR
		ch.Counts.Writes[k]++
		if k == M2 {
			ch.noteM2Write(r.Bank, r.Row, 1)
		}
	} else {
		ch.Counts.Reads[k]++
	}
	b.inflight = true
	// NVM transients: an M2 demand burst may fail after paying its full
	// timing; the submitter sees Faulted and decides whether to retry.
	if r.Module == M2 && r.Core >= 0 {
		if r.IsWrite {
			r.Faulted = ch.inj.Fire(fault.NVMWriteTransient)
		} else {
			r.Faulted = ch.inj.Fire(fault.NVMReadTransient)
		}
	}
	ch.sched.Schedule(done, ch, chEvComplete, r)
}

// FunctionalAccess serves one 64-B access without the event-driven
// scheduler: the fast-forward path of the sampled execution mode. Bank
// row-buffer state, refresh accounting, demand counts and M2 wear update
// exactly as issue() would, but no completion event is scheduled and the
// FR-FCFS queue is bypassed — requests are charged in arrival order
// against the bank and bus occupancy the channel carries at `now`, which
// is the closed-form latency estimate: the unloaded timing plus the
// (bounded) residual backlog. Because it reads and extends the same
// busFreeAt/busyUntil state the detailed mode uses, occupancy carries
// seamlessly across the detailed/fast-forward boundary in both
// directions; the backlog bound (see the clamp below) is what keeps that
// hand-off honest. Returns the access latency in cycles. Fault injection
// does not apply (faults fire only in detailed windows).
func (ch *Channel) FunctionalAccess(k Kind, bankIdx int, row int64, write bool, now int64) int64 {
	t := &ch.timing[k]
	b := &ch.banks[k][bankIdx]

	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	if ch.blockedUntil > start {
		start = ch.blockedUntil
	}
	start = ch.refresh(k, t, b, start)
	if b.openRow == row {
		ch.Counts.RowHits[k]++
		b.hitStreak++
	} else {
		ch.Counts.RowMisses[k]++
		if b.openRow >= 0 {
			if b.writeRecoveryUntil > start {
				start = b.writeRecoveryUntil
			}
			start += t.TRP
			ch.Counts.Precharges[k]++
		}
		start += t.TRCD
		ch.Counts.Activates[k]++
		b.openRow = row
		b.hitStreak = 0
	}
	dataAt := start + t.CL
	if dataAt < ch.busFreeAt {
		dataAt = ch.busFreeAt
	}
	done := dataAt + t.Burst
	ch.busFreeAt = done
	ch.BusBusyCycles += t.Burst
	b.busyUntil = done
	if write {
		b.writeRecoveryUntil = done + t.TWR
		ch.Counts.Writes[k]++
		if k == M2 {
			ch.noteM2Write(bankIdx, row, 1)
		}
	} else {
		ch.Counts.Reads[k]++
	}
	// Bound the backlog. Functional arrivals are paced by measured IPC,
	// not by completions, so nothing throttles them when they momentarily
	// exceed the channel's service rate — without a bound the occupancy
	// horizons would drift arbitrarily far ahead of the functional clock
	// and poison the next detailed window with a phantom queue the real
	// machine never builds (the cores' outstanding-request limit throttles
	// it). One worst-case service beyond `now` is the most demand backlog a
	// functional charge may leave behind.
	//
	// Swap blocking is different: it is real, seconds-scale channel
	// unavailability the detailed machine also builds (a swap blocks the
	// whole channel for SwapLatency and nothing about a core throttles it),
	// so the demand clamp must never cut into the swap horizon — erasing it
	// makes fast-forward spans nearly swap-free and the detailed windows
	// absorb the deferred blocking as phantom extra contention. The swap
	// horizon has its own bound in ffClampSwapHorizon.
	lead := now + t.TRP + t.TRCD + t.CL + t.Burst + t.TWR
	if ch.blockedUntil > lead {
		lead = ch.blockedUntil
	}
	if ch.busFreeAt > lead {
		ch.busFreeAt = lead
	}
	if b.busyUntil > lead {
		b.busyUntil = lead
	}
	if b.writeRecoveryUntil > lead {
		b.writeRecoveryUntil = lead
	}
	return done - now
}

// ffSwapLeads bounds how far the swap-blocking horizon may run ahead of
// the functional clock, in whole swap latencies: the real machine's
// negative feedback (a blocked channel stalls cores, fewer accesses
// trigger fewer swaps) caps the swap queue at about this depth, and the
// paced functional arrivals lack that feedback.
const ffSwapLeads = 2

// ffClampSwapHorizon applies the swap-horizon bound after a functional
// swap charge.
func (ch *Channel) ffClampSwapHorizon(now int64) {
	lead := now + ffSwapLeads*ch.cfg.SwapLatency()
	if ch.blockedUntil > lead {
		ch.blockedUntil = lead
	}
	if ch.busFreeAt > lead {
		ch.busFreeAt = lead
	}
}

// FunctionalSwap performs one block swap functionally at time `now`: the
// same counts, wear tallies and bank perturbation as Swap, with the
// blocking horizon folded into the occupancy state instead of an event.
// Returns the swap's completion time.
func (ch *Channel) FunctionalSwap(m1Loc, m2Loc SwapLocation, now int64) int64 {
	start := now
	if ch.busFreeAt > start {
		start = ch.busFreeAt
	}
	if ch.blockedUntil > start {
		start = ch.blockedUntil
	}
	end := start + ch.cfg.SwapLatency()
	ch.blockedUntil = end
	ch.busFreeAt = end
	ch.Counts.Swaps++
	ch.Counts.SwapBusy += end - start

	n := ch.cfg.BlockBytes / 64
	ch.Counts.SwapReads[M1] += n
	ch.Counts.SwapReads[M2] += n
	ch.Counts.SwapWrites[M1] += n
	ch.Counts.SwapWrites[M2] += n
	ch.noteM2Write(m2Loc.Bank, m2Loc.Row, n)
	ch.Counts.Activates[M1]++
	ch.Counts.Activates[M2]++

	closeBank := func(loc SwapLocation) {
		b := &ch.banks[loc.Module][loc.Bank]
		b.openRow = -1
		b.hitStreak = 0
		if b.busyUntil < end {
			b.busyUntil = end
		}
	}
	closeBank(m1Loc)
	closeBank(m2Loc)
	ch.ffClampSwapHorizon(now)
	return end
}

// Quiesced reports whether the channel holds no queued or in-flight
// requests — the precondition for entering a fast-forward span.
func (ch *Channel) Quiesced() bool {
	if len(ch.queue) != 0 {
		return false
	}
	for k := 0; k < 2; k++ {
		for i := range ch.banks[k] {
			if ch.banks[k][i].inflight {
				return false
			}
		}
	}
	return true
}

// SwapLocation names one 2-KB block's physical placement for a swap.
type SwapLocation struct {
	Module Kind
	Bank   int
	Row    int64
}

// Swap blocks the channel for one block swap between the given M1 and M2
// locations, counts the component traffic, and invokes onDone when the swap
// completes. It returns the completion time. Per §4.1 the channel is
// blocked for the whole swap and row-buffer state of the involved banks is
// perturbed (we close their rows).
func (ch *Channel) Swap(m1Loc, m2Loc SwapLocation, onDone func(now int64)) int64 {
	now := ch.sched.Now()
	start := now
	if ch.busFreeAt > start {
		start = ch.busFreeAt
	}
	if ch.blockedUntil > start {
		start = ch.blockedUntil
	}
	end := start + ch.cfg.SwapLatency()
	ch.blockedUntil = end
	ch.busFreeAt = end
	ch.Counts.Swaps++
	ch.Counts.SwapBusy += end - start

	n := ch.cfg.BlockBytes / 64
	ch.Counts.SwapReads[M1] += n
	ch.Counts.SwapReads[M2] += n
	ch.Counts.SwapWrites[M1] += n
	ch.Counts.SwapWrites[M2] += n
	ch.noteM2Write(m2Loc.Bank, m2Loc.Row, n)
	// One activation per involved row on each side (block = quarter row at
	// Table 8 sizes, but a swap touches each block's row once per phase).
	ch.Counts.Activates[M1]++
	ch.Counts.Activates[M2]++

	closeBank := func(loc SwapLocation) {
		b := &ch.banks[loc.Module][loc.Bank]
		b.openRow = -1
		b.hitStreak = 0
		if b.busyUntil < end {
			b.busyUntil = end
		}
	}
	closeBank(m1Loc)
	closeBank(m2Loc)

	ch.sched.At(end, func(t int64) {
		if onDone != nil {
			onDone(t)
		}
		ch.tryDispatch(t)
	})
	return end
}

// BlockedUntil exposes the current swap-blocking horizon (for tests).
func (ch *Channel) BlockedUntil() int64 { return ch.blockedUntil }

// String summarises the channel state.
func (ch *Channel) String() string {
	return fmt.Sprintf("channel{queue=%d busFree=%d blocked=%d swaps=%d}",
		len(ch.queue), ch.busFreeAt, ch.blockedUntil, ch.Counts.Swaps)
}
