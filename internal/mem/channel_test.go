package mem

import (
	"testing"

	"profess/internal/event"
)

// runOne enqueues a single request on an idle channel and returns its
// completion latency.
func runOne(t *testing.T, ch *Channel, q *event.Queue, r *Request) int64 {
	t.Helper()
	var lat int64 = -1
	r.OnDone = func(now int64) { lat = now - r.Arrival }
	ch.Enqueue(r)
	q.Drain()
	if lat < 0 {
		t.Fatal("request never completed")
	}
	return lat
}

func newTestChannel() (*Channel, *event.Queue) {
	q := &event.Queue{}
	return NewChannel(DefaultChannelConfig(2<<20, 16<<20), q), q
}

func TestReadMissThenHitLatency(t *testing.T) {
	ch, q := newTestChannel()
	tm := ch.Config().M1Timing

	missLat := runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 3})
	if want := tm.TRCD + tm.CL + tm.Burst; missLat != want {
		t.Errorf("cold miss latency = %d, want %d", missLat, want)
	}
	hitLat := runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 3})
	if want := tm.CL + tm.Burst; hitLat != want {
		t.Errorf("row hit latency = %d, want %d", hitLat, want)
	}
	if ch.Counts.RowHits[M1] != 1 || ch.Counts.RowMisses[M1] != 1 {
		t.Errorf("hit/miss counts = %d/%d", ch.Counts.RowHits[M1], ch.Counts.RowMisses[M1])
	}
}

func TestConflictMissPaysPrecharge(t *testing.T) {
	ch, q := newTestChannel()
	tm := ch.Config().M1Timing
	runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 3})
	lat := runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 4})
	if want := tm.TRP + tm.TRCD + tm.CL + tm.Burst; lat != want {
		t.Errorf("conflict latency = %d, want %d", lat, want)
	}
	if ch.Counts.Precharges[M1] != 1 {
		t.Errorf("precharges = %d", ch.Counts.Precharges[M1])
	}
}

func TestM2SlowerThanM1(t *testing.T) {
	ch, q := newTestChannel()
	m1 := runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 1})
	m2 := runOne(t, ch, q, &Request{Module: M2, Bank: 0, Row: 1})
	if m2 <= m1 {
		t.Errorf("M2 cold read (%d) should be slower than M1 (%d)", m2, m1)
	}
	if want := Cycles(137.5 - 13.75); m2-m1 != want {
		t.Errorf("M2-M1 gap = %d, want %d (t_RCD difference)", m2-m1, want)
	}
}

func TestWriteRecoveryDelaysConflict(t *testing.T) {
	ch, q := newTestChannel()
	tm := ch.Config().M2Timing
	runOne(t, ch, q, &Request{Module: M2, Bank: 0, Row: 1, IsWrite: true})
	base := q.Now()
	var done int64
	r := &Request{Module: M2, Bank: 0, Row: 2, OnDone: func(now int64) { done = now }}
	ch.Enqueue(r)
	q.Drain()
	// The conflicting access must wait out t_WR before precharging.
	minDone := base + tm.TWR + tm.TRP + tm.TRCD + tm.CL + tm.Burst
	if done < minDone {
		t.Errorf("write recovery not respected: done=%d want>=%d", done, minDone)
	}
}

func TestBankParallelismOverlaps(t *testing.T) {
	ch, q := newTestChannel()
	tm := ch.Config().M1Timing
	var done [2]int64
	for i := 0; i < 2; i++ {
		i := i
		ch.Enqueue(&Request{Module: M1, Bank: i, Row: 5, OnDone: func(now int64) { done[i] = now }})
	}
	q.Drain()
	// Two cold misses to different banks overlap their activates: the
	// second completes one burst after the first, not a full miss later.
	if done[1]-done[0] != tm.Burst {
		t.Errorf("bank-parallel completion gap = %d, want %d (one burst)", done[1]-done[0], tm.Burst)
	}
}

func TestSameBankSerialises(t *testing.T) {
	ch, q := newTestChannel()
	var done [2]int64
	for i := 0; i < 2; i++ {
		i := i
		ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 5, OnDone: func(now int64) { done[i] = now }})
	}
	q.Drain()
	tm := ch.Config().M1Timing
	// Second request is a row hit but must wait for the first's column
	// access; gap is at least a burst and typically CL-ish.
	if done[1] <= done[0] || done[1]-done[0] < tm.Burst {
		t.Errorf("same-bank requests did not serialise: %v", done)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	ch, q := newTestChannel()
	// Open row 1 on bank 0, then occupy the bank so that the next two
	// requests queue together and the scheduler gets to reorder them.
	runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 1})
	var order []string
	ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 1, OnDone: func(int64) { order = append(order, "busy") }})
	ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 9, OnDone: func(int64) { order = append(order, "miss") }})
	ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 1, OnDone: func(int64) { order = append(order, "hit") }})
	q.Drain()
	if len(order) != 3 || order[1] != "hit" {
		t.Errorf("completion order = %v, want the younger row hit before the older miss", order)
	}
}

func TestFRFCFSCapLimitsStreak(t *testing.T) {
	ch, q := newTestChannel()
	// Cold miss (streak 0) + in-flight hit (streak 1) occupy the bank.
	runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 1})
	var order []string
	ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 1, OnDone: func(int64) { order = append(order, "busy") }})
	// One old conflicting request plus five row hits queue behind it.
	ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 9, OnDone: func(int64) { order = append(order, "miss") }})
	for i := 0; i < 5; i++ {
		ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 1, OnDone: func(int64) { order = append(order, "hit") }})
	}
	q.Drain()
	if len(order) != 7 {
		t.Fatalf("served %d requests", len(order))
	}
	// Streak reaches the cap of 4 after three more hits (1 -> 4), then the
	// old miss must be served: positions are busy, hit, hit, hit, miss.
	missPos := -1
	for i, s := range order {
		if s == "miss" {
			missPos = i
			break
		}
	}
	if missPos != 4 {
		t.Errorf("miss served at position %d, want 4 (cap): order=%v", missPos, order)
	}
}

func TestSwapBlocksChannel(t *testing.T) {
	ch, q := newTestChannel()
	swapDone := int64(-1)
	end := ch.Swap(
		SwapLocation{Module: M1, Bank: 0, Row: 1},
		SwapLocation{Module: M2, Bank: 3, Row: 7},
		func(now int64) { swapDone = now },
	)
	// A demand request enqueued during the swap must wait until it ends.
	var reqDone int64
	ch.Enqueue(&Request{Module: M1, Bank: 5, Row: 2, OnDone: func(now int64) { reqDone = now }})
	q.Drain()
	if swapDone != end {
		t.Errorf("swap completed at %d, expected %d", swapDone, end)
	}
	if want := ch.Config().SwapLatency(); end != want {
		t.Errorf("swap end = %d, want %d", end, want)
	}
	if reqDone <= end {
		t.Errorf("demand request (%d) overtook the blocking swap (%d)", reqDone, end)
	}
	if ch.Counts.Swaps != 1 || ch.Counts.SwapBusy != want(ch) {
		t.Errorf("swap counts: %+v", ch.Counts)
	}
	n := ch.Config().BlockBytes / 64
	if ch.Counts.SwapReads[M1] != n || ch.Counts.SwapWrites[M2] != n {
		t.Errorf("swap traffic counts wrong: %+v", ch.Counts)
	}
}

func want(ch *Channel) int64 { return ch.Config().SwapLatency() }

func TestSwapClosesInvolvedRows(t *testing.T) {
	ch, q := newTestChannel()
	runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 1})
	ch.Swap(SwapLocation{Module: M1, Bank: 0, Row: 1}, SwapLocation{Module: M2, Bank: 0, Row: 1}, nil)
	q.Drain()
	// Re-access the previously open row: it must be a miss again.
	misses := ch.Counts.RowMisses[M1]
	runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 1})
	if ch.Counts.RowMisses[M1] != misses+1 {
		t.Error("swap should close the involved M1 row")
	}
}

func TestBackToBackSwapsQueue(t *testing.T) {
	ch, _ := newTestChannel()
	end1 := ch.Swap(SwapLocation{Module: M1, Bank: 0, Row: 1}, SwapLocation{Module: M2, Bank: 0, Row: 1}, nil)
	end2 := ch.Swap(SwapLocation{Module: M1, Bank: 1, Row: 1}, SwapLocation{Module: M2, Bank: 1, Row: 1}, nil)
	if end2 != end1+ch.Config().SwapLatency() {
		t.Errorf("second swap end = %d, want %d", end2, end1+ch.Config().SwapLatency())
	}
}

func TestChannelDeterminism(t *testing.T) {
	run := func() int64 {
		ch, q := newTestChannel()
		for i := 0; i < 200; i++ {
			ch.Enqueue(&Request{Module: Kind(i % 2), Bank: i % 16, Row: int64(i % 7)})
			if i%50 == 25 {
				ch.Swap(SwapLocation{Module: M1, Bank: i % 16, Row: 1},
					SwapLocation{Module: M2, Bank: i % 16, Row: 2}, nil)
			}
		}
		return q.Drain()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %d vs %d", a, b)
	}
}

func TestQueueDepthAccounting(t *testing.T) {
	ch, q := newTestChannel()
	for i := 0; i < 10; i++ {
		ch.Enqueue(&Request{Module: M1, Bank: 0, Row: int64(i)})
	}
	q.Drain()
	if ch.AvgQueueDepth() <= 0 {
		t.Error("queue depth should have been sampled")
	}
	if ch.QueueLen() != 0 {
		t.Errorf("queue should drain, len=%d", ch.QueueLen())
	}
	if ch.String() == "" {
		t.Error("String empty")
	}
}
