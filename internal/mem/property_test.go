package mem

import (
	"testing"
	"testing/quick"

	"profess/internal/event"
)

// TestEveryRequestCompletesProperty: whatever mix of requests and swaps is
// thrown at a channel, every request completes exactly once and counts
// balance.
func TestEveryRequestCompletesProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		q := &event.Queue{}
		ch := NewChannel(DefaultChannelConfig(2<<20, 16<<20), q)
		want, got := 0, 0
		for _, op := range ops {
			kind := Kind(op % 2)
			bank := int(op/2) % 16
			row := int64(op/32) % 8
			switch {
			case op%13 == 0:
				ch.Swap(SwapLocation{Module: M1, Bank: bank, Row: row},
					SwapLocation{Module: M2, Bank: bank, Row: row}, nil)
			default:
				want++
				ch.Enqueue(&Request{
					Module: kind, Bank: bank, Row: row, IsWrite: op%3 == 0,
					OnDone: func(int64) { got++ },
				})
			}
		}
		q.Drain()
		if got != want {
			return false
		}
		// Count balance: reads+writes == demand requests served.
		c := ch.Counts
		return c.Reads[M1]+c.Reads[M2]+c.Writes[M1]+c.Writes[M2] == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLatencyNonNegativeProperty: completions never precede arrivals and
// the clock never runs backwards across a request's lifetime.
func TestLatencyNonNegativeProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		q := &event.Queue{}
		ch := NewChannel(DefaultChannelConfig(2<<20, 16<<20), q)
		ok := true
		for i, op := range ops {
			r := &Request{Module: Kind(op % 2), Bank: int(op) % 16, Row: int64(op) % 64}
			delay := int64(i) * 7
			q.At(delay, func(int64) {
				arrivalFloor := delay
				r.OnDone = func(now int64) {
					if now < arrivalFloor {
						ok = false
					}
				}
				ch.Enqueue(r)
			})
		}
		q.Drain()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestBusSerialisesThroughputProperty: total demand bursts cannot complete
// faster than the data bus permits (one burst per Burst cycles).
func TestBusSerialisesThroughput(t *testing.T) {
	q := &event.Queue{}
	ch := NewChannel(DefaultChannelConfig(2<<20, 16<<20), q)
	const n = 500
	var last int64
	for i := 0; i < n; i++ {
		ch.Enqueue(&Request{Module: M1, Bank: i % 16, Row: int64(i % 4),
			OnDone: func(now int64) { last = now }})
	}
	q.Drain()
	minCycles := int64(n) * ch.Config().M1Timing.Burst
	if last < minCycles {
		t.Errorf("%d bursts finished in %d cycles; bus floor is %d", n, last, minCycles)
	}
	if ch.BusBusyCycles != minCycles {
		t.Errorf("bus busy = %d, want %d", ch.BusBusyCycles, minCycles)
	}
}
