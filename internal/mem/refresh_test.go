package mem

import (
	"testing"
)

func TestRefreshStallsRequests(t *testing.T) {
	ch, q := newTestChannel()
	tm := ch.Config().M1Timing
	if tm.TREFI == 0 {
		t.Fatal("M1 must have refresh enabled by default")
	}
	// Land a request just inside the second refresh window.
	var done int64
	q.At(tm.TREFI+1, func(now int64) {
		ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 1, OnDone: func(n int64) { done = n }})
	})
	q.Drain()
	minDone := tm.TREFI + tm.TRFC + tm.TRCD + tm.CL + tm.Burst
	if done < minDone {
		t.Errorf("request inside refresh window done at %d, want >= %d", done, minDone)
	}
	if ch.Counts.Refreshes[M1] == 0 {
		t.Error("refresh windows not counted")
	}
}

func TestRefreshClosesRows(t *testing.T) {
	ch, q := newTestChannel()
	tm := ch.Config().M1Timing
	runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 5}) // opens row 5
	// Re-access the same row after a refresh interval: must be a miss.
	misses := ch.Counts.RowMisses[M1]
	var fired bool
	q.At(tm.TREFI+tm.TRFC+10, func(now int64) {
		fired = true
		ch.Enqueue(&Request{Module: M1, Bank: 0, Row: 5})
	})
	q.Drain()
	if !fired {
		t.Fatal("scheduling failed")
	}
	if ch.Counts.RowMisses[M1] != misses+1 {
		t.Error("refresh should have closed the open row")
	}
}

func TestM2HasNoRefresh(t *testing.T) {
	ch, q := newTestChannel()
	tm := ch.Config().M2Timing
	if tm.TREFI != 0 {
		t.Fatal("M2 must not refresh (Table 8)")
	}
	m1refi := ch.Config().M1Timing.TREFI
	runOne(t, ch, q, &Request{Module: M2, Bank: 0, Row: 5})
	misses := ch.Counts.RowMisses[M2]
	q.At(3*m1refi, func(now int64) {
		ch.Enqueue(&Request{Module: M2, Bank: 0, Row: 5})
	})
	q.Drain()
	if ch.Counts.RowMisses[M2] != misses {
		t.Error("M2 row should survive (no refresh): expected a row hit")
	}
	if ch.Counts.Refreshes[M2] != 0 {
		t.Error("M2 refreshes counted")
	}
}

func TestRefreshDoesNotAffectTimeZero(t *testing.T) {
	ch, q := newTestChannel()
	tm := ch.Config().M1Timing
	lat := runOne(t, ch, q, &Request{Module: M1, Bank: 0, Row: 1})
	if want := tm.TRCD + tm.CL + tm.Burst; lat != want {
		t.Errorf("time-zero latency %d, want %d (window 0 never stalls)", lat, want)
	}
}
