package mem

// NVM write endurance. M2 cells wear out: each 64-B line survives a
// bounded number of write bursts before it can no longer be programmed
// reliably. The channel already observes every M2 write burst (demand
// writes in issue, block swaps in Swap), so wear tracking is a per-row
// tally on that path — fine-grained enough to expose how evenly a
// migration scheme spreads its writes, coarse enough to stay cheap.
//
// Rows, not lines, are the tracked unit: a row is the smallest region the
// simulator addresses (requests carry bank+row, swaps carry rows), and
// within a row the bursts of one write or swap stripe across lines
// uniformly, so per-line wear inside a row is even to first order.
const (
	// EnduranceWrites is the write endurance of one 64-B NVM line, in
	// write bursts. 1e8 is a PCM-class figure (between flash's 1e5 and
	// DRAM's effectively unbounded endurance).
	EnduranceWrites = 1e8
)

// WearStats summarises one channel's M2 write-wear tallies.
type WearStats struct {
	// WriteBursts is the total number of 64-B write bursts absorbed by
	// the channel's M2 module (demand writes plus swap write phases).
	WriteBursts int64
	// Rows is the number of M2 rows the channel addresses.
	Rows int64
	// WrittenRows is how many of those rows received at least one write.
	WrittenRows int64
	// MaxRowWrites is the write-burst count of the most-written row —
	// the row that dies first, and therefore the one that bounds lifetime.
	MaxRowWrites int64
}

// Add folds another channel's tallies into s. Rows and WrittenRows sum
// (each channel owns a disjoint slice of the address space); MaxRowWrites
// takes the maximum, since the hottest row anywhere bounds the device.
func (s *WearStats) Add(o WearStats) {
	s.WriteBursts += o.WriteBursts
	s.Rows += o.Rows
	s.WrittenRows += o.WrittenRows
	if o.MaxRowWrites > s.MaxRowWrites {
		s.MaxRowWrites = o.MaxRowWrites
	}
}

// wearIndex flattens (bank, row) into the channel's M2 wear array.
func (ch *Channel) wearIndex(bank int, row int64) int64 {
	return int64(bank)*ch.cfg.M2Geom.RowsPerBank + row
}

// noteM2Write tallies n write bursts against one M2 row.
func (ch *Channel) noteM2Write(bank int, row int64, n int64) {
	if i := ch.wearIndex(bank, row); i >= 0 && i < int64(len(ch.m2RowWrites)) {
		ch.m2RowWrites[i] += n
	}
}

// WearStats scans the per-row tallies into a summary. Cost is one pass
// over the row array; call it at end of run, not per event.
func (ch *Channel) WearStats() WearStats {
	w := WearStats{Rows: int64(len(ch.m2RowWrites))}
	for _, n := range ch.m2RowWrites {
		if n == 0 {
			continue
		}
		w.WrittenRows++
		w.WriteBursts += n
		if n > w.MaxRowWrites {
			w.MaxRowWrites = n
		}
	}
	return w
}
