package mem

import (
	"testing"
)

// benchDoner is a pre-bound completion sink, matching how the controller
// consumes the channel in production.
type benchDoner struct{ n int64 }

func (d *benchDoner) RequestDone(int64, *Request) { d.n++ }

// BenchmarkChannel_EnqueueIssue measures the full per-burst channel cost:
// enqueue, FR-FCFS-Cap pick, bank timing, completion dispatch. Requests
// rotate over banks and rows so both row hits and conflicts occur.
func BenchmarkChannel_EnqueueIssue(b *testing.B) {
	ch, q := newTestChannel()
	d := &benchDoner{}
	reqs := make([]Request, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &reqs[i%len(reqs)]
		*r = Request{Module: Kind(i % 2), Bank: i % 8, Row: int64(i % 61), IsWrite: i%4 == 0, Core: 0, Done: d}
		ch.Enqueue(r)
		q.Drain()
	}
}

// TestChannelSteadyStateAllocs pins the channel hot path at zero
// steady-state allocations per burst (enqueue through completion).
func TestChannelSteadyStateAllocs(t *testing.T) {
	ch, q := newTestChannel()
	d := &benchDoner{}
	var r Request
	run := func() {
		r = Request{Module: M1, Bank: 0, Row: 3, Core: 0, Done: d}
		ch.Enqueue(&r)
		q.Drain()
	}
	for i := 0; i < 4096; i++ { // warm the queue, buckets and counters
		run()
	}
	if allocs := testing.AllocsPerRun(1000, run); allocs != 0 {
		t.Fatalf("channel burst: %v allocs, want 0", allocs)
	}
}
