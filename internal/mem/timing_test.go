package mem

import (
	"testing"
	"testing/quick"
)

func TestCycles(t *testing.T) {
	cases := []struct {
		ns   float64
		want int64
	}{
		{13.75, 44},
		{137.5, 440},
		{15, 48},
		{275, 880},
		{5, 16},
		{0, 0},
	}
	for _, c := range cases {
		if got := Cycles(c.ns); got != c.want {
			t.Errorf("Cycles(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestDefaultTimings(t *testing.T) {
	m1, m2 := DefaultM1Timing(), DefaultM2Timing()
	// Table 8: t_RCD_M2 = 10 x t_RCD_M1.
	if m2.TRCD != 10*m1.TRCD {
		t.Errorf("t_RCD_M2 = %d, want 10x%d", m2.TRCD, m1.TRCD)
	}
	// t_WR_M2 = 2 x t_RCD_M2 (275 ns vs 137.5 ns).
	if m2.TWR != 2*m2.TRCD {
		t.Errorf("t_WR_M2 = %d, want %d", m2.TWR, 2*m2.TRCD)
	}
	// CL, t_RP and bursts match between partitions.
	if m1.CL != m2.CL || m1.TRP != m2.TRP || m1.Burst != m2.Burst {
		t.Error("CL/TRP/Burst should match between M1 and M2")
	}
}

func TestReadLatencies(t *testing.T) {
	m1, m2 := DefaultM1Timing(), DefaultM2Timing()
	// §4.1: the difference in 64-B read (miss) latencies is 123.75 ns.
	gap := m2.ReadMissLatency() - m1.ReadMissLatency()
	if want := Cycles(123.75); gap != want {
		t.Errorf("read-latency gap = %d cycles, want %d", gap, want)
	}
	if m1.ReadHitLatency() >= m1.ReadMissLatency() {
		t.Error("row hit must be faster than miss")
	}
}

func TestKindString(t *testing.T) {
	if M1.String() != "M1" || M2.String() != "M2" {
		t.Error("Kind strings wrong")
	}
}

func TestGeometryDecompose(t *testing.T) {
	g := Geometry{Banks: 16, RowBytes: 8 << 10, RowsPerBank: 64}
	// First row maps to bank 0 row 0; next row to bank 1 (striping).
	if b, r := g.Decompose(0); b != 0 || r != 0 {
		t.Errorf("Decompose(0) = (%d,%d)", b, r)
	}
	if b, r := g.Decompose(8 << 10); b != 1 || r != 0 {
		t.Errorf("Decompose(rowBytes) = (%d,%d), want bank 1", b, r)
	}
	if b, r := g.Decompose(16 * 8 << 10); b != 0 || r != 1 {
		t.Errorf("Decompose(16 rows) = (%d,%d), want bank 0 row 1", b, r)
	}
}

func TestGeometryCapacityRoundUp(t *testing.T) {
	g := GeometryForCapacity(1 << 20)
	if g.Capacity() < 1<<20 {
		t.Errorf("capacity %d < requested", g.Capacity())
	}
	// Odd capacity rounds up, never down.
	g2 := GeometryForCapacity(1<<20 + 1)
	if g2.Capacity() < 1<<20+1 {
		t.Errorf("capacity %d < requested", g2.Capacity())
	}
}

func TestGeometryDecomposeInBoundsProperty(t *testing.T) {
	g := GeometryForCapacity(4 << 20)
	f := func(addr int64) bool {
		if addr < 0 {
			addr = -addr
		}
		addr %= g.Capacity()
		b, r := g.Decompose(addr)
		return b >= 0 && b < g.Banks && r >= 0 && r < g.RowsPerBank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwapLatencyAnalytic(t *testing.T) {
	cfg := DefaultChannelConfig(2<<20, 16<<20)
	// §4.1 derives a total analytic swap latency of 796.25 ns.
	if got, want := cfg.SwapLatency(), Cycles(796.25); got != want {
		t.Errorf("swap latency = %d cycles, want %d (796.25 ns)", got, want)
	}
}

func TestEventCountsAdd(t *testing.T) {
	a := EventCounts{Swaps: 1}
	a.Reads[M1] = 5
	b := EventCounts{Swaps: 2}
	b.Reads[M1] = 7
	b.Writes[M2] = 3
	a.Add(b)
	if a.Swaps != 3 || a.Reads[M1] != 12 || a.Writes[M2] != 3 {
		t.Errorf("Add result: %+v", a)
	}
	if a.DemandAccesses() != 15 {
		t.Errorf("DemandAccesses = %d", a.DemandAccesses())
	}
}
