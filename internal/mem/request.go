package mem

// Doner receives request completions without a per-access closure: the
// channel calls RequestDone(now, r) when r's data burst finishes. Hot-path
// submitters implement it on pooled per-access records so a steady-state
// access allocates nothing.
type Doner interface {
	RequestDone(now int64, r *Request)
}

// Request is one 64-B memory access presented to a channel after address
// translation: it names an actual physical location (partition, bank, row)
// rather than an original OS address.
type Request struct {
	Module  Kind  // which partition serves the request
	Bank    int   // bank within the partition's rank
	Row     int64 // row within the bank
	IsWrite bool
	Arrival int64 // cycle the request entered the channel queue

	// Core identifies the requesting program (-1 for requests that belong
	// to the memory controller itself, e.g. Swap-group Table traffic).
	Core int

	// Done, if non-nil, receives the completion of the request's data
	// burst. It takes precedence over OnDone and is the zero-allocation
	// path: submitters implement Doner on a pooled per-access record and
	// bind it once, instead of allocating a closure per access.
	Done Doner

	// OnDone, if non-nil (and Done is nil), is invoked when the request's
	// data burst completes. now is the completion cycle. Retained as the
	// closure-based compatibility surface for tests and simple callers.
	OnDone func(now int64)

	// Faulted is set by the channel (before OnDone fires) when a fault
	// injector failed this burst: the timing was paid but the data is
	// unusable, and the submitter decides whether to retry.
	Faulted bool

	// internal scheduling state
	seq int64 // FIFO tiebreak
}

// Latency returns the queueing + service latency given a completion time.
func (r *Request) Latency(done int64) int64 { return done - r.Arrival }

// EventCounts tallies the channel activity that the energy model and the
// figure-of-merit calculations consume.
type EventCounts struct {
	Reads      [2]int64 // 64-B read bursts served, indexed by Kind
	Writes     [2]int64 // 64-B write bursts served, indexed by Kind
	Activates  [2]int64 // row activations, indexed by Kind
	Precharges [2]int64
	RowHits    [2]int64 // column accesses that hit the open row
	RowMisses  [2]int64
	Refreshes  [2]int64 // rank refresh windows elapsed (M2 has none)
	Swaps      int64    // block swaps executed
	SwapBusy   int64    // cycles the channel spent blocked by swaps

	// Swap component traffic (2-KB block reads/writes expressed in 64-B
	// bursts) for energy accounting; also included in Reads/Writes? No:
	// kept separate so demand traffic statistics stay clean.
	SwapReads  [2]int64
	SwapWrites [2]int64
}

// Add accumulates other into c.
func (c *EventCounts) Add(other EventCounts) {
	for k := 0; k < 2; k++ {
		c.Reads[k] += other.Reads[k]
		c.Writes[k] += other.Writes[k]
		c.Activates[k] += other.Activates[k]
		c.Precharges[k] += other.Precharges[k]
		c.RowHits[k] += other.RowHits[k]
		c.RowMisses[k] += other.RowMisses[k]
		c.Refreshes[k] += other.Refreshes[k]
		c.SwapReads[k] += other.SwapReads[k]
		c.SwapWrites[k] += other.SwapWrites[k]
	}
	c.Swaps += other.Swaps
	c.SwapBusy += other.SwapBusy
}

// DemandAccesses returns the total number of demand (non-swap) bursts.
func (c *EventCounts) DemandAccesses() int64 {
	return c.Reads[M1] + c.Reads[M2] + c.Writes[M1] + c.Writes[M2]
}
