// Package mem implements the off-chip memory substrate of the ProFess
// simulator: DDR-style bank and row-buffer timing for both the DRAM
// partition (M1) and the NVM partition (M2), an open-page FR-FCFS-Cap
// memory scheduler, channel-blocking swaps, and event counting for the
// energy model.
//
// All times are expressed in CPU cycles at the core frequency (3.2 GHz in
// the paper's Table 8), so 1 ns = 3.2 cycles and one 0.8 GHz channel cycle
// = 4 CPU cycles. Using a single clock keeps the discrete-event simulator
// simple and exact.
package mem

// CyclesPerNs is the CPU-clock conversion factor (3.2 GHz core).
const CyclesPerNs = 3.2

// Cycles converts nanoseconds to (rounded) CPU cycles.
func Cycles(ns float64) int64 {
	return int64(ns*CyclesPerNs + 0.5)
}

// Kind distinguishes the two memory partitions of the hybrid memory.
type Kind uint8

const (
	// M1 is the fast, small partition (DRAM).
	M1 Kind = iota
	// M2 is the slow, large partition (NVM).
	M2
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == M1 {
		return "M1"
	}
	return "M2"
}

// Timing holds the per-partition timing parameters of Table 8, in CPU
// cycles. Only the parameters that drive the model are kept; the remaining
// DDR timings either match between M1 and M2 in the paper or are folded
// into these.
type Timing struct {
	TRCD  int64 // row-to-column (activate-to-read/write) delay
	TRP   int64 // precharge latency
	CL    int64 // CAS (column read) latency
	TWR   int64 // write-recovery latency (write data end -> precharge)
	Burst int64 // 64-B data-burst occupancy on the channel data bus
	// TREFI / TRFC model DRAM refresh: every TREFI cycles the whole rank
	// is unavailable for TRFC cycles and all rows close. Zero TREFI
	// disables refresh — Table 8 notes M2 (non-volatile) has none.
	TREFI int64
	TRFC  int64
}

// ReadMissLatency is the unloaded latency of a read that misses the open
// row in an already-open bank: precharge + activate + CAS + burst.
func (t Timing) ReadMissLatency() int64 { return t.TRP + t.TRCD + t.CL + t.Burst }

// ReadHitLatency is the unloaded latency of a read hitting the open row.
func (t Timing) ReadHitLatency() int64 { return t.CL + t.Burst }

// DefaultM1Timing returns Table 8's DRAM timings (DDR4-3200-ish):
// t_RCD = CL = t_RP = 13.75 ns, t_WR = 15 ns, and a 64-B burst of 8 beats
// on a 64-bit 1.6 GT/s channel (5 ns).
func DefaultM1Timing() Timing {
	return Timing{
		TRCD:  Cycles(13.75),
		TRP:   Cycles(13.75),
		CL:    Cycles(13.75),
		TWR:   Cycles(15),
		Burst: Cycles(5),
		TREFI: Cycles(7800), // 7.8 us average refresh interval
		TRFC:  Cycles(350),  // 350 ns refresh cycle time
	}
}

// DefaultM2Timing returns Table 8's NVM timings: t_RCD ten times that of
// M1 (137.5 ns) and a highly asymmetric write-recovery latency
// t_WR = 2 x t_RCD = 275 ns. CL, t_RP and the burst match M1 because the
// module sits on the same channel.
func DefaultM2Timing() Timing {
	m1 := DefaultM1Timing()
	return Timing{
		TRCD:  Cycles(137.5),
		TRP:   m1.TRP,
		CL:    m1.CL,
		TWR:   Cycles(275),
		Burst: m1.Burst,
	}
}

// Geometry describes one module's structure (per channel). Rows-per-bank is
// what differs between M1 and M2 in Table 8 (1K vs 8K): same device count,
// eight times the density.
type Geometry struct {
	Banks       int   // banks per rank (Table 8: 16)
	RowBytes    int64 // row-buffer size in bytes (Table 8: 8 KB)
	RowsPerBank int64 // rows per bank
}

// Capacity returns the module's total byte capacity.
func (g Geometry) Capacity() int64 {
	return int64(g.Banks) * g.RowBytes * g.RowsPerBank
}

// Decompose maps a byte address within the module to (bank, row). Rows are
// striped across banks so that consecutive rows land in different banks,
// preserving bank-level parallelism for streaming accesses.
func (g Geometry) Decompose(addr int64) (bank int, row int64) {
	rowIdx := addr / g.RowBytes
	bank = int(rowIdx % int64(g.Banks))
	row = rowIdx / int64(g.Banks)
	return bank, row
}

// GeometryForCapacity builds a Geometry with at least the given total
// capacity, keeping Table 8's 16 banks and 8-KB rows (rows per bank are
// rounded up so carve-outs like the Swap-group Table always fit).
func GeometryForCapacity(capacity int64) Geometry {
	g := Geometry{Banks: 16, RowBytes: 8 << 10}
	per := int64(g.Banks) * g.RowBytes
	g.RowsPerBank = (capacity + per - 1) / per
	if g.RowsPerBank < 1 {
		g.RowsPerBank = 1
	}
	return g
}
