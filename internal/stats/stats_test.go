package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almost(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64 // NaN means "want NaN"
	}{
		{"nil", nil, math.NaN()},
		{"empty", []float64{}, math.NaN()},
		{"single", []float64{7.5}, 7.5},
		{"pair", []float64{2, 8}, 4},
		{"all equal", []float64{1, 1, 1}, 1},
		{"all equal non-unit", []float64{0.3, 0.3, 0.3, 0.3}, 0.3},
		{"negative element", []float64{1, -1}, math.NaN()},
		{"zero element", []float64{4, 0, 9}, math.NaN()},
		// The log-sum formulation must survive products that would
		// overflow or underflow float64 if multiplied directly.
		{"overflowing product", []float64{1e200, 1e200, 1e200}, 1e200},
		{"underflowing product", []float64{1e-200, 1e-200, 1e-200}, 1e-200},
		{"mixed magnitudes", []float64{1e-100, 1e100}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := GeoMean(c.xs)
			if math.IsNaN(c.want) {
				if !math.IsNaN(got) {
					t.Errorf("GeoMean(%v) = %v, want NaN", c.xs, got)
				}
				return
			}
			if !almost(got/c.want, 1, 1e-12) {
				t.Errorf("GeoMean(%v) = %v, want %v", c.xs, got, c.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev(constant) = %v, want 0", got)
	}
	// Population std dev of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almost(got, 1, 1e-12) {
		t.Errorf("StdDev(1,3) = %v, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated P50 = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmoother(t *testing.T) {
	s := NewSmoother(0.125)
	if s.Primed() {
		t.Error("new smoother should be unprimed")
	}
	if got := s.Add(8); got != 8 {
		t.Errorf("first Add should prime to the observation, got %v", got)
	}
	got := s.Add(16)
	want := 8 + 0.125*(16-8)
	if !almost(got, want, 1e-12) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	s.Reset()
	if s.Primed() || s.Value() != 0 {
		t.Error("Reset should unprime")
	}
}

func TestSmootherConvergesProperty(t *testing.T) {
	// Feeding a constant long enough converges to that constant.
	f := func(x float64, n uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := NewSmoother(0.125)
		for i := 0; i < int(n)+200; i++ {
			s.Add(x)
		}
		return almost(s.Value(), x, math.Abs(x)*1e-9+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxPlot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100} // 100 is an outlier
	bp := NewBoxPlot(xs)
	if bp.N != 9 {
		t.Errorf("N = %d", bp.N)
	}
	if bp.Median != 5 {
		t.Errorf("median = %v, want 5", bp.Median)
	}
	if len(bp.Outliers) != 1 || bp.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", bp.Outliers)
	}
	if bp.WhiskHigh > 8 || bp.WhiskLow < 1 {
		t.Errorf("whiskers [%v,%v] out of range", bp.WhiskLow, bp.WhiskHigh)
	}
	if bp.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	bp := NewBoxPlot(nil)
	if bp.N != 0 || len(bp.Outliers) != 0 {
		t.Errorf("empty box plot: %+v", bp)
	}
}

func TestBoxPlotOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		bp := NewBoxPlot(xs)
		return bp.Q1 <= bp.Median && bp.Median <= bp.Q3 &&
			bp.WhiskLow <= bp.WhiskHigh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4, 0, 10) // buckets [0,10) [10,20) [20,30) [30,40)
	h.Add(-5)
	h.Add(5)
	h.Add(15)
	h.Add(35)
	h.Add(45)
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[3] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Count != 5 {
		t.Errorf("count = %d", h.Count)
	}
	if !almost(h.Mean(), 19, 1e-12) {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("a", "bb")
	tb.AddRowf("x", 1.5)
	tb.AddRow("yyyy", "z")
	s := tb.String()
	if s == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"a", "bb", "x", "1.500", "yyyy", "z", "--"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}
