package stats

// Resilience tallies the fault-injection and graceful-degradation
// activity of one simulation: what was injected (by internal/fault),
// how the memory controller coped (retries, drops, stalls) and how the
// monitoring hardware degraded and recovered (internal/core). The zero
// value means a fault-free run.
type Resilience struct {
	// Injected fault counts, mirrored from the fault injector's tally.
	InjectedNVMReadFaults  int64
	InjectedNVMWriteFaults int64
	InjectedStalls         int64
	InjectedStallCycles    int64
	InjectedQACCorruptions int64
	InjectedSFCorruptions  int64

	// Controller-side tolerance of NVM transients.
	Retries int64 // faulted bursts re-issued after backoff
	Drops   int64 // bursts that exhausted the retry budget

	// Monitoring-side degradation.
	CorruptQACUpdates int64 // MDM statistics updates rejected as corrupt
	ImplausibleSFs    int64 // RSM slowdown factors rejected by sanity checks
	DegradedEntries   int64 // times monitoring entered degraded mode
	DegradedCycles    int64 // cycles spent with degraded decision-making
	DegradedDecisions int64 // accesses decided by the fallback policy
}

// Add accumulates other into r.
func (r *Resilience) Add(other Resilience) {
	r.InjectedNVMReadFaults += other.InjectedNVMReadFaults
	r.InjectedNVMWriteFaults += other.InjectedNVMWriteFaults
	r.InjectedStalls += other.InjectedStalls
	r.InjectedStallCycles += other.InjectedStallCycles
	r.InjectedQACCorruptions += other.InjectedQACCorruptions
	r.InjectedSFCorruptions += other.InjectedSFCorruptions
	r.Retries += other.Retries
	r.Drops += other.Drops
	r.CorruptQACUpdates += other.CorruptQACUpdates
	r.ImplausibleSFs += other.ImplausibleSFs
	r.DegradedEntries += other.DegradedEntries
	r.DegradedCycles += other.DegradedCycles
	r.DegradedDecisions += other.DegradedDecisions
}

// Any reports whether any fault or degradation activity was recorded.
func (r Resilience) Any() bool {
	return r != Resilience{}
}
