// Package stats provides the small statistical toolkit used across the
// ProFess simulator: running counters, exponential smoothing (as used by the
// Relative-Slowdown Monitor), summary statistics, and the box-plot summaries
// that the paper uses to present single-program results (Fig. 5).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. An empty slice and non-positive
// entries are rejected by returning NaN, since a geometric mean is undefined
// for them — callers that want a sentinel must check, not read a silent 0
// that looks like a catastrophic slowdown.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Smoother implements simple exponential smoothing, avg += alpha*(x - avg),
// exactly as RSM applies it to its counters (the paper uses alpha = 0.125).
// The zero value is unprimed: the first observation becomes the average.
type Smoother struct {
	Alpha  float64
	avg    float64
	primed bool
}

// NewSmoother returns a Smoother with the given smoothing parameter.
func NewSmoother(alpha float64) *Smoother {
	return &Smoother{Alpha: alpha}
}

// Add feeds an observation and returns the updated average.
func (s *Smoother) Add(x float64) float64 {
	if !s.primed {
		s.avg = x
		s.primed = true
		return s.avg
	}
	s.avg += s.Alpha * (x - s.avg)
	return s.avg
}

// Value returns the current smoothed average (0 if nothing was added).
func (s *Smoother) Value() float64 { return s.avg }

// Primed reports whether at least one observation has been added.
func (s *Smoother) Primed() bool { return s.primed }

// Reset clears the smoother to its unprimed state.
func (s *Smoother) Reset() { s.avg, s.primed = 0, false }

// BoxPlot is the five-number summary (plus outliers and geometric mean) used
// by the paper's Fig. 5 presentation: the box spans the first and third
// quartiles, whiskers cover the data range within 1.5 IQR, "+" markers are
// outliers, the red line is the median and the red dot the geometric mean.
type BoxPlot struct {
	Q1, Median, Q3      float64
	WhiskLow, WhiskHigh float64
	Outliers            []float64
	GeoMean             float64
	N                   int
}

// NewBoxPlot computes the box-plot summary of xs (Tukey's convention).
func NewBoxPlot(xs []float64) BoxPlot {
	bp := BoxPlot{N: len(xs)}
	if len(xs) == 0 {
		return bp
	}
	bp.Q1 = Percentile(xs, 25)
	bp.Median = Percentile(xs, 50)
	bp.Q3 = Percentile(xs, 75)
	bp.GeoMean = GeoMean(xs)
	iqr := bp.Q3 - bp.Q1
	loFence := bp.Q1 - 1.5*iqr
	hiFence := bp.Q3 + 1.5*iqr
	bp.WhiskLow = math.Inf(1)
	bp.WhiskHigh = math.Inf(-1)
	for _, x := range xs {
		if x < loFence || x > hiFence {
			bp.Outliers = append(bp.Outliers, x)
			continue
		}
		if x < bp.WhiskLow {
			bp.WhiskLow = x
		}
		if x > bp.WhiskHigh {
			bp.WhiskHigh = x
		}
	}
	if math.IsInf(bp.WhiskLow, 1) { // all points were outliers
		bp.WhiskLow, bp.WhiskHigh = bp.Median, bp.Median
	}
	sort.Float64s(bp.Outliers)
	return bp
}

// String renders the summary on one line.
func (bp BoxPlot) String() string {
	return fmt.Sprintf("n=%d whisk=[%.3f,%.3f] box=[%.3f,%.3f] med=%.3f gmean=%.3f outliers=%d",
		bp.N, bp.WhiskLow, bp.WhiskHigh, bp.Q1, bp.Q3, bp.Median, bp.GeoMean, len(bp.Outliers))
}

// Histogram is a fixed-bucket integer histogram.
type Histogram struct {
	Buckets []int64
	Width   float64
	Lo      float64
	Over    int64 // observations above the last bucket
	Under   int64 // observations below Lo
	Count   int64
	Sum     float64
}

// NewHistogram creates a histogram with n buckets of the given width
// starting at lo.
func NewHistogram(n int, lo, width float64) *Histogram {
	return &Histogram{Buckets: make([]int64, n), Width: width, Lo: lo}
}

// Reset zeroes every bucket and counter, returning the histogram to its
// just-built state without reallocating the bucket array.
func (h *Histogram) Reset() {
	clear(h.Buckets)
	h.Over, h.Under, h.Count = 0, 0, 0
	h.Sum = 0
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Count++
	h.Sum += x
	if x < h.Lo {
		h.Under++
		return
	}
	i := int((x - h.Lo) / h.Width)
	if i >= len(h.Buckets) {
		h.Over++
		return
	}
	h.Buckets[i]++
}

// Mean returns the mean of all added observations.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an approximate q-quantile (0 < q <= 1): the midpoint of
// the bucket containing the q-th observation. Under/overflow observations
// map to the histogram's bounds.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	seen := h.Under
	if seen >= target {
		return h.Lo
	}
	for i, n := range h.Buckets {
		seen += n
		if seen >= target {
			return h.Lo + (float64(i)+0.5)*h.Width
		}
	}
	return h.Lo + float64(len(h.Buckets))*h.Width // overflow bound
}
