package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned columns.
// The benchmark harness uses it to print paper-style tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// AddRow appends one row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row where every cell is produced by fmt.Sprintf on the
// corresponding (format, value) pair convenience: values are formatted with
// %v unless they are float64, which use %.3f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// String renders the table with space-padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, len(c))
			} else if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
