package trace

import (
	"testing"
	"testing/quick"
)

// MustNewGenerator is the test-only convenience for tables of known-good
// parameters; library code returns errors instead of panicking.
func MustNewGenerator(p Params) *Generator {
	g, err := NewGenerator(p)
	if err != nil {
		panic(err)
	}
	return g
}

func baseParams(pattern Pattern) Params {
	return Params{
		Name:      "test",
		Footprint: 1 << 20,
		Pattern:   pattern,
		WriteFrac: 0.3,
		GapMean:   20,
		Streams:   4,
		HotFrac:   0.1,
		HotProb:   0.6,
		DepFrac:   0.5,
		Seed:      99,
	}
}

func TestValidation(t *testing.T) {
	p := baseParams(Stream)
	p.Footprint = 100
	if _, err := NewGenerator(p); err == nil {
		t.Error("tiny footprint should be rejected")
	}
	p = baseParams(Stream)
	p.GapMean = 0
	if _, err := NewGenerator(p); err == nil {
		t.Error("zero gap should be rejected")
	}
}

func TestDeterminism(t *testing.T) {
	for _, pat := range []Pattern{Stream, PointerChase, StridedRandom, Mixed} {
		a := MustNewGenerator(baseParams(pat))
		b := MustNewGenerator(baseParams(pat))
		for i := 0; i < 5000; i++ {
			ra, rb := a.Next(), b.Next()
			if ra != rb {
				t.Fatalf("%v: diverged at ref %d: %+v vs %+v", pat, i, ra, rb)
			}
		}
	}
}

func TestResetReproduces(t *testing.T) {
	g := MustNewGenerator(baseParams(PointerChase))
	var first []Ref
	for i := 0; i < 1000; i++ {
		first = append(first, g.Next())
	}
	g.Reset()
	for i := 0; i < 1000; i++ {
		if r := g.Next(); r != first[i] {
			t.Fatalf("Reset did not reproduce stream at ref %d", i)
		}
	}
}

func TestAddressesInFootprintAligned(t *testing.T) {
	for _, pat := range []Pattern{Stream, PointerChase, StridedRandom, Mixed} {
		g := MustNewGenerator(baseParams(pat))
		for i := 0; i < 20000; i++ {
			r := g.Next()
			if r.VAddr < 0 || r.VAddr >= g.Footprint() {
				t.Fatalf("%v: address %d outside footprint %d", pat, r.VAddr, g.Footprint())
			}
			if r.VAddr%64 != 0 {
				t.Fatalf("%v: address %d not 64-B aligned", pat, r.VAddr)
			}
		}
	}
}

func TestWriteFraction(t *testing.T) {
	g := MustNewGenerator(baseParams(Stream))
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("write fraction %v, want ~0.3", frac)
	}
}

func TestGapMean(t *testing.T) {
	g := MustNewGenerator(baseParams(StridedRandom))
	var sum int64
	const n = 50000
	for i := 0; i < n; i++ {
		gap := g.Next().Gap
		if gap < 1 {
			t.Fatalf("gap %d < 1", gap)
		}
		sum += int64(gap)
	}
	mean := float64(sum) / n
	// Uniform in [GapMean/2, 3*GapMean/2) has mean ~GapMean.
	if mean < 17 || mean > 23 {
		t.Errorf("gap mean %v, want ~20", mean)
	}
}

func TestStreamSequentiality(t *testing.T) {
	p := baseParams(Stream)
	p.Streams = 1
	p.WriteFrac = 0
	g := MustNewGenerator(p)
	prev := g.Next().VAddr
	for i := 0; i < 1000; i++ {
		cur := g.Next().VAddr
		want := (prev + 64) % p.Footprint
		if cur != want {
			t.Fatalf("single stream not sequential: %d -> %d", prev, cur)
		}
		prev = cur
	}
}

func TestStreamsNoDependences(t *testing.T) {
	g := MustNewGenerator(baseParams(Stream))
	for i := 0; i < 10000; i++ {
		if g.Next().Dep {
			t.Fatal("stream references must not be dependent")
		}
	}
}

func TestPointerChaseDependenceFraction(t *testing.T) {
	p := baseParams(PointerChase)
	p.LinesPerTouch = 1
	g := MustNewGenerator(p)
	dep := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Dep {
			dep++
		}
	}
	frac := float64(dep) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("dep fraction %v, want ~0.5", frac)
	}
}

func TestHotSkewConcentratesAccesses(t *testing.T) {
	p := baseParams(PointerChase)
	p.LinesPerTouch = 1
	p.DepFrac = 0
	p.PhaseRefs = 0 // static hot set at the footprint start
	g := MustNewGenerator(p)
	hotBytes := int64(float64(p.Footprint) * p.HotFrac)
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().VAddr < hotBytes {
			hot++
		}
	}
	frac := float64(hot) / n
	// HotProb 0.6 plus uniform spill-in (~0.04): expect ~0.64.
	if frac < 0.55 || frac > 0.72 {
		t.Errorf("hot fraction %v, want ~0.64", frac)
	}
}

func TestPhaseRotationMovesHotSet(t *testing.T) {
	p := baseParams(PointerChase)
	p.DepFrac = 0
	p.LinesPerTouch = 1
	p.PhaseRefs = 10000
	g := MustNewGenerator(p)
	countHotStart := func() int {
		hotBytes := int64(float64(p.Footprint) * p.HotFrac)
		hits := 0
		for i := 0; i < 5000; i++ {
			if g.Next().VAddr < hotBytes {
				hits++
			}
		}
		return hits
	}
	before := countHotStart()
	for i := 0; i < 5000; i++ { // cross the phase boundary
		g.Next()
	}
	after := countHotStart()
	if after >= before/2 {
		t.Errorf("hot set did not move: before=%d after=%d", before, after)
	}
}

func TestLinesPerTouchSpatialLocality(t *testing.T) {
	p := baseParams(PointerChase)
	p.LinesPerTouch = 4
	p.DepFrac = 0
	g := MustNewGenerator(p)
	sequential := 0
	prev := g.Next().VAddr
	const n = 20000
	for i := 0; i < n; i++ {
		cur := g.Next().VAddr
		if cur == prev+64 {
			sequential++
		}
		prev = cur
	}
	// With mean 4 lines per touch, well over half of the references are
	// sequential continuations.
	if frac := float64(sequential) / n; frac < 0.5 {
		t.Errorf("sequential continuation fraction %v too low for LinesPerTouch=4", frac)
	}
}

func TestMixedAlternatesPhases(t *testing.T) {
	p := baseParams(Mixed)
	p.PhaseRefs = 2000
	g := MustNewGenerator(p)
	// In the stream phase, dependencies never occur; in the irregular
	// phase they do. Seeing both proves alternation.
	sawDep := false
	for i := 0; i < 10000; i++ {
		if g.Next().Dep {
			sawDep = true
			break
		}
	}
	if !sawDep {
		t.Error("mixed pattern never produced a dependent reference")
	}
}

func TestRefsCounter(t *testing.T) {
	g := MustNewGenerator(baseParams(Stream))
	for i := 0; i < 123; i++ {
		g.Next()
	}
	if g.Refs() != 123 {
		t.Errorf("Refs = %d", g.Refs())
	}
	g.Reset()
	if g.Refs() != 0 {
		t.Error("Reset should clear Refs")
	}
}

func TestPatternString(t *testing.T) {
	for _, c := range []struct {
		p    Pattern
		want string
	}{{Stream, "stream"}, {PointerChase, "pointer-chase"}, {StridedRandom, "strided-random"}, {Mixed, "mixed"}} {
		if c.p.String() != c.want {
			t.Errorf("%v", c.p)
		}
	}
}

func TestSeedChangesStreamProperty(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		p1, p2 := baseParams(StridedRandom), baseParams(StridedRandom)
		p1.Seed, p2.Seed = s1, s2
		g1, g2 := MustNewGenerator(p1), MustNewGenerator(p2)
		same := 0
		for i := 0; i < 200; i++ {
			if g1.Next().VAddr == g2.Next().VAddr {
				same++
			}
		}
		return same < 100 // different seeds should mostly differ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
