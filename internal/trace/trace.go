// Package trace synthesises the memory-reference behaviour of the SPEC
// CPU2006 programs in Table 9 of the ProFess paper. The real study drives
// the memory system with Pin-captured 500M-instruction SimPoints; those
// traces are proprietary, so — per the reproduction's substitution rule —
// each program is replaced by a deterministic generator that reproduces the
// properties that matter to migration policies:
//
//   - footprint (scaled with the rest of the system),
//   - last-level-cache miss density (instructions between misses),
//   - access-pattern class: streaming, pointer-chasing, strided-random or
//     mixed (the paper calls out mcf/omnetpp/libquantum as irregular and
//     soplex as mixed, citing [28]),
//   - write fraction (lbm is write-heavy),
//   - block-level hot/cold skew and phase changes, which create the reuse
//     statistics MDM's QAC machinery predicts from,
//   - dependence structure, which limits memory-level parallelism.
//
// A generator emits an ordered stream of 64-byte references at the
// L2-miss level; the simulated shared L3 filters them further before they
// reach the memory controller.
package trace

import (
	"fmt"

	"profess/internal/xrand"
)

// Ref is one 64-B memory reference at the L2-miss level.
type Ref struct {
	VAddr int64 // virtual byte address, 64-B aligned
	Write bool
	// Gap is the number of instructions the core executes between the
	// previous reference and this one (compute work).
	Gap int32
	// Dep marks the reference as data-dependent on the previous one:
	// the core may not issue it until the previous reference completes
	// (pointer chasing).
	Dep bool
}

// Pattern classifies a generator's access behaviour.
type Pattern uint8

const (
	// Stream: a set of sequential streams sweeping the footprint.
	Stream Pattern = iota
	// PointerChase: dependent, irregular block-to-block jumps with a
	// hot-set skew (mcf, omnetpp).
	PointerChase
	// StridedRandom: independent irregular accesses with mild skew (milc).
	StridedRandom
	// Mixed: alternating streaming and irregular phases (soplex).
	Mixed
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case PointerChase:
		return "pointer-chase"
	case StridedRandom:
		return "strided-random"
	case Mixed:
		return "mixed"
	}
	return fmt.Sprintf("pattern(%d)", p)
}

// Params fully describes one synthetic program. All sizes are in bytes and
// already scaled to the simulated system.
type Params struct {
	Name      string
	Footprint int64 // bytes touched by the program (page aligned by the OS layer)
	Pattern   Pattern
	WriteFrac float64 // fraction of references that are writes
	GapMean   int32   // mean instructions between references
	Streams   int     // concurrent streams (Stream/Mixed)
	HotFrac   float64 // fraction of the footprint that is hot
	HotProb   float64 // probability a reference targets the hot set
	DepFrac   float64 // fraction of references marked dependent
	// LinesPerTouch is how many consecutive 64-B lines a visit to a block
	// touches (spatial locality inside a 2-KB migration block).
	LinesPerTouch int
	// PhaseRefs rotates the hot set after this many references, modelling
	// working-set changes (0 = static hot set).
	PhaseRefs int64
	// RecentProb makes irregular patterns revisit one of the last
	// RecentWindow distinct blocks with this probability — the temporal
	// locality that real pointer-chasing codes exhibit (and that gives
	// the STC its filtering power, §3.2).
	RecentProb   float64
	RecentWindow int // default 32 when RecentProb > 0
	Seed         uint64
}

// Generator produces the reference stream for one program instance.
// It is deterministic: two generators with equal Params produce equal
// streams. Reset restarts the program for the paper's repeat-until-slowest
// methodology.
type Generator struct {
	p   Params
	rng *xrand.RNG

	refs      int64   // references emitted since Reset
	streams   []int64 // per-stream byte cursors
	strIdx    int
	phase     int64
	burstAddr int64 // current intra-block cursor
	burstLeft int
	recent    []int64 // ring of recently visited block addresses
	recentIdx int
}

const lineBytes = 64

// NewGenerator validates p and builds a generator.
func NewGenerator(p Params) (*Generator, error) {
	if p.Footprint < 4096 {
		return nil, fmt.Errorf("trace: %s: footprint %d too small", p.Name, p.Footprint)
	}
	if p.GapMean <= 0 {
		return nil, fmt.Errorf("trace: %s: GapMean must be positive", p.Name)
	}
	if p.LinesPerTouch <= 0 {
		p.LinesPerTouch = 1
	}
	if p.Streams <= 0 {
		p.Streams = 1
	}
	if p.RecentProb > 0 && p.RecentWindow <= 0 {
		p.RecentWindow = 32
	}
	g := &Generator{p: p}
	g.Reset()
	return g, nil
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.p }

// Footprint returns the byte footprint.
func (g *Generator) Footprint() int64 { return g.p.Footprint }

// Reset restarts the program from its initial state.
func (g *Generator) Reset() {
	g.rng = xrand.New(g.p.Seed)
	g.refs = 0
	g.phase = 0
	g.burstLeft = 0
	g.strIdx = 0
	g.recent = nil
	g.recentIdx = 0
	g.streams = make([]int64, g.p.Streams)
	span := g.p.Footprint / int64(g.p.Streams)
	for i := range g.streams {
		g.streams[i] = int64(i) * span
	}
}

// Next returns the next reference.
func (g *Generator) Next() Ref {
	g.refs++
	if g.p.PhaseRefs > 0 && g.refs%g.p.PhaseRefs == 0 {
		g.phase++
	}
	var addr int64
	var dep bool
	if g.burstLeft > 0 {
		// Continue touching consecutive lines of the current block.
		g.burstLeft--
		g.burstAddr += lineBytes
		addr = g.burstAddr % g.p.Footprint
		dep = false
	} else {
		addr, dep = g.nextBlockVisit()
		g.burstAddr = addr
		g.burstLeft = g.burstLinesLeft()
	}
	write := g.rng.Bool(g.p.WriteFrac)
	gap := g.gap()
	return Ref{VAddr: addr &^ (lineBytes - 1), Write: write, Gap: gap, Dep: dep}
}

// burstLinesLeft draws how many further lines this block visit touches.
func (g *Generator) burstLinesLeft() int {
	n := g.p.LinesPerTouch
	if n <= 1 {
		return 0
	}
	// Uniform in [1, 2n-1] keeps the mean at n while varying visits.
	return g.rng.Intn(2*n-1) + 1 - 1
}

// gap draws the instruction gap: uniform in [GapMean/2, 3*GapMean/2].
func (g *Generator) gap() int32 {
	m := g.p.GapMean
	if m <= 1 {
		return 1
	}
	return m/2 + int32(g.rng.Intn(int(m)))
}

// nextBlockVisit picks the first line of the next visited block.
func (g *Generator) nextBlockVisit() (addr int64, dep bool) {
	switch g.p.Pattern {
	case Stream:
		return g.nextStream(), false
	case PointerChase:
		return g.nextIrregular(), g.rng.Bool(g.p.DepFrac)
	case StridedRandom:
		return g.nextIrregular(), g.rng.Bool(g.p.DepFrac)
	case Mixed:
		// Alternate phases every PhaseRefs (or 1/8 footprint of refs).
		per := g.p.PhaseRefs
		if per == 0 {
			per = g.p.Footprint / lineBytes / 8
			if per < 1024 {
				per = 1024
			}
		}
		if (g.refs/per)%2 == 0 {
			return g.nextStream(), false
		}
		return g.nextIrregular(), g.rng.Bool(g.p.DepFrac)
	}
	return g.nextStream(), false
}

// nextStream advances the round-robin streams by one line each call.
func (g *Generator) nextStream() int64 {
	i := g.strIdx
	g.strIdx = (g.strIdx + 1) % len(g.streams)
	a := g.streams[i]
	g.streams[i] = (a + lineBytes) % g.p.Footprint
	return a
}

// nextIrregular draws a block under the hot/cold skew, rotating the hot
// window with the phase counter and revisiting recent blocks with
// RecentProb (temporal locality).
func (g *Generator) nextIrregular() int64 {
	if g.p.RecentProb > 0 && len(g.recent) > 0 && g.rng.Bool(g.p.RecentProb) {
		return g.recent[g.rng.Intn(len(g.recent))]
	}
	blocks := g.p.Footprint / lineBytes
	hotBlocks := int64(float64(blocks) * g.p.HotFrac)
	if hotBlocks < 1 {
		hotBlocks = 1
	}
	hotBase := (g.phase * hotBlocks) % blocks
	var b int64
	if g.p.HotProb > 0 && g.rng.Bool(g.p.HotProb) {
		b = (hotBase + g.rng.Int63n(hotBlocks)) % blocks
	} else {
		b = g.rng.Int63n(blocks)
	}
	addr := b * lineBytes
	if g.p.RecentProb > 0 {
		if len(g.recent) < g.p.RecentWindow {
			g.recent = append(g.recent, addr)
		} else {
			g.recent[g.recentIdx] = addr
			g.recentIdx = (g.recentIdx + 1) % len(g.recent)
		}
	}
	return addr
}

// Refs returns the number of references emitted since the last Reset.
func (g *Generator) Refs() int64 { return g.refs }
