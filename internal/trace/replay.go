package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Source is a stream of references. Generator synthesises one; Replayer
// replays one captured to a file. The core model accepts either, so
// captured traces (or externally produced ones in the same format) can
// drive the simulator exactly like the built-in generators.
type Source interface {
	// Next returns the next reference.
	Next() Ref
	// Reset restarts the stream from the beginning.
	Reset()
	// Footprint returns the byte footprint addressed by the stream.
	Footprint() int64
	// Params describes the stream (Name, GapMean and Footprint must be
	// meaningful; pattern fields may be zero for replays).
	Params() Params
}

var _ Source = (*Generator)(nil)

// File format ("PFTR1"):
//
//	magic   [5]byte  "PFTR1"
//	name    uvarint length + bytes
//	footprint, gapMean, count  uvarint each
//	records: per reference
//	    uvarint line index (VAddr/64)
//	    uvarint gap
//	    flags byte (bit0 write, bit1 dep)
const traceMagic = "PFTR1"

// Decoder sanity bounds: a gap must fit the Ref's int32 and a line index
// must keep VAddr = line*64 a positive int64. Values beyond these cannot
// come from WriteTrace and mark a corrupt or hostile file.
const (
	maxGap  = 1<<31 - 1
	maxLine = (1 << 62) / 64
)

// WriteTrace captures n references from src into w.
func WriteTrace(w io.Writer, src Source, n int64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	p := src.Params()
	if err := putUvarint(uint64(len(p.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(p.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(src.Footprint())); err != nil {
		return err
	}
	if err := putUvarint(uint64(p.GapMean)); err != nil {
		return err
	}
	if err := putUvarint(uint64(n)); err != nil {
		return err
	}
	for i := int64(0); i < n; i++ {
		r := src.Next()
		if err := putUvarint(uint64(r.VAddr / 64)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Gap)); err != nil {
			return err
		}
		var flags byte
		if r.Write {
			flags |= 1
		}
		if r.Dep {
			flags |= 2
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Replayer replays a captured trace, wrapping around at the end so it can
// drive the repeat-until-slowest methodology like a Generator.
type Replayer struct {
	name      string
	footprint int64
	gapMean   int32
	refs      []Ref
	pos       int
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Replayer, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	nameLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	fp, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if fp > 1<<62 {
		return nil, fmt.Errorf("trace: implausible footprint %d", fp)
	}
	gap, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if gap > maxGap {
		return nil, fmt.Errorf("trace: implausible mean gap %d", gap)
	}
	count, err := readUvarint()
	if err != nil {
		return nil, err
	}
	rp := &Replayer{name: string(name), footprint: int64(fp), gapMean: int32(gap)}
	// The header count is untrusted input: pre-size only up to a modest
	// bound and let append grow the slice if the records really are there —
	// a corrupt count then costs nothing instead of a giant allocation.
	prealloc := count
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	rp.refs = make([]Ref, 0, prealloc)
	for i := uint64(0); i < count; i++ {
		line, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		if line > maxLine {
			return nil, fmt.Errorf("trace: record %d: implausible line index %d", i, line)
		}
		g, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if g > maxGap {
			return nil, fmt.Errorf("trace: record %d: implausible gap %d", i, g)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		rp.refs = append(rp.refs, Ref{
			VAddr: int64(line) * 64,
			Gap:   int32(g),
			Write: flags&1 != 0,
			Dep:   flags&2 != 0,
		})
	}
	if len(rp.refs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return rp, nil
}

// Next implements Source, wrapping at the end of the capture.
func (r *Replayer) Next() Ref {
	ref := r.refs[r.pos]
	r.pos++
	if r.pos == len(r.refs) {
		r.pos = 0
	}
	return ref
}

// Reset implements Source.
func (r *Replayer) Reset() { r.pos = 0 }

// Footprint implements Source.
func (r *Replayer) Footprint() int64 { return r.footprint }

// Params implements Source (pattern fields are zero for replays).
func (r *Replayer) Params() Params {
	return Params{Name: r.name, Footprint: r.footprint, GapMean: r.gapMean}
}

// Len returns the number of captured references.
func (r *Replayer) Len() int { return len(r.refs) }

var _ Source = (*Replayer)(nil)
