package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace feeds arbitrary bytes to the binary trace decoder. The
// decoder must never panic or allocate unboundedly on corrupt input, and
// every trace it does accept must satisfy the Replayer's invariants (the
// simulator consumes VAddr and Gap without further checks).
func FuzzReadTrace(f *testing.F) {
	// Seed 1: a genuine small capture, so the fuzzer starts from a valid
	// encoding and mutates inward.
	g, err := NewGenerator(Params{Name: "seed", Footprint: 8192, GapMean: 10, WriteFrac: 0.3, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteTrace(&valid, g, 32); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	// Seeds 2-6: the interesting corruption classes — truncations, a bad
	// magic, and a header whose count promises records that never arrive
	// (the giant-allocation hazard).
	f.Add([]byte{})
	f.Add([]byte("PFTR"))
	f.Add([]byte("XXXXX"))
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(append([]byte("PFTR1"),
		0x00,                                                       // name length 0
		0x80, 0x80, 0x01,                                           // footprint
		0x0a,                                                       // gap mean
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, // count = 2^63+
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		rp, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected: the only requirement is not panicking
		}
		if rp.Len() == 0 {
			t.Fatal("decoder accepted an empty trace")
		}
		if rp.Footprint() < 0 {
			t.Fatalf("negative footprint %d", rp.Footprint())
		}
		if rp.Params().GapMean < 0 {
			t.Fatalf("negative mean gap %d", rp.Params().GapMean)
		}
		for i := 0; i < rp.Len(); i++ {
			r := rp.Next()
			if r.VAddr < 0 {
				t.Fatalf("record %d: negative VAddr %d", i, r.VAddr)
			}
			if r.Gap < 0 {
				t.Fatalf("record %d: negative gap %d", i, r.Gap)
			}
		}
	})
}

// FuzzRoundTrip checks that whatever ReadTrace accepts survives a
// write-read cycle unchanged — the property professtrace relies on when
// re-capturing an inspected trace.
func FuzzRoundTrip(f *testing.F) {
	g, err := NewGenerator(Params{Name: "rt", Footprint: 8192, GapMean: 7, WriteFrac: 0.5, DepFrac: 0.2, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteTrace(&valid, g, 16); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		rp, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, rp, int64(rp.Len())); err != nil {
			t.Fatalf("re-encoding an accepted trace: %v", err)
		}
		rp2, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded trace: %v", err)
		}
		if rp2.Len() != rp.Len() {
			t.Fatalf("round trip changed length: %d != %d", rp2.Len(), rp.Len())
		}
		rp.Reset()
		for i := 0; i < rp.Len(); i++ {
			a, b := rp.Next(), rp2.Next()
			if a != b {
				t.Fatalf("record %d changed: %+v != %+v", i, a, b)
			}
		}
	})
}
