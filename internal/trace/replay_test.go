package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	p := baseParams(PointerChase)
	gen := MustNewGenerator(p)
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	rp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != n {
		t.Fatalf("len = %d, want %d", rp.Len(), n)
	}
	if rp.Footprint() != p.Footprint {
		t.Errorf("footprint = %d", rp.Footprint())
	}
	if rp.Params().Name != p.Name || rp.Params().GapMean != p.GapMean {
		t.Errorf("params = %+v", rp.Params())
	}
	// The replay must equal the original stream.
	gen.Reset()
	for i := 0; i < n; i++ {
		want, got := gen.Next(), rp.Next()
		if want != got {
			t.Fatalf("ref %d: %+v != %+v", i, got, want)
		}
	}
}

func TestReplayerWrapsAround(t *testing.T) {
	gen := MustNewGenerator(baseParams(Stream))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, gen, 10); err != nil {
		t.Fatal(err)
	}
	rp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	first := rp.Next()
	for i := 0; i < 9; i++ {
		rp.Next()
	}
	if again := rp.Next(); again != first {
		t.Error("replayer should wrap to the beginning")
	}
	rp.Reset()
	if r := rp.Next(); r != first {
		t.Error("Reset should restart the stream")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not a trace at all")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	// Truncated after the header.
	gen := MustNewGenerator(baseParams(Stream))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, gen, 100); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace should fail")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	gen := MustNewGenerator(baseParams(Stream))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, gen, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil {
		t.Error("zero-record trace should be rejected")
	}
}
