package profess

import (
	"testing"
)

// Sweep benchmarks measure the planner end to end on a small
// two-experiment sweep (the fig2/fig10 pair, whose PoM cells overlap):
//
//	BenchmarkSweep_Unplanned  the pre-planner behaviour — experiments
//	                          simulate as they render, dedup only within
//	                          the in-process cache
//	BenchmarkSweep_Cold       plan + execute + render with an empty cache
//	BenchmarkSweep_Warm       the same sweep against a populated disk
//	                          tier — zero simulations
//
// Reported metrics: cells (distinct simulations planned), dedup-x (cell
// requests per distinct cell), sims / disk-hits per regeneration.
func sweepBenchOpts() ExpOptions {
	return ExpOptions{Instructions: 400_000, Workloads: []string{"w09"}, Parallelism: 1}
}

func runSweepExperiments(b *testing.B, opts ExpOptions) {
	b.Helper()
	for _, e := range sweepTestExperiments(opts, nil) {
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweep_Unplanned(b *testing.B) {
	opts := sweepBenchOpts()
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		runSweepExperiments(b, opts)
	}
	reportCacheMetrics(b)
}

func BenchmarkSweep_Cold(b *testing.B) {
	opts := sweepBenchOpts()
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		plan, err := PlanSweep(sweepTestExperiments(opts, nil))
		if err != nil {
			b.Fatal(err)
		}
		if err := plan.Execute(nil, opts.Parallelism); err != nil {
			b.Fatal(err)
		}
		runSweepExperiments(b, opts)
		if i == 0 {
			b.ReportMetric(float64(len(plan.Cells)), "cells")
			b.ReportMetric(float64(plan.Requested)/float64(len(plan.Cells)), "dedup-x")
		}
	}
	reportCacheMetrics(b)
}

func BenchmarkSweep_Warm(b *testing.B) {
	opts := sweepBenchOpts()
	dir := b.TempDir()
	ResetRunCache()
	if err := SetRunCacheDir(dir); err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := SetRunCacheDir(""); err != nil {
			b.Fatal(err)
		}
		ResetRunCache()
	}()
	// Populate the disk tier once; the measured iterations then model a
	// fresh process re-rendering the sweep from disk.
	runSweepExperiments(b, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		plan, err := PlanSweep(sweepTestExperiments(opts, nil))
		if err != nil {
			b.Fatal(err)
		}
		if err := plan.Execute(nil, opts.Parallelism); err != nil {
			b.Fatal(err)
		}
		runSweepExperiments(b, opts)
	}
	d := RunCacheDetail()
	b.ReportMetric(float64(d.Sims), "sims")
	b.ReportMetric(float64(d.DiskHits), "disk-hits")
}
