package profess

import (
	"fmt"
	"math"
	"strings"
	"time"

	"profess/internal/sim"
	"profess/internal/stats"
	"profess/internal/workload"
)

// Validation of the sampled-simulation tier (interval sampling with
// functional fast-forward, internal/sample + sim.Config.SampleFraction)
// against full-fidelity runs: every Table 10 mix runs both ways and the
// report compares per-program IPC point by point alongside the wall-clock
// cost of each tier. The committed envelope (testdata/sample_envelope.json,
// enforced by sample_test.go) pins the accuracy the tier must hold and the
// speedup it must deliver; the CSV is the scatter behind the fidelity
// ladder in EXPERIMENTS.md.

// SampleValRow is one workload/scheme cell of the comparison.
type SampleValRow struct {
	Workload string
	Scheme   Scheme
	Programs int

	// Windows is the number of detailed windows the sampled run measured.
	Windows int64
	// MeanAbsIPCError / MaxAbsIPCError summarise |sampled-full|/full over
	// the cell's programs.
	MeanAbsIPCError float64
	MaxAbsIPCError  float64

	// FullSec and SampledSec are the uncached wall times of the two runs;
	// Speedup is their ratio.
	FullSec    float64
	SampledSec float64
	Speedup    float64
}

// SampleValReport aggregates the sampled-vs-full matrix.
type SampleValReport struct {
	Fraction float64
	Window   int64
	Rows     []SampleValRow

	// Error summary over every (workload, program) point.
	MeanAbsIPCError float64
	MaxAbsIPCError  float64
	// Wall-time totals across all cells; Speedup is their ratio — the
	// whole-sweep speedup, which weights long cells more, exactly as a
	// real sweep would experience it.
	FullSec    float64
	SampledSec float64
	Speedup    float64
}

// RunSampleValidation runs every workload of the options under the given
// schemes twice — full fidelity and sampled at the given fraction and
// detailed-window length (0 = the config default) — and reports per-cell
// IPC error and wall-clock speedup. Runs bypass the run
// cache (both tiers simulate honestly, or the timings would be fiction);
// within one cell the full and sampled runs execute sequentially on the
// same worker so they contend identically.
func RunSampleValidation(fraction float64, window int64, schemes []Scheme, opts ExpOptions) (*SampleValReport, error) {
	if !(fraction > 0 && fraction < 1) {
		return nil, fmt.Errorf("sample validation: fraction %g outside (0, 1)", fraction)
	}
	full := opts.multiConfig()
	sampled := full
	sampled.SampleFraction = fraction
	sampled.SampleWindow = window

	type job struct {
		wl     string
		scheme Scheme
	}
	var jobs []job
	for _, w := range opts.workloads() {
		for _, s := range schemes {
			jobs = append(jobs, job{w, s})
		}
	}
	rows := make([]SampleValRow, len(jobs))
	err := parallelFor(opts.ctx(), len(jobs), opts.Parallelism, func(i int) error {
		w, err := workload.WorkloadByName(jobs[i].wl)
		if err != nil {
			return err
		}
		specs, err := sim.SpecsForWorkload(w, full.Scale)
		if err != nil {
			return err
		}
		t0 := time.Now()
		fres, err := runSimUncached(opts.ctx(), full, specs, jobs[i].scheme)
		if err != nil {
			return fmt.Errorf("%s/%s full: %w", jobs[i].wl, jobs[i].scheme, err)
		}
		tFull := time.Since(t0)
		t0 = time.Now()
		sres, err := runSimUncached(opts.ctx(), sampled, specs, jobs[i].scheme)
		if err != nil {
			return fmt.Errorf("%s/%s sampled: %w", jobs[i].wl, jobs[i].scheme, err)
		}
		tSampled := time.Since(t0)

		row := SampleValRow{
			Workload:   jobs[i].wl,
			Scheme:     jobs[i].scheme,
			Programs:   len(specs),
			Windows:    sres.Sampling.Windows,
			FullSec:    tFull.Seconds(),
			SampledSec: tSampled.Seconds(),
		}
		for pi := range fres.PerCore {
			f := fres.PerCore[pi].IPC
			if f <= 0 {
				continue
			}
			e := math.Abs(sres.PerCore[pi].IPC-f) / f
			row.MeanAbsIPCError += e
			if e > row.MaxAbsIPCError {
				row.MaxAbsIPCError = e
			}
		}
		row.MeanAbsIPCError /= float64(len(fres.PerCore))
		if row.SampledSec > 0 {
			row.Speedup = row.FullSec / row.SampledSec
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &SampleValReport{Fraction: fraction, Window: sampled.EffectiveSampleWindow(), Rows: rows}
	var points float64
	for _, r := range rows {
		rep.MeanAbsIPCError += r.MeanAbsIPCError * float64(r.Programs)
		points += float64(r.Programs)
		if r.MaxAbsIPCError > rep.MaxAbsIPCError {
			rep.MaxAbsIPCError = r.MaxAbsIPCError
		}
		rep.FullSec += r.FullSec
		rep.SampledSec += r.SampledSec
	}
	if points > 0 {
		rep.MeanAbsIPCError /= points
	}
	if rep.SampledSec > 0 {
		rep.Speedup = rep.FullSec / rep.SampledSec
	}
	return rep, nil
}

// String renders the comparison table plus the aggregate summary.
func (r *SampleValReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sampled tier at fraction %.3g (window %d cycles)\n\n", r.Fraction, r.Window)
	t := stats.NewTable("workload", "scheme", "windows", "mean |e| %", "max |e| %", "full s", "sampled s", "speedup")
	for _, row := range r.Rows {
		t.AddRowf(row.Workload, string(row.Scheme), row.Windows,
			100*row.MeanAbsIPCError, 100*row.MaxAbsIPCError,
			row.FullSec, row.SampledSec, row.Speedup)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nIPC error: mean |e|=%.1f%% max |e|=%.1f%%   wall: full %.1fs sampled %.1fs (%.1fx)\n",
		100*r.MeanAbsIPCError, 100*r.MaxAbsIPCError, r.FullSec, r.SampledSec, r.Speedup)
	return b.String()
}

// CSV renders the scatter data: one row per (workload, scheme) cell.
func (r *SampleValReport) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("workload", "scheme", "windows", "mean_abs_ipc_error", "max_abs_ipc_error",
		"full_wall_s", "sampled_wall_s", "speedup") + "\n")
	for _, row := range r.Rows {
		b.WriteString(csvRow(row.Workload, string(row.Scheme), fmt.Sprintf("%d", row.Windows),
			f3(row.MeanAbsIPCError), f3(row.MaxAbsIPCError),
			f3(row.FullSec), f3(row.SampledSec), f3(row.Speedup)) + "\n")
	}
	return b.String()
}
