package profess

import (
	"fmt"
	"strings"
)

// CSVer is implemented by experiment reports that can render themselves as
// CSV for downstream plotting; cmd/professbench exposes it via -csv.
type CSVer interface {
	CSV() string
}

// csvRow joins cells with commas, quoting any cell containing a comma.
func csvRow(cells ...string) string {
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			cells[i] = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
	}
	return strings.Join(cells, ",")
}

func f3(v float64) string { return fmt.Sprintf("%.4f", v) }

// fg formats wide-range positive quantities (e.g. lifetimes in seconds)
// without the fixed-point precision loss of f3.
func fg(v float64) string { return fmt.Sprintf("%.6g", v) }

// CSV renders the Fig. 5-7 data: one row per (program, scheme).
func (r *SingleProgramReport) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("program", "scheme", "ipc", "m1_fraction", "stc_hit_rate", "avg_read_latency_cycles", "swaps", "nvm_lifetime_s") + "\n")
	for _, row := range r.Rows {
		b.WriteString(csvRow(row.Program, string(row.Scheme), f3(row.IPC), f3(row.M1Fraction),
			f3(row.STCHitRate), f3(row.AvgReadLat), fmt.Sprint(row.Swaps), fg(row.LifetimeSeconds)) + "\n")
	}
	return b.String()
}

// CSV renders the Fig. 8/9 data: one row per (program, STC entries).
func (r *STCSensitivityReport) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("program", "stc_entries", "ipc", "stc_hit_rate") + "\n")
	for _, row := range r.Rows {
		b.WriteString(csvRow(row.Program, fmt.Sprint(row.STCEntries), f3(row.IPC), f3(row.STCHitRate)) + "\n")
	}
	return b.String()
}

// CSV renders the Table 4 data.
func (r *SamplingAccuracyReport) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("program", "m_samp", "mean_sigma_req_pct", "sigma_raw_sfa_pct", "sigma_avg_sfa_pct", "mean_raw_sfa", "periods") + "\n")
	for _, c := range r.Cells {
		b.WriteString(csvRow(c.Program, fmt.Sprint(c.MSamp), f3(c.MeanSigmaReq), f3(c.SigmaRawSFA),
			f3(c.SigmaAvgSFA), f3(c.MeanRawSFA), fmt.Sprint(c.Periods)) + "\n")
	}
	return b.String()
}

// CSV renders a sensitivity sweep.
func (r *SensitivityReport) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("setting", "gmean_mdm_over_pom_ipc") + "\n")
	for _, p := range r.Points {
		b.WriteString(csvRow(p.Setting, f3(p.GeoMeanRatio)) + "\n")
	}
	return b.String()
}

// CSV renders the Figs. 10-15 data: one row per (workload, scheme), with
// per-program slowdowns flattened into separate rows at the end.
func (r *MultiProgramReport) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("workload", "scheme", "weighted_speedup", "max_slowdown",
		"energy_efficiency_req_per_joule", "swap_fraction", "avg_read_latency_cycles", "nvm_lifetime_s") + "\n")
	for _, c := range r.Cells {
		b.WriteString(csvRow(c.Workload, string(c.Scheme), f3(c.WeightedSpeedup), f3(c.MaxSlowdown),
			fmt.Sprintf("%.0f", c.EnergyEff), f3(c.SwapFraction), f3(c.AvgReadLat), fg(c.LifetimeSeconds)) + "\n")
	}
	b.WriteString("\n" + csvRow("workload", "scheme", "program", "slowdown") + "\n")
	for _, c := range r.Cells {
		for i, sdn := range c.Slowdowns {
			b.WriteString(csvRow(c.Workload, string(c.Scheme), c.Programs[i], f3(sdn)) + "\n")
		}
	}
	return b.String()
}

// CSV renders the MemPod AMMAT comparison.
func (r *AMMATReport) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("kind", "name", "ammat_mempod_over_pom") + "\n")
	for _, k := range sortedKeys(r.SingleRatio) {
		b.WriteString(csvRow("single", k, f3(r.SingleRatio[k])) + "\n")
	}
	for _, k := range sortedKeys(r.MultiRatio) {
		b.WriteString(csvRow("multi", k, f3(r.MultiRatio[k])) + "\n")
	}
	return b.String()
}

// Bars renders a simple horizontal ASCII bar chart of a normalised series
// (1.0 = baseline), used by professbench to sketch the figures in the
// terminal. Bars are scaled to width characters at maxVal.
func Bars(series map[string]float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var maxVal float64
	for _, v := range series {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal <= 0 {
		return ""
	}
	var b strings.Builder
	for _, k := range sortedKeys(series) {
		n := int(series[k] / maxVal * float64(width))
		fmt.Fprintf(&b, "%-8s %6.3f %s\n", k, series[k], strings.Repeat("#", n))
	}
	return b.String()
}
