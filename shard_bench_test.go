// Shard-scaling benchmark for BENCH_PR8.json: the Scale16 fleet at each
// worker count, reporting "shards", "speedup" (vs this run's shards=1
// point) and "gomaxprocs" so cmd/benchjson can render the scaling curve.
// Results are byte-identical across the sweep — the benchmark verifies
// that too — so speedup is purely an engine-throughput number, bounded
// above by GOMAXPROCS.
package profess

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"
)

func BenchmarkScale16Shards(b *testing.B) {
	cfg := Scale16Config(PaperScale)
	cfg.Instructions = 100_000
	specs, err := Fleet16Specs(cfg.Scale)
	if err != nil {
		b.Fatal(err)
	}
	var (
		baseNs   float64
		baseJSON []byte
	)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := cfg
			c.Shards = shards
			b.ResetTimer()
			start := time.Now()
			var last *Result
			for i := 0; i < b.N; i++ {
				// Bypass the run cache: every shard count shares one cache
				// key on purpose, and a cache hit here would time a lookup.
				res, err := runSimUncached(context.Background(), c, specs, SchemeProFess)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			perOp := float64(time.Since(start).Nanoseconds()) / float64(b.N)
			js, err := json.Marshal(last)
			if err != nil {
				b.Fatal(err)
			}
			if shards == 1 {
				baseNs, baseJSON = perOp, js
			} else if !bytes.Equal(js, baseJSON) {
				b.Fatal("result diverged from the shards=1 baseline")
			}
			b.ReportMetric(float64(shards), "shards")
			if baseNs > 0 {
				b.ReportMetric(baseNs/perOp, "speedup")
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}
