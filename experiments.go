package profess

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"profess/internal/stats"
)

// ExpOptions tunes the experiment drivers. The zero value means: paper
// scale (1/32), the configuration's default instruction budget, all
// programs, all 19 workloads.
type ExpOptions struct {
	// Scale is the capacity scale (0 = PaperScale).
	Scale float64
	// Instructions overrides the per-run instruction budget (0 = the
	// scaled config default of 500M x Scale). Experiments are meaningful
	// from about 1M instructions; the defaults in cmd/professbench use
	// 2M for speed.
	Instructions int64
	// Programs restricts single-program experiments (nil = Table 9 set).
	Programs []string
	// Workloads restricts multi-program experiments (nil = Table 10 set).
	Workloads []string
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Seeds > 1 repeats each single-program measurement with that many
	// distinct generator seeds and reports the mean (plus spread), giving
	// the synthetic-workload results confidence beyond one draw.
	Seeds int
	// Context, when non-nil, cancels in-flight experiments: its deadline
	// and cancellation propagate into every simulation's event loop.
	Context context.Context
	// Faults is the fault-injection plan applied to every simulation the
	// experiment runs (zero plan = fault-free). Stand-alone slowdown
	// baselines always run fault-free so eq. 1 keeps a clean reference.
	Faults FaultPlan
	// Shards sets Config.Shards on every configuration the experiment
	// builds — the worker count of the sharded event engine. It is a pure
	// speed knob: results are byte-identical at any value, and it only
	// takes effect on clustered configurations (Config.Clusters > 1, e.g.
	// Scale16Config).
	Shards int
}

// ctx returns the effective context.
func (o ExpOptions) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// seeds returns the effective seed-replication count.
func (o ExpOptions) seeds() int {
	if o.Seeds > 1 {
		return o.Seeds
	}
	return 1
}

// scale returns the effective capacity scale.
func (o ExpOptions) scale() float64 {
	if o.Scale > 0 {
		return o.Scale
	}
	return PaperScale
}

// singleConfig builds the single-core system for these options.
func (o ExpOptions) singleConfig() Config {
	cfg := SingleCoreConfig(o.scale())
	if o.Instructions > 0 {
		cfg.Instructions = o.Instructions
	}
	cfg.Faults = o.Faults
	cfg.Shards = o.Shards
	return cfg
}

// multiConfig builds the quad-core system for these options.
func (o ExpOptions) multiConfig() Config {
	cfg := MultiCoreConfig(o.scale())
	if o.Instructions > 0 {
		cfg.Instructions = o.Instructions
	}
	cfg.Faults = o.Faults
	cfg.Shards = o.Shards
	return cfg
}

// programs returns the single-program experiment set. libquantum is
// excluded by default exactly as in Fig. 5 (its footprint fits entirely in
// M1 at the default scale, making every scheme identical); pass it
// explicitly to include it.
func (o ExpOptions) programs() []string {
	if len(o.Programs) > 0 {
		return o.Programs
	}
	var names []string
	for _, p := range Programs() {
		if p.Name == "libquantum" {
			continue
		}
		names = append(names, p.Name)
	}
	return names
}

// workloads returns the multi-program experiment set.
func (o ExpOptions) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	var names []string
	for _, w := range Workloads() {
		names = append(names, w.Name)
	}
	return names
}

// parallelFor runs fn(i) for i in [0, n) on a bounded worker pool. One
// item failing (or panicking — panics are recovered into errors carrying
// the stack) does not abandon the rest: every item is attempted unless
// the context is cancelled, and all failures come back joined in index
// order, so callers keep the surviving results.
func parallelFor(ctx context.Context, n, workers int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("item %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		return fn(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				break
			}
			errs[i] = call(i)
		}
		return errors.Join(errs...)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	// Workers claim contiguous index batches rather than single items: one
	// lock round per batch cuts handout overhead on sweeps with many cheap
	// cells, while ~4 batches per worker keeps enough slack for the tail to
	// balance when cell costs are skewed.
	batch := n / (workers * 4)
	if batch < 1 {
		batch = 1
	}
	take := func() (int, int) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return -1, -1
		}
		lo := next
		hi := lo + batch
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo, hi := take()
				if lo < 0 {
					return
				}
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					errs[i] = call(i)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// Ratio returns a/b, or 0 when b is 0 — the "normalised to PoM" helper
// used throughout the figures.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// summarise renders a box-plot line in the paper's Fig. 5 style.
func summarise(name string, xs []float64) string {
	bp := stats.NewBoxPlot(xs)
	return fmt.Sprintf("%-28s gmean=%.3f median=%.3f box=[%.3f,%.3f] range=[%.3f,%.3f]",
		name, bp.GeoMean, bp.Median, bp.Q1, bp.Q3, stats.Min(xs), stats.Max(xs))
}
