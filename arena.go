// Arena reuse: every simulation that reaches runSimUncached executes
// through a sim.SystemArena, which caches a constructed machine per
// structural shape and resets it in place between runs instead of
// rebuilding it (see internal/sim/arena.go). Sweep workers each own a
// private arena threaded through the context; every other caller borrows
// one from a process-wide pool. Reuse is on by default and byte-identical
// to fresh construction — disable it with SetArenaReuse(false) (the
// drivers' -noarena flag) when debugging scheme state, so every run
// starts from a machine the debugger can watch being built.

package profess

import (
	"context"
	"sync"
	"sync/atomic"

	"profess/internal/sim"
)

// arenaOff is the global kill switch, stored inverted so the zero value
// means "reuse on".
var arenaOff atomic.Bool

// SetArenaReuse toggles simulation-state arena reuse process-wide.
// Reuse is enabled by default; disabling it forces every simulation to
// construct a fresh machine (the pre-arena behaviour).
func SetArenaReuse(on bool) { arenaOff.Store(!on) }

// ArenaReuse reports whether arena reuse is enabled.
func ArenaReuse() bool { return !arenaOff.Load() }

// arenaCtxKey carries a worker-owned arena through a context.
type arenaCtxKey struct{}

// withWorkerArena hands the context its own private simulation-state
// arena. Sweep workers call this once per goroutine, so cells executed by
// one worker share a machine without any cross-worker locking. A no-op
// when reuse is disabled.
func withWorkerArena(ctx context.Context) context.Context {
	if !ArenaReuse() {
		return ctx
	}
	return context.WithValue(ctx, arenaCtxKey{}, new(sim.SystemArena))
}

// arenaPool serves callers outside a sweep (RunProgram, parallelFor
// drivers): each concurrent simulation checks out an exclusive arena and
// returns it afterwards, so repeated same-shape runs on one goroutine
// still reuse a machine while the GC remains free to reclaim idle ones.
var arenaPool = sync.Pool{New: func() any { return new(sim.SystemArena) }}

// runArena executes one simulation through the calling context's arena,
// a pooled one, or — with reuse disabled — a fresh machine.
func runArena(ctx context.Context, cfg Config, specs []ProgramSpec, scheme Scheme) (*Result, error) {
	if !ArenaReuse() {
		return sim.RunContext(ctx, cfg, specs, scheme)
	}
	if a, ok := ctx.Value(arenaCtxKey{}).(*sim.SystemArena); ok {
		return a.RunContext(ctx, cfg, specs, scheme)
	}
	a := arenaPool.Get().(*sim.SystemArena)
	defer arenaPool.Put(a)
	return a.RunContext(ctx, cfg, specs, scheme)
}
