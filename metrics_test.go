package profess

import (
	"math"
	"testing"
)

func TestSlowdown(t *testing.T) {
	if got := Slowdown(2, 1); got != 2 {
		t.Errorf("Slowdown = %v", got)
	}
	if got := Slowdown(1, 0); got != 0 {
		t.Errorf("degenerate Slowdown = %v, want 0", got)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// Four unslowed programs: WS = 4 (the quad-core ideal).
	if got := WeightedSpeedup([]float64{1, 1, 1, 1}); got != 4 {
		t.Errorf("WS = %v, want 4", got)
	}
	if got := WeightedSpeedup([]float64{2, 4}); got != 0.75 {
		t.Errorf("WS = %v, want 0.75", got)
	}
	if got := WeightedSpeedup([]float64{0, 2}); got != 0.5 {
		t.Errorf("WS with degenerate slowdown = %v, want 0.5", got)
	}
}

func TestUnfairness(t *testing.T) {
	if got := Unfairness([]float64{1.5, 3.7, 2.2}); got != 3.7 {
		t.Errorf("Unfairness = %v, want the max slowdown", got)
	}
	if got := Unfairness(nil); got != 0 {
		t.Errorf("empty Unfairness = %v", got)
	}
}

func TestWorkBeforeWearOut(t *testing.T) {
	cases := []struct {
		name          string
		lifetime, ipc float64
		want          float64
	}{
		{"plain", 1000, 0.5, 500},
		{"zero lifetime", 0, 1, 0},
		{"zero ipc", 1000, 0, 0},
		{"negative ipc", 1000, -1, 0},
		{"negative lifetime", -5, 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := WorkBeforeWearOut(c.lifetime, c.ipc); got != c.want {
				t.Errorf("WorkBeforeWearOut(%v, %v) = %v, want %v", c.lifetime, c.ipc, got, c.want)
			}
		})
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != 1.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
}

func TestBaselineCacheMemoises(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cache := NewBaselineCache()
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 100_000
	a, err := cache.AloneIPC("leslie3d", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.AloneIPC("leslie3d", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cache returned different values: %v vs %v", a, b)
	}
	// Different scheme is a different key (may legitimately differ).
	c, err := cache.AloneIPC("leslie3d", SchemeMDM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Errorf("IPC %v", c)
	}
	// Different config (instructions) is a different key.
	cfg2 := cfg
	cfg2.Instructions = 120_000
	d, err := cache.AloneIPC("leslie3d", SchemePoM, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("IPC %v", d)
	}
}

func TestRunWorkloadMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := MultiCoreConfig(PaperScale)
	cfg.Instructions = 120_000
	wr, err := RunWorkload("w02", SchemeProFess, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(wr.Slowdowns) != 4 || len(wr.AloneIPC) != 4 {
		t.Fatalf("metrics shape: %+v", wr)
	}
	for i, s := range wr.Slowdowns {
		if s < 0.8 {
			t.Errorf("slowdown[%d] = %v implausibly below 1", i, s)
		}
		if s > 100 {
			t.Errorf("slowdown[%d] = %v implausibly high", i, s)
		}
	}
	if math.Abs(wr.WeightedSpeedup-WeightedSpeedup(wr.Slowdowns)) > 1e-12 {
		t.Error("WS inconsistent")
	}
	if math.Abs(wr.MaxSlowdown-Unfairness(wr.Slowdowns)) > 1e-12 {
		t.Error("unfairness inconsistent")
	}
	if wr.MaxSlowdown < 1 {
		t.Errorf("max slowdown %v under contention should exceed 1", wr.MaxSlowdown)
	}
}

func TestPublicCatalogues(t *testing.T) {
	if len(Programs()) != 10 {
		t.Errorf("programs = %d", len(Programs()))
	}
	if len(Workloads()) != 19 {
		t.Errorf("workloads = %d", len(Workloads()))
	}
	if len(Schemes()) != 7 {
		t.Errorf("schemes = %d", len(Schemes()))
	}
}

func TestRunProgramUnknown(t *testing.T) {
	cfg := SingleCoreConfig(PaperScale)
	if _, err := RunProgram("nosuch", SchemePoM, cfg); err == nil {
		t.Error("unknown program should fail")
	}
	if _, err := RunMix("w99", SchemePoM, MultiCoreConfig(PaperScale)); err == nil {
		t.Error("unknown workload should fail")
	}
}
