package profess

import (
	"strings"
	"testing"
)

func TestSingleProgramCSV(t *testing.T) {
	rep := &SingleProgramReport{Rows: []SingleProgramRow{
		{Program: "lbm", Scheme: SchemePoM, IPC: 0.1, M1Fraction: 0.7, STCHitRate: 0.9, AvgReadLat: 800, Swaps: 42},
		{Program: "lbm", Scheme: SchemeMDM, IPC: 0.2, M1Fraction: 0.9, STCHitRate: 0.9, AvgReadLat: 600, Swaps: 17},
	}}
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "program,scheme,ipc") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "lbm,pom,0.1000") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "mdm") || !strings.Contains(lines[2], "17") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestMultiProgramCSV(t *testing.T) {
	rep := &MultiProgramReport{
		Schemes: []Scheme{SchemePoM},
		Cells: []MultiProgramCell{{
			Workload: "w09", Scheme: SchemePoM,
			WeightedSpeedup: 1.2, MaxSlowdown: 3.4, EnergyEff: 5e7, SwapFraction: 0.01,
			Slowdowns: []float64{3.4, 2.0}, Programs: []string{"mcf", "lbm"},
		}},
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "w09,pom,1.2000,3.4000") {
		t.Errorf("summary row missing:\n%s", csv)
	}
	if !strings.Contains(csv, "w09,pom,mcf,3.4000") {
		t.Errorf("slowdown row missing:\n%s", csv)
	}
	if !strings.Contains(csv, "w09,pom,lbm,2.0000") {
		t.Errorf("slowdown row missing:\n%s", csv)
	}
}

func TestSamplingAndSensitivityCSV(t *testing.T) {
	sa := &SamplingAccuracyReport{Cells: []SamplingAccuracyCell{
		{Program: "milc", MSamp: 4096, MeanSigmaReq: 40, SigmaRawSFA: 50, SigmaAvgSFA: 5, MeanRawSFA: 1.2, Periods: 10},
	}}
	if !strings.Contains(sa.CSV(), "milc,4096,40.0000") {
		t.Errorf("sampling CSV:\n%s", sa.CSV())
	}
	sr := &SensitivityReport{Axis: "x", Points: []SensitivityPoint{{Setting: "1:4", GeoMeanRatio: 1.1}}}
	if !strings.Contains(sr.CSV(), "1:4,1.1000") {
		t.Errorf("sensitivity CSV:\n%s", sr.CSV())
	}
	st := &STCSensitivityReport{Default: 128, Rows: []STCSensitivityRow{{Program: "mcf", STCEntries: 64, IPC: 0.1, STCHitRate: 0.5}}}
	if !strings.Contains(st.CSV(), "mcf,64,0.1000,0.5000") {
		t.Errorf("stc CSV:\n%s", st.CSV())
	}
	am := &AMMATReport{SingleRatio: map[string]float64{"lbm": 1.2}, MultiRatio: map[string]float64{"w09": 1.1}}
	csv := am.CSV()
	if !strings.Contains(csv, "single,lbm,1.2000") || !strings.Contains(csv, "multi,w09,1.1000") {
		t.Errorf("ammat CSV:\n%s", csv)
	}
}

func TestCSVQuoting(t *testing.T) {
	got := csvRow(`plain`, `has,comma`, `has"quote`)
	want := `plain,"has,comma","has""quote"`
	if got != want {
		t.Errorf("csvRow = %q, want %q", got, want)
	}
}

func TestBars(t *testing.T) {
	s := Bars(map[string]float64{"w09": 1.0, "w12": 0.5}, 10)
	if !strings.Contains(s, "w09") || !strings.Contains(s, "##########") {
		t.Errorf("bars:\n%s", s)
	}
	if !strings.Contains(s, "#####") {
		t.Errorf("half bar missing:\n%s", s)
	}
	if Bars(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	if Bars(map[string]float64{"a": 0}, 10) != "" {
		t.Error("all-zero series should render empty")
	}
}

// TestReportsImplementCSVer pins the CSV surface used by professbench.
func TestReportsImplementCSVer(t *testing.T) {
	for _, v := range []interface{}{
		&SingleProgramReport{},
		&STCSensitivityReport{},
		&SamplingAccuracyReport{},
		&SensitivityReport{},
		&MultiProgramReport{},
		&AMMATReport{},
	} {
		if _, ok := v.(CSVer); !ok {
			t.Errorf("%T does not implement CSVer", v)
		}
	}
}
