package profess

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"profess/internal/stats"
)

// Scale16Point is one shard count's measurement on the Scale16 fleet.
type Scale16Point struct {
	Shards int
	// WallMS is the wall-clock run time — the only machine-dependent
	// number in the report; everything simulated is byte-identical across
	// the sweep by construction (and verified, see Identical).
	WallMS float64
	// Speedup is the baseline point's wall time over this point's.
	Speedup float64
	// Identical records the byte-comparison of this point's Result JSON
	// against the baseline point (always true on a successful run —
	// divergence aborts the experiment).
	Identical bool
}

// Scale16Report is the scaling curve of the sharded event engine on the
// sixteen-program, eight-cluster Scale16 configuration.
type Scale16Report struct {
	Scheme Scheme
	// GoMaxProcs records the host parallelism the wall times were
	// measured under; speedups cannot exceed it no matter the shard count.
	GoMaxProcs  int
	Cycles      int64
	ClusterDone []int64
	// Result is the (shared) simulation outcome of every point.
	Result *Result
	Points []Scale16Point
}

// String renders the scaling curve as a table.
func (r *Scale16Report) String() string {
	t := stats.NewTable("shards", "wall ms", "speedup", "identical")
	for _, p := range r.Points {
		t.AddRowf(p.Shards, fmt.Sprintf("%.1f", p.WallMS), p.Speedup, p.Identical)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scale16 scaling curve — %s, %d cycles, GOMAXPROCS=%d\n", r.Scheme, r.Cycles, r.GoMaxProcs)
	fmt.Fprintf(&b, "(every point is byte-identical by construction; wall times are this host's)\n\n")
	b.WriteString(t.String())
	fmt.Fprintf(&b, "cluster completion cycles: %v\n", r.ClusterDone)
	return b.String()
}

// CSV renders the points for machine consumption.
func (r *Scale16Report) CSV() string {
	var b strings.Builder
	b.WriteString("shards,wall_ms,speedup,gomaxprocs\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%d,%.3f,%.4f,%d\n", p.Shards, p.WallMS, p.Speedup, r.GoMaxProcs)
	}
	return b.String()
}

// RunScale16 runs the Scale16 fleet once per shard count (default 1, 2,
// 4, 8), verifies every run is byte-identical to the first, and reports
// the wall-clock scaling curve. The run cache is deliberately bypassed:
// the points are identical cells by design, and serving point N from
// point 1's cache entry would fake both the timing and the identity
// check.
func RunScale16(scheme Scheme, shardCounts []int, opts ExpOptions) (*Scale16Report, error) {
	cfg := Scale16Config(opts.scale())
	if opts.Instructions > 0 {
		cfg.Instructions = opts.Instructions
	}
	cfg.Faults = opts.Faults
	specs, err := Fleet16Specs(cfg.Scale)
	if err != nil {
		return nil, err
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	rep := &Scale16Report{Scheme: scheme, GoMaxProcs: runtime.GOMAXPROCS(0)}
	var (
		baseJSON []byte
		baseWall time.Duration
	)
	for i, n := range shardCounts {
		c := cfg
		c.Shards = n
		t0 := time.Now()
		res, err := runSimUncached(opts.ctx(), c, specs, scheme)
		wall := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("scale16 shards=%d: %w", n, err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		pt := Scale16Point{Shards: n, WallMS: float64(wall.Microseconds()) / 1000, Identical: true, Speedup: 1}
		if i == 0 {
			baseJSON, baseWall = js, wall
			rep.Result = res
			rep.Cycles = res.Cycles
			rep.ClusterDone = res.ClusterDone
		} else {
			if !bytes.Equal(js, baseJSON) {
				return nil, fmt.Errorf("scale16: shards=%d produced a different Result than shards=%d — determinism contract broken", n, shardCounts[0])
			}
			if wall > 0 {
				pt.Speedup = float64(baseWall) / float64(wall)
			}
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
