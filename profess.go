// Package profess is a full reimplementation of ProFess — the
// probabilistic hybrid main-memory management framework for high
// performance and fairness of Knyaginin, Papaefstathiou and Stenström
// (HPCA 2018) — together with the complete simulation substrate its
// evaluation requires: a flat migrating DRAM+NVM memory model with
// PoM-style swap groups, an MLP-aware core model, synthetic SPEC CPU2006
// workload generators, the competing migration algorithms of the
// literature (PoM, CAMEO, SILC-FM, MemPod), and the experiment harnesses
// that regenerate every table and figure of the paper's evaluation.
//
// # Quick start
//
//	cfg := profess.SingleCoreConfig(profess.PaperScale)
//	cfg.Instructions = 2_000_000
//	res, err := profess.RunProgram("lbm", profess.SchemeProFess, cfg)
//	if err != nil { ... }
//	fmt.Printf("IPC %.3f, served from M1 %.1f%%\n",
//		res.PerCore[0].IPC, 100*res.PerCore[0].M1Fraction)
//
// # Layering
//
//   - internal/core — the paper's contribution (RSM, MDM, ProFess).
//   - internal/hybrid — the flat migrating organization (swap groups, ST,
//     STC, regions, OS allocation).
//   - internal/mem, internal/cpu, internal/cache, internal/trace — the
//     simulated machine.
//   - internal/migrate — the baseline algorithms of Table 2.
//   - this package — the public API: configurations, runs, figures of
//     merit, and per-figure experiment drivers (see experiments.go).
package profess

import (
	"context"

	"profess/internal/fault"
	"profess/internal/hybrid"
	"profess/internal/sim"
	"profess/internal/stats"
	"profess/internal/telemetry"
	"profess/internal/workload"
)

// Re-exported configuration and result types. The aliases are deliberate:
// the simulator's types are the public contract, and the internal layout
// keeps their implementations private.
type (
	// Config describes one simulated system (Table 8).
	Config = sim.Config
	// Result is the outcome of one simulation.
	Result = sim.Result
	// CoreResult is the per-program slice of a Result.
	CoreResult = sim.CoreResult
	// Scheme names a migration policy.
	Scheme = sim.Scheme
	// ProgramSpec names one program instance (generator parameters).
	ProgramSpec = sim.ProgramSpec
	// Workload is one Table 10 four-program mix.
	Workload = workload.Workload
	// Program is one Table 9 program profile.
	Program = workload.Program
	// FaultPlan configures deterministic fault injection (per-class rates
	// plus a schedule seed); the zero value injects nothing and keeps the
	// simulation bit-identical to a fault-free build.
	FaultPlan = fault.Plan
	// Resilience tallies injected faults and the simulator's graceful
	// degradation (Result.Resilience).
	Resilience = stats.Resilience
	// TelemetrySampler is the per-epoch sampler behind Result.Telemetry
	// (enabled via Config.TelemetryEvery); exports JSONL and CSV.
	TelemetrySampler = telemetry.Sampler
	// TelemetryManifest describes one telemetry run (config, seed, build)
	// alongside its exported epochs.
	TelemetryManifest = telemetry.Manifest
	// TelemetryRecord is one sampled epoch of a TelemetrySampler.
	TelemetryRecord = telemetry.Record
)

// NewTelemetryManifest returns a Manifest prefilled with build metadata
// (Go version, git describe).
func NewTelemetryManifest() TelemetryManifest { return telemetry.NewManifest() }

// ParseFaultPlan parses the -faults flag syntax
// ("key=value,...": seed, nvmread, nvmwrite, stall, stallcycles, qac, sf,
// or the one-knob shorthand "rate=<p>").
func ParseFaultPlan(s string) (FaultPlan, error) { return fault.ParsePlan(s) }

// The available migration schemes.
const (
	SchemeStatic  = sim.SchemeStatic
	SchemePoM     = sim.SchemePoM
	SchemeCAMEO   = sim.SchemeCAMEO
	SchemeSILCFM  = sim.SchemeSILCFM
	SchemeMemPod  = sim.SchemeMemPod
	SchemeMDM     = sim.SchemeMDM
	SchemeProFess = sim.SchemeProFess
)

// PaperScale is this reproduction's default capacity scale: 1/32 of the
// paper's Table 8 system, preserving every ratio that drives the results.
const PaperScale = sim.PaperScale

// SingleCoreConfig returns the single-core evaluation system of §4.1.
func SingleCoreConfig(scale float64) Config { return sim.SingleCoreConfig(scale) }

// MultiCoreConfig returns the quad-core evaluation system of Table 8.
func MultiCoreConfig(scale float64) Config { return sim.MultiCoreConfig(scale) }

// Scale16Config returns the sixteen-program, eight-channel "datacenter
// node" scaling configuration: eight independent clusters on the sharded
// event engine. Set Config.Shards to choose the worker count — a pure
// speed knob with byte-identical results.
func Scale16Config(scale float64) Config { return sim.Scale16Config(scale) }

// Fleet16Specs builds the sixteen-program mix that rides Scale16Config:
// eight footprint-balanced pairs, one per cluster, covering every Table 9
// program.
func Fleet16Specs(scale float64) ([]ProgramSpec, error) {
	return sim.SpecsForPrograms(workload.Fleet16(), scale)
}

// Schemes lists every available scheme in presentation order.
func Schemes() []Scheme { return sim.AllSchemes() }

// Programs returns the Table 9 program catalogue.
func Programs() []Program { return workload.Programs() }

// Workloads returns the Table 10 multiprogrammed mixes.
func Workloads() []Workload { return workload.Workloads() }

// runSimUncached executes one simulation, unconditionally. runSim /
// runSimCtx (the cache-aware funnel in runcache.go) wrap it; every
// scheme-based entry point below goes through that funnel, so identical
// runs within one process are memoised. See SetRunCaching to opt out.
// The context's deadline/cancellation is polled inside the event loop,
// so an in-flight simulation aborts within one watchdog epoch.
// Simulations execute through a reusable simulation-state arena (see
// arena.go); SetArenaReuse(false) restores per-run construction.
func runSimUncached(ctx context.Context, cfg Config, specs []ProgramSpec, scheme Scheme) (*Result, error) {
	theRunCache.sims.Add(1)
	return runArena(ctx, cfg, specs, scheme)
}

// RunProgram runs one named Table 9 program under the given scheme.
func RunProgram(name string, scheme Scheme, cfg Config) (*Result, error) {
	return RunProgramContext(context.Background(), name, scheme, cfg)
}

// RunProgramContext is RunProgram honouring the context: cancellation
// interrupts the simulation mid-flight, not just before it starts.
func RunProgramContext(ctx context.Context, name string, scheme Scheme, cfg Config) (*Result, error) {
	spec, err := sim.SpecForProgram(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	return runSimCtx(ctx, cfg, []ProgramSpec{spec}, scheme)
}

// RunMix runs a Table 10 workload (by name) under the given scheme,
// without slowdown baselines; see RunWorkload for the full fairness
// metrics.
func RunMix(name string, scheme Scheme, cfg Config) (*Result, error) {
	return RunMixContext(context.Background(), name, scheme, cfg)
}

// RunMixContext is RunMix honouring the context.
func RunMixContext(ctx context.Context, name string, scheme Scheme, cfg Config) (*Result, error) {
	w, err := workload.WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	specs, err := sim.SpecsForWorkload(w, cfg.Scale)
	if err != nil {
		return nil, err
	}
	return runSimCtx(ctx, cfg, specs, scheme)
}

// RunSpecs runs explicit program specs under the given scheme — the
// entry point for custom workloads and custom generator parameters.
func RunSpecs(specs []ProgramSpec, scheme Scheme, cfg Config) (*Result, error) {
	return RunSpecsContext(context.Background(), specs, scheme, cfg)
}

// RunSpecsContext is RunSpecs honouring the context.
func RunSpecsContext(ctx context.Context, specs []ProgramSpec, scheme Scheme, cfg Config) (*Result, error) {
	return runSimCtx(ctx, cfg, specs, scheme)
}

// Migration-policy extension surface: user code can implement Policy (most
// easily by embedding BasePolicy) and drive the same simulated machine as
// the built-in schemes. See examples/custom-policy.
type (
	// Policy is a pluggable migration algorithm.
	Policy = hybrid.Policy
	// AccessInfo is what a policy observes on every demand access.
	AccessInfo = hybrid.AccessInfo
	// PolicyContext is the controller surface a policy acts through.
	PolicyContext = hybrid.PolicyContext
	// BasePolicy provides no-op defaults for optional Policy hooks.
	BasePolicy = hybrid.BasePolicy
)

// RunWithPolicy runs explicit program specs under a custom migration
// policy. Custom policies are not hashable, so these runs bypass the run
// cache and cannot be enumerated by the sweep planner.
func RunWithPolicy(specs []ProgramSpec, policy Policy, cfg Config) (*Result, error) {
	if planning() {
		return nil, ErrNotPlannable
	}
	sys, err := sim.NewSystem(cfg, specs, policy)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// SpecFor builds the ProgramSpec for a named Table 9 program at the
// configuration's scale.
func SpecFor(name string, cfg Config) (ProgramSpec, error) {
	return sim.SpecForProgram(name, cfg.Scale)
}

// workloadSeed exposes the deterministic per-instance seed derivation for
// experiment drivers that need extra seed replicas.
func workloadSeed(program string, instance int) uint64 {
	return workload.Seed(program, instance)
}
