package profess

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"profess/internal/lease"
)

// The chaos suite proves the crash-safety contract of the sweep
// executor: real worker subprocesses sharing one cache directory are
// SIGKILLed at random points mid-sweep, and fresh workers must finish
// the sweep from the journal — byte-identical reports, no cell
// simulated concurrently by two live owners, no leaked lease or temp
// files. Subprocesses are this test binary re-exec'd against a single
// guarded helper test, the standard multi-process testing pattern.

// Env knobs for the re-exec helpers.
const (
	chaosWorkerEnv = "PROFESS_CHAOS_WORKER" // "1": run the sweep-worker helper
	chaosWriterEnv = "PROFESS_CHAOS_CACHEWRITER"
	chaosDirEnv    = "PROFESS_CHAOS_DIR"    // shared cache directory
	chaosSlowEnv   = "PROFESS_CHAOS_SLOWMS" // artificial per-simulation latency
)

// chaosExecOpts are the worker-side executor settings: a short TTL so
// dead owners are taken over quickly, with a heartbeat comfortably
// inside it so live owners never look dead.
func chaosExecOpts() ExecOptions {
	return ExecOptions{
		Parallelism: 2,
		LeaseTTL:    2 * time.Second,
		Heartbeat:   200 * time.Millisecond,
		Poll:        50 * time.Millisecond,
	}
}

// TestChaosWorkerProcess is the re-exec'd sweep worker, not a test in
// its own right: it plans the shared chaos sweep against the directory
// in the environment and executes it until done or killed.
func TestChaosWorkerProcess(t *testing.T) {
	dir := os.Getenv(chaosDirEnv)
	if os.Getenv(chaosWorkerEnv) != "1" || dir == "" {
		t.Skip("re-exec helper for the chaos harness")
	}
	SetRunCaching(true)
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	if ms, _ := strconv.Atoi(os.Getenv(chaosSlowEnv)); ms > 0 {
		simCellHook = func(string) error {
			time.Sleep(time.Duration(ms) * time.Millisecond)
			return nil
		}
	}
	plan, err := PlanSweep(sweepTestExperiments(sweepTestOpts(), nil))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteOpts(context.Background(), chaosExecOpts())
	if err != nil {
		t.Fatalf("worker execute: %v", err)
	}
	if got := rep.Done + rep.Resumed + rep.External; got != rep.Cells {
		t.Fatalf("worker finished with %d/%d cells settled", got, rep.Cells)
	}
}

// chaosWorkerCmd builds one re-exec'd sweep worker against dir.
func chaosWorkerCmd(t *testing.T, dir string, slowMS int) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestChaosWorkerProcess$", "-test.count=1", "-test.v")
	cmd.Env = append(os.Environ(),
		chaosWorkerEnv+"=1",
		chaosDirEnv+"="+dir,
		chaosSlowEnv+"="+strconv.Itoa(slowMS),
	)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	return cmd, &out
}

// assertNoDebris checks the shared directory holds no lease files, no
// takeover temporaries and no orphaned atomic-write temp files.
func assertNoDebris(t *testing.T, dir string) {
	t.Helper()
	for _, pattern := range []string{
		filepath.Join(dir, "leases", "*"),
		filepath.Join(dir, ".tmp-*"),
	} {
		if matches, _ := filepath.Glob(pattern); len(matches) != 0 {
			t.Errorf("leaked files: %v", matches)
		}
	}
}

// TestChaosKill9Resume is the acceptance harness: workers are SIGKILLed
// at random points of a shared sweep, then fresh workers join and must
// complete it — reports byte-identical to a never-crashed run, zero
// cells simulated by two live owners at once, no leaked lease or temp
// files.
func TestChaosKill9Resume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real subprocesses")
	}
	opts := sweepTestOpts()

	// Reference reports from fully uncached in-process runs.
	SetRunCaching(false)
	want := map[string]string{}
	for _, e := range sweepTestExperiments(opts, want) {
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	SetRunCaching(true)

	dir := t.TempDir()

	// Kill phase: start a deliberately slowed worker, SIGKILL it
	// mid-sweep, repeat. Each round strands heartbeat-fresh leases, a
	// journal with dangling claims, and possibly a half-written temp
	// file — exactly the crash states resume must absorb.
	rng := rand.New(rand.NewSource(42)) // fixed seed: reproducible kill points
	for round := 0; round < 3; round++ {
		cmd, out := chaosWorkerCmd(t, dir, 150)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		delay := time.Duration(100+rng.Intn(500)) * time.Millisecond
		time.Sleep(delay)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: kill: %v\nworker output:\n%s", round, err, out)
		}
		_ = cmd.Wait() // expected to report the kill
	}

	// Recovery phase: two fresh workers join concurrently and must both
	// finish the sweep, stealing whatever the dead workers still hold.
	w1, out1 := chaosWorkerCmd(t, dir, 0)
	w2, out2 := chaosWorkerCmd(t, dir, 0)
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Wait(); err != nil {
		t.Fatalf("recovery worker 1 failed: %v\n%s", err, out1)
	}
	if err := w2.Wait(); err != nil {
		t.Fatalf("recovery worker 2 failed: %v\n%s", err, out2)
	}

	// Render phase: a pristine process (simulated by dropping the
	// in-process tier) attached to the survivors' directory must render
	// every report byte-identically with zero simulations.
	ResetRunCache()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetRunCacheDir(""); err != nil {
			t.Fatal(err)
		}
		ResetRunCache()
	}()
	plan, err := PlanSweep(sweepTestExperiments(opts, nil))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteOpts(context.Background(), chaosExecOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != rep.Cells {
		t.Errorf("verification pass resumed %d/%d cells; the workers' journal must cover the whole sweep", rep.Resumed, rep.Cells)
	}
	got := map[string]string{}
	for _, e := range sweepTestExperiments(opts, got) {
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if d := RunCacheDetail(); d.Sims != 0 {
		t.Errorf("rendering after the chaos run simulated %d cells, want 0", d.Sims)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s report differs from the never-crashed run:\n--- reference ---\n%s\n--- chaos ---\n%s", name, w, got[name])
		}
	}

	assertNoDebris(t, dir)
	auditJournal(t, filepath.Join(dir, "sweeps", plan.Hash()+".jsonl"), plan)
}

// auditJournal asserts the no-duplication property: for each cell, the
// [claimed, done] intervals of different owners never overlap. Owners
// killed mid-cell never write their done record, so their claims stay
// open and legal; two live owners simulating one cell concurrently
// would close overlapping intervals and fail here.
func auditJournal(t *testing.T, path string, plan *SweepPlan) {
	t.Helper()
	recs, err := lease.ReadJournal(path)
	if err != nil {
		t.Fatalf("journal audit: %v", err)
	}
	type interval struct {
		owner      string
		start, end int64
	}
	open := map[string]map[string]int64{} // key -> owner -> claim time
	closed := map[string][]interval{}
	done := map[string]bool{}
	for _, r := range recs {
		switch r.Status {
		case lease.StatusClaimed:
			if open[r.Key] == nil {
				open[r.Key] = map[string]int64{}
			}
			open[r.Key][r.Owner] = r.Nanos
		case lease.StatusDone:
			done[r.Key] = true
			if start, ok := open[r.Key][r.Owner]; ok {
				closed[r.Key] = append(closed[r.Key], interval{r.Owner, start, r.Nanos})
				delete(open[r.Key], r.Owner)
			}
		}
	}
	for _, c := range plan.Cells {
		if !done[c.Key] {
			t.Errorf("cell %s has no done record in the journal", c.Key[:12])
		}
	}
	for key, ivs := range closed {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a.owner != b.owner && a.start < b.end && b.start < a.end {
					t.Errorf("cell %s simulated concurrently by two live owners (%s and %s)", key[:12], a.owner, b.owner)
				}
			}
		}
	}
}

// TestExecuteCancelLeavesResumableJournal pins the cancellation
// contract: ctx cancellation mid-sweep returns ctx.Err() itself (not
// joined cell errors), drains promptly, releases every lease, and
// leaves a journal from which a second call completes the sweep.
func TestExecuteCancelLeavesResumableJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := withDiskCache(t)

	// Slow every real simulation down so cancellation lands mid-sweep.
	simCellHook = func(string) error {
		time.Sleep(100 * time.Millisecond)
		return nil
	}
	defer func() { simCellHook = nil }()

	plan, err := PlanSweep(sweepTestExperiments(sweepTestOpts(), nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, err := plan.ExecuteOpts(ctx, ExecOptions{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execute returned %v, want context.Canceled", err)
	}
	if err.Error() != context.Canceled.Error() {
		t.Errorf("cancellation must be returned distinctly, not joined with cell errors: %q", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancelled execute took %v to drain", d)
	}
	if rep.Done >= rep.Cells {
		t.Fatalf("all %d cells finished before cancellation; the resume leg tests nothing", rep.Cells)
	}
	// Leases must be gone the moment the call returns, not on TTL.
	if matches, _ := filepath.Glob(filepath.Join(dir, "leases", "*")); len(matches) != 0 {
		t.Errorf("cancelled execute leaked leases: %v", matches)
	}

	simCellHook = nil
	rep2, err := plan.ExecuteOpts(context.Background(), ExecOptions{Parallelism: 2})
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if rep2.Resumed != rep.Done {
		t.Errorf("resume skipped %d cells, want the %d the cancelled call completed", rep2.Resumed, rep.Done)
	}
	if rep2.Resumed+rep2.Done != rep2.Cells {
		t.Errorf("resume settled %d+%d of %d cells", rep2.Resumed, rep2.Done, rep2.Cells)
	}
	assertNoDebris(t, dir)
}

// TestExecuteRetriesTransientFailures checks the backoff loop: every
// cell fails once with a transient error and must still complete, with
// the retries and the failures visible in the report and the journal.
func TestExecuteRetriesTransientFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	dir := withDiskCache(t)

	var mu sync.Mutex
	failedOnce := map[string]bool{}
	simCellHook = func(key string) error {
		mu.Lock()
		defer mu.Unlock()
		if !failedOnce[key] {
			failedOnce[key] = true
			return errors.New("injected transient failure")
		}
		return nil
	}
	defer func() { simCellHook = nil }()

	plan, err := PlanSweep(sweepTestExperiments(sweepTestOpts(), nil))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.ExecuteOpts(context.Background(), ExecOptions{
		Parallelism:  2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("transient failures must be retried away, got %v", err)
	}
	if rep.Done != rep.Cells || rep.Failed != 0 {
		t.Errorf("report %+v, want all %d cells done", rep, rep.Cells)
	}
	if rep.Retries != rep.Cells {
		t.Errorf("%d retries for %d once-failing cells", rep.Retries, rep.Cells)
	}
	recs, err := lease.ReadJournal(filepath.Join(dir, "sweeps", plan.Hash()+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var journalFails int
	for _, r := range recs {
		if r.Status == lease.StatusFailed {
			journalFails++
		}
	}
	if journalFails != rep.Cells {
		t.Errorf("journal records %d failed attempts, want %d", journalFails, rep.Cells)
	}
	assertNoDebris(t, dir)
}

// TestExecuteExhaustsAttempts checks the failure cap: a permanently
// failing cell fails the sweep after MaxAttempts, without poisoning the
// other cells.
func TestExecuteExhaustsAttempts(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	withDiskCache(t)

	plan, err := PlanSweep(sweepTestExperiments(sweepTestOpts(), nil))
	if err != nil {
		t.Fatal(err)
	}
	doomed := plan.Cells[0].Key
	simCellHook = func(key string) error {
		if key == doomed {
			return errors.New("injected permanent failure")
		}
		return nil
	}
	defer func() { simCellHook = nil }()

	rep, err := plan.ExecuteOpts(context.Background(), ExecOptions{
		Parallelism:  2,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
	})
	if err == nil {
		t.Fatal("permanently failing cell must fail the sweep")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("failure must not masquerade as cancellation: %v", err)
	}
	if rep.Failed != 1 || rep.Done != rep.Cells-1 {
		t.Errorf("report %+v, want 1 failed and %d done", rep, rep.Cells-1)
	}
	if rep.Retries != 1 {
		t.Errorf("%d retries, want 1 (MaxAttempts=2)", rep.Retries)
	}
}

// TestChaosCacheWriterProcess is the re-exec'd disk-cache writer: it
// hammers one run key with stores so two such processes race the same
// entry file.
func TestChaosCacheWriterProcess(t *testing.T) {
	dir := os.Getenv(chaosDirEnv)
	if os.Getenv(chaosWriterEnv) != "1" || dir == "" {
		t.Skip("re-exec helper for the cache write race test")
	}
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	res := &Result{Scheme: "pom", Cycles: 12345, EnergyEff: 1.5, STCHitRate: 0.25}
	for i := 0; i < 300; i++ {
		theDiskCache.store("chaos-race-key", res)
	}
	if _, ok := theDiskCache.load("chaos-race-key"); !ok {
		t.Fatal("entry unreadable from the writing process")
	}
}

// TestDiskCacheMultiProcessWrites races two real processes storing the
// same run key into one directory: both must succeed, and the surviving
// entry must pass checksum validation.
func TestDiskCacheMultiProcessWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	writer := func() (*exec.Cmd, *bytes.Buffer) {
		cmd := exec.Command(os.Args[0], "-test.run=^TestChaosCacheWriterProcess$", "-test.count=1", "-test.v")
		cmd.Env = append(os.Environ(), chaosWriterEnv+"=1", chaosDirEnv+"="+dir)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		return cmd, &out
	}
	w1, out1 := writer()
	w2, out2 := writer()
	if err := w1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Wait(); err != nil {
		t.Fatalf("writer 1: %v\n%s", err, out1)
	}
	if err := w2.Wait(); err != nil {
		t.Fatalf("writer 2: %v\n%s", err, out2)
	}

	// The survivor must be a complete, checksum-valid entry.
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetRunCacheDir(""); err != nil {
			t.Fatal(err)
		}
	}()
	res, ok := theDiskCache.load("chaos-race-key")
	if !ok {
		t.Fatal("surviving entry failed validation")
	}
	if res.Cycles != 12345 {
		t.Errorf("surviving entry decoded to %+v", res)
	}
	// And no writer left its temp file behind.
	if tmps, _ := filepath.Glob(filepath.Join(dir, ".tmp-*")); len(tmps) != 0 {
		t.Errorf("leaked temp files: %v", tmps)
	}
}
