package profess

import (
	"fmt"
	"math"
	"strings"

	"profess/internal/analytic"
	"profess/internal/sim"
	"profess/internal/stats"
)

// Cross-validation of the analytic fast tier (internal/analytic) against
// the cycle model: both predict the same cells — every Table 9 program
// under each scheme in the single-core system — and the report compares
// IPC, M1-served fraction and NVM lifetime point by point. The committed
// error envelope (testdata/xval_envelope.json, enforced by xval_test.go)
// pins how far apart the two tiers are allowed to drift; the scatter CSV
// is the figure showing where the analytic screen can be trusted.

// XValRow is one (program, scheme) point of the comparison.
type XValRow struct {
	Program string
	Scheme  Scheme

	CycleIPC    float64
	AnalyticIPC float64
	// IPCError is the signed relative error (analytic-cycle)/cycle.
	IPCError float64

	CycleM1Frac    float64
	AnalyticM1Frac float64
	// M1FracError is the absolute difference (fractions live in [0, 1]).
	M1FracError float64

	// Lifetimes are leveling-aware projections in seconds; the cycle
	// value comes from the per-row wear tallies, the analytic one from
	// the model's write-stream skew estimate.
	CycleLifetime    float64
	AnalyticLifetime float64
}

// XValReport aggregates the cross-validation matrix.
type XValReport struct {
	Rows []XValRow
	// Error summary across all rows.
	MeanAbsIPCError    float64
	MaxAbsIPCError     float64
	MeanAbsM1FracError float64
	MaxAbsM1FracError  float64
}

// RunCrossValidation runs every program of the options (default: all ten
// Table 9 generators, libquantum included — the analytic tier must get
// the degenerate fits-in-M1 case right, it is what pruning exploits)
// under the given schemes in the single-core system, through both tiers.
func RunCrossValidation(schemes []Scheme, opts ExpOptions) (*XValReport, error) {
	cfg := opts.singleConfig()
	progs := opts.Programs
	if len(progs) == 0 {
		for _, p := range Programs() {
			progs = append(progs, p.Name)
		}
	}
	model := analytic.Default()

	type job struct {
		prog   string
		scheme Scheme
	}
	var jobs []job
	for _, p := range progs {
		for _, s := range schemes {
			jobs = append(jobs, job{p, s})
		}
	}
	rows := make([]XValRow, len(jobs))
	err := parallelFor(opts.ctx(), len(jobs), opts.Parallelism, func(i int) error {
		spec, err := sim.SpecForProgram(jobs[i].prog, cfg.Scale)
		if err != nil {
			return err
		}
		res, err := RunSpecsContext(opts.ctx(), []ProgramSpec{spec}, jobs[i].scheme, cfg)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", jobs[i].prog, jobs[i].scheme, err)
		}
		est, err := model.Estimate(cfg, []ProgramSpec{spec}, jobs[i].scheme)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", jobs[i].prog, jobs[i].scheme, err)
		}
		c := res.PerCore[0]
		row := XValRow{
			Program:          jobs[i].prog,
			Scheme:           jobs[i].scheme,
			CycleIPC:         c.IPC,
			AnalyticIPC:      est.Programs[0].IPC,
			CycleM1Frac:      c.M1Fraction,
			AnalyticM1Frac:   est.Programs[0].M1Fraction,
			CycleLifetime:    res.NVM.LifetimeSeconds,
			AnalyticLifetime: est.NVM.LifetimeSeconds,
		}
		if row.CycleIPC > 0 {
			row.IPCError = (row.AnalyticIPC - row.CycleIPC) / row.CycleIPC
		}
		row.M1FracError = math.Abs(row.AnalyticM1Frac - row.CycleM1Frac)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &XValReport{Rows: rows}
	for _, r := range rows {
		e := math.Abs(r.IPCError)
		rep.MeanAbsIPCError += e
		if e > rep.MaxAbsIPCError {
			rep.MaxAbsIPCError = e
		}
		rep.MeanAbsM1FracError += r.M1FracError
		if r.M1FracError > rep.MaxAbsM1FracError {
			rep.MaxAbsM1FracError = r.M1FracError
		}
	}
	if n := float64(len(rows)); n > 0 {
		rep.MeanAbsIPCError /= n
		rep.MeanAbsM1FracError /= n
	}
	return rep, nil
}

// String renders the comparison table plus the error summary.
func (r *XValReport) String() string {
	var b strings.Builder
	t := stats.NewTable("program", "scheme", "cycle IPC", "analytic IPC", "err %", "cycle M1", "analytic M1", "life (cyc)", "life (ana)")
	for _, row := range r.Rows {
		t.AddRowf(row.Program, string(row.Scheme), row.CycleIPC, row.AnalyticIPC,
			100*row.IPCError, row.CycleM1Frac, row.AnalyticM1Frac,
			secsShort(row.CycleLifetime), secsShort(row.AnalyticLifetime))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nIPC error: mean |e|=%.1f%% max |e|=%.1f%%   M1-fraction error: mean=%.3f max=%.3f\n",
		100*r.MeanAbsIPCError, 100*r.MaxAbsIPCError, r.MeanAbsM1FracError, r.MaxAbsM1FracError)
	return b.String()
}

// CSV renders the scatter data: one row per (program, scheme).
func (r *XValReport) CSV() string {
	var b strings.Builder
	b.WriteString(csvRow("program", "scheme", "cycle_ipc", "analytic_ipc", "ipc_rel_error",
		"cycle_m1_fraction", "analytic_m1_fraction", "cycle_lifetime_s", "analytic_lifetime_s") + "\n")
	for _, row := range r.Rows {
		b.WriteString(csvRow(row.Program, string(row.Scheme), f3(row.CycleIPC), f3(row.AnalyticIPC),
			f3(row.IPCError), f3(row.CycleM1Frac), f3(row.AnalyticM1Frac),
			fmt.Sprintf("%.4g", row.CycleLifetime), fmt.Sprintf("%.4g", row.AnalyticLifetime)) + "\n")
	}
	return b.String()
}

// secsShort renders a lifetime in engineer-friendly units.
func secsShort(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 60:
		return fmt.Sprintf("%.3gs", s)
	case s < 86400:
		return fmt.Sprintf("%.3gh", s/3600)
	default:
		return fmt.Sprintf("%.3gy", s/(365.25*86400))
	}
}
