package profess

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	r := &Result{
		Scheme: "profess",
		Cycles: 12345,
		PerCore: []CoreResult{{
			Program: "lbm", Instructions: 1000, IPC: 0.5, FirstIPC: 0.4,
			M1Fraction: 0.9, ReadLatP99: 4096,
		}},
		EnergyEff:    5e7,
		SwapFraction: 0.01,
	}
	s, err := ResultJSON(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Scheme": "profess"`, `"Program": "lbm"`, `"ReadLatP99": 4096`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
	var back Result
	if err := json.Unmarshal([]byte(s), &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != r.Cycles || back.PerCore[0].IPC != r.PerCore[0].IPC {
		t.Error("round trip lost data")
	}
}

func TestWorkloadResultJSON(t *testing.T) {
	wr := &WorkloadResult{
		Workload:        "w09",
		Scheme:          SchemeProFess,
		Result:          &Result{Scheme: "profess"},
		Slowdowns:       []float64{1.5, 2.5},
		AloneIPC:        []float64{0.2, 0.4},
		WeightedSpeedup: 1.07,
		MaxSlowdown:     2.5,
	}
	s, err := WorkloadResultJSON(wr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, `"MaxSlowdown": 2.5`) || !strings.Contains(s, `"Workload": "w09"`) {
		t.Errorf("JSON incomplete:\n%s", s)
	}
}

func TestFullScaleConfig(t *testing.T) {
	cfg := FullScaleConfig()
	if cfg.M1Capacity != 256<<20 {
		t.Errorf("M1 = %d", cfg.M1Capacity)
	}
	if cfg.Instructions != 500_000_000 {
		t.Errorf("instructions = %d", cfg.Instructions)
	}
	if cfg.STCEntries != 8192 || cfg.Cores != 4 || cfg.Channels != 2 {
		t.Errorf("cfg = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("full-scale config invalid: %v", err)
	}
}
