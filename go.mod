module profess

go 1.22
