package profess

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The persistent run-cache tier stores one JSON file per memoised
// simulation under a cache directory, so warm re-runs of an experiment
// sweep perform no simulation even across processes. Entries are
// self-describing envelopes: a format version, a code-version stamp, the
// run key they answer for, and a checksum over the serialised Result.
// Anything that fails those checks — truncated writes that escaped the
// atomic rename, entries from an older format, entries simulated by
// different code — is deleted on sight and treated as a miss, so the
// directory is self-healing and never needs manual invalidation beyond
// `rm -rf` when iterating on unstamped (dirty or test) builds.
//
// Writes are atomic (temp file in the same directory + rename) so a
// crashed or concurrent writer can never publish a half-written entry,
// and concurrent processes sharing one directory at worst both write the
// same bytes. The directory is bounded by an LRU byte cap: loads refresh
// an entry's mtime and the pruner evicts oldest-first.

// runCacheFormat is the on-disk envelope format version. Bump it when the
// envelope or Result serialisation changes shape; every older entry is
// then skipped and deleted on load.
const runCacheFormat = 1

// DefaultRunCacheSizeLimit bounds the cache directory's total size
// (1 GiB) unless SetRunCacheSizeLimit overrides it.
const DefaultRunCacheSizeLimit int64 = 1 << 30

// runCacheCodeStamp identifies the code that produced an entry. Builds
// stamped by the Go toolchain carry their VCS revision (plus "+dirty"
// when the worktree was modified); unstamped builds — `go test`, builds
// outside a checkout — share the stamp "dev". Entries whose stamp differs
// from the running binary's are stale: deleted on load and re-simulated.
var runCacheCodeStamp = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	return "dev"
}()

// diskEnvelope is the on-disk entry format. Result stays raw so the
// checksum verifies the exact bytes that will be decoded.
type diskEnvelope struct {
	Format int             `json:"format"`
	Code   string          `json:"code"`
	Key    string          `json:"key"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

type diskCache struct {
	mu    sync.Mutex
	dir   string // "" = tier disabled
	limit int64
}

var theDiskCache = &diskCache{limit: DefaultRunCacheSizeLimit}

// DefaultRunCacheDir returns the conventional persistent cache location,
// $XDG_CACHE_HOME/profess/runs (falling back to the OS user cache dir),
// or "" when no user cache directory can be determined.
func DefaultRunCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "profess", "runs")
}

// SetRunCacheDir enables the persistent run-cache tier under dir
// (created if missing), or disables it when dir is empty. The tier sits
// below the in-process cache: the singleflight still guarantees each cell
// simulates (or loads) at most once per process. Attaching to a
// directory also sweeps temp files orphaned by writers that died between
// temp-file creation and the atomic rename.
func SetRunCacheDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("profess: run cache dir: %w", err)
		}
		sweepTmpOrphans(dir)
	}
	theDiskCache.mu.Lock()
	theDiskCache.dir = dir
	theDiskCache.mu.Unlock()
	return nil
}

// runCacheTmpGrace is how old a ".tmp-*" file must be before the orphan
// sweeper may remove it. A live writer holds its temp file for
// milliseconds (serialise + write + rename), so anything minutes old was
// stranded by a killed process. Variable for tests.
var runCacheTmpGrace = 15 * time.Minute

// sweepTmpOrphans removes stranded atomic-write temporaries under dir. A
// writer killed between CreateTemp and Rename leaks its ".tmp-*" file;
// nothing ever references it again, so reclaim it once it is old enough
// that no live writer can still own it.
func sweepTmpOrphans(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if time.Since(info.ModTime()) > runCacheTmpGrace {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// RunCacheDir returns the persistent tier's directory ("" when disabled).
func RunCacheDir() string {
	theDiskCache.mu.Lock()
	defer theDiskCache.mu.Unlock()
	return theDiskCache.dir
}

// SetRunCacheSizeLimit caps the persistent tier's total size in bytes
// (DefaultRunCacheSizeLimit initially). The oldest entries by last use are
// evicted once the cap is exceeded; n <= 0 restores the default.
func SetRunCacheSizeLimit(n int64) {
	if n <= 0 {
		n = DefaultRunCacheSizeLimit
	}
	theDiskCache.mu.Lock()
	theDiskCache.limit = n
	theDiskCache.mu.Unlock()
}

func (d *diskCache) snapshot() (dir string, limit int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dir, d.limit
}

func (d *diskCache) path(dir, key string) string {
	return filepath.Join(dir, key+".json")
}

// load fetches and verifies one entry. A vanished file — including one
// another process's LRU eviction removed between our lookup and read —
// is a clean miss: the caller re-simulates and overwrites, no error, no
// deletion. Verification failures of bytes actually read (truncation
// that escaped the atomic rename, older formats, foreign code stamps)
// delete the entry, since those bytes can never become valid; the delete
// is skipped if the file changed size since the read, so a concurrent
// writer's fresh entry is never the casualty of a stale verdict.
func (d *diskCache) load(key string) (*Result, bool) {
	dir, _ := d.snapshot()
	if dir == "" {
		return nil, false
	}
	path := d.path(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		// ENOENT (evicted or never written) and every other read error:
		// a miss, never a deletion — the path may already hold another
		// process's freshly-written entry.
		return nil, false
	}
	// dropCorrupt discards what we read; it must not touch the path if a
	// concurrent writer has since replaced the entry we judged.
	dropCorrupt := func() {
		if st, err := os.Stat(path); err == nil && st.Size() == int64(len(data)) {
			os.Remove(path)
		}
	}
	var env diskEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		dropCorrupt()
		return nil, false
	}
	if env.Format != runCacheFormat || env.Code != runCacheCodeStamp || env.Key != key {
		dropCorrupt()
		return nil, false
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.Sum {
		dropCorrupt()
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		dropCorrupt()
		return nil, false
	}
	// Refresh recency so the LRU pruner keeps live cells. Best-effort:
	// the entry may have been evicted since the read, which only costs
	// the refresh.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return &res, true
}

// has reports whether a verified-shape entry file exists for the key
// without decoding it. The sweep executor uses it to double-check
// journal "done" claims: a cell is only skipped when its result is
// actually present (it may have been LRU-evicted since).
func (d *diskCache) has(key string) bool {
	dir, _ := d.snapshot()
	if dir == "" {
		return false
	}
	st, err := os.Stat(d.path(dir, key))
	return err == nil && st.Size() > 0
}

// storeBufPool recycles the per-store payload encode buffer, and
// storeWriterPool the buffered file writer in front of the temp file.
// Sweep workers store thousands of cells back to back; without pooling,
// every cell re-grows a multi-kilobyte encode buffer from scratch.
var (
	storeBufPool    = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	storeWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 32<<10) }}
)

// jsonString renders s as a JSON string literal.
func jsonString(s string) []byte {
	b, _ := json.Marshal(s)
	return b
}

// store writes one entry atomically, then prunes. Storage is best-effort:
// any failure (including a Result that does not serialise, e.g. a NaN
// metric) just means the cell stays a disk miss.
//
// The Result is serialised exactly once, into a pooled buffer; the
// envelope is then written around it field by field, with the checksum
// streamed over the payload bytes as they go to disk. (The old path
// marshalled the envelope as a whole, which copied the payload a second
// time — the dominant allocation of a warm sweep's write side.) The
// "sum" field is emitted after "result": JSON field order is irrelevant
// to decoding, and trailing placement is what lets the hash stream
// during the single write pass. load() is unchanged — its RawMessage
// captures exactly the payload bytes hashed here (the json.Encoder's
// trailing newline is trimmed before hashing for the same reason).
func (d *diskCache) store(key string, res *Result) {
	dir, _ := d.snapshot()
	if dir == "" {
		return
	}
	buf := storeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer storeBufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(res); err != nil {
		return
	}
	payload := buf.Bytes()
	if n := len(payload); n > 0 && payload[n-1] == '\n' {
		payload = payload[:n-1]
	}

	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return
	}
	bw := storeWriterPool.Get().(*bufio.Writer)
	bw.Reset(tmp)
	releaseWriter := func() {
		bw.Reset(nil)
		storeWriterPool.Put(bw)
	}

	h := sha256.New()
	bw.WriteString(`{"format":`)
	bw.WriteString(strconv.Itoa(runCacheFormat))
	bw.WriteString(`,"code":`)
	bw.Write(jsonString(runCacheCodeStamp))
	bw.WriteString(`,"key":`)
	bw.Write(jsonString(key))
	bw.WriteString(`,"result":`)
	if _, err := io.MultiWriter(bw, h).Write(payload); err != nil {
		releaseWriter()
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	bw.WriteString(`,"sum":"`)
	bw.WriteString(hex.EncodeToString(h.Sum(nil)))
	bw.WriteString(`"}`)
	if err := bw.Flush(); err != nil {
		releaseWriter()
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	releaseWriter()
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(dir, key)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	d.prune(dir)
}

// prune evicts entries oldest-first until the directory fits the size
// cap. Serialised under the cache mutex so concurrent stores do not race
// the directory scan. Only ".json" entries count toward the size cap and
// are eviction candidates: orphaned temp files (reclaimed separately by
// sweepTmpOrphans once stale), lease/journal subdirectories and other
// foreign files neither inflate the accounted size nor get evicted.
func (d *diskCache) prune(dir string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dir != dir {
		return // retargeted while storing
	}
	sweepTmpOrphans(dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	type ent struct {
		path  string
		size  int64
		mtime time.Time
	}
	var (
		files []ent
		total int64
	)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, ent{filepath.Join(dir, e.Name()), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= d.limit {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	for _, f := range files {
		if total <= d.limit {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
		}
	}
}
