// Oracle bound: how close does MDM's probabilistic prediction come to a
// profile-guided static-placement oracle? The oracle runs the program
// twice — first to count every block's accesses, then with each swap
// group's most-accessed block placed into M1 — bounding what any one-shot
// placement could achieve.
//
//	go run ./examples/oracle-bound
package main

import (
	"fmt"
	"log"

	"profess"
)

func main() {
	cfg := profess.SingleCoreConfig(profess.PaperScale)
	cfg.Instructions = 800_000

	fmt.Println("MDM vs the profile-guided static-placement oracle")
	fmt.Println("program     static   MDM      oracle   MDM/oracle")
	for _, prog := range []string{"lbm", "soplex", "zeusmp"} {
		spec, err := profess.SpecFor(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		static, err := profess.RunSpecs([]profess.ProgramSpec{spec}, profess.SchemeStatic, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mdm, err := profess.RunSpecs([]profess.ProgramSpec{spec}, profess.SchemeMDM, cfg)
		if err != nil {
			log.Fatal(err)
		}
		oracle, err := profess.RunOracle(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %.3f    %.3f    %.3f    %.2f\n",
			prog, static.PerCore[0].IPC, mdm.PerCore[0].IPC, oracle.PerCore[0].IPC,
			mdm.PerCore[0].IPC/oracle.PerCore[0].IPC)
	}
	fmt.Println()
	fmt.Println("MDM's predicted-remaining-accesses decisions recover essentially")
	fmt.Println("all of the statically reachable benefit — and can exceed it on")
	fmt.Println("programs with phase changes, which no static placement can track.")
}
