// Fairness: reproduce the paper's motivating story (Figs. 2 and 16) on
// workload w09 — under PoM some programs suffer excessive slowdowns;
// MDM speeds everyone a little; ProFess deliberately slows the least
// suffering programs to help the most suffering one, reducing the maximum
// slowdown while also improving weighted speedup.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"profess"
)

func main() {
	cfg := profess.MultiCoreConfig(profess.PaperScale)
	cfg.Instructions = 1_000_000 // demo-sized; raise for fidelity

	cache := profess.NewBaselineCache()
	fmt.Println("workload w09 (mcf - soplex - lbm - GemsFDTD), quad-core system")
	fmt.Println()
	for _, scheme := range []profess.Scheme{profess.SchemePoM, profess.SchemeMDM, profess.SchemeProFess} {
		wr, err := profess.RunWorkload("w09", scheme, cfg, cache)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", scheme)
		for i, c := range wr.Result.PerCore {
			fmt.Printf("  %-10s slowdown %.2f  (IPC %.3f, alone %.3f)\n",
				c.Program, wr.Slowdowns[i], c.FirstIPC, wr.AloneIPC[i])
		}
		fmt.Printf("  -> max slowdown %.2f (unfairness), weighted speedup %.3f, swap fraction %.4f\n\n",
			wr.MaxSlowdown, wr.WeightedSpeedup, wr.Result.SwapFraction)
	}
	fmt.Println("Expected shape: ProFess has the lowest max slowdown without giving")
	fmt.Println("up weighted speedup (the paper reports -15% unfairness, +12% WS).")
}
