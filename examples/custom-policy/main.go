// Custom policy: implement a user-defined migration algorithm against the
// public Policy interface and race it against the built-in schemes.
//
// The example policy is "hot-threshold": promote an M2 block once its STC
// access counter crosses a fixed threshold — a deliberately simple
// strawman between CAMEO (threshold 1) and PoM's adaptive thresholds.
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"log"

	"profess"
)

// hotThreshold promotes any M2 block whose access counter reaches N.
type hotThreshold struct {
	profess.BasePolicy
	N uint32
}

// Name identifies the policy in reports.
func (h *hotThreshold) Name() string { return fmt.Sprintf("hot%d", h.N) }

// WriteWeight counts writes like reads.
func (h *hotThreshold) WriteWeight() int { return 1 }

// OnAccess promotes when the block's counter crosses the threshold.
func (h *hotThreshold) OnAccess(info profess.AccessInfo, ctl profess.PolicyContext) {
	if info.Loc == 0 {
		return // already in M1
	}
	if info.Entry.Count(info.Slot) >= h.N {
		ctl.ScheduleSwap(info.Group, info.Slot)
	}
}

func main() {
	cfg := profess.SingleCoreConfig(profess.PaperScale)
	cfg.Instructions = 800_000

	spec, err := profess.SpecFor("soplex", cfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := []profess.ProgramSpec{spec}

	fmt.Println("soplex (mixed regular/irregular) under custom and built-in policies")
	fmt.Println("policy    IPC     M1-served  swaps")
	for _, n := range []uint32{1, 4, 16} {
		res, err := profess.RunWithPolicy(specs, &hotThreshold{N: n}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		c := res.PerCore[0]
		fmt.Printf("%-8s  %.3f   %6.1f%%    %d\n", res.Scheme, c.IPC, 100*c.M1Fraction, c.Swaps)
	}
	for _, s := range []profess.Scheme{profess.SchemePoM, profess.SchemeMDM} {
		res, err := profess.RunSpecs(specs, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		c := res.PerCore[0]
		fmt.Printf("%-8s  %.3f   %6.1f%%    %d\n", res.Scheme, c.IPC, 100*c.M1Fraction, c.Swaps)
	}
	fmt.Println()
	fmt.Println("A fixed threshold is one-size-fits-all (§2.5); MDM's predicted")
	fmt.Println("remaining accesses adapt per block pair.")
}
