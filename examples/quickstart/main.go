// Quickstart: run one SPEC-like program on the single-core hybrid-memory
// system under three migration schemes and compare the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"profess"
)

func main() {
	cfg := profess.SingleCoreConfig(profess.PaperScale)
	cfg.Instructions = 1_000_000 // keep the demo fast; raise for fidelity

	fmt.Println("lbm (write-heavy streaming stencil) on the single-core system")
	fmt.Println("scheme    IPC     M1-served  STC hit  swaps")
	for _, scheme := range []profess.Scheme{profess.SchemeStatic, profess.SchemePoM, profess.SchemeMDM} {
		res, err := profess.RunProgram("lbm", scheme, cfg)
		if err != nil {
			log.Fatal(err)
		}
		c := res.PerCore[0]
		fmt.Printf("%-8s  %.3f   %6.1f%%    %5.1f%%   %d\n",
			scheme, c.IPC, 100*c.M1Fraction, 100*c.STCHitRate, c.Swaps)
	}
	fmt.Println()
	fmt.Println("MDM's individual cost-benefit analysis should beat PoM's global")
	fmt.Println("threshold here (the paper's Fig. 5 reports +38% for lbm).")
}
