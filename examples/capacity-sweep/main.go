// Capacity sweep: the §5.2 sensitivity study as a library user would run
// it — sweep the M1:M2 capacity ratio (keeping M2 fixed) and watch how
// the benefit of smart migration shrinks as M1 grows.
//
//	go run ./examples/capacity-sweep
package main

import (
	"fmt"
	"log"

	"profess"
)

func main() {
	base := profess.SingleCoreConfig(profess.PaperScale)
	base.Instructions = 800_000

	programs := []string{"lbm", "mcf", "soplex"}
	fmt.Println("MDM vs PoM IPC across M1:M2 capacity ratios (M2 fixed)")
	fmt.Printf("%-8s", "ratio")
	for _, p := range programs {
		fmt.Printf("  %-10s", p)
	}
	fmt.Println()

	for _, n := range []int{4, 8, 16} {
		cfg := base.WithM1Ratio(n)
		fmt.Printf("1:%-6d", n)
		for _, p := range programs {
			pom, err := profess.RunProgram(p, profess.SchemePoM, cfg)
			if err != nil {
				log.Fatal(err)
			}
			mdm, err := profess.RunProgram(p, profess.SchemeMDM, cfg)
			if err != nil {
				log.Fatal(err)
			}
			ratio := mdm.PerCore[0].IPC / pom.PerCore[0].IPC
			fmt.Printf("  %-10.3f", ratio)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Expected shape: a larger M1 (1:4) relaxes the competition and")
	fmt.Println("narrows MDM's edge; a smaller M1 (1:16) preserves or widens it.")
}
