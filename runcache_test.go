package profess

import (
	"testing"
)

// TestRunCacheMemoises checks that two identical runs share one simulation
// and that the toggle and reset work.
func TestRunCacheMemoises(t *testing.T) {
	ResetRunCache()
	SetRunCaching(true)
	defer SetRunCaching(true)

	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 50_000
	r1, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical runs should share one cached Result")
	}
	if hits, misses := RunCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A different scheme is a different cell.
	if _, err := RunProgram("mcf", SchemeMDM, cfg); err != nil {
		t.Fatal(err)
	}
	if _, misses := RunCacheStats(); misses != 2 {
		t.Errorf("different scheme should miss; misses = %d", misses)
	}

	// Disabling the cache forces a fresh simulation.
	SetRunCaching(false)
	r3, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("caching disabled: run should not come from the cache")
	}
	SetRunCaching(true)

	ResetRunCache()
	if hits, misses := RunCacheStats(); hits != 0 || misses != 0 {
		t.Errorf("reset left stats %d/%d", hits, misses)
	}
}

// TestRunCacheBypassesTelemetry pins the soundness rule: a telemetry-
// enabled run carries a private stateful sampler and must never be shared.
func TestRunCacheBypassesTelemetry(t *testing.T) {
	ResetRunCache()
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 50_000
	cfg.TelemetryEvery = 10_000
	r1, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("telemetry-enabled runs must bypass the cache")
	}
	if hits, _ := RunCacheStats(); hits != 0 {
		t.Errorf("telemetry runs recorded %d cache hits, want 0", hits)
	}
}
