package profess

import (
	"sync"
	"testing"
)

// TestRunCacheMemoises checks that two identical runs share one simulation
// and that the toggle and reset work.
func TestRunCacheMemoises(t *testing.T) {
	ResetRunCache()
	SetRunCaching(true)
	defer SetRunCaching(true)

	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 50_000
	r1, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical runs should share one cached Result")
	}
	if hits, misses := RunCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A different scheme is a different cell.
	if _, err := RunProgram("mcf", SchemeMDM, cfg); err != nil {
		t.Fatal(err)
	}
	if _, misses := RunCacheStats(); misses != 2 {
		t.Errorf("different scheme should miss; misses = %d", misses)
	}

	// Disabling the cache forces a fresh simulation.
	SetRunCaching(false)
	r3, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("caching disabled: run should not come from the cache")
	}
	SetRunCaching(true)

	ResetRunCache()
	if hits, misses := RunCacheStats(); hits != 0 || misses != 0 {
		t.Errorf("reset left stats %d/%d", hits, misses)
	}
}

// hammerCell fires n concurrent callers at one cell and returns the
// Results they observed. Run under -race this doubles as a data-race
// check on the cache's singleflight.
func hammerCell(t *testing.T, n int, cfg Config) []*Result {
	t.Helper()
	results := make([]*Result, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			r, err := RunProgram("mcf", SchemePoM, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	close(start)
	wg.Wait()
	return results
}

// TestRunCacheSingleflightConcurrent checks the singleflight contract for
// both tiers: N concurrent callers of one cell observe exactly one miss
// (one simulation, or one disk load on the warm pass) and share one
// *Result.
func TestRunCacheSingleflightConcurrent(t *testing.T) {
	dir := t.TempDir()
	ResetRunCache()
	SetRunCaching(true)
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetRunCacheDir(""); err != nil {
			t.Fatal(err)
		}
		ResetRunCache()
	}()

	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 30_000
	const n = 16

	// Cold: exactly one simulation, n-1 singleflight joins, one shared
	// pointer.
	cold := hammerCell(t, n, cfg)
	for i := 1; i < n; i++ {
		if cold[i] != cold[0] {
			t.Fatalf("caller %d saw a different Result pointer", i)
		}
	}
	if d := RunCacheDetail(); d.Sims != 1 || d.MemHits != n-1 || d.DiskHits != 0 {
		t.Errorf("cold pass: %+v, want 1 sim / %d mem hits / 0 disk hits", d, n-1)
	}

	// Warm disk tier: drop the in-process tier; n concurrent callers must
	// trigger exactly one disk load, zero simulations, and again share one
	// pointer.
	ResetRunCache()
	warm := hammerCell(t, n, cfg)
	for i := 1; i < n; i++ {
		if warm[i] != warm[0] {
			t.Fatalf("warm caller %d saw a different Result pointer", i)
		}
	}
	if d := RunCacheDetail(); d.Sims != 0 || d.DiskHits != 1 || d.MemHits != n-1 {
		t.Errorf("warm pass: %+v, want 0 sims / 1 disk hit / %d mem hits", d, n-1)
	}
}

// TestRunCacheBypassesTelemetry pins the soundness rule: a telemetry-
// enabled run carries a private stateful sampler and must never be shared.
func TestRunCacheBypassesTelemetry(t *testing.T) {
	ResetRunCache()
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 50_000
	cfg.TelemetryEvery = 10_000
	r1, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("telemetry-enabled runs must bypass the cache")
	}
	if hits, _ := RunCacheStats(); hits != 0 {
		t.Errorf("telemetry runs recorded %d cache hits, want 0", hits)
	}
}

// TestRunCacheCountersTable pins the pure accounting helpers: HitRate's
// zero-total guard and division, and Sub's per-tier deltas (including
// negative ones, which callers rely on never being clamped).
func TestRunCacheCountersTable(t *testing.T) {
	cases := []struct {
		name    string
		c       RunCacheCounters
		hitRate float64
	}{
		{"zero", RunCacheCounters{}, 0},
		{"all sims", RunCacheCounters{Sims: 7}, 0},
		{"all mem", RunCacheCounters{MemHits: 4}, 1},
		{"all disk", RunCacheCounters{DiskHits: 9}, 1},
		{"mixed", RunCacheCounters{MemHits: 2, DiskHits: 1, Sims: 1}, 0.75},
		{"mostly sims", RunCacheCounters{MemHits: 1, Sims: 3}, 0.25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.c.HitRate(); got != tc.hitRate {
				t.Errorf("HitRate(%+v) = %v, want %v", tc.c, got, tc.hitRate)
			}
		})
	}

	subCases := []struct {
		name         string
		now, earlier RunCacheCounters
		want         RunCacheCounters
	}{
		{"zero minus zero", RunCacheCounters{}, RunCacheCounters{}, RunCacheCounters{}},
		{"plain delta",
			RunCacheCounters{MemHits: 5, DiskHits: 3, Sims: 9},
			RunCacheCounters{MemHits: 2, DiskHits: 3, Sims: 4},
			RunCacheCounters{MemHits: 3, DiskHits: 0, Sims: 5}},
		{"negative after reset",
			RunCacheCounters{Sims: 1},
			RunCacheCounters{MemHits: 2, Sims: 4},
			RunCacheCounters{MemHits: -2, Sims: -3}},
	}
	for _, tc := range subCases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.now.Sub(tc.earlier); got != tc.want {
				t.Errorf("%+v.Sub(%+v) = %+v, want %+v", tc.now, tc.earlier, got, tc.want)
			}
		})
	}
}

// TestRunCacheDetailTiers checks the per-tier attribution RunCacheDetail
// reports: a cold run is a sim, a repeat is a memory hit, and the
// aggregate RunCacheStats view stays consistent with the detail.
func TestRunCacheDetailTiers(t *testing.T) {
	ResetRunCache()
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 50_000
	if _, err := RunProgram("mcf", SchemePoM, cfg); err != nil {
		t.Fatal(err)
	}
	if d := RunCacheDetail(); d != (RunCacheCounters{Sims: 1}) {
		t.Fatalf("cold run: %+v, want exactly one sim", d)
	}
	before := RunCacheDetail()
	if _, err := RunProgram("mcf", SchemePoM, cfg); err != nil {
		t.Fatal(err)
	}
	if d := RunCacheDetail().Sub(before); d != (RunCacheCounters{MemHits: 1}) {
		t.Fatalf("warm run delta: %+v, want exactly one mem hit", d)
	}
	hits, misses := RunCacheStats()
	d := RunCacheDetail()
	if hits != d.MemHits+d.DiskHits || misses != d.Sims {
		t.Errorf("RunCacheStats (%d, %d) inconsistent with detail %+v", hits, misses, d)
	}
}

// TestRunCacheShardInvariant pins the runKey normalisation of the shard
// knob: the worker count of a clustered run cannot split cache cells —
// -shards 1 and -shards 8 are the same simulation (byte-identical by the
// sim package's sweep test), so they must share one cached Result, while
// Clusters (a topology change) must not.
func TestRunCacheShardInvariant(t *testing.T) {
	ResetRunCache()
	SetRunCaching(true)
	defer SetRunCaching(true)

	cfg := Scale16Config(PaperScale)
	cfg.Instructions = 5_000
	specs, err := Fleet16Specs(cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 1
	r1, err := RunSpecs(specs, SchemeProFess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 8
	r8, err := RunSpecs(specs, SchemeProFess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r8 {
		t.Error("shards=1 and shards=8 runs should share one cached Result")
	}
	if hits, misses := RunCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1 (shards must not split the key)", hits, misses)
	}

	// Clusters is semantic: a different topology is a different cell.
	if runKey(cfg, specs, SchemeProFess) == runKey(MultiCoreConfig(PaperScale), specs, SchemeProFess) {
		t.Error("different topologies hashed to one key")
	}
	ResetRunCache()
}
