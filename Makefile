# Tier-1+ verification gate. `make check` is the bar every change must
# clear before merging: vet, full build, and the test suite under the
# race detector.

GO ?= go

# Minimum total test coverage (percent) enforced by `make cover`.
COVER_MIN ?= 70

# How long each fuzz target runs in `make fuzz-smoke`.
FUZZTIME ?= 10s

.PHONY: check vet build test test-race bench quick cover fuzz-smoke

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# quick runs the short suite only (skips the simulation-heavy tests).
quick:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem

# cover fails the build when total statement coverage drops under COVER_MIN.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) ' \
		/^total:/ { sub(/%/, "", $$3); total = $$3 } \
		END { \
			printf "total coverage: %.1f%% (minimum %s%%)\n", total, min; \
			if (total + 0 < min + 0) { print "coverage below minimum"; exit 1 } \
		}'

# fuzz-smoke gives each fuzz target a short budget — enough to catch
# regressions on the checked-in seeds plus a little exploration.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadTrace -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzParsePlan -fuzztime=$(FUZZTIME) ./internal/fault
