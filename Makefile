# Tier-1+ verification gate. `make check` is the bar every change must
# clear before merging: vet, full build, and the test suite under the
# race detector.

GO ?= go

.PHONY: check vet build test test-race bench quick

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# quick runs the short suite only (skips the simulation-heavy tests).
quick:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem
