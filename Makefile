# Tier-1+ verification gate. `make check` is the bar every change must
# clear before merging: vet, full build, and the test suite under the
# race detector.

GO ?= go

# Minimum total test coverage (percent) enforced by `make cover`.
COVER_MIN ?= 70

# How long each fuzz target runs in `make fuzz-smoke`.
FUZZTIME ?= 10s

.PHONY: check vet build test test-race bench bench-json bench-smoke quick cover fuzz-smoke

# Label recorded for a `make bench-json` run inside BENCH_FILE.
BENCH_LABEL ?= local
# Trajectory file bench-json appends to (committed: the PR's before/after).
BENCH_FILE ?= BENCH_PR3.json

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# quick runs the short suite only (skips the simulation-heavy tests).
quick:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-json runs the full suite once per benchmark and records ns/op,
# B/op, allocs/op and every custom metric into $(BENCH_FILE) under
# $(BENCH_LABEL). Re-running with the same label replaces that run, so the
# committed trajectory stays one-entry-per-milestone.
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' | \
		bin/benchjson -label $(BENCH_LABEL) -o $(BENCH_FILE)

# bench-smoke is the CI guard: every benchmark must still run to
# completion (one iteration, no timing assertions).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# cover fails the build when total statement coverage drops under COVER_MIN.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) ' \
		/^total:/ { sub(/%/, "", $$3); total = $$3 } \
		END { \
			printf "total coverage: %.1f%% (minimum %s%%)\n", total, min; \
			if (total + 0 < min + 0) { print "coverage below minimum"; exit 1 } \
		}'

# fuzz-smoke gives each fuzz target a short budget — enough to catch
# regressions on the checked-in seeds plus a little exploration.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadTrace -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzParsePlan -fuzztime=$(FUZZTIME) ./internal/fault
