# Tier-1+ verification gate. `make check` is the bar every change must
# clear before merging: vet, full build, and the test suite under the
# race detector.

GO ?= go

# Minimum total test coverage (percent) enforced by `make cover`.
COVER_MIN ?= 70

# How long each fuzz target runs in `make fuzz-smoke`.
FUZZTIME ?= 10s

.PHONY: check vet build test test-race bench bench-json bench-smoke sweep-bench sweep-smoke chaos-smoke xval-smoke shard-smoke shard-bench arena-smoke sample-smoke sample-bench quick cover fuzz-smoke

# Minimum statement coverage (percent) for internal/analytic, enforced by
# `make xval-smoke`: the closed-form tier is only trustworthy while its
# invariant and error-envelope tests actually exercise it.
ANALYTIC_COVER_MIN ?= 80

# Label recorded for a `make bench-json` run inside BENCH_FILE.
BENCH_LABEL ?= local
# Trajectory file bench-json appends to (committed: the PR's before/after).
BENCH_FILE ?= BENCH_PR4.json

# Sweep settings for sweep-bench / sweep-smoke: small enough for CI,
# large enough that a cache hit is clearly cheaper than a simulation.
SWEEP_EXPS ?= fig2,fig5,fig10,fig16
SWEEP_INSTR ?= 200000
SWEEP_WORKLOADS ?= w09,w16,w19

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# quick runs the short suite only (skips the simulation-heavy tests).
quick:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-json runs the full suite once per benchmark and records ns/op,
# B/op, allocs/op and every custom metric into $(BENCH_FILE) under
# $(BENCH_LABEL). Re-running with the same label replaces that run, so the
# committed trajectory stays one-entry-per-milestone.
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' | \
		bin/benchjson -label $(BENCH_LABEL) -o $(BENCH_FILE)

# bench-smoke is the CI guard: every benchmark must still run to
# completion (one iteration, no timing assertions).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# sweep-bench records the planner's trajectory into $(BENCH_FILE): a
# cache-disabled baseline (the honest end-to-end cost), a cold planned
# sweep into a fresh cache directory, and a warm re-run served entirely
# from disk. Reports go to /dev/null — only the timings matter here.
sweep-bench:
	$(GO) build -o bin/professbench ./cmd/professbench
	$(GO) build -o bin/benchjson ./cmd/benchjson
	rm -rf bin/sweepcache && mkdir -p bin/sweepcache
	bin/professbench -exp $(SWEEP_EXPS) -instr $(SWEEP_INSTR) -workloads $(SWEEP_WORKLOADS) \
		-nocache -cachedir off -benchout bin/sweep-nocache.txt > /dev/null
	bin/benchjson -label sweep-nocache -o $(BENCH_FILE) < bin/sweep-nocache.txt
	bin/professbench -exp $(SWEEP_EXPS) -instr $(SWEEP_INSTR) -workloads $(SWEEP_WORKLOADS) \
		-cachedir bin/sweepcache -benchout bin/sweep-cold.txt > /dev/null
	bin/benchjson -label sweep-cold -o $(BENCH_FILE) < bin/sweep-cold.txt
	bin/professbench -exp $(SWEEP_EXPS) -instr $(SWEEP_INSTR) -workloads $(SWEEP_WORKLOADS) \
		-cachedir bin/sweepcache -benchout bin/sweep-warm.txt > /dev/null
	bin/benchjson -label sweep-warm -o $(BENCH_FILE) < bin/sweep-warm.txt

# sweep-smoke is the CI guard for the persistent run cache: one sweep
# runs twice against one cache directory in separate processes. The warm
# pass must be >=90% cache hits and its report byte-identical to the
# cold pass; the cold/warm wall times print for the job summary.
sweep-smoke:
	$(GO) build -o bin/professbench ./cmd/professbench
	rm -rf bin/smokecache && mkdir -p bin/smokecache
	bin/professbench -exp $(SWEEP_EXPS) -instr $(SWEEP_INSTR) -workloads $(SWEEP_WORKLOADS) \
		-cachedir bin/smokecache -benchout bin/smoke-cold.txt > bin/smoke-cold.out
	bin/professbench -exp $(SWEEP_EXPS) -instr $(SWEEP_INSTR) -workloads $(SWEEP_WORKLOADS) \
		-cachedir bin/smokecache -benchout bin/smoke-warm.txt > bin/smoke-warm.out
	cmp bin/smoke-cold.out bin/smoke-warm.out
	@awk '/^BenchmarkExp\/total / { rate = -1; \
		for (i = 1; i < NF; i++) if ($$(i+1) == "hit-rate-%") rate = $$i; \
		printf "warm sweep hit rate: %s%%\n", rate; \
		if (rate + 0 < 90) { print "run-cache hit rate below 90%"; exit 1 } }' bin/smoke-warm.txt
	@awk '/^BenchmarkExp\/total /{printf "cold sweep: %.2fs\n", $$3 / 1e9}' bin/smoke-cold.txt
	@awk '/^BenchmarkExp\/total /{printf "warm sweep: %.2fs\n", $$3 / 1e9}' bin/smoke-warm.txt

# chaos-smoke is the CI guard for crash-safe sweeps. It runs the kill -9
# chaos harness plus the cancellation/retry/multi-process-write tests
# under the race detector, then drives a real professbench sweep:
# interrupted with SIGINT mid-execute (must drain and exit 130, or 0 if
# it finished first) and resumed to completion against the same cache
# directory. The gate: the cache directory ends with zero lease files,
# zero takeover temporaries and zero atomic-write temp files.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos|TestExecuteCancelLeavesResumableJournal|TestExecuteRetriesTransientFailures|TestExecuteExhaustsAttempts|TestDiskCacheMultiProcessWrites|TestDiskCacheSweepsTmpOrphans' .
	$(GO) build -o bin/professbench ./cmd/professbench
	rm -rf bin/chaoscache && mkdir -p bin/chaoscache
	timeout --preserve-status -s INT 2 bin/professbench -exp fig10 -instr 3000000 -workloads w09 \
		-cachedir bin/chaoscache > /dev/null; status=$$?; \
	if [ $$status -ne 130 ] && [ $$status -ne 0 ]; then \
		echo "interrupted sweep exited $$status, want 130 (drained) or 0 (finished early)"; exit 1; fi
	bin/professbench -exp fig10 -instr 3000000 -workloads w09 -cachedir bin/chaoscache > /dev/null
	@leaks=$$(find bin/chaoscache \( -name '*.lease' -o -name '*.lease.reap-*' -o -name '.tmp-*' \) | wc -l); \
	if [ $$leaks -ne 0 ]; then \
		echo "leaked lease/temp files:"; \
		find bin/chaoscache \( -name '*.lease' -o -name '*.lease.reap-*' -o -name '.tmp-*' \); exit 1; fi; \
	echo "chaos smoke: no leaked lease or temp files"

# shard-smoke is the CI guard for the sharded event engine. Under the
# race detector it runs the epoch-barrier engine tests, the fixed-seed
# shard-count sweep (byte-identical Result JSON and telemetry for shards
# 1/2/4/8) and the run-cache shard invariance; then a real professim
# scale16 run at 1 and 8 shards (cache off, so both simulate) must print
# byte-identical JSON. The zero-allocation overflow-migration guard rides
# along without -race (the race runtime allocates on its own).
shard-smoke:
	$(GO) test -race -count=1 -run 'TestShardGroup|TestZeroAllocMigrationDrain' ./internal/event
	$(GO) test -race -count=1 -timeout 30m \
		-run 'TestShardCountSweepByteIdentical|TestClusteredResultShape|TestClusterSliceDerivation' ./internal/sim
	$(GO) test -race -count=1 -run 'TestRunCacheShardInvariant' .
	$(GO) test -count=1 -run 'TestZeroAlloc' ./internal/event
	$(GO) build -o bin/professim ./cmd/professim
	bin/professim -preset scale16 -instr 50000 -shards 1 -nocache -json > bin/shard1.json
	bin/professim -preset scale16 -instr 50000 -shards 8 -nocache -json > bin/shard8.json
	cmp bin/shard1.json bin/shard8.json
	@echo "shard smoke: 1-shard and 8-shard scale16 runs byte-identical"

# shard-bench records the scale16 shard-scaling curve (wall time, speedup
# over shards=1, gomaxprocs) into $(BENCH_FILE) — committed for PR8 as
# BENCH_PR8.json. Speedup is bounded by the host's GOMAXPROCS; see the
# README's Performance section before reading anything into a 1-CPU run.
SHARD_BENCHTIME ?= 3x
shard-bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -bench=BenchmarkScale16Shards -benchtime=$(SHARD_BENCHTIME) -run='^$$' | \
		bin/benchjson -label $(BENCH_LABEL) -o $(BENCH_FILE)

# arena-smoke is the CI guard for simulation-state arena reuse. The
# differential arena-vs-fresh tests run under the race detector, then a
# cold deterministic sweep (fig5: 18 cells, no cache, no disk) runs twice
# — arena on and -noarena — with GODEBUG=gctrace=1 so the GC log lands in
# the job output. The gates: both reports byte-identical, and the
# arena-on pass stays under a fixed allocation budget per cell
# (ARENA_ALLOC_BUDGET), which fresh construction exceeds several-fold.
# Deliberately excludes scale16: its report prints wall-clock scaling
# tables, so it can never be byte-compared across runs.
ARENA_EXPS ?= fig5
ARENA_INSTR ?= 100000
ARENA_ALLOC_BUDGET ?= 2500
arena-smoke:
	$(GO) test -race -count=1 -run 'TestArena' ./internal/sim
	$(GO) build -o bin/professbench ./cmd/professbench
	GODEBUG=gctrace=1 bin/professbench -exp $(ARENA_EXPS) -instr $(ARENA_INSTR) \
		-nocache -cachedir off -benchout bin/arena-on.txt > bin/arena-on.out 2> bin/arena-on.gc
	GODEBUG=gctrace=1 bin/professbench -exp $(ARENA_EXPS) -instr $(ARENA_INSTR) \
		-nocache -cachedir off -noarena -benchout bin/arena-off.txt > bin/arena-off.out 2> bin/arena-off.gc
	cmp bin/arena-on.out bin/arena-off.out
	@awk '/^BenchmarkExp\/total / { allocs = -1; sims = -1; \
		for (i = 1; i < NF; i++) { \
			if ($$(i+1) == "allocs") allocs = $$i; \
			if ($$(i+1) == "sims") sims = $$i; \
		} \
		if (sims <= 0) { print "arena sweep ran no sims"; exit 1 } \
		per = allocs / sims; \
		printf "arena-on:  %d allocs / %d cells = %.0f allocs/cell (budget $(ARENA_ALLOC_BUDGET))\n", allocs, sims, per; \
		if (per > $(ARENA_ALLOC_BUDGET)) { print "arena allocation budget exceeded"; exit 1 } }' bin/arena-on.txt
	@awk '/^BenchmarkExp\/total / { allocs = -1; sims = -1; \
		for (i = 1; i < NF; i++) { \
			if ($$(i+1) == "allocs") allocs = $$i; \
			if ($$(i+1) == "sims") sims = $$i; \
		} \
		printf "arena-off: %d allocs / %d cells = %.0f allocs/cell\n", allocs, sims, allocs / sims }' bin/arena-off.txt
	@printf "gc cycles: arena-on %s, arena-off %s\n" \
		"$$(grep -c '^gc ' bin/arena-on.gc || true)" "$$(grep -c '^gc ' bin/arena-off.gc || true)"

# sample-smoke is the CI guard for the sampled-simulation tier (interval
# sampling with functional fast-forward). Under the race detector it runs
# the exactness contracts — fraction 1.0 byte-identical to the full run
# across schemes/seeds/faults, sampled-run determinism, the
# error-shrinks-with-fraction property, the validation rejections and the
# run-key normalisation guard — then enforces the committed
# accuracy/speedup envelope (testdata/sample_envelope.json) at standard
# scale, and finally drives a real professbench sweep with -sample: every
# eligible cell must be rewritten to the sampled tier and served back
# under its full-fidelity key.
SAMPLE_EXPS ?= fig10
SAMPLE_INSTR ?= 2000000
SAMPLE_WORKLOADS ?= w09,w16
sample-smoke:
	$(GO) test -race -count=1 -run 'TestSampled|TestSamplingValidation' ./internal/sim
	$(GO) test -race -count=1 -run 'TestRunKeySamplingNormalised|TestSweepPlanSample' .
	$(GO) test -count=1 -timeout 30m -run 'TestSampleEnvelope|TestSampleValReportRendering' .
	$(GO) build -o bin/professbench ./cmd/professbench
	bin/professbench -exp $(SAMPLE_EXPS) -instr $(SAMPLE_INSTR) -workloads $(SAMPLE_WORKLOADS) \
		-cachedir off -sample 0.25 > bin/sample-sweep.out 2> bin/sample-sweep.err
	@grep -E 'sample: [1-9][0-9]* of [0-9]+ cells rewritten' bin/sample-sweep.err || \
		{ echo "sampled sweep rewrote no cells"; cat bin/sample-sweep.err; exit 1; }
	@grep -E '[1-9][0-9]* cells served by their sampled runs' bin/sample-sweep.err || \
		{ echo "sampled sweep served no full-fidelity keys"; cat bin/sample-sweep.err; exit 1; }
	@echo "sample smoke: sampled sweep rewrote and served its cells"

# sample-bench records the fidelity ladder's wall-clock trajectory into
# $(BENCH_FILE) — committed for PR10 as BENCH_PR10.json: the standard
# multi-program sweep cold at full fidelity, then cold again on the
# sampled tier at $(SAMPLE_FRACTION). The ns/op ratio of the two total
# lines is the sweep speedup the envelope's floor tracks.
SAMPLE_FRACTION ?= 0.05
SAMPLE_BENCH_EXPS ?= fig10
sample-bench:
	$(GO) build -o bin/professbench ./cmd/professbench
	$(GO) build -o bin/benchjson ./cmd/benchjson
	bin/professbench -exp $(SAMPLE_BENCH_EXPS) -instr 0 -cachedir off \
		-benchout bin/sample-full.txt > /dev/null
	bin/benchjson -label sweep-full-fidelity -o $(BENCH_FILE) < bin/sample-full.txt
	bin/professbench -exp $(SAMPLE_BENCH_EXPS) -instr 0 -cachedir off -sample $(SAMPLE_FRACTION) \
		-benchout bin/sample-sampled.txt > /dev/null
	bin/benchjson -label sweep-sampled -o $(BENCH_FILE) < bin/sample-sampled.txt

# xval-smoke is the CI guard for the analytic fast tier: the committed
# cross-validation error envelope and the sweep-pruning safety audit
# (prune rate, figure transparency, true-delta margin) run under the
# race detector, then internal/analytic must clear its own coverage
# floor.
xval-smoke:
	$(GO) test -race -count=1 -timeout 30m \
		-run 'TestXValEnvelope|TestXValReportRendering|TestPruneSafety' .
	@mkdir -p bin
	$(GO) test -coverprofile=bin/analytic-cover.out ./internal/analytic
	@$(GO) tool cover -func=bin/analytic-cover.out | awk -v min=$(ANALYTIC_COVER_MIN) ' \
		/^total:/ { sub(/%/, "", $$3); total = $$3 } \
		END { \
			printf "internal/analytic coverage: %.1f%% (minimum %s%%)\n", total, min; \
			if (total + 0 < min + 0) { print "analytic coverage below minimum"; exit 1 } \
		}'

# cover fails the build when total statement coverage drops under COVER_MIN.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) ' \
		/^total:/ { sub(/%/, "", $$3); total = $$3 } \
		END { \
			printf "total coverage: %.1f%% (minimum %s%%)\n", total, min; \
			if (total + 0 < min + 0) { print "coverage below minimum"; exit 1 } \
		}'

# fuzz-smoke gives each fuzz target a short budget — enough to catch
# regressions on the checked-in seeds plus a little exploration.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadTrace -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz=FuzzParsePlan -fuzztime=$(FUZZTIME) ./internal/fault
