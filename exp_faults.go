package profess

import (
	"fmt"
	"strings"

	"profess/internal/stats"
)

// FaultSweepCell is one (fault rate, scheme) outcome of the robustness
// sweep: the workload-gmean figures of merit plus the resilience tallies
// accumulated across the workloads.
type FaultSweepCell struct {
	Rate   float64
	Scheme Scheme
	// GmeanWS / GmeanMaxSdn are geometric means across workloads of the
	// weighted speedup and max slowdown; GmeanEnergyEff likewise for
	// requests/s/W.
	GmeanWS        float64
	GmeanMaxSdn    float64
	GmeanEnergyEff float64
	Resilience     Resilience
}

// FaultSweepReport is the robustness study: how gracefully each scheme
// degrades as the injected fault rate rises. Rate 0 is the clean
// reference point every other row normalises against.
type FaultSweepReport struct {
	Rates     []float64
	Schemes   []Scheme
	Workloads []string
	Cells     []FaultSweepCell
}

// DefaultFaultRates is the sweep's fault-rate axis: clean, then roughly
// decade steps. Each rate r expands through the fault.ParsePlan "rate"
// shorthand (NVM read+write transients at r, QAC corruption at r/4,
// stalls at r/10) plus SF corruption at r so every defense is exercised.
var DefaultFaultRates = []float64{0, 1e-5, 1e-4, 1e-3}

// planForRate builds the sweep's fault plan for one rate.
func planForRate(rate float64, seed uint64) FaultPlan {
	if rate <= 0 {
		return FaultPlan{}
	}
	return FaultPlan{
		Seed:           seed,
		NVMReadRate:    rate,
		NVMWriteRate:   rate,
		StallRate:      rate / 10,
		QACCorruptRate: rate / 4,
		SFCorruptRate:  rate,
	}
}

// RunFaultSweep measures slowdown, throughput and energy versus injected
// fault rate for the given schemes (defaults: PoM, MDM, ProFess — the
// baseline against the paper's two mechanisms). Stand-alone baselines are
// shared across rates because they always run fault-free: the run cache
// keys them on the fault-stripped configuration, so all four rate points
// (and any other experiment in the same sweep plan) reuse one baseline
// simulation per (program, scheme).
func RunFaultSweep(schemes []Scheme, rates []float64, opts ExpOptions) (*FaultSweepReport, error) {
	if len(schemes) == 0 {
		schemes = []Scheme{SchemePoM, SchemeMDM, SchemeProFess}
	}
	if len(rates) == 0 {
		rates = DefaultFaultRates
	}
	rep := &FaultSweepReport{Rates: rates, Schemes: schemes, Workloads: opts.workloads()}
	for _, rate := range rates {
		o := opts
		o.Faults = planForRate(rate, opts.Faults.Seed)
		mp, err := RunMultiProgram(schemes, o)
		if err != nil {
			return nil, fmt.Errorf("fault sweep rate %g: %w", rate, err)
		}
		for _, s := range schemes {
			cell := FaultSweepCell{Rate: rate, Scheme: s}
			var ws, sdn, eff []float64
			for _, c := range mp.Cells {
				if c.Scheme != s {
					continue
				}
				ws = append(ws, c.WeightedSpeedup)
				sdn = append(sdn, c.MaxSlowdown)
				eff = append(eff, c.EnergyEff)
				cell.Resilience.Add(c.Resilience)
			}
			cell.GmeanWS = stats.GeoMean(ws)
			cell.GmeanMaxSdn = stats.GeoMean(sdn)
			cell.GmeanEnergyEff = stats.GeoMean(eff)
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// Cell looks up (rate, scheme).
func (r *FaultSweepReport) Cell(rate float64, s Scheme) (FaultSweepCell, bool) {
	for _, c := range r.Cells {
		if c.Rate == rate && c.Scheme == s {
			return c, true
		}
	}
	return FaultSweepCell{}, false
}

// String renders the sweep: absolute figures per (rate, scheme) plus each
// metric normalised to the scheme's own clean (rate 0) run — the graceful
// degradation curves.
func (r *FaultSweepReport) String() string {
	var b strings.Builder
	t := stats.NewTable("fault rate", "scheme", "gmean WS", "gmean max sdn", "gmean energy eff")
	for _, c := range r.Cells {
		t.AddRowf(fmt.Sprintf("%g", c.Rate), string(c.Scheme), c.GmeanWS, c.GmeanMaxSdn, c.GmeanEnergyEff)
	}
	b.WriteString(t.String())

	b.WriteString("\nDegradation normalised to each scheme's clean run:\n")
	t2 := stats.NewTable("fault rate", "scheme", "WS ratio", "max sdn ratio", "energy ratio")
	for _, c := range r.Cells {
		clean, ok := r.Cell(0, c.Scheme)
		if !ok || c.Rate == 0 {
			continue
		}
		t2.AddRowf(fmt.Sprintf("%g", c.Rate), string(c.Scheme),
			Ratio(c.GmeanWS, clean.GmeanWS),
			Ratio(c.GmeanMaxSdn, clean.GmeanMaxSdn),
			Ratio(c.GmeanEnergyEff, clean.GmeanEnergyEff))
	}
	b.WriteString(t2.String())

	b.WriteString("\nResilience activity (summed over workloads):\n")
	t3 := stats.NewTable("fault rate", "scheme", "injected", "retries", "drops", "corrupt QAC", "bad SF", "degraded entries")
	for _, c := range r.Cells {
		if !c.Resilience.Any() {
			continue
		}
		res := c.Resilience
		injected := res.InjectedNVMReadFaults + res.InjectedNVMWriteFaults +
			res.InjectedStalls + res.InjectedQACCorruptions + res.InjectedSFCorruptions
		t3.AddRowf(fmt.Sprintf("%g", c.Rate), string(c.Scheme),
			injected, res.Retries, res.Drops, res.CorruptQACUpdates,
			res.ImplausibleSFs, res.DegradedEntries)
	}
	b.WriteString(t3.String())
	return b.String()
}
