package profess

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateEnvelope = flag.Bool("update", false, "rewrite testdata/xval_envelope.json from current behaviour")

// xvalEnvelope is the committed contract between the analytic fast tier
// and the cycle model: per-cell bounds on how far the two may disagree,
// plus matrix-wide summary bounds. Regenerate with
//
//	go test -run TestXValEnvelope -update .
//
// after a deliberate model change, and review the diff — a loosening
// envelope means the fast tier is drifting away from the ground truth.
type xvalEnvelope struct {
	// Instructions pins the run length the envelope was measured at.
	Instructions int64 `json:"instructions"`
	// MeanAbsIPCErrorLimit / MaxAbsIPCErrorLimit bound the summary stats.
	MeanAbsIPCErrorLimit float64            `json:"mean_abs_ipc_error_limit"`
	MaxAbsIPCErrorLimit  float64            `json:"max_abs_ipc_error_limit"`
	MeanM1FracErrorLimit float64            `json:"mean_m1_frac_error_limit"`
	Cells                []xvalEnvelopeCell `json:"cells"`
}

type xvalEnvelopeCell struct {
	Program string `json:"program"`
	Scheme  string `json:"scheme"`
	// IPCErrorLimit bounds |analytic-cycle|/cycle for this cell.
	IPCErrorLimit float64 `json:"ipc_error_limit"`
	// M1FracErrorLimit bounds |analytic-cycle| M1-served fraction.
	M1FracErrorLimit float64 `json:"m1_frac_error_limit"`
}

const xvalEnvelopePath = "testdata/xval_envelope.json"

// TestXValEnvelope cross-validates the analytic tier against the cycle
// model on all ten Table 9 generators under every scheme and enforces
// the committed error envelope cell by cell.
func TestXValEnvelope(t *testing.T) {
	env := xvalEnvelope{Instructions: 2_000_000}
	if !*updateEnvelope {
		raw, err := os.ReadFile(xvalEnvelopePath)
		if err != nil {
			t.Fatalf("read envelope (run with -update to create): %v", err)
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("parse envelope: %v", err)
		}
	}

	rep, err := RunCrossValidation(Schemes(), ExpOptions{Instructions: env.Instructions})
	if err != nil {
		t.Fatal(err)
	}

	if *updateEnvelope {
		// Headroom over the observed error keeps the gate from flaking on
		// incidental cycle-model tweaks while still catching real drift.
		env.MeanAbsIPCErrorLimit = round4(rep.MeanAbsIPCError*1.25 + 0.02)
		env.MaxAbsIPCErrorLimit = round4(rep.MaxAbsIPCError*1.25 + 0.05)
		env.MeanM1FracErrorLimit = round4(rep.MeanAbsM1FracError*1.25 + 0.02)
		env.Cells = env.Cells[:0]
		for _, row := range rep.Rows {
			env.Cells = append(env.Cells, xvalEnvelopeCell{
				Program:          row.Program,
				Scheme:           string(row.Scheme),
				IPCErrorLimit:    round4(math.Abs(row.IPCError)*1.3 + 0.03),
				M1FracErrorLimit: round4(row.M1FracError*1.3 + 0.03),
			})
		}
		raw, err := json.MarshalIndent(env, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(xvalEnvelopePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(xvalEnvelopePath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: mean |e|=%.1f%% max |e|=%.1f%%",
			xvalEnvelopePath, 100*rep.MeanAbsIPCError, 100*rep.MaxAbsIPCError)
		return
	}

	limits := make(map[string]xvalEnvelopeCell, len(env.Cells))
	for _, c := range env.Cells {
		limits[c.Program+"/"+c.Scheme] = c
	}
	for _, row := range rep.Rows {
		key := row.Program + "/" + string(row.Scheme)
		lim, ok := limits[key]
		if !ok {
			t.Errorf("%s: no committed envelope cell (regenerate with -update)", key)
			continue
		}
		if e := math.Abs(row.IPCError); e > lim.IPCErrorLimit {
			t.Errorf("%s: analytic IPC error %.1f%% exceeds committed limit %.1f%% (cycle %.3f analytic %.3f)",
				key, 100*e, 100*lim.IPCErrorLimit, row.CycleIPC, row.AnalyticIPC)
		}
		if row.M1FracError > lim.M1FracErrorLimit {
			t.Errorf("%s: M1-fraction error %.3f exceeds committed limit %.3f",
				key, row.M1FracError, lim.M1FracErrorLimit)
		}
	}
	if len(rep.Rows) != len(env.Cells) {
		t.Errorf("matrix has %d cells, envelope commits %d (regenerate with -update)", len(rep.Rows), len(env.Cells))
	}
	if rep.MeanAbsIPCError > env.MeanAbsIPCErrorLimit {
		t.Errorf("mean |IPC error| %.1f%% exceeds committed %.1f%%", 100*rep.MeanAbsIPCError, 100*env.MeanAbsIPCErrorLimit)
	}
	if rep.MaxAbsIPCError > env.MaxAbsIPCErrorLimit {
		t.Errorf("max |IPC error| %.1f%% exceeds committed %.1f%%", 100*rep.MaxAbsIPCError, 100*env.MaxAbsIPCErrorLimit)
	}
	if rep.MeanAbsM1FracError > env.MeanM1FracErrorLimit {
		t.Errorf("mean M1-fraction error %.3f exceeds committed %.3f", rep.MeanAbsM1FracError, env.MeanM1FracErrorLimit)
	}
}

func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}

// TestXValReportRendering exercises the human-readable table and the
// scatter CSV on a tiny matrix so the -exp xval driver's outputs stay
// well-formed.
func TestXValReportRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := RunCrossValidation([]Scheme{SchemeStatic, SchemeProFess},
		ExpOptions{Instructions: 200_000, Programs: []string{"mcf", "libquantum"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	s := rep.String()
	for _, want := range []string{"mcf", "libquantum", "profess", "IPC error"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	csv := rep.CSV()
	if !strings.Contains(csv, "cycle_ipc") || !strings.Contains(csv, "analytic_lifetime_s") {
		t.Errorf("CSV() missing headers:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 5 {
		t.Errorf("CSV() has %d lines, want 5 (header + 4 rows)", lines)
	}
}
