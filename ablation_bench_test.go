// Ablation benchmarks for the design choices DESIGN.md calls out. These
// go beyond the paper's own evaluation: they quantify what each piece of
// ProFess contributes on this substrate.
package profess

import (
	"testing"

	"profess/internal/core"
)

// ablationCfg is the quad-core system at bench budget.
func ablationCfg() Config {
	cfg := MultiCoreConfig(PaperScale)
	cfg.Instructions = 400_000
	return cfg
}

// runProFessVariant measures a ProFess configuration on w09 and returns
// (maxSlowdown, weightedSpeedup, swapFraction).
func runProFessVariant(b *testing.B, mod func(*core.ProFessConfig)) (float64, float64, float64) {
	b.Helper()
	cfg := ablationCfg()
	pcfg := core.DefaultProFessConfig(4, cfg.Scale)
	if mod != nil {
		mod(&pcfg)
	}
	policy, err := core.NewProFess(pcfg)
	if err != nil {
		b.Fatal(err)
	}
	wr, err := RunWorkloadWithPolicy("w09", policy, SchemeProFess, cfg, ablationCache)
	if err != nil {
		b.Fatal(err)
	}
	return wr.MaxSlowdown, wr.WeightedSpeedup, wr.Result.SwapFraction
}

// ablationCache shares stand-alone baselines across the ablation benches.
var ablationCache = NewBaselineCache()

// BenchmarkAblation_FullProFess is the reference point for the ablations.
func BenchmarkAblation_FullProFess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		sdn, ws, swaps := runProFessVariant(b, nil)
		b.ReportMetric(sdn, "maxSdn-w09")
		b.ReportMetric(ws, "WS-w09")
		b.ReportMetric(swaps, "swapFrac-w09")
	}
}

// BenchmarkAblation_NoSFB removes the swap-based slowdown factor: Table 7
// degenerates to SF_A-only comparisons.
func BenchmarkAblation_NoSFB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		sdn, ws, _ := runProFessVariant(b, func(c *core.ProFessConfig) { c.DisableSFB = true })
		b.ReportMetric(sdn, "maxSdn-w09")
		b.ReportMetric(ws, "WS-w09")
	}
}

// BenchmarkAblation_NoCase3 removes the §3.3 mixed-signal protection case.
func BenchmarkAblation_NoCase3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		sdn, ws, _ := runProFessVariant(b, func(c *core.ProFessConfig) { c.DisableCase3 = true })
		b.ReportMetric(sdn, "maxSdn-w09")
		b.ReportMetric(ws, "WS-w09")
	}
}

// BenchmarkAblation_Threshold doubles the Table 7 similarity threshold
// (1/32 -> 1/16), making the guidance fire less often.
func BenchmarkAblation_Threshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		sdn, ws, _ := runProFessVariant(b, func(c *core.ProFessConfig) {
			c.Threshold = 1.0 / 16
			c.ProductThreshold = 1.0 / 8
		})
		b.ReportMetric(sdn, "maxSdn-w09")
		b.ReportMetric(ws, "WS-w09")
	}
}

// BenchmarkAblation_MinBenefit sweeps MDM's min_benefit (the paper uses
// K = 8; the sweep shows the cost-balance sensitivity).
func BenchmarkAblation_MinBenefit(b *testing.B) {
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 400_000
	spec, err := SpecFor("lbm", cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		for _, k := range []float64{4, 8, 16} {
			mcfg := core.DefaultMDMConfig(1)
			mcfg.MinBenefit = k
			policy, err := core.NewMDM(mcfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := RunWithPolicy([]ProgramSpec{spec}, policy, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.PerCore[0].IPC, "IPC-lbm-K"+itoa(int(k)))
		}
	}
}

// BenchmarkAblation_STTraffic quantifies the cost of modelling the
// Swap-group Table in M1 (STC miss fills and dirty writebacks) — the
// organizational overhead §2.2 motivates keeping small via the STC.
func BenchmarkAblation_STTraffic(b *testing.B) {
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 400_000
	spec, err := SpecFor("milc", cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		for _, model := range []bool{true, false} {
			c := cfg
			c.ModelSTTraffic = model
			res, err := RunSpecs([]ProgramSpec{spec}, SchemeProFess, c)
			if err != nil {
				b.Fatal(err)
			}
			name := "IPC-milc-noSTtraffic"
			if model {
				name = "IPC-milc-STtraffic"
			}
			b.ReportMetric(res.PerCore[0].IPC, name)
		}
	}
}

// BenchmarkOracle compares MDM against the profile-guided static-placement
// upper bound: how much of the one-shot-placement benefit do MDM's
// probabilistic predictions capture?
func BenchmarkOracle(b *testing.B) {
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 400_000
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		for _, prog := range []string{"lbm", "soplex"} {
			spec, err := SpecFor(prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			oracle, err := RunOracle(spec, cfg)
			if err != nil {
				b.Fatal(err)
			}
			mdm, err := RunSpecs([]ProgramSpec{spec}, SchemeMDM, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(Ratio(mdm.PerCore[0].IPC, oracle.PerCore[0].IPC), "IPC-MDM/oracle-"+prog)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
