// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5). Each benchmark regenerates its experiment at a reduced
// instruction budget and reports the figure's headline quantities via
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. cmd/professbench runs the same experiments
// with configurable budgets and full tabular output; EXPERIMENTS.md records
// paper-vs-measured values. Metric naming: ratios are <metric>/PoM-style
// normalisations exactly as the paper plots them (Figs. 5, 10-15).
package profess

import (
	"testing"

	"profess/internal/stats"
)

// benchOpts returns fast experiment settings for benchmarks.
//
// Every benchmark loop starts with ResetRunCache(): the run cache would
// otherwise serve iteration i>0 (and sibling benchmarks sharing cells)
// from memory and the reported ns/op would measure a map lookup. Within
// one iteration the cache stays active — deduplicating shared baselines is
// part of the work being measured.
func benchOpts() ExpOptions {
	return ExpOptions{Instructions: 400_000, Parallelism: 1}
}

// benchMultiOpts restricts the multi-program benches to the three
// workloads the paper discusses individually (w09, w12, w19) to keep
// -bench=. tractable; professbench covers all nineteen.
func benchMultiOpts() ExpOptions {
	o := benchOpts()
	o.Workloads = []string{"w09", "w12", "w19"}
	return o
}

func reportSeries(b *testing.B, name string, series map[string]float64) {
	b.Helper()
	if g := GeoMeanSeries(series); g > 0 {
		b.ReportMetric(g, name)
	}
}

// reportCacheMetrics reports the run-cache counters left by the final
// iteration. Each iteration starts from ResetRunCache, so the counters
// describe exactly one regeneration of the figure: how many cells it
// simulates and how many it re-reads from the cache (shared baselines).
func reportCacheMetrics(b *testing.B) {
	b.Helper()
	d := RunCacheDetail()
	b.ReportMetric(float64(d.Sims), "sims")
	b.ReportMetric(float64(d.MemHits+d.DiskHits), "cache-hits")
}

func BenchmarkFig02_SlowdownsUnderPoM(b *testing.B) {
	opts := benchMultiOpts()
	opts.Workloads = []string{"w09"}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep, err := RunMultiProgram([]Scheme{SchemePoM}, opts)
		if err != nil {
			b.Fatal(err)
		}
		c, _ := rep.Cell("w09", SchemePoM)
		b.ReportMetric(c.MaxSlowdown, "maxSlowdown-w09")
		b.ReportMetric(stats.Max(c.Slowdowns)-stats.Min(c.Slowdowns), "slowdownSpread-w09")
	}
	reportCacheMetrics(b)
}

func BenchmarkTable04_SamplingAccuracy(b *testing.B) {
	opts := benchOpts()
	opts.Programs = []string{"milc"}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep, err := RunSamplingAccuracy(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Cells {
			if c.MSamp == 4096 { // the scaled 128K default
				b.ReportMetric(c.SigmaRawSFA, "sigmaRawSFA-milc-%")
				b.ReportMetric(c.SigmaAvgSFA, "sigmaAvgSFA-milc-%")
			}
		}
	}
}

// fig567 runs the shared single-program experiment of Figs. 5-7.
func fig567(b *testing.B) *SingleProgramReport {
	b.Helper()
	rep, err := RunSinglePrograms([]Scheme{SchemePoM, SchemeMDM}, benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func BenchmarkFig05_SingleProgramIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := fig567(b)
		ratios := rep.Ratios(SchemeMDM, SchemePoM, "ipc")
		reportSeries(b, "IPC-MDM/PoM-gmean", ratios)
		var xs []float64
		for _, v := range ratios {
			xs = append(xs, v)
		}
		b.ReportMetric(stats.Max(xs), "IPC-MDM/PoM-max")
	}
	reportCacheMetrics(b)
}

func BenchmarkFig06_M1ServedFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := fig567(b)
		reportSeries(b, "M1frac-MDM/PoM-gmean", rep.Ratios(SchemeMDM, SchemePoM, "m1frac"))
	}
}

func BenchmarkFig07_STCHitRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := fig567(b)
		for _, prog := range []string{"mcf", "omnetpp", "lbm"} {
			if row, ok := rep.row(prog, SchemeMDM); ok {
				b.ReportMetric(row.STCHitRate, "stcHit-"+prog)
			}
		}
	}
}

// fig89 runs the shared STC-size experiment of Figs. 8-9 on the programs
// the paper highlights.
func fig89(b *testing.B) *STCSensitivityReport {
	b.Helper()
	opts := benchOpts()
	opts.Programs = []string{"mcf", "omnetpp", "soplex"}
	rep, err := RunSTCSensitivity(opts)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func BenchmarkFig08_STCSizeIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := fig89(b)
		base := map[string]float64{}
		for _, r := range rep.Rows {
			if r.STCEntries == rep.Default {
				base[r.Program] = r.IPC
			}
		}
		for _, r := range rep.Rows {
			if r.STCEntries == rep.Default/2 && r.Program == "mcf" {
				b.ReportMetric(Ratio(r.IPC, base["mcf"]), "IPC-halfSTC/default-mcf")
			}
		}
	}
}

func BenchmarkFig09_STCSizeHitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := fig89(b)
		for _, r := range rep.Rows {
			if r.Program == "mcf" {
				switch r.STCEntries {
				case rep.Default / 2:
					b.ReportMetric(r.STCHitRate, "stcHit-mcf-half")
				case rep.Default:
					b.ReportMetric(r.STCHitRate, "stcHit-mcf-default")
				case rep.Default * 2:
					b.ReportMetric(r.STCHitRate, "stcHit-mcf-double")
				}
			}
		}
	}
}

func BenchmarkSensTWR_M2WriteLatency(b *testing.B) {
	opts := benchOpts()
	opts.Programs = []string{"lbm", "mcf", "milc"}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep, err := RunTWRSensitivity(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range rep.Points {
			b.ReportMetric(p.GeoMeanRatio, "IPC-MDM/PoM-tWR"+p.Setting)
		}
	}
}

func BenchmarkSensRatio_M1M2Capacity(b *testing.B) {
	opts := benchOpts()
	opts.Programs = []string{"lbm", "mcf", "soplex"}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep, err := RunRatioSensitivity(opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range rep.Points {
			b.ReportMetric(p.GeoMeanRatio, "IPC-MDM/PoM-"+p.Setting)
		}
	}
}

// multiReport runs the shared quad-core experiment of Figs. 10-15.
func multiReport(b *testing.B, schemes []Scheme) *MultiProgramReport {
	b.Helper()
	rep, err := RunMultiProgram(schemes, benchMultiOpts())
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func BenchmarkFig10_MaxSlowdownMDM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := multiReport(b, []Scheme{SchemePoM, SchemeMDM})
		reportSeries(b, "maxSdn-MDM/PoM-gmean", rep.NormalisedSeries(SchemeMDM, SchemePoM, "maxsdn"))
	}
	reportCacheMetrics(b)
}

func BenchmarkFig11_WeightedSpeedupMDM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := multiReport(b, []Scheme{SchemePoM, SchemeMDM})
		reportSeries(b, "WS-MDM/PoM-gmean", rep.NormalisedSeries(SchemeMDM, SchemePoM, "ws"))
	}
}

func BenchmarkFig12_EnergyEfficiencyMDM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := multiReport(b, []Scheme{SchemePoM, SchemeMDM})
		reportSeries(b, "energyEff-MDM/PoM-gmean", rep.NormalisedSeries(SchemeMDM, SchemePoM, "energy"))
	}
}

func BenchmarkFig13_MaxSlowdownProFess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := multiReport(b, []Scheme{SchemePoM, SchemeProFess})
		reportSeries(b, "maxSdn-ProFess/PoM-gmean", rep.NormalisedSeries(SchemeProFess, SchemePoM, "maxsdn"))
	}
}

func BenchmarkFig14_WeightedSpeedupProFess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := multiReport(b, []Scheme{SchemePoM, SchemeProFess})
		reportSeries(b, "WS-ProFess/PoM-gmean", rep.NormalisedSeries(SchemeProFess, SchemePoM, "ws"))
		reportSeries(b, "swapFrac-ProFess/PoM-gmean", rep.NormalisedSeries(SchemeProFess, SchemePoM, "swapfrac"))
	}
}

func BenchmarkFig15_EnergyEfficiencyProFess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep := multiReport(b, []Scheme{SchemePoM, SchemeProFess})
		reportSeries(b, "energyEff-ProFess/PoM-gmean", rep.NormalisedSeries(SchemeProFess, SchemePoM, "energy"))
	}
}

func BenchmarkFig16_SlowdownDetail(b *testing.B) {
	opts := benchMultiOpts()
	opts.Workloads = []string{"w09"}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep, err := RunMultiProgram([]Scheme{SchemePoM, SchemeMDM, SchemeProFess}, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range []Scheme{SchemePoM, SchemeMDM, SchemeProFess} {
			if c, ok := rep.Cell("w09", s); ok {
				b.ReportMetric(c.MaxSlowdown, "maxSdn-w09-"+string(s))
			}
		}
	}
}

func BenchmarkMemPod_AMMATvsPoM(b *testing.B) {
	opts := benchOpts()
	opts.Programs = []string{"lbm", "milc", "soplex"}
	opts.Workloads = []string{"w09"}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep, err := RunMemPodComparison(opts)
		if err != nil {
			b.Fatal(err)
		}
		var xs []float64
		for _, v := range rep.SingleRatio {
			xs = append(xs, v)
		}
		b.ReportMetric(stats.GeoMean(xs), "AMMAT-MemPod/PoM-single-gmean")
		xs = xs[:0]
		for _, v := range rep.MultiRatio {
			xs = append(xs, v)
		}
		b.ReportMetric(stats.GeoMean(xs), "AMMAT-MemPod/PoM-multi-gmean")
	}
}

func BenchmarkTable02_AllAlgorithms(b *testing.B) {
	opts := benchMultiOpts()
	opts.Workloads = []string{"w09"}
	schemes := []Scheme{SchemePoM, SchemeCAMEO, SchemeSILCFM, SchemeMemPod, SchemeMDM, SchemeProFess}
	for i := 0; i < b.N; i++ {
		ResetRunCache()
		rep, err := RunMultiProgram(schemes, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range schemes {
			if c, ok := rep.Cell("w09", s); ok {
				b.ReportMetric(c.WeightedSpeedup, "WS-w09-"+string(s))
			}
		}
	}
	reportCacheMetrics(b)
}
