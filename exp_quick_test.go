package profess

import (
	"math"
	"testing"
)

// quickOpts are the fast settings used by the repo's own tests: enough
// instructions for the policies' statistics to settle, small enough to run
// in seconds.
func quickOpts() ExpOptions {
	return ExpOptions{Instructions: 600_000}
}

// TestSingleProgramShape verifies the central §5.1 claim at test scale:
// MDM outperforms PoM on the single-core system in the geometric mean.
func TestSingleProgramShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rep, err := RunSinglePrograms([]Scheme{SchemePoM, SchemeMDM}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	ratios := rep.Ratios(SchemeMDM, SchemePoM, "ipc")
	gm, n := 1.0, 0
	for p, r := range ratios {
		t.Logf("MDM/PoM IPC %-12s %.3f", p, r)
		if r > 0 {
			gm *= r
			n++
		}
	}
	if n == 0 {
		t.Fatal("no ratios measured")
	}
	gm = math.Pow(gm, 1/float64(n))
	t.Logf("gmean MDM/PoM = %.3f", gm)
	if gm < 1.0 {
		t.Errorf("MDM should outperform PoM on average (paper: +14%%), got gmean %.3f", gm)
	}
}
