package profess

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
)

// The run cache memoises whole simulations keyed on their complete input —
// (Config, specs, Scheme) — so sweeps and ablation suites that revisit the
// same cell (every stand-alone baseline, every shared PoM reference
// column) pay for it once per process. Simulations are deterministic
// functions of that key, which is what makes memoisation sound.
//
// The cache has two tiers. The in-process tier memoises *Result pointers
// with singleflight semantics: concurrent callers of one cell run it at
// most once per process and share the outcome. The optional persistent
// tier (see diskcache.go, enabled via SetRunCacheDir or the CLIs'
// -cachedir flag) round-trips Results through JSON on disk, so warm
// re-runs across processes perform no simulation at all.
//
// Cached *Results are shared between callers and must be treated as
// immutable; every driver in this package already does. Runs that are not
// pure functions of the key bypass the cache: a custom trace Source (its
// stream state is outside the key), telemetry-enabled runs (the Result
// carries a stateful sampler that must be private to each caller), and
// custom policies (their identity and internal state are not hashable).

// runCacheEntry is one memoised simulation; once coordinates the
// singleflight so concurrent sweep workers asking for the same cell run it
// exactly once and share the outcome.
type runCacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

type runCache struct {
	mu sync.Mutex
	m  map[string]*runCacheEntry

	memHits  atomic.Int64
	diskHits atomic.Int64
	sims     atomic.Int64
}

var (
	theRunCache   = &runCache{m: make(map[string]*runCacheEntry)}
	runCachingOff atomic.Bool
)

// SetRunCaching toggles the process-wide run cache (on by default).
// Disable it to force every simulation to execute — e.g. when timing runs,
// or via the -nocache flag of the command-line tools. Disabling it also
// bypasses the persistent disk tier.
func SetRunCaching(on bool) { runCachingOff.Store(!on) }

// RunCaching reports whether the run cache is enabled.
func RunCaching() bool { return !runCachingOff.Load() }

// ResetRunCache drops every memoised run (and the hit/miss counters) from
// the in-process tier. Entries in the persistent disk tier, if one is
// configured, survive — delete the cache directory to cold-start those.
// Benchmarks call it between iterations so repeated identical runs are
// measured honestly.
func ResetRunCache() {
	theRunCache.mu.Lock()
	theRunCache.m = make(map[string]*runCacheEntry)
	theRunCache.mu.Unlock()
	theRunCache.memHits.Store(0)
	theRunCache.diskHits.Store(0)
	theRunCache.sims.Store(0)
}

// RunCacheStats returns the cache's cumulative hit and miss counts. A hit
// is a run served without simulating (from either tier); a miss is a
// simulation that actually executed.
func RunCacheStats() (hits, misses int64) {
	d := RunCacheDetail()
	return d.MemHits + d.DiskHits, d.Sims
}

// RunCacheCounters breaks the cache accounting down by tier.
type RunCacheCounters struct {
	// MemHits counts runs served from the in-process tier (including
	// singleflight joins on an in-flight simulation).
	MemHits int64
	// DiskHits counts runs loaded from the persistent tier.
	DiskHits int64
	// Sims counts simulations that actually executed.
	Sims int64
}

// HitRate returns the fraction of cache-eligible runs served without
// simulating, in [0, 1]; 0 when nothing has run.
func (c RunCacheCounters) HitRate() float64 {
	total := c.MemHits + c.DiskHits + c.Sims
	if total == 0 {
		return 0
	}
	return float64(c.MemHits+c.DiskHits) / float64(total)
}

// Sub returns the counter deltas since an earlier snapshot.
func (c RunCacheCounters) Sub(earlier RunCacheCounters) RunCacheCounters {
	return RunCacheCounters{
		MemHits:  c.MemHits - earlier.MemHits,
		DiskHits: c.DiskHits - earlier.DiskHits,
		Sims:     c.Sims - earlier.Sims,
	}
}

// RunCacheDetail returns the cumulative per-tier cache counters.
func RunCacheDetail() RunCacheCounters {
	return RunCacheCounters{
		MemHits:  theRunCache.memHits.Load(),
		DiskHits: theRunCache.diskHits.Load(),
		Sims:     theRunCache.sims.Load(),
	}
}

// cacheable reports whether a run is a pure function of (cfg, specs,
// scheme) and safe to share.
func cacheable(cfg Config, specs []ProgramSpec) bool {
	if !RunCaching() {
		return false
	}
	if cfg.TelemetryEvery > 0 {
		return false
	}
	for _, s := range specs {
		if s.Source != nil {
			return false
		}
	}
	return true
}

// runKey content-hashes the full simulation input. Config, ProgramSpec and
// trace.Params are plain value structs (no pointers, no functions, no
// maps), so their %#v rendering is a faithful, deterministic
// serialisation. TestRunKeyHashableFields guards that property against
// future fields.
//
// Config.Shards is normalised out of the key: the worker count of a
// clustered run is a pure speed knob with byte-identical results (the
// contract TestShardCountSweepByteIdentical pins), so -shards 1 and
// -shards 8 runs of the same cell share one cache entry. Clusters, by
// contrast, changes the simulated topology and stays in the key.
//
// The sampling fields are normalised too, but differently, because
// sampling is semantic, not a speed knob: when sampling is off — fraction
// 0, or >= 1, which the engine serves with the classic full run,
// byte-identically by construction — every spelling collapses to the
// canonical zero fields and shares the full run's entry (the window is
// irrelevant when no window ever runs). An active fraction stays in the
// key verbatim — a sampled Result is an estimate, never interchangeable
// with the full run's — with the window resolved to its effective value
// so SampleWindow 0 and an explicit DefaultSampleWindow hash identically.
// TestRunKeySamplingNormalised pins both directions.
func runKey(cfg Config, specs []ProgramSpec, scheme Scheme) string {
	cfg.Shards = 0
	if !cfg.SamplingOn() {
		cfg.SampleFraction, cfg.SampleWindow = 0, 0
	} else {
		cfg.SampleWindow = cfg.EffectiveSampleWindow()
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%#v\x00", scheme, cfg)
	for _, s := range specs {
		fmt.Fprintf(h, "%#v\x00", s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cachedRun memoises run() under the given key with singleflight
// semantics, consulting the persistent tier before simulating and writing
// fresh results through to it.
//
// Failures are never memoised: a run that errors (a cancelled context, a
// transient injected fault, a wedged watchdog abort) evicts its entry so
// the next caller re-attempts, rather than poisoning the key for the
// process's lifetime. Callers already waiting on the singleflight share
// the error — they asked for that attempt — but retries (the sweep
// executor's backoff loop, RunMultiProgram's second pass) get a fresh
// simulation.
func (c *runCache) cachedRun(key string, run func() (*Result, error)) (*Result, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &runCacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	const (
		joined = iota
		fromDisk
		simulated
	)
	from := joined
	e.once.Do(func() {
		if res, ok := theDiskCache.load(key); ok {
			e.res = res
			from = fromDisk
			return
		}
		e.res, e.err = run()
		from = simulated
		if e.err == nil {
			theDiskCache.store(key, e.res)
		}
	})
	switch from {
	case joined:
		c.memHits.Add(1)
	case fromDisk:
		c.diskHits.Add(1)
	case simulated:
		// The sim itself was counted in runSimUncached, which also covers
		// uncacheable runs (telemetry, trace sources, caching disabled) —
		// Sims means "simulations that actually executed", not "cache
		// misses".
	}
	if e.err != nil {
		c.mu.Lock()
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	return e.res, e.err
}

// installAlias publishes res under key in the in-process tier without
// touching the persistent tier. The sweep pruner uses it to serve a
// pruned cell's render-phase requests with its representative's Result:
// the alias lives only for this process, so a later run without pruning
// (or another process) still simulates the cell honestly. If the key was
// already computed (or is in flight), the existing entry wins and the
// alias is a no-op.
func (c *runCache) installAlias(key string, res *Result) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &runCacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.res = res })
}

// runSim is the cache-aware funnel every scheme-based driver in this
// package goes through. While a sweep plan is being built (PlanSweep) it
// records the cell and returns a stub instead of simulating.
func runSim(cfg Config, specs []ProgramSpec, scheme Scheme) (*Result, error) {
	return runSimCtx(context.Background(), cfg, specs, scheme)
}

// runSimCtx is runSim under a context: the deadline/cancellation reaches
// the simulation's event loop (sim.RunContext polls it every
// watchdog-check epoch), so an in-flight cell stops within one epoch of
// cancellation rather than running to completion. Under the singleflight
// the first caller's context governs the shared attempt; a join cannot
// abandon it early, but a cancelled attempt is not memoised (see
// cachedRun), so later callers retry cleanly.
func runSimCtx(ctx context.Context, cfg Config, specs []ProgramSpec, scheme Scheme) (*Result, error) {
	if pc := activePlan.Load(); pc != nil {
		return pc.record(cfg, specs, scheme), nil
	}
	if !cacheable(cfg, specs) {
		return runSimUncached(ctx, cfg, specs, scheme)
	}
	return theRunCache.cachedRun(runKey(cfg, specs, scheme), func() (*Result, error) {
		if simCellHook != nil {
			if err := simCellHook(runKey(cfg, specs, scheme)); err != nil {
				return nil, err
			}
		}
		return runSimUncached(ctx, cfg, specs, scheme)
	})
}

// simCellHook, when non-nil, runs before every real (cache-missing)
// simulation in the runSim funnel. It exists for tests, which use it to
// inject transient failures and artificial latency into sweep cells.
var simCellHook func(key string) error
