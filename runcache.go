package profess

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
)

// The run cache memoises whole simulations keyed on their complete input —
// (Config, specs, Scheme) — so sweeps and ablation suites that revisit the
// same cell (every stand-alone baseline, every shared PoM reference
// column) pay for it once per process. Simulations are deterministic
// functions of that key, which is what makes memoisation sound.
//
// Cached *Results are shared between callers and must be treated as
// immutable; every driver in this package already does. Runs that are not
// pure functions of the key bypass the cache: a custom trace Source (its
// stream state is outside the key), telemetry-enabled runs (the Result
// carries a stateful sampler that must be private to each caller), and
// custom policies (their identity and internal state are not hashable).

// runCacheEntry is one memoised simulation; once coordinates the
// singleflight so concurrent sweep workers asking for the same cell run it
// exactly once and share the outcome.
type runCacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

type runCache struct {
	mu sync.Mutex
	m  map[string]*runCacheEntry

	hits, misses atomic.Int64
}

var (
	theRunCache   = &runCache{m: make(map[string]*runCacheEntry)}
	runCachingOff atomic.Bool
)

// SetRunCaching toggles the process-wide run cache (on by default).
// Disable it to force every simulation to execute — e.g. when timing runs,
// or via the -nocache flag of the command-line tools.
func SetRunCaching(on bool) { runCachingOff.Store(!on) }

// RunCaching reports whether the run cache is enabled.
func RunCaching() bool { return !runCachingOff.Load() }

// ResetRunCache drops every memoised run (and the hit/miss counters).
// Benchmarks call it between iterations so repeated identical runs are
// measured honestly.
func ResetRunCache() {
	theRunCache.mu.Lock()
	theRunCache.m = make(map[string]*runCacheEntry)
	theRunCache.mu.Unlock()
	theRunCache.hits.Store(0)
	theRunCache.misses.Store(0)
}

// RunCacheStats returns the cache's cumulative hit and miss counts.
func RunCacheStats() (hits, misses int64) {
	return theRunCache.hits.Load(), theRunCache.misses.Load()
}

// cacheable reports whether a run is a pure function of (cfg, specs,
// scheme) and safe to share.
func cacheable(cfg Config, specs []ProgramSpec) bool {
	if !RunCaching() {
		return false
	}
	if cfg.TelemetryEvery > 0 {
		return false
	}
	for _, s := range specs {
		if s.Source != nil {
			return false
		}
	}
	return true
}

// runKey content-hashes the full simulation input. Config, ProgramSpec and
// trace.Params are plain value structs (no pointers, no functions), so
// their %#v rendering is a faithful, deterministic serialisation.
func runKey(cfg Config, specs []ProgramSpec, scheme Scheme) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%#v\x00", scheme, cfg)
	for _, s := range specs {
		fmt.Fprintf(h, "%#v\x00", s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cachedRun memoises run() under the given key with singleflight
// semantics.
func (c *runCache) cachedRun(key string, run func() (*Result, error)) (*Result, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &runCacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	fresh := false
	e.once.Do(func() {
		fresh = true
		e.res, e.err = run()
	})
	if fresh {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return e.res, e.err
}

// runSim is the cache-aware funnel every scheme-based driver in this
// package goes through.
func runSim(cfg Config, specs []ProgramSpec, scheme Scheme) (*Result, error) {
	if !cacheable(cfg, specs) {
		return runSimUncached(cfg, specs, scheme)
	}
	return theRunCache.cachedRun(runKey(cfg, specs, scheme), func() (*Result, error) {
		return runSimUncached(cfg, specs, scheme)
	})
}
