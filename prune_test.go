package profess

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// TestPruneSafety is the audit DefaultPruneMargin's doc comment promises.
// It runs the standard single+multi sweep twice — once pruned, once honest
// — and checks the three properties the pruning pass rests on:
//
//  1. Effectiveness: at the default margin the prune drops at least 25% of
//     the planned cells, and the executor really does skip them (the
//     simulation count equals the retained cell count, through rendering).
//  2. Transparency: every figure value rendered from the pruned sweep is
//     bit-identical to the honest sweep for retained schemes, and equal to
//     the representative scheme's honest value for pruned schemes.
//  3. Honesty of the margin itself: every pruned cell's true cycle-model
//     IPC delta against its representative is within DefaultPruneMargin —
//     the analytic screen never merged schemes the cycle model separates
//     by more than the margin.
func TestPruneSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps; skipped in -short")
	}
	// Pin the disk tier off so the simulation counters below are exact.
	prevDir := RunCacheDir()
	if err := SetRunCacheDir(""); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetRunCacheDir(prevDir); err != nil {
			t.Fatal(err)
		}
	}()

	opts := ExpOptions{Instructions: 400_000}
	planned := []PlannedExperiment{
		{Name: "single", Run: func() error { _, err := RunSinglePrograms(Schemes(), opts); return err }},
		{Name: "multi", Run: func() error { _, err := RunMultiProgram(Schemes(), opts); return err }},
	}
	ctx := context.Background()

	// Pruned pass, cold cache.
	ResetRunCache()
	plan, err := PlanSweep(planned)
	if err != nil {
		t.Fatal(err)
	}
	total := len(plan.Cells)
	cellByKey := make(map[string]PlanCell, total)
	for _, c := range plan.Cells {
		cellByKey[c.Key] = c
	}

	pruned := plan.Prune(0)
	retained := len(plan.Cells)
	if retained+len(pruned) != total {
		t.Fatalf("prune accounting: %d retained + %d pruned != %d planned", retained, len(pruned), total)
	}
	rate := float64(len(pruned)) / float64(total)
	t.Logf("plan: %d cells, pruned %d (%.1f%%) at margin %.2f", total, len(pruned), 100*rate, DefaultPruneMargin)
	if rate < 0.25 {
		t.Fatalf("prune rate %.1f%% below the 25%% the default margin is sized for", 100*rate)
	}
	for _, pc := range pruned {
		if pc.Delta > DefaultPruneMargin {
			t.Errorf("pruned cell %s (%s->%s) has analytic delta %.3f > margin", pc.Key[:12], pc.Scheme, pc.RepScheme, pc.Delta)
		}
		if _, ok := cellByKey[pc.RepKey]; !ok {
			t.Errorf("pruned cell %s references unknown representative %s", pc.Key[:12], pc.RepKey[:12])
		}
	}

	rep, err := plan.ExecuteOpts(ctx, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("execute: %d cells failed", rep.Failed)
	}
	if rep.Pruned != len(pruned) {
		t.Errorf("ExecReport.Pruned = %d, want %d", rep.Pruned, len(pruned))
	}
	if det := RunCacheDetail(); det.Sims != int64(retained) {
		t.Errorf("execute simulated %d cells, want %d (retained only)", det.Sims, retained)
	}

	singleB, err := RunSinglePrograms(Schemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	multiB, err := RunMultiProgram(Schemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if det := RunCacheDetail(); det.Sims != int64(retained) {
		t.Errorf("rendering simulated %d extra cells; pruned cells must be served by aliases", det.Sims-int64(retained))
	}

	// Honest pass: every cell simulated for real.
	ResetRunCache()
	singleA, err := RunSinglePrograms(Schemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	multiA, err := RunMultiProgram(Schemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if det := RunCacheDetail(); det.Sims != int64(total) {
		t.Errorf("honest pass simulated %d cells, want %d", det.Sims, total)
	}

	// repOf maps every scheme to the scheme whose result stands in for it
	// (itself when retained). Prune clusters plan-globally, so the mapping
	// is consistent across cells.
	repOf := map[Scheme]Scheme{}
	for _, s := range Schemes() {
		repOf[s] = s
	}
	for _, pc := range pruned {
		if r, ok := repOf[pc.Scheme]; ok && r != pc.Scheme && r != pc.RepScheme {
			t.Fatalf("scheme %s has two representatives: %s and %s", pc.Scheme, r, pc.RepScheme)
		}
		repOf[pc.Scheme] = pc.RepScheme
	}

	// Transparency: pruned-sweep figures equal the honest sweep's, with
	// pruned schemes reading their representative's honest values.
	singleRows := map[[2]string]SingleProgramRow{}
	for _, r := range singleA.Rows {
		singleRows[[2]string{r.Program, string(r.Scheme)}] = r
	}
	for _, b := range singleB.Rows {
		a, ok := singleRows[[2]string{b.Program, string(repOf[b.Scheme])}]
		if !ok {
			t.Fatalf("honest pass missing row %s/%s", b.Program, repOf[b.Scheme])
		}
		a.Scheme = b.Scheme // the only field allowed to differ
		if a != b {
			t.Errorf("single row %s/%s: pruned sweep %+v != honest %+v", b.Program, b.Scheme, b, a)
		}
	}
	multiCells := map[[2]string]MultiProgramCell{}
	for _, c := range multiA.Cells {
		multiCells[[2]string{c.Workload, string(c.Scheme)}] = c
	}
	for _, b := range multiB.Cells {
		a, ok := multiCells[[2]string{b.Workload, string(repOf[b.Scheme])}]
		if !ok {
			t.Fatalf("honest pass missing cell %s/%s", b.Workload, repOf[b.Scheme])
		}
		a.Scheme = b.Scheme
		if !reflect.DeepEqual(a, b) {
			t.Errorf("multi cell %s/%s: pruned sweep %+v != honest %+v", b.Workload, b.Scheme, b, a)
		}
	}

	// Margin audit against the cycle model, on the honest pass's warm
	// cache: the true per-program IPC delta between every pruned cell and
	// its representative must be within the margin the analytic screen
	// claimed.
	var worst float64
	for _, pc := range pruned {
		c, r := cellByKey[pc.Key], cellByKey[pc.RepKey]
		resC, err := runSimCtx(ctx, c.Cfg, c.Specs, c.Scheme)
		if err != nil {
			t.Fatal(err)
		}
		resR, err := runSimCtx(ctx, r.Cfg, r.Specs, r.Scheme)
		if err != nil {
			t.Fatal(err)
		}
		if len(resC.PerCore) != len(resR.PerCore) {
			t.Fatalf("cell %s and rep %s disagree on core count", pc.Key[:12], pc.RepKey[:12])
		}
		for k := range resC.PerCore {
			hi := math.Max(resC.PerCore[k].IPC, resR.PerCore[k].IPC)
			if hi <= 0 {
				continue
			}
			d := math.Abs(resC.PerCore[k].IPC-resR.PerCore[k].IPC) / hi
			if d > worst {
				worst = d
			}
			if d > DefaultPruneMargin {
				t.Errorf("pruned %s->%s core %d: true IPC delta %.1f%% exceeds margin %.0f%%",
					pc.Scheme, pc.RepScheme, k, 100*d, 100*DefaultPruneMargin)
			}
		}
	}
	t.Logf("worst true IPC delta across %d pruned cells: %.1f%% (margin %.0f%%)", len(pruned), 100*worst, 100*DefaultPruneMargin)
}
