package profess

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"profess/internal/analytic"
	"profess/internal/lease"
)

// The sweep planner sits above the experiment drivers. The paper's
// evaluation revisits the same simulation cells constantly — every
// stand-alone slowdown baseline, every shared PoM reference column — and
// while the run cache already dedupes those *as they arrive*, arrival
// order still decides the makespan: a straggler cell discovered late
// serialises the tail. Planning first enumerates every (Config, specs,
// Scheme) cell a set of experiments will need, dedupes the union, and
// executes it longest-expected-job-first on one global pool; the drivers
// then re-run for real and render their figures purely from the completed
// cell table (the warm run cache), simulating nothing.
//
// Enumeration is a dry run of the drivers themselves: while a plan is
// being built, the runSim funnel records each requested cell and returns
// a stub Result instead of simulating, so the exact production control
// flow — seed replicas, footprint filters, shared baselines — decides the
// cell set and the plan can never drift from the drivers.
//
// An optional pruning pass (SweepPlan.Prune) sits between planning and
// execution: cells whose scheme the analytic fast tier cannot distinguish
// from a representative anywhere in the plan are dropped, and the
// executor serves them by aliasing the representative's result.

// ErrNotPlannable marks an experiment that cannot be enumerated by a dry
// run because it simulates outside the run-cache funnel (custom policies,
// direct System use). PlanSweep skips such experiments; they simulate for
// real when rendered.
var ErrNotPlannable = errors.New("profess: experiment does not funnel through the run cache and cannot be planned")

// PlanCell is one deduplicated simulation a sweep will need.
type PlanCell struct {
	// Key is the cell's content hash — the run-cache key.
	Key    string
	Cfg    Config
	Specs  []ProgramSpec
	Scheme Scheme
	// Cost is the expected relative cost (instruction budget × thread
	// count); the executor schedules longest-expected-job-first so the
	// makespan is not dominated by a straggler discovered late.
	Cost int64
	// Experiments lists the plan requests that need this cell.
	Experiments []string
}

// SweepPlan is the deduplicated union of every cell the planned
// experiments will simulate, sorted longest-expected-job-first.
type SweepPlan struct {
	Cells []PlanCell
	// Requested counts distinct cell requests before cross-experiment
	// dedup (each experiment's cells summed); Requested/len(Cells) is the
	// sharing factor the planner exploits.
	Requested int
	// PerExperiment maps each planned experiment to its distinct cell
	// count.
	PerExperiment map[string]int
	// Unplannable lists experiments that returned ErrNotPlannable; they
	// simulate when rendered instead.
	Unplannable []string
	// Pruned lists cells removed by Prune; ExecuteOpts serves each one by
	// aliasing its representative's result.
	Pruned []PrunedCell
	// Sampled lists cells rewritten to the interval-sampling tier by
	// Sample; ExecuteOpts serves each original full-fidelity key by
	// aliasing the sampled result.
	Sampled []SampledCell
}

// PlannedExperiment names one experiment and the driver invocation that
// enumerates its cells. Run is called once with recording active and its
// report discarded; it must invoke the same drivers, with the same
// options, as the later render.
type PlannedExperiment struct {
	Name string
	Run  func() error
}

// planCollector records the cells runSim is asked for during a dry run.
type planCollector struct {
	mu        sync.Mutex
	cur       string
	cells     map[string]*PlanCell
	seenByCur map[string]bool
	requested int
	perExp    map[string]int
}

// activePlan, when non-nil, switches the runSim funnel into recording
// mode. Only one plan builds at a time.
var activePlan atomic.Pointer[planCollector]

// planning reports whether a sweep plan is currently being built.
func planning() bool { return activePlan.Load() != nil }

// record notes one requested cell and returns the dry-run stub.
func (pc *planCollector) record(cfg Config, specs []ProgramSpec, scheme Scheme) *Result {
	if cacheable(cfg, specs) {
		key := runKey(cfg, specs, scheme)
		threads := int64(0)
		for _, s := range specs {
			t := int64(s.Threads)
			if t < 1 {
				t = 1
			}
			threads += t
		}
		pc.mu.Lock()
		c, ok := pc.cells[key]
		if !ok {
			c = &PlanCell{
				Key:    key,
				Cfg:    cfg,
				Specs:  append([]ProgramSpec(nil), specs...),
				Scheme: scheme,
				Cost:   cfg.Instructions * threads,
			}
			pc.cells[key] = c
		}
		if !pc.seenByCur[key] {
			pc.seenByCur[key] = true
			pc.requested++
			pc.perExp[pc.cur]++
			c.Experiments = append(c.Experiments, pc.cur)
		}
		pc.mu.Unlock()
	}
	return planStub(specs, scheme)
}

// planStub is the Result handed back during a dry run: enough non-zero
// structure (one CoreResult per program, unit metrics) that driver
// arithmetic — ratios, slowdowns, geomeans — proceeds without dividing by
// zero. The values are meaningless and every dry-run report is discarded.
func planStub(specs []ProgramSpec, scheme Scheme) *Result {
	res := &Result{
		Scheme:     string(scheme),
		Cycles:     1,
		EnergyEff:  1,
		Watts:      1,
		STCHitRate: 0.5,
		L3HitRate:  0.5,
	}
	for _, s := range specs {
		res.PerCore = append(res.PerCore, CoreResult{
			Program:        s.Name,
			Instructions:   1,
			IPC:            1,
			FirstIPC:       1,
			Served:         1,
			M1Fraction:     0.5,
			AvgReadLat:     1,
			ReadLatP50:     1,
			ReadLatP95:     1,
			ReadLatP99:     1,
			STCHitRate:     0.5,
			Repeats:        1,
			FirstRunCycles: 1,
		})
	}
	return res
}

// PlanSweep dry-runs the given experiments and returns the deduplicated
// union of simulation cells they will need. Requires run caching to be
// enabled (the render phase reads the executed cells back from the
// cache). Experiments whose drivers report ErrNotPlannable are listed in
// Unplannable and otherwise skipped.
func PlanSweep(exps []PlannedExperiment) (*SweepPlan, error) {
	if !RunCaching() {
		return nil, errors.New("profess: PlanSweep needs the run cache (SetRunCaching(true))")
	}
	pc := &planCollector{
		cells:  map[string]*PlanCell{},
		perExp: map[string]int{},
	}
	if !activePlan.CompareAndSwap(nil, pc) {
		return nil, errors.New("profess: a sweep plan is already being built")
	}
	defer activePlan.Store(nil)

	plan := &SweepPlan{PerExperiment: map[string]int{}}
	for _, e := range exps {
		pc.mu.Lock()
		pc.cur = e.Name
		pc.seenByCur = map[string]bool{}
		pc.mu.Unlock()
		if err := e.Run(); err != nil {
			if errors.Is(err, ErrNotPlannable) {
				plan.Unplannable = append(plan.Unplannable, e.Name)
				continue
			}
			return nil, fmt.Errorf("profess: planning %s: %w", e.Name, err)
		}
	}
	pc.mu.Lock()
	plan.Requested = pc.requested
	for name, n := range pc.perExp {
		plan.PerExperiment[name] = n
	}
	for _, c := range pc.cells {
		plan.Cells = append(plan.Cells, *c)
	}
	pc.mu.Unlock()
	// Longest expected job first; ties broken by key so the order (and
	// therefore the executor's schedule) is deterministic.
	sort.Slice(plan.Cells, func(i, j int) bool {
		if plan.Cells[i].Cost != plan.Cells[j].Cost {
			return plan.Cells[i].Cost > plan.Cells[j].Cost
		}
		return plan.Cells[i].Key < plan.Cells[j].Key
	})
	return plan, nil
}

// Hash identifies the plan by its cell set: the SHA-256 over the sorted
// cell keys (which already content-hash every input of every cell). Two
// processes planning the same experiments at the same code version get
// the same hash, which is what lets them share one journal.
func (p *SweepPlan) Hash() string {
	keys := make([]string, len(p.Cells))
	for i, c := range p.Cells {
		keys[i] = c.Key
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "sweep-journal-v1\x00")
	for _, k := range keys {
		fmt.Fprintf(h, "%s\x00", k)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultPruneMargin is the analytic indistinguishability margin for
// SweepPlan.Prune. Its value sits in the empirically measured gap between
// the scheme families the cycle model treats identically (analytic
// distance 0 under the tied default calibration, true IPC deltas ≤ ~6%)
// and the closest genuinely different pair (analytic distance ≥ ~29%
// somewhere in a standard plan, true deltas up to ~50%); see
// prune_test.go for the audit that keeps it honest.
const DefaultPruneMargin = 0.10

// PrunedCell records one cell Prune removed from the plan.
type PrunedCell struct {
	// Key is the pruned cell's run-cache key; RepKey the representative
	// cell whose result will stand in for it.
	Key    string
	RepKey string
	// Scheme and RepScheme name the merged pair.
	Scheme    Scheme
	RepScheme Scheme
	// Delta is the analytic distance between the pruned cell and its
	// representative: the max over the cell's programs of the relative
	// IPC difference and the absolute M1-served-fraction difference.
	Delta float64
	// Experiments lists the plan requests that needed this cell.
	Experiments []string
}

// cellEstimate is one cell's analytic screen used by Prune.
type cellEstimate struct {
	cell *PlanCell
	ipc  []float64
	m1   []float64
}

// dist is the analytic distance between two cells of one group (same
// config and specs, different scheme): the max over programs of relative
// IPC difference and absolute M1-fraction difference.
func (a *cellEstimate) dist(b *cellEstimate) float64 {
	var d float64
	for k := range a.ipc {
		hi := math.Max(a.ipc[k], b.ipc[k])
		if hi > 0 {
			if r := math.Abs(a.ipc[k]-b.ipc[k]) / hi; r > d {
				d = r
			}
		}
		if m := math.Abs(a.m1[k] - b.m1[k]); m > d {
			d = m
		}
	}
	return d
}

// Prune drops cells whose scheme the analytic fast tier
// (internal/analytic) cannot distinguish from a cheaper-to-share
// representative, so the executor simulates one cell per equivalence
// class and serves the others by aliasing the representative's result
// (see ExecuteOpts). A margin ≤ 0 means DefaultPruneMargin.
//
// The screen is deliberately conservative: two schemes merge only when
// their analytic predictions (per-program IPC and M1-served fraction)
// agree within the margin on EVERY planned cell where both appear — a
// plan-global criterion. Cell-local agreement proves nothing: the
// analytic tier's error (see testdata/xval_envelope.json) is far larger
// than real scheme gaps, so two genuinely different schemes routinely
// coincide on individual cells while diverging elsewhere in the plan.
// Only schemes whose predicted behaviour is identical everywhere — under
// the default calibration, the deliberately tied mdm/profess and
// cameo/silc-fm families — survive the global test.
//
// Fault-injecting cells are never pruned (the analytic tier does not
// model faults), and cells the estimator refuses stay unpruned. Call
// Prune after PlanSweep and before ExecuteOpts; the pruned plan hashes
// (and therefore journals) differently from the full plan, so resumed
// sweeps never mix the two cell sets.
func (p *SweepPlan) Prune(margin float64) []PrunedCell {
	if margin <= 0 {
		margin = DefaultPruneMargin
	}
	model := analytic.Default()

	// Screen every cell; group the screenable ones by their
	// scheme-independent key.
	groups := map[string][]*cellEstimate{}
	for i := range p.Cells {
		c := &p.Cells[i]
		if c.Cfg.Faults.Enabled() {
			continue
		}
		est, err := model.Estimate(c.Cfg, c.Specs, c.Scheme)
		if err != nil {
			continue
		}
		ce := &cellEstimate{cell: c}
		for _, pe := range est.Programs {
			ce.ipc = append(ce.ipc, pe.IPC)
			ce.m1 = append(ce.m1, pe.M1Fraction)
		}
		gk := runKey(c.Cfg, c.Specs, Scheme(""))
		groups[gk] = append(groups[gk], ce)
	}

	// Plan-global pair distances: the worst analytic disagreement between
	// two schemes across every group where both appear.
	pairKey := func(a, b Scheme) [2]Scheme {
		if b < a {
			a, b = b, a
		}
		return [2]Scheme{a, b}
	}
	pairDist := map[[2]Scheme]float64{}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				k := pairKey(g[i].cell.Scheme, g[j].cell.Scheme)
				d := g[i].dist(g[j])
				if cur, ok := pairDist[k]; !ok || d > cur {
					pairDist[k] = d
				}
			}
		}
	}

	// Cluster schemes in presentation order: a scheme joins the first
	// representative it is plan-globally indistinguishable from, so the
	// chosen representatives are deterministic.
	present := map[Scheme]bool{}
	for _, g := range groups {
		for _, ce := range g {
			present[ce.cell.Scheme] = true
		}
	}
	var order []Scheme
	for _, s := range Schemes() {
		if present[s] {
			order = append(order, s)
			delete(present, s)
		}
	}
	var extra []Scheme
	for s := range present {
		extra = append(extra, s)
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	order = append(order, extra...)

	repOf := map[Scheme]Scheme{}
	var reps []Scheme
	for _, s := range order {
		repOf[s] = s
		for _, r := range reps {
			if d, ok := pairDist[pairKey(r, s)]; ok && d <= margin {
				repOf[s] = r
				break
			}
		}
		if repOf[s] == s {
			reps = append(reps, s)
		}
	}

	// Drop every cell whose representative scheme has a cell in the same
	// group to stand in for it.
	var pruned []PrunedCell
	drop := map[string]bool{}
	for _, g := range groups {
		byScheme := map[Scheme]*cellEstimate{}
		for _, ce := range g {
			byScheme[ce.cell.Scheme] = ce
		}
		for _, ce := range g {
			r := repOf[ce.cell.Scheme]
			if r == ce.cell.Scheme {
				continue
			}
			re, ok := byScheme[r]
			if !ok {
				continue
			}
			pruned = append(pruned, PrunedCell{
				Key:         ce.cell.Key,
				RepKey:      re.cell.Key,
				Scheme:      ce.cell.Scheme,
				RepScheme:   r,
				Delta:       ce.dist(re),
				Experiments: ce.cell.Experiments,
			})
			drop[ce.cell.Key] = true
		}
	}
	if len(drop) > 0 {
		kept := p.Cells[:0]
		for _, c := range p.Cells {
			if !drop[c.Key] {
				kept = append(kept, c)
			}
		}
		p.Cells = kept
	}
	sort.Slice(pruned, func(i, j int) bool { return pruned[i].Key < pruned[j].Key })
	p.Pruned = append(p.Pruned, pruned...)
	return pruned
}

// SampledCell records one plan cell Sample rewrote to the sampled tier.
type SampledCell struct {
	// FullKey is the cell's original full-fidelity run-cache key — the key
	// the render phase will ask for. Key is the sampled cell's key, the
	// simulation that actually executes.
	FullKey string
	Key     string
	Scheme  Scheme
	// Experiments lists the plan requests that needed this cell.
	Experiments []string
}

// Sample rewrites every eligible plan cell to the interval-sampling tier:
// the cell simulates with the given detailed fraction (and window; 0 means
// DefaultSampleWindow), and the executor serves the original full-fidelity
// key by aliasing the sampled result (see ExecuteOpts) so the render phase
// — which re-invokes the drivers with their full-fidelity configs — reads
// the sampled figures transparently.
//
// This is the sweep's fidelity dial, and unlike Prune it is lossy by
// construction: a sampled Result estimates IPC and the latency statistics
// (with per-program confidence intervals; accuracy envelope in
// testdata/sample_envelope.json), so the aliases live only in this
// process's cache tier and are never persisted — a later full-fidelity
// sweep of the same cells simulates them honestly. Cells that cannot
// sample (clustered machines; see Config.Validate) keep full fidelity and
// are simply not rewritten. Call Sample after Prune: pruned-cell
// representative keys are re-pointed at the sampled cells, while the
// pruned keys themselves stay full-fidelity keys for the render phase.
// The rewritten plan hashes (and therefore journals) differently from the
// full-fidelity plan, so resumed sweeps never mix the two tiers.
func (p *SweepPlan) Sample(fraction float64, window int64) []SampledCell {
	if !(fraction > 0 && fraction < 1) {
		return nil
	}
	var sampled []SampledCell
	rewritten := map[string]string{}
	for i := range p.Cells {
		c := &p.Cells[i]
		cfg := c.Cfg
		cfg.SampleFraction = fraction
		cfg.SampleWindow = window
		if cfg.Validate() != nil {
			continue
		}
		key := runKey(cfg, c.Specs, c.Scheme)
		sampled = append(sampled, SampledCell{
			FullKey:     c.Key,
			Key:         key,
			Scheme:      c.Scheme,
			Experiments: c.Experiments,
		})
		rewritten[c.Key] = key
		c.Cfg = cfg
		c.Key = key
	}
	for i := range p.Pruned {
		if k, ok := rewritten[p.Pruned[i].RepKey]; ok {
			p.Pruned[i].RepKey = k
		}
	}
	sort.Slice(sampled, func(i, j int) bool { return sampled[i].FullKey < sampled[j].FullKey })
	p.Sampled = append(p.Sampled, sampled...)
	return sampled
}

// ExecOptions tunes SweepPlan.ExecuteOpts. The zero value gives a
// GOMAXPROCS pool with the durability defaults below.
type ExecOptions struct {
	// Parallelism bounds concurrent cells in this process (0 = GOMAXPROCS).
	Parallelism int
	// Fresh discards a previous journal for this plan instead of
	// resuming it. Only set it when no other worker process is attached
	// to the sweep.
	Fresh bool
	// LeaseTTL is how stale a cell claim's heartbeat may grow before
	// other workers presume its owner dead and take the cell over
	// (default 10s).
	LeaseTTL time.Duration
	// Heartbeat is the lease refresh period (default LeaseTTL/4).
	Heartbeat time.Duration
	// Poll is how often a worker re-checks cells held by other processes
	// and tails the shared journal while waiting (default 200ms).
	Poll time.Duration
	// MaxAttempts caps per-cell attempts across transient failures,
	// counting failed attempts recorded in the journal by any process
	// (default 3).
	MaxAttempts int
	// RetryBackoff is the base delay between attempts at one cell; it
	// doubles per attempt and is capped at 16x (default 100ms).
	RetryBackoff time.Duration
	// Owner overrides the lease owner id (default host:pid:nonce).
	Owner string
}

func (o ExecOptions) withDefaults() ExecOptions {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = lease.DefaultTTL
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.LeaseTTL / 4
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	return o
}

// ExecReport summarises one ExecuteOpts call.
type ExecReport struct {
	// Cells is the plan size.
	Cells int
	// Done counts cells this call completed (simulated or loaded).
	Done int
	// Resumed counts cells skipped because the journal already recorded
	// them done (with the result still present in the disk cache).
	Resumed int
	// External counts cells completed by another live process while this
	// one waited.
	External int
	// Stolen counts expired leases this process took over from
	// presumed-dead owners.
	Stolen int
	// Retries counts transient per-cell attempt retries.
	Retries int
	// Failed counts cells that exhausted their attempts.
	Failed int
	// Pruned counts cells served by aliasing their representative's
	// result instead of simulating (see SweepPlan.Prune).
	Pruned int
	// Sampled counts full-fidelity keys served by aliasing their sampled
	// cell's result (see SweepPlan.Sample).
	Sampled int
	// JournalPath is the shared journal file ("" when executing without
	// a persistent cache directory).
	JournalPath string
}

// Cell execution states for the in-memory scoreboard.
const (
	cellPending = iota // free to claim
	cellHeld           // lease held by another live process; revisit on poll
	cellRunning        // claimed by this process
	cellDone
	cellFailed
)

// execState is the per-call scoreboard shared by this process's workers.
type execState struct {
	mu     sync.Mutex
	status []int
	// fails counts recorded failed attempts per cell, seeded from the
	// journal so attempts are capped across processes and restarts.
	fails []int
	errs  []error
	byKey map[string]int
	rep   ExecReport
}

// apply folds journal records (replayed history or a live tail) into the
// scoreboard. Done records from other processes flip cells this process
// has not completed itself; claimed records are ignored — a claim proves
// nothing about completion, and liveness is the lease's job.
func (st *execState) apply(recs []lease.Record, owner string, resumed bool, confirm func(key string) bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, r := range recs {
		i, ok := st.byKey[r.Key]
		if !ok {
			continue // a different (e.g. superset) plan shares the journal dir
		}
		switch r.Status {
		case lease.StatusDone:
			if st.status[i] == cellDone || st.status[i] == cellFailed {
				continue
			}
			if confirm != nil && !confirm(r.Key) {
				// Journal says done but the cache entry is gone (LRU
				// eviction, operator rm): re-simulate.
				continue
			}
			st.status[i] = cellDone
			st.errs[i] = nil
			if resumed {
				st.rep.Resumed++
			} else if r.Owner != owner {
				st.rep.External++
			}
		case lease.StatusFailed:
			st.fails[i]++
		}
	}
}

// next claims the first pending cell (plan order is longest-first), or
// reports whether everything is settled.
func (st *execState) next() (i int, settled bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	settled = true
	for j, s := range st.status {
		switch s {
		case cellPending:
			st.status[j] = cellRunning
			return j, false
		case cellHeld, cellRunning:
			settled = false
		}
	}
	return -1, settled
}

// releaseHeld flips every held-elsewhere cell back to pending so the
// next claim attempt re-tests its lease (which may have expired or been
// released).
func (st *execState) releaseHeld() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for j, s := range st.status {
		if s == cellHeld {
			st.status[j] = cellPending
		}
	}
}

func (st *execState) set(i, status int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	// A poll may have marked the cell done from another process's journal
	// record while this process was (redundantly) finishing it; done
	// stays done.
	if st.status[i] == cellDone && status != cellDone {
		return
	}
	st.status[i] = status
	st.errs[i] = err
	switch status {
	case cellDone:
		st.errs[i] = nil
		st.rep.Done++
	case cellFailed:
		st.rep.Failed++
	}
}

// Execute simulates every planned cell once on one global worker pool,
// longest-expected-job-first. It is ExecuteOpts with defaults; see there
// for the durability contract.
func (p *SweepPlan) Execute(ctx context.Context, parallelism int) error {
	_, err := p.ExecuteOpts(ctx, ExecOptions{Parallelism: parallelism})
	return err
}

// ExecuteOpts simulates every planned cell, crash-safely and
// multi-process-safely when the persistent run cache is configured:
//
//   - Each cell is claimed through a heartbeat-refreshed lease file
//     under <cachedir>/leases, so any number of processes (or hosts
//     sharing the directory) can execute one plan without duplicating
//     work; a worker that dies mid-cell is presumed dead after LeaseTTL
//     and its cells are taken over.
//   - Progress is journaled to an append-only JSONL file under
//     <cachedir>/sweeps keyed by the plan hash. A fresh process resumes
//     an interrupted sweep by replaying the journal and skipping cells
//     whose results are already durable; Fresh discards the history.
//   - Transient cell failures retry with capped exponential backoff,
//     with attempts counted across processes through the journal.
//   - Cancellation is distinct from failure: when ctx is cancelled the
//     call stops claiming cells, interrupts in-flight simulations within
//     one watchdog epoch, releases its leases, and returns ctx.Err()
//     itself — not joined into cell errors — leaving the journal in a
//     state a later call (or process) resumes from.
//
// Without a cache directory the same loop runs in-process only: no
// leases, no journal, nothing durable. Results land in the run cache
// (and its persistent tier when configured); cells already cached are
// near-free hits. Cell failures are joined, not fatal mid-sweep: every
// cell is attempted.
func (p *SweepPlan) ExecuteOpts(ctx context.Context, opts ExecOptions) (*ExecReport, error) {
	if !RunCaching() {
		return nil, errors.New("profess: Execute needs the run cache (SetRunCaching(true))")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	n := len(p.Cells)

	st := &execState{
		status: make([]int, n),
		fails:  make([]int, n),
		errs:   make([]error, n),
		byKey:  make(map[string]int, n),
	}
	st.rep.Cells = n
	for i, c := range p.Cells {
		st.byKey[c.Key] = i
	}

	// Durable coordination state, engaged when the persistent tier is
	// configured.
	var (
		mgr     *lease.Manager
		jnl     *lease.Journal
		doneKey = make([]string, 0, n)
	)
	if dir := RunCacheDir(); dir != "" && n > 0 {
		sweepDir := filepath.Join(dir, "sweeps")
		if err := os.MkdirAll(sweepDir, 0o755); err != nil {
			return nil, fmt.Errorf("profess: sweep journal dir: %w", err)
		}
		jpath := filepath.Join(sweepDir, p.Hash()+".jsonl")
		if opts.Fresh {
			if err := os.Remove(jpath); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("profess: discard journal: %w", err)
			}
		}
		var err error
		mgr, err = lease.NewManager(lease.Options{
			Dir:       filepath.Join(dir, "leases"),
			Owner:     opts.Owner,
			Plan:      p.Hash(),
			TTL:       opts.LeaseTTL,
			Heartbeat: opts.Heartbeat,
		})
		if err != nil {
			return nil, fmt.Errorf("profess: lease manager: %w", err)
		}
		defer mgr.Close()
		jnl, err = lease.OpenJournal(jpath)
		if err != nil {
			return nil, fmt.Errorf("profess: sweep journal: %w", err)
		}
		defer jnl.Close()
		st.rep.JournalPath = jpath

		// Resume: replay the whole journal. Only done records whose
		// results are still present in the disk cache are trusted.
		recs, err := jnl.Tail()
		if err != nil {
			return nil, fmt.Errorf("profess: journal replay: %w", err)
		}
		st.apply(recs, mgr.Owner(), true, theDiskCache.has)
	}

	// poll refreshes the scoreboard from other processes' journal
	// records and re-opens held cells for claiming.
	poll := func() {
		if jnl != nil {
			if recs, err := jnl.Tail(); err == nil {
				st.apply(recs, mgr.Owner(), false, theDiskCache.has)
			}
		}
		st.releaseHeld()
	}

	// sleep waits d or until cancellation.
	sleep := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}

	journal := func(i int, status lease.Status, attempt int, err error) {
		if jnl == nil {
			return
		}
		rec := lease.Record{Key: p.Cells[i].Key, Status: status, Owner: mgr.Owner(), Attempt: attempt}
		if err != nil {
			rec.Err = err.Error()
		}
		_ = jnl.Append(rec) // best-effort: a lost record costs duplicated work, not correctness
	}

	// runCell performs one attempt, with panic containment matching
	// parallelFor's. wctx is the worker's context, carrying its private
	// simulation-state arena (see withWorkerArena).
	runCell := func(wctx context.Context, i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("cell %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		c := &p.Cells[i]
		if _, err := runSimCtx(wctx, c.Cfg, c.Specs, c.Scheme); err != nil {
			return fmt.Errorf("cell %s/%s: %w", c.Scheme, c.Key[:12], err)
		}
		return nil
	}

	// attemptCell drives one claimed cell through its bounded retries.
	attemptCell := func(wctx context.Context, i int) {
		var l *lease.Lease
		if mgr != nil {
			var err error
			l, err = mgr.Acquire(p.Cells[i].Key)
			if errors.Is(err, lease.ErrHeld) {
				st.set(i, cellHeld, nil)
				return
			}
			if err != nil {
				// Lease machinery broken (permissions, disk full):
				// degrade to uncoordinated execution rather than
				// wedging the sweep; the run cache keeps it correct.
				l = nil
			} else {
				if l.Stolen() {
					st.mu.Lock()
					st.rep.Stolen++
					st.mu.Unlock()
				}
				defer l.Release()
			}
		}
		st.mu.Lock()
		attempt := st.fails[i]
		st.mu.Unlock()
		var lastErr error
		first := true
		for ; attempt < opts.MaxAttempts; attempt++ {
			if ctx.Err() != nil {
				// Leave no terminal record: the claim stays dangling in
				// the journal and resume re-runs the cell.
				st.set(i, cellPending, nil)
				return
			}
			if !first {
				st.mu.Lock()
				st.rep.Retries++
				st.mu.Unlock()
				backoff := opts.RetryBackoff << (attempt - 1)
				if max := opts.RetryBackoff << 4; backoff > max {
					backoff = max
				}
				if !sleep(backoff) {
					st.set(i, cellPending, nil)
					return
				}
			}
			first = false
			journal(i, lease.StatusClaimed, attempt, nil)
			err := runCell(wctx, i)
			if err == nil {
				journal(i, lease.StatusDone, attempt, nil)
				st.set(i, cellDone, nil)
				return
			}
			if ctx.Err() != nil {
				// The failure is (or is masked by) cancellation; resume
				// will retry with a live context.
				st.set(i, cellPending, nil)
				return
			}
			lastErr = err
			journal(i, lease.StatusFailed, attempt, err)
			st.mu.Lock()
			st.fails[i]++
			st.mu.Unlock()
		}
		st.set(i, cellFailed, lastErr)
	}

	workers := opts.Parallelism
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One simulation-state arena per worker goroutine: cells this
			// worker executes reuse one cached machine per structural
			// shape, with no cross-worker synchronisation.
			wctx := withWorkerArena(ctx)
			for {
				// The cancellation check precedes the claim, so a
				// cancelled worker never marks a cell running (or
				// journals a claim) it will not attempt.
				if ctx.Err() != nil {
					return
				}
				i, settled := st.next()
				if i < 0 {
					if settled {
						return
					}
					// Everything unfinished is held by another process
					// (or running locally): wait, absorb their journal
					// records, retest leases.
					if !sleep(opts.Poll) {
						return
					}
					poll()
					continue
				}
				attemptCell(wctx, i)
			}
		}()
	}
	wg.Wait()

	// Serve sampled cells: alias each original full-fidelity key to its
	// sampled cell's completed result in the in-process cache tier, so the
	// render phase — which asks for the full-fidelity keys — reads the
	// sampled figures without simulating. A sampled cell that did not
	// complete leaves its full key unaliased and the render phase
	// simulates it at full fidelity — slower, but never wrong.
	if len(p.Sampled) > 0 && ctx.Err() == nil {
		byKey := make(map[string]*PlanCell, len(p.Cells))
		for i := range p.Cells {
			byKey[p.Cells[i].Key] = &p.Cells[i]
		}
		for _, sc := range p.Sampled {
			cell := byKey[sc.Key]
			if cell == nil {
				continue
			}
			st.mu.Lock()
			i, ok := st.byKey[sc.Key]
			done := ok && st.status[i] == cellDone
			st.mu.Unlock()
			if !done {
				continue
			}
			res, err := runSimCtx(ctx, cell.Cfg, cell.Specs, cell.Scheme)
			if err != nil {
				continue // the sampled cell's own failure surfaces below
			}
			theRunCache.installAlias(sc.FullKey, res)
			st.mu.Lock()
			st.rep.Sampled++
			st.mu.Unlock()
		}
	}

	// Serve pruned cells: alias each to its representative's completed
	// result in the in-process cache tier, so the render phase reads the
	// representative's figures under the pruned key without simulating.
	// When the representative did not complete (failure, cancellation)
	// the alias is skipped and the render phase simulates the pruned
	// cell for real — slower, but never wrong.
	if len(p.Pruned) > 0 && ctx.Err() == nil {
		byKey := make(map[string]*PlanCell, len(p.Cells))
		for i := range p.Cells {
			byKey[p.Cells[i].Key] = &p.Cells[i]
		}
		for _, pr := range p.Pruned {
			repCell := byKey[pr.RepKey]
			if repCell == nil {
				continue
			}
			st.mu.Lock()
			i, ok := st.byKey[pr.RepKey]
			repDone := ok && st.status[i] == cellDone
			st.mu.Unlock()
			if !repDone {
				continue
			}
			res, err := runSimCtx(ctx, repCell.Cfg, repCell.Specs, repCell.Scheme)
			if err != nil {
				continue // the representative's own failure surfaces below
			}
			theRunCache.installAlias(pr.Key, res)
			st.mu.Lock()
			st.rep.Pruned++
			st.mu.Unlock()
		}
	}

	st.mu.Lock()
	rep := st.rep
	var errs []error
	for i, s := range st.status {
		if s == cellFailed && st.errs[i] != nil {
			errs = append(errs, st.errs[i])
		}
		if s == cellDone {
			doneKey = append(doneKey, p.Cells[i].Key)
		}
	}
	st.mu.Unlock()

	if mgr != nil {
		// End-of-sweep hygiene: drop lease files for cells the journal
		// proves complete (left by owners killed between completion and
		// release, or by stragglers re-verifying finished cells) plus
		// any expired leases and takeover temporaries. Live claims of
		// unfinished cells are untouched.
		lease.RemoveKeys(filepath.Join(RunCacheDir(), "leases"), doneKey)
		lease.SweepExpired(filepath.Join(RunCacheDir(), "leases"), opts.LeaseTTL)
	}

	// Cancellation is reported alone: callers distinguish "the user
	// stopped the sweep" (resume later) from "cells failed".
	if err := ctx.Err(); err != nil {
		return &rep, err
	}
	return &rep, errors.Join(errs...)
}
