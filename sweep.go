package profess

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// The sweep planner sits above the experiment drivers. The paper's
// evaluation revisits the same simulation cells constantly — every
// stand-alone slowdown baseline, every shared PoM reference column — and
// while the run cache already dedupes those *as they arrive*, arrival
// order still decides the makespan: a straggler cell discovered late
// serialises the tail. Planning first enumerates every (Config, specs,
// Scheme) cell a set of experiments will need, dedupes the union, and
// executes it longest-expected-job-first on one global pool; the drivers
// then re-run for real and render their figures purely from the completed
// cell table (the warm run cache), simulating nothing.
//
// Enumeration is a dry run of the drivers themselves: while a plan is
// being built, the runSim funnel records each requested cell and returns
// a stub Result instead of simulating, so the exact production control
// flow — seed replicas, footprint filters, shared baselines — decides the
// cell set and the plan can never drift from the drivers.

// ErrNotPlannable marks an experiment that cannot be enumerated by a dry
// run because it simulates outside the run-cache funnel (custom policies,
// direct System use). PlanSweep skips such experiments; they simulate for
// real when rendered.
var ErrNotPlannable = errors.New("profess: experiment does not funnel through the run cache and cannot be planned")

// PlanCell is one deduplicated simulation a sweep will need.
type PlanCell struct {
	// Key is the cell's content hash — the run-cache key.
	Key    string
	Cfg    Config
	Specs  []ProgramSpec
	Scheme Scheme
	// Cost is the expected relative cost (instruction budget × thread
	// count); the executor schedules longest-expected-job-first so the
	// makespan is not dominated by a straggler discovered late.
	Cost int64
	// Experiments lists the plan requests that need this cell.
	Experiments []string
}

// SweepPlan is the deduplicated union of every cell the planned
// experiments will simulate, sorted longest-expected-job-first.
type SweepPlan struct {
	Cells []PlanCell
	// Requested counts distinct cell requests before cross-experiment
	// dedup (each experiment's cells summed); Requested/len(Cells) is the
	// sharing factor the planner exploits.
	Requested int
	// PerExperiment maps each planned experiment to its distinct cell
	// count.
	PerExperiment map[string]int
	// Unplannable lists experiments that returned ErrNotPlannable; they
	// simulate when rendered instead.
	Unplannable []string
}

// PlannedExperiment names one experiment and the driver invocation that
// enumerates its cells. Run is called once with recording active and its
// report discarded; it must invoke the same drivers, with the same
// options, as the later render.
type PlannedExperiment struct {
	Name string
	Run  func() error
}

// planCollector records the cells runSim is asked for during a dry run.
type planCollector struct {
	mu        sync.Mutex
	cur       string
	cells     map[string]*PlanCell
	seenByCur map[string]bool
	requested int
	perExp    map[string]int
}

// activePlan, when non-nil, switches the runSim funnel into recording
// mode. Only one plan builds at a time.
var activePlan atomic.Pointer[planCollector]

// planning reports whether a sweep plan is currently being built.
func planning() bool { return activePlan.Load() != nil }

// record notes one requested cell and returns the dry-run stub.
func (pc *planCollector) record(cfg Config, specs []ProgramSpec, scheme Scheme) *Result {
	if cacheable(cfg, specs) {
		key := runKey(cfg, specs, scheme)
		threads := int64(0)
		for _, s := range specs {
			t := int64(s.Threads)
			if t < 1 {
				t = 1
			}
			threads += t
		}
		pc.mu.Lock()
		c, ok := pc.cells[key]
		if !ok {
			c = &PlanCell{
				Key:    key,
				Cfg:    cfg,
				Specs:  append([]ProgramSpec(nil), specs...),
				Scheme: scheme,
				Cost:   cfg.Instructions * threads,
			}
			pc.cells[key] = c
		}
		if !pc.seenByCur[key] {
			pc.seenByCur[key] = true
			pc.requested++
			pc.perExp[pc.cur]++
			c.Experiments = append(c.Experiments, pc.cur)
		}
		pc.mu.Unlock()
	}
	return planStub(specs, scheme)
}

// planStub is the Result handed back during a dry run: enough non-zero
// structure (one CoreResult per program, unit metrics) that driver
// arithmetic — ratios, slowdowns, geomeans — proceeds without dividing by
// zero. The values are meaningless and every dry-run report is discarded.
func planStub(specs []ProgramSpec, scheme Scheme) *Result {
	res := &Result{
		Scheme:     string(scheme),
		Cycles:     1,
		EnergyEff:  1,
		Watts:      1,
		STCHitRate: 0.5,
		L3HitRate:  0.5,
	}
	for _, s := range specs {
		res.PerCore = append(res.PerCore, CoreResult{
			Program:        s.Name,
			Instructions:   1,
			IPC:            1,
			FirstIPC:       1,
			Served:         1,
			M1Fraction:     0.5,
			AvgReadLat:     1,
			ReadLatP50:     1,
			ReadLatP95:     1,
			ReadLatP99:     1,
			STCHitRate:     0.5,
			Repeats:        1,
			FirstRunCycles: 1,
		})
	}
	return res
}

// PlanSweep dry-runs the given experiments and returns the deduplicated
// union of simulation cells they will need. Requires run caching to be
// enabled (the render phase reads the executed cells back from the
// cache). Experiments whose drivers report ErrNotPlannable are listed in
// Unplannable and otherwise skipped.
func PlanSweep(exps []PlannedExperiment) (*SweepPlan, error) {
	if !RunCaching() {
		return nil, errors.New("profess: PlanSweep needs the run cache (SetRunCaching(true))")
	}
	pc := &planCollector{
		cells:  map[string]*PlanCell{},
		perExp: map[string]int{},
	}
	if !activePlan.CompareAndSwap(nil, pc) {
		return nil, errors.New("profess: a sweep plan is already being built")
	}
	defer activePlan.Store(nil)

	plan := &SweepPlan{PerExperiment: map[string]int{}}
	for _, e := range exps {
		pc.mu.Lock()
		pc.cur = e.Name
		pc.seenByCur = map[string]bool{}
		pc.mu.Unlock()
		if err := e.Run(); err != nil {
			if errors.Is(err, ErrNotPlannable) {
				plan.Unplannable = append(plan.Unplannable, e.Name)
				continue
			}
			return nil, fmt.Errorf("profess: planning %s: %w", e.Name, err)
		}
	}
	pc.mu.Lock()
	plan.Requested = pc.requested
	for name, n := range pc.perExp {
		plan.PerExperiment[name] = n
	}
	for _, c := range pc.cells {
		plan.Cells = append(plan.Cells, *c)
	}
	pc.mu.Unlock()
	// Longest expected job first; ties broken by key so the order (and
	// therefore the executor's schedule) is deterministic.
	sort.Slice(plan.Cells, func(i, j int) bool {
		if plan.Cells[i].Cost != plan.Cells[j].Cost {
			return plan.Cells[i].Cost > plan.Cells[j].Cost
		}
		return plan.Cells[i].Key < plan.Cells[j].Key
	})
	return plan, nil
}

// Execute simulates every planned cell once on one global worker pool,
// longest-expected-job-first: workers pull the next unclaimed cell, so
// the big quad-core mixes start immediately and the cheap stand-alone
// baselines backfill around them. Results land in the run cache (and its
// persistent tier when configured); cells already cached are near-free
// hits. Failures are joined, not fatal mid-sweep: every cell is
// attempted.
func (p *SweepPlan) Execute(ctx context.Context, parallelism int) error {
	if !RunCaching() {
		return errors.New("profess: Execute needs the run cache (SetRunCaching(true))")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(p.Cells)
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	run := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("cell %d panicked: %v\n%s", i, r, debug.Stack())
			}
		}()
		c := &p.Cells[i]
		if _, err := runSim(c.Cfg, c.Specs, c.Scheme); err != nil {
			return fmt.Errorf("cell %s/%s: %w", c.Scheme, c.Key[:12], err)
		}
		return nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
