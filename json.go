package profess

import (
	"encoding/json"
	"fmt"
)

// ResultJSON renders a Result as indented JSON for downstream tooling
// (professim -json). All Result and CoreResult fields are exported, so
// the encoding is the stable public schema.
func ResultJSON(r *Result) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("profess: encoding result: %w", err)
	}
	return string(b), nil
}

// WorkloadResultJSON renders a WorkloadResult (metrics plus the underlying
// Result) as indented JSON.
func WorkloadResultJSON(wr *WorkloadResult) (string, error) {
	b, err := json.MarshalIndent(wr, "", "  ")
	if err != nil {
		return "", fmt.Errorf("profess: encoding workload result: %w", err)
	}
	return string(b), nil
}

// FullScaleConfig returns the paper's exact Table 8 quad-core system
// (256 MB M1, 2 GB M2, 8 MB L3, 64-KB STC, 500M instructions per
// program). Fair warning, mirroring §4.1: the paper budgeted 3-4 days per
// workload on this configuration; expect long runs.
func FullScaleConfig() Config { return MultiCoreConfig(1) }
