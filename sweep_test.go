package profess

import (
	"strings"
	"testing"
)

// sweepTestOpts are small options shared by the planner tests.
func sweepTestOpts() ExpOptions {
	return ExpOptions{Instructions: 50_000, Workloads: []string{"w09"}, Parallelism: 2}
}

// sweepTestExperiments builds two experiments that overlap exactly the
// way the paper's figures do: fig2's PoM cells (mix + stand-alone
// baselines on w09) are a strict subset of the fig10 matrix.
func sweepTestExperiments(opts ExpOptions, out map[string]string) []PlannedExperiment {
	return []PlannedExperiment{
		{Name: "fig2", Run: func() error {
			rep, err := RunMultiProgram([]Scheme{SchemePoM}, opts)
			if err != nil {
				return err
			}
			if out != nil {
				out["fig2"] = rep.SlowdownDetailString(opts.Workloads)
			}
			return nil
		}},
		{Name: "fig10", Run: func() error {
			rep, err := RunMultiProgram([]Scheme{SchemePoM, SchemeMDM}, opts)
			if err != nil {
				return err
			}
			if out != nil {
				out["fig10"] = rep.String()
			}
			return nil
		}},
	}
}

// TestPlanSweepDedups checks the planner enumerates without simulating,
// dedupes shared cells across experiments, and orders the union
// longest-expected-job-first.
func TestPlanSweepDedups(t *testing.T) {
	ResetRunCache()
	SetRunCaching(true)
	defer ResetRunCache()

	opts := sweepTestOpts()
	plan, err := PlanSweep(sweepTestExperiments(opts, nil))
	if err != nil {
		t.Fatal(err)
	}
	if d := RunCacheDetail(); d.Sims != 0 {
		t.Fatalf("planning simulated %d cells; the dry run must be free", d.Sims)
	}
	if len(plan.Cells) == 0 {
		t.Fatal("empty plan")
	}
	// fig2's cells (PoM mix + PoM baselines) are all shared with fig10.
	if plan.Requested != plan.PerExperiment["fig2"]+plan.PerExperiment["fig10"] {
		t.Errorf("Requested %d != per-experiment sum %d+%d",
			plan.Requested, plan.PerExperiment["fig2"], plan.PerExperiment["fig10"])
	}
	if len(plan.Cells) != plan.PerExperiment["fig10"] {
		t.Errorf("union has %d cells, want fig10's %d (fig2 fully shared)",
			len(plan.Cells), plan.PerExperiment["fig10"])
	}
	if plan.Requested <= len(plan.Cells) {
		t.Errorf("no cross-experiment sharing: %d requested, %d distinct", plan.Requested, len(plan.Cells))
	}
	for i := 1; i < len(plan.Cells); i++ {
		if plan.Cells[i].Cost > plan.Cells[i-1].Cost {
			t.Fatalf("cells not longest-first at %d: %d after %d", i, plan.Cells[i].Cost, plan.Cells[i-1].Cost)
		}
	}
	// The expensive cells are the four-program mixes; they must lead.
	if len(plan.Cells[0].Specs) != 4 {
		t.Errorf("longest-first should schedule the quad-program mix first, got %d specs", len(plan.Cells[0].Specs))
	}
	// Shared cells carry both requesters.
	var shared bool
	for _, c := range plan.Cells {
		if len(c.Experiments) == 2 {
			shared = true
		}
	}
	if !shared {
		t.Error("no cell records both experiments as requesters")
	}
}

// TestSweepExecuteRenderByteIdentical is the acceptance property: a cold
// deduped sweep simulates each distinct cell exactly once across all
// requested experiments, figures render byte-identical to an uncached
// run, and a warm re-run (fresh process simulated by dropping the
// in-process tier) performs zero simulations.
func TestSweepExecuteRenderByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := sweepTestOpts()

	// Reference: every figure from fully uncached simulations.
	SetRunCaching(false)
	want := map[string]string{}
	for _, e := range sweepTestExperiments(opts, want) {
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	SetRunCaching(true)

	dir := t.TempDir()
	ResetRunCache()
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetRunCacheDir(""); err != nil {
			t.Fatal(err)
		}
		ResetRunCache()
	}()

	// Cold: plan, execute, render.
	plan, err := PlanSweep(sweepTestExperiments(opts, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Execute(nil, 2); err != nil {
		t.Fatal(err)
	}
	afterExec := RunCacheDetail()
	if int(afterExec.Sims) != len(plan.Cells) {
		t.Errorf("cold execute ran %d sims for %d distinct cells; each must simulate exactly once", afterExec.Sims, len(plan.Cells))
	}
	got := map[string]string{}
	for _, e := range sweepTestExperiments(opts, got) {
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if d := RunCacheDetail(); d.Sims != afterExec.Sims {
		t.Errorf("render phase simulated %d extra cells; figures must come from the completed cell table", d.Sims-afterExec.Sims)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s output differs from the uncached run:\n--- uncached ---\n%s\n--- planned ---\n%s", name, w, got[name])
		}
	}

	// Warm: a fresh process (in-process tier dropped) renders everything
	// from disk with zero simulations.
	ResetRunCache()
	plan2, err := PlanSweep(sweepTestExperiments(opts, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan2.Execute(nil, 2); err != nil {
		t.Fatal(err)
	}
	got2 := map[string]string{}
	for _, e := range sweepTestExperiments(opts, got2) {
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	d := RunCacheDetail()
	if d.Sims != 0 {
		t.Errorf("warm sweep simulated %d cells, want 0 (100%% hit rate)", d.Sims)
	}
	if int(d.DiskHits) != len(plan2.Cells) {
		t.Errorf("warm sweep took %d disk hits for %d cells", d.DiskHits, len(plan2.Cells))
	}
	for name, w := range want {
		if got2[name] != w {
			t.Errorf("%s warm output differs from the uncached run", name)
		}
	}
}

// TestSweepPlanSample checks the sweep's fidelity dial: Sample rewrites
// every eligible cell to the interval-sampling tier under a new cache
// key, the executor simulates only the sampled cells, and the render
// phase — which asks for the original full-fidelity keys — is served
// entirely by the post-execution aliases, never by fresh simulation.
func TestSweepPlanSample(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ResetRunCache()
	SetRunCaching(true)
	defer ResetRunCache()

	opts := sweepTestOpts()
	plan, err := PlanSweep(sweepTestExperiments(opts, nil))
	if err != nil {
		t.Fatal(err)
	}
	fullHash := plan.Hash()
	fullKeys := map[string]bool{}
	for _, c := range plan.Cells {
		fullKeys[c.Key] = true
	}

	// Out-of-range fractions are a no-op, not a surprise rewrite.
	if sc := plan.Sample(0, 0); sc != nil {
		t.Fatalf("Sample(0) rewrote %d cells, want none", len(sc))
	}
	if sc := plan.Sample(1, 0); sc != nil {
		t.Fatalf("Sample(1) rewrote %d cells, want none", len(sc))
	}

	sampled := plan.Sample(0.5, 20_000)
	if len(sampled) != len(plan.Cells) {
		t.Fatalf("Sample rewrote %d of %d cells; every non-clustered cell is eligible", len(sampled), len(plan.Cells))
	}
	if plan.Hash() == fullHash {
		t.Error("sampled plan hashes identically to the full-fidelity plan; journals would mix tiers")
	}
	for _, sc := range sampled {
		if !fullKeys[sc.FullKey] {
			t.Errorf("sampled cell's FullKey %s is not a planned full-fidelity key", sc.FullKey[:12])
		}
		if fullKeys[sc.Key] {
			t.Errorf("sampled cell key %s collides with a full-fidelity key", sc.Key[:12])
		}
	}
	for _, c := range plan.Cells {
		if !c.Cfg.SamplingOn() {
			t.Fatalf("cell %s not rewritten to the sampled tier", c.Key[:12])
		}
	}

	rep, err := plan.ExecuteOpts(nil, ExecOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	afterExec := RunCacheDetail()
	if int(afterExec.Sims) != len(plan.Cells) {
		t.Errorf("execute ran %d sims for %d sampled cells", afterExec.Sims, len(plan.Cells))
	}
	if rep.Sampled != len(sampled) {
		t.Errorf("report says %d full-fidelity keys served, want %d", rep.Sampled, len(sampled))
	}

	// Render: the drivers re-run with full-fidelity configs and must be
	// fed by the aliases — zero additional simulations.
	got := map[string]string{}
	for _, e := range sweepTestExperiments(opts, got) {
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if d := RunCacheDetail(); d.Sims != afterExec.Sims {
		t.Errorf("render phase simulated %d extra cells; full keys must be served by the sampled aliases", d.Sims-afterExec.Sims)
	}
	for name, out := range got {
		if out == "" {
			t.Errorf("%s rendered empty output", name)
		}
	}
}

// TestPlanSweepUnplannable checks that custom-policy experiments are
// reported rather than silently simulated during planning, and that
// RunWithPolicy refuses to run inside a dry run.
func TestPlanSweepUnplannable(t *testing.T) {
	ResetRunCache()
	SetRunCaching(true)
	defer ResetRunCache()

	opts := ExpOptions{Instructions: 50_000, Programs: []string{"mcf"}, Parallelism: 1}
	plan, err := PlanSweep([]PlannedExperiment{
		{Name: "table4", Run: func() error {
			_, err := RunSamplingAccuracy(opts)
			return err
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unplannable) != 1 || plan.Unplannable[0] != "table4" {
		t.Errorf("Unplannable = %v, want [table4]", plan.Unplannable)
	}
	if d := RunCacheDetail(); d.Sims != 0 {
		t.Errorf("unplannable experiment simulated %d cells during planning", d.Sims)
	}
}

// TestPlanSweepNeedsCaching pins the precondition: without the run cache
// the render phase could not read executed cells back.
func TestPlanSweepNeedsCaching(t *testing.T) {
	SetRunCaching(false)
	defer SetRunCaching(true)
	if _, err := PlanSweep(nil); err == nil || !strings.Contains(err.Error(), "run cache") {
		t.Errorf("PlanSweep without caching: err = %v", err)
	}
	p := &SweepPlan{}
	if err := p.Execute(nil, 1); err == nil || !strings.Contains(err.Error(), "run cache") {
		t.Errorf("Execute without caching: err = %v", err)
	}
}
