package profess

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"profess/internal/stats"
)

// MultiProgramCell is one (workload, scheme) outcome.
type MultiProgramCell struct {
	Workload        string
	Scheme          Scheme
	WeightedSpeedup float64
	MaxSlowdown     float64
	EnergyEff       float64
	SwapFraction    float64
	AvgReadLat      float64
	// LifetimeSeconds projects M2 device lifetime from the cell's write
	// wear, bounded by its hottest row (see sim.NVMWear).
	LifetimeSeconds float64
	Slowdowns       []float64
	Programs        []string
	// Resilience tallies the cell's fault injection and degradation
	// (zero for a fault-free run).
	Resilience Resilience
}

// MultiProgramReport regenerates the multiprogram evaluation: Figs. 10-15
// (MDM and ProFess vs PoM on max slowdown, weighted speedup and energy
// efficiency) and the per-program slowdown details of Figs. 2 and 16.
type MultiProgramReport struct {
	Schemes []Scheme
	Cells   []MultiProgramCell
}

// RunMultiProgram runs every workload of the options under every given
// scheme, with shared stand-alone baselines.
func RunMultiProgram(schemes []Scheme, opts ExpOptions) (*MultiProgramReport, error) {
	cfg := opts.multiConfig()
	wls := opts.workloads()
	cache := NewBaselineCache()

	// With the run cache off, warm the baseline cache first (one run per
	// distinct program and scheme) so the workload jobs don't duplicate
	// alone-runs racing the same key. With it on, the prepass is
	// redundant: runSim's singleflight already collapses concurrent
	// identical baseline runs to one simulation, and the sweep planner's
	// dry run enumerates the baselines through the workload jobs
	// themselves.
	if !RunCaching() {
		type baseJob struct {
			prog   string
			scheme Scheme
		}
		seen := map[baseJob]bool{}
		var baseJobs []baseJob
		for _, wn := range wls {
			w, err := workloadByName(wn)
			if err != nil {
				return nil, err
			}
			for _, p := range w.Programs {
				for _, s := range schemes {
					j := baseJob{p, s}
					if !seen[j] {
						seen[j] = true
						baseJobs = append(baseJobs, j)
					}
				}
			}
		}
		err := parallelFor(opts.ctx(), len(baseJobs), opts.Parallelism, func(i int) error {
			_, err := cache.AloneIPCContext(opts.ctx(), baseJobs[i].prog, baseJobs[i].scheme, cfg)
			return err
		})
		if err != nil {
			return nil, err
		}
	}

	type job struct {
		wl     string
		scheme Scheme
	}
	var jobs []job
	for _, wn := range wls {
		for _, s := range schemes {
			jobs = append(jobs, job{wn, s})
		}
	}
	cells := make([]MultiProgramCell, len(jobs))
	var mu sync.Mutex
	runCells := func() error {
		return parallelFor(opts.ctx(), len(jobs), opts.Parallelism, func(i int) error {
			mu.Lock()
			done := cells[i].Workload != ""
			mu.Unlock()
			if done {
				return nil // succeeded on a previous attempt
			}
			if multiCellHook != nil {
				multiCellHook(jobs[i].wl, jobs[i].scheme)
			}
			wr, err := RunWorkloadContext(opts.ctx(), jobs[i].wl, jobs[i].scheme, cfg, cache)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", jobs[i].wl, jobs[i].scheme, err)
			}
			var lat, n float64
			var programs []string
			for _, c := range wr.Result.PerCore {
				lat += c.AvgReadLat * float64(c.Served)
				n += float64(c.Served)
				programs = append(programs, c.Program)
			}
			if n > 0 {
				lat /= n
			}
			mu.Lock()
			cells[i] = MultiProgramCell{
				Workload:        jobs[i].wl,
				Scheme:          jobs[i].scheme,
				WeightedSpeedup: wr.WeightedSpeedup,
				MaxSlowdown:     wr.MaxSlowdown,
				EnergyEff:       wr.Result.EnergyEff,
				SwapFraction:    wr.Result.SwapFraction,
				AvgReadLat:      lat,
				LifetimeSeconds: wr.Result.NVM.LifetimeSeconds,
				Slowdowns:       wr.Slowdowns,
				Programs:        programs,
				Resilience:      wr.Result.Resilience,
			}
			mu.Unlock()
			return nil
		})
	}
	err := runCells()
	if err != nil && opts.ctx().Err() == nil {
		// Failed cells (including recovered worker panics) get one retry;
		// completed cells are skipped, so a transient failure costs one
		// re-run rather than the whole sweep.
		err = runCells()
	}
	rep := &MultiProgramReport{Schemes: schemes, Cells: cells}
	if err != nil {
		// Return the surviving cells alongside the error: a long sweep
		// with one wedged cell still yields the rest of the matrix.
		return rep, err
	}
	return rep, nil
}

// multiCellHook, when non-nil, runs at the start of every workload-cell
// job of RunMultiProgram. It exists for tests, which use it to inject
// failures (including panics) into the worker pool.
var multiCellHook func(wl string, scheme Scheme)

// workloadByName resolves through the public Workloads view.
func workloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("profess: unknown workload %q", name)
}

// Cell looks up (workload, scheme).
func (r *MultiProgramReport) Cell(wl string, s Scheme) (MultiProgramCell, bool) {
	for _, c := range r.Cells {
		if c.Workload == wl && c.Scheme == s {
			return c, true
		}
	}
	return MultiProgramCell{}, false
}

// NormalisedSeries returns, per workload, the ratio of a metric under
// scheme num over scheme den — the Figs. 10-15 presentation. metric is one
// of "ws", "maxsdn", "energy", "swapfrac", "readlat".
func (r *MultiProgramReport) NormalisedSeries(num, den Scheme, metric string) map[string]float64 {
	get := func(c MultiProgramCell) float64 {
		switch metric {
		case "ws":
			return c.WeightedSpeedup
		case "maxsdn":
			return c.MaxSlowdown
		case "energy":
			return c.EnergyEff
		case "swapfrac":
			return c.SwapFraction
		case "readlat":
			return c.AvgReadLat
		}
		return 0
	}
	out := map[string]float64{}
	for _, c := range r.Cells {
		if c.Scheme != num {
			continue
		}
		if d, ok := r.Cell(c.Workload, den); ok {
			out[c.Workload] = Ratio(get(c), get(d))
		}
	}
	return out
}

// sortedKeys returns map keys in sorted order.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GeoMeanSeries summarises a normalised series.
func GeoMeanSeries(m map[string]float64) float64 {
	var xs []float64
	for _, k := range sortedKeys(m) {
		if m[k] > 0 {
			xs = append(xs, m[k])
		}
	}
	return stats.GeoMean(xs)
}

// String renders the full multiprogram table plus the normalised
// summaries of Figs. 10-15.
func (r *MultiProgramReport) String() string {
	var b strings.Builder
	t := stats.NewTable("workload", "scheme", "WS", "max sdn", "energy eff", "swap frac", "read lat", "M2 life")
	for _, c := range r.Cells {
		t.AddRowf(c.Workload, string(c.Scheme), c.WeightedSpeedup, c.MaxSlowdown, c.EnergyEff, c.SwapFraction, c.AvgReadLat, secsShort(c.LifetimeSeconds))
	}
	b.WriteString(t.String())
	for _, s := range r.Schemes {
		if s == SchemePoM {
			continue
		}
		for _, m := range []struct{ metric, label string }{
			{"maxsdn", "max slowdown"},
			{"ws", "weighted speedup"},
			{"energy", "energy efficiency"},
			{"swapfrac", "swap fraction"},
		} {
			series := r.NormalisedSeries(s, SchemePoM, m.metric)
			if len(series) == 0 {
				continue
			}
			fmt.Fprintf(&b, "\n%s %s normalised to PoM (gmean %.3f):\n", s, m.label, GeoMeanSeries(series))
			for _, wl := range sortedKeys(series) {
				fmt.Fprintf(&b, "  %-5s %.3f\n", wl, series[wl])
			}
		}
	}
	return b.String()
}

// SlowdownDetailString renders the Figs. 2/16 per-program slowdown detail
// for the given workloads.
func (r *MultiProgramReport) SlowdownDetailString(workloads []string) string {
	var b strings.Builder
	t := stats.NewTable("workload", "program", "scheme", "slowdown")
	for _, wl := range workloads {
		for _, s := range r.Schemes {
			c, ok := r.Cell(wl, s)
			if !ok {
				continue
			}
			for i, sdn := range c.Slowdowns {
				t.AddRowf(wl, c.Programs[i], string(s), sdn)
			}
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// AMMATReport regenerates the §2.5 MemPod-vs-PoM observation: average
// main-memory access time (proxied by the mean demand read latency) in
// the single- and multi-program systems.
type AMMATReport struct {
	SingleRatio map[string]float64 // per program: MemPod / PoM read latency
	MultiRatio  map[string]float64 // per workload: MemPod / PoM read latency
}

// RunMemPodComparison measures the AMMAT of MemPod normalised to PoM.
func RunMemPodComparison(opts ExpOptions) (*AMMATReport, error) {
	rep := &AMMATReport{SingleRatio: map[string]float64{}, MultiRatio: map[string]float64{}}

	single, err := RunSinglePrograms([]Scheme{SchemePoM, SchemeMemPod}, opts)
	if err != nil {
		return nil, err
	}
	rep.SingleRatio = single.Ratios(SchemeMemPod, SchemePoM, "readlat")

	cfg := opts.multiConfig()
	wls := opts.workloads()
	type cellKey struct {
		wl     string
		scheme Scheme
	}
	lat := make(map[cellKey]float64)
	var mu sync.Mutex
	var jobs []cellKey
	for _, wl := range wls {
		jobs = append(jobs, cellKey{wl, SchemePoM}, cellKey{wl, SchemeMemPod})
	}
	err = parallelFor(opts.ctx(), len(jobs), opts.Parallelism, func(i int) error {
		res, err := RunMixContext(opts.ctx(), jobs[i].wl, jobs[i].scheme, cfg)
		if err != nil {
			return err
		}
		var sum, n float64
		for _, c := range res.PerCore {
			sum += c.AvgReadLat * float64(c.Served)
			n += float64(c.Served)
		}
		mu.Lock()
		if n > 0 {
			lat[jobs[i]] = sum / n
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, wl := range wls {
		rep.MultiRatio[wl] = Ratio(lat[cellKey{wl, SchemeMemPod}], lat[cellKey{wl, SchemePoM}])
	}
	return rep, nil
}

// String renders the AMMAT ratios.
func (r *AMMATReport) String() string {
	var b strings.Builder
	var xs []float64
	b.WriteString("MemPod AMMAT normalised to PoM (single-program):\n")
	for _, p := range sortedKeys(r.SingleRatio) {
		fmt.Fprintf(&b, "  %-12s %.3f\n", p, r.SingleRatio[p])
		xs = append(xs, r.SingleRatio[p])
	}
	fmt.Fprintf(&b, "  gmean %.3f\n", stats.GeoMean(xs))
	xs = xs[:0]
	b.WriteString("MemPod AMMAT normalised to PoM (multi-program):\n")
	for _, w := range sortedKeys(r.MultiRatio) {
		fmt.Fprintf(&b, "  %-5s %.3f\n", w, r.MultiRatio[w])
		xs = append(xs, r.MultiRatio[w])
	}
	fmt.Fprintf(&b, "  gmean %.3f\n", stats.GeoMean(xs))
	return b.String()
}
