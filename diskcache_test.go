package profess

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// withDiskCache points the persistent tier at a fresh temp directory for
// one test and restores a clean cache state afterwards.
func withDiskCache(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	ResetRunCache()
	SetRunCaching(true)
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := SetRunCacheDir(""); err != nil {
			t.Fatal(err)
		}
		SetRunCacheSizeLimit(0)
		ResetRunCache()
	})
	return dir
}

func smallCfg() Config {
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 30_000
	return cfg
}

// TestDiskCacheRoundTrip simulates once, drops the in-process tier, and
// checks the second run is served from disk with a deeply identical
// Result and zero simulations.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := withDiskCache(t)
	cfg := smallCfg()

	r1, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := RunCacheDetail(); d.Sims != 1 || d.DiskHits != 0 {
		t.Fatalf("cold run: %+v, want 1 sim and no disk hits", d)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one cache entry on disk, got %v (err %v)", entries, err)
	}

	ResetRunCache() // drop the in-process tier; disk survives
	r2, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := RunCacheDetail(); d.Sims != 0 || d.DiskHits != 1 {
		t.Fatalf("warm run: %+v, want 0 sims and 1 disk hit", d)
	}
	if r1 == r2 {
		t.Fatal("disk-served Result should be a fresh decode, not the same pointer")
	}
	if !reflect.DeepEqual(*r1, *r2) {
		t.Errorf("disk round-trip changed the Result:\n got %+v\nwant %+v", *r2, *r1)
	}
}

// TestDiskCacheCorruptEntriesDeleted covers the self-healing rules: a
// truncated entry, a checksum mismatch, and a stale code stamp are each
// skipped AND deleted on load.
func TestDiskCacheCorruptEntriesDeleted(t *testing.T) {
	dir := withDiskCache(t)
	cfg := smallCfg()
	res, err := RunProgram("mcf", SchemePoM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(entries) != 1 {
		t.Fatalf("want one entry, got %v", entries)
	}
	path := entries[0]
	key := strings.TrimSuffix(filepath.Base(path), ".json")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func() error) {
		t.Helper()
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, ok := theDiskCache.load(key); ok {
			t.Errorf("%s: load accepted a bad entry: %+v", name, got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: bad entry not deleted", name)
		}
		// Restore the good entry for the next case.
		if err := os.WriteFile(path, good, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	corrupt("truncated", func() error {
		return os.WriteFile(path, good[:len(good)/2], 0o644)
	})
	corrupt("checksum mismatch", func() error {
		var env diskEnvelope
		if err := json.Unmarshal(good, &env); err != nil {
			return err
		}
		env.Sum = strings.Repeat("0", len(env.Sum))
		bad, err := json.Marshal(env)
		if err != nil {
			return err
		}
		return os.WriteFile(path, bad, 0o644)
	})
	corrupt("stale code stamp", func() error {
		var env diskEnvelope
		if err := json.Unmarshal(good, &env); err != nil {
			return err
		}
		env.Code = "some-older-revision"
		bad, err := json.Marshal(env)
		if err != nil {
			return err
		}
		return os.WriteFile(path, bad, 0o644)
	})

	// The intact entry still loads.
	got, ok := theDiskCache.load(key)
	if !ok {
		t.Fatal("restored good entry should load")
	}
	if !reflect.DeepEqual(*res, *got) {
		t.Error("restored entry decoded to a different Result")
	}
}

// TestDiskCacheLRUSizeCap fills the tier past a tiny byte cap and checks
// the oldest entries (by last use) are evicted while the newest survive.
func TestDiskCacheLRUSizeCap(t *testing.T) {
	dir := withDiskCache(t)
	cfg := smallCfg()

	progs := []string{"mcf", "lbm", "milc"}
	for i, p := range progs {
		if _, err := RunProgram(p, SchemePoM, cfg); err != nil {
			t.Fatal(err)
		}
		// Space the mtimes out so LRU order is unambiguous.
		entries, _ := filepath.Glob(filepath.Join(dir, "*.json"))
		for _, e := range entries {
			info, err := os.Stat(e)
			if err != nil {
				t.Fatal(err)
			}
			old := time.Now().Add(-time.Duration(len(progs)-i) * time.Hour)
			if info.ModTime().After(old) {
				if err := os.Chtimes(e, old, old); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(entries) != len(progs) {
		t.Fatalf("want %d entries, got %d", len(progs), len(entries))
	}
	var biggest int64
	for _, e := range entries {
		info, err := os.Stat(e)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > biggest {
			biggest = info.Size()
		}
	}

	// Cap to roughly two entries and store a fourth cell: the two oldest
	// must be evicted.
	SetRunCacheSizeLimit(2 * biggest)
	if _, err := RunProgram("omnetpp", SchemePoM, cfg); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(after) >= 4 {
		t.Fatalf("size cap did not evict: %d entries remain", len(after))
	}
	// The newest entry (the one just stored) must have survived.
	var newestAlive bool
	for _, e := range after {
		info, err := os.Stat(e)
		if err != nil {
			continue
		}
		if time.Since(info.ModTime()) < time.Hour {
			newestAlive = true
		}
	}
	if !newestAlive {
		t.Error("LRU eviction removed the most recent entry")
	}
}

// TestDiskCacheSweepsTmpOrphans checks that temp files stranded by a
// writer killed before its atomic rename are reclaimed once past the
// grace period — and that fresh temp files (a live writer's) survive
// both the attach-time sweep and the pruner, which must also exclude
// them from the size accounting.
func TestDiskCacheSweepsTmpOrphans(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, ".tmp-stranded")
	fresh := filepath.Join(dir, ".tmp-live")
	for _, p := range []string{old, fresh} {
		if err := os.WriteFile(p, []byte("half-written entry"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-2 * runCacheTmpGrace)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}

	ResetRunCache()
	SetRunCaching(true)
	if err := SetRunCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := SetRunCacheDir(""); err != nil {
			t.Fatal(err)
		}
		SetRunCacheSizeLimit(0)
		ResetRunCache()
	})

	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Error("stale orphan survived the attach-time sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file (a live writer's) was swept: %v", err)
	}

	// A store under a tiny cap prunes entries by their own size: the
	// fresh temp file neither counts toward the total nor gets evicted.
	SetRunCacheSizeLimit(1)
	if _, err := RunProgram("mcf", SchemePoM, smallCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("pruner removed a live temp file: %v", err)
	}
}

// TestDiskCacheIgnoresForeignFiles checks that non-entry files in the
// cache directory never break loads.
func TestDiskCacheIgnoresForeignFiles(t *testing.T) {
	dir := withDiskCache(t)
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	if _, err := RunProgram("mcf", SchemePoM, cfg); err != nil {
		t.Fatal(err)
	}
	ResetRunCache()
	if _, err := RunProgram("mcf", SchemePoM, cfg); err != nil {
		t.Fatal(err)
	}
	if d := RunCacheDetail(); d.DiskHits != 1 {
		t.Errorf("foreign file broke the disk tier: %+v", d)
	}
}
