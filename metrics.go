package profess

import (
	"context"
	"fmt"
	"sync"

	"profess/internal/sim"
	"profess/internal/workload"
)

// Slowdown is eq. 1: a program's uncontended IPC over its IPC within the
// workload.
func Slowdown(ipcAlone, ipcShared float64) float64 {
	if ipcShared <= 0 {
		return 0
	}
	return ipcAlone / ipcShared
}

// WeightedSpeedup is the paper's performance figure of merit (§4.3):
// the sum of inverse slowdowns.
func WeightedSpeedup(slowdowns []float64) float64 {
	var ws float64
	for _, s := range slowdowns {
		if s > 0 {
			ws += 1 / s
		}
	}
	return ws
}

// Unfairness is the paper's fairness figure of merit (§4.3): the maximum
// slowdown across the co-running programs (lower is fairer).
func Unfairness(slowdowns []float64) float64 {
	var m float64
	for _, s := range slowdowns {
		if s > m {
			m = s
		}
	}
	return m
}

// WorkBeforeWearOut is the work-normalised endurance figure of merit:
// lifetime in seconds times aggregate IPC, proportional (at a fixed
// clock) to the instructions the system retires before the hottest M2
// row wears out. Comparing schemes on raw Result.NVM.LifetimeSeconds
// rewards throttling — a scheme that stalls writes "lives longer" while
// doing less — whereas this quantity only improves when wear per unit of
// work drops. The analytic tier's lifetime monotonicity tests are stated
// on it.
func WorkBeforeWearOut(lifetimeSeconds, ipc float64) float64 {
	if lifetimeSeconds <= 0 || ipc <= 0 {
		return 0
	}
	return lifetimeSeconds * ipc
}

// BaselineCache memoises uncontended (stand-alone) IPCs per program for a
// given system configuration, since every slowdown computation reuses
// them. It is safe for concurrent use.
type BaselineCache struct {
	mu    sync.Mutex
	cache map[string]float64
}

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache {
	return &BaselineCache{cache: make(map[string]float64)}
}

// key folds the configuration parameters that affect stand-alone IPC.
// Fault plans are deliberately absent: AloneIPC strips them, so every
// entry is a fault-free measurement and faulty/clean configurations share
// (rather than collide on) the same clean baseline.
func (b *BaselineCache) key(program string, cfg Config) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d|%d|%v|%v",
		program, cfg.Cores, cfg.Channels, cfg.M1Capacity, cfg.M2Slots,
		cfg.L3Capacity, cfg.STCEntries, cfg.Instructions, cfg.M2TWRFactor, cfg.Scale)
}

// AloneIPC returns the program's uncontended IPC in the given system,
// running it (under ProFess-free, plain-PoM-free conditions: the scheme
// only matters under contention, but the paper measures IPC_SP under the
// same management as the workload run, so the scheme is a parameter).
// The stand-alone run is always fault-free: eq. 1's reference point is
// the healthy machine, so injected faults show up as extra slowdown
// rather than silently rescaling both sides of the ratio.
func (b *BaselineCache) AloneIPC(program string, scheme Scheme, cfg Config) (float64, error) {
	return b.AloneIPCContext(context.Background(), program, scheme, cfg)
}

// AloneIPCContext is AloneIPC honouring the context.
func (b *BaselineCache) AloneIPCContext(ctx context.Context, program string, scheme Scheme, cfg Config) (float64, error) {
	cfg.Faults = FaultPlan{}
	k := string(scheme) + "|" + b.key(program, cfg)
	b.mu.Lock()
	if v, ok := b.cache[k]; ok {
		b.mu.Unlock()
		return v, nil
	}
	b.mu.Unlock()

	res, err := RunProgramContext(ctx, program, scheme, cfg)
	if err != nil {
		return 0, err
	}
	ipc := res.PerCore[0].FirstIPC
	b.mu.Lock()
	b.cache[k] = ipc
	b.mu.Unlock()
	return ipc, nil
}

// WorkloadResult couples a multiprogram Result with its fairness metrics.
type WorkloadResult struct {
	Workload string
	Scheme   Scheme
	Result   *Result
	// AloneIPC is IPC_SP per core (program instance), Slowdowns eq. 1.
	AloneIPC        []float64
	Slowdowns       []float64
	WeightedSpeedup float64
	MaxSlowdown     float64
}

// RunWorkload runs a Table 10 workload under the given scheme and derives
// slowdowns, weighted speedup and unfairness from stand-alone baselines
// (computed through the cache; pass nil for a throwaway cache).
func RunWorkload(name string, scheme Scheme, cfg Config, cache *BaselineCache) (*WorkloadResult, error) {
	return RunWorkloadContext(context.Background(), name, scheme, cfg, cache)
}

// RunWorkloadContext is RunWorkload honouring the context: cancellation
// interrupts both the mix run and the stand-alone baselines mid-flight.
func RunWorkloadContext(ctx context.Context, name string, scheme Scheme, cfg Config, cache *BaselineCache) (*WorkloadResult, error) {
	if cache == nil {
		cache = NewBaselineCache()
	}
	w, err := workload.WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	specs, err := sim.SpecsForWorkload(w, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res, err := runSimCtx(ctx, cfg, specs, scheme)
	if err != nil {
		return nil, err
	}
	wr := &WorkloadResult{Workload: name, Scheme: scheme, Result: res}
	for i, spec := range specs {
		alone, err := cache.AloneIPCContext(ctx, spec.Name, scheme, cfg)
		if err != nil {
			return nil, err
		}
		wr.AloneIPC = append(wr.AloneIPC, alone)
		wr.Slowdowns = append(wr.Slowdowns, Slowdown(alone, res.PerCore[i].FirstIPC))
	}
	wr.WeightedSpeedup = WeightedSpeedup(wr.Slowdowns)
	wr.MaxSlowdown = Unfairness(wr.Slowdowns)
	return wr, nil
}

// RunWorkloadWithPolicy is RunWorkload for a custom (e.g. ablated) policy:
// the mix runs under the given policy while the stand-alone baselines use
// baselineScheme. Used by the ablation benchmarks.
func RunWorkloadWithPolicy(name string, policy Policy, baselineScheme Scheme, cfg Config, cache *BaselineCache) (*WorkloadResult, error) {
	if cache == nil {
		cache = NewBaselineCache()
	}
	w, err := workload.WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	specs, err := sim.SpecsForWorkload(w, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res, err := RunWithPolicy(specs, policy, cfg)
	if err != nil {
		return nil, err
	}
	wr := &WorkloadResult{Workload: name, Scheme: Scheme(policy.Name()), Result: res}
	for i, spec := range specs {
		alone, err := cache.AloneIPC(spec.Name, baselineScheme, cfg)
		if err != nil {
			return nil, err
		}
		wr.AloneIPC = append(wr.AloneIPC, alone)
		wr.Slowdowns = append(wr.Slowdowns, Slowdown(alone, res.PerCore[i].FirstIPC))
	}
	wr.WeightedSpeedup = WeightedSpeedup(wr.Slowdowns)
	wr.MaxSlowdown = Unfairness(wr.Slowdowns)
	return wr, nil
}
