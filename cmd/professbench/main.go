// Command professbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each experiment is
// addressable by id; "all" runs the full set.
//
// Usage:
//
//	professbench -exp fig5
//	professbench -exp all -instr 2000000
//	professbench -exp fig13,fig14,fig15 -workloads w09,w12,w19
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -debug: profiling endpoints on the debug server
	"os"
	"strings"

	"profess"
)

// experiment binds an id to its driver.
type experiment struct {
	id    string
	about string
	run   func(opts profess.ExpOptions) (fmt.Stringer, error)
}

func experiments() []experiment {
	singleBoth := func(opts profess.ExpOptions) (fmt.Stringer, error) {
		return profess.RunSinglePrograms([]profess.Scheme{profess.SchemePoM, profess.SchemeMDM}, opts)
	}
	multiAll := func(opts profess.ExpOptions) (fmt.Stringer, error) {
		return profess.RunMultiProgram([]profess.Scheme{profess.SchemePoM, profess.SchemeMDM, profess.SchemeProFess}, opts)
	}
	return []experiment{
		{"fig2", "slowdowns under PoM for w09, w16, w19", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w09", "w16", "w19"}
			}
			rep, err := profess.RunMultiProgram([]profess.Scheme{profess.SchemePoM}, opts)
			if err != nil {
				return nil, err
			}
			return stringer(rep.SlowdownDetailString(opts.Workloads)), nil
		}},
		{"table4", "RSM sampling accuracy (bwaves, milc, omnetpp)", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunSamplingAccuracy(opts)
		}},
		{"fig5", "single-program MDM vs PoM IPC (also fig6/fig7 data)", singleBoth},
		{"fig6", "single-program M1-served fraction (same run as fig5)", singleBoth},
		{"fig7", "single-program STC hit rates (same run as fig5)", singleBoth},
		{"fig8", "MDM sensitivity to STC size (also fig9 data)", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunSTCSensitivity(opts)
		}},
		{"fig9", "STC hit rates vs STC size (same run as fig8)", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunSTCSensitivity(opts)
		}},
		{"sens-twr", "MDM vs PoM under t_WR_M2 x0.5 / x1 / x2", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunTWRSensitivity(opts)
		}},
		{"sens-ratio", "MDM vs PoM at M1:M2 = 1:4 / 1:8 / 1:16", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunRatioSensitivity(opts)
		}},
		{"fig10", "multi-program MDM & ProFess vs PoM (figs 10-15 data)", multiAll},
		{"fig11", "see fig10", multiAll},
		{"fig12", "see fig10", multiAll},
		{"fig13", "see fig10", multiAll},
		{"fig14", "see fig10", multiAll},
		{"fig15", "see fig10", multiAll},
		{"fig16", "per-program slowdowns for w09, w16, w19 under all schemes", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w09", "w16", "w19"}
			}
			rep, err := profess.RunMultiProgram([]profess.Scheme{profess.SchemePoM, profess.SchemeMDM, profess.SchemeProFess}, opts)
			if err != nil {
				return nil, err
			}
			return stringer(rep.SlowdownDetailString(opts.Workloads)), nil
		}},
		{"mempod", "MemPod AMMAT vs PoM (§2.5 observation)", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w02", "w09", "w12", "w19"}
			}
			return profess.RunMemPodComparison(opts)
		}},
		{"algos", "all Table 2 algorithms compared on selected workloads", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w09", "w12", "w19"}
			}
			return profess.RunMultiProgram(
				[]profess.Scheme{profess.SchemePoM, profess.SchemeCAMEO, profess.SchemeSILCFM,
					profess.SchemeMemPod, profess.SchemeMDM, profess.SchemeProFess}, opts)
		}},
		{"faults", "robustness: slowdown/energy vs injected fault rate (PoM, MDM, ProFess)", func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w09", "w12", "w19"}
			}
			return profess.RunFaultSweep(nil, nil, opts)
		}},
	}
}

type stringer string

func (s stringer) String() string { return string(s) }

// Progress counters for the -debug expvar endpoint (/debug/vars).
var (
	expvarCurrent   = expvar.NewString("professbench.current_experiment")
	expvarCompleted = expvar.NewInt("professbench.experiments_completed")
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id(s), comma separated, or 'all' (see -list)")
		instr   = flag.Int64("instr", 2_000_000, "instructions per program run")
		scale   = flag.Float64("scale", profess.PaperScale, "capacity scale relative to Table 8")
		wls     = flag.String("workloads", "", "restrict workloads (comma separated)")
		progs   = flag.String("programs", "", "restrict programs (comma separated)")
		par     = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables where supported")
		debug   = flag.String("debug", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060) while experiments run")
		list    = flag.Bool("list", false, "list experiments and exit")
		nocache = flag.Bool("nocache", false, "disable the in-process run cache (every cell simulates from scratch)")
	)
	flag.Parse()

	if *nocache {
		profess.SetRunCaching(false)
	}

	if *debug != "" {
		go func() {
			// DefaultServeMux carries both /debug/pprof/* (imported above)
			// and /debug/vars (expvar); a long "all" run can then be
			// profiled and watched live.
			if err := http.ListenAndServe(*debug, nil); err != nil {
				fmt.Fprintf(os.Stderr, "professbench: debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "professbench: debug server on http://%s/debug/pprof/ and /debug/vars\n", *debug)
	}

	exps := experiments()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-10s %s\n", e.id, e.about)
		}
		if *exp == "" {
			os.Exit(2)
		}
		return
	}

	opts := profess.ExpOptions{
		Scale:        *scale,
		Instructions: *instr,
		Parallelism:  *par,
	}
	if *wls != "" {
		opts.Workloads = strings.Split(*wls, ",")
	}
	if *progs != "" {
		opts.Programs = strings.Split(*progs, ",")
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	runAll := want["all"]

	// Deduplicate experiments that share a driver run (fig5/6/7 and
	// fig10..15 print from the same report) when running "all".
	ranAbout := map[string]bool{}
	for _, e := range exps {
		if !(runAll || want[e.id]) {
			continue
		}
		if runAll && ranAbout[e.about] {
			continue
		}
		ranAbout[e.about] = true
		fmt.Printf("==== %s: %s ====\n", e.id, e.about)
		expvarCurrent.Set(e.id)
		rep, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "professbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		expvarCompleted.Add(1)
		if *csv {
			if c, ok := rep.(profess.CSVer); ok {
				fmt.Println(c.CSV())
				continue
			}
		}
		fmt.Println(rep.String())
	}
}
