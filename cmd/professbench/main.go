// Command professbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each experiment is
// addressable by id; "all" runs the full set.
//
// By default the requested experiments are swept in three phases: a plan
// phase dry-runs the drivers to enumerate every simulation cell they will
// need, the deduplicated union executes longest-expected-job-first on one
// worker pool, and the drivers then re-run to render their figures purely
// from the completed cell table (the warm run cache). Completed cells
// also persist to an on-disk cache (-cachedir), so a warm re-run of the
// whole sweep performs zero simulations. -nocache (or -noplan) restores
// the phase-free behaviour for honest end-to-end timing.
//
// Usage:
//
//	professbench -exp fig5
//	professbench -exp all -instr 2000000
//	professbench -exp fig13,fig14,fig15 -workloads w09,w12,w19
//	professbench -exp all -cachedir off -nocache   # timing-honest cold run
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -debug: profiling endpoints on the debug server
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"profess"
)

// experiment binds an id to its driver. plannable marks drivers that
// funnel every simulation through the run cache and can therefore be
// enumerated by a planning dry run; the rest simulate at render time.
type experiment struct {
	id        string
	about     string
	plannable bool
	run       func(opts profess.ExpOptions) (fmt.Stringer, error)
}

// experiments binds the id table. sampleFr/sampleWin carry the -sample
// flags into the drivers that need them (0 means their defaults).
func experiments(sampleFr float64, sampleWin int64) []experiment {
	singleBoth := func(opts profess.ExpOptions) (fmt.Stringer, error) {
		return profess.RunSinglePrograms([]profess.Scheme{profess.SchemePoM, profess.SchemeMDM}, opts)
	}
	multiAll := func(opts profess.ExpOptions) (fmt.Stringer, error) {
		return profess.RunMultiProgram([]profess.Scheme{profess.SchemePoM, profess.SchemeMDM, profess.SchemeProFess}, opts)
	}
	return []experiment{
		{"fig2", "slowdowns under PoM for w09, w16, w19", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w09", "w16", "w19"}
			}
			rep, err := profess.RunMultiProgram([]profess.Scheme{profess.SchemePoM}, opts)
			if err != nil {
				return nil, err
			}
			return stringer(rep.SlowdownDetailString(opts.Workloads)), nil
		}},
		{"table4", "RSM sampling accuracy (bwaves, milc, omnetpp)", false, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunSamplingAccuracy(opts)
		}},
		{"fig5", "single-program MDM vs PoM IPC (also fig6/fig7 data)", true, singleBoth},
		{"fig6", "single-program M1-served fraction (same run as fig5)", true, singleBoth},
		{"fig7", "single-program STC hit rates (same run as fig5)", true, singleBoth},
		{"fig8", "MDM sensitivity to STC size (also fig9 data)", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunSTCSensitivity(opts)
		}},
		{"fig9", "STC hit rates vs STC size (same run as fig8)", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunSTCSensitivity(opts)
		}},
		{"sens-twr", "MDM vs PoM under t_WR_M2 x0.5 / x1 / x2", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunTWRSensitivity(opts)
		}},
		{"sens-ratio", "MDM vs PoM at M1:M2 = 1:4 / 1:8 / 1:16", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunRatioSensitivity(opts)
		}},
		{"fig10", "multi-program MDM & ProFess vs PoM (figs 10-15 data)", true, multiAll},
		{"fig11", "see fig10", true, multiAll},
		{"fig12", "see fig10", true, multiAll},
		{"fig13", "see fig10", true, multiAll},
		{"fig14", "see fig10", true, multiAll},
		{"fig15", "see fig10", true, multiAll},
		{"fig16", "per-program slowdowns for w09, w16, w19 under all schemes", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w09", "w16", "w19"}
			}
			rep, err := profess.RunMultiProgram([]profess.Scheme{profess.SchemePoM, profess.SchemeMDM, profess.SchemeProFess}, opts)
			if err != nil {
				return nil, err
			}
			return stringer(rep.SlowdownDetailString(opts.Workloads)), nil
		}},
		{"mempod", "MemPod AMMAT vs PoM (§2.5 observation)", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w02", "w09", "w12", "w19"}
			}
			return profess.RunMemPodComparison(opts)
		}},
		{"algos", "all Table 2 algorithms compared on selected workloads", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w09", "w12", "w19"}
			}
			return profess.RunMultiProgram(
				[]profess.Scheme{profess.SchemePoM, profess.SchemeCAMEO, profess.SchemeSILCFM,
					profess.SchemeMemPod, profess.SchemeMDM, profess.SchemeProFess}, opts)
		}},
		{"faults", "robustness: slowdown/energy vs injected fault rate (PoM, MDM, ProFess)", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			if len(opts.Workloads) == 0 {
				opts.Workloads = []string{"w09", "w12", "w19"}
			}
			return profess.RunFaultSweep(nil, nil, opts)
		}},
		{"xval", "analytic fast tier vs cycle model: IPC/M1/lifetime cross-validation", true, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunCrossValidation(profess.Schemes(), opts)
		}},
		// scale16 times real runs (and re-verifies shard determinism), so
		// it must not be served from the cache: unplannable by design.
		{"scale16", "shard scaling curve on the 16-program fleet (timing-honest; ignores -shards and sweeps 1,2,4,8)", false, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			return profess.RunScale16(profess.SchemeProFess, nil, opts)
		}},
		// sample times real runs too (full vs sampled, both uncached):
		// unplannable by design.
		{"sample", "sampled tier vs full fidelity: per-workload IPC error and speedup (timing-honest; fraction from -sample, default 0.05)", false, func(opts profess.ExpOptions) (fmt.Stringer, error) {
			fr := sampleFr
			if fr <= 0 || fr >= 1 {
				fr = 0.05
			}
			return profess.RunSampleValidation(fr, sampleWin, []profess.Scheme{profess.SchemeProFess}, opts)
		}},
	}
}

type stringer string

func (s stringer) String() string { return string(s) }

// Progress counters for the -debug expvar endpoint (/debug/vars).
var (
	expvarCurrent   = expvar.NewString("professbench.current_experiment")
	expvarCompleted = expvar.NewInt("professbench.experiments_completed")
)

// benchLine is one go-bench-format measurement for -benchout: wall time
// plus the run-cache counter deltas and heap-allocation deltas attributed
// to that phase or experiment. The format parses with cmd/benchjson
// unchanged (unknown units land in its metrics map).
type benchLine struct {
	name      string
	wall      time.Duration
	delta     profess.RunCacheCounters
	allocs    uint64
	heapBytes uint64
}

func (l benchLine) String() string {
	return fmt.Sprintf("BenchmarkExp/%s 1 %d ns/op %d sims %d mem-hits %d disk-hits %d allocs %d heap-bytes",
		l.name, l.wall.Nanoseconds(), l.delta.Sims, l.delta.MemHits, l.delta.DiskHits, l.allocs, l.heapBytes)
}

// memSnapshot reads the process's cumulative allocation counters; deltas
// between two snapshots attribute heap churn (object count and bytes) to
// a phase. benchjson divides by the phase's simulation count to report
// allocs/cell — the arena-reuse regression gate of `make arena-smoke`.
func memSnapshot() (mallocs, heapBytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id(s), comma separated, or 'all' (see -list)")
		instr    = flag.Int64("instr", 2_000_000, "instructions per program run")
		scale    = flag.Float64("scale", profess.PaperScale, "capacity scale relative to Table 8")
		wls      = flag.String("workloads", "", "restrict workloads (comma separated)")
		progs    = flag.String("programs", "", "restrict programs (comma separated)")
		par      = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "worker goroutines per clustered simulation (pure speed knob: results and cache keys are identical at any value)")
		csv      = flag.Bool("csv", false, "emit CSV instead of tables where supported")
		debug    = flag.String("debug", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060) while experiments run")
		list     = flag.Bool("list", false, "list experiments and exit")
		nocache  = flag.Bool("nocache", false, "disable the run cache entirely (every cell simulates from scratch; implies -noplan and no disk tier)")
		noplan   = flag.Bool("noplan", false, "skip the plan/execute phases; experiments simulate as they render")
		cachedir = flag.String("cachedir", profess.DefaultRunCacheDir(), "persistent run-cache directory ('' or 'off' disables the disk tier)")
		benchout = flag.String("benchout", "", "write go-bench-format wall-time and cache-counter lines to this file (pipe into benchjson)")
		resume   = flag.Bool("resume", true, "resume an interrupted sweep from its journal in the cache directory; -resume=false discards prior progress and starts fresh")
		prune    = flag.Bool("prune", false, "prune planned cells whose scheme the analytic fast tier cannot distinguish from a representative; pruned cells render from the representative's result")
		prunemgn = flag.Float64("prunemargin", profess.DefaultPruneMargin, "analytic indistinguishability margin for -prune (see EXPERIMENTS.md before raising it)")
		noarena  = flag.Bool("noarena", false, "disable simulation-state arena reuse (every cell constructs a fresh machine; results are byte-identical either way)")
		sampleFr = flag.Float64("sample", 0, "run planned cells on the interval-sampling tier with this detailed fraction in (0,1); IPC becomes an estimate within the committed envelope (see EXPERIMENTS.md fidelity ladder). 0 = full fidelity")
		samplewn = flag.Int64("samplewindow", 0, "detailed-window length in cycles for -sample (0 = the config default)")
	)
	flag.Usage = groupedUsage
	flag.Parse()

	if *sampleFr != 0 && !(*sampleFr > 0 && *sampleFr < 1) {
		fmt.Fprintf(os.Stderr, "professbench: -sample %v outside (0, 1)\n", *sampleFr)
		os.Exit(2)
	}
	if *sampleFr > 0 && (*nocache || *noplan) {
		// The sampled tier reaches the experiments through the plan's cell
		// rewrite; without the plan phase nothing would be rewritten and
		// the flag would silently do nothing.
		fmt.Fprintf(os.Stderr, "professbench: -sample needs the plan phase; drop -nocache/-noplan\n")
		os.Exit(2)
	}

	if *noarena {
		profess.SetArenaReuse(false)
	}

	// First SIGINT/SIGTERM drains gracefully: in-flight cells stop within
	// one watchdog epoch, leases release, the journal stays resumable. A
	// second signal kills the process the usual way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *nocache {
		profess.SetRunCaching(false)
	} else if *cachedir != "" && *cachedir != "off" {
		if err := profess.SetRunCacheDir(*cachedir); err != nil {
			// Memory tier still works; warn and continue.
			fmt.Fprintf(os.Stderr, "professbench: disk cache disabled: %v\n", err)
		}
	}

	if *debug != "" {
		go func() {
			// DefaultServeMux carries both /debug/pprof/* (imported above)
			// and /debug/vars (expvar); a long "all" run can then be
			// profiled and watched live.
			if err := http.ListenAndServe(*debug, nil); err != nil {
				fmt.Fprintf(os.Stderr, "professbench: debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "professbench: debug server on http://%s/debug/pprof/ and /debug/vars\n", *debug)
	}

	exps := experiments(*sampleFr, *samplewn)
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-10s %s\n", e.id, e.about)
		}
		if *exp == "" {
			os.Exit(2)
		}
		return
	}

	opts := profess.ExpOptions{
		Scale:        *scale,
		Instructions: *instr,
		Parallelism:  *par,
		Shards:       *shards,
		Context:      ctx,
	}
	if *wls != "" {
		opts.Workloads = strings.Split(*wls, ",")
	}
	if *progs != "" {
		opts.Programs = strings.Split(*progs, ",")
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	runAll := want["all"]

	// Select the experiments to run, deduplicating ones that share a
	// driver run (fig5/6/7 and fig10..15 print from the same report) when
	// running "all".
	var selected []experiment
	ranAbout := map[string]bool{}
	for _, e := range exps {
		if !(runAll || want[e.id]) {
			continue
		}
		if runAll && ranAbout[e.about] {
			continue
		}
		ranAbout[e.about] = true
		selected = append(selected, e)
	}

	var lines []benchLine
	total := time.Now()

	// Phase 1+2: plan the sweep and execute the deduplicated cell union.
	// Stdout stays untouched here — reports must be byte-identical with
	// and without planning — so progress goes to stderr.
	var planned []profess.PlannedExperiment
	if profess.RunCaching() && !*noplan {
		for _, e := range selected {
			run := e.run
			if !e.plannable {
				continue // listed via ErrNotPlannable anyway; skip the noise
			}
			planned = append(planned, profess.PlannedExperiment{
				Name: e.id,
				Run: func() error {
					_, err := run(opts)
					return err
				},
			})
		}
	}
	if len(planned) > 0 {
		start := time.Now()
		before := profess.RunCacheDetail()
		mallocs0, heap0 := memSnapshot()
		plan, err := profess.PlanSweep(planned)
		if err != nil {
			fmt.Fprintf(os.Stderr, "professbench: planning: %v\n", err)
			os.Exit(1)
		}
		dedup := 1.0
		if len(plan.Cells) > 0 {
			dedup = float64(plan.Requested) / float64(len(plan.Cells))
		}
		fmt.Fprintf(os.Stderr, "professbench: plan: %d distinct cells (%d requested, dedup %.2fx) across %d experiments\n",
			len(plan.Cells), plan.Requested, dedup, len(planned))
		if len(plan.Unplannable) > 0 {
			fmt.Fprintf(os.Stderr, "professbench: plan: unplannable (simulate at render): %s\n", strings.Join(plan.Unplannable, ", "))
		}
		if *prune {
			requested := len(plan.Cells)
			dropped := plan.Prune(*prunemgn)
			pct := 0.0
			if requested > 0 {
				pct = 100 * float64(len(dropped)) / float64(requested)
			}
			fmt.Fprintf(os.Stderr, "professbench: prune: %d of %d cells aliased to analytic-equivalent representatives (%.1f%% at margin %.2f)\n",
				len(dropped), requested, pct, *prunemgn)
		}
		if *sampleFr > 0 {
			rewrote := plan.Sample(*sampleFr, *samplewn)
			fmt.Fprintf(os.Stderr, "professbench: sample: %d of %d cells rewritten to the sampled tier (fraction %g)\n",
				len(rewrote), len(plan.Cells), *sampleFr)
		}
		expvarCurrent.Set("execute")
		rep, err := plan.ExecuteOpts(ctx, profess.ExecOptions{Parallelism: *par, Fresh: !*resume})
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "professbench: interrupted; %d/%d cells done, journal kept — re-run to resume\n",
				rep.Done+rep.Resumed+rep.External, rep.Cells)
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "professbench: execute: %v\n", err)
			os.Exit(1)
		}
		d := profess.RunCacheDetail().Sub(before)
		fmt.Fprintf(os.Stderr, "professbench: execute: %d simulated, %d from disk, %d already in memory (%.1fs)\n",
			d.Sims, d.DiskHits, d.MemHits, time.Since(start).Seconds())
		if rep.Pruned > 0 {
			fmt.Fprintf(os.Stderr, "professbench: execute: %d pruned cells served by their representatives\n", rep.Pruned)
		}
		if rep.Sampled > 0 {
			fmt.Fprintf(os.Stderr, "professbench: execute: %d cells served by their sampled runs\n", rep.Sampled)
		}
		if rep.Resumed > 0 || rep.External > 0 || rep.Stolen > 0 || rep.Retries > 0 {
			fmt.Fprintf(os.Stderr, "professbench: execute: %d resumed from journal, %d by other workers, %d leases taken over, %d retries\n",
				rep.Resumed, rep.External, rep.Stolen, rep.Retries)
		}
		mallocs1, heap1 := memSnapshot()
		lines = append(lines, benchLine{"plan+execute", time.Since(start), d, mallocs1 - mallocs0, heap1 - heap0})
	}

	// Phase 3: render. With a completed plan every cell is a cache hit;
	// without one this is where the simulations happen.
	for _, e := range selected {
		fmt.Printf("==== %s: %s ====\n", e.id, e.about)
		expvarCurrent.Set(e.id)
		start := time.Now()
		before := profess.RunCacheDetail()
		mallocs0, heap0 := memSnapshot()
		rep, err := e.run(opts)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "professbench: %s: interrupted\n", e.id)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "professbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		mallocs1, heap1 := memSnapshot()
		lines = append(lines, benchLine{e.id, time.Since(start), profess.RunCacheDetail().Sub(before), mallocs1 - mallocs0, heap1 - heap0})
		expvarCompleted.Add(1)
		if *csv {
			if c, ok := rep.(profess.CSVer); ok {
				fmt.Println(c.CSV())
				continue
			}
		}
		fmt.Println(rep.String())
	}

	if *benchout != "" {
		if err := writeBenchout(*benchout, lines, time.Since(total)); err != nil {
			fmt.Fprintf(os.Stderr, "professbench: benchout: %v\n", err)
			os.Exit(1)
		}
	}
}

// groupedUsage replaces flag.PrintDefaults with labelled sections: the
// flag set has grown past a dozen entries across the caching, sharding,
// pruning and sampling work, and an alphabetical wall hides which knobs
// trade speed for fidelity and which are free. Flags not named in a group
// (future additions) fall through to a trailing section rather than
// disappearing.
func groupedUsage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "Usage: professbench -exp <ids> [options]\n")
	groups := []struct {
		title string
		names []string
	}{
		{"Experiment selection", []string{"exp", "list", "workloads", "programs"}},
		{"Simulation scale", []string{"instr", "scale"}},
		{"Fidelity dials (trade exactness for speed; results change)", []string{"sample", "samplewindow", "prune", "prunemargin"}},
		{"Execution (pure speed knobs; results are byte-identical)", []string{"parallel", "shards", "noarena"}},
		{"Caching & durability", []string{"cachedir", "nocache", "noplan", "resume"}},
		{"Output & diagnostics", []string{"csv", "benchout", "debug"}},
	}
	seen := map[string]bool{}
	for _, g := range groups {
		fmt.Fprintf(out, "\n%s:\n", g.title)
		for _, n := range g.names {
			if f := flag.Lookup(n); f != nil {
				seen[n] = true
				printFlag(out, f)
			}
		}
	}
	first := true
	flag.VisitAll(func(f *flag.Flag) {
		if seen[f.Name] {
			return
		}
		if first {
			fmt.Fprintf(out, "\nOther:\n")
			first = false
		}
		printFlag(out, f)
	})
}

func printFlag(out io.Writer, f *flag.Flag) {
	typ, usage := flag.UnquoteUsage(f)
	if typ != "" {
		fmt.Fprintf(out, "  -%s %s\n", f.Name, typ)
	} else {
		fmt.Fprintf(out, "  -%s\n", f.Name)
	}
	fmt.Fprintf(out, "        %s", usage)
	if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" {
		fmt.Fprintf(out, " (default %v)", f.DefValue)
	}
	fmt.Fprintln(out)
}

// writeBenchout emits the per-experiment wall times, cache-counter and
// allocation deltas in go-bench format, closed by a total line carrying
// the sweep's overall hit rate and GOMAXPROCS. The file parses with
// cmd/benchjson as-is.
func writeBenchout(path string, lines []benchLine, wall time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "goos: %s\ngoarch: %s\n", runtime.GOOS, runtime.GOARCH)
	var sum profess.RunCacheCounters
	var allocs, heapBytes uint64
	for _, l := range lines {
		sum.Sims += l.delta.Sims
		sum.MemHits += l.delta.MemHits
		sum.DiskHits += l.delta.DiskHits
		allocs += l.allocs
		heapBytes += l.heapBytes
		fmt.Fprintln(f, l)
	}
	totalLine := benchLine{"total", wall, sum, allocs, heapBytes}
	fmt.Fprintf(f, "%s %.1f hit-rate-%% %d gomaxprocs\n", totalLine, 100*sum.HitRate(), runtime.GOMAXPROCS(0))
	return f.Close()
}
