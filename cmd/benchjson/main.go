// Command benchjson converts `go test -bench` output into the committed
// benchmark-trajectory format (BENCH_PR3.json and successors): a JSON
// document keyed by benchmark name with ns/op, B/op, allocs/op and every
// custom metric the benchmarks report via b.ReportMetric.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem | benchjson -label post -o BENCH_PR3.json
//	professbench -exp all -benchout sweep.txt && benchjson -label sweep-warm -o BENCH_PR4.json < sweep.txt
//
// When -o names an existing trajectory file, the new run is added under
// its label alongside the runs already recorded (e.g. the pre-change
// baseline), so one file carries the before/after pair reviewers diff.
//
// professbench's -benchout lines carry run-cache counters (sims,
// mem-hits, disk-hits, hit-rate-%) as custom metrics; they land in each
// benchmark's metrics map and the summary prints the simulation counts
// alongside the wall-time speedups, so a cold-vs-warm pair shows both
// "how much faster" and "how many simulations were avoided".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labelled invocation of the suite.
type Run struct {
	Label      string            `json:"label"`
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Trajectory is the committed document: an ordered list of runs.
type Trajectory struct {
	Runs []Run `json:"runs"`
}

func main() {
	label := flag.String("label", "run", "label for this run inside the trajectory")
	out := flag.String("o", "", "output file (default stdout); merged if it exists")
	flag.Parse()

	run, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	run.Label = *label
	if len(run.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no Benchmark lines found on stdin")
		os.Exit(1)
	}

	var traj Trajectory
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &traj); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a trajectory: %v\n", *out, err)
				os.Exit(1)
			}
		}
	}
	// Replace a same-labelled run in place so re-running is idempotent.
	replaced := false
	for i := range traj.Runs {
		if traj.Runs[i].Label == run.Label {
			traj.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		traj.Runs = append(traj.Runs, run)
	}

	enc, err := json.MarshalIndent(&traj, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	summarise(os.Stderr, traj)
}

// parse reads `go test -bench` output: header lines (goos/goarch/cpu) and
// benchmark result lines of the form
//
//	BenchmarkName-8  3  123456 ns/op  7.03 custom-metric  100 B/op  5 allocs/op
func parse(r io.Reader) (Run, error) {
	run := Run{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so labels are stable across hosts.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters, Metrics: map[string]float64{}}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return run, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		run.Benchmarks[name] = res
	}
	return run, sc.Err()
}

// summarise prints per-benchmark speedups of the last run against the
// first, the reviewer's one-glance check. When the runs carry run-cache
// counters (professbench -benchout, or benchmarks reporting "sims"), the
// simulation counts are shown alongside so a cold-vs-warm pair reads as
// both a speedup and a count of simulations avoided.
func summarise(w io.Writer, traj Trajectory) {
	if len(traj.Runs) > 0 {
		shardCurve(w, traj.Runs[len(traj.Runs)-1])
	}
	allocCells(w, traj)
	if len(traj.Runs) < 2 {
		return
	}
	base, last := traj.Runs[0], traj.Runs[len(traj.Runs)-1]
	var names []string
	for name := range last.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	sims := func(r Result) string {
		v, ok := r.Metrics["sims"]
		if !ok {
			return "-"
		}
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	fmt.Fprintf(w, "%-42s %12s %12s %8s %10s %12s\n",
		"benchmark", base.Label+" ns", last.Label+" ns", "speedup", "allocs ratio", "sims (b/l)")
	for _, name := range names {
		b, l := base.Benchmarks[name], last.Benchmarks[name]
		if b.NsPerOp <= 0 || l.NsPerOp <= 0 {
			continue
		}
		allocs := "-"
		if l.AllocsOp > 0 && b.AllocsOp > 0 {
			allocs = fmt.Sprintf("%.1fx", b.AllocsOp/l.AllocsOp)
		}
		fmt.Fprintf(w, "%-42s %12.0f %12.0f %7.2fx %10s %12s\n",
			name, b.NsPerOp, l.NsPerOp, b.NsPerOp/l.NsPerOp, allocs, sims(b)+"/"+sims(l))
	}
	if rate, ok := last.Benchmarks["BenchmarkExp/total"]; ok {
		if v, ok := rate.Metrics["hit-rate-%"]; ok {
			fmt.Fprintf(w, "%s run-cache hit rate: %.1f%%\n", last.Label, v)
		}
	}
}

// allocCells prints per-cell allocation costs for benchmarks carrying
// "allocs" and "sims" metrics (professbench -benchout): heap objects and
// heap KiB divided by the simulations that phase actually executed. When
// the trajectory holds a baseline run too (e.g. a -noarena cold sweep
// against an arena-enabled one), the improvement ratio prints alongside —
// the committed evidence for arena-reuse allocation reductions.
func allocCells(w io.Writer, traj Trajectory) {
	if len(traj.Runs) == 0 {
		return
	}
	last := traj.Runs[len(traj.Runs)-1]
	perCell := func(r Result) (allocs, bytes float64, ok bool) {
		s := r.Metrics["sims"]
		if s <= 0 || r.Metrics["allocs"] <= 0 {
			return 0, 0, false
		}
		return r.Metrics["allocs"] / s, r.Metrics["heap-bytes"] / s, true
	}
	var names []string
	for name, r := range last.Benchmarks {
		if _, _, ok := perCell(r); ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	vs := "-"
	var base *Run
	if len(traj.Runs) > 1 {
		base = &traj.Runs[0]
		vs = base.Label
	}
	fmt.Fprintf(w, "%s per-cell allocation:\n%-42s %8s %14s %12s %12s\n",
		last.Label, "benchmark", "sims", "allocs/cell", "KiB/cell", "vs "+vs)
	for _, name := range names {
		r := last.Benchmarks[name]
		a, b, _ := perCell(r)
		ratio := "-"
		if base != nil && a > 0 {
			if ba, _, ok := perCell(base.Benchmarks[name]); ok {
				ratio = fmt.Sprintf("%.1fx", ba/a)
			}
		}
		fmt.Fprintf(w, "%-42s %8.0f %14.0f %12.1f %12s\n",
			name, r.Metrics["sims"], a, b/1024, ratio)
	}
}

// shardCurve prints the shard-scaling table for benchmarks that report
// "shards" and "speedup" metrics (BenchmarkScale16Shards): worker count,
// per-run wall time and the self-reported speedup over the run's own
// shards=1 baseline — the intra-run scaling curve, as opposed to the
// cross-run speedups of the main summary.
func shardCurve(w io.Writer, run Run) {
	var names []string
	for name, r := range run.Benchmarks {
		if r.Metrics["shards"] > 0 && r.Metrics["speedup"] > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := run.Benchmarks[names[i]], run.Benchmarks[names[j]]
		if a.Metrics["shards"] != b.Metrics["shards"] {
			return a.Metrics["shards"] < b.Metrics["shards"]
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(w, "%s shard scaling:\n%-42s %8s %12s %8s %10s\n",
		run.Label, "benchmark", "shards", "ns/op", "speedup", "gomaxprocs")
	for _, name := range names {
		r := run.Benchmarks[name]
		maxprocs := "-"
		if v, ok := r.Metrics["gomaxprocs"]; ok {
			maxprocs = strconv.FormatFloat(v, 'f', -1, 64)
		}
		fmt.Fprintf(w, "%-42s %8.0f %12.0f %7.2fx %10s\n",
			name, r.Metrics["shards"], r.NsPerOp, r.Metrics["speedup"], maxprocs)
	}
}
