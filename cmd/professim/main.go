// Command professim runs one simulation — a single Table 9 program or a
// Table 10 workload — under a chosen migration scheme and prints the
// figures of merit.
//
// Usage:
//
//	professim -program lbm -scheme mdm
//	professim -workload w09 -scheme profess -instr 2000000
//	professim -workload w09 -schemes pom,mdm,profess
//	professim -workload w09 -scheme profess -faults rate=1e-4,seed=7
//	professim -program mcf -scheme profess -telemetry mcf.jsonl -epoch 25000
//	professim -preset scale16 -shards 8 -instr 1000000
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"profess"
	"profess/internal/stats"
)

// runCtx carries the signal-drain context to every simulation: the first
// SIGINT/SIGTERM stops in-flight runs within one watchdog epoch, a
// second one kills the process.
var runCtx = context.Background()

func main() {
	var stopSignals context.CancelFunc
	runCtx, stopSignals = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	var (
		program  = flag.String("program", "", "single Table 9 program to run (e.g. lbm)")
		mix      = flag.String("workload", "", "Table 10 workload to run (e.g. w09)")
		scheme   = flag.String("scheme", "profess", "migration scheme")
		schemes  = flag.String("schemes", "", "comma-separated schemes to compare (overrides -scheme)")
		instr    = flag.Int64("instr", 2_000_000, "instructions per program run")
		scale    = flag.Float64("scale", profess.PaperScale, "capacity scale relative to Table 8")
		ratio    = flag.Int("ratio", 0, "override M1:M2 ratio (e.g. 4 for 1:4)")
		twr      = flag.Float64("twr", 1, "M2 write-recovery latency factor")
		baseline = flag.Bool("baselines", true, "for workloads: run stand-alone baselines and report slowdowns")
		preset   = flag.String("preset", "", "run a named preset fleet instead of -program/-workload (scale16: sixteen programs on eight clusters)")
		shards   = flag.Int("shards", 0, "worker goroutines for clustered presets (0 or 1 = single-threaded verification mode; pure speed knob, results are byte-identical at any value)")
		threads  = flag.Int("threads", 1, "for -program: run it multi-threaded (§3.1.1)")
		faults   = flag.String("faults", "", "fault-injection plan: key=value,... (seed, nvmread, nvmwrite, stall, stallcycles, qac, sf) or the shorthand rate=<p>")
		telePath = flag.String("telemetry", "", "export per-epoch telemetry to this file (.csv for CSV, JSONL otherwise; a .manifest.json rides along)")
		epoch    = flag.Int64("epoch", 10_000, "telemetry epoch length in CPU cycles (with -telemetry)")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of tables")
		list     = flag.Bool("list", false, "list programs, workloads and schemes, then exit")
		nocache  = flag.Bool("nocache", false, "disable the run cache entirely (identical runs re-simulate; no disk tier)")
		cachedir = flag.String("cachedir", profess.DefaultRunCacheDir(), "persistent run-cache directory ('' or 'off' disables the disk tier)")
		noarena  = flag.Bool("noarena", false, "disable simulation-state arena reuse (every run constructs a fresh machine; results are byte-identical either way)")
		sample   = flag.Float64("sample", 0, "run on the interval-sampling tier with this detailed fraction in (0,1); IPC becomes an estimate reported with a 95% confidence interval. 0 = full fidelity, >= 1 = full fidelity via the sampling path")
		samplewn = flag.Int64("samplewindow", 0, "detailed-window length in cycles for -sample (0 = the config default)")
	)
	flag.Usage = groupedUsage
	flag.Parse()

	if *noarena {
		profess.SetArenaReuse(false)
	}
	if *nocache {
		profess.SetRunCaching(false)
	} else if *cachedir != "" && *cachedir != "off" {
		if err := profess.SetRunCacheDir(*cachedir); err != nil {
			// The in-process tier still works; warn and continue.
			fmt.Fprintf(os.Stderr, "professim: disk cache disabled: %v\n", err)
		}
	}

	if *list {
		printCatalog()
		return
	}
	if *preset == "" && (*program == "") == (*mix == "") {
		fmt.Fprintln(os.Stderr, "professim: exactly one of -program, -workload or -preset is required (see -list)")
		os.Exit(2)
	}
	if *preset != "" && (*program != "" || *mix != "") {
		fmt.Fprintln(os.Stderr, "professim: -preset excludes -program and -workload")
		os.Exit(2)
	}

	var schemeList []profess.Scheme
	if *schemes != "" {
		for _, s := range strings.Split(*schemes, ",") {
			schemeList = append(schemeList, profess.Scheme(strings.TrimSpace(s)))
		}
	} else {
		schemeList = []profess.Scheme{profess.Scheme(*scheme)}
	}

	plan, err := profess.ParseFaultPlan(*faults)
	if err != nil {
		fatal(err)
	}

	if *preset != "" {
		if *preset != "scale16" {
			fatal(fmt.Errorf("unknown preset %q (available: scale16)", *preset))
		}
		cfg := profess.Scale16Config(*scale)
		cfg.Instructions = *instr
		cfg.Shards = *shards
		cfg.M2TWRFactor = *twr
		cfg.Faults = plan
		// Sampling on a clustered preset is rejected by Config.Validate
		// with an actionable message; set it anyway and let the run say so.
		cfg.SampleFraction = *sample
		cfg.SampleWindow = *samplewn
		if *telePath != "" {
			cfg.TelemetryEvery = *epoch
		}
		runScale16Preset(schemeList, cfg, *jsonOut, *telePath)
		return
	}

	var cfg profess.Config
	if *program != "" && *threads <= 1 {
		cfg = profess.SingleCoreConfig(*scale)
	} else {
		// Workloads, and multi-threaded single programs, need the
		// quad-core system.
		cfg = profess.MultiCoreConfig(*scale)
	}
	cfg.Instructions = *instr
	cfg.M2TWRFactor = *twr
	cfg.Shards = *shards
	if *ratio > 0 {
		cfg = cfg.WithM1Ratio(*ratio)
	}
	cfg.Faults = plan
	cfg.SampleFraction = *sample
	cfg.SampleWindow = *samplewn
	if *telePath != "" {
		cfg.TelemetryEvery = *epoch
	}

	if *program != "" {
		runSingle(*program, schemeList, cfg, *threads, *jsonOut, *telePath)
		return
	}
	runWorkload(*mix, schemeList, cfg, *baseline, *telePath)
}

// telemetryPath derives the per-scheme export file: with several schemes
// the scheme name is inserted before the extension so each run keeps its
// own trace.
func telemetryPath(path string, scheme profess.Scheme, multi bool) string {
	if !multi {
		return path
	}
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + string(scheme) + ext
}

// exportTelemetry writes the run's epochs (CSV when the extension says so,
// JSONL otherwise) plus the run manifest alongside.
func exportTelemetry(path string, scheme profess.Scheme, res *profess.Result, cfg profess.Config) {
	if path == "" || res.Telemetry == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if filepath.Ext(path) == ".csv" {
		err = res.Telemetry.WriteCSV(f)
	} else {
		err = res.Telemetry.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}

	m := profess.NewTelemetryManifest()
	m.Scheme = string(scheme)
	m.Seed = cfg.Seed
	m.Scale = cfg.Scale
	m.Instructions = cfg.Instructions
	m.EpochCycles = cfg.TelemetryEvery
	for _, c := range res.PerCore {
		m.Programs = append(m.Programs, c.Program)
	}
	if cfg.Faults.Enabled() {
		m.Faults = cfg.Faults.String()
	}
	mpath := strings.TrimSuffix(path, filepath.Ext(path)) + ".manifest.json"
	mf, err := os.Create(mpath)
	if err != nil {
		fatal(err)
	}
	err = m.WriteJSON(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "telemetry: %d epochs to %s (manifest %s)\n", res.Telemetry.Len(), path, mpath)
}

func runSingle(program string, schemes []profess.Scheme, cfg profess.Config, threads int, jsonOut bool, telePath string) {
	spec, err := profess.SpecFor(program, cfg)
	if err != nil {
		fatal(err)
	}
	spec.Threads = threads
	t := stats.NewTable("scheme", "IPC", "M1 frac", "STC hit", "read lat", "p99 lat", "swaps", "energy eff")
	results := make(map[profess.Scheme]*profess.Result)
	for _, s := range schemes {
		res, err := profess.RunSpecsContext(runCtx, []profess.ProgramSpec{spec}, s, cfg)
		if err != nil {
			fatal(err)
		}
		exportTelemetry(telemetryPath(telePath, s, len(schemes) > 1), s, res, cfg)
		if jsonOut {
			out, err := profess.ResultJSON(res)
			if err != nil {
				fatal(err)
			}
			fmt.Println(out)
			continue
		}
		c := res.PerCore[0]
		t.AddRowf(string(s), c.IPC, c.M1Fraction, c.STCHitRate, c.AvgReadLat, c.ReadLatP99, c.Swaps, res.EnergyEff)
		results[s] = res
	}
	if !jsonOut {
		fmt.Printf("program %s (%d instructions, %d thread(s), scale %.4f)\n\n%s",
			program, cfg.Instructions, threads, cfg.Scale, t.String())
		for _, s := range schemes {
			if res := results[s]; res != nil {
				printSampleInfo(string(s), res)
				printNVMWear(string(s), res)
				printResilience(string(s), res)
			}
		}
	}
}

// runScale16Preset runs the sixteen-program Fleet16 on the clustered
// Scale16 system under each scheme. Shards only changes wall-clock time;
// the printed figures are byte-identical at every worker count.
func runScale16Preset(schemes []profess.Scheme, cfg profess.Config, jsonOut bool, telePath string) {
	specs, err := profess.Fleet16Specs(cfg.Scale)
	if err != nil {
		fatal(err)
	}
	if !jsonOut {
		fmt.Printf("preset scale16 (%d programs, %d clusters, %d shard worker(s), %d instructions per program, scale %.4f)\n\n",
			len(specs), cfg.Clusters, max(cfg.Shards, 1), cfg.Instructions, cfg.Scale)
	}
	for _, s := range schemes {
		res, err := profess.RunSpecsContext(runCtx, specs, s, cfg)
		if err != nil {
			fatal(err)
		}
		exportTelemetry(telemetryPath(telePath, s, len(schemes) > 1), s, res, cfg)
		if jsonOut {
			out, err := profess.ResultJSON(res)
			if err != nil {
				fatal(err)
			}
			fmt.Println(out)
			continue
		}
		t := stats.NewTable("program", "IPC", "M1 frac", "STC hit", "swaps")
		for _, c := range res.PerCore {
			t.AddRowf(c.Program, c.IPC, c.M1Fraction, c.STCHitRate, c.Swaps)
		}
		fmt.Printf("scheme %s: cycles=%d swapFrac=%.4f stcHit=%.3f energyEff=%.3g\n%s\n",
			s, res.Cycles, res.SwapFraction, res.STCHitRate, res.EnergyEff, t.String())
		if len(res.ClusterDone) > 0 {
			fmt.Printf("cluster completion cycles: %v\n", res.ClusterDone)
		}
		printNVMWear(string(s), res)
		printResilience(string(s), res)
	}
}

func runWorkload(name string, schemes []profess.Scheme, cfg profess.Config, baselines bool, telePath string) {
	cache := profess.NewBaselineCache()
	fmt.Printf("workload %s (%d instructions per program, scale %.4f)\n\n", name, cfg.Instructions, cfg.Scale)
	for _, s := range schemes {
		if !baselines {
			res, err := profess.RunMixContext(runCtx, name, s, cfg)
			if err != nil {
				fatal(err)
			}
			exportTelemetry(telemetryPath(telePath, s, len(schemes) > 1), s, res, cfg)
			t := stats.NewTable("program", "IPC", "M1 frac", "repeats")
			for _, c := range res.PerCore {
				t.AddRowf(c.Program, c.IPC, c.M1Fraction, c.Repeats)
			}
			fmt.Printf("scheme %s: swapFrac=%.4f stcHit=%.3f energyEff=%.3g\n%s\n",
				s, res.SwapFraction, res.STCHitRate, res.EnergyEff, t.String())
			printSampleInfo(string(s), res)
			printNVMWear(string(s), res)
			printResilience(string(s), res)
			continue
		}
		wr, err := profess.RunWorkloadContext(runCtx, name, s, cfg, cache)
		if err != nil {
			fatal(err)
		}
		exportTelemetry(telemetryPath(telePath, s, len(schemes) > 1), s, wr.Result, cfg)
		t := stats.NewTable("program", "IPC", "IPC alone", "slowdown", "M1 frac")
		for i, c := range wr.Result.PerCore {
			t.AddRowf(c.Program, c.FirstIPC, wr.AloneIPC[i], wr.Slowdowns[i], c.M1Fraction)
		}
		fmt.Printf("scheme %s: weighted speedup=%.3f  max slowdown=%.3f  swap frac=%.4f  energy eff=%.3g\n%s\n",
			s, wr.WeightedSpeedup, wr.MaxSlowdown, wr.Result.SwapFraction, wr.Result.EnergyEff, t.String())
		printSampleInfo(string(s), wr.Result)
		printNVMWear(string(s), wr.Result)
		printResilience(string(s), wr.Result)
	}
}

// printSampleInfo reports the sampling parameters and the per-program IPC
// confidence intervals when the run executed on the interval-sampling
// tier. Full-fidelity runs print nothing.
func printSampleInfo(scheme string, res *profess.Result) {
	sp := res.Sampling
	if sp.Windows == 0 {
		return
	}
	fmt.Printf("sampling %s: fraction=%.3g window=%d cycles, %d detailed windows; IPC ±95%%:",
		scheme, sp.Fraction, sp.Window, sp.Windows)
	for _, c := range res.PerCore {
		fmt.Printf(" %s=%.4f±%.4f", c.Program, c.IPC, c.IPCCI95)
	}
	fmt.Println()
}

// printNVMWear reports M2 write wear and the projected device lifetime
// when the run wrote to M2 at all.
func printNVMWear(scheme string, res *profess.Result) {
	w := res.NVM
	if w.WriteBursts == 0 {
		return
	}
	fmt.Printf("nvm wear %s: writes=%d rows=%d/%d hottest=%d leveling=%.3f lifetime=%.3gs (ideal %.3gs)\n",
		scheme, w.WriteBursts, w.WrittenRows, w.Rows, w.MaxRowWrites,
		w.LevelingEfficiency, w.LifetimeSeconds, w.LifetimeIdealSeconds)
}

// printResilience reports fault-injection activity when there was any.
func printResilience(scheme string, res *profess.Result) {
	r := res.Resilience
	if !r.Any() {
		return
	}
	fmt.Printf("resilience %s: nvm faults=%d (retries=%d drops=%d)  stalls=%d (%d cycles)  corrupt QAC=%d/%d  bad SF=%d/%d  degraded entries=%d cycles=%d fallback decisions=%d\n",
		scheme,
		r.InjectedNVMReadFaults+r.InjectedNVMWriteFaults, r.Retries, r.Drops,
		r.InjectedStalls, r.InjectedStallCycles,
		r.CorruptQACUpdates, r.InjectedQACCorruptions,
		r.ImplausibleSFs, r.InjectedSFCorruptions,
		r.DegradedEntries, r.DegradedCycles, r.DegradedDecisions)
}

func printCatalog() {
	fmt.Println("programs (Table 9):")
	for _, p := range profess.Programs() {
		fmt.Printf("  %-12s MPKI=%-3.0f footprint=%3.0fMB pattern=%s\n",
			p.Name, p.PaperMPKI, p.PaperFootprintMB, p.Pattern)
	}
	fmt.Println("workloads (Table 10):")
	for _, w := range profess.Workloads() {
		fmt.Printf("  %s: %s\n", w.Name, strings.Join(w.Programs[:], " - "))
	}
	fmt.Println("schemes:")
	for _, s := range profess.Schemes() {
		fmt.Printf("  %s\n", s)
	}
}

// groupedUsage replaces flag.PrintDefaults with labelled sections — the
// flag set spans run selection, fidelity, fault injection, caching and
// execution concerns, and an alphabetical wall hides which knobs change
// results and which are free. Ungrouped future flags fall through to a
// trailing section.
func groupedUsage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "Usage: professim (-program <p> | -workload <w> | -preset <name>) [options]\n")
	groups := []struct {
		title string
		names []string
	}{
		{"Run selection", []string{"program", "workload", "preset", "list"}},
		{"Schemes", []string{"scheme", "schemes", "baselines"}},
		{"System & scale", []string{"instr", "scale", "ratio", "twr", "threads"}},
		{"Fidelity dial (trade exactness for speed; results change)", []string{"sample", "samplewindow"}},
		{"Fault injection & telemetry", []string{"faults", "telemetry", "epoch"}},
		{"Execution (pure speed knobs; results are byte-identical)", []string{"shards", "noarena"}},
		{"Caching", []string{"cachedir", "nocache"}},
		{"Output", []string{"json"}},
	}
	seen := map[string]bool{}
	for _, g := range groups {
		fmt.Fprintf(out, "\n%s:\n", g.title)
		for _, n := range g.names {
			if f := flag.Lookup(n); f != nil {
				seen[n] = true
				printFlag(out, f)
			}
		}
	}
	first := true
	flag.VisitAll(func(f *flag.Flag) {
		if seen[f.Name] {
			return
		}
		if first {
			fmt.Fprintf(out, "\nOther:\n")
			first = false
		}
		printFlag(out, f)
	})
}

func printFlag(out io.Writer, f *flag.Flag) {
	typ, usage := flag.UnquoteUsage(f)
	if typ != "" {
		fmt.Fprintf(out, "  -%s %s\n", f.Name, typ)
	} else {
		fmt.Fprintf(out, "  -%s\n", f.Name)
	}
	fmt.Fprintf(out, "        %s", usage)
	if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" {
		fmt.Fprintf(out, " (default %v)", f.DefValue)
	}
	fmt.Fprintln(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "professim:", err)
	os.Exit(1)
}
