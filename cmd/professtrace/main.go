// Command professtrace works with captured reference traces: it records a
// synthetic program's stream to a compact binary file, inspects a capture,
// or replays one through the full simulator — the pipeline that lets an
// externally produced trace (in the same format) drive this simulator.
//
// Usage:
//
//	professtrace -record mcf -n 200000 -out mcf.pftr
//	professtrace -stats mcf.pftr
//	professtrace -replay mcf.pftr -scheme mdm -instr 1000000
//	professtrace -replay mcf.pftr -scheme mdm -telemetry mcf.jsonl -epoch 25000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"profess"
	"profess/internal/sim"
	"profess/internal/trace"
)

func main() {
	var (
		record  = flag.String("record", "", "Table 9 program to capture")
		n       = flag.Int64("n", 200_000, "references to capture")
		out     = flag.String("out", "", "output file for -record")
		stats   = flag.String("stats", "", "trace file to inspect")
		replay  = flag.String("replay", "", "trace file to simulate")
		scheme  = flag.String("scheme", "mdm", "migration scheme for -replay")
		instr   = flag.Int64("instr", 1_000_000, "instruction budget for -replay")
		scale   = flag.Float64("scale", profess.PaperScale, "capacity scale")
		tele    = flag.String("telemetry", "", "for -replay: export per-epoch telemetry to this file (.csv for CSV, JSONL otherwise; a .manifest.json rides along)")
		epoch   = flag.Int64("epoch", 10_000, "telemetry epoch length in CPU cycles (with -telemetry)")
		shards  = flag.Int("shards", 0, "for -replay: worker goroutines on clustered configs (inert on the single-core replay system; kept for flag parity)")
		noarena = flag.Bool("noarena", false, "disable simulation-state arena reuse for -replay (fresh machine per run; byte-identical either way)")
	)
	flag.Parse()

	if *noarena {
		profess.SetArenaReuse(false)
	}

	switch {
	case *record != "":
		if *out == "" {
			fatal(fmt.Errorf("-record requires -out"))
		}
		doRecord(*record, *n, *out, *scale)
	case *stats != "":
		doStats(*stats)
	case *replay != "":
		doReplay(*replay, *scheme, *instr, *scale, *tele, *epoch, *shards)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(program string, n int64, out string, scale float64) {
	spec, err := sim.SpecForProgram(program, scale)
	if err != nil {
		fatal(err)
	}
	gen, err := trace.NewGenerator(spec.Params)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.WriteTrace(f, gen, n); err != nil {
		fatal(err)
	}
	fmt.Printf("captured %d references of %s (footprint %d KB) to %s\n",
		n, program, spec.Params.Footprint>>10, out)
}

func doStats(path string) {
	rp := load(path)
	p := rp.Params()
	var writes, deps, gapSum int64
	blocks := map[int64]int64{}
	maxReuse := int64(0)
	for i := 0; i < rp.Len(); i++ {
		r := rp.Next()
		if r.Write {
			writes++
		}
		if r.Dep {
			deps++
		}
		gapSum += int64(r.Gap)
		b := r.VAddr / 2048
		blocks[b]++
		if blocks[b] > maxReuse {
			maxReuse = blocks[b]
		}
	}
	total := int64(rp.Len())
	fmt.Printf("trace %s: %d refs\n", path, total)
	fmt.Printf("  program     %s\n", p.Name)
	fmt.Printf("  footprint   %d KB\n", p.Footprint>>10)
	fmt.Printf("  writes      %.1f%%\n", pct(writes, total))
	fmt.Printf("  dependent   %.1f%%\n", pct(deps, total))
	fmt.Printf("  mean gap    %.1f instructions\n", float64(gapSum)/float64(total))
	fmt.Printf("  2-KB blocks touched  %d (max refs to one block: %d)\n", len(blocks), maxReuse)
}

func doReplay(path, scheme string, instr int64, scale float64, tele string, epoch int64, shards int) {
	rp := load(path)
	cfg := profess.SingleCoreConfig(scale)
	cfg.Instructions = instr
	cfg.Shards = shards
	if tele != "" {
		cfg.TelemetryEvery = epoch
	}
	spec := profess.ProgramSpec{Name: rp.Params().Name, Params: rp.Params(), Source: rp}
	res, err := profess.RunSpecs([]profess.ProgramSpec{spec}, profess.Scheme(scheme), cfg)
	if err != nil {
		fatal(err)
	}
	exportTelemetry(tele, path, scheme, res, cfg)
	c := res.PerCore[0]
	fmt.Printf("replayed %s under %s: IPC %.3f, M1-served %.1f%%, STC hit %.1f%%, swaps %d\n",
		path, scheme, c.IPC, 100*c.M1Fraction, 100*c.STCHitRate, c.Swaps)
}

// exportTelemetry writes the replay's epochs (CSV when the extension says
// so, JSONL otherwise) plus a manifest recording the replayed capture.
func exportTelemetry(out, tracePath, scheme string, res *profess.Result, cfg profess.Config) {
	if out == "" || res.Telemetry == nil {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	if filepath.Ext(out) == ".csv" {
		err = res.Telemetry.WriteCSV(f)
	} else {
		err = res.Telemetry.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	m := profess.NewTelemetryManifest()
	m.Scheme = scheme
	m.Seed = cfg.Seed
	m.Scale = cfg.Scale
	m.Instructions = cfg.Instructions
	m.EpochCycles = cfg.TelemetryEvery
	for _, c := range res.PerCore {
		m.Programs = append(m.Programs, c.Program)
	}
	m.Extra = map[string]string{"trace": tracePath}
	mpath := strings.TrimSuffix(out, filepath.Ext(out)) + ".manifest.json"
	mf, err := os.Create(mpath)
	if err != nil {
		fatal(err)
	}
	err = m.WriteJSON(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "telemetry: %d epochs to %s (manifest %s)\n", res.Telemetry.Len(), out, mpath)
}

func load(path string) *trace.Replayer {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rp, err := trace.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	return rp
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "professtrace:", err)
	os.Exit(1)
}
