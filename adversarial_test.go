package profess

import (
	"testing"

	"profess/internal/trace"
)

// TestRSMHelpsTheSufferer builds the adversarial two-program scenario the
// paper's intuition is about (§3.1): a bandwidth hog that streams through
// a huge footprint and constantly steals M1 via promotions, next to a
// smaller latency-sensitive program with a stable hot set. Pure MDM
// optimises throughput and lets the hog churn M1; ProFess's RSM should
// detect that the small program suffers more from the competition and
// protect/help its blocks — reducing the victim's slowdown.
func TestRSMHelpsTheSufferer(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := MultiCoreConfig(PaperScale)
	cfg.Instructions = 400_000

	hog := ProgramSpec{
		Name: "hog",
		Params: trace.Params{
			Name: "hog", Footprint: 24 << 20, Pattern: trace.Stream,
			WriteFrac: 0.4, GapMean: 24, Streams: 16, LinesPerTouch: 1, Seed: 11,
		},
	}
	victim := ProgramSpec{
		Name: "victim",
		Params: trace.Params{
			Name: "victim", Footprint: 4 << 20, Pattern: trace.PointerChase,
			WriteFrac: 0.2, GapMean: 30, HotFrac: 0.05, HotProb: 0.7,
			DepFrac: 0.7, LinesPerTouch: 3, RecentProb: 0.5, RecentWindow: 32, Seed: 12,
		},
	}
	specs := []ProgramSpec{hog, victim}

	victimSdn := func(scheme Scheme) (float64, float64) {
		t.Helper()
		// Stand-alone baselines under the same scheme.
		var alone [2]float64
		for i, s := range specs {
			res, err := RunSpecs([]ProgramSpec{s}, scheme, cfg)
			if err != nil {
				t.Fatal(err)
			}
			alone[i] = res.PerCore[0].FirstIPC
		}
		res, err := RunSpecs(specs, scheme, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Slowdown(alone[1], res.PerCore[1].FirstIPC),
			Slowdown(alone[0], res.PerCore[0].FirstIPC)
	}

	mdmVictim, mdmHog := victimSdn(SchemeMDM)
	pfVictim, pfHog := victimSdn(SchemeProFess)
	t.Logf("victim slowdown: mdm=%.3f profess=%.3f | hog slowdown: mdm=%.3f profess=%.3f",
		mdmVictim, pfVictim, mdmHog, pfHog)

	// ProFess must not leave the victim meaningfully worse off than MDM,
	// and the overall unfairness (max of the two) must not grow.
	if pfVictim > mdmVictim*1.05 {
		t.Errorf("ProFess left the victim worse off: %.3f vs MDM %.3f", pfVictim, mdmVictim)
	}
	mdmMax := mdmVictim
	if mdmHog > mdmMax {
		mdmMax = mdmHog
	}
	pfMax := pfVictim
	if pfHog > pfMax {
		pfMax = pfHog
	}
	if pfMax > mdmMax*1.05 {
		t.Errorf("ProFess unfairness %.3f exceeds MDM's %.3f", pfMax, mdmMax)
	}
}
