package profess

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// tinyExp keeps driver smoke tests fast: two programs, one workload,
// small budget.
func tinyExp() ExpOptions {
	return ExpOptions{
		Instructions: 150_000,
		Programs:     []string{"lbm", "soplex"},
		Workloads:    []string{"w02"},
	}
}

func TestRunSinglePrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rep, err := RunSinglePrograms([]Scheme{SchemePoM, SchemeMDM}, tinyExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 2 programs x 2 schemes", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.IPC <= 0 {
			t.Errorf("%s/%s: IPC %v", r.Program, r.Scheme, r.IPC)
		}
	}
	ratios := rep.Ratios(SchemeMDM, SchemePoM, "ipc")
	if len(ratios) != 2 {
		t.Errorf("ratios = %v", ratios)
	}
	if _, ok := rep.row("lbm", SchemeMDM); !ok {
		t.Error("row lookup failed")
	}
	if s := rep.String(); !strings.Contains(s, "lbm") || !strings.Contains(s, "Fig. 5") {
		t.Error("String output incomplete")
	}
	// Unknown metric yields zeros.
	for _, v := range rep.Ratios(SchemeMDM, SchemePoM, "bogus") {
		if v != 0 {
			t.Error("bogus metric should be zero")
		}
	}
}

func TestRunSingleProgramsSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := tinyExp()
	opts.Programs = []string{"soplex"}
	opts.Seeds = 3
	rep, err := RunSinglePrograms([]Scheme{SchemeMDM}, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Rows[0]
	if r.IPC <= 0 {
		t.Fatalf("mean IPC %v", r.IPC)
	}
	// Different seeds should produce *some* variation, and the spread
	// should be small relative to the mean (the generators are stable).
	if r.IPCStdDev <= 0 {
		t.Error("expected non-zero spread across seeds")
	}
	if r.IPCStdDev > r.IPC/2 {
		t.Errorf("spread %v implausibly large vs mean %v", r.IPCStdDev, r.IPC)
	}
}

func TestRunSTCSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rep, err := RunSTCSensitivity(tinyExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 programs x 3 sizes", len(rep.Rows))
	}
	sizes := map[int]bool{}
	for _, r := range rep.Rows {
		sizes[r.STCEntries] = true
		if r.STCHitRate <= 0 || r.STCHitRate > 1 {
			t.Errorf("hit rate %v", r.STCHitRate)
		}
	}
	if !sizes[rep.Default] || !sizes[rep.Default/2] || !sizes[rep.Default*2] {
		t.Errorf("sizes = %v around default %d", sizes, rep.Default)
	}
	if rep.String() == "" {
		t.Error("empty render")
	}
}

func TestRunSamplingAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := tinyExp()
	opts.Programs = []string{"bwaves"}
	opts.Instructions = 400_000
	rep, err := RunSamplingAccuracy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("cells = %d, want 3 sampling periods", len(rep.Cells))
	}
	// Larger M_samp must not increase the region spread (Table 4 trend).
	if rep.Cells[0].MeanSigmaReq < rep.Cells[2].MeanSigmaReq {
		t.Errorf("sigma_req should shrink with M_samp: %+v", rep.Cells)
	}
	// bwaves runs uncontended: mean raw SF_A ~ 1.
	for _, c := range rep.Cells {
		if c.Periods > 0 && (c.MeanRawSFA < 0.8 || c.MeanRawSFA > 1.2) {
			t.Errorf("uncontended SF_A mean %v at M_samp %d", c.MeanRawSFA, c.MSamp)
		}
	}
	if rep.String() == "" {
		t.Error("empty render")
	}
}

func TestRunTWRSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rep, err := RunTWRSensitivity(tinyExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.GeoMeanRatio <= 0 {
			t.Errorf("point %s ratio %v", p.Setting, p.GeoMeanRatio)
		}
	}
	if rep.String() == "" {
		t.Error("empty render")
	}
}

func TestRunRatioSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rep, err := RunRatioSensitivity(tinyExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	names := []string{"1:4", "1:8", "1:16"}
	for i, p := range rep.Points {
		if p.Setting != names[i] {
			t.Errorf("point %d = %s", i, p.Setting)
		}
	}
}

func TestRunMultiProgramDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := tinyExp()
	rep, err := RunMultiProgram([]Scheme{SchemePoM, SchemeProFess}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	c, ok := rep.Cell("w02", SchemeProFess)
	if !ok {
		t.Fatal("cell lookup failed")
	}
	if len(c.Slowdowns) != 4 || len(c.Programs) != 4 {
		t.Errorf("cell shape: %+v", c)
	}
	series := rep.NormalisedSeries(SchemeProFess, SchemePoM, "ws")
	if len(series) != 1 || series["w02"] <= 0 {
		t.Errorf("series = %v", series)
	}
	if g := GeoMeanSeries(series); g != series["w02"] {
		t.Errorf("gmean of singleton = %v", g)
	}
	if s := rep.String(); !strings.Contains(s, "w02") {
		t.Error("render incomplete")
	}
	if d := rep.SlowdownDetailString([]string{"w02"}); !strings.Contains(d, "profess") {
		t.Error("detail render incomplete")
	}
}

func TestRunMemPodComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rep, err := RunMemPodComparison(tinyExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SingleRatio) != 2 || len(rep.MultiRatio) != 1 {
		t.Fatalf("shape: %+v", rep)
	}
	for k, v := range rep.SingleRatio {
		if v <= 0 {
			t.Errorf("single %s = %v", k, v)
		}
	}
	if rep.String() == "" {
		t.Error("empty render")
	}
}

func TestRunOracleDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := SingleCoreConfig(PaperScale)
	cfg.Instructions = 150_000
	spec, err := SpecFor("lbm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOracle(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "oracle" {
		t.Errorf("scheme = %s", res.Scheme)
	}
	if res.Counts.Swaps == 0 {
		t.Error("oracle should have placed hot blocks")
	}
	// The oracle performs at most one swap per group.
	static, err := RunSpecs([]ProgramSpec{spec}, SchemeStatic, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerCore[0].IPC <= static.PerCore[0].IPC {
		t.Errorf("oracle IPC %v should beat static %v", res.PerCore[0].IPC, static.PerCore[0].IPC)
	}
}

func TestExpOptionsDefaults(t *testing.T) {
	var o ExpOptions
	if o.scale() != PaperScale {
		t.Error("default scale")
	}
	if len(o.programs()) != 9 {
		t.Errorf("default programs = %d (libquantum excluded per Fig. 5)", len(o.programs()))
	}
	if len(o.workloads()) != 19 {
		t.Errorf("default workloads = %d", len(o.workloads()))
	}
	if o.seeds() != 1 {
		t.Error("default seeds")
	}
	if o.singleConfig().Cores != 1 || o.multiConfig().Cores != 4 {
		t.Error("config shapes")
	}
}

func TestParallelFor(t *testing.T) {
	var sum [100]int
	err := parallelFor(context.Background(), 100, 8, func(i int) error {
		sum[i] = i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sum {
		if v != i {
			t.Fatalf("index %d not executed", i)
		}
	}
	// Errors propagate without abandoning the remaining items (a nil
	// context is the background context).
	calls := 0
	err = parallelFor(nil, 10, 1, func(i int) error {
		calls++
		if i == 3 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Errorf("err = %v", err)
	}
	if calls != 10 {
		t.Errorf("every item should still run after an error, ran %d", calls)
	}
	if parallelFor(context.Background(), 0, 4, func(int) error { return errBoom }) != nil {
		t.Error("zero jobs should be a no-op")
	}
}

func TestParallelForMultiError(t *testing.T) {
	err := parallelFor(context.Background(), 6, 3, func(i int) error {
		if i%2 == 1 {
			return errString(string(rune('a' + i)))
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected a joined error")
	}
	for _, want := range []string{"b", "d", "f"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}

func TestParallelForPanicRecovery(t *testing.T) {
	ran := make([]bool, 8)
	err := parallelFor(context.Background(), 8, 4, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		ran[i] = true
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic should surface as an error, got %v", err)
	}
	if !strings.Contains(err.Error(), "item 2 panicked") {
		t.Errorf("error should name the item: %v", err)
	}
	for i, ok := range ran {
		if i != 2 && !ok {
			t.Errorf("item %d lost to the panic", i)
		}
	}
}

func TestParallelForCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := parallelFor(ctx, 100, 1, func(i int) error {
		calls++
		if i == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls >= 100 {
		t.Errorf("cancellation should stop new work, ran %d", calls)
	}
}

var errBoom = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

func TestRunMultiProgramSurvivesWorkerPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := tinyExp()
	opts.Parallelism = 2

	// One cell's worker panics on every attempt: the sweep must surface
	// the recovered panic as an error, keep the sibling cell's result, and
	// have retried the wedged cell exactly once.
	attempts := map[Scheme]int{}
	var mu sync.Mutex
	multiCellHook = func(wl string, s Scheme) {
		mu.Lock()
		attempts[s]++
		mu.Unlock()
		if s == SchemePoM {
			panic("injected cell failure")
		}
	}
	defer func() { multiCellHook = nil }()

	rep, err := RunMultiProgram([]Scheme{SchemePoM, SchemeProFess}, opts)
	if err == nil {
		t.Fatal("panicking cell must surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "injected cell failure") {
		t.Errorf("error should carry the recovered panic: %v", err)
	}
	if rep == nil {
		t.Fatal("partial report lost")
	}
	if _, ok := rep.Cell("w02", SchemeProFess); !ok {
		t.Error("sibling cell lost to the panic")
	}
	if _, ok := rep.Cell("w02", SchemePoM); ok {
		t.Error("panicked cell should have no result")
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts[SchemePoM] != 2 {
		t.Errorf("wedged cell attempted %d times, want 2 (original + one retry)", attempts[SchemePoM])
	}
	if attempts[SchemeProFess] != 1 {
		t.Errorf("healthy cell attempted %d times, want 1", attempts[SchemeProFess])
	}
}

func TestRunMultiProgramRetriesTransientFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := tinyExp()
	opts.Parallelism = 2

	// A cell that panics only on its first attempt recovers on the retry:
	// the sweep as a whole succeeds.
	var mu sync.Mutex
	failed := false
	multiCellHook = func(wl string, s Scheme) {
		mu.Lock()
		defer mu.Unlock()
		if s == SchemePoM && !failed {
			failed = true
			panic("transient failure")
		}
	}
	defer func() { multiCellHook = nil }()

	rep, err := RunMultiProgram([]Scheme{SchemePoM, SchemeProFess}, opts)
	if err != nil {
		t.Fatalf("transient failure must be absorbed by the retry: %v", err)
	}
	if _, ok := rep.Cell("w02", SchemePoM); !ok {
		t.Error("retried cell missing from the report")
	}
}
