package profess

import (
	"bytes"
	"reflect"
	"testing"
)

// TestDeterministicReplay is the timing-wheel refactor's safety net: the
// same fixed-seed mcf+lbm mix, run twice from scratch with telemetry on,
// must produce deeply-equal Results and byte-identical JSONL exports. Any
// engine change that reorders same-cycle events — a broken seq tiebreak, a
// migration that overtakes a direct insert — shows up here as a diff.
// Telemetry-enabled runs bypass the run cache, and caching is disabled
// outright for belt and braces, so both runs truly simulate.
func TestDeterministicReplay(t *testing.T) {
	SetRunCaching(false)
	defer SetRunCaching(true)

	run := func() (*Result, []byte) {
		cfg := MultiCoreConfig(PaperScale)
		cfg.Instructions = 120_000
		cfg.TelemetryEvery = 25_000
		var specs []ProgramSpec
		for _, name := range []string{"mcf", "lbm"} {
			s, err := SpecFor(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			specs = append(specs, s)
		}
		res, err := RunSpecs(specs, SchemeProFess, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Telemetry.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}

	r1, j1 := run()
	r2, j2 := run()
	if r1 == r2 {
		t.Fatal("runs shared a Result pointer; the comparison would be vacuous")
	}

	// The sampler is stateful (ring indices, prev-counter snapshots) and
	// compared through its JSONL export instead.
	r1.Telemetry, r2.Telemetry = nil, nil
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("Results differ between identical runs:\n run1: %+v\n run2: %+v", r1, r2)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("telemetry JSONL differs between identical runs")
	}
	if len(j1) == 0 {
		t.Error("telemetry export is empty")
	}
}
